// Package-level benchmarks: one per table/figure of the paper's evaluation
// (Sec. 9). Each benchmark runs a reduced-scale version of the experiment
// and reports the simulated cluster seconds of the relevant series as
// custom metrics (sim-s/<series>), alongside the usual wall-clock ns/op of
// actually executing the workload.
//
// The full sweeps — the paper's parameter ranges and the printed tables —
// live in cmd/matbench; run `go run ./cmd/matbench` to regenerate every
// figure. These benchmarks pin one representative point per figure so
// `go test -bench=.` exercises all of them quickly and regressions in
// either real execution speed or simulated shape are visible.
package matryoshka

import (
	"testing"

	"matryoshka/internal/bench"
	"matryoshka/internal/core"
	"matryoshka/internal/engine"
	"matryoshka/internal/tasks"
)

// benchScale keeps benchmark inputs small; shapes are scale-invariant.
var benchScale = bench.Scale{RecordsPerGB: 500}

func report(b *testing.B, series string, o tasks.Outcome) {
	b.Helper()
	if o.Err != nil && !o.OOM {
		b.Fatalf("%s: %v", series, o.Err)
	}
	if o.OOM {
		b.ReportMetric(1, "OOM/"+series)
		return
	}
	b.ReportMetric(o.Seconds, "sim-s/"+series)
}

// BenchmarkFig1_KMeansWorkarounds is the motivating experiment: the two
// workarounds at 64 initial configurations vs the single-configuration
// ideal.
func BenchmarkFig1_KMeansWorkarounds(b *testing.B) {
	cc := benchScale.PaperCluster()
	for i := 0; i < b.N; i++ {
		spec := tasks.KMeansSpec{TotalPoints: benchScale.Records(20), K: 4, Configs: 64, Eps: 1e-6, MaxIters: 8, Seed: 1}
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
		spec.Configs = 1
		report(b, "ideal", spec.Run(tasks.InnerParallel, cc))
	}
}

// BenchmarkFig3_WeakScalingKMeans pins the 64-configuration point of the
// K-means weak-scaling panel.
func BenchmarkFig3_WeakScalingKMeans(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.KMeansSpec{TotalPoints: benchScale.Records(20), K: 4, Configs: 64, Eps: 1e-6, MaxIters: 8, Seed: 1}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
	}
}

// BenchmarkFig3_WeakScalingPageRank pins the 64-group point of the
// PageRank weak-scaling panel.
func BenchmarkFig3_WeakScalingPageRank(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.PageRankSpec{Groups: 64, TotalEdges: benchScale.Records(20), TotalVertices: benchScale.Records(20) / 5, Eps: 1e-6, MaxIters: 6, Seed: 2}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
	}
}

// BenchmarkFig3_WeakScalingAvgDist pins the 16-component point of the
// three-level Average Distances panel.
func BenchmarkFig3_WeakScalingAvgDist(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.AvgDistSpec{Components: 16, VerticesPerComp: 32, ExtraEdgesPerComp: 16, Seed: 3, Weight: 64}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
	}
}

// BenchmarkFig4_ScaleOut compares 5 vs 25 machines for PageRank.
func BenchmarkFig4_ScaleOut(b *testing.B) {
	spec := tasks.PageRankSpec{Groups: 64, TotalEdges: benchScale.Records(20), TotalVertices: benchScale.Records(20) / 5, Eps: 1e-6, MaxIters: 6, Seed: 2}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka-5m", spec.Run(tasks.Matryoshka, benchScale.Cluster(5, 16, 22)))
		report(b, "matryoshka-25m", spec.Run(tasks.Matryoshka, benchScale.Cluster(25, 16, 22)))
		report(b, "inner-25m", spec.Run(tasks.InnerParallel, benchScale.Cluster(25, 16, 22)))
	}
}

// BenchmarkFig5_BounceRate is the no-control-flow task at 48 GB, where
// outer-parallel and DIQL OOM.
func BenchmarkFig5_BounceRate(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.BounceRateSpec{Visits: benchScale.Records(48), Days: 64, Seed: 4}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
		report(b, "diql", spec.Run(tasks.DIQL, cc))
	}
}

// BenchmarkFig6_DIQL is the reduced 12 GB input where DIQL completes.
func BenchmarkFig6_DIQL(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.BounceRateSpec{Visits: benchScale.Records(12), Days: 64, Seed: 4}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "diql", spec.Run(tasks.DIQL, cc))
	}
}

// BenchmarkFig7_Skew compares Matryoshka on Zipf vs uniform keys (the
// paper reports a gap within 15%) and shows outer-parallel's OOM.
func BenchmarkFig7_Skew(b *testing.B) {
	cc := benchScale.PaperCluster()
	skew := tasks.BounceRateSpec{Visits: benchScale.Records(24), Days: 1024, Skewed: true, Seed: 4}
	flat := skew
	flat.Skewed = false
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka-skew", skew.Run(tasks.Matryoshka, cc))
		report(b, "matryoshka-uniform", flat.Run(tasks.Matryoshka, cc))
		report(b, "outer-skew", skew.Run(tasks.OuterParallel, cc))
	}
}

// BenchmarkFig8_JoinStrategies ablates the InnerBag-InnerScalar join
// algorithm on PageRank (optimizer vs forced choices).
func BenchmarkFig8_JoinStrategies(b *testing.B) {
	cc := benchScale.LargeCluster()
	spec := tasks.PageRankSpec{Groups: 256, TotalEdges: benchScale.Records(40), TotalVertices: benchScale.Records(40) / 5, Eps: 1e-6, MaxIters: 4, Seed: 2}
	for i := 0; i < b.N; i++ {
		report(b, "optimizer", spec.RunMatryoshka(cc, core.Options{}))
		report(b, "broadcast", spec.RunMatryoshka(cc, core.Options{ForceScalarJoin: core.ForceJoin(engine.JoinBroadcastLeft)}))
		report(b, "repartition", spec.RunMatryoshka(cc, core.Options{ForceScalarJoin: core.ForceJoin(engine.JoinRepartition)}))
	}
}

// BenchmarkFig8_HalfLifted ablates the half-lifted mapWithClosure
// broadcast side on K-means.
func BenchmarkFig8_HalfLifted(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.KMeansSpec{TotalPoints: benchScale.Records(40), K: 4, Configs: 64, Eps: 1e-6, MaxIters: 6, Seed: 1}
	for i := 0; i < b.N; i++ {
		report(b, "optimizer", spec.RunMatryoshka(cc, core.Options{}))
		report(b, "bcast-scalar", spec.RunMatryoshka(cc, core.Options{ForceHalfLifted: core.ForceHalf(core.BroadcastScalar)}))
		report(b, "bcast-primary", spec.RunMatryoshka(cc, core.Options{ForceHalfLifted: core.ForceHalf(core.BroadcastPrimary)}))
	}
}

// BenchmarkFig9_Larger is the 8x-input run on the Sec. 9.7 cluster.
func BenchmarkFig9_Larger(b *testing.B) {
	cc := benchScale.LargeCluster()
	spec := tasks.BounceRateSpec{Visits: benchScale.Records(384), Days: 128, Seed: 4}
	for i := 0; i < b.N; i++ {
		report(b, "matryoshka", spec.Run(tasks.Matryoshka, cc))
		report(b, "inner", spec.Run(tasks.InnerParallel, cc))
		report(b, "outer", spec.Run(tasks.OuterParallel, cc))
	}
}

// BenchmarkEngine_ShuffleThroughput is a substrate micro-benchmark: real
// wall-clock of a reduceByKey over 100k pairs through the full stage/
// shuffle machinery.
func BenchmarkEngine_ShuffleThroughput(b *testing.B) {
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 4
	sess, err := engine.NewSession(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]engine.Pair[int64, int64], 100_000)
	for i := range pairs {
		pairs[i] = engine.KV(int64(i%997), int64(1))
	}
	d := engine.Parallelize(sess, pairs, 0).Cache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := engine.ReduceByKey(d, func(a, b int64) int64 { return a + b })
		if _, err := engine.Count(red); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkCore_LiftedLoop measures the per-superstep cost of the lifted
// while loop machinery itself (Listing 4) on a small population.
func BenchmarkCore_LiftedLoop(b *testing.B) {
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 4
	sess, err := engine.NewSession(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pairs []engine.Pair[int64, int64]
	for g := int64(0); g < 32; g++ {
		for v := int64(0); v < 8; v++ {
			pairs = append(pairs, engine.KV(g, v))
		}
	}
	nb, err := core.GroupByKeyIntoNestedBag(engine.Parallelize(sess, pairs, 0), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iters := core.Pure(nb.Ctx(), int64(0))
		out, err := core.While(nb.Ctx(), iters, core.ScalarState[int64](),
			func(c *core.Ctx, v core.InnerScalar[int64]) (core.InnerScalar[int64], core.InnerScalar[bool], error) {
				next := core.UnaryScalarOp(v, func(i int64) int64 { return i + 1 })
				cond := core.UnaryScalarOp(next, func(i int64) bool { return i < 5 })
				return next, cond, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := out.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CoPartitioning isolates the engine's co-partitioning
// optimization (DESIGN.md §4.0b): the same lifted PageRank with the
// loop's static join inputs pre-partitioned once vs re-shuffled every
// superstep.
func BenchmarkAblation_CoPartitioning(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.PageRankSpec{Groups: 64, TotalEdges: benchScale.Records(20), TotalVertices: benchScale.Records(20) / 5, Eps: 1e-6, MaxIters: 6, Seed: 2}
	for i := 0; i < b.N; i++ {
		report(b, "co-partitioned", spec.RunMatryoshka(cc, core.Options{}))
		ablated := spec
		ablated.NoCoPartition = true
		report(b, "reshuffled", ablated.RunMatryoshka(cc, core.Options{}))
	}
}

// BenchmarkAblation_PartitionCounts isolates the Sec. 8.1 partition-count
// optimization: scalar bags sized by the LiftingContext vs spread over the
// engine default (TargetScalarsPerPartition=1 forces maximal spreading).
func BenchmarkAblation_PartitionCounts(b *testing.B) {
	cc := benchScale.PaperCluster()
	spec := tasks.KMeansSpec{TotalPoints: benchScale.Records(20), K: 4, Configs: 64, Eps: 1e-6, MaxIters: 8, Seed: 1}
	for i := 0; i < b.N; i++ {
		report(b, "sized", spec.RunMatryoshka(cc, core.Options{}))
		report(b, "spread", spec.RunMatryoshka(cc, core.Options{TargetScalarsPerPartition: 1}))
	}
}
