GO ?= go

.PHONY: check test race vet build bench bench-check figures fmt-check sched-bench chaos-bench shred-bench procchaos-bench fuzz-smoke

## check: everything CI runs — formatting, vet, build, tests, race tests.
check: fmt-check vet build test race

## fmt-check: fail if any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run the engine hot-path benchmarks and save them as JSON.
## Committed results live in BENCH_engine.json; regenerate on a quiet
## machine and note GOMAXPROCS when comparing across hosts.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/engine | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_engine.json

## bench-check: hot-path regression gate — rerun the engine benchmarks
## (few iterations: this is a smoke gate, not a measurement) and fail if
## any benchmark kept since the committed BENCH_engine.json baseline got
## more than 3x slower in ns/op. The wide factor is deliberate: at 10
## iterations the allocation-dominated benchmarks sit well above their
## full-benchtime steady state (GC pacing and span reuse never settle),
## so a tight ns/op bound would flake — order-of-magnitude regressions
## still trip it. The precise check is allocs/op on the stage-boundary
## benchmarks, gated exactly (allocation counts are deterministic; any
## growth is a real change to the typed data path). New and removed
## benchmarks are reported but never fail; regenerate the baseline with
## `make bench`.
bench-check:
	$(GO) test -bench . -benchmem -benchtime 10x -run '^$$' ./internal/engine | $(GO) run ./cmd/benchjson -check BENCH_engine.json -factor 3 -gate-allocs ShuffleBoundary

## fuzz-smoke: fuzz the batch wire codec for 30s from the checked-in seed
## corpus (internal/engine/testdata/fuzz/FuzzBatchCodec), then the
## process-pool frame protocol for 15s (the driver parses these bytes off
## a socket from another process). Neither decoder may panic on arbitrary
## bytes, and everything accepted must round-trip; CI runs this on every
## push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBatchCodec -fuzztime 30s ./internal/engine
	$(GO) test -run '^$$' -fuzz FuzzWireFrame -fuzztime 15s ./internal/procpool

## figures: regenerate the simulated-cluster paper figures
## (internal/bench/testdata/bench_rows.csv).
figures:
	$(GO) run ./cmd/matbench -q -csv internal/bench/testdata/bench_rows.csv

## sched-bench: smoke the multi-tenant scheduler — both sweep tables
## plus one speculation run (what EXPERIMENTS.md's sec-sched section
## reports).
sched-bench:
	$(GO) run ./cmd/matbench -q -exp sec-sched
	$(GO) run ./cmd/matbench -q -exp sec-sched-straggle
	$(GO) run ./cmd/matbench -tenants 3 -policy fair -speculate -straggle 0.25

## shred-bench: smoke the shredded nested-bag lowering — the Zipf-skew
## sweep (materialized vs shredded clock and peak task memory; what
## EXPERIMENTS.md's sec-shred section reports) plus one run's EXPLAIN
## ANALYZE showing the shred rule's decision.
shred-bench:
	$(GO) run ./cmd/matbench -q -exp sec-shred
	$(GO) run ./cmd/matbench -explain shred

## procchaos-bench: smoke the process pool's self-healing — 20 jobs
## under seeded worker kills; exits nonzero unless the respawn-on run
## matches the reference bit-for-bit (with at least one respawn and one
## lineage recomputation) and the respawn-off control aborts.
procchaos-bench:
	$(GO) run ./cmd/matbench -records-per-gb 2000 -backend proc -procchaos

## chaos-bench: smoke the fault-tolerance path — the crash-rate sweep
## (abort vs lineage recovery; what EXPERIMENTS.md's sec9-chaos section
## reports) plus one chaotic run rendered end to end.
chaos-bench:
	$(GO) run ./cmd/matbench -q -exp sec9-chaos
	$(GO) run ./cmd/matbench -explain chaos
