GO ?= go

.PHONY: check test race vet build bench bench-check figures fmt-check sched-bench chaos-bench

## check: everything CI runs — formatting, vet, build, tests, race tests.
check: fmt-check vet build test race

## fmt-check: fail if any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run the engine hot-path benchmarks and save them as JSON.
## Committed results live in BENCH_engine.json; regenerate on a quiet
## machine and note GOMAXPROCS when comparing across hosts.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/engine | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_engine.json

## bench-check: hot-path regression gate — rerun the engine benchmarks
## (few iterations: this is a smoke gate, not a measurement) and fail if
## any benchmark kept since the committed BENCH_engine.json baseline got
## more than 2x slower in ns/op. New and removed benchmarks are reported
## but never fail; regenerate the baseline with `make bench`.
bench-check:
	$(GO) test -bench . -benchmem -benchtime 3x -run '^$$' ./internal/engine | $(GO) run ./cmd/benchjson -check BENCH_engine.json -factor 2

## figures: regenerate the simulated-cluster paper figures
## (internal/bench/testdata/bench_rows.csv).
figures:
	$(GO) run ./cmd/matbench -q -csv internal/bench/testdata/bench_rows.csv

## sched-bench: smoke the multi-tenant scheduler — both sweep tables
## plus one speculation run (what EXPERIMENTS.md's sec-sched section
## reports).
sched-bench:
	$(GO) run ./cmd/matbench -q -exp sec-sched
	$(GO) run ./cmd/matbench -q -exp sec-sched-straggle
	$(GO) run ./cmd/matbench -tenants 3 -policy fair -speculate -straggle 0.25

## chaos-bench: smoke the fault-tolerance path — the crash-rate sweep
## (abort vs lineage recovery; what EXPERIMENTS.md's sec9-chaos section
## reports) plus one chaotic run rendered end to end.
chaos-bench:
	$(GO) run ./cmd/matbench -q -exp sec9-chaos
	$(GO) run ./cmd/matbench -explain chaos
