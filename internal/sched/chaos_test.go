package sched

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"matryoshka/internal/cluster"
)

// TestCrashRequeuesRunningTasks: a crash mid-stage kills the machine's
// running tasks; fresh copies queue behind the survivors and the elapsed
// time stays charged as waste. 8 tasks × 2s fill both machines at t=0.6;
// machine 0 crashes at t=1.6 (1s in), its 4 tasks re-queue and run on
// machine 1 when it frees at 2.6 → makespan 4.6.
func TestCrashRequeuesRunningTasks(t *testing.T) {
	s, err := New(Config{
		Cluster: testConfig(),
		Chaos: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: 1.6, Machine: 0, Kind: cluster.FaultCrash},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}},
		[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(8, 2, 1<<20)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Err != nil {
		t.Fatalf("job failed: %v", res.Jobs[0].Err)
	}
	if want := 4.6; math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %f, want %f", res.Makespan, want)
	}
	m := res.Metrics
	if m.Crashes != 1 || m.Rejoins != 0 {
		t.Errorf("crashes/rejoins = %d/%d, want 1/0", m.Crashes, m.Rejoins)
	}
	if m.Requeues != 4 {
		t.Errorf("requeues = %d, want 4", m.Requeues)
	}
	if want := 4.0; math.Abs(m.RequeueWastedSec-want) > 1e-9 {
		t.Errorf("requeue waste = %f, want %f", m.RequeueWastedSec, want)
	}
	// Busy time = 8 useful runs × 2s + 4 killed 1s attempts.
	if want := 20.0; math.Abs(m.Tenants[0].BusySec-want) > 1e-9 {
		t.Errorf("busy = %f, want %f", m.Tenants[0].BusySec, want)
	}
}

// TestRejoinRestoresCapacityAndBlacklistsRepeatOffender: a machine's
// first rejoin is immediate re-admission; after its second crash it is
// blacklisted for Repair seconds past the rejoin, so the re-queued tasks
// wait for the healthy machine instead of landing back on the flaky one.
func TestRejoinRestoresCapacityAndBlacklistsRepeatOffender(t *testing.T) {
	s, err := New(Config{
		Cluster: testConfig(),
		Chaos: cluster.FaultPlan{
			Repair: 1,
			Events: []cluster.FaultEvent{
				{At: 0.2, Machine: 0, Kind: cluster.FaultCrash},
				{At: 0.4, Machine: 0, Kind: cluster.FaultRejoin},
				{At: 1.0, Machine: 0, Kind: cluster.FaultCrash},
				{At: 1.2, Machine: 0, Kind: cluster.FaultRejoin},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 tasks × 1s start at 0.6 on both machines (machine 0 is back by
	// then). The 1.0 crash kills machine 0's four 0.4s-old tasks; its 1.2
	// rejoin is blacklisted until 2.2, so the re-queued tasks run on
	// machine 1 at 1.6 → makespan 2.6. Without the blacklist they would
	// have restarted on machine 0 at 1.2.
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}},
		[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(8, 1, 1<<20)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Err != nil {
		t.Fatalf("job failed: %v", res.Jobs[0].Err)
	}
	if want := 2.6; math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %f, want %f (blacklist not honoured?)", res.Makespan, want)
	}
	m := res.Metrics
	if m.Crashes != 2 || m.Rejoins != 2 {
		t.Errorf("crashes/rejoins = %d/%d, want 2/2", m.Crashes, m.Rejoins)
	}
	if m.Requeues != 4 {
		t.Errorf("requeues = %d, want 4", m.Requeues)
	}
	if want := 1.6; math.Abs(m.RequeueWastedSec-want) > 1e-9 {
		t.Errorf("requeue waste = %f, want %f", m.RequeueWastedSec, want)
	}
}

// TestStrandedPoolFailsJobs: an explicit plan that kills every machine
// with no rejoin fails the open jobs with the typed dead-cluster error
// instead of hanging the workload.
func TestStrandedPoolFailsJobs(t *testing.T) {
	s, err := New(Config{
		Cluster: testConfig(),
		Chaos: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: 0.7, Machine: 0, Kind: cluster.FaultCrash},
			{At: 0.7, Machine: 1, Kind: cluster.FaultCrash},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}},
		[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(8, 2, 1<<20)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Jobs[0].Err, cluster.ErrNoLiveMachines) {
		t.Fatalf("job err = %v, want ErrNoLiveMachines", res.Jobs[0].Err)
	}
	if res.Metrics.Requeues != 8 {
		t.Errorf("requeues = %d, want 8 (both machines' tasks killed)", res.Metrics.Requeues)
	}
}

// TestHazardWorkloadBitIdentical: a flaky pool under a fixed-seed MTBF
// hazard produces exactly equal workload results — latencies, makespan,
// crash and requeue counters — on every run.
func TestHazardWorkloadBitIdentical(t *testing.T) {
	run := func() WorkloadResult {
		s, err := New(Config{
			Cluster: testConfig(),
			Policy:  PolicyFair,
			Chaos:   cluster.FaultPlan{MTBF: 6, Repair: 1, Seed: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		var jobs []JobSpec
		for i := 0; i < 20; i++ {
			tenant := "a"
			if i%3 == 0 {
				tenant = "b"
			}
			jobs = append(jobs, JobSpec{
				Tenant:  tenant,
				Arrival: 0.5 * float64(i),
				Stages: [][]cluster.Task{
					uniformStage(6+i%5, 0.4, 1<<20),
					uniformStage(4, 0.3, 1<<20),
				},
			})
		}
		res, err := s.RunWorkload(
			[]TenantSpec{{Name: "a"}, {Name: "b", Weight: 2}},
			jobs,
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	if base.Metrics.Crashes == 0 || base.Metrics.Requeues == 0 {
		t.Fatalf("hazard too tame to test anything: %+v", base.Metrics)
	}
	for _, j := range base.Jobs {
		if j.Err != nil {
			t.Fatalf("job failed under hazard: %v", j.Err)
		}
	}
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(base, got) {
			t.Fatalf("hazard run %d diverged:\nbase: %+v\ngot:  %+v", i, base.Metrics, got.Metrics)
		}
	}
}

// TestConcurrentTenantsSurviveChaos: real engine-style tenants on
// separate goroutines keep working through hazard crashes — stages
// complete (re-queued transparently), and the virtual results are
// bit-identical across runs regardless of goroutine interleaving.
func TestConcurrentTenantsSurviveChaos(t *testing.T) {
	run := func() Metrics {
		s, err := New(Config{
			Cluster: testConfig(),
			Chaos:   cluster.FaultPlan{MTBF: 4, Repair: 0.5, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		tenants := make([]*Tenant, 3)
		for i := range tenants {
			tn, err := s.Register(fmt.Sprintf("t%d", i), 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			tenants[i] = tn
		}
		var wg sync.WaitGroup
		for i, tn := range tenants {
			wg.Add(1)
			go func(i int, tn *Tenant) {
				defer wg.Done()
				defer tn.Done()
				for j := 0; j < 4; j++ {
					tn.StartJob()
					tasks := make([]cluster.Task, 6+i)
					for k := range tasks {
						tasks[k] = cluster.Task{Compute: 0.5 + 0.1*float64(k%3), Memory: 1 << 20}
					}
					if _, err := tn.RunStageReport(tasks); err != nil {
						t.Error(err)
						return
					}
					tn.ReleaseBroadcasts()
				}
			}(i, tn)
		}
		wg.Wait()
		return s.Metrics()
	}
	base := run()
	if base.Crashes == 0 {
		t.Fatal("hazard injected no crashes")
	}
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(base, got) {
			t.Fatalf("concurrent chaos run %d diverged:\nbase: %+v\ngot:  %+v", i, base, got)
		}
	}
}
