package sched

// The declarative path: RunWorkload executes a batch of jobs whose
// arrival times and stage shapes are declared up front, single-threaded
// on the same event loop the concurrent facade uses. This is what the
// sec-sched experiment sweeps: it needs thousands of jobs across many
// tenants with exact arrival control, which would be pure overhead to
// route through real engine sessions.

import (
	"fmt"
	"math"
	"sort"

	"matryoshka/internal/cluster"
)

// TenantSpec declares one tenant of a workload.
type TenantSpec struct {
	Name   string
	Weight float64 // fair-share weight; ≤ 0 means 1
	Budget int     // max jobs in flight before arrivals are rejected; 0 = unlimited
}

// JobSpec declares one job: who submits it, when, and its stages (run
// sequentially; each stage is a task list).
type JobSpec struct {
	Tenant  string
	Arrival float64
	Stages  [][]cluster.Task
}

// JobResult is one job's outcome.
type JobResult struct {
	Tenant  string
	Arrival float64
	Finish  float64
	Latency float64 // Finish − Arrival; includes launch overhead and queue waits
	Err     error   // ErrBackpressure-wrapped rejection or a stage failure
}

// WorkloadResult is what RunWorkload reports.
type WorkloadResult struct {
	Jobs     []JobResult // in input order
	Makespan float64     // virtual time when the last job finished
	Metrics  Metrics
}

// jobSpecRef carries a JobSpec through deterministic sorting without
// losing its input position.
type jobSpecRef struct {
	spec   JobSpec
	tenant *tenantState
	pos    int
	j      *jobRun
}

// RunWorkload executes the declared jobs to completion and reports
// per-job latencies and scheduler metrics. It is deterministic: results
// depend only on the config (including the straggler seed) and the
// inputs. A scheduler instance runs one workload; use a fresh one per
// run. RunWorkload and Register are mutually exclusive on an instance.
func (s *Scheduler) RunWorkload(tenants []TenantSpec, jobs []JobSpec) (WorkloadResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live > 0 {
		return WorkloadResult{}, fmt.Errorf("sched: RunWorkload on a scheduler with registered tenants")
	}
	if s.workload {
		return WorkloadResult{}, fmt.Errorf("sched: RunWorkload called twice; use a fresh scheduler")
	}
	s.workload = true

	for _, ts := range tenants {
		if _, err := s.register(ts.Name, ts.Weight, ts.Budget); err != nil {
			return WorkloadResult{}, err
		}
	}
	refs := make([]jobSpecRef, 0, len(jobs))
	for i, js := range jobs {
		t := s.byName[js.Tenant]
		if t == nil {
			return WorkloadResult{}, fmt.Errorf("sched: job %d names unknown tenant %q", i, js.Tenant)
		}
		if js.Arrival < 0 {
			return WorkloadResult{}, fmt.Errorf("sched: job %d has negative arrival %f", i, js.Arrival)
		}
		refs = append(refs, jobSpecRef{spec: js, tenant: t, pos: i})
	}
	// Arrival events are scheduled in sorted order so event sequence
	// numbers — the clock's tie-breaker — are themselves deterministic
	// in the inputs, not in the caller's slice order.
	sortJobSpecs(refs)
	for i := range refs {
		r := &refs[i]
		r.j = &jobRun{t: r.tenant, arrival: r.spec.Arrival, stages: r.spec.Stages}
		s.schedule(r.spec.Arrival, evArrival{r.j})
	}

	s.drive()

	res := WorkloadResult{
		Jobs:     make([]JobResult, len(jobs)),
		Makespan: s.clock.Now(),
		Metrics:  s.metricsLocked(),
	}
	for _, r := range refs {
		res.Jobs[r.pos] = JobResult{
			Tenant:  r.tenant.name,
			Arrival: r.j.arrival,
			Finish:  r.j.finish,
			Latency: r.j.finish - r.j.arrival,
			Err:     r.j.err,
		}
	}
	return res, nil
}

// startWorkloadJob handles a job-arrival event: admission, the launch
// overhead, and the first stage.
func (s *Scheduler) startWorkloadJob(j *jobRun) {
	t := j.t
	t.jobSeq++
	j.seq = t.jobSeq
	now := s.clock.Now()
	if t.budget > 0 && t.active >= t.budget {
		j.err = fmt.Errorf("tenant %s: %d jobs in flight (budget %d): %w", t.name, t.active, t.budget, ErrBackpressure)
		j.done = true
		j.finish = now
		s.met.admitRejected++
		s.schedEventRaw(t, j.seq, 0, "admit-reject", 0,
			fmt.Sprintf("%d jobs in flight, budget %d", t.active, t.budget))
		return
	}
	t.active++
	t.stats.Jobs++
	s.submitWorkloadStage(j, now+s.cfg.Cluster.JobLaunchOverhead)
}

// submitWorkloadStage submits the job's next stage at virtual time
// `at`, or finishes the job when none remain.
func (s *Scheduler) submitWorkloadStage(j *jobRun, at float64) {
	if j.next >= len(j.stages) {
		s.finishWorkloadJob(j, at)
		return
	}
	tasks := j.stages[j.next]
	j.next++
	st := s.newStage(j, tasks, at)
	s.schedule(st.readyAt, evStageReady{st})
}

// advanceWorkloadJob chains the job forward after a stage completes.
func (s *Scheduler) advanceWorkloadJob(j *jobRun, now float64) {
	s.submitWorkloadStage(j, now)
}

// finishWorkloadJob closes a job at virtual time `now`; latency is
// recorded only for jobs that ran to success.
func (s *Scheduler) finishWorkloadJob(j *jobRun, now float64) {
	if j.done {
		return
	}
	j.done = true
	j.finish = now
	t := j.t
	t.active--
	t.vnow = math.Max(t.vnow, now)
	if j.err == nil {
		t.latencies = append(t.latencies, now-j.arrival)
	}
}

// Percentile returns the p∈[0,1] percentile of xs (nearest-rank on a
// sorted copy); 0 when xs is empty.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
