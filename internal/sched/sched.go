// Package sched is a multi-tenant job scheduler for the simulated
// cluster: it sits between engine sessions and the shared slot pool,
// accepting concurrent job submissions from multiple tenants and placing
// their stages' tasks under a pluggable policy (FIFO, weighted fair
// share), with per-tenant admission control and speculative re-execution
// of straggling tasks.
//
// The paper's inner-parallel programs launch thousands of tiny jobs
// (Sec. 9 measures exactly that job-launch overhead), but a single
// cluster.Simulator executes one job at a time: there is no notion of
// concurrent jobs, tenants, or contention. This package adds that layer.
// Time is kept on a deterministic event-queue virtual clock
// (cluster.EventClock): tasks from different jobs interleave at task
// granularity, not wave granularity, and every decision — placement
// order, straggler draws, speculation triggers — is a pure function of
// virtual state and the seed, never of goroutine interleaving. For a
// fixed seed, makespans and per-job latencies are bit-identical across
// runs.
//
// Two entry points share the same event loop:
//
//   - RunWorkload executes a declared batch of jobs (arrival times,
//     stages, tasks) single-threadedly — the sec-sched experiment's path.
//   - Register returns a Tenant that implements the engine's Backend
//     interface, so real engine sessions running on separate goroutines
//     charge their stages to the shared pool. Determinism under real
//     concurrency comes from quiescence gating: the event loop only
//     advances when every live tenant is parked inside a scheduler call,
//     and pending submissions are admitted in virtual-time order with
//     total tie-breaking (tenant id, job, stage).
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// Policy names a task-placement policy.
type Policy string

const (
	// PolicyFIFO places tasks in job-arrival order — the head-of-line
	// blocking baseline.
	PolicyFIFO Policy = "fifo"
	// PolicyFair places the next task from the tenant with the smallest
	// weighted dominant share of core·time and memory·time (weighted DRF).
	PolicyFair Policy = "fair"
)

// ErrBackpressure reports a submission rejected by per-tenant admission
// control: the tenant already has its budget of jobs in flight.
var ErrBackpressure = errors.New("sched: tenant submission queue over budget")

// Config describes the shared pool and the scheduling policy.
type Config struct {
	// Cluster provides the slot pool (Machines × CoresPerMachine), the
	// per-machine memory budget, and the overhead cost model
	// (JobLaunchOverhead, StageOverhead, TaskOverhead).
	Cluster cluster.Config
	// Policy selects task placement; default PolicyFIFO.
	Policy Policy
	// Speculate enables speculative straggler mitigation: a backup copy
	// of a task whose elapsed time exceeds Spec's quantile threshold is
	// launched; the first finisher wins, the loser's burned core·seconds
	// stay charged.
	Speculate bool
	// Spec is the speculation trigger; zero fields take Spark-like
	// defaults (quantile 0.75, multiplier 1.5).
	Spec cluster.SpecPolicy
	// Straggle injects deterministic per-task duration skew. Factor
	// defaults to 8 when Rate > 0.
	Straggle cluster.Skew
	// Chaos injects machine failures into the pool (chaos.go): crashes
	// kill and re-queue the machine's running tasks, rejoins restore its
	// capacity, repeat offenders are blacklisted. The zero plan injects
	// nothing.
	Chaos cluster.FaultPlan
	// Obs, when non-nil, receives scheduler events (queue waits,
	// speculation, admission rejections) rendered by EXPLAIN ANALYZE.
	Obs *obs.Recorder
}

// Scheduler owns the shared virtual clock, the slot pool and the queues.
// All mutable state is guarded by mu; the event loop (drive) runs under
// it at quiescence points.
type Scheduler struct {
	mu      sync.Mutex
	cfg     Config
	slots   int
	clock   cluster.EventClock
	keySeq  uint64
	payload map[uint64]any

	machines  []machineState
	freeSlots int
	ready     []*taskRun

	// liveMachines counts machines not down; workEvents counts scheduled
	// events that represent work (stage readiness, arrivals, task
	// completions, spec checks) as opposed to machine weather. Together
	// they let drive stop when only an endless hazard remains (chaos.go).
	liveMachines int
	workEvents   int

	tenants []*tenantState
	byName  map[string]*tenantState

	// live/parked implement quiescence gating for concurrent tenants:
	// the event loop advances only when every live tenant is parked in a
	// scheduler call. fulfilled counts requests completed by the current
	// drive, which stops the loop so unparked tenants can resubmit before
	// the clock moves again. pending holds parked submissions that have
	// not been admitted yet: they are scheduled in sorted virtual order
	// at quiescence, so event sequence numbers — the clock's tie-breaker
	// — never depend on which goroutine reached the lock first.
	live      int
	parked    int
	fulfilled int
	pending   []*stageRun

	// workload is set while RunWorkload owns the loop (single-threaded
	// mode: stage completion chains the job's next stage directly).
	workload bool

	met aggMetrics
}

type machineState struct {
	freeCores int
	freeMem   int64

	// Machine-failure state (chaos.go). A down machine holds no capacity;
	// a rejoined one may still be blacklisted (not placed on) until
	// blackUntil. hazDraw counts the MTBF hazard's exponential draws.
	down       bool
	blackUntil float64
	crashes    int
	hazDraw    int
}

// New builds a scheduler over the given pool. Invalid configurations are
// reported as errors.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyFIFO
	case PolicyFIFO, PolicyFair:
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", cfg.Policy)
	}
	if cfg.Straggle.Rate > 0 && cfg.Straggle.Factor <= 1 {
		cfg.Straggle.Factor = 8
	}
	if err := cfg.Chaos.Validate(cfg.Cluster.Machines); err != nil {
		return nil, err
	}
	if cfg.Chaos.Active() {
		cfg.Chaos = cfg.Chaos.WithDefaults()
	}
	s := &Scheduler{
		cfg:     cfg,
		slots:   cfg.Cluster.Slots(),
		payload: map[uint64]any{},
		byName:  map[string]*tenantState{},
	}
	s.freeSlots = s.slots
	s.machines = make([]machineState, cfg.Cluster.Machines)
	for i := range s.machines {
		s.machines[i] = machineState{freeCores: cfg.Cluster.CoresPerMachine, freeMem: cfg.Cluster.MemoryPerMachine}
	}
	s.liveMachines = cfg.Cluster.Machines
	if cfg.Chaos.Active() {
		s.scheduleFaults()
	}
	return s, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// tenantState is the scheduler-side record of one tenant. Tenant ids are
// registration order, which callers must keep deterministic (register
// from one goroutine, in a fixed order) — ids break policy ties.
type tenantState struct {
	id     int
	name   string
	weight float64
	budget int

	vnow     float64 // the tenant's own virtual time
	inflight int     // admission-gated submissions in flight (concurrent mode)
	active   int     // jobs in flight (workload mode)
	jobSeq   int
	cur      *jobRun // engine mode: job between StartJob and ReleaseBroadcasts

	coreSec    float64 // fairness usage: core·seconds placed
	memByteSec float64 // fairness usage: byte·seconds placed
	done       bool

	stats     cluster.Stats
	latencies []float64
	queueWait float64
}

// jobRun is one job's scheduler state.
type jobRun struct {
	t        *tenantState
	seq      int // tenant-local sequence, 1-based
	arrival  float64
	resident int64 // broadcast bytes pinned for the job's remainder
	stageSeq int

	// workload mode: the declared stages still to run.
	stages [][]cluster.Task
	next   int
	finish float64
	err    error
	done   bool
}

// stageRun is one submitted stage: its tasks, live copies, and the
// report being accumulated.
type stageRun struct {
	job      *jobRun
	seq      int // job-local, 1-based
	submitVT float64
	readyAt  float64
	total    int
	specs    []cluster.Task // the submitted tasks, until readiness

	taskDone  []bool
	live      [][2]*taskRun // per task index: primary, backup
	backed    []bool
	completed []float64

	firstStart float64 // -1 until the first placement
	nDone      int
	running    int
	busy       float64
	maxTaskSec float64
	maxTaskMem int64

	specLaunched int
	specWon      int
	specWasted   float64
	prefViol     int

	failed error
	req    *stageReq // concurrent mode; nil under RunWorkload
}

const (
	taskQueued = iota
	taskRunning
	taskDone
	taskCancelled
)

// taskRun is one copy (primary or speculative backup) of one task.
type taskRun struct {
	st     *stageRun
	idx    int
	backup bool
	nomDur float64 // compute + task overhead, unskewed
	dur    float64 // actual duration (primary: nomDur × straggler stretch)
	need   int64   // memory to reserve: task memory + job-resident broadcasts
	pref   int     // locality-preferred machine

	state   int
	machine int
	start   float64
}

// stageReq parks a concurrent tenant's stage submission until the event
// loop completes (or fails) the stage.
type stageReq struct {
	done chan struct{}
	rep  cluster.StageReport
	err  error
}

// aggMetrics are the scheduler-wide counters behind Metrics.
type aggMetrics struct {
	specLaunched  int
	specWon       int
	specWasted    float64
	prefViol      int
	admitRejected int
	queueWait     float64

	// chaos counters (chaos.go)
	crashes      int
	rejoins      int
	requeues     int
	requeueWaste float64
}

// TenantMetrics is one tenant's share of a Metrics snapshot.
type TenantMetrics struct {
	Name      string
	Weight    float64
	Jobs      int
	Latencies []float64 // per finished job, submission → completion
	QueueWait float64   // summed stage queue waits
	CoreSec   float64   // core·seconds placed (fairness usage)
	BusySec   float64
}

// Metrics is a snapshot of what the scheduler has done.
type Metrics struct {
	Clock          float64 // current virtual time (makespan so far)
	SpecLaunched   int
	SpecWon        int
	SpecWastedSec  float64
	PrefViolations int
	AdmitRejected  int
	QueueWaitSec   float64

	// Machine-failure accounting (chaos.go): crashes applied, rejoins
	// applied, task copies re-queued off crashed machines, and the
	// core·seconds those killed copies had burned.
	Crashes          int
	Rejoins          int
	Requeues         int
	RequeueWastedSec float64

	Tenants []TenantMetrics
}

// Metrics returns a deterministic snapshot (tenants in registration
// order).
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Scheduler) metricsLocked() Metrics {
	m := Metrics{
		Clock:          s.clock.Now(),
		SpecLaunched:   s.met.specLaunched,
		SpecWon:        s.met.specWon,
		SpecWastedSec:  s.met.specWasted,
		PrefViolations: s.met.prefViol,
		AdmitRejected:  s.met.admitRejected,
		QueueWaitSec:   s.met.queueWait,

		Crashes:          s.met.crashes,
		Rejoins:          s.met.rejoins,
		Requeues:         s.met.requeues,
		RequeueWastedSec: s.met.requeueWaste,
	}
	for _, t := range s.tenants {
		m.Tenants = append(m.Tenants, TenantMetrics{
			Name:      t.name,
			Weight:    t.weight,
			Jobs:      t.stats.Jobs,
			Latencies: append([]float64(nil), t.latencies...),
			QueueWait: t.queueWait,
			CoreSec:   t.coreSec,
			BusySec:   t.stats.BusySeconds,
		})
	}
	return m
}

// register adds a tenant under the lock.
func (s *Scheduler) register(name string, weight float64, budget int) (*tenantState, error) {
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("sched: tenant %q already registered", name)
	}
	if weight <= 0 {
		weight = 1
	}
	t := &tenantState{id: len(s.tenants), name: name, weight: weight, budget: budget}
	s.tenants = append(s.tenants, t)
	s.byName[name] = t
	return t, nil
}

// ---- event plumbing -------------------------------------------------

// evStageReady marks a stage's tasks becoming runnable (StageOverhead
// elapsed after submission); evArrival is a workload job arriving;
// evSpecCheck re-examines one running task for speculation.
type evStageReady struct{ st *stageRun }
type evArrival struct{ j *jobRun }
type evSpecCheck struct{ tr *taskRun }

func (s *Scheduler) schedule(at float64, p any) {
	s.keySeq++
	s.payload[s.keySeq] = p
	s.clock.Schedule(at, s.keySeq)
	if !machineEvent(p) {
		s.workEvents++
	}
}

// newStage records a submitted stage. The caller schedules (or defers)
// its readiness: workload mode schedules immediately, the concurrent
// path queues it on pending for sorted admission at quiescence.
func (s *Scheduler) newStage(j *jobRun, tasks []cluster.Task, submitVT float64) *stageRun {
	j.stageSeq++
	st := &stageRun{
		job:        j,
		seq:        j.stageSeq,
		submitVT:   submitVT,
		readyAt:    submitVT + s.cfg.Cluster.StageOverhead,
		total:      len(tasks),
		taskDone:   make([]bool, len(tasks)),
		live:       make([][2]*taskRun, len(tasks)),
		backed:     make([]bool, len(tasks)),
		firstStart: -1,
	}
	j.t.stats.Stages++
	j.t.stats.Tasks += len(tasks)
	// Task copies are created at readiness, not here: straggler draws are
	// hash-derived from ids, so the timing makes no difference, but the
	// resident-broadcast memory need is sampled as late as possible.
	st.specs = tasks
	return st
}

// admitPending schedules the parked submissions accumulated since the
// last drive, in virtual order (submission time, then tenant id — a
// tenant parks at most one request). Wall-clock arrival order at the
// mutex never reaches the event heap.
func (s *Scheduler) admitPending() {
	sort.Slice(s.pending, func(i, j int) bool {
		a, b := s.pending[i], s.pending[j]
		if a.submitVT != b.submitVT {
			return a.submitVT < b.submitVT
		}
		return a.job.t.id < b.job.t.id
	})
	for _, st := range s.pending {
		s.schedule(st.readyAt, evStageReady{st})
	}
	s.pending = s.pending[:0]
}

// drive advances the event loop. In workload mode it runs until the
// system drains; in concurrent mode it returns as soon as at least one
// parked request has been fulfilled, so the woken tenants can resubmit
// before the clock moves past them.
func (s *Scheduler) drive() {
	for {
		s.placeReady()
		if !s.workload && s.fulfilled > 0 {
			s.fulfilled = 0
			return
		}
		ev, ok := s.clock.Peek()
		if !ok {
			// A dead pool with nothing scheduled to revive it: fail the
			// stranded stages (their completions may wake parked tenants)
			// instead of hanging or silently returning.
			if s.failStranded() {
				continue
			}
			if !s.workload && s.parked > 0 {
				panic(fmt.Sprintf("sched: stuck: %d parked requests, no events, nothing placeable", s.parked))
			}
			return
		}
		// Lazily-cancelled events (a speculated task's losing copy, a
		// speculation check for a task that already finished) must not
		// advance the clock: drop them where Next would jump to them.
		if s.staleEvent(s.payload[ev.Key]) {
			if !machineEvent(s.payload[ev.Key]) {
				s.workEvents--
			}
			s.clock.Drop()
			delete(s.payload, ev.Key)
			continue
		}
		// When only cluster weather remains — no work scheduled, nothing
		// queued, nobody parked — the system is drained: return with the
		// remaining (possibly endless, under a hazard) machine events
		// unplayed rather than simulating an empty cluster forever.
		if machineEvent(s.payload[ev.Key]) && s.workEvents == 0 && len(s.ready) == 0 && s.parked == 0 {
			return
		}
		ev, _ = s.clock.Next()
		p := s.payload[ev.Key]
		delete(s.payload, ev.Key)
		if !machineEvent(p) {
			s.workEvents--
		}
		switch e := p.(type) {
		case evStageReady:
			s.stageBecameReady(e.st)
		case evArrival:
			s.startWorkloadJob(e.j)
		case evSpecCheck:
			s.specCheck(e.tr)
		case *taskRun:
			s.taskFinished(e)
		case evCrash:
			if e.hazard {
				// Hazard transitions chain their successor whether or not
				// they apply, so the schedule survives explicit overlaps.
				s.schedule(s.clock.Now()+s.cfg.Chaos.Repair, evRejoin{machine: e.machine, hazard: true})
			}
			s.machineCrash(e.machine)
		case evRejoin:
			if e.hazard {
				ms := &s.machines[e.machine]
				s.schedule(s.clock.Now()+s.cfg.Chaos.CrashGap(e.machine, ms.hazDraw), evCrash{machine: e.machine, hazard: true})
				ms.hazDraw++
			}
			s.machineRejoin(e.machine)
		case evBlacklistOver:
			// Nothing to do: placeReady at the top of the loop re-examines
			// the queue now that the machine is placeable again.
		}
	}
}

// staleEvent reports whether a scheduled event no longer matters: its
// task was cancelled or finished, or its stage already failed.
func (s *Scheduler) staleEvent(p any) bool {
	switch e := p.(type) {
	case *taskRun:
		return e.state != taskRunning
	case evSpecCheck:
		return e.tr.state != taskRunning || e.tr.st.taskDone[e.tr.idx] || e.tr.st.failed != nil
	case evStageReady:
		return e.st.failed != nil
	}
	return false
}

// stageBecameReady creates the stage's primary task copies and enqueues
// them.
func (s *Scheduler) stageBecameReady(st *stageRun) {
	if st.failed != nil {
		return
	}
	if st.total == 0 {
		s.completeStage(st)
		return
	}
	t := st.job.t
	for i, spec := range st.specs {
		nom := spec.Compute + s.cfg.Cluster.TaskOverhead
		stretch := s.cfg.Straggle.Stretch(uint64(t.id), uint64(st.job.seq), uint64(st.seq), uint64(i))
		tr := &taskRun{
			st:     st,
			idx:    i,
			nomDur: nom,
			dur:    nom * stretch,
			need:   spec.Memory + st.job.resident,
			pref:   s.prefMachine(t.id, st.job.seq, st.seq, i),
			state:  taskQueued,
		}
		if spec.Memory > st.maxTaskMem {
			st.maxTaskMem = spec.Memory
		}
		st.live[i][0] = tr
		s.ready = append(s.ready, tr)
	}
}

// prefMachine derives a task's locality-preferred machine from its
// identity — a stand-in for "where its input block lives". Pure hash:
// the same task prefers the same machine on every run.
func (s *Scheduler) prefMachine(ids ...int) int {
	h := uint64(0x9e3779b97f4a7c15)
	for _, id := range ids {
		h ^= uint64(id)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	return int(h % uint64(len(s.machines)))
}

// placeReady places as many queued task copies as slots and memory
// allow, in policy order. A copy that fits no machine right now is
// skipped for this round (it stays queued); a copy that could not fit
// even on an idle machine fails its stage with an OOM.
func (s *Scheduler) placeReady() {
	var blocked map[*taskRun]bool
	for s.freeSlots > 0 {
		tr := s.pickNext(blocked)
		if tr == nil {
			break
		}
		if tr.need > s.cfg.Cluster.MemoryPerMachine {
			s.failStage(tr.st, &cluster.OOMError{
				What: "task", Bytes: tr.need, Limit: s.cfg.Cluster.MemoryPerMachine,
				Wave: 1, Machine: tr.pref, Resident: tr.st.job.resident,
			})
			continue
		}
		m, viol := s.chooseMachine(tr)
		if m < 0 {
			if blocked == nil {
				blocked = map[*taskRun]bool{}
			}
			blocked[tr] = true
			continue
		}
		s.place(tr, m, viol)
	}
	s.compactReady()
}

// pickNext returns the queued copy the policy would place next, skipping
// blocked ones; nil when nothing is placeable.
func (s *Scheduler) pickNext(blocked map[*taskRun]bool) *taskRun {
	var best *taskRun
	switch s.cfg.Policy {
	case PolicyFair:
		// Weighted DRF: find the tenant with the smallest weighted
		// dominant share among tenants with a placeable copy, then FIFO
		// within that tenant.
		var bestShare float64
		var bestTenant *tenantState
		for _, tr := range s.ready {
			if !placeable(tr, blocked) {
				continue
			}
			t := tr.st.job.t
			if bestTenant == nil || t.id != bestTenant.id {
				sh := s.domShare(t)
				if bestTenant == nil || sh < bestShare || (sh == bestShare && t.id < bestTenant.id) {
					bestShare, bestTenant = sh, t
				}
			}
		}
		if bestTenant == nil {
			return nil
		}
		for _, tr := range s.ready {
			if !placeable(tr, blocked) || tr.st.job.t != bestTenant {
				continue
			}
			if best == nil || fifoLess(tr, best) {
				best = tr
			}
		}
	default: // PolicyFIFO
		for _, tr := range s.ready {
			if !placeable(tr, blocked) {
				continue
			}
			if best == nil || fifoLess(tr, best) {
				best = tr
			}
		}
	}
	return best
}

func placeable(tr *taskRun, blocked map[*taskRun]bool) bool {
	return tr.state == taskQueued && tr.st.failed == nil && !blocked[tr]
}

// fifoLess is the total FIFO order: job arrival, then tenant id, then
// job, stage, task, copy.
func fifoLess(a, b *taskRun) bool {
	aj, bj := a.st.job, b.st.job
	if aj.arrival != bj.arrival {
		return aj.arrival < bj.arrival
	}
	if aj.t.id != bj.t.id {
		return aj.t.id < bj.t.id
	}
	if aj.seq != bj.seq {
		return aj.seq < bj.seq
	}
	if a.st.seq != b.st.seq {
		return a.st.seq < b.st.seq
	}
	if a.idx != b.idx {
		return a.idx < b.idx
	}
	return !a.backup && b.backup
}

// domShare is the tenant's weighted dominant share: the larger of its
// core·time and memory·time usage, each normalized by cluster capacity,
// divided by its weight.
func (s *Scheduler) domShare(t *tenantState) float64 {
	core := t.coreSec / float64(s.slots)
	mem := t.memByteSec / (float64(s.cfg.Cluster.Machines) * float64(s.cfg.Cluster.MemoryPerMachine))
	return math.Max(core, mem) / t.weight
}

// chooseMachine picks where to run tr: its preferred machine when that
// is available with a free core and memory, else the feasible machine
// with the most free memory (lowest index on ties) — counted as a
// locality preference violation. Down and blacklisted machines are never
// chosen. Returns -1 when nothing currently fits.
func (s *Scheduler) chooseMachine(tr *taskRun) (int, bool) {
	p := &s.machines[tr.pref]
	if s.available(tr.pref) && p.freeCores > 0 && p.freeMem >= tr.need {
		return tr.pref, false
	}
	best := -1
	for i := range s.machines {
		m := &s.machines[i]
		if !s.available(i) || m.freeCores <= 0 || m.freeMem < tr.need {
			continue
		}
		if best < 0 || m.freeMem > s.machines[best].freeMem {
			best = i
		}
	}
	return best, best >= 0
}

// place starts copy tr on machine m at the current virtual time.
func (s *Scheduler) place(tr *taskRun, m int, viol bool) {
	now := s.clock.Now()
	st := tr.st
	t := st.job.t
	tr.state = taskRunning
	tr.machine = m
	tr.start = now
	s.machines[m].freeCores--
	s.machines[m].freeMem -= tr.need
	s.freeSlots--
	st.running++
	if st.firstStart < 0 {
		st.firstStart = now
	}
	if viol {
		st.prefViol++
		s.met.prefViol++
	}
	// Fairness usage is charged at placement from the nominal duration:
	// the policy sees expected cost, as a real scheduler would, not the
	// straggler-inflated actual.
	t.coreSec += tr.nomDur
	t.memByteSec += float64(tr.need) * tr.nomDur
	s.schedule(now+tr.dur, tr)
	// A task placed after the stage's speculation threshold is already
	// known may never see another sibling completion (the tail case that
	// decides the makespan) — schedule its threshold check now.
	if s.cfg.Speculate && !tr.backup && !st.backed[tr.idx] {
		if thr, ok := s.cfg.Spec.Threshold(st.completed, st.total); ok && thr > 0 {
			st.backed[tr.idx] = true
			s.schedule(now+thr, evSpecCheck{tr})
		}
	}
}

// taskFinished handles a task-completion event.
func (s *Scheduler) taskFinished(tr *taskRun) {
	if tr.state != taskRunning {
		return // cancelled earlier; its slot is already free
	}
	now := s.clock.Now()
	st := tr.st
	s.release(tr)
	tr.state = taskDone
	if st.failed != nil || st.taskDone[tr.idx] {
		return
	}
	st.taskDone[tr.idx] = true
	st.nDone++
	win := now - tr.start
	st.completed = append(st.completed, win)
	st.busy += win
	st.job.t.stats.BusySeconds += win
	if win > st.maxTaskSec {
		st.maxTaskSec = win
	}
	if tr.backup {
		st.specWon++
		s.met.specWon++
		s.schedEvent("spec-won", st, now-tr.start, fmt.Sprintf("backup of task %d finished first", tr.idx))
	}
	// The losing copy is cancelled; its burned core·seconds stay charged,
	// as on a real cluster.
	sib := st.live[tr.idx][0]
	if tr.backup {
		// tr is the backup; the primary is the sibling.
	} else {
		sib = st.live[tr.idx][1]
	}
	if sib != nil && sib != tr {
		switch sib.state {
		case taskRunning:
			waste := now - sib.start
			st.busy += waste
			st.specWasted += waste
			st.job.t.stats.BusySeconds += waste
			s.met.specWasted += waste
			s.release(sib)
			sib.state = taskCancelled
			s.schedEvent("spec-wasted", st, waste, fmt.Sprintf("losing copy of task %d cancelled", sib.idx))
		case taskQueued:
			sib.state = taskCancelled
		}
	}
	st.live[tr.idx][0], st.live[tr.idx][1] = nil, nil
	if st.nDone == st.total {
		s.completeStage(st)
		return
	}
	s.maybeSpeculate(st)
}

// release frees tr's slot and memory.
func (s *Scheduler) release(tr *taskRun) {
	s.machines[tr.machine].freeCores++
	s.machines[tr.machine].freeMem += tr.need
	s.freeSlots++
	tr.st.running--
}

// maybeSpeculate launches (or schedules a future check for) backup
// copies of running tasks that exceed the speculation threshold.
func (s *Scheduler) maybeSpeculate(st *stageRun) {
	if !s.cfg.Speculate || st.failed != nil {
		return
	}
	thr, ok := s.cfg.Spec.Threshold(st.completed, st.total)
	if !ok || thr <= 0 {
		return
	}
	now := s.clock.Now()
	for i := range st.live {
		tr := st.live[i][0]
		if tr == nil || tr.state != taskRunning || st.backed[i] || st.taskDone[i] {
			continue
		}
		// Compare against the same value a future check would be
		// scheduled at — mixing (now-start >= thr) with (start+thr)
		// rounds differently and can loop at one virtual instant.
		if at := tr.start + thr; now >= at {
			s.launchBackup(tr)
		} else {
			// Not over the bar yet: re-check exactly when it would be.
			st.backed[i] = true // one pending check or backup per task
			s.schedule(at, evSpecCheck{tr})
		}
	}
}

// specCheck re-examines one task at its scheduled threshold crossing.
func (s *Scheduler) specCheck(tr *taskRun) {
	st := tr.st
	if st.failed != nil || tr.state != taskRunning || st.taskDone[tr.idx] {
		return
	}
	// The threshold may have moved as more tasks completed; recompute.
	thr, ok := s.cfg.Spec.Threshold(st.completed, st.total)
	if !ok || thr <= 0 {
		st.backed[tr.idx] = false
		return
	}
	now := s.clock.Now()
	if at := tr.start + thr; now >= at {
		st.backed[tr.idx] = false
		s.launchBackup(tr)
	} else {
		s.schedule(at, evSpecCheck{tr})
	}
}

// launchBackup enqueues a speculative copy of running primary tr. The
// backup runs the nominal duration: stragglers are machine-local, and
// the copy prefers a different machine.
func (s *Scheduler) launchBackup(tr *taskRun) {
	st := tr.st
	if st.backed[tr.idx] || st.live[tr.idx][1] != nil {
		return
	}
	st.backed[tr.idx] = true
	bk := &taskRun{
		st:     st,
		idx:    tr.idx,
		backup: true,
		nomDur: tr.nomDur,
		dur:    tr.nomDur,
		need:   tr.need,
		pref:   (tr.pref + 1) % len(s.machines),
		state:  taskQueued,
	}
	st.live[tr.idx][1] = bk
	s.ready = append(s.ready, bk)
	st.specLaunched++
	s.met.specLaunched++
	s.schedEvent("speculate", st, s.clock.Now()-tr.start, fmt.Sprintf("task %d running %.2fs past threshold", tr.idx, s.clock.Now()-tr.start))
}

// completeStage finalizes a stage, reports it, and hands control back:
// to the parked tenant (concurrent mode) or to the job's next stage
// (workload mode).
func (s *Scheduler) completeStage(st *stageRun) {
	now := s.clock.Now()
	t := st.job.t
	qw := 0.0
	if st.firstStart >= 0 {
		qw = st.firstStart - st.readyAt
	}
	rep := cluster.StageReport{
		Tasks:          st.total,
		Makespan:       now - st.readyAt,
		Seconds:        now - st.submitVT,
		BusySeconds:    st.busy,
		MaxTaskSec:     st.maxTaskSec,
		MaxTaskMem:     st.maxTaskMem,
		QueueWait:      qw,
		SpecLaunched:   st.specLaunched,
		SpecWon:        st.specWon,
		SpecWastedSec:  st.specWasted,
		PrefViolations: st.prefViol,
	}
	if st.total > 0 {
		rep.Waves = (st.total + s.slots - 1) / s.slots
	}
	t.vnow = now
	t.queueWait += qw
	s.met.queueWait += qw
	if qw > 1e-9 {
		s.schedEvent("queue-wait", st, qw, fmt.Sprintf("%d tasks waited for slots", st.total))
	}
	if st.req != nil {
		st.req.rep = rep
		close(st.req.done)
		s.parked--
		s.fulfilled++
		return
	}
	s.advanceWorkloadJob(st.job, now)
}

// failStage aborts a stage: live copies are cancelled (burned time stays
// charged), and the failure is reported to the waiting side.
func (s *Scheduler) failStage(st *stageRun, err error) {
	if st.failed != nil {
		return
	}
	now := s.clock.Now()
	st.failed = err
	for i := range st.live {
		for c := 0; c < 2; c++ {
			tr := st.live[i][c]
			if tr == nil {
				continue
			}
			switch tr.state {
			case taskRunning:
				elapsed := now - tr.start
				st.busy += elapsed
				st.job.t.stats.BusySeconds += elapsed
				s.release(tr)
				tr.state = taskCancelled
			case taskQueued:
				tr.state = taskCancelled
			}
			st.live[i][c] = nil
		}
	}
	t := st.job.t
	t.vnow = now
	if st.req != nil {
		st.req.rep = cluster.StageReport{Tasks: st.total, Seconds: now - st.submitVT, BusySeconds: st.busy}
		st.req.err = err
		close(st.req.done)
		s.parked--
		s.fulfilled++
		return
	}
	st.job.err = err
	s.finishWorkloadJob(st.job, now)
}

// compactReady drops placed and cancelled copies from the ready queue.
func (s *Scheduler) compactReady() {
	kept := s.ready[:0]
	for _, tr := range s.ready {
		if tr.state == taskQueued && tr.st.failed == nil {
			kept = append(kept, tr)
		}
	}
	s.ready = kept
}

// schedEvent forwards a scheduler event to the recorder (nil-safe).
func (s *Scheduler) schedEvent(kind string, st *stageRun, seconds float64, detail string) {
	s.schedEventRaw(st.job.t, st.job.seq, st.seq, kind, seconds, detail)
}

func (s *Scheduler) schedEventRaw(t *tenantState, job, stage int, kind string, seconds float64, detail string) {
	if !s.cfg.Obs.Enabled() {
		return
	}
	s.cfg.Obs.Sched(obs.SchedEvent{
		Tenant:  t.name,
		Job:     job,
		Stage:   stage,
		Kind:    kind,
		Seconds: seconds,
		Detail:  detail,
	})
}

// sortJobSpecs orders workload jobs deterministically.
func sortJobSpecs(jobs []jobSpecRef) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].spec.Arrival != jobs[j].spec.Arrival {
			return jobs[i].spec.Arrival < jobs[j].spec.Arrival
		}
		if jobs[i].tenant.id != jobs[j].tenant.id {
			return jobs[i].tenant.id < jobs[j].tenant.id
		}
		return jobs[i].pos < jobs[j].pos
	})
}
