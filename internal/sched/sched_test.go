package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// testConfig is a small pool: 2 machines × 4 cores, 1 GB each, with
// overheads chosen so arithmetic in assertions stays simple.
func testConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Machines = 2
	cfg.CoresPerMachine = 4
	cfg.MemoryPerMachine = 1 << 30
	cfg.JobLaunchOverhead = 0.5
	cfg.StageOverhead = 0.1
	cfg.TaskOverhead = 0
	cfg.TaskFailureRate = 0
	return cfg
}

// uniformStage builds n identical tasks.
func uniformStage(n int, compute float64, mem int64) []cluster.Task {
	tasks := make([]cluster.Task, n)
	for i := range tasks {
		tasks[i] = cluster.Task{Compute: compute, Memory: mem}
	}
	return tasks
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := testConfig()
	bad.Machines = 0
	if _, err := New(Config{Cluster: bad}); err == nil {
		t.Error("New accepted a zero-machine cluster")
	}
	if _, err := New(Config{Cluster: testConfig(), Policy: "lottery"}); err == nil {
		t.Error("New accepted an unknown policy")
	}
}

func TestWorkloadSingleJobAccounting(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// 16 tasks × 1s on 8 slots = 2 waves; latency = launch 0.5 +
	// stage overhead 0.1 + 2s.
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}},
		[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(16, 1, 1<<20)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Err != nil {
		t.Fatalf("unexpected result: %+v", res.Jobs)
	}
	want := 0.5 + 0.1 + 2.0
	if math.Abs(res.Jobs[0].Latency-want) > 1e-9 {
		t.Errorf("latency = %f, want %f", res.Jobs[0].Latency, want)
	}
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %f, want %f", res.Makespan, want)
	}
	m := res.Metrics
	if m.QueueWaitSec != 0 {
		t.Errorf("an empty cluster charged %f queue wait", m.QueueWaitSec)
	}
	if len(m.Tenants) != 1 || m.Tenants[0].Jobs != 1 {
		t.Errorf("tenant metrics = %+v", m.Tenants)
	}
	if math.Abs(m.Tenants[0].BusySec-16.0) > 1e-9 {
		t.Errorf("busy = %f, want 16", m.Tenants[0].BusySec)
	}
}

func TestWorkloadQueueWaitUnderContention(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Job a fills all 8 slots for 10s; job b arrives just after and its
	// single task must wait for a slot.
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}, {Name: "b"}},
		[]JobSpec{
			{Tenant: "a", Arrival: 0, Stages: [][]cluster.Task{uniformStage(8, 10, 1<<20)}},
			{Tenant: "b", Arrival: 0.1, Stages: [][]cluster.Task{uniformStage(1, 1, 1<<20)}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QueueWaitSec <= 0 {
		t.Error("contended stage reported no queue wait")
	}
	// b becomes ready at 0.1+0.5+0.1 = 0.7, can start only when a's
	// tasks finish at 0.6+10 = 10.6, finishes 11.6.
	if got, want := res.Jobs[1].Finish, 11.6; math.Abs(got-want) > 1e-9 {
		t.Errorf("b finished at %f, want %f", got, want)
	}
}

func TestFairShareUnblocksLightTenant(t *testing.T) {
	// A heavy tenant floods the pool at t=0; a light tenant's small jobs
	// trickle in behind. FIFO makes the light jobs wait for the flood;
	// fair share interleaves them.
	lightLatency := func(policy Policy) float64 {
		cfg := testConfig()
		s, err := New(Config{Cluster: cfg, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		jobs := []JobSpec{}
		for i := 0; i < 4; i++ {
			jobs = append(jobs, JobSpec{Tenant: "heavy", Arrival: 0,
				Stages: [][]cluster.Task{uniformStage(32, 2, 1<<20)}})
		}
		for i := 0; i < 4; i++ {
			jobs = append(jobs, JobSpec{Tenant: "light", Arrival: 0.2 + 0.1*float64(i),
				Stages: [][]cluster.Task{uniformStage(2, 0.1, 1<<20)}})
		}
		res, err := s.RunWorkload([]TenantSpec{{Name: "heavy"}, {Name: "light"}}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, j := range res.Jobs {
			if j.Tenant == "light" {
				if j.Err != nil {
					t.Fatalf("light job failed: %v", j.Err)
				}
				sum += j.Latency
				n++
			}
		}
		return sum / float64(n)
	}
	fifo := lightLatency(PolicyFIFO)
	fair := lightLatency(PolicyFair)
	if fair >= fifo {
		t.Errorf("fair share did not help the light tenant: fifo %.3f, fair %.3f", fifo, fair)
	}
	if fair > 2*fifo/5 {
		t.Logf("note: fair %.3f vs fifo %.3f (improvement smaller than expected)", fair, fifo)
	}
}

func TestSpeculationCutsStragglerTail(t *testing.T) {
	run := func(speculate bool) (float64, Metrics) {
		s, err := New(Config{
			Cluster:   testConfig(),
			Speculate: speculate,
			Straggle:  cluster.Skew{Rate: 0.1, Factor: 8, Seed: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWorkload(
			[]TenantSpec{{Name: "a"}},
			[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(64, 1, 1<<20)}}},
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs[0].Err != nil {
			t.Fatal(res.Jobs[0].Err)
		}
		return res.Makespan, res.Metrics
	}
	base, _ := run(false)
	spec, m := run(true)
	if m.SpecLaunched == 0 || m.SpecWon == 0 {
		t.Fatalf("speculation never fired: %+v", m)
	}
	if spec >= base {
		t.Errorf("speculation did not cut the tail: base %.3f, spec %.3f", base, spec)
	}
	if m.SpecWastedSec <= 0 {
		t.Error("winning backups should charge the losing copy's burned time")
	}
}

func TestWorkloadAdmissionControl(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 1: the second overlapping arrival is rejected, the third
	// (after the first finishes) is admitted.
	jobs := []JobSpec{
		{Tenant: "a", Arrival: 0, Stages: [][]cluster.Task{uniformStage(8, 5, 1<<20)}},
		{Tenant: "a", Arrival: 1, Stages: [][]cluster.Task{uniformStage(1, 1, 1<<20)}},
		{Tenant: "a", Arrival: 50, Stages: [][]cluster.Task{uniformStage(1, 1, 1<<20)}},
	}
	res, err := s.RunWorkload([]TenantSpec{{Name: "a", Budget: 1}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Err != nil || res.Jobs[2].Err != nil {
		t.Errorf("admitted jobs failed: %v, %v", res.Jobs[0].Err, res.Jobs[2].Err)
	}
	if !errors.Is(res.Jobs[1].Err, ErrBackpressure) {
		t.Errorf("overlapping job error = %v, want ErrBackpressure", res.Jobs[1].Err)
	}
	if res.Metrics.AdmitRejected != 1 {
		t.Errorf("AdmitRejected = %d, want 1", res.Metrics.AdmitRejected)
	}
}

func TestTaskOverMachineMemoryFailsStageWithOOM(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWorkload(
		[]TenantSpec{{Name: "a"}},
		[]JobSpec{{Tenant: "a", Stages: [][]cluster.Task{uniformStage(1, 1, 2<<30)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var oom *cluster.OOMError
	if !errors.As(res.Jobs[0].Err, &oom) {
		t.Fatalf("err = %v, want OOMError", res.Jobs[0].Err)
	}
	if !errors.Is(res.Jobs[0].Err, cluster.ErrOutOfMemory) {
		t.Error("OOM should unwrap to ErrOutOfMemory for the engine's recovery path")
	}
}

func TestTenantBackendAccounting(t *testing.T) {
	cfg := testConfig()
	s, err := New(Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Register("solo", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Done()

	tn.StartJob()
	if err := tn.Broadcast(1 << 20); err != nil {
		t.Fatal(err)
	}
	before := tn.Clock()
	rep, err := tn.RunStageReport(uniformStage(8, 1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	tn.ReleaseBroadcasts()

	// 8 tasks on 8 slots: one wave of 1s plus the 0.1 stage overhead.
	if math.Abs(rep.Seconds-1.1) > 1e-9 {
		t.Errorf("stage seconds = %f, want 1.1", rep.Seconds)
	}
	if rep.Waves != 1 || rep.Tasks != 8 {
		t.Errorf("waves=%d tasks=%d, want 1, 8", rep.Waves, rep.Tasks)
	}
	if got := tn.Clock() - before; math.Abs(got-1.1) > 1e-9 {
		t.Errorf("clock delta = %f, want 1.1", got)
	}
	st := tn.Stats()
	if st.Jobs != 1 || st.Stages != 1 || st.Tasks != 8 || st.Broadcasts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.BusySeconds-8) > 1e-9 {
		t.Errorf("busy = %f, want 8", st.BusySeconds)
	}

	// Job latency (launch 0.5 + broadcast + stage 1.1) was recorded.
	m := s.Metrics()
	if len(m.Tenants) != 1 || len(m.Tenants[0].Latencies) != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	wantLat := 0.5 + float64(1<<20)*cfg.PerByteBroadcast + 1.1
	if got := m.Tenants[0].Latencies[0]; math.Abs(got-wantLat) > 1e-9 {
		t.Errorf("job latency = %f, want %f", got, wantLat)
	}
}

func TestTenantBroadcastOOMMirrorsSimulator(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Register("a", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Done()
	tn.StartJob()
	err = tn.Broadcast(2 << 30)
	var oom *cluster.OOMError
	if !errors.As(err, &oom) || oom.What != "broadcast" {
		t.Fatalf("err = %v, want broadcast OOMError", err)
	}
	tn.ReleaseBroadcasts()
}

func TestAdmitGateBackpressure(t *testing.T) {
	s, err := New(Config{Cluster: testConfig(), Obs: obs.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Register("a", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Done()
	if err := tn.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Admit(); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("third Admit = %v, want ErrBackpressure", err)
	}
	tn.Finish()
	if err := tn.Admit(); err != nil {
		t.Fatalf("Admit after Finish = %v", err)
	}
	evs := s.cfg.Obs.SchedEvents()
	if len(evs) != 1 || evs[0].Kind != "admit-reject" {
		t.Errorf("sched events = %+v, want one admit-reject", evs)
	}
}

// TestConcurrentTenantsShareThePool runs two engine-style tenants on
// goroutines and checks the shared pool actually made them contend:
// with both submitting 8-slot-wide stages at once, someone must queue.
func TestConcurrentTenantsShareThePool(t *testing.T) {
	s, err := New(Config{Cluster: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var tenants []*Tenant
	for i := 0; i < 2; i++ {
		tn, err := s.Register(fmt.Sprintf("t%d", i), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		tenants = append(tenants, tn)
	}
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			defer tn.Done()
			for j := 0; j < 3; j++ {
				tn.StartJob()
				if _, err := tn.RunStageReport(uniformStage(8, 1, 1<<20)); err != nil {
					t.Error(err)
				}
				tn.ReleaseBroadcasts()
			}
		}(tn)
	}
	wg.Wait()
	m := s.Metrics()
	if m.QueueWaitSec <= 0 {
		t.Error("two tenants × 8-wide stages on 8 slots should produce queue wait")
	}
	// 6 jobs × (0.5 launch + 1.1 stage) of work on a shared clock: the
	// makespan must exceed any single tenant's isolated runtime.
	if m.Clock <= 3*1.1 {
		t.Errorf("makespan %f is impossibly small for 6 8-wide stages", m.Clock)
	}
}
