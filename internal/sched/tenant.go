package sched

// The concurrent facade: each engine session gets a Tenant, which
// implements the engine's Backend method set, so sessions on separate
// goroutines charge their jobs to the shared pool instead of a private
// Simulator.
//
// Determinism under real concurrency is the hard part, and it rests on
// one invariant: the virtual clock only advances at quiescence. A tenant
// doing real host-side work (hashing partitions, building broadcast
// maps) holds the loop frozen; every stage submission therefore arrives
// at a virtual time ≥ the clock, is parked, and is admitted together
// with every other live tenant's submission once all of them are parked.
// At that point placement order is decided by purely virtual keys
// (submission time, tenant id, tenant-local job/stage sequence), never
// by which goroutine got to the mutex first. The loop stops the moment
// any parked request completes, so the woken tenant can submit its next
// stage before the clock moves past it.

import (
	"fmt"
	"math"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// Tenant is one registered tenant's handle on the scheduler. It
// implements the engine Backend method set (StartJob, RunStageReport,
// Broadcast, Unpin, ReleaseBroadcasts, Clock, Stats) plus the admission
// gate (Admit, Finish) and the lifecycle marker Done.
//
// A Tenant is driven by one session goroutine; distinct Tenants may run
// fully concurrently. Every live Tenant MUST eventually call Done —
// the event loop waits for all live tenants to park, so a tenant that
// silently walks away deadlocks the others.
type Tenant struct {
	s *Scheduler
	t *tenantState
}

// Register adds a tenant for the concurrent path. Registration order is
// the tenant id, which breaks scheduling ties: register all tenants
// from one goroutine, in a fixed order, before any of them runs.
// Weight scales the tenant's fair share (≤ 0 means 1); budget caps its
// admission-gated submissions in flight (0 means unlimited).
func (s *Scheduler) Register(name string, weight float64, budget int) (*Tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workload {
		return nil, fmt.Errorf("sched: Register after RunWorkload")
	}
	t, err := s.register(name, weight, budget)
	if err != nil {
		return nil, err
	}
	s.live++
	return &Tenant{s: s, t: t}, nil
}

// maybeDrive runs the event loop if every live tenant is parked in a
// scheduler call — the quiescence gate. Pending submissions are
// admitted first, in virtual order.
func (s *Scheduler) maybeDrive() {
	if s.live > 0 && s.parked >= s.live {
		s.admitPending()
		s.drive()
	}
}

// StartJob opens a job on the tenant's virtual timeline and charges the
// job-launch overhead.
func (x *Tenant) StartJob() {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	t := x.t
	t.jobSeq++
	t.vnow = math.Max(t.vnow, s.clock.Now())
	t.cur = &jobRun{t: t, seq: t.jobSeq, arrival: t.vnow}
	t.stats.Jobs++
	t.vnow += s.cfg.Cluster.JobLaunchOverhead
}

// RunStageReport submits a stage to the shared pool and blocks until
// the scheduler has run it to completion (or failed it). The virtual
// time between submission and the stage's first task starting is slot
// contention from other tenants, reported as QueueWait.
func (x *Tenant) RunStageReport(tasks []cluster.Task) (cluster.StageReport, error) {
	s := x.s
	s.mu.Lock()
	t := x.t
	if t.done {
		s.mu.Unlock()
		panic("sched: RunStageReport after Done")
	}
	j := t.cur
	if j == nil {
		// Callers normally bracket stages with StartJob; tolerate a bare
		// stage as a one-stage job without launch overhead.
		t.jobSeq++
		j = &jobRun{t: t, seq: t.jobSeq, arrival: math.Max(t.vnow, s.clock.Now())}
		t.cur = j
		t.stats.Jobs++
	}
	t.vnow = math.Max(t.vnow, s.clock.Now())
	st := s.newStage(j, tasks, t.vnow)
	req := &stageReq{done: make(chan struct{})}
	st.req = req
	s.pending = append(s.pending, st)
	s.parked++
	s.maybeDrive()
	s.mu.Unlock()

	<-req.done

	s.mu.Lock()
	rep, err := req.rep, req.err
	s.mu.Unlock()
	return rep, err
}

// Broadcast pins bytes cluster-wide for the rest of the current job:
// they are charged against per-machine memory when the job's later
// tasks are placed. Mirrors Simulator.Broadcast's cost and OOM check.
func (x *Tenant) Broadcast(bytes int64) error {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	t := x.t
	t.stats.Broadcasts++
	var resident int64
	if t.cur != nil {
		resident = t.cur.resident
	}
	if resident+bytes > s.cfg.Cluster.MemoryPerMachine {
		return &cluster.OOMError{What: "broadcast", Bytes: bytes,
			Limit: s.cfg.Cluster.MemoryPerMachine - resident, Resident: resident}
	}
	if t.cur != nil {
		t.cur.resident = resident + bytes
	}
	t.vnow = math.Max(t.vnow, s.clock.Now()) + float64(bytes)*s.cfg.Cluster.PerByteBroadcast
	return nil
}

// Unpin releases bytes of the current job's broadcast residency early.
func (x *Tenant) Unpin(bytes int64) {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := x.t.cur; j != nil {
		j.resident -= bytes
		if j.resident < 0 {
			j.resident = 0
		}
	}
}

// ReleaseBroadcasts ends the current job: residency drops to zero and
// the job's latency (submission → now, on the tenant's timeline) is
// recorded. The engine calls this exactly once per job.
func (x *Tenant) ReleaseBroadcasts() {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	t := x.t
	j := t.cur
	if j == nil {
		return
	}
	j.resident = 0
	t.cur = nil
	t.vnow = math.Max(t.vnow, s.clock.Now())
	t.latencies = append(t.latencies, t.vnow-j.arrival)
}

// Clock returns the tenant's virtual time: what its own jobs have cost,
// including queue waits, but not other tenants' idle periods.
func (x *Tenant) Clock() float64 {
	x.s.mu.Lock()
	defer x.s.mu.Unlock()
	return x.t.vnow
}

// Stats returns the tenant's own counters.
func (x *Tenant) Stats() cluster.Stats {
	x.s.mu.Lock()
	defer x.s.mu.Unlock()
	return x.t.stats
}

// Admit is the admission-control gate: it rejects with ErrBackpressure
// when the tenant already has its budget of submissions in flight.
// Pair every successful Admit with a Finish.
func (x *Tenant) Admit() error {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	t := x.t
	if t.budget > 0 && t.inflight >= t.budget {
		s.met.admitRejected++
		if s.cfg.Obs.Enabled() {
			s.cfg.Obs.Sched(obs.SchedEvent{
				Tenant: t.name, Job: t.jobSeq + 1, Kind: "admit-reject",
				Detail: fmt.Sprintf("%d submissions in flight, budget %d", t.inflight, t.budget),
			})
		}
		return fmt.Errorf("tenant %s: %d submissions in flight (budget %d): %w", t.name, t.inflight, t.budget, ErrBackpressure)
	}
	t.inflight++
	return nil
}

// Finish releases one admitted submission.
func (x *Tenant) Finish() {
	x.s.mu.Lock()
	defer x.s.mu.Unlock()
	if x.t.inflight > 0 {
		x.t.inflight--
	}
}

// Done marks the tenant finished. Its parked peers can then make
// progress without waiting for it. Idempotent.
func (x *Tenant) Done() {
	s := x.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if x.t.done {
		return
	}
	x.t.done = true
	s.live--
	s.maybeDrive()
}
