package sched

// Determinism is the scheduler's hard requirement: for a fixed seed,
// virtual-clock results are bit-identical across runs — including under
// -race, including when tenant goroutines interleave differently. These
// tests shake the wall-clock interleaving on purpose (per-run random
// sleeps between scheduler calls) and then compare Metrics snapshots
// with exact float equality: any dependence on goroutine timing shows
// up as a diff, not a tolerance violation.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"matryoshka/internal/cluster"
)

// runConcurrentScenario drives four tenants with different job shapes
// from separate goroutines. jitterSeed only perturbs wall-clock sleeps —
// it must never reach the virtual results.
func runConcurrentScenario(t *testing.T, jitterSeed int64) Metrics {
	t.Helper()
	s, err := New(Config{
		Cluster:   testConfig(),
		Policy:    PolicyFair,
		Speculate: true,
		Straggle:  cluster.Skew{Rate: 0.15, Factor: 6, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]*Tenant, 4)
	for i := range tenants {
		tn, err := s.Register(fmt.Sprintf("t%d", i), float64(1+i%2), 0)
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tn
	}
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn *Tenant) {
			defer wg.Done()
			defer tn.Done()
			rng := rand.New(rand.NewSource(jitterSeed*31 + int64(i)))
			for j := 0; j < 3+i; j++ {
				// Host-side "work" of run-varying wall duration: the virtual
				// clock must not care.
				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				tn.StartJob()
				if j%2 == 0 {
					if err := tn.Broadcast(int64(i+1) << 18); err != nil {
						t.Error(err)
						return
					}
				}
				for st := 0; st < 1+j%2; st++ {
					n := 4 + 3*i + j
					tasks := make([]cluster.Task, n)
					for k := range tasks {
						tasks[k] = cluster.Task{Compute: 0.02 + 0.01*float64((i+j+k)%7), Memory: 1 << 20}
					}
					if _, err := tn.RunStageReport(tasks); err != nil {
						t.Error(err)
						return
					}
				}
				tn.ReleaseBroadcasts()
			}
		}(i, tn)
	}
	wg.Wait()
	return s.Metrics()
}

func TestConcurrentTenantsBitIdentical(t *testing.T) {
	base := runConcurrentScenario(t, 1)
	if base.Clock <= 0 {
		t.Fatal("scenario did no work")
	}
	for seed := int64(2); seed <= 6; seed++ {
		got := runConcurrentScenario(t, seed)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("jitter seed %d diverged from seed 1:\nbase: %+v\ngot:  %+v", seed, base, got)
		}
	}
}

// TestWorkloadBitIdentical repeats an identical declared workload and
// requires exactly equal latencies, makespan, and metrics.
func TestWorkloadBitIdentical(t *testing.T) {
	run := func() WorkloadResult {
		s, err := New(Config{
			Cluster:   testConfig(),
			Policy:    PolicyFair,
			Speculate: true,
			Straggle:  cluster.Skew{Rate: 0.2, Factor: 8, Seed: 42},
		})
		if err != nil {
			t.Fatal(err)
		}
		var jobs []JobSpec
		for i := 0; i < 20; i++ {
			tenant := "a"
			if i%3 == 0 {
				tenant = "b"
			}
			jobs = append(jobs, JobSpec{
				Tenant:  tenant,
				Arrival: 0.3 * float64(i%7),
				Stages: [][]cluster.Task{
					uniformStage(4+i%9, 0.05+0.01*float64(i%5), 1<<20),
					uniformStage(2+i%3, 0.1, 1<<20),
				},
			})
		}
		res, err := s.RunWorkload(
			[]TenantSpec{{Name: "a", Weight: 1}, {Name: "b", Weight: 2, Budget: 8}},
			jobs,
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(base, got) {
			t.Fatalf("workload run %d diverged:\nbase: %+v\ngot:  %+v", i, base, got)
		}
	}
}

// TestSpeculationAccountingConsistent cross-checks the speculation
// counters: every win implies a launch, and wins never exceed launches;
// wasted time only appears when something won or was cancelled.
func TestSpeculationAccountingConsistent(t *testing.T) {
	s, err := New(Config{
		Cluster:   testConfig(),
		Speculate: true,
		Straggle:  cluster.Skew{Rate: 0.25, Factor: 10, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []JobSpec
	for i := 0; i < 6; i++ {
		jobs = append(jobs, JobSpec{Tenant: "a", Arrival: float64(i),
			Stages: [][]cluster.Task{uniformStage(32, 0.5, 1<<20)}})
	}
	res, err := s.RunWorkload([]TenantSpec{{Name: "a"}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SpecWon > m.SpecLaunched {
		t.Errorf("SpecWon %d > SpecLaunched %d", m.SpecWon, m.SpecLaunched)
	}
	if m.SpecLaunched == 0 {
		t.Error("25% straggler rate at factor 10 should trigger speculation")
	}
	if m.SpecWon > 0 && m.SpecWastedSec <= 0 {
		t.Error("wins without any wasted core·seconds")
	}
}
