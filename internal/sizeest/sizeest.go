// Package sizeest estimates the in-memory size of Go values.
//
// It plays the role of Spark's SizeEstimator in the paper (Sec. 8.3): the
// half-lifted mapWithClosure optimizer compares the estimated sizes of its
// two inputs to decide which side to broadcast, and the cluster simulator
// uses the same estimates for per-machine memory accounting.
//
// The estimate is a deep traversal of the object graph using reflection.
// Shared pointers are counted once. The numbers follow the layout of the
// gc runtime on 64-bit platforms closely enough for relative comparisons,
// which is all the optimizer needs.
package sizeest

import (
	"reflect"
	"unsafe"
)

const (
	wordSize        = int64(unsafe.Sizeof(uintptr(0)))
	sliceHeaderSize = 3 * wordSize
	stringHeader    = 2 * wordSize
	mapOverhead     = 48 // hmap struct, rough
	mapBucketCost   = 16 // per-entry overhead beyond key+value payload
	ifaceSize       = 2 * wordSize
)

// Of returns the estimated deep size in bytes of v.
func Of(v any) int64 {
	if v == nil {
		return ifaceSize
	}
	seen := map[uintptr]struct{}{}
	return ifaceSize + of(reflect.ValueOf(v), seen)
}

// OfSlice estimates the total deep size of a slice of values already boxed
// as any. It is the common case in the engine, where partitions hold []any.
//
// Partitions are almost always type-homogeneous, so the loop works in
// batch mode: one type inspection per run of same-typed elements. When the
// run's type has a value-independent deep size (pointer-free scalars and
// structs/arrays of those — every fixed-size key and pair the engine
// shuffles), each element adds a precomputed constant; strings add their
// header plus length monomorphically. Only elements outside those shapes
// fall back to the per-element reflective walk, and the shared-pointer
// table is allocated lazily for exactly those — fixed-size and string
// elements never consult it, so the estimate is bit-identical to the
// fully reflective loop.
func OfSlice(vs []any) int64 {
	return ofBoxedElems(vs, int64(cap(vs)))
}

// Batch is the engine's typed partition shape, seen structurally to avoid
// an import cycle: a typed backing slice plus the capacity the equivalent
// boxed []any would have had. OfBatch charges that boxed capacity — batch
// estimates must be bit-identical to the boxed partitions they replaced,
// because the simulated cluster observes them.
type Batch interface {
	Len() int
	BoxedCap() int
	Data() any
}

// OfBatch estimates the total deep size of a batch as if it were the
// equivalent boxed []any partition. Typed batches are costed with one type
// inspection per batch: fixed-size element types multiply a precomputed
// constant, strings sum header+length monomorphically, and only
// value-dependent element types walk elements reflectively (sharing one
// lazily allocated pointer table across the batch, exactly as OfSlice
// does). The boxed fallback reuses OfSlice's loop verbatim.
func OfBatch(b Batch) int64 {
	data := b.Data()
	if xs, ok := data.([]any); ok {
		return ofBoxedElems(xs, int64(b.BoxedCap()))
	}
	total := sliceHeaderSize + int64(b.BoxedCap())*ifaceSize
	switch xs := data.(type) {
	case []int:
		return total + int64(len(xs))*8
	case []int64:
		return total + int64(len(xs))*8
	case []uint64:
		return total + int64(len(xs))*8
	case []float64:
		return total + int64(len(xs))*8
	case []string:
		for _, s := range xs {
			total += stringHeader + int64(len(s))
		}
		return total
	}
	rv := reflect.ValueOf(data)
	t := rv.Type().Elem()
	n := rv.Len()
	if sz := fixedDeep(t); sz >= 0 {
		return total + int64(n)*sz
	}
	if t.Kind() == reflect.String {
		for i := 0; i < n; i++ {
			total += stringHeader + int64(rv.Index(i).Len())
		}
		return total
	}
	var seen map[uintptr]struct{}
	for i := 0; i < n; i++ {
		v := rv.Index(i)
		if t.Kind() == reflect.Interface {
			// A boxed loop unwraps the interface before walking (its
			// header is part of the bcap·ifaceSize term) and skips nils.
			if v.IsNil() {
				continue
			}
			v = v.Elem()
		}
		if seen == nil {
			seen = map[uintptr]struct{}{}
		}
		total += of(v, seen)
	}
	return total
}

// ofBoxedElems is OfSlice with the observed capacity passed explicitly, so
// batches can report their boxed-equivalent capacity instead of the host
// slice's.
func ofBoxedElems(vs []any, bcap int64) int64 {
	total := sliceHeaderSize + bcap*ifaceSize
	var (
		runT  reflect.Type
		runSz int64 // deep size of every value of runT, or -1 if value-dependent
		seen  map[uintptr]struct{}
	)
	for _, v := range vs {
		if v == nil {
			continue
		}
		t := reflect.TypeOf(v)
		if t != runT {
			runT = t
			runSz = fixedDeep(t)
		}
		switch {
		case runSz >= 0:
			total += runSz
		case t.Kind() == reflect.String:
			total += stringHeader + int64(len(v.(string)))
		default:
			if seen == nil {
				seen = map[uintptr]struct{}{}
			}
			total += of(reflect.ValueOf(v), seen)
		}
	}
	return total
}

// fixedDeep returns the deep size shared by all values of type t, or -1
// when it is value-dependent or the walk could consult the shared-pointer
// table. It mirrors of() exactly on its domain: scalar kinds use the
// estimator's kind sizes (not t.Size()), structs sum field deep sizes
// with no padding, and fixed-element arrays charge len times the element's
// laid-out size, as of()'s array fast path does.
func fixedDeep(t reflect.Type) int64 {
	switch t.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int64, reflect.Uint64, reflect.Float64, reflect.Complex64,
		reflect.Int, reflect.Uint, reflect.Uintptr:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.Array:
		if isFixedSize(t.Elem()) {
			return int64(t.Len()) * fixedSize(t.Elem())
		}
		return -1
	case reflect.Struct:
		var total int64
		for i := 0; i < t.NumField(); i++ {
			fs := fixedDeep(t.Field(i).Type)
			if fs < 0 {
				return -1
			}
			total += fs
		}
		return total
	}
	return -1
}

func of(v reflect.Value, seen map[uintptr]struct{}) int64 {
	switch v.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int64, reflect.Uint64, reflect.Float64, reflect.Complex64,
		reflect.Int, reflect.Uint, reflect.Uintptr:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return stringHeader + int64(v.Len())
	case reflect.Slice:
		if v.IsNil() {
			return sliceHeaderSize
		}
		if !markSeen(v.Pointer(), seen) {
			return sliceHeaderSize
		}
		elem := v.Type().Elem()
		total := sliceHeaderSize
		if isFixedSize(elem) {
			return total + int64(v.Cap())*fixedSize(elem)
		}
		for i := 0; i < v.Len(); i++ {
			total += of(v.Index(i), seen)
		}
		return total
	case reflect.Array:
		elem := v.Type().Elem()
		if isFixedSize(elem) {
			return int64(v.Len()) * fixedSize(elem)
		}
		var total int64
		for i := 0; i < v.Len(); i++ {
			total += of(v.Index(i), seen)
		}
		return total
	case reflect.Map:
		if v.IsNil() {
			return wordSize
		}
		if !markSeen(v.Pointer(), seen) {
			return wordSize
		}
		total := int64(mapOverhead)
		iter := v.MapRange()
		for iter.Next() {
			total += mapBucketCost + of(iter.Key(), seen) + of(iter.Value(), seen)
		}
		return total
	case reflect.Pointer:
		if v.IsNil() {
			return wordSize
		}
		if !markSeen(v.Pointer(), seen) {
			return wordSize
		}
		return wordSize + of(v.Elem(), seen)
	case reflect.Struct:
		var total int64
		for i := 0; i < v.NumField(); i++ {
			total += of(v.Field(i), seen)
		}
		return total
	case reflect.Interface:
		if v.IsNil() {
			return ifaceSize
		}
		return ifaceSize + of(v.Elem(), seen)
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return wordSize
	default:
		return wordSize
	}
}

func markSeen(p uintptr, seen map[uintptr]struct{}) bool {
	if p == 0 {
		return false
	}
	if _, ok := seen[p]; ok {
		return false
	}
	seen[p] = struct{}{}
	return true
}

func isFixedSize(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16,
		reflect.Uint32, reflect.Uint64, reflect.Uintptr, reflect.Float32,
		reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return isFixedSize(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isFixedSize(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}

func fixedSize(t reflect.Type) int64 {
	return int64(t.Size())
}
