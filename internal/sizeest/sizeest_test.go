package sizeest

import (
	"testing"
	"testing/quick"
)

func TestPrimitives(t *testing.T) {
	cases := []struct {
		name string
		v    any
		min  int64
	}{
		{"int", 42, 8},
		{"bool", true, 1},
		{"float64", 3.14, 8},
		{"string", "hello", 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Of(c.v); got < c.min {
				t.Errorf("Of(%v) = %d, want >= %d", c.v, got, c.min)
			}
		})
	}
}

func TestNilIsSmall(t *testing.T) {
	if got := Of(nil); got <= 0 || got > 64 {
		t.Errorf("Of(nil) = %d, want small positive", got)
	}
}

func TestSliceScalesWithLength(t *testing.T) {
	small := Of(make([]int64, 10))
	large := Of(make([]int64, 1000))
	if large <= small {
		t.Fatalf("large slice (%d) should exceed small slice (%d)", large, small)
	}
	// ~8 bytes per extra element.
	perElem := float64(large-small) / 990
	if perElem < 7 || perElem > 9 {
		t.Errorf("per-element cost = %.2f, want ~8", perElem)
	}
}

func TestStringsCountBytes(t *testing.T) {
	a := Of("x")
	b := Of("x" + string(make([]byte, 1000)))
	if b-a < 900 {
		t.Errorf("long string should cost ~1000 more bytes, delta=%d", b-a)
	}
}

func TestStructDeep(t *testing.T) {
	type inner struct {
		Name string
		Vals []float64
	}
	type outer struct {
		ID int64
		In inner
	}
	v := outer{ID: 1, In: inner{Name: "abc", Vals: make([]float64, 100)}}
	got := Of(v)
	if got < 800 {
		t.Errorf("deep struct = %d, want >= 800 (100 float64s inside)", got)
	}
}

func TestSharedPointerCountedOnce(t *testing.T) {
	big := make([]int64, 1000)
	type two struct{ A, B *[]int64 }
	shared := Of(two{&big, &big})
	distinct := Of(two{&big, ptrTo(make([]int64, 1000))})
	if shared >= distinct {
		t.Errorf("shared ptr (%d) should be smaller than distinct (%d)", shared, distinct)
	}
}

func ptrTo[T any](v T) *T { return &v }

func TestMapScales(t *testing.T) {
	m1 := map[int]int{1: 1}
	m2 := make(map[int]int)
	for i := 0; i < 1000; i++ {
		m2[i] = i
	}
	if Of(m2) <= Of(m1) {
		t.Error("bigger map should have bigger estimate")
	}
}

func TestOfSliceMatchesSumOrder(t *testing.T) {
	vs := []any{int64(1), "hello", 3.0}
	if got := OfSlice(vs); got < 30 {
		t.Errorf("OfSlice = %d, want >= 30", got)
	}
}

// Property: the estimate is always positive and monotone in slice length.
func TestQuickMonotone(t *testing.T) {
	f := func(n uint8) bool {
		a := Of(make([]int32, int(n)))
		b := Of(make([]int32, int(n)+10))
		return a > 0 && b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicStructure(t *testing.T) {
	type node struct {
		Next *node
		Data [64]byte
	}
	a := &node{}
	b := &node{Next: a}
	a.Next = b   // cycle
	got := Of(a) // must terminate
	if got < 128 {
		t.Errorf("cycle of two nodes = %d, want >= 128", got)
	}
}

func TestMoreKinds(t *testing.T) {
	type fixedArr struct{ A [4]int32 }
	cases := []any{
		complex64(1 + 2i),
		complex128(3 + 4i),
		uint16(7),
		int8(1),
		[3]string{"a", "bb", "ccc"}, // array of variable-size elems
		fixedArr{},
		make(chan int),
		func() {},
		map[string][]int{"k": {1, 2, 3}},
		struct{ P *int }{},
		[]any{nil, 1, "x"},
	}
	for _, c := range cases {
		if got := Of(c); got <= 0 {
			t.Errorf("Of(%T) = %d, want positive", c, got)
		}
	}
}

func TestNilSliceAndMap(t *testing.T) {
	var s []int
	var m map[int]int
	if Of(s) <= 0 || Of(m) <= 0 {
		t.Error("nil containers still have header sizes")
	}
	if Of(s) >= Of(make([]int, 100)) {
		t.Error("nil slice should be smaller than a populated one")
	}
}

func TestOfSliceEmptyAndNilElems(t *testing.T) {
	if OfSlice(nil) < 0 {
		t.Error("negative size")
	}
	if OfSlice([]any{nil, nil}) <= 0 {
		t.Error("nil elements still cost headers")
	}
}
