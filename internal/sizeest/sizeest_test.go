package sizeest

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestPrimitives(t *testing.T) {
	cases := []struct {
		name string
		v    any
		min  int64
	}{
		{"int", 42, 8},
		{"bool", true, 1},
		{"float64", 3.14, 8},
		{"string", "hello", 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Of(c.v); got < c.min {
				t.Errorf("Of(%v) = %d, want >= %d", c.v, got, c.min)
			}
		})
	}
}

func TestNilIsSmall(t *testing.T) {
	if got := Of(nil); got <= 0 || got > 64 {
		t.Errorf("Of(nil) = %d, want small positive", got)
	}
}

func TestSliceScalesWithLength(t *testing.T) {
	small := Of(make([]int64, 10))
	large := Of(make([]int64, 1000))
	if large <= small {
		t.Fatalf("large slice (%d) should exceed small slice (%d)", large, small)
	}
	// ~8 bytes per extra element.
	perElem := float64(large-small) / 990
	if perElem < 7 || perElem > 9 {
		t.Errorf("per-element cost = %.2f, want ~8", perElem)
	}
}

func TestStringsCountBytes(t *testing.T) {
	a := Of("x")
	b := Of("x" + string(make([]byte, 1000)))
	if b-a < 900 {
		t.Errorf("long string should cost ~1000 more bytes, delta=%d", b-a)
	}
}

func TestStructDeep(t *testing.T) {
	type inner struct {
		Name string
		Vals []float64
	}
	type outer struct {
		ID int64
		In inner
	}
	v := outer{ID: 1, In: inner{Name: "abc", Vals: make([]float64, 100)}}
	got := Of(v)
	if got < 800 {
		t.Errorf("deep struct = %d, want >= 800 (100 float64s inside)", got)
	}
}

func TestSharedPointerCountedOnce(t *testing.T) {
	big := make([]int64, 1000)
	type two struct{ A, B *[]int64 }
	shared := Of(two{&big, &big})
	distinct := Of(two{&big, ptrTo(make([]int64, 1000))})
	if shared >= distinct {
		t.Errorf("shared ptr (%d) should be smaller than distinct (%d)", shared, distinct)
	}
}

func ptrTo[T any](v T) *T { return &v }

func TestMapScales(t *testing.T) {
	m1 := map[int]int{1: 1}
	m2 := make(map[int]int)
	for i := 0; i < 1000; i++ {
		m2[i] = i
	}
	if Of(m2) <= Of(m1) {
		t.Error("bigger map should have bigger estimate")
	}
}

func TestOfSliceMatchesSumOrder(t *testing.T) {
	vs := []any{int64(1), "hello", 3.0}
	if got := OfSlice(vs); got < 30 {
		t.Errorf("OfSlice = %d, want >= 30", got)
	}
}

// Property: the estimate is always positive and monotone in slice length.
func TestQuickMonotone(t *testing.T) {
	f := func(n uint8) bool {
		a := Of(make([]int32, int(n)))
		b := Of(make([]int32, int(n)+10))
		return a > 0 && b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicStructure(t *testing.T) {
	type node struct {
		Next *node
		Data [64]byte
	}
	a := &node{}
	b := &node{Next: a}
	a.Next = b   // cycle
	got := Of(a) // must terminate
	if got < 128 {
		t.Errorf("cycle of two nodes = %d, want >= 128", got)
	}
}

func TestMoreKinds(t *testing.T) {
	type fixedArr struct{ A [4]int32 }
	cases := []any{
		complex64(1 + 2i),
		complex128(3 + 4i),
		uint16(7),
		int8(1),
		[3]string{"a", "bb", "ccc"}, // array of variable-size elems
		fixedArr{},
		make(chan int),
		func() {},
		map[string][]int{"k": {1, 2, 3}},
		struct{ P *int }{},
		[]any{nil, 1, "x"},
	}
	for _, c := range cases {
		if got := Of(c); got <= 0 {
			t.Errorf("Of(%T) = %d, want positive", c, got)
		}
	}
}

func TestNilSliceAndMap(t *testing.T) {
	var s []int
	var m map[int]int
	if Of(s) <= 0 || Of(m) <= 0 {
		t.Error("nil containers still have header sizes")
	}
	if Of(s) >= Of(make([]int, 100)) {
		t.Error("nil slice should be smaller than a populated one")
	}
}

func TestOfSliceEmptyAndNilElems(t *testing.T) {
	if OfSlice(nil) < 0 {
		t.Error("negative size")
	}
	if OfSlice([]any{nil, nil}) <= 0 {
		t.Error("nil elements still cost headers")
	}
}

// ofSliceReference is the pre-batch-mode OfSlice loop: one reflective walk
// per element with an eagerly allocated shared-pointer table. The batch
// fast path must agree with it bit-for-bit — simulated cluster accounting
// observes these estimates, and A/B suites compare runs exactly.
func ofSliceReference(vs []any) int64 {
	seen := map[uintptr]struct{}{}
	total := sliceHeaderSize + int64(cap(vs))*ifaceSize
	for _, v := range vs {
		if v == nil {
			continue
		}
		total += of(reflect.ValueOf(v), seen)
	}
	return total
}

func TestOfSliceBatchMatchesReference(t *testing.T) {
	type pair struct {
		K int
		V int64
	}
	type padded struct {
		A int8
		B int64
		C [3]int16
	}
	shared := []int{1, 2, 3}
	cases := [][]any{
		nil,
		{nil, nil},
		{1, 2, 3, 4},
		{int8(1), uint16(2), 3.5, complex(1, 2)},
		{"", "a", "hello world, a longer string"},
		{pair{1, 2}, pair{3, 4}, pair{5, 6}},
		{padded{}, padded{1, 2, [3]int16{3, 4, 5}}},
		// Mixed-type runs: switches batch mode between constants,
		// strings, and the reflective fallback mid-slice.
		{1, "two", pair{3, 3}, []int{4, 5}, nil, 6, "seven"},
		// Shared pointers must still dedup across fallback elements.
		{shared, shared, shared},
		{map[string][]int{"k": {1}}, map[string][]int{"k": {1}}},
		{[4]string{"a", "b", "c", "d"}, [2]int{1, 2}},
	}
	for i, vs := range cases {
		if got, want := OfSlice(vs), ofSliceReference(vs); got != want {
			t.Errorf("case %d: OfSlice = %d, reference = %d", i, got, want)
		}
	}
	// Capacity beyond length is charged identically.
	withCap := make([]any, 0, 64)
	withCap = append(withCap, 1, "x", pair{2, 3})
	if got, want := OfSlice(withCap), ofSliceReference(withCap); got != want {
		t.Errorf("cap>len: OfSlice = %d, reference = %d", got, want)
	}
}

// testBatch is a minimal Batch: a typed backing slice plus the
// boxed-equivalent capacity, mirroring the engine's Vec.
type testBatch struct {
	data any
	n    int
	bcap int
}

func (b testBatch) Len() int      { return b.n }
func (b testBatch) BoxedCap() int { return b.bcap }
func (b testBatch) Data() any     { return b.data }

// batchOver wraps a typed slice as a testBatch and returns the equivalent
// boxed partition with the same observed capacity, built element-wise the
// way the boxed engine built partitions.
func batchOver[T any](xs []T, bcap int) (testBatch, []any) {
	boxed := make([]any, 0, bcap)
	for _, x := range xs {
		boxed = append(boxed, x)
	}
	return testBatch{data: xs, n: len(xs), bcap: bcap}, boxed
}

// TestOfBatchMatchesBoxed: OfBatch on a typed batch equals the reflective
// reference estimate of the equivalent boxed []any partition, bit for bit,
// for every fast-path shape and the value-dependent fallback. This is the
// contract that lets the engine carry typed partitions while the simulated
// cluster observes exactly the numbers the boxed representation produced.
func TestOfBatchMatchesBoxed(t *testing.T) {
	type pair struct {
		K int
		V int64
	}
	shared := []int64{1, 2, 3}
	check := func(name string, b testBatch, boxed []any) {
		t.Helper()
		if got, want := OfBatch(b), ofSliceReference(boxed); got != want {
			t.Errorf("%s: OfBatch = %d, boxed reference = %d", name, got, want)
		}
	}
	b, boxed := batchOver([]int{1, -2, 3, 1 << 40}, 8)
	check("int", b, boxed)
	b, boxed = batchOver([]int64{5, 6}, 2)
	check("int64", b, boxed)
	b, boxed = batchOver([]uint64{7, 8, 9}, 4)
	check("uint64", b, boxed)
	b, boxed = batchOver([]float64{1.5, -2.5}, 16)
	check("float64", b, boxed)
	b, boxed = batchOver([]string{"", "a", "hello world, a longer string"}, 4)
	check("string", b, boxed)
	b, boxed = batchOver([]pair{{1, 2}, {3, 4}, {5, 6}}, 4)
	check("fixedDeep struct", b, boxed)
	b, boxed = batchOver([][]int64{shared, shared, {4}}, 4)
	check("value-dependent with shared pointers", b, boxed)
	b, boxed = batchOver([]pair{}, 0)
	check("empty", b, boxed)

	// Interface element types skip nils and unwrap before walking, like the
	// boxed loop (whose nil slots are plain nil anys).
	errs := []error{nil, errType{"x"}, nil, errType{"yy"}}
	boxed = make([]any, 0, 8)
	for _, e := range errs {
		if e == nil {
			boxed = append(boxed, nil)
		} else {
			boxed = append(boxed, e)
		}
	}
	check("interface elems", testBatch{data: errs, n: len(errs), bcap: 8}, boxed)

	// The boxed fallback IS the OfSlice loop: same result on shared input.
	mixed := []any{1, "two", pair{3, 3}, nil, shared}
	got := OfBatch(testBatch{data: mixed, n: len(mixed), bcap: cap(mixed)})
	if want := ofSliceReference(mixed); got != want {
		t.Errorf("boxed fallback: OfBatch = %d, reference = %d", got, want)
	}
}

type errType struct{ s string }

func (e errType) Error() string { return e.s }

func TestFixedDeepDomains(t *testing.T) {
	fixed := []any{true, int16(1), uint32(2), 3.0, complex128(4), [8]int{}, struct{ A, B int }{}}
	for _, v := range fixed {
		if fixedDeep(reflect.TypeOf(v)) < 0 {
			t.Errorf("fixedDeep(%T) should be value-independent", v)
		}
	}
	variable := []any{"s", []int{1}, map[int]int{}, new(int), struct{ S string }{}, [2]string{}}
	for _, v := range variable {
		if fixedDeep(reflect.TypeOf(v)) >= 0 {
			t.Errorf("fixedDeep(%T) should report value-dependent", v)
		}
	}
}
