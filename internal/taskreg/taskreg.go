// Package taskreg is the by-name operator registry that makes workload
// UDFs portable across processes. A worker process is a re-exec of the
// same binary, so a UDF registered from an init function is present on
// both sides of the driver/worker boundary; the registration helpers here
// store the typed function, register its element shapes with the batch
// codec, and install the matching engine kernel in the portable-op
// registry, all under one name.
//
// Workloads then build their DAGs through the same-named constructor
// wrappers (Map, ReduceByKeyN, ...), which call the ordinary engine
// constructor with the registered function — driver-side behavior is
// unchanged to the bit — and mark the resulting node portable. Operators
// built from ad-hoc closures stay unmarked and their stages simply run on
// the driver: portability is opt-in per operator, never required.
//
// Parameterized UDFs (RegisterMapArg) close over per-job values, e.g. the
// current K-means centroids. The parameter travels as JSON: encoding/json
// prints float64 with the shortest representation that round-trips
// exactly, so a worker reconstructs bit-identical parameters.
package taskreg

import (
	"encoding/json"
	"fmt"
	"sync"

	"matryoshka/internal/engine"
)

// fns stores the typed UDF (or factory) registered under each name, so
// the constructor wrappers can rebuild the exact driver-side operator.
var fns sync.Map // name -> typed func

func store(name string, f any) {
	if name == "" || f == nil {
		panic("taskreg: register needs a name and a function")
	}
	if _, dup := fns.LoadOrStore(name, f); dup {
		panic(fmt.Sprintf("taskreg: %q registered twice", name))
	}
}

func get[F any](name string) F {
	v, ok := fns.Load(name)
	if !ok {
		panic(fmt.Sprintf("taskreg: %q is not registered", name))
	}
	f, ok := v.(F)
	if !ok {
		panic(fmt.Sprintf("taskreg: %q is registered as %T, requested as %T", name, v, f))
	}
	return f
}

// RegisterMap registers a Map UDF under name.
func RegisterMap[A, B any](name string, f func(A) B) {
	store(name, f)
	engine.RegisterBatchShape[A]()
	engine.RegisterBatchShape[B]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.MapCompute(f), nil
	})
}

// Map is engine.Map with the named registered UDF, marked portable.
func Map[A, B any](d engine.Dataset[A], name string) engine.Dataset[B] {
	return engine.MarkPortable(engine.Map(d, get[func(A) B](name)), name, nil)
}

// RegisterMapArg registers a parameterized Map UDF: mk builds the
// per-job function from a JSON-serializable parameter (captured state
// like the current model, iteration constants, thresholds).
func RegisterMapArg[A, B, P any](name string, mk func(P) func(A) B) {
	store(name, mk)
	engine.RegisterBatchShape[A]()
	engine.RegisterBatchShape[B]()
	engine.RegisterPortableOp(name, func(arg []byte) (engine.PortableCompute, error) {
		var param P
		if err := json.Unmarshal(arg, &param); err != nil {
			return nil, fmt.Errorf("taskreg: %q: bad arg: %w", name, err)
		}
		return engine.MapCompute(mk(param)), nil
	})
}

// MapArg is engine.Map with the named parameterized UDF applied to param,
// marked portable with the serialized parameter. All three type
// parameters must be spelled at the call site.
func MapArg[A, B, P any](d engine.Dataset[A], name string, param P) engine.Dataset[B] {
	arg, err := json.Marshal(param)
	if err != nil {
		panic(fmt.Sprintf("taskreg: %q: unmarshalable arg: %v", name, err))
	}
	mk := get[func(P) func(A) B](name)
	return engine.MarkPortable(engine.Map(d, mk(param)), name, arg)
}

// RegisterFilter registers a Filter predicate under name.
func RegisterFilter[A any](name string, pred func(A) bool) {
	store(name, pred)
	engine.RegisterBatchShape[A]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.FilterCompute(pred), nil
	})
}

// Filter is engine.Filter with the named registered predicate.
func Filter[A any](d engine.Dataset[A], name string) engine.Dataset[A] {
	return engine.MarkPortable(engine.Filter(d, get[func(A) bool](name)), name, nil)
}

// RegisterFlatMap registers a FlatMap UDF under name.
func RegisterFlatMap[A, B any](name string, f func(A) []B) {
	store(name, f)
	engine.RegisterBatchShape[A]()
	engine.RegisterBatchShape[B]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.FlatMapCompute(f), nil
	})
}

// FlatMap is engine.FlatMap with the named registered UDF.
func FlatMap[A, B any](d engine.Dataset[A], name string) engine.Dataset[B] {
	return engine.MarkPortable(engine.FlatMap(d, get[func(A) []B](name)), name, nil)
}

// RegisterMapValues registers a MapValues UDF under name.
func RegisterMapValues[K comparable, V, W any](name string, f func(V) W) {
	store(name, f)
	engine.RegisterBatchShape[engine.Pair[K, V]]()
	engine.RegisterBatchShape[engine.Pair[K, W]]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.MapValuesCompute[K](f), nil
	})
}

// MapValues is engine.MapValues with the named registered UDF.
func MapValues[K comparable, V, W any](d engine.Dataset[engine.Pair[K, V]], name string) engine.Dataset[engine.Pair[K, W]] {
	return engine.MarkPortable(engine.MapValues(d, get[func(V) W](name)), name, nil)
}

// RegisterReduceByKey registers a ReduceByKey merge function under name.
// Two portable ops are installed: name for the reduce side and
// name+".combine" for the hidden map-side combine the engine plans before
// the shuffle.
func RegisterReduceByKey[K comparable, V any](name string, f func(V, V) V) {
	store(name, f)
	engine.RegisterBatchShape[engine.Pair[K, V]]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.ReduceByKeyCompute[K](f), nil
	})
	engine.RegisterPortableOp(name+".combine", func([]byte) (engine.PortableCompute, error) {
		return engine.CombineCompute[K](f), nil
	})
}

// ReduceByKeyN is engine.ReduceByKeyN with the named registered merge,
// marking both the reduce root and its map-side combine portable.
func ReduceByKeyN[K comparable, V any](d engine.Dataset[engine.Pair[K, V]], name string, parts int) engine.Dataset[engine.Pair[K, V]] {
	out := engine.ReduceByKeyN(d, get[func(V, V) V](name), parts)
	out = engine.MarkPortable(out, name, nil)
	return engine.MarkCombinePortable(out, name+".combine", nil)
}

// ReduceByKeyBound is engine.ReduceByKeyBound with the named registered
// merge (for cardinality-bounded key sets), marked like ReduceByKeyN.
func ReduceByKeyBound[K comparable, V any](d engine.Dataset[engine.Pair[K, V]], name string, parts int) engine.Dataset[engine.Pair[K, V]] {
	out := engine.ReduceByKeyBound(d, get[func(V, V) V](name), parts)
	out = engine.MarkPortable(out, name, nil)
	return engine.MarkCombinePortable(out, name+".combine", nil)
}

// RegisterGroupByKey registers the (UDF-free) group-by-key kernel for the
// key/value shapes under name, making GroupByKeyN stages portable.
func RegisterGroupByKey[K comparable, V any](name string) {
	store(name, engine.GroupByKeyCompute[K, V]())
	engine.RegisterBatchShape[engine.Pair[K, V]]()
	engine.RegisterBatchShape[engine.Pair[K, []V]]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.GroupByKeyCompute[K, V](), nil
	})
}

// GroupByKeyN is engine.GroupByKeyN marked with the named registered
// kernel.
func GroupByKeyN[K comparable, V any](d engine.Dataset[engine.Pair[K, V]], name string, parts int) engine.Dataset[engine.Pair[K, []V]] {
	return engine.MarkPortable(engine.GroupByKeyN(d, parts), name, nil)
}

// RegisterJoin registers the (UDF-free) repartition-join kernel for the
// key and side shapes under name.
func RegisterJoin[K comparable, A, B any](name string) {
	store(name, engine.RepartitionJoinCompute[K, A, B]())
	engine.RegisterBatchShape[engine.Pair[K, A]]()
	engine.RegisterBatchShape[engine.Pair[K, B]]()
	engine.RegisterBatchShape[engine.Pair[K, engine.Tuple2[A, B]]]()
	engine.RegisterPortableOp(name, func([]byte) (engine.PortableCompute, error) {
		return engine.RepartitionJoinCompute[K, A, B](), nil
	})
}

// JoinWith is engine.JoinWith marked with the named registered kernel.
// Only the repartition strategy is portable — broadcast joins build their
// hash table through the per-job Once, which cannot ship — so other
// strategies return the plain engine operator, and their stages run on
// the driver.
func JoinWith[K comparable, A, B any](l engine.Dataset[engine.Pair[K, A]], r engine.Dataset[engine.Pair[K, B]], name string, strat engine.JoinStrategy, parts int) engine.Dataset[engine.Pair[K, engine.Tuple2[A, B]]] {
	out := engine.JoinWith(l, r, strat, parts)
	if strat == engine.JoinRepartition {
		out = engine.MarkPortable(out, name, nil)
	}
	return out
}
