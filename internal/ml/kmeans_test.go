package ml

import (
	"math"
	"testing"
	"testing/quick"

	"matryoshka/internal/datagen"
)

func TestNearest(t *testing.T) {
	means := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{X: 1, Y: 1}, 0},
		{Point{X: 9, Y: 1}, 1},
		{Point{X: 1, Y: 9}, 2},
	}
	for _, c := range cases {
		if got := Nearest(means, c.p); got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPointSumMeanAndFallback(t *testing.T) {
	s := PointSum{}.Add(Point{X: 2, Y: 4}).Add(Point{X: 4, Y: 8})
	if m := s.Mean(Point{}); m.X != 3 || m.Y != 6 {
		t.Fatalf("mean = %v", m)
	}
	if m := (PointSum{}).Mean(Point{X: 7, Y: 7}); m.X != 7 {
		t.Fatalf("empty cluster should keep fallback, got %v", m)
	}
}

func TestPointSumMergeCommutes(t *testing.T) {
	f := func(ax, ay, bx, by int16, an, bn uint8) bool {
		a := PointSum{float64(ax), float64(ay), int64(an)}
		b := PointSum{float64(bx), float64(by), int64(bn)}
		l, r := a.Merge(b), b.Merge(a)
		return l.N == r.N && math.Abs(l.X-r.X) < 1e-9 && math.Abs(l.Y-r.Y) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKMeansFindsSeparatedClusters(t *testing.T) {
	pts := datagen.GaussianPoints(2000, 4, 1)
	init := []Point{{X: 10, Y: 10}, {X: 90, Y: 5}, {X: 210, Y: -5}, {X: 290, Y: 10}}
	res := KMeansSeq(pts, init, 1e-8, 100)
	if res.Iterations == 0 || res.Ops == 0 {
		t.Fatalf("missing counters: %+v", res)
	}
	// Means should land near the true centers (0,0) (100,0) (200,0) (300,0).
	for i, want := range []Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 300, Y: 0}} {
		if Dist2(res.Means[i], want) > 4 {
			t.Errorf("mean %d = %v, want near %v", i, res.Means[i], want)
		}
	}
}

func TestKMeansConvergenceMonotone(t *testing.T) {
	pts := datagen.GaussianPoints(500, 2, 2)
	means := []Point{{X: 50, Y: 50}, {X: 60, Y: 60}}
	prev := WCSS(pts, means)
	for i := 0; i < 10; i++ {
		means = UpdateMeans(pts, means)
		cur := WCSS(pts, means)
		if cur > prev+1e-9 {
			t.Fatalf("WCSS increased at iter %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestKMeansRespectsMaxIters(t *testing.T) {
	pts := datagen.GaussianPoints(500, 4, 3)
	res := KMeansSeq(pts, []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}, 0, 5)
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d, want capped at 5", res.Iterations)
	}
}

func TestMaxShiftZeroForIdentical(t *testing.T) {
	a := []Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if MaxShift(a, a) != 0 {
		t.Fatal("identical means should have zero shift")
	}
	b := []Point{{X: 1, Y: 2}, {X: 3, Y: 7}}
	if MaxShift(a, b) != 9 {
		t.Fatalf("shift = %v, want 9", MaxShift(a, b))
	}
}
