// Package ml provides the sequential K-means used by the outer-parallel
// workaround's UDFs and as the reference for cross-strategy result checks.
package ml

import "matryoshka/internal/datagen"

// Point aliases the generator's point type.
type Point = datagen.Point

// Dist2 is the squared Euclidean distance.
func Dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Nearest returns the index of the centroid closest to p.
func Nearest(means []Point, p Point) int {
	best, bestD := 0, Dist2(means[0], p)
	for i := 1; i < len(means); i++ {
		if d := Dist2(means[i], p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// PointSum accumulates points for centroid updates.
type PointSum struct {
	X, Y float64
	N    int64
}

// Add folds a point into the sum.
func (s PointSum) Add(p Point) PointSum {
	return PointSum{X: s.X + p.X, Y: s.Y + p.Y, N: s.N + 1}
}

// Merge combines two sums.
func (s PointSum) Merge(o PointSum) PointSum {
	return PointSum{X: s.X + o.X, Y: s.Y + o.Y, N: s.N + o.N}
}

// Mean returns the centroid, or fallback when the sum is empty (empty
// cluster: keep the previous mean, the standard Lloyd's convention).
func (s PointSum) Mean(fallback Point) Point {
	if s.N == 0 {
		return fallback
	}
	return Point{X: s.X / float64(s.N), Y: s.Y / float64(s.N)}
}

// UpdateMeans is one Lloyd's update: assign every point to its nearest
// mean and return the new means. Exported so all strategies share the
// arithmetic (keeping results bit-comparable across summation orders is
// not required — tests compare with tolerance — but sharing the kernel
// keeps them honest).
func UpdateMeans(points []Point, means []Point) []Point {
	sums := make([]PointSum, len(means))
	for _, p := range points {
		i := Nearest(means, p)
		sums[i] = sums[i].Add(p)
	}
	out := make([]Point, len(means))
	for i, s := range sums {
		out[i] = s.Mean(means[i])
	}
	return out
}

// MaxShift returns the largest squared centroid movement between two
// aligned mean sets (the convergence criterion).
func MaxShift(a, b []Point) float64 {
	var m float64
	for i := range a {
		if d := Dist2(a[i], b[i]); d > m {
			m = d
		}
	}
	return m
}

// Result is the output of KMeansSeq.
type Result struct {
	Means      []Point
	Iterations int
	Ops        int64 // point-centroid distance evaluations
}

// KMeansSeq runs Lloyd's algorithm from the given initial means until the
// largest centroid shift falls below eps (squared) or maxIters is reached.
func KMeansSeq(points []Point, init []Point, eps float64, maxIters int) Result {
	means := append([]Point(nil), init...)
	var ops int64
	iters := 0
	for ; iters < maxIters; iters++ {
		next := UpdateMeans(points, means)
		ops += int64(len(points)) * int64(len(means))
		shift := MaxShift(means, next)
		means = next
		if shift < eps {
			iters++
			break
		}
	}
	return Result{Means: means, Iterations: iters, Ops: ops}
}

// WCSS is the within-cluster sum of squares of points under means — the
// model quality score hyperparameter search minimizes.
func WCSS(points []Point, means []Point) float64 {
	var total float64
	for _, p := range points {
		total += Dist2(means[Nearest(means, p)], p)
	}
	return total
}
