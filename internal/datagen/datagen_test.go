package datagen

import (
	"testing"
)

func TestVisitsDeterministic(t *testing.T) {
	a := Visits(1000, 10, false, 42)
	b := Visits(1000, 10, false, 42)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	c := Visits(1000, 10, false, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestVisitsCoverAllDaysUniform(t *testing.T) {
	vs := Visits(10_000, 16, false, 1)
	days := map[int64]int{}
	for _, v := range vs {
		days[v.Day]++
	}
	if len(days) != 16 {
		t.Fatalf("days = %d, want 16", len(days))
	}
	for d, n := range days {
		if n < 300 || n > 1000 {
			t.Errorf("day %d has %d visits, want near-uniform ~625", d, n)
		}
	}
}

func TestVisitsZipfIsSkewed(t *testing.T) {
	vs := Visits(50_000, 64, true, 1)
	days := map[int64]int{}
	for _, v := range vs {
		days[v.Day]++
	}
	maxN, minN := 0, 1<<30
	for _, n := range days {
		if n > maxN {
			maxN = n
		}
		if n < minN {
			minN = n
		}
	}
	if maxN < 10*minN {
		t.Errorf("zipf skew too mild: max %d, min %d", maxN, minN)
	}
	if days[0] < days[32] {
		t.Errorf("day 0 (%d) should dominate day 32 (%d)", days[0], days[32])
	}
}

func TestVisitsHaveRepeatVisitors(t *testing.T) {
	vs := Visits(10_000, 4, false, 7)
	counts := map[int64]int{}
	for _, v := range vs {
		counts[v.IP]++
	}
	singles, multi := 0, 0
	for _, n := range counts {
		if n == 1 {
			singles++
		} else {
			multi++
		}
	}
	if singles == 0 || multi == 0 {
		t.Fatalf("bounce rate degenerate: %d singles, %d multi", singles, multi)
	}
}

func TestGroupedGraphShape(t *testing.T) {
	edges := GroupedGraph(8, 100, 500, false, 3)
	if len(edges) != 8*500 {
		t.Fatalf("edges = %d", len(edges))
	}
	perGroup := map[int64]int{}
	for _, e := range edges {
		perGroup[e.Group]++
		if e.Edge.Src < 0 || e.Edge.Src >= 100 || e.Edge.Dst < 0 || e.Edge.Dst >= 100 {
			t.Fatalf("vertex out of range: %+v", e)
		}
	}
	for g, n := range perGroup {
		if n != 500 {
			t.Errorf("group %d has %d edges", g, n)
		}
	}
}

func TestGroupedGraphSkewed(t *testing.T) {
	edges := GroupedGraph(64, 50, 200, true, 3)
	if len(edges) != 64*200 {
		t.Fatalf("total edges should be preserved: %d", len(edges))
	}
	perGroup := map[int64]int{}
	for _, e := range edges {
		perGroup[e.Group]++
	}
	if perGroup[0] < 5*perGroup[40] {
		t.Errorf("expected skew: group0=%d group40=%d", perGroup[0], perGroup[40])
	}
}

func TestComponentsGraphConnectivity(t *testing.T) {
	comps, v := 4, 20
	edges := ComponentsGraph(comps, v, 5, 9)
	adj := map[int64][]int64{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	// BFS within each component reaches exactly its v vertices.
	for c := 0; c < comps; c++ {
		start := int64(c * v)
		seen := map[int64]bool{start: true}
		frontier := []int64{start}
		for len(frontier) > 0 {
			var next []int64
			for _, u := range frontier {
				for _, w := range adj[u] {
					if !seen[w] {
						seen[w] = true
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		if len(seen) != v {
			t.Errorf("component %d reaches %d vertices, want %d", c, len(seen), v)
		}
		for u := range seen {
			if u < int64(c*v) || u >= int64((c+1)*v) {
				t.Errorf("component %d leaked to vertex %d", c, u)
			}
		}
	}
}

func TestGaussianPointsNearCenters(t *testing.T) {
	pts := GaussianPoints(4000, 4, 5)
	if len(pts) != 4000 {
		t.Fatalf("len = %d", len(pts))
	}
	// Every point should be within ~30 units of one of the 4 centers.
	centers := []Point{{0, 0}, {100, 0}, {200, 0}, {300, 0}}
	for _, p := range pts {
		ok := false
		for _, c := range centers {
			dx, dy := p.X-c.X, p.Y-c.Y
			if dx*dx+dy*dy < 900 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("point %v far from all centers", p)
		}
	}
}

func TestRandomCentroidSets(t *testing.T) {
	sets := RandomCentroidSets(10, 3, 11)
	if len(sets) != 10 || len(sets[0]) != 3 {
		t.Fatalf("shape: %d x %d", len(sets), len(sets[0]))
	}
	if sets[0][0] == sets[1][0] {
		t.Error("configs should differ")
	}
}

func TestRecordsForBytes(t *testing.T) {
	if got := RecordsForBytes(64 << 20); got != 1<<20 {
		t.Fatalf("RecordsForBytes(64MB) = %d", got)
	}
}
