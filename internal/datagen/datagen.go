// Package datagen generates the synthetic workloads of the paper's
// evaluation (Sec. 9.1): web-visit logs for Bounce Rate, grouped graphs for
// per-group PageRank, component-structured graphs for Average Distances,
// and point clouds plus centroid initializations for K-means.
//
// Generators are deterministic in their seed. The paper's dataset sizes
// are given in GB; Scale maps those to element counts at a fixed
// bytes-per-record ratio so experiments can speak the paper's units.
package datagen

import "math/rand"

// BytesPerRecord is the nominal on-disk size of one input record, used to
// translate the paper's "GB" dataset sizes into element counts.
const BytesPerRecord = 64

// RecordsForBytes converts a dataset size in bytes to a record count.
func RecordsForBytes(bytes int64) int { return int(bytes / BytesPerRecord) }

// Visit is one page view: which day (the grouping key of the per-day
// bounce-rate analysis) and which visitor.
type Visit struct {
	Day int64
	IP  int64
}

// DefaultZipfS is the Zipf skew exponent the skewed generators use when
// no explicit exponent is given — the Sec. 9.5 setting.
const DefaultZipfS = 1.2

// Visits generates n page visits over `days` distinct days. With skewed
// set, days are drawn from a Zipf distribution (a few huge days, many tiny
// ones — Sec. 9.5) with exponent DefaultZipfS; otherwise uniformly.
// Roughly half the visitors on each day bounce (visit exactly one page).
func Visits(n, days int, skewed bool, seed int64) []Visit {
	s := 0.0
	if skewed {
		s = DefaultZipfS
	}
	return VisitsSkew(n, days, s, seed)
}

// VisitsSkew is Visits with an explicit Zipf skew exponent: s > 1 draws
// days Zipf(s), s == 0 draws them uniformly (matbench -skew). At
// DefaultZipfS it is bit-identical to Visits(skewed=true).
func VisitsSkew(n, days int, s float64, seed int64) []Visit {
	rng := rand.New(rand.NewSource(seed))
	skewed := s > 0
	var zipf *rand.Zipf
	if skewed {
		zipf = rand.NewZipf(rng, s, 1, uint64(days-1))
	}
	// First pass: draw each visit's day, counting per-day volumes.
	dayOf := make([]int64, n)
	counts := make([]int, days)
	for i := range dayOf {
		var day int64
		if skewed {
			day = int64(zipf.Uint64())
		} else {
			day = int64(rng.Intn(days))
		}
		dayOf[i] = day
		counts[day]++
	}
	// Second pass: visitor ids live in a per-day range ~60% of that
	// day's actual visit count, so repeat visits occur, the bounce rate
	// lands strictly between 0 and 1, and busy days have proportionally
	// many distinct visitors (no pathological hot keys under skew —
	// real traffic has more visitors on bigger days, not the same few).
	out := make([]Visit, n)
	for i, day := range dayOf {
		r := counts[day]*3/5 + 1
		out[i] = Visit{Day: day, IP: day<<32 | int64(rng.Intn(r))}
	}
	return out
}

// Edge is a directed graph edge.
type Edge struct {
	Src, Dst int64
}

// GroupedGraph generates `groups` independent random directed graphs,
// returned as (group, edge) pairs: the per-group PageRank input (Sec. 9.1,
// "we perform a grouping of the graph edges and compute a separate
// PageRank for each group"). Each group has the given vertex and edge
// counts. With skewed set, the *sizes* of the groups follow a Zipf
// distribution (exponent DefaultZipfS) with the same totals.
func GroupedGraph(groups, verticesPerGroup, edgesPerGroup int, skewed bool, seed int64) []GroupedEdge {
	s := 0.0
	if skewed {
		s = DefaultZipfS
	}
	return GroupedGraphSkew(groups, verticesPerGroup, edgesPerGroup, s, seed)
}

// GroupedGraphSkew is GroupedGraph with an explicit Zipf skew exponent:
// s > 1 draws group sizes Zipf(s), s == 0 keeps them uniform (matbench
// -skew). At DefaultZipfS it is bit-identical to
// GroupedGraph(skewed=true).
func GroupedGraphSkew(groups, verticesPerGroup, edgesPerGroup int, s float64, seed int64) []GroupedEdge {
	rng := rand.New(rand.NewSource(seed))
	skewed := s > 0
	sizes := make([]int, groups)
	if skewed {
		zipf := rand.NewZipf(rng, s, 1, uint64(groups-1))
		for i := 0; i < groups*edgesPerGroup; i++ {
			sizes[zipf.Uint64()]++
		}
	} else {
		for i := range sizes {
			sizes[i] = edgesPerGroup
		}
	}
	var out []GroupedEdge
	for g := 0; g < groups; g++ {
		nv := verticesPerGroup
		if skewed {
			// Vertex count scales with the group's edge share.
			nv = sizes[g] * verticesPerGroup / max(edgesPerGroup, 1)
			if nv < 2 {
				nv = 2
			}
		}
		for i := 0; i < sizes[g]; i++ {
			src := rng.Int63n(int64(nv))
			dst := rng.Int63n(int64(nv))
			out = append(out, GroupedEdge{Group: int64(g), Edge: Edge{Src: src, Dst: dst}})
		}
	}
	return out
}

// GroupedEdge tags an edge with its group.
type GroupedEdge struct {
	Group int64
	Edge  Edge
}

// ComponentsGraph generates a single undirected graph (encoded as directed
// edges both ways) made of `comps` disjoint connected components with
// `verticesPerComp` vertices each: a random spanning tree plus extraEdges
// random chords. Vertex ids are globally unique. This is the Average
// Distances input (Sec. 2.2).
func ComponentsGraph(comps, verticesPerComp, extraEdges int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var out []Edge
	for c := 0; c < comps; c++ {
		base := int64(c) * int64(verticesPerComp)
		// Spanning tree: vertex i attaches to a random earlier vertex.
		for i := int64(1); i < int64(verticesPerComp); i++ {
			j := rng.Int63n(i)
			out = append(out, Edge{base + i, base + j}, Edge{base + j, base + i})
		}
		for e := 0; e < extraEdges; e++ {
			i := rng.Int63n(int64(verticesPerComp))
			j := rng.Int63n(int64(verticesPerComp))
			if i != j {
				out = append(out, Edge{base + i, base + j}, Edge{base + j, base + i})
			}
		}
	}
	return out
}

// Point is a 2-D point (K-means input).
type Point struct {
	X, Y float64
}

// GaussianPoints draws n points from `clusters` well-separated Gaussian
// blobs (K-means input; separation keeps the converged result stable
// across summation orders, which the cross-strategy result checks rely
// on).
func GaussianPoints(n, clusters int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, clusters)
	for i := range centers {
		centers[i] = Point{X: float64(i%4) * 100, Y: float64(i/4) * 100}
	}
	out := make([]Point, n)
	for i := range out {
		c := centers[i%clusters]
		out[i] = Point{
			X: c.X + rng.NormFloat64()*3,
			Y: c.Y + rng.NormFloat64()*3,
		}
	}
	return out
}

// RandomCentroidSets generates `configs` initial centroid sets of k
// centroids each (the hyperparameter configurations of Sec. 2.3), spread
// over the same region as GaussianPoints.
func RandomCentroidSets(configs, k int, seed int64) [][]Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Point, configs)
	for i := range out {
		set := make([]Point, k)
		for j := range set {
			set[j] = Point{X: rng.Float64()*300 - 50, Y: rng.Float64()*300 - 50}
		}
		out[i] = set
	}
	return out
}
