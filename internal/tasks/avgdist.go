package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
	"matryoshka/internal/graph"
)

// AvgDistSpec parameterizes Average Distances (Sec. 2.2): find the
// connected components of a graph, then compute the average shortest-path
// distance between all vertex pairs of each component —
// connectedComps(g).map(avgDistances). The task has three levels of
// parallelism: components x BFS sources x the BFS itself (Sec. 9.1).
type AvgDistSpec struct {
	Components        int
	VerticesPerComp   int
	ExtraEdgesPerComp int
	Seed              int64
	// Weight is the simulation scale for this task (real records per
	// simulated edge; 0 or 1 = unscaled). Average Distances is sized
	// directly in vertices rather than GB — all-pairs BFS work grows
	// quadratically in the vertex count, so a record-weight derived
	// from bytes would be incoherent. The task therefore overrides the
	// cluster's RecordWeight with its own.
	Weight float64
}

// AvgDistValue maps component id (its minimum vertex id) to the average
// pairwise distance within the component.
type AvgDistValue = map[int64]float64

const avgDistName = "avg-distances"

func (sp AvgDistSpec) data() []datagen.Edge {
	return datagen.ComponentsGraph(sp.Components, sp.VerticesPerComp, sp.ExtraEdgesPerComp, sp.Seed)
}

// Reference computes the task sequentially.
func (sp AvgDistSpec) Reference() AvgDistValue {
	edges := sp.data()
	comps := graph.ConnectedComponentsSeq(edges).Comp
	perComp := map[int64][]datagen.Edge{}
	for _, e := range edges {
		perComp[comps[e.Src]] = append(perComp[comps[e.Src]], e)
	}
	out := make(AvgDistValue, len(perComp))
	for c, es := range perComp {
		out[c] = graph.AvgDistancesSeq(es).Avg
	}
	return out
}

// Run executes the task under the given strategy.
func (sp AvgDistSpec) Run(strat Strategy, cc cluster.Config) Outcome {
	if sp.Weight >= 1 {
		cc.RecordWeight = sp.Weight
	} else {
		cc.RecordWeight = 1
	}
	switch strat {
	case Matryoshka:
		return sp.runMatryoshka(cc)
	case InnerParallel:
		return sp.runInner(cc)
	case OuterParallel:
		return sp.runOuter(cc)
	case DIQL:
		return Outcome{Task: avgDistName, Strategy: DIQL, Err: ErrControlFlowUnsupported}
	}
	return Outcome{Task: avgDistName, Strategy: strat, Err: errUnknownStrategy(strat)}
}

// engineConnectedComponents is the flat label-propagation step all
// strategies share (it is the outermost, already-flat part of the
// program): vertex -> min vertex id of its component.
func engineConnectedComponents(sess *engine.Session, edges engine.Dataset[datagen.Edge]) (engine.Dataset[engine.Pair[int64, int64]], error) {
	labels := engine.Map(
		engine.Distinct(engine.FlatMap(edges, func(e datagen.Edge) []int64 { return []int64{e.Src, e.Dst} })),
		func(v int64) engine.Pair[int64, int64] { return engine.KV(v, v) }).Cache()
	edgesBySrc := engine.Map(edges, func(e datagen.Edge) engine.Pair[int64, int64] {
		return engine.KV(e.Src, e.Dst)
	}).Cache()
	for {
		prev := labels
		propagated := engine.Map(
			engine.Join(labels, edgesBySrc),
			func(p engine.Pair[int64, engine.Tuple2[int64, int64]]) engine.Pair[int64, int64] {
				return engine.KV(p.Val.B, p.Val.A) // neighbour gets my label
			})
		labels = engine.ReduceByKey(engine.Union(labels, propagated), func(a, b int64) int64 {
			return min(a, b)
		}).Cache()
		changed, err := engine.Count(engine.Filter(
			engine.Join(prev, labels),
			func(p engine.Pair[int64, engine.Tuple2[int64, int64]]) bool { return p.Val.A != p.Val.B },
		)) // one job per propagation round
		if err != nil {
			return labels, err
		}
		if changed == 0 {
			return labels, nil
		}
	}
}

// runMatryoshka runs the full three-level nested program: flat connected
// components, a NestedBag of per-component edges (level 1), a lifted map
// over each component's vertices as BFS sources (level 2, composite tags
// per Sec. 7), and the lifted BFS loop expanding frontiers as parallel bag
// operations (level 3).
func (sp AvgDistSpec) runMatryoshka(cc cluster.Config) Outcome {
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(avgDistName, Matryoshka, err)
	}
	edges := engine.Parallelize(sess, sp.data(), 0).Cache()
	labels, err := engineConnectedComponents(sess, edges)
	if err != nil {
		return finish(avgDistName, Matryoshka, sess, nil, err)
	}
	// (comp, edge) pairs: tag each edge with its source's component.
	byComp := engine.Map(
		engine.Join(
			engine.Map(edges, func(e datagen.Edge) engine.Pair[int64, datagen.Edge] { return engine.KV(e.Src, e) }),
			labels),
		func(p engine.Pair[int64, engine.Tuple2[datagen.Edge, int64]]) engine.Pair[int64, datagen.Edge] {
			return engine.KV(p.Val.B, p.Val.A)
		})
	nb, err := core.GroupByKeyIntoNestedBag(byComp, core.Options{})
	if err != nil {
		return finish(avgDistName, Matryoshka, sess, nil, err)
	}
	// The per-component adjacency is static across all BFS supersteps:
	// partition it once so every frontier expansion shuffles only the
	// frontier.
	compEdges := core.PartitionEnclosingBagByKey(core.MapBag(nb.Inner, func(e datagen.Edge) engine.Pair[int64, int64] {
		return engine.KV(e.Src, e.Dst)
	}))
	verts := core.DistinctBag(core.FlatMapBag(nb.Inner, func(e datagen.Edge) []int64 {
		return []int64{e.Src, e.Dst}
	})).Cache()

	// Level 2: each vertex of each component is one BFS invocation.
	type distSum struct {
		Sum   int64
		Pairs int64
	}
	perSource, err := core.MapBagLifted(verts, func(ctx2 *core.Ctx, srcs core.InnerScalar[int64]) (core.InnerScalar[distSum], error) {
		frontier0 := core.BagOfScalar(srcs)
		dists0 := core.MapBag(frontier0, func(v int64) engine.Pair[int64, int64] { return engine.KV(v, int64(0)) })
		type bfsState = core.State2[core.State2[core.InnerBag[int64], core.InnerBag[engine.Pair[int64, int64]]], core.InnerScalar[int64]]
		ops := core.State2Ops(
			core.State2Ops(core.BagState[int64](), core.BagState[engine.Pair[int64, int64]]()),
			core.ScalarState[int64]())
		init := bfsState{
			A: core.State2[core.InnerBag[int64], core.InnerBag[engine.Pair[int64, int64]]]{A: frontier0, B: dists0},
			B: core.Pure(ctx2, int64(0)),
		}
		out, err := core.While(ctx2, init, ops, func(c *core.Ctx, st bfsState) (bfsState, core.InnerScalar[bool], error) {
			frontier, dists := st.A.A, st.A.B
			// Level 3: expand the frontier via a join with the
			// enclosing component's edges (composite-tag join).
			reached := core.MapBag(
				core.JoinWithEnclosingKeyed(
					core.MapBag(frontier, func(v int64) engine.Pair[int64, struct{}] { return engine.KV(v, struct{}{}) }),
					compEdges),
				func(p engine.Pair[int64, engine.Tuple2[struct{}, int64]]) int64 { return p.Val.B })
			candidates := core.DistinctBag(reached)
			// Anti-join against visited vertices: marker 0 wins.
			marked := core.ReduceByKeyBag(
				core.UnionBags(
					core.MapBag(candidates, func(v int64) engine.Pair[int64, int64] { return engine.KV(v, int64(1)) }),
					core.MapBag(dists, func(p engine.Pair[int64, int64]) engine.Pair[int64, int64] { return engine.KV(p.Key, int64(0)) })),
				func(a, b int64) int64 { return min(a, b) })
			newFrontier := core.MapBag(
				core.FilterBag(marked, func(p engine.Pair[int64, int64]) bool { return p.Val == 1 }),
				func(p engine.Pair[int64, int64]) int64 { return p.Key })
			depth := core.UnaryScalarOp(st.B, func(d int64) int64 { return d + 1 })
			newDists := core.UnionBags(dists,
				core.MapWithClosure(newFrontier, depth, func(v, d int64) engine.Pair[int64, int64] {
					return engine.KV(v, d)
				}))
			grew := core.CountBag(newFrontier)
			cond := core.UnaryScalarOp(grew, func(n int64) bool { return n > 0 })
			return bfsState{
				A: core.State2[core.InnerBag[int64], core.InnerBag[engine.Pair[int64, int64]]]{A: newFrontier, B: newDists},
				B: depth,
			}, cond, nil
		})
		if err != nil {
			return core.InnerScalar[distSum]{}, err
		}
		return core.AggregateBag(out.A.B, distSum{},
			func(a distSum, p engine.Pair[int64, int64]) distSum {
				if p.Val == 0 {
					return a // the source itself
				}
				return distSum{Sum: a.Sum + p.Val, Pairs: a.Pairs + 1}
			},
			func(x, y distSum) distSum { return distSum{x.Sum + y.Sum, x.Pairs + y.Pairs} }), nil
	})
	if err != nil {
		return finish(avgDistName, Matryoshka, sess, nil, err)
	}
	// Fold the per-source sums back to the component level and average.
	perComp := core.AggregateBag(core.UnliftScalarToOuter(perSource, nb.Ctx()), distSum{},
		func(a distSum, d distSum) distSum { return distSum{a.Sum + d.Sum, a.Pairs + d.Pairs} },
		func(x, y distSum) distSum { return distSum{x.Sum + y.Sum, x.Pairs + y.Pairs} })
	avg := core.BinaryScalarOp(nb.Outer, perComp, func(compID int64, d distSum) engine.Pair[int64, float64] {
		if d.Pairs == 0 {
			return engine.KV(compID, 0.0)
		}
		return engine.KV(compID, float64(d.Sum)/float64(d.Pairs))
	})
	tagged, err := avg.Collect()
	if err != nil {
		return finish(avgDistName, Matryoshka, sess, nil, err)
	}
	value := make(AvgDistValue, len(tagged))
	for _, kv := range tagged {
		value[kv.Key] = kv.Val
	}
	return finish(avgDistName, Matryoshka, sess, value, nil)
}

// runInner parallelizes only the innermost level: driver loops over
// components and over BFS sources, each BFS level running as a flat job —
// the job explosion the paper reports for this task.
func (sp AvgDistSpec) runInner(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(avgDistName, InnerParallel, err)
	}
	edges := engine.Parallelize(sess, sp.data(), 0).Cache()
	labels, err := engineConnectedComponents(sess, edges)
	if err != nil {
		return finish(avgDistName, InnerParallel, sess, nil, err)
	}
	labelMap, err := engine.CollectMap(labels)
	if err != nil {
		return finish(avgDistName, InnerParallel, sess, nil, err)
	}
	compVerts := map[int64][]int64{}
	for v, c := range labelMap {
		compVerts[c] = append(compVerts[c], v)
	}
	value := make(AvgDistValue, len(compVerts))
	for comp, vs := range compVerts {
		compID := comp
		compEdges := engine.Filter(edges, func(e datagen.Edge) bool { return labelMap[e.Src] == compID }).Cache()
		var sum, pairs int64
		for _, src := range vs {
			visited := map[int64]bool{src: true}
			frontier := map[int64]bool{src: true}
			for depth := int64(1); len(frontier) > 0; depth++ {
				f := frontier
				nextD := engine.Distinct(engine.Map(
					engine.Filter(compEdges, func(e datagen.Edge) bool { return f[e.Src] }),
					func(e datagen.Edge) int64 { return e.Dst }))
				reached, err := engine.Collect(nextD) // one job per BFS level
				if err != nil {
					return finish(avgDistName, InnerParallel, sess, nil, err)
				}
				frontier = map[int64]bool{}
				for _, v := range reached {
					if !visited[v] {
						visited[v] = true
						frontier[v] = true
						sum += depth
						pairs++
					}
				}
			}
		}
		if pairs > 0 {
			value[comp] = float64(sum) / float64(pairs)
		} else {
			value[comp] = 0
		}
	}
	return finish(avgDistName, InnerParallel, sess, value, nil)
}

// runOuter parallelizes only the outermost level: one task per component
// running the whole all-pairs BFS sequentially.
func (sp AvgDistSpec) runOuter(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(avgDistName, OuterParallel, err)
	}
	edges := engine.Parallelize(sess, sp.data(), 0).Cache()
	labels, err := engineConnectedComponents(sess, edges)
	if err != nil {
		return finish(avgDistName, OuterParallel, sess, nil, err)
	}
	byComp := engine.Map(
		engine.Join(
			engine.Map(edges, func(e datagen.Edge) engine.Pair[int64, datagen.Edge] { return engine.KV(e.Src, e) }),
			labels),
		func(p engine.Pair[int64, engine.Tuple2[datagen.Edge, int64]]) engine.Pair[int64, datagen.Edge] {
			return engine.KV(p.Val.B, p.Val.A)
		})
	w := recordWeight(sess)
	grouped := engine.GroupByKey(byComp)
	results := engine.MapCtx(grouped, func(tc *engine.Ctx, p engine.Pair[int64, []datagen.Edge]) engine.Pair[int64, float64] {
		res := graph.AvgDistancesSeq(p.Val)
		tc.Charge(int64(float64(res.Ops) * w * seqHashOpsFactor))
		return engine.KV(p.Key, res.Avg)
	})
	value, err := engine.CollectMap(results)
	if err != nil {
		return finish(avgDistName, OuterParallel, sess, nil, err)
	}
	return finish(avgDistName, OuterParallel, sess, AvgDistValue(value), nil)
}
