package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
)

// ShredSpec parameterizes the nested-materialization workload behind the
// sec-shred experiment: visits grouped by day where every group's full
// visitor log must be materialized at a consumption boundary
// (core.CollectNested) — the un-shred boundary that separates the
// materialized and shredded lowerings. A Zipf day distribution
// concentrates most rows in one group, which is exactly the workload the
// materialized lowering's single-task group build cannot survive; the
// bounce-rate and pagerank tasks never cross this boundary (their lifted
// dataflow is shared by both lowerings verbatim), so this task is where
// the shred choice has observable cost.
type ShredSpec struct {
	Visits int
	Days   int
	Skew   float64 // Zipf day exponent (> 1); 0 = uniform days
	Seed   int64
}

// ShredGroup is one day's result: the materialized row count, the
// lifted distinct-visitor count, and an order-sensitive checksum of the
// materialized rows — so the cross-lowering A/B tests catch any
// reordering, not just multiset changes.
type ShredGroup struct {
	Rows     int64
	Visitors int64
	Check    uint64
}

// ShredValue maps day -> its group summary.
type ShredValue = map[int64]ShredGroup

const shredName = "shred"

func (sp ShredSpec) data() []engine.Pair[int64, int64] {
	visits := datagen.VisitsSkew(sp.Visits, sp.Days, sp.Skew, sp.Seed)
	pairs := make([]engine.Pair[int64, int64], len(visits))
	for i, v := range visits {
		pairs[i] = engine.KV(v.Day, v.IP)
	}
	return pairs
}

// shredCheck folds a group's rows, in order, through FNV-1a.
func shredCheck(ips []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, ip := range ips {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(ip >> s))
			h *= 1099511628211
		}
	}
	return h
}

// Reference computes the task sequentially in driver memory. Per-group
// row order is input order — the same order every lowering's group
// build emits (source-partition-major), so even Check matches.
func (sp ShredSpec) Reference() ShredValue {
	groups := map[int64][]int64{}
	for _, p := range sp.data() {
		groups[p.Key] = append(groups[p.Key], p.Val)
	}
	out := make(ShredValue, len(groups))
	for day, ips := range groups {
		distinct := map[int64]struct{}{}
		for _, ip := range ips {
			distinct[ip] = struct{}{}
		}
		out[day] = ShredGroup{
			Rows:     int64(len(ips)),
			Visitors: int64(len(distinct)),
			Check:    shredCheck(ips),
		}
	}
	return out
}

// Run executes the task under the Matryoshka strategy (the only one: the
// workload exists to compare that strategy's two nested-bag lowerings,
// selected via tasks.Shred / core.Options.ForceShred).
func (sp ShredSpec) Run(cc cluster.Config) Outcome {
	return sp.RunMatryoshka(cc, core.Options{})
}

// RunMatryoshka groups the visits into a NestedBag, runs one lifted pass
// over the dictionary (distinct visitors per day), then crosses the
// un-shred boundary by materializing every group's rows.
func (sp ShredSpec) RunMatryoshka(cc cluster.Config, opt core.Options) Outcome {
	opt = shredOptions(opt)
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(shredName, Matryoshka, err)
	}
	visits := engine.Parallelize(sess, sp.data(), 0)
	nb, err := core.GroupByKeyIntoNestedBag(visits, opt)
	if err != nil {
		return finish(shredName, Matryoshka, sess, nil, err)
	}
	// Lifted pass: distinct visitors per day, flat dataflow either way.
	numVisitors := core.CountBag(core.DistinctBag(nb.Inner))
	keyed := core.BinaryScalarOp(nb.Outer, numVisitors, func(day int64, v int64) engine.Pair[int64, int64] {
		return engine.KV(day, v)
	})
	tagged, err := keyed.Collect()
	if err != nil {
		return finish(shredName, Matryoshka, sess, nil, err)
	}
	// The consumption boundary: materialize every group's rows through
	// the lowering the shred rule picked.
	groups, err := core.CollectNested(nb)
	if err != nil {
		return finish(shredName, Matryoshka, sess, nil, err)
	}
	value := make(ShredValue, len(groups))
	for day, ips := range groups {
		value[day] = ShredGroup{Rows: int64(len(ips)), Check: shredCheck(ips)}
	}
	for _, kv := range tagged {
		g := value[kv.Key]
		g.Visitors = kv.Val
		value[kv.Key] = g
	}
	return finish(shredName, Matryoshka, sess, value, nil)
}
