package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
)

// MemPressureSpec is the paper's Sec. 9 memory-pressure failure modes
// distilled into one standalone workload: a broadcast join whose build
// side is oversized for the machines, followed by an outer-parallel-style
// grouped aggregation whose tasks buffer whole groups. Without the
// engine's adaptive recovery both stages abort with
// cluster.ErrOutOfMemory; with it the join is demoted to a repartition
// join and the group stage is re-lowered to more, smaller partitions, and
// the run completes. It backs `matbench -explain recovery` and the
// sec9-recovery experiment.
type MemPressureSpec struct {
	BuildRecords int // pairs on the broadcast join's build (left) side
	ProbeKeys    int // distinct keys on the probe side; build keys cycle over 2x this
	GroupRecords int // pairs feeding the grouped aggregation
	Groups       int // distinct group keys (each group stays small and splittable)
	IngestParts  int // partition count for ingest and the join
	GroupParts   int // initial partition count of the group stage (the one recovery raises)
}

// MemPressureValue is the task's checkable result.
type MemPressureValue struct {
	JoinRows   int   // build rows whose key matched the probe side
	Groups     int   // distinct groups seen
	GroupTotal int64 // sum over all groups of the group size
}

const memPressureName = "mem-pressure"

func (sp MemPressureSpec) buildPairs() []engine.Pair[int, int64] {
	pairs := make([]engine.Pair[int, int64], sp.BuildRecords)
	for i := range pairs {
		pairs[i] = engine.KV(i%(2*sp.ProbeKeys), int64(i))
	}
	return pairs
}

func (sp MemPressureSpec) groupPairs() []engine.Pair[int, int64] {
	pairs := make([]engine.Pair[int, int64], sp.GroupRecords)
	for i := range pairs {
		pairs[i] = engine.KV(i%sp.Groups, int64(1))
	}
	return pairs
}

// Reference computes the task sequentially in driver memory.
func (sp MemPressureSpec) Reference() MemPressureValue {
	rows := 0
	for _, p := range sp.buildPairs() {
		if p.Key < sp.ProbeKeys {
			rows++
		}
	}
	return MemPressureValue{
		JoinRows:   rows,
		Groups:     sp.Groups,
		GroupTotal: int64(sp.GroupRecords),
	}
}

// Run executes the scenario on a fresh simulated cluster under the
// Matryoshka runtime (the only strategy with adaptive recovery; flip
// Recovery off to reproduce the abort-before behaviour).
func (sp MemPressureSpec) Run(cc cluster.Config) Outcome {
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(memPressureName, Matryoshka, err)
	}

	// Job 1: broadcast join with an oversized build side (Sec. 9.6's
	// failing broadcast, forced the way a size-blind system would).
	build := engine.Parallelize(sess, sp.buildPairs(), sp.IngestParts)
	probe := make([]engine.Pair[int, int64], sp.ProbeKeys)
	for k := range probe {
		probe[k] = engine.KV(k, int64(k))
	}
	probeDS := engine.Parallelize(sess, probe, 1)
	joined, err := engine.Collect(engine.JoinWith(build, probeDS, engine.JoinBroadcastLeft, sp.IngestParts))
	if err != nil {
		return finish(memPressureName, Matryoshka, sess, nil, err)
	}

	// Job 2: the outer-parallel workaround's group stage — whole groups
	// buffered per task (Sec. 9.4), under-partitioned the way Sec. 8.1
	// warns against.
	grouped := engine.GroupByKeyN(engine.Parallelize(sess, sp.groupPairs(), sp.IngestParts), sp.GroupParts)
	sizes, err := engine.Collect(engine.Map(grouped, func(g engine.Pair[int, []int64]) engine.Pair[int, int64] {
		var n int64
		for _, v := range g.Val {
			n += v
		}
		return engine.KV(g.Key, n)
	}))
	if err != nil {
		return finish(memPressureName, Matryoshka, sess, nil, err)
	}

	var total int64
	for _, g := range sizes {
		total += g.Val
	}
	value := MemPressureValue{JoinRows: len(joined), Groups: len(sizes), GroupTotal: total}
	return finish(memPressureName, Matryoshka, sess, value, nil)
}
