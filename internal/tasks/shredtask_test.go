package tasks

import (
	"reflect"
	"testing"

	"matryoshka/internal/core"
)

// TestShredTaskMatchesReference: the shred workload agrees with the
// sequential reference — including the order-sensitive per-group
// checksum — under the optimizer's pick and under both forced lowerings,
// and the forced lowerings are bit-identical to each other.
func TestShredTaskMatchesReference(t *testing.T) {
	spec := ShredSpec{Visits: 20_000, Days: 17, Skew: 1.3, Seed: 42}
	want := spec.Reference()
	if len(want) == 0 {
		t.Fatal("empty reference")
	}
	values := map[string]ShredValue{}
	for _, mode := range []struct {
		name  string
		force *core.ShredChoice
	}{
		{"auto", nil},
		{"materialized", core.ForceShredChoice(core.ShredMaterialized)},
		{"shredded", core.ForceShredChoice(core.ShredShredded)},
	} {
		t.Run(mode.name, func(t *testing.T) {
			o := spec.RunMatryoshka(testCluster(), core.Options{ForceShred: mode.force})
			checkOutcome(t, o)
			got := o.Value.(ShredValue)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s lowering diverged from reference", mode.name)
			}
			values[mode.name] = got
		})
	}
	if !reflect.DeepEqual(values["materialized"], values["shredded"]) {
		t.Fatal("forced lowerings diverged from each other")
	}
}

// TestShredToggleForcesLowering: the package-level Shred toggle
// (matbench -shred) changes nothing about results.
func TestShredToggleForcesLowering(t *testing.T) {
	spec := ShredSpec{Visits: 10_000, Days: 11, Skew: 1.5, Seed: 7}
	prev := Shred
	defer func() { Shred = prev }()
	var vals []ShredValue
	for _, mode := range []string{"auto", "on", "off"} {
		Shred = mode
		o := spec.Run(testCluster())
		checkOutcome(t, o)
		vals = append(vals, o.Value.(ShredValue))
	}
	if !reflect.DeepEqual(vals[0], vals[1]) || !reflect.DeepEqual(vals[1], vals[2]) {
		t.Fatal("-shred toggle changed the task's value")
	}
}
