package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
	"matryoshka/internal/ml"
	"matryoshka/internal/sizeest"
	"matryoshka/internal/taskreg"
)

func init() {
	// The inner-parallel loop's assignment step closes over the current
	// centroids, which change every iteration: it registers as a
	// parameterized op whose JSON argument carries the means (float64s
	// round-trip exactly through encoding/json's shortest representation).
	taskreg.RegisterMapArg[ml.Point, engine.Pair[int, ml.PointSum], []ml.Point]("kmeans.assign",
		func(means []ml.Point) func(ml.Point) engine.Pair[int, ml.PointSum] {
			return func(p ml.Point) engine.Pair[int, ml.PointSum] {
				return engine.KV(ml.Nearest(means, p), ml.PointSum{}.Add(p))
			}
		})
	taskreg.RegisterReduceByKey[int, ml.PointSum]("kmeans.sum", ml.PointSum.Merge)
}

// KMeansSpec parameterizes K-means hyperparameter search (Sec. 2.3 /
// Fig. 1): Configs initial centroid sets are trained, each on the same
// point sample of size TotalPoints/Configs, so total work stays constant
// as Configs varies (the weak-scaling setup of Sec. 9.2).
type KMeansSpec struct {
	TotalPoints int
	K           int
	Configs     int
	Eps         float64 // squared max centroid shift to stop
	MaxIters    int
	Seed        int64
}

// KMeansValue maps config index to its converged means.
type KMeansValue = map[int][]ml.Point

const kMeansName = "k-means"

// kmConfig is one hyperparameter configuration.
type kmConfig struct {
	ID   int
	Init []ml.Point
}

func (sp KMeansSpec) points() []ml.Point {
	n := sp.TotalPoints / sp.Configs
	if n < sp.K {
		n = sp.K
	}
	return datagen.GaussianPoints(n, 4, sp.Seed)
}

func (sp KMeansSpec) configs() []kmConfig {
	sets := datagen.RandomCentroidSets(sp.Configs, sp.K, sp.Seed+1)
	out := make([]kmConfig, len(sets))
	for i, s := range sets {
		out[i] = kmConfig{ID: i, Init: s}
	}
	return out
}

// Reference runs every configuration sequentially in driver memory.
func (sp KMeansSpec) Reference() KMeansValue {
	pts := sp.points()
	out := make(KMeansValue, sp.Configs)
	for _, c := range sp.configs() {
		out[c.ID] = ml.KMeansSeq(pts, c.Init, sp.Eps, sp.MaxIters).Means
	}
	return out
}

// Run executes the task under the given strategy.
func (sp KMeansSpec) Run(strat Strategy, cc cluster.Config) Outcome {
	switch strat {
	case Matryoshka:
		return sp.RunMatryoshka(cc, core.Options{})
	case InnerParallel:
		return sp.runInner(cc)
	case OuterParallel:
		return sp.runOuter(cc)
	case DIQL:
		return Outcome{Task: kMeansName, Strategy: DIQL, Err: ErrControlFlowUnsupported}
	}
	return Outcome{Task: kMeansName, Strategy: strat, Err: errUnknownStrategy(strat)}
}

// RunMatryoshka is the nested-parallel program: a bag of configurations
// whose lifted map UDF trains a model with parallel operations and a loop
// (the exact shape Sec. 2.3 motivates). opt is exposed for the Fig. 8
// half-lifted ablation.
func (sp KMeansSpec) RunMatryoshka(cc cluster.Config, opt core.Options) Outcome {
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(kMeansName, Matryoshka, err)
	}
	points := engine.Parallelize(sess, sp.points(), 0).Cache()
	// Materialize the shared points bag once (also gives the optimizer a
	// SizeEstimator reading for the half-lifted choice, Sec. 8.3).
	if _, err := engine.Count(points); err != nil {
		return finish(kMeansName, Matryoshka, sess, nil, err)
	}
	configs := engine.Parallelize(sess, sp.configs(), 0).Unscaled()

	type loopState = core.State2[core.InnerScalar[[]ml.Point], core.InnerScalar[int64]]
	value, err := core.LiftFlat(configs, opt, func(ctx *core.Ctx, cfgs core.InnerScalar[kmConfig]) (KMeansValue, error) {
		means := core.UnaryScalarOp(cfgs, func(c kmConfig) []ml.Point { return c.Init })
		ops := core.State2Ops(core.ScalarState[[]ml.Point](), core.ScalarState[int64]())
		init := loopState{A: means, B: core.Pure(ctx, int64(0))}

		out, err := core.While(ctx, init, ops, func(c *core.Ctx, st loopState) (loopState, core.InnerScalar[bool], error) {
			// Assignment step: every run's current means meet every
			// shared point — the half-lifted mapWithClosure of
			// Sec. 8.3.
			assigned := core.HalfLiftedMapWithClosure(st.A, points,
				func(p ml.Point, m []ml.Point) engine.Pair[int, ml.PointSum] {
					return engine.KV(ml.Nearest(m, p), ml.PointSum{}.Add(p))
				})
			// Keys are cluster indices (at most K per run): a bounded
			// key set, reduced with unscaled cost accounting.
			sums := core.ReduceByKeyBagBound(assigned, ml.PointSum.Merge)
			// Gather the k per-cluster sums of each run into one array.
			arrays := core.AggregateBag(sums, make([]ml.PointSum, sp.K),
				func(a []ml.PointSum, kv engine.Pair[int, ml.PointSum]) []ml.PointSum {
					out := append([]ml.PointSum(nil), a...)
					out[kv.Key] = out[kv.Key].Merge(kv.Val)
					return out
				},
				func(x, y []ml.PointSum) []ml.PointSum {
					out := append([]ml.PointSum(nil), x...)
					for i := range y {
						out[i] = out[i].Merge(y[i])
					}
					return out
				})
			newMeans := core.BinaryScalarOp(arrays, st.A, func(sums []ml.PointSum, old []ml.Point) []ml.Point {
				out := make([]ml.Point, len(old))
				for i := range old {
					out[i] = sums[i].Mean(old[i])
				}
				return out
			})
			iters := core.UnaryScalarOp(st.B, func(i int64) int64 { return i + 1 })
			shift := core.BinaryScalarOp(newMeans, st.A, ml.MaxShift)
			cond := core.BinaryScalarOp(shift, iters, func(sh float64, it int64) bool {
				return sh >= sp.Eps && it < int64(sp.MaxIters)
			})
			return loopState{A: newMeans, B: iters}, cond, nil
		})
		if err != nil {
			return nil, err
		}
		final := core.BinaryScalarOp(cfgs, out.A, func(c kmConfig, m []ml.Point) engine.Pair[int, []ml.Point] {
			return engine.KV(c.ID, m)
		})
		tagged, err := final.Collect()
		if err != nil {
			return nil, err
		}
		value := make(KMeansValue, len(tagged))
		for _, kv := range tagged {
			value[kv.Key] = kv.Val
		}
		return value, nil
	})
	return finish(kMeansName, Matryoshka, sess, value, err)
}

// runInner is the inner-parallel workaround: the driver loops over
// configurations and runs each training as its own sequence of dataflow
// jobs (one job per Lloyd's iteration — the job-launch overhead the paper
// measures).
func (sp KMeansSpec) runInner(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(kMeansName, InnerParallel, err)
	}
	points := engine.Parallelize(sess, sp.points(), 0).Cache()
	value := make(KMeansValue, sp.Configs)
	for _, cfg := range sp.configs() {
		means := append([]ml.Point(nil), cfg.Init...)
		for it := 0; it < sp.MaxIters; it++ {
			cur := means
			// Cluster indices are a bounded key set: the aggregate's
			// cardinality (and shuffle volume) does not scale with the
			// points.
			sums := taskreg.ReduceByKeyBound[int, ml.PointSum](
				taskreg.MapArg[ml.Point, engine.Pair[int, ml.PointSum], []ml.Point](points, "kmeans.assign", cur),
				"kmeans.sum", 0)
			collected, err := engine.CollectMap(sums) // one job per iteration
			if err != nil {
				return finish(kMeansName, InnerParallel, sess, nil, err)
			}
			next := make([]ml.Point, len(means))
			for i := range means {
				next[i] = collected[i].Mean(means[i])
			}
			shift := ml.MaxShift(means, next)
			means = next
			if shift < sp.Eps {
				break
			}
		}
		value[cfg.ID] = means
	}
	return finish(kMeansName, InnerParallel, sess, value, nil)
}

// runOuter is the outer-parallel workaround: one task per configuration,
// training sequentially inside the UDF. Parallelism is capped by Configs
// and each task holds (and pays for) the whole point sample.
func (sp KMeansSpec) runOuter(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(kMeansName, OuterParallel, err)
	}
	w := recordWeight(sess)
	pts := sp.points()
	ptsBytes := int64(float64(sizeest.Of(pts)) * w)
	configs := engine.Parallelize(sess, sp.configs(), 0).Unscaled()
	results := engine.MapCtx(configs, func(tc *engine.Ctx, cfg kmConfig) engine.Pair[int, []ml.Point] {
		res := ml.KMeansSeq(pts, cfg.Init, sp.Eps, sp.MaxIters)
		tc.Charge(int64(float64(res.Ops) * w))
		tc.UseMemory(ptsBytes)
		return engine.KV(cfg.ID, res.Means)
	})
	value, err := engine.CollectMap(results)
	if err != nil {
		return finish(kMeansName, OuterParallel, sess, nil, err)
	}
	return finish(kMeansName, OuterParallel, sess, KMeansValue(value), nil)
}
