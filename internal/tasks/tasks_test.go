package tasks

import (
	"math"
	"testing"

	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/engine"
	"matryoshka/internal/ml"
)

// testCluster is a small simulated cluster with generous memory so
// correctness tests never trip the OOM model.
func testCluster() cluster.Config {
	cc := cluster.DefaultConfig()
	cc.Machines = 4
	cc.CoresPerMachine = 4
	return cc
}

func checkOutcome(t *testing.T, o Outcome) {
	t.Helper()
	if o.Err != nil {
		t.Fatalf("%s/%s failed: %v", o.Task, o.Strategy, o.Err)
	}
	if o.Seconds <= 0 {
		t.Errorf("%s/%s: no simulated time elapsed", o.Task, o.Strategy)
	}
	if o.Jobs <= 0 {
		t.Errorf("%s/%s: no jobs recorded", o.Task, o.Strategy)
	}
}

// --- Bounce Rate ---

func TestBounceRateAllStrategiesMatchReference(t *testing.T) {
	spec := BounceRateSpec{Visits: 20_000, Days: 13, Seed: 42}
	want := spec.Reference()
	if len(want) != 13 {
		t.Fatalf("reference has %d days", len(want))
	}
	for _, strat := range []Strategy{Matryoshka, InnerParallel, OuterParallel, DIQL} {
		t.Run(string(strat), func(t *testing.T) {
			o := spec.Run(strat, testCluster())
			checkOutcome(t, o)
			got := o.Value.(BounceRates)
			if len(got) != len(want) {
				t.Fatalf("got %d days, want %d", len(got), len(want))
			}
			for day, w := range want {
				if g := got[day]; math.Abs(g-w) > 1e-12 {
					t.Errorf("day %d: got %v, want %v", day, g, w)
				}
			}
		})
	}
}

func TestBounceRateSkewedMatchesReference(t *testing.T) {
	spec := BounceRateSpec{Visits: 30_000, Days: 32, Skewed: true, Seed: 7}
	want := spec.Reference()
	o := spec.Run(Matryoshka, testCluster())
	checkOutcome(t, o)
	got := o.Value.(BounceRates)
	for day, w := range want {
		if math.Abs(got[day]-w) > 1e-12 {
			t.Errorf("day %d: got %v, want %v", day, got[day], w)
		}
	}
}

func TestBounceRateJobCounts(t *testing.T) {
	spec := BounceRateSpec{Visits: 5_000, Days: 16, Seed: 1}
	m := spec.Run(Matryoshka, testCluster())
	inner := spec.Run(InnerParallel, testCluster())
	checkOutcome(t, m)
	checkOutcome(t, inner)
	// The paper's central claim: Matryoshka's job count is independent of
	// the number of inner computations; inner-parallel launches jobs per
	// group (here 2 per day + 1).
	if inner.Jobs < 2*16 {
		t.Errorf("inner-parallel jobs = %d, want >= 32", inner.Jobs)
	}
	if m.Jobs >= inner.Jobs {
		t.Errorf("matryoshka jobs (%d) should be far below inner-parallel (%d)", m.Jobs, inner.Jobs)
	}
}

// --- K-means ---

func kmClose(a, b []ml.Point, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if ml.Dist2(a[i], b[i]) > tol {
			return false
		}
	}
	return true
}

func TestKMeansAllStrategiesMatchReference(t *testing.T) {
	spec := KMeansSpec{TotalPoints: 8_000, K: 4, Configs: 8, Eps: 1e-6, MaxIters: 30, Seed: 3}
	want := spec.Reference()
	for _, strat := range []Strategy{Matryoshka, InnerParallel, OuterParallel} {
		t.Run(string(strat), func(t *testing.T) {
			o := spec.Run(strat, testCluster())
			checkOutcome(t, o)
			got := o.Value.(KMeansValue)
			if len(got) != spec.Configs {
				t.Fatalf("got %d configs, want %d", len(got), spec.Configs)
			}
			for id, w := range want {
				if !kmClose(got[id], w, 1e-6) {
					t.Errorf("config %d: got %v, want %v", id, got[id], w)
				}
			}
		})
	}
}

func TestKMeansDIQLRejected(t *testing.T) {
	spec := KMeansSpec{TotalPoints: 100, K: 2, Configs: 2, Eps: 1e-4, MaxIters: 3, Seed: 3}
	o := spec.Run(DIQL, testCluster())
	if o.Err != ErrControlFlowUnsupported {
		t.Fatalf("err = %v, want ErrControlFlowUnsupported", o.Err)
	}
}

func TestKMeansMatryoshkaJobsIndependentOfConfigs(t *testing.T) {
	base := KMeansSpec{TotalPoints: 4_000, K: 3, Eps: 1e-6, MaxIters: 20, Seed: 5}
	s4, s16 := base, base
	s4.Configs, s16.Configs = 4, 16
	j4 := s4.Run(Matryoshka, testCluster())
	j16 := s16.Run(Matryoshka, testCluster())
	checkOutcome(t, j4)
	checkOutcome(t, j16)
	// Job counts track lifted-loop supersteps (max iterations over runs),
	// not the number of configurations: allow a 2x band.
	if j16.Jobs > 2*j4.Jobs {
		t.Errorf("matryoshka jobs grew with configs: %d -> %d", j4.Jobs, j16.Jobs)
	}
	i4 := s4.Run(InnerParallel, testCluster())
	i16 := s16.Run(InnerParallel, testCluster())
	if i16.Jobs < 2*i4.Jobs {
		t.Errorf("inner-parallel jobs should scale with configs: %d -> %d", i4.Jobs, i16.Jobs)
	}
}

// --- PageRank ---

func prClose(t *testing.T, got, want PageRankValue, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for g, wr := range want {
		gr := got[g]
		if len(gr) != len(wr) {
			t.Fatalf("group %d: %d vertices, want %d", g, len(gr), len(wr))
		}
		for v, w := range wr {
			if math.Abs(gr[v]-w) > tol {
				t.Errorf("group %d vertex %d: got %v, want %v", g, v, gr[v], w)
			}
		}
	}
}

func TestPageRankAllStrategiesMatchReference(t *testing.T) {
	spec := PageRankSpec{Groups: 6, TotalEdges: 3_000, TotalVertices: 600, Eps: 1e-9, MaxIters: 40, Seed: 11}
	want := spec.Reference()
	for _, strat := range []Strategy{Matryoshka, InnerParallel, OuterParallel} {
		t.Run(string(strat), func(t *testing.T) {
			o := spec.Run(strat, testCluster())
			checkOutcome(t, o)
			prClose(t, o.Value.(PageRankValue), want, 1e-6)
		})
	}
}

func TestPageRankSkewedMatryoshkaMatchesReference(t *testing.T) {
	spec := PageRankSpec{Groups: 16, TotalEdges: 4_000, TotalVertices: 800, Eps: 1e-9, MaxIters: 30, Skewed: true, Seed: 13}
	want := spec.Reference()
	o := spec.Run(Matryoshka, testCluster())
	checkOutcome(t, o)
	prClose(t, o.Value.(PageRankValue), want, 1e-6)
}

// --- Average Distances ---

func TestAvgDistancesAllStrategiesMatchReference(t *testing.T) {
	spec := AvgDistSpec{Components: 4, VerticesPerComp: 12, ExtraEdgesPerComp: 6, Seed: 17}
	want := spec.Reference()
	if len(want) != 4 {
		t.Fatalf("reference has %d components", len(want))
	}
	for _, strat := range []Strategy{Matryoshka, InnerParallel, OuterParallel} {
		t.Run(string(strat), func(t *testing.T) {
			o := spec.Run(strat, testCluster())
			checkOutcome(t, o)
			got := o.Value.(AvgDistValue)
			if len(got) != len(want) {
				t.Fatalf("got %d comps, want %d", len(got), len(want))
			}
			for c, w := range want {
				if math.Abs(got[c]-w) > 1e-9 {
					t.Errorf("component %d: got %v, want %v", c, got[c], w)
				}
			}
		})
	}
}

func TestAvgDistancesInnerParallelJobExplosion(t *testing.T) {
	spec := AvgDistSpec{Components: 3, VerticesPerComp: 8, ExtraEdgesPerComp: 3, Seed: 19}
	m := spec.Run(Matryoshka, testCluster())
	inner := spec.Run(InnerParallel, testCluster())
	checkOutcome(t, m)
	checkOutcome(t, inner)
	// Inner-parallel launches jobs per (component, source, BFS level);
	// Matryoshka's job count depends only on loop depth.
	if inner.Jobs <= 2*m.Jobs {
		t.Errorf("expected job explosion: inner=%d matryoshka=%d", inner.Jobs, m.Jobs)
	}
}

// --- Cross-task OOM behaviour (Sec. 9.5): a tiny-memory cluster makes the
// outer-parallel giant group fail while Matryoshka survives. ---

func TestSkewOOMOuterParallelOnly(t *testing.T) {
	cc := testCluster()
	cc.Machines = 16
	cc.MemoryPerMachine = 4 << 20 // 4 MB machines: Matryoshka's even
	// partitions fit; the Zipf head group, resident in one task, does not.
	spec := BounceRateSpec{Visits: 60_000, Days: 64, Skewed: true, Seed: 23}
	outer := spec.Run(OuterParallel, cc)
	if !outer.OOM {
		t.Errorf("outer-parallel should OOM on skewed groups: %v", outer)
	}
	m := spec.Run(Matryoshka, cc)
	if m.Err != nil {
		t.Errorf("matryoshka should survive the same cluster: %v", m.Err)
	}
}

// TestPageRankForcedJoinStrategiesSameValues checks the Fig. 8a ablation
// is purely physical: forcing either join algorithm must not change the
// computed ranks.
func TestPageRankForcedJoinStrategiesSameValues(t *testing.T) {
	spec := PageRankSpec{Groups: 5, TotalEdges: 1_500, TotalVertices: 300, Eps: 1e-9, MaxIters: 20, Seed: 29}
	want := spec.Reference()
	for _, opt := range []core.Options{
		{ForceScalarJoin: core.ForceJoin(engine.JoinBroadcastLeft)},
		{ForceScalarJoin: core.ForceJoin(engine.JoinRepartition)},
	} {
		o := spec.RunMatryoshka(testCluster(), opt)
		checkOutcome(t, o)
		prClose(t, o.Value.(PageRankValue), want, 1e-6)
	}
}

// TestKMeansForcedHalfLiftedSameValues checks the Fig. 8b ablation
// likewise only changes the physical plan.
func TestKMeansForcedHalfLiftedSameValues(t *testing.T) {
	spec := KMeansSpec{TotalPoints: 3_000, K: 3, Configs: 6, Eps: 1e-6, MaxIters: 15, Seed: 31}
	want := spec.Reference()
	for _, opt := range []core.Options{
		{ForceHalfLifted: core.ForceHalf(core.BroadcastScalar)},
		{ForceHalfLifted: core.ForceHalf(core.BroadcastPrimary)},
	} {
		o := spec.RunMatryoshka(testCluster(), opt)
		checkOutcome(t, o)
		got := o.Value.(KMeansValue)
		for id, w := range want {
			if !kmClose(got[id], w, 1e-6) {
				t.Errorf("config %d: forced plan changed the result", id)
			}
		}
	}
}

// TestSkewBarelyAffectsMatryoshka is the Sec. 9.5 claim as a test: the
// simulated runtime on Zipf-distributed groups stays within 40% of the
// uniform runtime on the same volume (the paper reports 15% at cluster
// scale; small simulations are noisier).
func TestSkewBarelyAffectsMatryoshka(t *testing.T) {
	skew := BounceRateSpec{Visits: 60_000, Days: 256, Skewed: true, Seed: 37}
	flat := skew
	flat.Skewed = false
	cc := testCluster()
	so := skew.Run(Matryoshka, cc)
	fo := flat.Run(Matryoshka, cc)
	checkOutcome(t, so)
	checkOutcome(t, fo)
	if ratio := so.Seconds / fo.Seconds; ratio > 1.4 || ratio < 0.6 {
		t.Errorf("skew ratio = %.2f (skew %.1fs vs uniform %.1fs), want within 40%%",
			ratio, so.Seconds, fo.Seconds)
	}
}

// TestFailureInjectionDoesNotChangeResults runs Matryoshka bounce rate on
// a cluster with injected task failures: results identical, simulated time
// higher.
func TestFailureInjectionDoesNotChangeResults(t *testing.T) {
	spec := BounceRateSpec{Visits: 10_000, Days: 16, Seed: 41}
	clean := spec.Run(Matryoshka, testCluster())
	checkOutcome(t, clean)
	cc := testCluster()
	cc.TaskFailureRate = 0.2
	flaky := spec.Run(Matryoshka, cc)
	checkOutcome(t, flaky)
	want := clean.Value.(BounceRates)
	got := flaky.Value.(BounceRates)
	for day, w := range want {
		if math.Abs(got[day]-w) > 1e-12 {
			t.Errorf("day %d differs under failure injection", day)
		}
	}
	if flaky.Seconds <= clean.Seconds {
		t.Errorf("retries should cost time: %.2f <= %.2f", flaky.Seconds, clean.Seconds)
	}
}

// TestNoCoPartitionSameValues: the co-partitioning ablation changes only
// the physical plan.
func TestNoCoPartitionSameValues(t *testing.T) {
	spec := PageRankSpec{Groups: 4, TotalEdges: 1_200, TotalVertices: 240, Eps: 1e-9, MaxIters: 25, Seed: 43}
	want := spec.Reference()
	spec.NoCoPartition = true
	o := spec.Run(Matryoshka, testCluster())
	checkOutcome(t, o)
	prClose(t, o.Value.(PageRankValue), want, 1e-6)
}

func TestUnknownStrategyAndDIQLRejections(t *testing.T) {
	cc := testCluster()
	for _, o := range []Outcome{
		BounceRateSpec{Visits: 10, Days: 2, Seed: 1}.Run(Strategy("bogus"), cc),
		PageRankSpec{Groups: 1, TotalEdges: 4, TotalVertices: 2, MaxIters: 1, Seed: 1}.Run(Strategy("bogus"), cc),
		AvgDistSpec{Components: 1, VerticesPerComp: 3, Seed: 1}.Run(Strategy("bogus"), cc),
		KMeansSpec{TotalPoints: 4, K: 2, Configs: 1, MaxIters: 1, Seed: 1}.Run(Strategy("bogus"), cc),
	} {
		if o.Err == nil {
			t.Errorf("%s: unknown strategy must error", o.Task)
		}
		if o.Err.Error() == "" {
			t.Errorf("%s: error should describe the strategy", o.Task)
		}
	}
	for _, o := range []Outcome{
		PageRankSpec{Groups: 1, TotalEdges: 4, TotalVertices: 2, MaxIters: 1, Seed: 1}.Run(DIQL, cc),
		AvgDistSpec{Components: 1, VerticesPerComp: 3, Seed: 1}.Run(DIQL, cc),
	} {
		if o.Err != ErrControlFlowUnsupported {
			t.Errorf("%s: DIQL must reject control flow, got %v", o.Task, o.Err)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	ok := Outcome{Task: "t", Strategy: Matryoshka, Seconds: 1.5, Jobs: 2}
	if s := ok.String(); s == "" || s[:1] != "t" {
		t.Errorf("String() = %q", s)
	}
	oom := Outcome{Task: "t", Strategy: DIQL, OOM: true, Err: ErrControlFlowUnsupported}
	if s := oom.String(); s == "" {
		t.Error("OOM string empty")
	}
	failed := Outcome{Task: "t", Strategy: DIQL, Err: ErrControlFlowUnsupported}
	if s := failed.String(); s == "" {
		t.Error("error string empty")
	}
}
