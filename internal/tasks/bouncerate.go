package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
)

// BounceRateSpec parameterizes the per-day bounce-rate task (Sec. 2.1):
// the ratio of single-page visitors to all visitors, per day. Days are the
// inner computations; Visits is the total input size.
type BounceRateSpec struct {
	Visits int
	Days   int
	Skewed bool    // Zipf day distribution (Sec. 9.5)
	Skew   float64 // Zipf exponent when Skewed (0 = datagen.DefaultZipfS)
	Seed   int64
}

// BounceRates is the task's value: day -> bounce rate.
type BounceRates = map[int64]float64

const bounceRateName = "bounce-rate"

func (sp BounceRateSpec) data() []engine.Pair[int64, int64] {
	visits := datagen.VisitsSkew(sp.Visits, sp.Days, zipfExponent(sp.Skewed, sp.Skew), sp.Seed)
	pairs := make([]engine.Pair[int64, int64], len(visits))
	for i, v := range visits {
		pairs[i] = engine.KV(v.Day, v.IP)
	}
	return pairs
}

// Reference computes the task sequentially in driver memory (ground truth
// for tests; not an execution strategy).
func (sp BounceRateSpec) Reference() BounceRates {
	perDay := map[int64]map[int64]int{}
	for _, v := range sp.data() {
		m := perDay[v.Key]
		if m == nil {
			m = map[int64]int{}
			perDay[v.Key] = m
		}
		m[v.Val]++
	}
	out := make(BounceRates, len(perDay))
	for day, counts := range perDay {
		bounces := 0
		for _, n := range counts {
			if n == 1 {
				bounces++
			}
		}
		out[day] = float64(bounces) / float64(len(counts))
	}
	return out
}

// Run executes the task under the given strategy on a fresh simulated
// cluster.
func (sp BounceRateSpec) Run(strat Strategy, cc cluster.Config) Outcome {
	switch strat {
	case Matryoshka:
		return sp.runMatryoshka(cc, core.Options{})
	case InnerParallel:
		return sp.runInner(cc)
	case OuterParallel:
		return sp.runOuter(cc, OuterParallel)
	case DIQL:
		// DIQL fails to flatten this program and applies the
		// outer-parallel workaround instead (Sec. 9.4), without
		// runtime optimizations.
		return sp.runOuter(cc, DIQL)
	}
	return Outcome{Task: bounceRateName, Strategy: strat, Err: errUnknownStrategy(strat)}
}

func errUnknownStrategy(s Strategy) error {
	return &unknownStrategyError{s}
}

type unknownStrategyError struct{ s Strategy }

func (e *unknownStrategyError) Error() string { return "tasks: unknown strategy " + string(e.s) }

// runMatryoshka is the paper's Listings 1-3 end to end: the nested program
// expressed with the nesting primitives (Listing 2), lowered to the flat
// plan (Listing 3) at run time.
func (sp BounceRateSpec) runMatryoshka(cc cluster.Config, opt core.Options) Outcome {
	opt = shredOptions(opt)
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(bounceRateName, Matryoshka, err)
	}
	visits := engine.Parallelize(sess, sp.data(), 0)
	nb, err := core.GroupByKeyIntoNestedBag(visits, opt)
	if err != nil {
		return finish(bounceRateName, Matryoshka, sess, nil, err)
	}
	// val countsPerIP = group.map((_, 1)).reduceByKey(_+_)
	countsPerIP := core.ReduceByKeyBag(
		core.MapBag(nb.Inner, func(ip int64) engine.Pair[int64, int64] { return engine.KV(ip, int64(1)) }),
		func(a, b int64) int64 { return a + b })
	// val numBounces = countsPerIP.filter(_._2 == 1).count()
	numBounces := core.CountBag(core.FilterBag(countsPerIP, func(p engine.Pair[int64, int64]) bool { return p.Val == 1 }))
	// val numTotalVisitors = group.distinct().count()
	numTotal := core.CountBag(core.DistinctBag(nb.Inner))
	// val bounceRate = binaryScalarOp(numBounces, numTotalVisitors)(_ / _)
	rate := core.BinaryScalarOp(numBounces, numTotal, func(b, t int64) float64 {
		return float64(b) / float64(t)
	})
	// Output: pair each group's key with its rate.
	keyed := core.BinaryScalarOp(nb.Outer, rate, func(day int64, r float64) engine.Pair[int64, float64] {
		return engine.KV(day, r)
	})
	tagged, err := keyed.Collect()
	if err != nil {
		return finish(bounceRateName, Matryoshka, sess, nil, err)
	}
	value := make(BounceRates, len(tagged))
	for _, kv := range tagged {
		value[kv.Key] = kv.Val
	}
	return finish(bounceRateName, Matryoshka, sess, value, nil)
}

// runInner is the inner-parallel workaround: one driver loop over days,
// each day's bounce rate computed by flat dataflow jobs over the filtered
// input.
func (sp BounceRateSpec) runInner(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(bounceRateName, InnerParallel, err)
	}
	visits := engine.Parallelize(sess, sp.data(), 0).Cache()
	days, err := engine.Collect(engine.Distinct(engine.Keys(visits)))
	if err != nil {
		return finish(bounceRateName, InnerParallel, sess, nil, err)
	}
	value := make(BounceRates, len(days))
	for _, day := range days {
		group := engine.Values(engine.Filter(visits, func(p engine.Pair[int64, int64]) bool { return p.Key == day }))
		counts := engine.ReduceByKey(
			engine.Map(group, func(ip int64) engine.Pair[int64, int64] { return engine.KV(ip, int64(1)) }),
			func(a, b int64) int64 { return a + b })
		bounces, err := engine.Count(engine.Filter(counts, func(p engine.Pair[int64, int64]) bool { return p.Val == 1 }))
		if err != nil {
			return finish(bounceRateName, InnerParallel, sess, nil, err)
		}
		total, err := engine.Count(engine.Distinct(group))
		if err != nil {
			return finish(bounceRateName, InnerParallel, sess, nil, err)
		}
		value[day] = float64(bounces) / float64(total)
	}
	return finish(bounceRateName, InnerParallel, sess, value, nil)
}

// runOuter is the outer-parallel workaround (and the plan DIQL degenerates
// to): groupByKey materializes each day's visits in one task, and the UDF
// computes the bounce rate sequentially over the in-memory array.
func (sp BounceRateSpec) runOuter(cc cluster.Config, label Strategy) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(bounceRateName, label, err)
	}
	w := recordWeight(sess)
	visits := engine.Parallelize(sess, sp.data(), 0)
	grouped := engine.GroupByKey(visits)
	// DIQL's generated plan runs the group UDF through its generic
	// iterator stack with no runtime optimization (Sec. 9.4); its
	// per-element cost is several times a hand-written loop's.
	udfFactor := 3.0
	if label == DIQL {
		udfFactor = 9
	}
	rates := engine.MapCtx(grouped, func(tc *engine.Ctx, p engine.Pair[int64, []int64]) engine.Pair[int64, float64] {
		tc.Charge(int64(udfFactor * float64(len(p.Val)) * w)) // count-per-IP + filter + distinct passes
		counts := make(map[int64]int, len(p.Val))
		for _, ip := range p.Val {
			counts[ip]++
		}
		bounces := 0
		for _, n := range counts {
			if n == 1 {
				bounces++
			}
		}
		return engine.KV(p.Key, float64(bounces)/float64(len(counts)))
	})
	value, err := engine.CollectMap(rates)
	if err != nil {
		return finish(bounceRateName, label, sess, nil, err)
	}
	return finish(bounceRateName, label, sess, BounceRates(value), nil)
}
