// Package tasks implements the paper's four evaluation workloads
// (Sec. 9.1) — Bounce Rate, per-group PageRank, K-means hyperparameter
// search, and Average Distances — each under every execution strategy the
// paper compares:
//
//   - Matryoshka: the nested-parallel program flattened through
//     internal/core (constant job count, parallel at every level);
//   - inner-parallel: a driver loop over the inner computations, each
//     running as flat dataflow jobs (full inner parallelism, per-job
//     launch overhead multiplied by the number of inner computations);
//   - outer-parallel: one flat job that groups the data and runs the
//     inner computation sequentially inside a UDF (parallelism capped by
//     the number of groups, whole groups resident in single tasks);
//   - DIQL (Bounce Rate only): a compile-time flattener that degenerates
//     to the outer-parallel plan and rejects inner control flow (Sec. 9.4).
//
// Every Run executes for real and returns a checkable Value, so the test
// suite asserts that all strategies agree with the sequential reference.
package tasks

import (
	"errors"
	"fmt"

	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
)

// zipfExponent maps a spec's (Skewed, Skew) knobs to the datagen skew
// exponent: 0 when unskewed, the explicit exponent when one is set
// (matbench -skew), datagen.DefaultZipfS otherwise.
func zipfExponent(skewed bool, skew float64) float64 {
	if !skewed {
		return 0
	}
	if skew > 1 {
		return skew
	}
	return datagen.DefaultZipfS
}

// Strategy names an execution strategy.
type Strategy string

// The strategies compared in the paper's evaluation.
const (
	Matryoshka    Strategy = "matryoshka"
	InnerParallel Strategy = "inner-parallel"
	OuterParallel Strategy = "outer-parallel"
	DIQL          Strategy = "diql"
)

// ErrControlFlowUnsupported is returned by the DIQL baseline for tasks
// with control flow at inner nesting levels, which DIQL cannot flatten
// (Sec. 9.1, Baselines).
var ErrControlFlowUnsupported = errors.New("tasks: DIQL does not support control flow at inner nesting levels")

// Outcome is one (task, strategy) run on the simulated cluster.
type Outcome struct {
	Task     string
	Strategy Strategy
	Seconds  float64 // simulated makespan
	Jobs     int
	Stages   int
	Tasks    int
	OOM      bool
	Err      error
	Value    any // strategy-independent result for correctness checks
}

func (o Outcome) String() string {
	if o.OOM {
		return fmt.Sprintf("%s/%s: OOM after %.1fs (%d jobs)", o.Task, o.Strategy, o.Seconds, o.Jobs)
	}
	if o.Err != nil {
		return fmt.Sprintf("%s/%s: error: %v", o.Task, o.Strategy, o.Err)
	}
	return fmt.Sprintf("%s/%s: %.1fs (%d jobs, %d stages, %d tasks)", o.Task, o.Strategy, o.Seconds, o.Jobs, o.Stages, o.Tasks)
}

// newSession builds an engine session on a fresh simulated cluster. An
// invalid cluster configuration is reported as an error, which runs turn
// into a failed Outcome via finish. The workaround baselines use it
// directly: they must die exactly where the systems they model die.
func newSession(cc cluster.Config) (*engine.Session, error) {
	return engine.NewSession(engine.Config{Cluster: cc, DebugStages: DebugStages, LegacyExec: LegacyExec, NoFuse: NoFuse, Obs: Obs, Backend: Backend})
}

// newMatryoshkaSession is newSession with the engine's adaptive recovery
// loop enabled (unless Recovery is flipped off): the runtime half of the
// paper's lowering phase, available only to the Matryoshka strategy.
func newMatryoshkaSession(cc cluster.Config) (*engine.Session, error) {
	return engine.NewSession(engine.Config{Cluster: cc, DebugStages: DebugStages, LegacyExec: LegacyExec, NoFuse: NoFuse, Obs: Obs, Backend: Backend, Recover: Recovery})
}

// recordWeight is the session's simulation scale (real records per
// simulated element); UDFs multiply their sequential operation counts and
// working-set sizes by it before charging the task context.
func recordWeight(sess *engine.Session) float64 {
	w := sess.Config().Cluster.RecordWeight
	if w < 1 {
		w = 1
	}
	return w
}

// failed is the Outcome of a run that could not start (no session).
func failed(task string, strat Strategy, err error) Outcome {
	return Outcome{Task: task, Strategy: strat, Err: err}
}

// finish assembles an Outcome from a finished (or failed) run.
func finish(task string, strat Strategy, sess *engine.Session, value any, err error) Outcome {
	st := sess.Stats()
	return Outcome{
		Task:     task,
		Strategy: strat,
		Seconds:  sess.Clock(),
		Jobs:     st.Jobs,
		Stages:   st.Stages,
		Tasks:    st.Tasks,
		OOM:      errors.Is(err, cluster.ErrOutOfMemory),
		Err:      err,
		Value:    value,
	}
}

// DebugStages enables per-stage tracing on sessions created by tasks
// (development aid).
var DebugStages bool

// LegacyExec runs sessions created by tasks on the engine's retained
// serial reference executor. The bench suite's executor-equivalence test
// flips it to assert that every simulated number is bit-identical across
// the two execution paths.
var LegacyExec bool

// NoFuse disables the fused narrow-chain pipeline on sessions created by
// tasks; operators then materialize one []any seam per node, as before.
// The executor-equivalence test flips it to assert fusion changes only
// wall-clock, never simulated numbers.
var NoFuse bool

// Obs, when non-nil, receives the job/stage/broadcast events and optimizer
// decisions of every session created by tasks — the hook matbench's
// --explain/--trace flags use to render EXPLAIN ANALYZE for a run.
var Obs *obs.Recorder

// Backend, when non-nil, replaces the per-run private simulator on every
// session created by tasks — matbench's `-backend proc` sets it to a
// procpool.Pool so stages with registered portable operators execute in
// real worker processes. When nil (the default), each run builds its own
// cluster.Simulator as always.
var Backend engine.Backend

// Recovery enables adaptive OOM/failure recovery on Matryoshka sessions
// (engine.Config.Recover): failed physical choices are re-lowered and jobs
// resume from their stage frontier. On by default; the memory-pressure
// experiments flip it off to show the abort-vs-recover gap. Workaround
// baselines never recover regardless.
var Recovery = true

// Shred selects the nested-bag materialization lowering on Matryoshka
// runs (matbench -shred): "auto" (default) lets the Sec. 8 shred rule
// pick per group-by from observed group sizes, "on" forces the shredded
// flat/dictionary lowering, "off" forces whole-group materialization.
var Shred = "auto"

// shredOptions applies the package-level Shred toggle to a run's
// optimizer options, keeping an explicit per-call ForceShred intact.
func shredOptions(opt core.Options) core.Options {
	if opt.ForceShred != nil {
		return opt
	}
	switch Shred {
	case "on":
		opt.ForceShred = core.ForceShredChoice(core.ShredShredded)
	case "off":
		opt.ForceShred = core.ForceShredChoice(core.ShredMaterialized)
	}
	return opt
}
