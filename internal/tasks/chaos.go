package tasks

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
	"matryoshka/internal/taskreg"
)

// The chaos diamond's operators are registered by name so a process-pool
// backend can run its stages in worker processes (the same binary
// re-exec'd makes these registrations there too). The named functions are
// behaviorally identical to the closures they replaced; the simulator's
// golden numbers cannot see the difference.
func chaosSum(a, b int64) int64                      { return a + b }
func chaosCount(vs []int64) int64                    { return int64(len(vs)) }
func chaosTotal(t engine.Tuple2[int64, int64]) int64 { return t.A + t.B }

func init() {
	taskreg.RegisterReduceByKey[int, int64]("chaos.sum", chaosSum)
	taskreg.RegisterGroupByKey[int, int64]("chaos.group")
	taskreg.RegisterMapValues[int, []int64, int64]("chaos.count", chaosCount)
	taskreg.RegisterJoin[int, int64, int64]("chaos.join")
	taskreg.RegisterMapValues[int, engine.Tuple2[int64, int64], int64]("chaos.total", chaosTotal)
}

// ChaosSpec is the fault-tolerance workload behind `matbench -explain
// chaos` and the sec9-chaos experiment: several back-to-back jobs, each
// a diamond of two shuffle parents (a reduce and a group-count over
// independent inputs) feeding a repartition join. The shape is chosen so
// a machine crash between the parents' materialisations loses exactly
// the dead machine's shuffle partitions and the consumer's fetch fails —
// the scenario lineage-based recovery (engine.Config.Recover) rewinds
// and recomputes, and the one the abort series dies on. Crash times come
// from the attached FaultPlan, so a fixed seed makes every run,
// including its failures, bit-identical.
type ChaosSpec struct {
	Records int // pairs per input side, per round
	Keys    int // distinct keys (values cycle over them)
	Parts   int // shuffle width of the reduce parent; the other edges derive from it
	Rounds  int // back-to-back jobs on one session
	Faults  cluster.FaultPlan
}

// ChaosValue is the task's checkable result, accumulated over rounds.
type ChaosValue struct {
	Keys  int   // distinct join keys in the final round
	Total int64 // sum over rounds and keys of (reduced sum + group count)
}

const chaosName = "chaos"

// pairs is round r's input: every key appears Records/Keys (+1) times
// with value r+1, so each round's result differs and a recomputed stage
// that accidentally reused stale state would be caught by Reference.
func (sp ChaosSpec) pairs(r int) []engine.Pair[int, int64] {
	ps := make([]engine.Pair[int, int64], sp.Records)
	for i := range ps {
		ps[i] = engine.KV(i%sp.Keys, int64(r+1))
	}
	return ps
}

// Reference computes the task sequentially: key k occurs c_k times per
// side, so round r contributes sum_k (c_k*(r+1) + c_k) = Records*(r+2).
func (sp ChaosSpec) Reference() ChaosValue {
	keys := sp.Keys
	if sp.Records < keys {
		keys = sp.Records
	}
	var total int64
	for r := 0; r < sp.Rounds; r++ {
		total += int64(sp.Records) * int64(r+2)
	}
	return ChaosValue{Keys: keys, Total: total}
}

// Run executes the rounds on a fresh simulated cluster with the spec's
// fault plan attached, under the Matryoshka runtime (flip Recovery off
// to reproduce the abort-on-fetch-failure behaviour).
func (sp ChaosSpec) Run(cc cluster.Config) Outcome {
	cc.Faults = sp.Faults
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(chaosName, Matryoshka, err)
	}
	var value ChaosValue
	for r := 0; r < sp.Rounds; r++ {
		left := engine.Parallelize(sess, sp.pairs(r), sp.Parts)
		right := engine.Parallelize(sess, sp.pairs(r), sp.Parts+2)
		sums := taskreg.ReduceByKeyN[int, int64](left, "chaos.sum", sp.Parts)
		counts := taskreg.MapValues[int, []int64, int64](taskreg.GroupByKeyN[int, int64](right, "chaos.group", sp.Parts+2), "chaos.count")
		joined := taskreg.JoinWith[int, int64, int64](sums, counts, "chaos.join", engine.JoinRepartition, sp.Parts+1)
		got, err := engine.CollectMap(taskreg.MapValues[int, engine.Tuple2[int64, int64], int64](joined, "chaos.total"))
		if err != nil {
			return finish(chaosName, Matryoshka, sess, nil, err)
		}
		value.Keys = len(got)
		for _, v := range got {
			value.Total += v
		}
	}
	return finish(chaosName, Matryoshka, sess, value, nil)
}
