package tasks

import (
	"math"

	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/datagen"
	"matryoshka/internal/engine"
	"matryoshka/internal/graph"
)

// PageRankSpec parameterizes per-group PageRank (Sec. 9.1: "we perform a
// grouping of the graph edges and compute a separate PageRank for each
// group", as in Topic-Sensitive PageRank / BlockRank). For weak scaling,
// TotalEdges and TotalVertices stay constant and are divided among Groups.
type PageRankSpec struct {
	Groups        int
	TotalEdges    int
	TotalVertices int
	Eps           float64 // L1 rank-change convergence threshold
	MaxIters      int
	Skewed        bool    // Zipf group sizes (Sec. 9.5)
	Skew          float64 // Zipf exponent when Skewed (0 = datagen.DefaultZipfS)
	Seed          int64
	// NoCoPartition disables pre-partitioning of the loop's static join
	// inputs (edges, degrees), re-shuffling them every superstep — the
	// ablation for the engine's co-partitioning optimization.
	NoCoPartition bool
}

// PageRankValue maps group id to its vertices' ranks.
type PageRankValue = map[int64]map[int64]float64

const pageRankName = "pagerank"

func (sp PageRankSpec) data() []datagen.GroupedEdge {
	epg := sp.TotalEdges / sp.Groups
	vpg := sp.TotalVertices / sp.Groups
	if vpg < 2 {
		vpg = 2
	}
	return datagen.GroupedGraphSkew(sp.Groups, vpg, epg, zipfExponent(sp.Skewed, sp.Skew), sp.Seed)
}

// Reference computes every group's PageRank sequentially.
func (sp PageRankSpec) Reference() PageRankValue {
	perGroup := map[int64][]datagen.Edge{}
	for _, ge := range sp.data() {
		perGroup[ge.Group] = append(perGroup[ge.Group], ge.Edge)
	}
	out := make(PageRankValue, len(perGroup))
	for g, edges := range perGroup {
		out[g] = graph.PageRankSeq(edges, sp.Eps, sp.MaxIters).Ranks
	}
	return out
}

// Run executes the task under the given strategy.
func (sp PageRankSpec) Run(strat Strategy, cc cluster.Config) Outcome {
	switch strat {
	case Matryoshka:
		return sp.RunMatryoshka(cc, core.Options{})
	case InnerParallel:
		return sp.runInner(cc)
	case OuterParallel:
		return sp.runOuter(cc)
	case DIQL:
		return Outcome{Task: pageRankName, Strategy: DIQL, Err: ErrControlFlowUnsupported}
	}
	return Outcome{Task: pageRankName, Strategy: strat, Err: errUnknownStrategy(strat)}
}

// seqHashOpsFactor converts the hash-map-based operation counts of the
// sequential per-group algorithms (PageRankSeq, AvgDistancesSeq traverse
// maps per edge) into engine-loop element-equivalents: a map lookup plus
// bookkeeping costs roughly this many tight-loop element operations. It
// keeps the outer-parallel workaround's charged cost honest relative to
// the engine operators the other strategies are billed through.
const seqHashOpsFactor = 4

// prDN packs the per-group dangling mass and vertex count that the rank
// update needs as a closure (the initWeight pattern of Sec. 5).
type prDN struct {
	Dangling float64
	N        float64
}

// RunMatryoshka flattens the nested program: group the edges into a
// NestedBag and run one lifted PageRank over all groups, with the
// iteration lifted per Sec. 6 (groups converge at different iterations).
// opt is exposed for the Fig. 8 join-strategy ablation.
func (sp PageRankSpec) RunMatryoshka(cc cluster.Config, opt core.Options) Outcome {
	opt = shredOptions(opt)
	sess, err := newMatryoshkaSession(cc)
	if err != nil {
		return failed(pageRankName, Matryoshka, err)
	}
	pairs := make([]engine.Pair[int64, datagen.Edge], 0)
	for _, ge := range sp.data() {
		pairs = append(pairs, engine.KV(ge.Group, ge.Edge))
	}
	input := engine.Parallelize(sess, pairs, 0)
	nb, err := core.GroupByKeyIntoNestedBag(input, opt)
	if err != nil {
		return finish(pageRankName, Matryoshka, sess, nil, err)
	}
	ctx := nb.Ctx()
	edges := nb.Inner.Cache()

	// Per-group vertex set, count, and out-degrees (0 for sink vertices).
	verts := core.DistinctBag(core.FlatMapBag(edges, func(e datagen.Edge) []int64 {
		return []int64{e.Src, e.Dst}
	})).Cache()
	n := core.CountBag(verts).Cache()
	degrees := core.ReduceByKeyBag(
		core.UnionBags(
			core.MapBag(edges, func(e datagen.Edge) engine.Pair[int64, int64] { return engine.KV(e.Src, int64(1)) }),
			core.MapBag(verts, func(v int64) engine.Pair[int64, int64] { return engine.KV(v, int64(0)) }),
		),
		func(a, b int64) int64 { return a + b }).Cache()
	edgesBySrc := core.MapBag(edges, func(e datagen.Edge) engine.Pair[int64, int64] {
		return engine.KV(e.Src, e.Dst)
	})
	// Static per-superstep join inputs. Normally hash-partitioned once and
	// cached so the loop shuffles only the (small) rank state each
	// iteration; the NoCoPartition ablation re-shuffles them per superstep.
	var joinRanksWithDegrees func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, int64]]]
	var joinRanksWithEdges func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, engine.Tuple2[int64, int64]]]]
	if sp.NoCoPartition {
		degreesC := degrees
		edgesDeg := core.JoinBags(edgesBySrc, degrees).Cache()
		joinRanksWithDegrees = func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, int64]]] {
			return core.JoinBags(r, degreesC)
		}
		joinRanksWithEdges = func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, engine.Tuple2[int64, int64]]]] {
			return core.JoinBags(r, edgesDeg)
		}
	} else {
		degreesKeyed := core.PartitionBagByKey(degrees)
		edgesDegKeyed := core.PartitionBagByKey(core.JoinBagsPartitioned(edgesBySrc, degreesKeyed))
		joinRanksWithDegrees = func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, int64]]] {
			return core.JoinBagsPartitioned(r, degreesKeyed)
		}
		joinRanksWithEdges = func(r core.InnerBag[engine.Pair[int64, float64]]) core.InnerBag[engine.Pair[int64, engine.Tuple2[float64, engine.Tuple2[int64, int64]]]] {
			return core.JoinBagsPartitioned(r, edgesDegKeyed)
		}
	}

	// val initWeight = 1.0 / n; ranks = vertices.map(v => (v, initWeight))
	// — the closure example of Sec. 5.1, implemented as mapWithClosure.
	initWeight := core.UnaryScalarOp(n, func(c int64) float64 { return 1 / float64(c) })
	ranks0 := core.MapWithClosure(
		core.MapBag(verts, func(v int64) engine.Pair[int64, float64] { return engine.KV(v, 0.0) }),
		initWeight,
		func(p engine.Pair[int64, float64], w float64) engine.Pair[int64, float64] {
			return engine.KV(p.Key, w)
		})

	type loopState = core.State2[core.InnerBag[engine.Pair[int64, float64]], core.InnerScalar[int64]]
	ops := core.State2Ops(core.BagState[engine.Pair[int64, float64]](), core.ScalarState[int64]())
	init := loopState{A: ranks0, B: core.Pure(ctx, int64(0))}

	out, err := core.While(ctx, init, ops, func(c *core.Ctx, st loopState) (loopState, core.InnerScalar[bool], error) {
		ranks := st.A
		// rank/degree per vertex, contributions along edges.
		rankDeg := joinRanksWithDegrees(ranks)
		contribs := core.MapBag(
			joinRanksWithEdges(ranks),
			func(p engine.Pair[int64, engine.Tuple2[float64, engine.Tuple2[int64, int64]]]) engine.Pair[int64, float64] {
				return engine.KV(p.Val.B.A, p.Val.A/float64(p.Val.B.B))
			})
		sums := core.ReduceByKeyBag(
			core.UnionBags(contribs,
				core.MapBag(verts, func(v int64) engine.Pair[int64, float64] { return engine.KV(v, 0.0) })),
			func(a, b float64) float64 { return a + b })
		// Per-group dangling mass and n, packed as one closure scalar.
		dangling := core.AggregateBag(
			core.FilterBag(rankDeg, func(p engine.Pair[int64, engine.Tuple2[float64, int64]]) bool { return p.Val.B == 0 }),
			0.0,
			func(a float64, p engine.Pair[int64, engine.Tuple2[float64, int64]]) float64 { return a + p.Val.A },
			func(x, y float64) float64 { return x + y })
		dn := core.BinaryScalarOp(dangling, n, func(d float64, c int64) prDN {
			return prDN{Dangling: d, N: float64(c)}
		})
		newRanks := core.MapWithClosure(sums, dn,
			func(p engine.Pair[int64, float64], v prDN) engine.Pair[int64, float64] {
				return engine.KV(p.Key, (1-graph.Damping)/v.N+graph.Damping*(p.Val+v.Dangling/v.N))
			})
		// L1 delta between old and new ranks, per group.
		delta := core.AggregateBag(
			core.MapBag(core.JoinBags(newRanks, ranks),
				func(p engine.Pair[int64, engine.Tuple2[float64, float64]]) float64 {
					return math.Abs(p.Val.A - p.Val.B)
				}),
			0.0,
			func(a, d float64) float64 { return a + d },
			func(x, y float64) float64 { return x + y })
		iters := core.UnaryScalarOp(st.B, func(i int64) int64 { return i + 1 })
		cond := core.BinaryScalarOp(delta, iters, func(d float64, it int64) bool {
			return d >= sp.Eps && it < int64(sp.MaxIters)
		})
		return loopState{A: newRanks, B: iters}, cond, nil
	})
	if err != nil {
		return finish(pageRankName, Matryoshka, sess, nil, err)
	}

	value, err := collectGroupedRanks(nb, out.A)
	return finish(pageRankName, Matryoshka, sess, value, err)
}

func collectGroupedRanks(nb core.NestedBag[int64, datagen.Edge], ranks core.InnerBag[engine.Pair[int64, float64]]) (PageRankValue, error) {
	outer, err := nb.Outer.Collect()
	if err != nil {
		return nil, err
	}
	groups, err := ranks.CollectGroups()
	if err != nil {
		return nil, err
	}
	value := make(PageRankValue, len(outer))
	for tag, g := range outer {
		m := make(map[int64]float64, len(groups[tag]))
		for _, kv := range groups[tag] {
			m[kv.Key] = kv.Val
		}
		value[g] = m
	}
	return value, nil
}

// runInner loops over groups in the driver, running each group's PageRank
// as flat jobs (one collect per iteration).
func (sp PageRankSpec) runInner(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(pageRankName, InnerParallel, err)
	}
	pairs := make([]engine.Pair[int64, datagen.Edge], 0)
	groupIDs := map[int64]bool{}
	for _, ge := range sp.data() {
		pairs = append(pairs, engine.KV(ge.Group, ge.Edge))
		groupIDs[ge.Group] = true
	}
	all := engine.Parallelize(sess, pairs, 0).Cache()
	value := make(PageRankValue, len(groupIDs))
	for g := range groupIDs {
		gid := g
		edges := engine.Values(engine.Filter(all, func(p engine.Pair[int64, datagen.Edge]) bool { return p.Key == gid })).Cache()
		ranks, err := enginePageRank(sess, edges, sp.Eps, sp.MaxIters)
		if err != nil {
			return finish(pageRankName, InnerParallel, sess, nil, err)
		}
		value[g] = ranks
	}
	return finish(pageRankName, InnerParallel, sess, value, nil)
}

// enginePageRank runs one flat PageRank with a driver loop, collecting the
// ranks each iteration (the standard inner-parallel implementation shape:
// one setup job for the adjacency, then one job per iteration).
func enginePageRank(sess *engine.Session, edges engine.Dataset[datagen.Edge], eps float64, maxIters int) (map[int64]float64, error) {
	adjD := engine.ReduceByKey(
		engine.FlatMap(edges, func(e datagen.Edge) []engine.Pair[int64, []int64] {
			// Emit the sink endpoint too so every vertex has an entry.
			return []engine.Pair[int64, []int64]{engine.KV(e.Src, []int64{e.Dst}), engine.KV(e.Dst, []int64(nil))}
		}),
		func(a, b []int64) []int64 { return append(append([]int64(nil), a...), b...) })
	adj, err := engine.CollectMap(adjD)
	if err != nil {
		return nil, err
	}
	verts := make([]int64, 0, len(adj))
	for v := range adj {
		verts = append(verts, v)
	}
	n := float64(len(verts))
	if n == 0 {
		return map[int64]float64{}, nil
	}
	ranks := make(map[int64]float64, len(verts))
	for _, v := range verts {
		ranks[v] = 1 / n
	}
	vD := engine.Parallelize(sess, verts, 0).Cache()
	for it := 0; it < maxIters; it++ {
		cur := ranks
		var dangling float64
		for _, v := range verts {
			if len(adj[v]) == 0 {
				dangling += cur[v]
			}
		}
		contribsD := engine.ReduceByKey(
			engine.FlatMap(vD, func(v int64) []engine.Pair[int64, float64] {
				outs := adj[v]
				share := cur[v] / float64(len(outs))
				res := make([]engine.Pair[int64, float64], len(outs))
				for i, w := range outs {
					res[i] = engine.KV(w, share)
				}
				return res
			}),
			func(a, b float64) float64 { return a + b })
		contribs, err := engine.CollectMap(contribsD) // one job per iteration
		if err != nil {
			return nil, err
		}
		next := make(map[int64]float64, len(verts))
		var delta float64
		for _, v := range verts {
			nv := (1-graph.Damping)/n + graph.Damping*(contribs[v]+dangling/n)
			delta += math.Abs(nv - cur[v])
			next[v] = nv
		}
		ranks = next
		if delta < eps {
			break
		}
	}
	return ranks, nil
}

// runOuter groups the edges and runs the whole sequential PageRank inside
// the group UDF (parallelism capped by Groups; skewed groups OOM).
func (sp PageRankSpec) runOuter(cc cluster.Config) Outcome {
	sess, err := newSession(cc)
	if err != nil {
		return failed(pageRankName, OuterParallel, err)
	}
	pairs := make([]engine.Pair[int64, datagen.Edge], 0)
	for _, ge := range sp.data() {
		pairs = append(pairs, engine.KV(ge.Group, ge.Edge))
	}
	w := recordWeight(sess)
	grouped := engine.GroupByKey(engine.Parallelize(sess, pairs, 0))
	results := engine.MapCtx(grouped, func(tc *engine.Ctx, p engine.Pair[int64, []datagen.Edge]) engine.Pair[int64, map[int64]float64] {
		res := graph.PageRankSeq(p.Val, sp.Eps, sp.MaxIters)
		tc.Charge(int64(float64(res.Ops) * w * seqHashOpsFactor))
		return engine.KV(p.Key, res.Ranks)
	})
	value, err := engine.CollectMap(results)
	if err != nil {
		return finish(pageRankName, OuterParallel, sess, nil, err)
	}
	return finish(pageRankName, OuterParallel, sess, PageRankValue(value), nil)
}
