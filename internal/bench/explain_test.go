package bench

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"

	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

var update = flag.Bool("update", false, "rewrite golden files")

// normalize replaces measured quantities (simulated seconds, byte sizes)
// with a placeholder. Everything structural — stage layout, task counts,
// memo-hit counts, decision justifications — is deterministic and kept.
var measuredTok = regexp.MustCompile(`\d+(\.\d+)?(s|GB|MB|KB|B)\b`)

func normalize(s string) string { return measuredTok.ReplaceAllString(s, "_") }

func explainScale() Scale { return Scale{RecordsPerGB: 300} }

func TestExplainRunBounceRateGolden(t *testing.T) {
	out, err := ExplainRun("bounce-rate", explainScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := normalize(out)

	path := filepath.Join("testdata", "explain_bounce.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE drifted (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExplainRunReportShape(t *testing.T) {
	out, err := ExplainRun("bounce-rate", explainScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE:",
		"Stage 1 root=",       // planned stages
		"tasks=",              // measured stage lines
		"shuffle=",            // shuffle-bytes counter
		"memo-hits=",          // fan-in memoization counter
		"pinned cluster-wide", // broadcast events
		"Optimizer decisions (Sec. 8):",
		"[partitions]",
		"[scalar-join]",
		"Sec. 8.1:",
		"Sec. 8.2:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRunTraceShape(t *testing.T) {
	out, err := ExplainRun("bounce-rate", explainScale(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job 1 start target=", "stage 1 label=", "decision rule="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestExplainRunShredShape: `matbench -explain shred` renders the shred
// rule's decision — the optimizer reading observed group sizes and
// picking the shredded lowering for the high-skew demo workload — in
// both the report's decision log and the raw trace.
func TestExplainRunShredShape(t *testing.T) {
	out, err := ExplainRun("shred", explainScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE:",
		"[shred] shredded",
		"largest of",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shred report missing %q:\n%s", want, out)
		}
	}
	trace, err := ExplainRun("shred", explainScale(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "decision rule=shred choice=shredded") {
		t.Errorf("shred trace missing shred decision:\n%s", trace)
	}
}

func TestExplainRunUnknownTask(t *testing.T) {
	if _, err := ExplainRun("no-such-task", explainScale(), false); err == nil {
		t.Fatal("want error for unknown task")
	}
	if _, err := BatchStatsRun("no-such-task", explainScale()); err == nil {
		t.Fatal("want error for unknown task")
	}
}

// TestBatchStatsRunShape: the -batchstats rendering names every shuffle
// boundary the bounce-rate plan crosses, with typed element shapes (the
// group-size reduce that shredding derives key tags from and the per-tag
// reduce on Pair batches), batch counts, and encoded byte totals.
func TestBatchStatsRunShape(t *testing.T) {
	out, err := BatchStatsRun("bounce-rate", explainScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BATCH STATS:",
		"boundary stages",
		"encoded",
		"shape=Pair[int64,int64]",
		"shape=Pair[Tag,int64]",
		"stages=",
		"batches=",
		"bytes=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("batch stats missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "shape=any") {
		t.Errorf("bounce-rate boundaries should all be typed, got a boxed fallback:\n%s", out)
	}
}

// TestSec8DecisionCoverage runs every task with the event spine attached
// and checks that each Sec. 8 rule fires at least once with a recorded
// justification across the suite.
func TestSec8DecisionCoverage(t *testing.T) {
	rec := obs.NewRecorder()
	prev := tasks.Obs
	tasks.Obs = rec
	defer func() { tasks.Obs = prev }()

	sc := explainScale()
	cc := sc.PaperCluster()
	for _, run := range []tasks.Outcome{
		bounceSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc),
		pageRankSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc),
		kmeansSpec(sc, 8).Run(tasks.Matryoshka, cc),
		avgDistSpec(8).Run(tasks.Matryoshka, cc),
	} {
		if run.Err != nil {
			t.Fatalf("%s/%s: %v", run.Task, run.Strategy, run.Err)
		}
	}

	rules := rec.SortedRules()
	for _, want := range []string{"bag-scalar-join", "half-lifted", "partitions", "scalar-join", "shred"} {
		if !slices.Contains(rules, want) {
			t.Errorf("rule %q never fired; recorded rules: %v", want, rules)
		}
	}
	for _, d := range rec.Decisions() {
		if d.Why == "" {
			t.Errorf("decision %q/%q recorded without justification", d.Rule, d.Choice)
		}
	}
}
