package bench

import (
	"reflect"
	"strings"
	"testing"
)

// chaosTestScale keeps the chaos sweeps laptop-fast; virtual durations
// are roughly scale-invariant (record weight shrinks as counts grow), so
// the crash-rate story survives the shrink.
func chaosTestScale() Scale { return Scale{RecordsPerGB: 2000} }

// TestChaosSpecMatchesReference: the diamond workload computes the right
// answer fault-free, and — the point of lineage recovery — the *same*
// right answer while machines crash under it.
func TestChaosSpecMatchesReference(t *testing.T) {
	sc := chaosTestScale()
	for _, rate := range []float64{0, 4} {
		sp := chaosSpec(sc, rate)
		out := sp.Run(sc.Cluster(4, 4, 8))
		if out.Err != nil {
			t.Fatalf("rate %v: run failed: %v", rate, out.Err)
		}
		if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
			t.Errorf("rate %v: value = %+v, want %+v", rate, out.Value, want)
		}
	}
}

// TestSec9ChaosShape checks the experiment tells the paper-shaped story:
// both series agree fault-free, the recover series completes at every
// crash rate (paying recomputation time), and any abort-series failure
// is the typed lost-fetch, not something else.
func TestSec9ChaosShape(t *testing.T) {
	sc := chaosTestScale()
	rows := Sec9Chaos(sc)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10 (abort+recover at 5 rates)", len(rows))
	}
	cell := map[string]Row{}
	for _, r := range rows {
		if r.Exp != "sec9-chaos" {
			t.Fatalf("row experiment = %q", r.Exp)
		}
		cell[r.Series+"@"+trimFloat(r.X)] = r
	}
	base := cell["recover@0"]
	if base.Err != "" || base.OOM {
		t.Fatalf("fault-free recover row failed: %+v", base)
	}
	if ab := cell["abort@0"]; ab.Err != "" || ab.Seconds != base.Seconds {
		t.Errorf("fault-free abort row should match recover exactly: %+v vs %+v", ab, base)
	}
	aborted := 0
	for _, rate := range []string{"1", "2", "4", "8"} {
		rec := cell["recover@"+rate]
		if rec.Err != "" || rec.OOM {
			t.Errorf("recover series died at rate %s: %+v", rate, rec)
		}
		if rec.Seconds < base.Seconds {
			t.Errorf("recover at rate %s finished faster (%.1fs) than fault-free (%.1fs)", rate, rec.Seconds, base.Seconds)
		}
		if ab := cell["abort@"+rate]; ab.Err != "" {
			aborted++
			if !strings.Contains(ab.Err, "fetch failed") {
				t.Errorf("abort at rate %s died of %q, want a lost shuffle fetch", rate, ab.Err)
			}
		}
	}
	if aborted == 0 {
		t.Error("no abort-series run lost a fetch; the sweep shows no abort-vs-recover gap")
	}
}

// TestSec9ChaosBitIdentical: the acceptance bar for deterministic chaos —
// the whole sweep, including which runs fail and how long recovery
// takes, is bit-identical across invocations at a fixed seed.
func TestSec9ChaosBitIdentical(t *testing.T) {
	sc := chaosTestScale()
	sc.Seed = 7
	base := Sec9Chaos(sc)
	if got := Sec9Chaos(sc); !reflect.DeepEqual(base, got) {
		t.Fatalf("fixed-seed sweep diverged:\nbase: %+v\ngot:  %+v", base, got)
	}
}

// TestExplainChaosShowsLineageRecovery: the -explain chaos report renders
// the full causal chain — machines crashing, the lost fetch, and the
// lineage recomputation that repaired it.
func TestExplainChaosShowsLineageRecovery(t *testing.T) {
	rep, err := ExplainRun("chaos", chaosTestScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fetch-failed(m", "recomputed parents {", "→ ok", "Fault events:", "crash"} {
		if !strings.Contains(rep, want) {
			t.Errorf("explain chaos report missing %q:\n%s", want, rep)
		}
	}
}
