package bench

import (
	"reflect"
	"strings"
	"testing"

	"matryoshka/internal/sched"
)

// TestSecSchedShape asserts the experiment's headline claim at every
// swept tenant count: fair share + speculation beats FIFO on
// interactive p99 by a wide margin at equal-or-better makespan.
func TestSecSchedShape(t *testing.T) {
	rows := SecSched(DefaultScale())
	get := func(series string, x float64) float64 {
		t.Helper()
		for _, r := range rows {
			if r.Series == series && r.X == x {
				if r.Err != "" {
					t.Fatalf("%s at x=%v failed: %s", series, x, r.Err)
				}
				return r.Seconds
			}
		}
		t.Fatalf("no row for %s at x=%v", series, x)
		return 0
	}
	for _, x := range []float64{1, 3, 6} {
		fifoP99, specP99 := get("fifo/p99", x), get("fair+spec/p99", x)
		if specP99 >= fifoP99 {
			t.Errorf("x=%v: fair+spec p99 %.2f not below fifo p99 %.2f", x, specP99, fifoP99)
		}
		if specP99 > fifoP99/2 {
			t.Errorf("x=%v: fair+spec p99 %.2f is not a decisive improvement over fifo %.2f", x, specP99, fifoP99)
		}
		fifoMk, specMk := get("fifo/makespan", x), get("fair+spec/makespan", x)
		if specMk > fifoMk+1e-9 {
			t.Errorf("x=%v: fair+spec makespan %.2f worse than fifo %.2f", x, specMk, fifoMk)
		}
		// Speculation, not fairness alone, is what wins back the makespan
		// under 25% stragglers.
		if fairMk := get("fair/makespan", x); specMk >= fairMk {
			t.Errorf("x=%v: speculation did not improve fair-share makespan (%.2f vs %.2f)", x, specMk, fairMk)
		}
	}
}

// TestSecSchedDeterministic: the sweep is pure — two runs produce
// bit-identical rows.
func TestSecSchedDeterministic(t *testing.T) {
	a, b := SecSched(DefaultScale()), SecSched(DefaultScale())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sec-sched rows differ between runs")
	}
}

// TestSecSchedStraggleSpeculationClipsTail: at a 15% straggler rate the
// speculative series must beat plain fair share on makespan (backup
// copies finish the stretched tasks early).
func TestSecSchedStraggleSpeculationClipsTail(t *testing.T) {
	rows := SecSchedStraggle(DefaultScale())
	var fairMk, specMk float64
	for _, r := range rows {
		if r.X != 15 {
			continue
		}
		switch r.Series {
		case "fair/makespan":
			fairMk = r.Seconds
		case "fair+spec/makespan":
			specMk = r.Seconds
		}
	}
	if fairMk == 0 || specMk == 0 {
		t.Fatal("missing makespan rows at 15% straggle")
	}
	if specMk >= fairMk {
		t.Errorf("speculation makespan %.2f not below fair %.2f at 15%% stragglers", specMk, fairMk)
	}
}

// TestSchedSummary exercises the matbench quick path end to end.
func TestSchedSummary(t *testing.T) {
	out, err := SchedSummary(DefaultScale(), 3, 0.25, sched.PolicyFair, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"policy=fair +speculation", "p99=", "makespan=", "tenant batch", "tenant int2", "speculation: launched="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
