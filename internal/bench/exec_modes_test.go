package bench

// The engine's parallel executor (worker pool, parallel shuffle routing,
// narrow fan-in memo) must be a pure host-side optimization: every
// simulated-cluster number the paper figures are built from has to come
// out bit-identical to the retained serial reference executor. This test
// runs real experiments from the registry under both executors and
// compares the raw rows with ==, not a tolerance.

import (
	"reflect"
	"testing"

	"matryoshka/internal/tasks"
)

func TestExecutorModesBitIdentical(t *testing.T) {
	// Small scale keeps the runtime reasonable; the plans and operators
	// exercised are the full ones (shuffles, broadcasts, skewed groups,
	// control flow), only the record counts shrink.
	sc := Scale{RecordsPerGB: 300}
	for _, id := range []string{"fig1", "fig7-bounce"} {
		exp, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s not in registry", id)
		}
		t.Run(id, func(t *testing.T) {
			tasks.LegacyExec = true
			ref := exp.Run(sc)
			tasks.LegacyExec = false
			par := exp.Run(sc)
			if !reflect.DeepEqual(ref, par) {
				for i := range ref {
					if i < len(par) && ref[i] != par[i] {
						t.Errorf("row %d differs:\nlegacy:   %+v\nparallel: %+v", i, ref[i], par[i])
					}
				}
				t.Fatalf("executors disagree (%d vs %d rows)", len(ref), len(par))
			}
		})
	}
}
