package bench

// The engine's parallel executor (worker pool, parallel shuffle routing,
// narrow fan-in memo) and the fused narrow-chain pipeline must be pure
// host-side optimizations: every simulated-cluster number the paper
// figures are built from has to come out bit-identical to the retained
// serial reference executor. This test runs real experiments from the
// registry under all three modes and compares the raw rows with ==, not
// a tolerance.

import (
	"reflect"
	"testing"

	"matryoshka/internal/tasks"
)

func TestExecutorModesBitIdentical(t *testing.T) {
	// Small scale keeps the runtime reasonable; the plans and operators
	// exercised are the full ones (shuffles, broadcasts, skewed groups,
	// control flow), only the record counts shrink.
	sc := Scale{RecordsPerGB: 300}
	modes := []struct {
		name   string
		legacy bool
		noFuse bool
	}{
		{"legacy", true, true},
		{"parallel-unfused", false, true},
		{"parallel-fused", false, false},
	}
	for _, id := range []string{"fig1", "fig7-bounce"} {
		exp, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s not in registry", id)
		}
		t.Run(id, func(t *testing.T) {
			defer func() { tasks.LegacyExec, tasks.NoFuse = false, false }()
			var ref []Row
			for _, m := range modes {
				tasks.LegacyExec, tasks.NoFuse = m.legacy, m.noFuse
				got := exp.Run(sc)
				if ref == nil {
					ref = got
					continue
				}
				if !reflect.DeepEqual(ref, got) {
					for i := range ref {
						if i < len(got) && ref[i] != got[i] {
							t.Errorf("row %d differs:\n%s: %+v\n%s: %+v", i, modes[0].name, ref[i], m.name, got[i])
						}
					}
					t.Fatalf("%s disagrees with %s (%d vs %d rows)", m.name, modes[0].name, len(got), len(ref))
				}
			}
		})
	}
}
