package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
	"matryoshka/internal/procpool"
	"matryoshka/internal/tasks"
)

// procChaosRounds is the soak length: back-to-back jobs on one session,
// each a lineage diamond, all under continuous seeded crash injection.
// The acceptance bar is >= 20 jobs; keep it there.
const procChaosRounds = 20

// ProcChaos is the `matbench -backend proc -procchaos` mode: a soak that
// runs the chaos diamond workload on a live process pool while a seeded
// fault plan SIGKILLs the assigned worker every KillEveryTasks
// dispatches. Two phases on the same seed:
//
//   - respawn ON: the pool heals (exponential-backoff respawn under a
//     budget), lineage recovery recomputes the shuffle outputs that died
//     with each worker, and the final value must be bit-identical to the
//     sequential reference — with at least one respawn and at least one
//     lineage recomputation actually observed, or the soak fails.
//   - respawn OFF: same seed, same kill cadence, DisableRespawn. The
//     fleet shrinks to zero, quorum is lost, and the run must abort with
//     a typed error instead of hanging or fabricating a value.
//
// Both phases render their EXPLAIN ANALYZE report so the crash, respawn
// and Recovery lines are visible evidence, not just counters.
func ProcChaos(sc Scale, workers int) (string, error) {
	if workers == 0 {
		// Unlike ProcAB the soak wants a survivor: a kill should leave a
		// live worker to requeue onto, so the default fleet is two even
		// on a single-core box.
		workers = 2
	}
	sp := tasks.ChaosSpec{Records: sc.Records(0.2), Keys: 64, Parts: 4, Rounds: procChaosRounds}
	want := sp.Reference()
	plan := procpool.FaultPlan{Seed: sc.seed(), KillEveryTasks: 23}

	oldBackend, oldObs := tasks.Backend, tasks.Obs
	defer func() { tasks.Backend, tasks.Obs = oldBackend, oldObs }()

	var b strings.Builder
	fmt.Fprintf(&b, "proc chaos soak: %d jobs, worker killed every %d task dispatches (seed %d)\n\n",
		sp.Rounds, plan.KillEveryTasks, plan.Seed)

	// Phase 1: respawn on — the pool must heal and the value must match.
	rec := obs.NewRecorder()
	pool, err := procpool.Start(procpool.Config{
		Workers:        workers,
		TaskDeadline:   10 * time.Second,
		RespawnBackoff: 20 * time.Millisecond,
		Faults:         plan,
		Events:         rec,
	})
	if err != nil {
		return "", err
	}
	defer pool.Close()
	tasks.Backend, tasks.Obs = pool, rec

	start := time.Now()
	out := sp.Run(cluster.Config{})
	wall := time.Since(start)
	if out.Err != nil {
		return "", fmt.Errorf("procchaos: respawn-on soak failed: %w", out.Err)
	}
	if !reflect.DeepEqual(out.Value, want) {
		return "", fmt.Errorf("procchaos: respawn-on value %+v != reference %+v", out.Value, want)
	}
	st := pool.Stats()
	if pool.Respawns() == 0 {
		return "", fmt.Errorf("procchaos: soak completed without a single respawn; raise the kill cadence")
	}
	if st.FetchFailures == 0 {
		return "", fmt.Errorf("procchaos: soak completed without a lineage recomputation; the kills never cost an output")
	}
	report := rec.Report()
	if !strings.Contains(report, "Recovery") {
		return "", fmt.Errorf("procchaos: EXPLAIN ANALYZE shows no Recovery line despite %d fetch failures", st.FetchFailures)
	}
	fmt.Fprintf(&b, "respawn ON:  %d jobs bit-identical to reference in %s\n", sp.Rounds, wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "             %d crashes, %d respawns, %d quarantines, %d lost-output fetch failures, %d/%d workers live at exit\n\n",
		st.MachineCrashes, pool.Respawns(), pool.Quarantines(), st.FetchFailures, pool.LiveWorkers(), pool.Workers())
	b.WriteString(report)
	b.WriteString("\n")

	// Phase 2: respawn off — same seed, same cadence; dead workers stay
	// dead, the fleet drains below quorum, and the run must abort.
	rec2 := obs.NewRecorder()
	pool2, err := procpool.Start(procpool.Config{
		Workers:        workers,
		TaskDeadline:   10 * time.Second,
		DisableRespawn: true,
		QuorumWait:     200 * time.Millisecond,
		Faults:         plan,
		Events:         rec2,
	})
	if err != nil {
		return "", err
	}
	defer pool2.Close()
	tasks.Backend, tasks.Obs = pool2, rec2

	start = time.Now()
	out2 := sp.Run(cluster.Config{})
	wall2 := time.Since(start)
	if out2.Err == nil {
		return "", fmt.Errorf("procchaos: respawn-off run survived the same kill schedule; the control proves nothing")
	}
	st2 := pool2.Stats()
	fmt.Fprintf(&b, "respawn OFF: aborted after %s with %d/%d workers live: %v\n",
		wall2.Round(time.Millisecond), pool2.LiveWorkers(), pool2.Workers(), out2.Err)
	fmt.Fprintf(&b, "             %d crashes, %d respawns\n\n", st2.MachineCrashes, pool2.Respawns())
	b.WriteString(rec2.Report())
	return b.String(), nil
}
