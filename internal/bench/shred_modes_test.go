package bench

// The shred rule's two lowerings of GroupByKeyIntoNestedBag must be
// pure physical alternatives: the same nested program run materialized
// and shredded has to produce DeepEqual-identical values — including
// the shred task's order-sensitive per-group checksums — under every
// executor mode (serial reference, parallel unfused, parallel fused).
// Twelve runs per task: 3 executor modes x 2 forced lowerings, plus the
// invariant that within one lowering the executor modes agree on the
// simulated numbers too.

import (
	"reflect"
	"testing"

	"matryoshka/internal/tasks"
)

func TestShredLoweringsBitIdenticalAcrossExecModes(t *testing.T) {
	sc := Scale{RecordsPerGB: 300}
	cc := sc.PaperCluster()
	execModes := []struct {
		name   string
		legacy bool
		noFuse bool
	}{
		{"legacy", true, true},
		{"parallel-unfused", false, true},
		{"parallel-fused", false, false},
	}
	for _, task := range []struct {
		name string
		run  func() tasks.Outcome
	}{
		{"bounce-rate", func() tasks.Outcome { return bounceSpec(sc, 8, 2, true).Run(tasks.Matryoshka, cc) }},
		{"pagerank", func() tasks.Outcome { return pageRankSpec(sc, 8, 2, true).Run(tasks.Matryoshka, cc) }},
		{"shred", func() tasks.Outcome { return shredSpec(sc, 1.3).Run(sc.Cluster(2, 2, 1)) }},
	} {
		t.Run(task.name, func(t *testing.T) {
			defer func() { tasks.LegacyExec, tasks.NoFuse, tasks.Shred = false, false, "auto" }()
			var refValue any
			for _, shredMode := range []string{"off", "on"} {
				var refOutcome *tasks.Outcome
				for _, m := range execModes {
					tasks.LegacyExec, tasks.NoFuse, tasks.Shred = m.legacy, m.noFuse, shredMode
					out := task.run()
					if out.Err != nil {
						t.Fatalf("shred=%s exec=%s: %v", shredMode, m.name, out.Err)
					}
					if refValue == nil {
						refValue = out.Value
					} else if !reflect.DeepEqual(refValue, out.Value) {
						t.Fatalf("shred=%s exec=%s: value diverged from first run", shredMode, m.name)
					}
					if refOutcome == nil {
						refOutcome = &out
					} else if out.Seconds != refOutcome.Seconds || out.Jobs != refOutcome.Jobs ||
						out.Stages != refOutcome.Stages || out.Tasks != refOutcome.Tasks {
						t.Fatalf("shred=%s exec=%s: simulated numbers diverged: %+v vs %+v",
							shredMode, m.name, out, *refOutcome)
					}
				}
			}
		})
	}
}
