// Package bench defines one reproducible experiment per table/figure of
// the paper's evaluation (Sec. 9). Each experiment sweeps the paper's
// parameter, runs the relevant task/strategy combinations on the simulated
// cluster, and returns rows whose *shape* (who wins, by what factor, where
// OOMs and crossovers fall) mirrors the published plots.
//
// Dataset sizes are given in the paper's units (GB) and mapped to element
// counts by Scale, which also scales the simulated machines' memory by the
// same ratio, so memory-pressure effects (outer-parallel/DIQL OOMs,
// broadcast-join failures) land where the paper reports them.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"matryoshka/internal/cluster"
)

// realBytesPerRecord is the bytes one record contributes to the paper's
// "GB" dataset sizes. It is set to the engine's typical boxed-record
// estimate so that a simulated dataset declared as N GB also *measures* as
// N GB inside the memory model (estimated bytes x record weight) — which
// keeps OOM boundaries invariant under the RecordsPerGB scale knob.
const realBytesPerRecord = 48

// Scale shrinks the paper's dataset sizes to laptop-runnable element
// counts while preserving all data:memory and data:group ratios.
type Scale struct {
	// RecordsPerGB is how many simulated records stand in for one paper
	// gigabyte. The default (10 000) turns the 48 GB Bounce Rate input
	// into 480 000 records.
	RecordsPerGB int
	// MemoryPerMachine, when > 0, overrides the per-machine memory of
	// every cluster this scale builds (matbench -mem): the CLI's way to
	// create the memory pressure that exercises adaptive recovery.
	MemoryPerMachine int64
	// FaultRate, when > 0, sets TaskFailureRate on every cluster this
	// scale builds (matbench -faultrate).
	FaultRate float64
	// MTBF, when > 0, attaches a seeded machine-crash hazard to every
	// cluster this scale builds (matbench -mtbf / -chaos): each machine
	// crashes on average every MTBF simulated seconds, destroying its
	// resident shuffle outputs, and rejoins after the plan's default
	// repair time.
	MTBF float64
	// Seed seeds every deterministic random draw the scale's runs make
	// (straggler skew, the crash hazard). 0 means the default seed, so
	// unseeded runs stay bit-identical to each other.
	Seed uint64
	// Skew, when > 1, overrides the Zipf skew exponent of every skewed
	// dataset the scale's experiments generate (matbench -skew; the
	// generators default to datagen.DefaultZipfS).
	Skew float64
}

// defaultSeed keeps unseeded runs reproducible (and matches the seed the
// scheduling experiments historically hard-coded).
const defaultSeed = 17

// seed resolves the Scale's seed knob.
func (s Scale) seed() uint64 {
	if s.Seed == 0 {
		return defaultSeed
	}
	return s.Seed
}

// DefaultScale is used by the CLI and benchmarks.
func DefaultScale() Scale { return Scale{RecordsPerGB: 10_000} }

// Records converts a paper dataset size to a record count.
func (s Scale) Records(gb float64) int {
	n := int(gb * float64(s.RecordsPerGB))
	if n < 1 {
		n = 1
	}
	return n
}

// Cluster builds a simulated cluster of the given machine count whose
// per-machine memory corresponds to memGB paper-gigabytes under this
// scale.
func (s Scale) Cluster(machines, cores int, memGB float64) cluster.Config {
	cc := cluster.DefaultConfig()
	cc.Machines = machines
	cc.CoresPerMachine = cores
	cc.MemoryPerMachine = int64(memGB * float64(1<<30))
	cc.RecordWeight = float64(1<<30) / realBytesPerRecord / float64(s.RecordsPerGB)
	return s.override(cc)
}

// override applies the Scale's CLI knobs to a built cluster config.
func (s Scale) override(cc cluster.Config) cluster.Config {
	if s.MemoryPerMachine > 0 {
		cc.MemoryPerMachine = s.MemoryPerMachine
	}
	if s.FaultRate > 0 {
		cc.TaskFailureRate = s.FaultRate
	}
	if s.MTBF > 0 {
		cc.Faults = cluster.FaultPlan{MTBF: s.MTBF, Seed: s.seed()}
	}
	return cc
}

// PaperCluster is the paper's 25-machine cluster (Sec. 9.1) under this
// scale: 16 cores and 22 GB Spark memory per machine.
func (s Scale) PaperCluster() cluster.Config { return s.Cluster(25, 16, 22) }

// LargeCluster is the Sec. 9.7 cluster: 36 machines, 40 threads, 100 GB,
// 10 Gb network.
func (s Scale) LargeCluster() cluster.Config {
	cc := cluster.LargeConfig()
	cc.RecordWeight = float64(1<<30) / realBytesPerRecord / float64(s.RecordsPerGB)
	return s.override(cc)
}

// Row is one measured point of an experiment.
type Row struct {
	Exp     string  // experiment id, e.g. "fig3-kmeans"
	Series  string  // line in the plot, e.g. "matryoshka"
	X       float64 // the swept parameter (inner computations, machines, ...)
	Seconds float64 // simulated runtime
	Jobs    int
	OOM     bool
	Err     string // non-OOM failure, if any
}

// Experiment is a runnable reproduction of one figure.
type Experiment struct {
	ID    string
	Title string
	XName string
	Run   func(Scale) []Row
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Fig. 1: K-means runtimes (workarounds vs ideal)", XName: "initial configurations", Run: Fig1},
		{ID: "fig3-kmeans", Title: "Fig. 3: weak scaling, K-means", XName: "inner computations", Run: Fig3KMeans},
		{ID: "fig3-pagerank", Title: "Fig. 3: weak scaling, PageRank", XName: "inner computations", Run: Fig3PageRank},
		{ID: "fig3-avgdist", Title: "Fig. 3: weak scaling, Average Distances", XName: "inner computations", Run: Fig3AvgDist},
		{ID: "fig4", Title: "Fig. 4: scale-out (all tasks, 64 inner computations)", XName: "machines", Run: Fig4},
		{ID: "fig5-weak", Title: "Fig. 5 (left): Bounce Rate weak scaling, 48 GB", XName: "inner computations", Run: Fig5Weak},
		{ID: "fig5-scaleout", Title: "Fig. 5 (right): Bounce Rate scale-out, 256 groups", XName: "machines", Run: Fig5ScaleOut},
		{ID: "fig6", Title: "Fig. 6: Bounce Rate vs DIQL at 12 GB", XName: "inner computations", Run: Fig6},
		{ID: "fig7-bounce", Title: "Fig. 7: data skew, Bounce Rate (Zipf keys, 1024 groups)", XName: "groups", Run: Fig7Bounce},
		{ID: "fig7-pagerank", Title: "Fig. 7: data skew, PageRank (Zipf keys, 1024 groups)", XName: "groups", Run: Fig7PageRank},
		{ID: "fig8a", Title: "Fig. 8 (left): InnerBag-InnerScalar join strategies, PageRank 160 GB", XName: "inner computations", Run: Fig8a},
		{ID: "fig8b", Title: "Fig. 8 (right): half-lifted mapWithClosure strategies, K-means", XName: "inner computations", Run: Fig8b},
		{ID: "fig9-pagerank", Title: "Fig. 9: 8x input, large cluster, PageRank", XName: "inner computations", Run: Fig9PageRank},
		{ID: "fig9-bounce", Title: "Fig. 9: 8x input, large cluster, Bounce Rate", XName: "inner computations", Run: Fig9Bounce},
		{ID: "sec9-recovery", Title: "Sec. 9 memory pressure: abort vs adaptive recovery", XName: "GB per machine", Run: Sec9Recovery},
		{ID: "sec9-chaos", Title: "Machine crashes: abort vs lineage recovery vs crash rate", XName: "crashes/machine/1000s", Run: Sec9Chaos},
		{ID: "sec-shred", Title: "Nested-bag lowering under Zipf skew: materialized vs shredded (clock + peak task MB)", XName: "zipf exponent", Run: SecShred},
		{ID: "sec-sched", Title: "Multi-tenant scheduling: interactive p50/p99 and makespan vs tenants (25% stragglers)", XName: "interactive tenants", Run: SecSched},
		{ID: "sec-sched-straggle", Title: "Multi-tenant scheduling: interactive p50/p99 and makespan vs straggler rate (3 tenants)", XName: "straggler %", Run: SecSchedStraggle},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table renders rows as an aligned text table: one line per X value, one
// column per series, matching how the paper's plots are read.
func Table(e Experiment, rows []Row) string {
	seriesSet := map[string]bool{}
	xs := map[float64]bool{}
	cell := map[string]string{}
	for _, r := range rows {
		seriesSet[r.Series] = true
		xs[r.X] = true
		v := fmt.Sprintf("%.1f", r.Seconds)
		if r.OOM {
			v = "OOM"
		} else if r.Err != "" {
			v = "ERR"
		}
		cell[fmt.Sprintf("%v|%s", r.X, r.Series)] = v
	}
	var series []string
	for s := range seriesSet {
		series = append(series, s)
	}
	sort.Strings(series)
	var xvals []float64
	for x := range xs {
		xvals = append(xvals, x)
	}
	sort.Float64s(xvals)

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Title)
	fmt.Fprintf(&b, "%-18s", e.XName)
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteString("\n")
	for _, x := range xvals {
		fmt.Fprintf(&b, "%-18v", trimFloat(x))
		for _, s := range series {
			v := cell[fmt.Sprintf("%v|%s", x, s)]
			if v == "" {
				v = "-"
			}
			fmt.Fprintf(&b, "%16s", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
