package bench

import (
	"strings"
	"testing"
)

func TestScaleRecords(t *testing.T) {
	sc := Scale{RecordsPerGB: 1000}
	if got := sc.Records(48); got != 48_000 {
		t.Fatalf("Records(48) = %d", got)
	}
	if got := sc.Records(0.0001); got != 1 {
		t.Fatalf("tiny sizes clamp to 1, got %d", got)
	}
}

func TestScaleClusterWeightAndMemory(t *testing.T) {
	sc := Scale{RecordsPerGB: 2000}
	cc := sc.Cluster(25, 16, 22)
	if cc.Machines != 25 || cc.CoresPerMachine != 16 {
		t.Fatalf("cluster shape: %+v", cc)
	}
	if cc.MemoryPerMachine != 22<<30 {
		t.Fatalf("memory = %d, want 22 GiB (real bytes)", cc.MemoryPerMachine)
	}
	// One sim record stands for (1 GiB / realBytesPerRecord) / 2000 real records.
	want := float64(1<<30) / realBytesPerRecord / 2000
	if cc.RecordWeight != want {
		t.Fatalf("weight = %v, want %v", cc.RecordWeight, want)
	}
}

func TestLargeClusterUsesFasterNetwork(t *testing.T) {
	sc := DefaultScale()
	small, large := sc.PaperCluster(), sc.LargeCluster()
	if large.PerByteShuffle >= small.PerByteShuffle {
		t.Fatal("the Sec. 9.7 cluster has a faster network")
	}
	if large.Slots() <= small.Slots() {
		t.Fatal("the Sec. 9.7 cluster has more slots")
	}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{
		"fig1", "fig3-kmeans", "fig3-pagerank", "fig3-avgdist", "fig4",
		"fig5-weak", "fig5-scaleout", "fig6", "fig7-bounce", "fig7-pagerank",
		"fig8a", "fig8b", "fig9-pagerank", "fig9-bounce",
	} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig1"); !ok {
		t.Error("fig1 should exist")
	}
	if _, ok := Find("fig99"); ok {
		t.Error("fig99 should not exist")
	}
}

func TestTableRendering(t *testing.T) {
	e := Experiment{ID: "x", Title: "Title", XName: "groups"}
	rows := []Row{
		{Exp: "x", Series: "a", X: 4, Seconds: 1.25},
		{Exp: "x", Series: "b", X: 4, OOM: true},
		{Exp: "x", Series: "a", X: 16, Seconds: 2.5},
		{Exp: "x", Series: "b", X: 16, Err: "boom"},
	}
	out := Table(e, rows)
	for _, want := range []string{"Title", "groups", "1.2", "OOM", "ERR", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as "-": series a at x=4 and series b at x=16
	// leave two holes in the grid.
	out2 := Table(e, []Row{rows[0], rows[3]})
	if strings.Count(out2, "               -") < 2 {
		t.Errorf("missing cells should render dashes:\n%s", out2)
	}
}

// TestFig6Smoke runs the fastest experiment end to end at a reduced scale
// (large enough that fixed per-job overheads do not drown the data costs
// the figure is about).
func TestFig6Smoke(t *testing.T) {
	rows := Fig6(Scale{RecordsPerGB: 1000})
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" || r.OOM {
			t.Errorf("row failed: %+v", r)
		}
		if r.Seconds <= 0 {
			t.Errorf("no time: %+v", r)
		}
	}
	// DIQL must never beat Matryoshka in this figure.
	sec := map[string]map[float64]float64{}
	for _, r := range rows {
		if sec[r.Series] == nil {
			sec[r.Series] = map[float64]float64{}
		}
		sec[r.Series][r.X] = r.Seconds
	}
	for x, diql := range sec["diql"] {
		if diql < sec["matryoshka"][x] {
			t.Errorf("at x=%v DIQL (%.1f) beat Matryoshka (%.1f)", x, diql, sec["matryoshka"][x])
		}
	}
}

// series extracts one line of an experiment's rows.
func series(rows []Row, name string) map[float64]Row {
	out := map[float64]Row{}
	for _, r := range rows {
		if r.Series == name {
			out[r.X] = r
		}
	}
	return out
}

// TestFig1SmokeShape checks the motivating figure's shape at a tiny scale:
// inner-parallel grows with configurations, outer-parallel shrinks, and
// they cross.
func TestFig1SmokeShape(t *testing.T) {
	rows := Fig1(Scale{RecordsPerGB: 200})
	inner := series(rows, "inner-parallel")
	outer := series(rows, "outer-parallel")
	if !(inner[256].Seconds > inner[16].Seconds && inner[16].Seconds > inner[1].Seconds) {
		t.Errorf("inner-parallel should grow: %v / %v / %v",
			inner[1].Seconds, inner[16].Seconds, inner[256].Seconds)
	}
	if !(outer[1].Seconds > outer[16].Seconds && outer[16].Seconds > outer[256].Seconds) {
		t.Errorf("outer-parallel should shrink: %v / %v / %v",
			outer[1].Seconds, outer[16].Seconds, outer[256].Seconds)
	}
	if !(inner[1].Seconds < outer[1].Seconds && inner[256].Seconds > outer[256].Seconds) {
		t.Error("the workarounds should cross between 1 and 256 configurations")
	}
}

// TestFig5WeakSmokeOOMs checks the memory-pressure outcome is
// scale-invariant: outer-parallel and DIQL OOM at every group count while
// Matryoshka and inner-parallel complete.
func TestFig5WeakSmokeOOMs(t *testing.T) {
	rows := Fig5Weak(Scale{RecordsPerGB: 500})
	for _, r := range rows {
		switch r.Series {
		case "outer-parallel", "diql":
			if !r.OOM {
				t.Errorf("%s at %v should OOM, got %.1fs", r.Series, r.X, r.Seconds)
			}
		case "matryoshka", "inner-parallel":
			if r.OOM || r.Err != "" {
				t.Errorf("%s at %v failed: %+v", r.Series, r.X, r)
			}
		}
	}
}
