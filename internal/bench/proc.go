package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"matryoshka/internal/procpool"
	"matryoshka/internal/tasks"
)

// ProcAB is the `matbench -backend proc` mode: run representative
// workloads twice — once on a per-run private simulator, once on a live
// process pool — assert the values are DeepEqual, and render the
// comparison. It is an executable proof that the portable task runtime
// computes exactly what the driver would have: same registered kernels,
// same blocks, same order.
//
// The k-means rows are the Fig. 1 workload (the inner-parallel plan ships
// its assign/reduce stages to workers; the outer-parallel plan's MapCtx
// UDF has no portable form and exercises the driver-local fallback). The
// chaos row is the lineage-recovery diamond, run here without a fault
// plan — fault injection is the simulator's; real crashes are covered by
// the procpool test suite's kill hook.
func ProcAB(sc Scale, workers int) (string, error) {
	pool, err := procpool.Start(procpool.Config{Workers: workers})
	if err != nil {
		return "", err
	}
	defer pool.Close()
	oldBackend := tasks.Backend
	defer func() { tasks.Backend = oldBackend }()

	cc := sc.PaperCluster()
	var b strings.Builder
	fmt.Fprintf(&b, "proc A/B (%d workers): simulator vs process pool, values must be bit-identical\n", pool.LiveWorkers())
	fmt.Fprintf(&b, "%-16s %12s %12s %8s %8s  %s\n", "workload", "sim wall", "proc wall", "rstages", "rtasks", "values")

	run := func(name string, wantRemote bool, f func() tasks.Outcome) error {
		tasks.Backend = nil
		simStart := time.Now()
		simOut := f()
		simWall := time.Since(simStart)
		if simOut.Err != nil {
			return fmt.Errorf("proc-ab %s: sim run: %w", name, simOut.Err)
		}
		tasks.Backend = pool
		stagesBefore, tasksBefore := pool.RemoteStages(), pool.RemoteTasks()
		procStart := time.Now()
		procOut := f()
		procWall := time.Since(procStart)
		if procOut.Err != nil {
			return fmt.Errorf("proc-ab %s: proc run: %w", name, procOut.Err)
		}
		if !reflect.DeepEqual(simOut.Value, procOut.Value) {
			return fmt.Errorf("proc-ab %s: sim and proc values differ", name)
		}
		rStages, rTasks := pool.RemoteStages()-stagesBefore, pool.RemoteTasks()-tasksBefore
		if wantRemote && rTasks == 0 {
			return fmt.Errorf("proc-ab %s: no tasks ran in worker processes", name)
		}
		fmt.Fprintf(&b, "%-16s %12s %12s %8d %8d  identical\n",
			name, simWall.Round(time.Millisecond), procWall.Round(time.Millisecond), rStages, rTasks)
		return nil
	}

	ksp := kmeansSpec(sc, 8)
	if err := run("k-means/inner", true, func() tasks.Outcome { return ksp.Run(tasks.InnerParallel, cc) }); err != nil {
		return "", err
	}
	if err := run("k-means/outer", false, func() tasks.Outcome { return ksp.Run(tasks.OuterParallel, cc) }); err != nil {
		return "", err
	}
	csp := chaosSpec(sc, 0)
	if err := run("chaos", true, func() tasks.Outcome { return csp.Run(cc) }); err != nil {
		return "", err
	}

	spillBlocks, spillBytes := pool.Spills()
	fmt.Fprintf(&b, "pool: %d bytes shipped, %d blocks (%d bytes) spilled, %d/%d workers live\n",
		pool.BytesShipped(), spillBlocks, spillBytes, pool.LiveWorkers(), pool.Workers())
	return b.String(), nil
}
