package bench

import (
	"reflect"
	"strings"
	"testing"

	"matryoshka/internal/tasks"
)

// TestSec9RecoveryExperiment pins the shape of the abort-vs-recover sweep:
// inside the pressure window the abort series OOMs where the recover
// series completes; with ample memory the two are identical; below the
// window both die in ingest. The whole sweep is deterministic.
func TestSec9RecoveryExperiment(t *testing.T) {
	sc := Scale{RecordsPerGB: 2000}
	rows := Sec9Recovery(sc)
	byKey := func(rows []Row) map[string]Row {
		m := make(map[string]Row, len(rows))
		for _, r := range rows {
			m[r.Series+"@"+trimFloat(r.X)] = r
		}
		return m
	}
	m := byKey(rows)

	for _, x := range []string{"1", "2", "4"} {
		if !m["abort@"+x].OOM {
			t.Errorf("abort@%sGB should OOM: %+v", x, m["abort@"+x])
		}
	}
	for _, x := range []string{"2", "4", "8"} {
		r := m["recover@"+x]
		if r.OOM || r.Err != "" || r.Seconds <= 0 {
			t.Errorf("recover@%sGB should complete: %+v", x, r)
		}
	}
	// Plenty of memory: recovery never fires, both series agree exactly.
	if a, r := m["abort@8"], m["recover@8"]; a.OOM || a.Seconds != r.Seconds {
		t.Errorf("at 8 GB the series should coincide: %+v vs %+v", a, r)
	}
	// Below the window the ingest tasks themselves overflow a machine;
	// no re-lowering can split a source, so recovery is honestly bounded.
	if a, r := m["abort@0.5"], m["recover@0.5"]; !a.OOM || !r.OOM {
		t.Errorf("at 0.5 GB both series should OOM: %+v vs %+v", a, r)
	}
	// The recovered run pays for its failed attempts: it must not be
	// faster than the same workload with memory to spare.
	if m["recover@2"].Seconds <= 0 || m["recover@8"].Seconds <= 0 {
		t.Fatalf("missing rows: %+v", m)
	}

	if again := byKey(Sec9Recovery(sc)); !reflect.DeepEqual(m, again) {
		t.Errorf("sweep not deterministic:\n%+v\n%+v", m, again)
	}
}

// TestMemPressureValueMatchesReference: the demo workload's recovered run
// produces exactly the sequential reference value.
func TestMemPressureValueMatchesReference(t *testing.T) {
	sc := Scale{RecordsPerGB: 2000}
	spec := memPressureSpec(sc)
	out := spec.Run(sc.Cluster(2, 2, 2))
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	got, ok := out.Value.(tasks.MemPressureValue)
	if !ok || got != spec.Reference() {
		t.Errorf("value = %+v, want %+v", out.Value, spec.Reference())
	}
}

// TestExplainShowsRecovery: `matbench -explain recovery` renders the
// adaptive re-lowerings in the EXPLAIN ANALYZE report.
func TestExplainShowsRecovery(t *testing.T) {
	rep, err := ExplainRun("recovery", Scale{RecordsPerGB: 2000}, false)
	if err != nil {
		t.Fatalf("ExplainRun: %v", err)
	}
	for _, want := range []string{
		"Recovery stage",
		"broadcast OOM",
		"→ re-lowered(join=repartition) → ok",
		"task OOM",
		"re-lowered(parts ",
		"retried-after-OOM",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestExplainFaultRateShowsRetries: `matbench -explain bounce-rate
// -faultrate 0.02` surfaces injected task retries in the stage lines, and
// the whole report — virtual clock included — is deterministic.
func TestExplainFaultRateShowsRetries(t *testing.T) {
	sc := Scale{RecordsPerGB: 2000, FaultRate: 0.02}
	rep1, err := ExplainRun("bounce-rate", sc, false)
	if err != nil {
		t.Fatalf("ExplainRun: %v", err)
	}
	if !strings.Contains(rep1, "retries=") {
		t.Errorf("report shows no retries:\n%s", rep1)
	}
	rep2, err := ExplainRun("bounce-rate", sc, false)
	if err != nil {
		t.Fatalf("ExplainRun again: %v", err)
	}
	if rep1 != rep2 {
		t.Error("fault-injected EXPLAIN ANALYZE not deterministic across runs")
	}
}
