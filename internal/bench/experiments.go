package bench

import (
	"matryoshka/internal/cluster"
	"matryoshka/internal/core"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// row converts a task outcome into a bench row.
func row(exp, series string, x float64, o tasks.Outcome) Row {
	r := Row{Exp: exp, Series: series, X: x, Seconds: o.Seconds, Jobs: o.Jobs, OOM: o.OOM}
	if o.Err != nil && !o.OOM {
		r.Err = o.Err.Error()
	}
	return r
}

// kmeansSpec is the shared K-means shape: total work constant at 20 GB of
// points, 4 clusters, convergence capped at 8 Lloyd's iterations.
func kmeansSpec(sc Scale, configs int) tasks.KMeansSpec {
	return tasks.KMeansSpec{
		TotalPoints: sc.Records(20),
		K:           4,
		Configs:     configs,
		Eps:         1e-6,
		MaxIters:    8,
		Seed:        1,
	}
}

func pageRankSpec(sc Scale, groups int, gb float64, skewed bool) tasks.PageRankSpec {
	return tasks.PageRankSpec{
		Groups:        groups,
		TotalEdges:    sc.Records(gb),
		TotalVertices: sc.Records(gb) / 5,
		Eps:           1e-6,
		MaxIters:      6,
		Skewed:        skewed,
		Skew:          sc.Skew,
		Seed:          2,
	}
}

func avgDistSpec(comps int) tasks.AvgDistSpec {
	vpc := 2048 / comps
	if vpc < 4 {
		vpc = 4
	}
	return tasks.AvgDistSpec{
		Components:        comps,
		VerticesPerComp:   vpc,
		ExtraEdgesPerComp: vpc / 2,
		Seed:              3,
		Weight:            64,
	}
}

func bounceSpec(sc Scale, days int, gb float64, skewed bool) tasks.BounceRateSpec {
	return tasks.BounceRateSpec{Visits: sc.Records(gb), Days: days, Skewed: skewed, Skew: sc.Skew, Seed: 4}
}

// Fig1 reproduces the motivating experiment: K-means under the two
// workarounds across 1..256 initial configurations (total work constant),
// against the ideal of a fully parallel single run.
func Fig1(sc Scale) []Row {
	cc := sc.PaperCluster()
	var rows []Row
	ideal := kmeansSpec(sc, 1).Run(tasks.InnerParallel, cc)
	for c := 1; c <= 256; c *= 4 {
		spec := kmeansSpec(sc, c)
		rows = append(rows,
			row("fig1", "inner-parallel", float64(c), spec.Run(tasks.InnerParallel, cc)),
			row("fig1", "outer-parallel", float64(c), spec.Run(tasks.OuterParallel, cc)),
			Row{Exp: "fig1", Series: "ideal", X: float64(c), Seconds: ideal.Seconds},
		)
	}
	return rows
}

// weakScaling sweeps the number of inner computations with constant total
// input across the three strategies.
func weakScaling(exp string, xs []int, run func(x int, s tasks.Strategy) tasks.Outcome) []Row {
	var rows []Row
	for _, x := range xs {
		for _, s := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel} {
			rows = append(rows, row(exp, string(s), float64(x), run(x, s)))
		}
	}
	return rows
}

// Fig3KMeans is the K-means panel of the weak-scaling figure.
func Fig3KMeans(sc Scale) []Row {
	cc := sc.PaperCluster()
	return weakScaling("fig3-kmeans", []int{4, 16, 64, 256, 1024}, func(x int, s tasks.Strategy) tasks.Outcome {
		return kmeansSpec(sc, x).Run(s, cc)
	})
}

// Fig3PageRank is the PageRank panel (20 GB of edges).
func Fig3PageRank(sc Scale) []Row {
	cc := sc.PaperCluster()
	return weakScaling("fig3-pagerank", []int{4, 16, 64, 256, 1024}, func(x int, s tasks.Strategy) tasks.Outcome {
		return pageRankSpec(sc, x, 20, false).Run(s, cc)
	})
}

// Fig3AvgDist is the Average Distances panel (three nesting levels).
func Fig3AvgDist(sc Scale) []Row {
	cc := sc.PaperCluster()
	return weakScaling("fig3-avgdist", []int{4, 16, 64}, func(x int, s tasks.Strategy) tasks.Outcome {
		return avgDistSpec(x).Run(s, cc)
	})
}

// Fig4 scales the cluster from 5 to 25 machines with 64 inner
// computations for each iterative task.
func Fig4(sc Scale) []Row {
	var rows []Row
	for _, machines := range []int{5, 10, 15, 20, 25} {
		cc := sc.Cluster(machines, 16, 22)
		for _, s := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel} {
			rows = append(rows,
				row("fig4", "kmeans/"+string(s), float64(machines), kmeansSpec(sc, 64).Run(s, cc)),
				row("fig4", "pagerank/"+string(s), float64(machines), pageRankSpec(sc, 64, 20, false).Run(s, cc)),
				row("fig4", "avgdist/"+string(s), float64(machines), avgDistSpec(64).Run(s, cc)),
			)
		}
	}
	return rows
}

// Fig5Weak is Bounce Rate weak scaling at 48 GB, where DIQL and
// outer-parallel run out of memory in all cases (Sec. 9.4).
func Fig5Weak(sc Scale) []Row {
	cc := sc.PaperCluster()
	var rows []Row
	for _, days := range []int{4, 16, 64, 256} {
		spec := bounceSpec(sc, days, 48, false)
		for _, s := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel, tasks.DIQL} {
			rows = append(rows, row("fig5-weak", string(s), float64(days), spec.Run(s, cc)))
		}
	}
	return rows
}

// Fig5ScaleOut is Bounce Rate scale-out with 256 groups.
func Fig5ScaleOut(sc Scale) []Row {
	var rows []Row
	for _, machines := range []int{5, 10, 15, 20, 25} {
		cc := sc.Cluster(machines, 16, 22)
		spec := bounceSpec(sc, 256, 48, false)
		for _, s := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel, tasks.DIQL} {
			rows = append(rows, row("fig5-scaleout", string(s), float64(machines), spec.Run(s, cc)))
		}
	}
	return rows
}

// Fig6 rescales Bounce Rate to 12 GB so DIQL completes, and compares it to
// Matryoshka (the paper reports Matryoshka faster in all cases, up to
// 6.6x).
func Fig6(sc Scale) []Row {
	cc := sc.PaperCluster()
	var rows []Row
	for _, days := range []int{32, 64, 128, 256} {
		spec := bounceSpec(sc, days, 12, false)
		rows = append(rows,
			row("fig6", string(tasks.Matryoshka), float64(days), spec.Run(tasks.Matryoshka, cc)),
			row("fig6", string(tasks.DIQL), float64(days), spec.Run(tasks.DIQL, cc)),
		)
	}
	return rows
}

// Fig7Bounce is the skew experiment for Bounce Rate: 1024 groups with
// Zipf-distributed keys; Matryoshka is compared against its own unskewed
// runtime (the paper reports within 15%), while inner-parallel degrades
// and outer-parallel OOMs.
func Fig7Bounce(sc Scale) []Row {
	cc := sc.PaperCluster()
	skew := bounceSpec(sc, 1024, 24, true)
	flat := bounceSpec(sc, 1024, 24, false)
	return []Row{
		row("fig7-bounce", "matryoshka/skewed", 1024, skew.Run(tasks.Matryoshka, cc)),
		row("fig7-bounce", "matryoshka/uniform", 1024, flat.Run(tasks.Matryoshka, cc)),
		row("fig7-bounce", "inner-parallel/skewed", 1024, skew.Run(tasks.InnerParallel, cc)),
		row("fig7-bounce", "outer-parallel/skewed", 1024, skew.Run(tasks.OuterParallel, cc)),
	}
}

// Fig7PageRank is the skew experiment for PageRank.
func Fig7PageRank(sc Scale) []Row {
	cc := sc.PaperCluster()
	skew := pageRankSpec(sc, 1024, 20, true)
	flat := pageRankSpec(sc, 1024, 20, false)
	return []Row{
		row("fig7-pagerank", "matryoshka/skewed", 1024, skew.Run(tasks.Matryoshka, cc)),
		row("fig7-pagerank", "matryoshka/uniform", 1024, flat.Run(tasks.Matryoshka, cc)),
		row("fig7-pagerank", "inner-parallel/skewed", 1024, skew.Run(tasks.InnerParallel, cc)),
		row("fig7-pagerank", "outer-parallel/skewed", 1024, skew.Run(tasks.OuterParallel, cc)),
	}
}

// Fig8a ablates the InnerBag-InnerScalar join algorithm on PageRank with
// 160 GB of edges: optimizer vs forced broadcast vs forced repartition
// (Sec. 9.6). Forcing a strategy also bypasses the partition-count
// optimization of Sec. 8.1, as a system without runtime size information
// would.
func Fig8a(sc Scale) []Row {
	cc := sc.LargeCluster() // 160 GB of working state needs the Sec. 9.7 machines
	var rows []Row
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"optimizer", core.Options{}},
		{"broadcast", core.Options{ForceScalarJoin: core.ForceJoin(engine.JoinBroadcastLeft)}},
		{"repartition", core.Options{ForceScalarJoin: core.ForceJoin(engine.JoinRepartition)}},
	}
	for _, groups := range []int{16, 256, 4096, 16384} {
		spec := pageRankSpec(sc, groups, 160, false)
		spec.MaxIters = 5
		for _, v := range variants {
			rows = append(rows, row("fig8a", v.name, float64(groups), spec.RunMatryoshka(cc, v.opt)))
		}
	}
	return rows
}

// Fig8b ablates the half-lifted mapWithClosure broadcast side on K-means
// (Sec. 9.6): optimizer vs always broadcasting the means InnerScalar vs
// always broadcasting the points bag.
func Fig8b(sc Scale) []Row {
	cc := sc.PaperCluster()
	var rows []Row
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"optimizer", core.Options{}},
		{"bcast-scalar", core.Options{ForceHalfLifted: core.ForceHalf(core.BroadcastScalar)}},
		{"bcast-primary", core.Options{ForceHalfLifted: core.ForceHalf(core.BroadcastPrimary)}},
	}
	for _, configs := range []int{4, 64, 1024, 8192} {
		spec := kmeansSpec(sc, configs)
		spec.TotalPoints = sc.Records(40)
		for _, v := range variants {
			rows = append(rows, row("fig8b", v.name, float64(configs), spec.RunMatryoshka(cc, v.opt)))
		}
	}
	return rows
}

// fig9 runs a weak-scaling sweep on the large cluster with 8x input.
func fig9(exp string, xs []int, cc cluster.Config, run func(x int, s tasks.Strategy) tasks.Outcome) []Row {
	var rows []Row
	for _, x := range xs {
		for _, s := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel} {
			rows = append(rows, row(exp, string(s), float64(x), run(x, s)))
		}
	}
	return rows
}

// Fig9PageRank is the 8x-input PageRank weak scaling on the Sec. 9.7
// cluster (160 GB of edges, 36 machines).
func Fig9PageRank(sc Scale) []Row {
	cc := sc.LargeCluster()
	return fig9("fig9-pagerank", []int{32, 128, 512}, cc, func(x int, s tasks.Strategy) tasks.Outcome {
		spec := pageRankSpec(sc, x, 160, false)
		spec.MaxIters = 5
		return spec.Run(s, cc)
	})
}

// Fig9Bounce is the 8x-input Bounce Rate weak scaling (384 GB of visits).
func Fig9Bounce(sc Scale) []Row {
	cc := sc.LargeCluster()
	return fig9("fig9-bounce", []int{32, 128, 512}, cc, func(x int, s tasks.Strategy) tasks.Outcome {
		return bounceSpec(sc, x, 384, false).Run(s, cc)
	})
}

// memPressureSpec is the distilled Sec. 9 memory-pressure workload behind
// the sec9-recovery experiment and `matbench -explain recovery`: an
// oversized broadcast build side (~4 GB resident under this scale) and an
// under-partitioned group stage, sized so 2 GB machines abort without
// adaptive recovery and complete with it.
func memPressureSpec(sc Scale) tasks.MemPressureSpec {
	return tasks.MemPressureSpec{
		BuildRecords: sc.Records(0.4),
		ProbeKeys:    64,
		GroupRecords: sc.Records(0.6),
		Groups:       512,
		IngestParts:  16,
		GroupParts:   4,
	}
}

// Sec9Recovery reruns the Sec. 9 memory-pressure failure modes — the
// oversized broadcast (Sec. 9.6) and the outer-parallel whole-group task
// (Sec. 9.4) — with the adaptive recovery loop off (abort, the behaviour
// the paper reports) vs on, sweeping per-machine memory on a 2-machine
// demo cluster. The recover series completes at memory levels where the
// abort series dies, by demoting the broadcast join to a repartition join
// and re-lowering the group stage to more, smaller partitions; below the
// window both series die in ingest, which no re-lowering can split.
func Sec9Recovery(sc Scale) []Row {
	var rows []Row
	for _, memGB := range []float64{0.5, 1, 2, 4, 8} {
		cc := sc.Cluster(2, 2, memGB)
		for _, mode := range []struct {
			name string
			rec  bool
		}{{"abort", false}, {"recover", true}} {
			prev := tasks.Recovery
			tasks.Recovery = mode.rec
			out := memPressureSpec(sc).Run(cc)
			tasks.Recovery = prev
			rows = append(rows, row("sec9-recovery", mode.name, memGB, out))
		}
	}
	return rows
}

// shredSpec is the skewed nested-materialization workload behind the
// sec-shred experiment and `matbench -explain shred`: 0.15 GB of visits
// over 256 days, with the day distribution's Zipf exponent swept. On the
// deliberately tight 2x1 GB demo cluster, a mild-skew head day still fits
// one task (materialization wins — no spill I/O surcharge), while the
// head day of a high-skew draw cannot be materialized in one task — the
// scenario class the paper's own lowering cannot handle (ROADMAP) — and
// only the shredded lowering streams it through the spill group build.
func shredSpec(sc Scale, skew float64) tasks.ShredSpec {
	return tasks.ShredSpec{Visits: sc.Records(0.15), Days: 256, Skew: skew, Seed: 5}
}

// SecShred sweeps the Zipf exponent and compares the nested-bag
// lowerings: materialized without recovery (abort — what the paper's
// lowering does), materialized with the recovery loop (which demotes the
// group build to shredded after burning the failed attempt), shredded
// first-try with recovery OFF (it must not need it), and the optimizer's
// auto choice. Each run reports simulated clock and, as a second
// `peakMB/<mode>` series, the peak single-task resident claim from the
// run's private event recorder — the peak-bytes half of the crossover:
// on mild skew the materialized build is cheapest (no spill I/O
// surcharge), on high skew it aborts or pays the failed attempt while
// shredded completes first-try with a fraction of the resident peak.
func SecShred(sc Scale) []Row {
	var rows []Row
	for _, skew := range []float64{1.05, 1.2, 1.5, 2.0} {
		for _, mode := range []struct {
			name  string
			shred string
			rec   bool
		}{
			{"materialized/abort", "off", false},
			{"materialized/recover", "off", true},
			{"shredded", "on", false},
			{"auto", "auto", true},
		} {
			prevShred, prevRec, prevObs := tasks.Shred, tasks.Recovery, tasks.Obs
			rec := obs.NewRecorder()
			tasks.Shred, tasks.Recovery, tasks.Obs = mode.shred, mode.rec, rec
			out := shredSpec(sc, skew).Run(sc.Cluster(2, 2, 1))
			tasks.Shred, tasks.Recovery, tasks.Obs = prevShred, prevRec, prevObs
			rows = append(rows,
				row("sec-shred", mode.name, skew, out),
				Row{Exp: "sec-shred", Series: "peakMB/" + mode.name, X: skew,
					Seconds: float64(rec.PeakTaskMem()) / (1 << 20), Jobs: out.Jobs},
			)
		}
	}
	return rows
}

// chaosSpec is the shared machine-failure workload: several diamond jobs
// (two shuffle parents into a repartition join) whose fault plan crashes
// each machine `rate` times per 1000 simulated seconds on average
// (rate 0 = fault-free baseline). The seed comes from the scale, so
// `matbench -seed` varies which runs get hit and the default is
// bit-reproducible.
func chaosSpec(sc Scale, rate float64) tasks.ChaosSpec {
	sp := tasks.ChaosSpec{
		Records: sc.Records(1),
		Keys:    256,
		Parts:   6,
		Rounds:  4,
	}
	if rate > 0 {
		sp.Faults = cluster.FaultPlan{MTBF: 1000 / rate, Seed: sc.seed()}
	}
	return sp
}

// Sec9Chaos sweeps the machine crash rate and compares aborting on the
// first lost shuffle fetch (what a lineage-less runtime does) against
// the engine's lineage recovery, which rewinds to the lost stages,
// recomputes only those, and resumes. The recover series completes at
// every rate, paying for each crash with the recomputation it forces;
// the abort series survives only runs where no crash lands between a
// shuffle's materialisation and its consumption.
func Sec9Chaos(sc Scale) []Row {
	var rows []Row
	for _, rate := range []float64{0, 1, 2, 4, 8} {
		for _, mode := range []struct {
			name string
			rec  bool
		}{{"abort", false}, {"recover", true}} {
			prev := tasks.Recovery
			tasks.Recovery = mode.rec
			out := chaosSpec(sc, rate).Run(sc.Cluster(4, 4, 8))
			tasks.Recovery = prev
			rows = append(rows, row("sec9-chaos", mode.name, rate, out))
		}
	}
	return rows
}
