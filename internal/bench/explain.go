package bench

import (
	"fmt"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// ExplainTasks lists the task names ExplainRun accepts.
func ExplainTasks() []string {
	return []string{"bounce-rate", "pagerank", "k-means", "avg-distances", "recovery", "chaos", "shred"}
}

// ExplainRun runs one task's Matryoshka strategy at this scale with the
// event spine attached and renders what happened: the EXPLAIN ANALYZE
// report (per-job physical plans, per-stage measured costs, and the
// Sec. 8 optimizer decision log), or, when trace is set, the raw event
// stream. It is the engine behind matbench's -explain/-trace flags.
//
// The run is deliberately small (a few groups at the configured scale):
// the point is the plan and the decisions, not the figure-scale numbers.
func ExplainRun(task string, sc Scale, trace bool) (string, error) {
	rec, err := explainRecorder(task, sc)
	if err != nil {
		return "", err
	}
	if trace {
		return rec.Trace(), nil
	}
	return rec.Report(), nil
}

// BatchStatsRun runs one task like ExplainRun and renders the per-stage
// batch statistics instead: element shape, batch count, and encoded wire
// bytes of every stage boundary crossed. It is the engine behind
// matbench's -batchstats flag.
func BatchStatsRun(task string, sc Scale) (string, error) {
	rec, err := explainRecorder(task, sc)
	if err != nil {
		return "", err
	}
	return rec.BatchStats(), nil
}

// explainRecorder runs one task with the event spine attached and returns
// the populated recorder.
func explainRecorder(task string, sc Scale) (*obs.Recorder, error) {
	rec := obs.NewRecorder()
	prev := tasks.Obs
	tasks.Obs = rec
	defer func() { tasks.Obs = prev }()

	cc := sc.PaperCluster()
	var out tasks.Outcome
	switch task {
	case "bounce-rate":
		out = bounceSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc)
	case "pagerank":
		out = pageRankSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc)
	case "k-means":
		out = kmeansSpec(sc, 8).Run(tasks.Matryoshka, cc)
	case "avg-distances":
		out = avgDistSpec(8).Run(tasks.Matryoshka, cc)
	case "recovery":
		// The Sec. 9 memory-pressure scenario on deliberately tight
		// machines: the report shows the adaptive recovery loop demoting
		// the oversized broadcast join and re-raising the group stage's
		// partition count (stage N: OOM → re-lowered(...) → ok).
		out = memPressureSpec(sc).Run(sc.Cluster(2, 2, 2))
	case "chaos":
		// The fault-tolerance scenario under an aggressive crash hazard:
		// the report's fault-event stream shows machines crashing and
		// rejoining, and the recovery lines show lost shuffle fetches
		// being repaired by lineage recomputation
		// (fetch-failed(mN) → recomputed parents {...} → ok).
		sp := chaosSpec(sc, 4)
		if sc.MTBF > 0 {
			sp.Faults = cluster.FaultPlan{MTBF: sc.MTBF, Seed: sc.seed()}
		}
		out = sp.Run(sc.Cluster(4, 4, 8))
	case "shred":
		// The skewed nested-materialization scenario on the sec-shred
		// demo cluster: the decision log's rule=shred line shows the
		// optimizer reading the observed group sizes and picking the
		// shredded flat/dictionary lowering for the un-shred boundary.
		skew := sc.Skew
		if skew <= 1 {
			skew = 2.0
		}
		out = shredSpec(sc, skew).Run(sc.Cluster(2, 2, 1))
	default:
		return nil, fmt.Errorf("bench: unknown task %q (have %v)", task, ExplainTasks())
	}
	if out.Err != nil {
		return nil, out.Err
	}
	return rec, nil
}
