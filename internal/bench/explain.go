package bench

import (
	"fmt"

	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// ExplainTasks lists the task names ExplainRun accepts.
func ExplainTasks() []string {
	return []string{"bounce-rate", "pagerank", "k-means", "avg-distances", "recovery"}
}

// ExplainRun runs one task's Matryoshka strategy at this scale with the
// event spine attached and renders what happened: the EXPLAIN ANALYZE
// report (per-job physical plans, per-stage measured costs, and the
// Sec. 8 optimizer decision log), or, when trace is set, the raw event
// stream. It is the engine behind matbench's -explain/-trace flags.
//
// The run is deliberately small (a few groups at the configured scale):
// the point is the plan and the decisions, not the figure-scale numbers.
func ExplainRun(task string, sc Scale, trace bool) (string, error) {
	rec := obs.NewRecorder()
	prev := tasks.Obs
	tasks.Obs = rec
	defer func() { tasks.Obs = prev }()

	cc := sc.PaperCluster()
	var out tasks.Outcome
	switch task {
	case "bounce-rate":
		out = bounceSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc)
	case "pagerank":
		out = pageRankSpec(sc, 8, 2, false).Run(tasks.Matryoshka, cc)
	case "k-means":
		out = kmeansSpec(sc, 8).Run(tasks.Matryoshka, cc)
	case "avg-distances":
		out = avgDistSpec(8).Run(tasks.Matryoshka, cc)
	case "recovery":
		// The Sec. 9 memory-pressure scenario on deliberately tight
		// machines: the report shows the adaptive recovery loop demoting
		// the oversized broadcast join and re-raising the group stage's
		// partition count (stage N: OOM → re-lowered(...) → ok).
		out = memPressureSpec(sc).Run(sc.Cluster(2, 2, 2))
	default:
		return "", fmt.Errorf("bench: unknown task %q (have %v)", task, ExplainTasks())
	}
	if out.Err != nil {
		return "", out.Err
	}
	if trace {
		return rec.Trace(), nil
	}
	return rec.Report(), nil
}
