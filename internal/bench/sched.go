package bench

// The multi-tenant scheduling experiment (new section; the paper's
// Sec. 9 measures single-tenant runtimes, this measures what happens
// when several tenants share the simulated cluster). One batch tenant
// keeps the pool saturated with wide heavy stages while interactive
// tenants submit small frequent jobs; the sweep compares FIFO,
// weighted fair share, and fair share + speculative execution on the
// interactive tenants' latency distribution and the overall makespan.
//
// The claim under test: fair share moves interactive p99 from
// "behind the batch backlog" to "about the job's own runtime" without
// giving up makespan (the scheduler stays work-conserving), and
// speculation additionally clips the straggler tail that neither
// policy can queue around.

import (
	"fmt"
	"strings"

	"matryoshka/internal/cluster"
	"matryoshka/internal/sched"
)

// schedOutcome is one policy's measurement of the shared-pool workload.
type schedOutcome struct {
	P50, P99 float64 // interactive-job latency percentiles
	Makespan float64
	Metrics  sched.Metrics
}

// schedCluster is the pool the tenancy experiments share: 4 machines x
// 8 cores = 32 slots, paper-scale memory.
func schedCluster(sc Scale) cluster.Config { return sc.Cluster(4, 8, 22) }

// schedWorkload builds the tenant specs and job list: one "batch"
// tenant with a few wide two-stage jobs, and `interactive` light
// tenants with a stream of small jobs. Purely arithmetic — same input
// every run, so scheduler comparisons are exact.
func schedWorkload(interactive int) ([]sched.TenantSpec, []sched.JobSpec) {
	tenants := []sched.TenantSpec{{Name: "batch", Weight: 1}}
	var jobs []sched.JobSpec
	for b := 0; b < 4; b++ {
		stages := make([][]cluster.Task, 2)
		for st := range stages {
			tasks := make([]cluster.Task, 48)
			for k := range tasks {
				tasks[k] = cluster.Task{Compute: 1.2 + 0.15*float64((b+st+k)%5), Memory: 1 << 20}
			}
			stages[st] = tasks
		}
		jobs = append(jobs, sched.JobSpec{Tenant: "batch", Arrival: 0.4 * float64(b), Stages: stages})
	}
	for i := 0; i < interactive; i++ {
		name := fmt.Sprintf("int%d", i)
		tenants = append(tenants, sched.TenantSpec{Name: name, Weight: 1})
		for j := 0; j < 15; j++ {
			tasks := make([]cluster.Task, 6)
			for k := range tasks {
				tasks[k] = cluster.Task{Compute: 0.25 + 0.05*float64((i+j+k)%3), Memory: 1 << 20}
			}
			jobs = append(jobs, sched.JobSpec{
				Tenant:  name,
				Arrival: 0.8*float64(j) + 0.07*float64(i),
				Stages:  [][]cluster.Task{tasks},
			})
		}
	}
	return tenants, jobs
}

// runSched measures one (policy, speculation, straggler-rate) cell.
func runSched(sc Scale, interactive int, straggle float64, policy sched.Policy, speculate bool) (schedOutcome, error) {
	s, err := sched.New(sched.Config{
		Cluster:   schedCluster(sc),
		Policy:    policy,
		Speculate: speculate,
		Straggle:  cluster.Skew{Rate: straggle, Factor: 8, Seed: sc.seed()},
	})
	if err != nil {
		return schedOutcome{}, err
	}
	tenants, jobs := schedWorkload(interactive)
	res, err := s.RunWorkload(tenants, jobs)
	if err != nil {
		return schedOutcome{}, err
	}
	var lat []float64
	for _, j := range res.Jobs {
		if j.Err == nil && strings.HasPrefix(j.Tenant, "int") {
			lat = append(lat, j.Latency)
		}
	}
	return schedOutcome{
		P50:      sched.Percentile(lat, 0.50),
		P99:      sched.Percentile(lat, 0.99),
		Makespan: res.Makespan,
		Metrics:  res.Metrics,
	}, nil
}

// schedPolicies are the compared series, in presentation order.
var schedPolicies = []struct {
	Name      string
	Policy    sched.Policy
	Speculate bool
}{
	{"fifo", sched.PolicyFIFO, false},
	{"fair", sched.PolicyFair, false},
	{"fair+spec", sched.PolicyFair, true},
}

// schedRows renders one measured cell as the experiment's three rows
// (p50, p99, makespan columns for this policy series).
func schedRows(exp string, x float64, name string, o schedOutcome, err error) []Row {
	if err != nil {
		return []Row{{Exp: exp, Series: name + "/p99", X: x, Err: err.Error()}}
	}
	return []Row{
		{Exp: exp, Series: name + "/p50", X: x, Seconds: o.P50},
		{Exp: exp, Series: name + "/p99", X: x, Seconds: o.P99},
		{Exp: exp, Series: name + "/makespan", X: x, Seconds: o.Makespan},
	}
}

// SecSched sweeps the interactive tenant count at a fixed 25% straggler
// rate: FIFO vs fair share vs fair share + speculation.
func SecSched(sc Scale) []Row {
	var rows []Row
	for _, tenants := range []int{1, 3, 6} {
		for _, p := range schedPolicies {
			o, err := runSched(sc, tenants, 0.25, p.Policy, p.Speculate)
			rows = append(rows, schedRows("sec-sched", float64(tenants), p.Name, o, err)...)
		}
	}
	return rows
}

// SecSchedStraggle sweeps the straggler rate (percent of tasks
// stretched 8x) at 3 interactive tenants.
func SecSchedStraggle(sc Scale) []Row {
	var rows []Row
	for _, pct := range []int{0, 15, 30, 45} {
		for _, p := range schedPolicies {
			o, err := runSched(sc, 3, float64(pct)/100, p.Policy, p.Speculate)
			rows = append(rows, schedRows("sec-sched-straggle", float64(pct), p.Name, o, err)...)
		}
	}
	return rows
}

// SchedSummary runs a single scheduling configuration (the matbench
// -tenants/-policy/-speculate/-straggle quick path) and renders the
// latency distribution, makespan, and per-tenant accounting.
func SchedSummary(sc Scale, interactive int, straggle float64, policy sched.Policy, speculate bool) (string, error) {
	o, err := runSched(sc, interactive, straggle, policy, speculate)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	spec := ""
	if speculate {
		spec = " +speculation"
	}
	fmt.Fprintf(&b, "scheduler: policy=%s%s  interactive tenants=%d  straggler rate=%.0f%%\n",
		policy, spec, interactive, straggle*100)
	fmt.Fprintf(&b, "interactive latency: p50=%.2fs p99=%.2fs   makespan=%.2fs\n", o.P50, o.P99, o.Makespan)
	m := o.Metrics
	var busy float64
	for _, tm := range m.Tenants {
		busy += tm.BusySec
	}
	fmt.Fprintf(&b, "pool: core-seconds busy=%.1f  queue-wait=%.1f  admit-rejected=%d  pref-violations=%d\n",
		busy, m.QueueWaitSec, m.AdmitRejected, m.PrefViolations)
	if m.SpecLaunched > 0 {
		fmt.Fprintf(&b, "speculation: launched=%d won=%d wasted=%.1f core-sec\n",
			m.SpecLaunched, m.SpecWon, m.SpecWastedSec)
	}
	for _, tm := range m.Tenants {
		fmt.Fprintf(&b, "  tenant %-8s jobs=%-3d core-sec=%-8.1f queue-wait=%-8.1f p99=%.2fs\n",
			tm.Name, tm.Jobs, tm.CoreSec, tm.QueueWait, sched.Percentile(tm.Latencies, 0.99))
	}
	return b.String(), nil
}
