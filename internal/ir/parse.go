package ir

import "fmt"

// Kind is the nesting kind the parsing phase assigns to every variable and
// expression — the information that decides which nesting primitive
// represents it after rewriting (Sec. 4.1.1).
type Kind int

const (
	// KScalar is a driver-side scalar outside any lifted UDF.
	KScalar Kind = iota
	// KBag is a flat bag (a plain engine dataset).
	KBag
	// KNested is a nested bag outside a UDF -> NestedBag primitive.
	KNested
	// KInnerScalar is a scalar inside a lifted UDF -> InnerScalar.
	KInnerScalar
	// KInnerBag is a bag inside a lifted UDF -> InnerBag.
	KInnerBag
)

func (k Kind) String() string {
	switch k {
	case KScalar:
		return "Scalar"
	case KBag:
		return "Bag"
	case KNested:
		return "NestedBag"
	case KInnerScalar:
		return "InnerScalar"
	case KInnerBag:
		return "InnerBag"
	}
	return "?"
}

// FnInfo is the parsing phase's annotation of one UDF.
type FnInfo struct {
	// Lifted reports whether the UDF contains bag operations and must be
	// lifted (its map becomes mapWithLiftedUDF, Sec. 4.2).
	Lifted bool
	// ParamKinds are the kinds of the parameters inside the (possibly
	// lifted) UDF.
	ParamKinds []Kind
	// VarKinds are the kinds of the let-bound variables in the body.
	VarKinds map[string]Kind
	// Closures lists free variables the body references from the
	// enclosing scope, with their outer kinds (Sec. 5: these must be
	// made explicit so the lowering phase can lift them).
	Closures map[string]Kind
	// ReturnKind is the kind of the UDF's result inside the UDF.
	ReturnKind Kind
}

// Parsed is the output of the parsing phase: the original program plus the
// primitive-level annotations — a logical plan in the paper's sense, with
// concrete operator implementations still open (Sec. 3).
type Parsed struct {
	Prog *Program
	// TopKinds maps each top-level variable to its kind.
	TopKinds map[string]Kind
	// Fns maps each *Fn in the program to its annotations.
	Fns map[*Fn]*FnInfo
	// ResultKind is the kind of the program result.
	ResultKind Kind
}

// Parse runs the parsing phase (Sec. 4.1.1) over a nested program: it
// infers nesting kinds, decides which UDFs to lift, records closures, and
// validates the structural restrictions of Sec. 7 (bags may not appear in
// aggregation UDFs or inside other data structures; nesting at most two
// levels through this front end — deeper programs use internal/core
// directly).
func Parse(p *Program) (*Parsed, error) {
	p = desugar(p) // the preparation step of Sec. 4.6
	ps := &Parsed{
		Prog:     p,
		TopKinds: map[string]Kind{},
		Fns:      map[*Fn]*FnInfo{},
	}
	for _, l := range p.Lets {
		k, err := ps.inferTop(l.E)
		if err != nil {
			return nil, fmt.Errorf("ir: let %s: %w", l.Name, err)
		}
		if _, dup := ps.TopKinds[l.Name]; dup {
			return nil, fmt.Errorf("ir: duplicate binding %s", l.Name)
		}
		ps.TopKinds[l.Name] = k
	}
	rk, ok := ps.TopKinds[p.Result]
	if !ok {
		return nil, fmt.Errorf("ir: result %s is not bound", p.Result)
	}
	ps.ResultKind = rk
	return ps, nil
}

// inferTop assigns a kind to a top-level expression.
func (ps *Parsed) inferTop(e Expr) (Kind, error) {
	switch x := e.(type) {
	case Ref:
		k, ok := ps.TopKinds[x.Name]
		if !ok {
			return 0, fmt.Errorf("unbound variable %s", x.Name)
		}
		return k, nil
	case Const:
		return KScalar, nil
	case Source:
		return KBag, nil
	case GroupByKey:
		in, err := ps.inferTop(x.In)
		if err != nil {
			return 0, err
		}
		if in != KBag {
			return 0, fmt.Errorf("groupByKey needs a flat bag, got %v", in)
		}
		// The nested output becomes a NestedBag primitive (Sec. 4.5).
		return KNested, nil
	case Map:
		in, err := ps.inferTop(x.In)
		if err != nil {
			return 0, err
		}
		if (x.F == nil) == (x.UDF == nil) {
			return 0, fmt.Errorf("map needs exactly one of F or UDF")
		}
		if x.F != nil {
			if in != KBag {
				return 0, fmt.Errorf("plain map needs a flat bag, got %v", in)
			}
			return KBag, nil
		}
		return ps.parseUDFMap(in, x.UDF)
	case Filter:
		return ps.sameBag(x.In, "filter")
	case FlatMap:
		return ps.sameBag(x.In, "flatMap")
	case Distinct:
		return ps.sameBag(x.In, "distinct")
	case Union:
		a, err := ps.inferTop(x.A)
		if err != nil {
			return 0, err
		}
		b, err := ps.inferTop(x.B)
		if err != nil {
			return 0, err
		}
		if a != KBag || b != KBag {
			return 0, fmt.Errorf("union needs flat bags, got %v and %v", a, b)
		}
		return KBag, nil
	case ReduceByKey:
		return ps.sameBag(x.In, "reduceByKey")
	case Count:
		if _, err := ps.sameBag(x.In, "count"); err != nil {
			return 0, err
		}
		return KScalar, nil
	case Reduce:
		if _, err := ps.sameBag(x.In, "reduce"); err != nil {
			return 0, err
		}
		return KScalar, nil
	case UnOp:
		in, err := ps.inferTop(x.A)
		if err != nil {
			return 0, err
		}
		if in != KScalar {
			return 0, fmt.Errorf("scalar op over %v", in)
		}
		return KScalar, nil
	case BinOp:
		for _, sub := range []Expr{x.A, x.B} {
			in, err := ps.inferTop(sub)
			if err != nil {
				return 0, err
			}
			if in != KScalar {
				return 0, fmt.Errorf("scalar op over %v", in)
			}
		}
		return KScalar, nil
	}
	return 0, fmt.Errorf("unsupported top-level expression %T", e)
}

func (ps *Parsed) sameBag(in Expr, op string) (Kind, error) {
	k, err := ps.inferTop(in)
	if err != nil {
		return 0, err
	}
	if k != KBag {
		return 0, fmt.Errorf("%s over %v is not supported at top level", op, k)
	}
	return KBag, nil
}

// parseUDFMap analyses a map whose UDF is a program: it decides whether
// the UDF must be lifted and annotates its body.
func (ps *Parsed) parseUDFMap(in Kind, fn *Fn) (Kind, error) {
	info := &FnInfo{
		VarKinds: map[string]Kind{},
		Closures: map[string]Kind{},
	}
	switch in {
	case KNested:
		if len(fn.Params) != 2 {
			return 0, fmt.Errorf("map over a nested bag takes (outer, group) parameters, got %d", len(fn.Params))
		}
		// Inside the lifted UDF the outer component is an InnerScalar
		// and the group an InnerBag (Listing 2 line 5).
		info.Lifted = true
		info.ParamKinds = []Kind{KInnerScalar, KInnerBag}
	case KBag:
		if len(fn.Params) != 1 {
			return 0, fmt.Errorf("map over a flat bag takes 1 parameter, got %d", len(fn.Params))
		}
		// Lifted iff the body contains bag operations (hyperparameter
		// pattern, Sec. 2.3): the element becomes an InnerScalar.
		info.Lifted = bodyHasBagOps(fn.Body, ps.TopKinds)
		if info.Lifted {
			info.ParamKinds = []Kind{KInnerScalar}
		} else {
			return 0, fmt.Errorf("map UDF without bag operations: use an opaque F instead")
		}
	default:
		return 0, fmt.Errorf("map over %v", in)
	}

	env := map[string]Kind{}
	for i, p := range fn.Params {
		env[p] = info.ParamKinds[i]
	}
	retKind, err := ps.parseBody(fn.Body, env, info)
	if err != nil {
		return 0, err
	}
	info.ReturnKind = retKind
	ps.Fns[fn] = info

	// The lifted UDF's InnerScalar result reads back as a flat bag of
	// per-invocation values at the top level.
	switch retKind {
	case KInnerScalar, KInnerBag:
		return KBag, nil
	default:
		return 0, fmt.Errorf("lifted UDF must return an inner value, got %v", retKind)
	}
}

// parseBody annotates the statements of a lifted UDF.
func (ps *Parsed) parseBody(body []Stmt, env map[string]Kind, info *FnInfo) (Kind, error) {
	var retKind Kind
	haveReturn := false
	for _, st := range body {
		switch s := st.(type) {
		case LetS:
			k, err := ps.inferInner(s.E, env, info)
			if err != nil {
				return 0, fmt.Errorf("let %s: %w", s.Name, err)
			}
			env[s.Name] = k
			info.VarKinds[s.Name] = k
		case While:
			if err := ps.parseLoop(s.Vars, s.Body, s.Cond, env, info); err != nil {
				return 0, fmt.Errorf("while: %w", err)
			}
		case If:
			if err := ps.parseLoop(s.Vars, append(append([]LetS{}, s.Then...), s.Else...), s.Cond, env, info); err != nil {
				return 0, fmt.Errorf("if: %w", err)
			}
		case Return:
			k, err := ps.inferInner(s.E, env, info)
			if err != nil {
				return 0, fmt.Errorf("return: %w", err)
			}
			retKind, haveReturn = k, true
		default:
			return 0, fmt.Errorf("unsupported statement %T", st)
		}
	}
	if !haveReturn {
		return 0, fmt.Errorf("UDF has no return")
	}
	return retKind, nil
}

// parseLoop validates a control-flow construct: loop variables must exist,
// the body may only rebind them (and temporaries), and the condition must
// be an inner boolean scalar.
func (ps *Parsed) parseLoop(vars []string, body []LetS, cond Expr, env map[string]Kind, info *FnInfo) error {
	for _, v := range vars {
		if _, ok := env[v]; !ok {
			return fmt.Errorf("loop variable %s is not bound before the loop", v)
		}
	}
	// Loop body sees the current loop variables; temporaries are scoped
	// to the body.
	inner := map[string]Kind{}
	for k, v := range env {
		inner[k] = v
	}
	for _, s := range body {
		k, err := ps.inferInner(s.E, inner, info)
		if err != nil {
			return fmt.Errorf("let %s: %w", s.Name, err)
		}
		inner[s.Name] = k
		info.VarKinds[s.Name] = k
	}
	for _, v := range vars {
		if env[v] != inner[v] {
			return fmt.Errorf("loop variable %s changes kind from %v to %v", v, env[v], inner[v])
		}
	}
	ck, err := ps.inferInner(cond, inner, info)
	if err != nil {
		return fmt.Errorf("condition: %w", err)
	}
	if ck != KInnerScalar {
		return fmt.Errorf("condition must be an inner scalar, got %v", ck)
	}
	return nil
}

// inferInner assigns kinds inside a lifted UDF, recording closures for
// free variables (Sec. 5).
func (ps *Parsed) inferInner(e Expr, env map[string]Kind, info *FnInfo) (Kind, error) {
	switch x := e.(type) {
	case Ref:
		if k, ok := env[x.Name]; ok {
			return k, nil
		}
		// Free variable: a closure over the enclosing (driver) scope.
		if k, ok := ps.TopKinds[x.Name]; ok {
			info.Closures[x.Name] = k
			switch k {
			case KScalar:
				return KInnerScalar, nil // lifted by replication (Sec. 5.2)
			case KBag:
				return KInnerBag, nil // lifted bag closure (Sec. 5.2)
			default:
				return 0, fmt.Errorf("closure over %v is not supported", k)
			}
		}
		return 0, fmt.Errorf("unbound variable %s", x.Name)
	case Const:
		return KInnerScalar, nil // constants replicate per invocation
	case Map:
		if x.UDF != nil {
			return 0, fmt.Errorf("nested lifted UDFs are not supported by the IR front end (use internal/core for >2 levels)")
		}
		return ps.innerBagIn(x.In, env, info, "map")
	case Filter:
		return ps.innerBagIn(x.In, env, info, "filter")
	case FlatMap:
		return ps.innerBagIn(x.In, env, info, "flatMap")
	case Distinct:
		return ps.innerBagIn(x.In, env, info, "distinct")
	case ReduceByKey:
		return ps.innerBagIn(x.In, env, info, "reduceByKey")
	case Union:
		if _, err := ps.innerBagIn(x.A, env, info, "union"); err != nil {
			return 0, err
		}
		return ps.innerBagIn(x.B, env, info, "union")
	case Count:
		if _, err := ps.innerBagIn(x.In, env, info, "count"); err != nil {
			return 0, err
		}
		return KInnerScalar, nil
	case Reduce:
		if _, err := ps.innerBagIn(x.In, env, info, "reduce"); err != nil {
			return 0, err
		}
		return KInnerScalar, nil
	case UnOp:
		k, err := ps.inferInner(x.A, env, info)
		if err != nil {
			return 0, err
		}
		if k != KInnerScalar {
			return 0, fmt.Errorf("unary scalar op over %v", k)
		}
		return KInnerScalar, nil
	case BinOp:
		for _, sub := range []Expr{x.A, x.B} {
			k, err := ps.inferInner(sub, env, info)
			if err != nil {
				return 0, err
			}
			if k != KInnerScalar {
				return 0, fmt.Errorf("binary scalar op over %v", k)
			}
		}
		return KInnerScalar, nil
	case GroupByKey:
		return 0, fmt.Errorf("groupByKey inside a lifted UDF needs a third nesting level; use internal/core directly")
	case Source:
		return 0, fmt.Errorf("sources must be bound at top level")
	}
	return 0, fmt.Errorf("unsupported inner expression %T", e)
}

func (ps *Parsed) innerBagIn(in Expr, env map[string]Kind, info *FnInfo, op string) (Kind, error) {
	k, err := ps.inferInner(in, env, info)
	if err != nil {
		return 0, err
	}
	if k != KInnerBag {
		return 0, fmt.Errorf("%s over %v inside a lifted UDF", op, k)
	}
	return KInnerBag, nil
}

// bodyHasBagOps reports whether a UDF body contains bag operations —
// the criterion for lifting (Sec. 4.2). References to outer bags count.
func bodyHasBagOps(body []Stmt, top map[string]Kind) bool {
	var exprHas func(e Expr) bool
	exprHas = func(e Expr) bool {
		switch x := e.(type) {
		case Map, Filter, FlatMap, Distinct, ReduceByKey, Union, Count, Reduce, GroupByKey:
			return true
		case Ref:
			return top[x.Name] == KBag || top[x.Name] == KNested
		case UnOp:
			return exprHas(x.A)
		case BinOp:
			return exprHas(x.A) || exprHas(x.B)
		}
		return false
	}
	var stmtHas func(st Stmt) bool
	stmtHas = func(st Stmt) bool {
		switch s := st.(type) {
		case LetS:
			return exprHas(s.E)
		case Return:
			return exprHas(s.E)
		case While:
			for _, l := range s.Body {
				if exprHas(l.E) {
					return true
				}
			}
			return exprHas(s.Cond)
		case If:
			for _, l := range append(append([]LetS{}, s.Then...), s.Else...) {
				if exprHas(l.E) {
					return true
				}
			}
			return exprHas(s.Cond)
		}
		return false
	}
	for _, st := range body {
		if stmtHas(st) {
			return true
		}
	}
	return false
}
