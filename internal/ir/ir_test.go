package ir

import (
	"math"
	"sort"
	"strings"
	"testing"

	"matryoshka/internal/core"
	"matryoshka/internal/engine"
)

func testSession() *engine.Session {
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 2
	cfg.DefaultParallelism = 6
	s, err := engine.NewSession(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// bounceRateProgram is the paper's Listing 1, written in the IR: group the
// visits by day, and inside the map UDF compute counts per IP, the number
// of bounces, the number of distinct visitors, and their ratio.
func bounceRateProgram() *Program {
	udf := &Fn{
		Params: []string{"day", "group"},
		Body: []Stmt{
			// val countsPerIP = group.map((_, 1)).reduceByKey(_+_)
			LetS{"countsPerIP", ReduceByKey{
				In: Map{In: Ref{"group"}, F: func(ip any) any { return engine.KV[any, any](ip, int64(1)) }},
				F:  func(a, b any) any { return a.(int64) + b.(int64) },
			}},
			// val numBounces = countsPerIP.filter(_._2 == 1).count()
			LetS{"numBounces", Count{In: Filter{
				In:   Ref{"countsPerIP"},
				Pred: func(e any) bool { return e.(engine.Pair[any, any]).Val.(int64) == 1 },
			}}},
			// val numTotalVisitors = group.distinct().count()
			LetS{"numTotal", Count{In: Distinct{In: Ref{"group"}}}},
			// val bounceRate = numBounces / numTotalVisitors
			LetS{"rate", BinOp{A: Ref{"numBounces"}, B: Ref{"numTotal"},
				F: func(a, b any) any { return float64(a.(int64)) / float64(b.(int64)) }}},
			// return (day, bounceRate)
			Return{E: BinOp{A: Ref{"day"}, B: Ref{"rate"},
				F: func(d, r any) any { return engine.KV[any, any](d, r) }}},
		},
	}
	return &Program{
		Lets: []Let{
			{"visits", Source{"visits"}},
			{"visitsPerDay", GroupByKey{In: Ref{"visits"}}},
			{"rates", Map{In: Ref{"visitsPerDay"}, UDF: udf}},
		},
		Result: "rates",
	}
}

func visitsData() ([]any, map[int64]float64) {
	type visit struct {
		day, ip int64
	}
	raw := []visit{
		{1, 10}, {1, 10}, {1, 11}, {1, 12}, // day 1: ips 10(x2),11,12 -> 2/3 bounce
		{2, 20}, {2, 20}, {2, 20}, // day 2: ip 20 only -> 0 bounce
		{3, 30}, {3, 31}, // day 3: both bounce -> 1.0
	}
	data := make([]any, len(raw))
	for i, v := range raw {
		data[i] = engine.KV[any, any](v.day, v.ip)
	}
	want := map[int64]float64{1: 2.0 / 3, 2: 0, 3: 1}
	return data, want
}

func TestParsePhaseAnnotatesBounceRate(t *testing.T) {
	p := bounceRateProgram()
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TopKinds["visits"] != KBag {
		t.Errorf("visits kind = %v", ps.TopKinds["visits"])
	}
	if ps.TopKinds["visitsPerDay"] != KNested {
		t.Errorf("visitsPerDay kind = %v, want NestedBag (Listing 2 line 2)", ps.TopKinds["visitsPerDay"])
	}
	if ps.TopKinds["rates"] != KBag {
		t.Errorf("rates kind = %v", ps.TopKinds["rates"])
	}
	udf := p.Lets[2].E.(Map).UDF
	info := ps.Fns[udf]
	if info == nil || !info.Lifted {
		t.Fatal("the bounce-rate UDF must be lifted (it contains bag operations)")
	}
	// Listing 2 line 5: (day: InnerScalar, group: InnerBag).
	if info.ParamKinds[0] != KInnerScalar || info.ParamKinds[1] != KInnerBag {
		t.Errorf("param kinds = %v", info.ParamKinds)
	}
	if info.VarKinds["countsPerIP"] != KInnerBag {
		t.Errorf("countsPerIP kind = %v, want InnerBag", info.VarKinds["countsPerIP"])
	}
	if info.VarKinds["numBounces"] != KInnerScalar || info.VarKinds["numTotal"] != KInnerScalar {
		t.Errorf("count kinds = %v / %v, want InnerScalar (Listing 2 lines 7-8)",
			info.VarKinds["numBounces"], info.VarKinds["numTotal"])
	}
	if info.ReturnKind != KInnerScalar {
		t.Errorf("return kind = %v", info.ReturnKind)
	}
	if len(info.Closures) != 0 {
		t.Errorf("unexpected closures: %v", info.Closures)
	}
}

func TestLowerBounceRateEndToEnd(t *testing.T) {
	p := bounceRateProgram()
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	data, want := visitsData()
	sess := testSession()
	res, err := Lower(ps, sess, map[string][]any{"visits": data}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.([]any)
	if len(rows) != 3 {
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	for _, r := range rows {
		kv := r.(engine.Pair[any, any])
		day := kv.Key.(int64)
		rate := kv.Val.(float64)
		if math.Abs(rate-want[day]) > 1e-12 {
			t.Errorf("day %d: rate %v, want %v", day, rate, want[day])
		}
	}
	// The whole nested program must lower to a constant handful of jobs.
	if jobs := sess.Stats().Jobs; jobs > 6 {
		t.Errorf("lowered program launched %d jobs, want a small constant", jobs)
	}
}

// TestLowerLoopProgram runs a nested program with a while loop inside the
// lifted UDF: per group, repeatedly halve the sum until it drops below a
// threshold, counting iterations (different groups iterate differently).
func TestLowerLoopProgram(t *testing.T) {
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"sum", Reduce{In: Ref{"group"},
				F: func(a, b any) any { return a.(int64) + b.(int64) }}},
			LetS{"iters", Const{int64(0)}},
			While{
				Vars: []string{"sum", "iters"},
				Body: []LetS{
					{"sum", UnOp{A: Ref{"sum"}, F: func(v any) any { return v.(int64) / 2 }}},
					{"iters", UnOp{A: Ref{"iters"}, F: func(v any) any { return v.(int64) + 1 }}},
				},
				Cond: UnOp{A: Ref{"sum"}, F: func(v any) any { return v.(int64) >= 10 }},
			},
			Return{E: BinOp{A: Ref{"key"}, B: Ref{"iters"},
				F: func(k, it any) any { return engine.KV[any, any](k, it) }}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"data", Source{"data"}},
			{"groups", GroupByKey{In: Ref{"data"}}},
			{"res", Map{In: Ref{"groups"}, UDF: udf}},
		},
		Result: "res",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	info := ps.Fns[udf]
	if !info.Lifted || info.VarKinds["iters"] != KInnerScalar {
		t.Fatalf("loop program annotations wrong: %+v", info)
	}

	// Groups: a=100 (halve 4x: 50,25,12,6), b=10 (1x: 5), c=4 (1x do-while).
	var data []any
	for _, kv := range []struct {
		k string
		v int64
	}{{"a", 60}, {"a", 40}, {"b", 10}, {"c", 4}} {
		data = append(data, engine.KV[any, any](kv.k, kv.v))
	}
	sess := testSession()
	res, err := Lower(ps, sess, map[string][]any{"data": data}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range res.([]any) {
		kv := r.(engine.Pair[any, any])
		got[kv.Key.(string)] = kv.Val.(int64)
	}
	want := map[string]int64{"a": 4, "b": 1, "c": 1}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("group %s: iters = %d, want %d", k, got[k], w)
		}
	}
}

// TestLowerIfProgram exercises a lifted if statement: groups with even
// sums double, odd sums negate.
func TestLowerIfProgram(t *testing.T) {
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"sum", Reduce{In: Ref{"group"}, F: func(a, b any) any { return a.(int64) + b.(int64) }}},
			If{
				Vars: []string{"sum"},
				Cond: UnOp{A: Ref{"sum"}, F: func(v any) any { return v.(int64)%2 == 0 }},
				Then: []LetS{{"sum", UnOp{A: Ref{"sum"}, F: func(v any) any { return v.(int64) * 2 }}}},
				Else: []LetS{{"sum", UnOp{A: Ref{"sum"}, F: func(v any) any { return -v.(int64) }}}},
			},
			Return{E: BinOp{A: Ref{"key"}, B: Ref{"sum"},
				F: func(k, s any) any { return engine.KV[any, any](k, s) }}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"data", Source{"data"}},
			{"groups", GroupByKey{In: Ref{"data"}}},
			{"res", Map{In: Ref{"groups"}, UDF: udf}},
		},
		Result: "res",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	var data []any
	for _, kv := range []struct {
		k string
		v int64
	}{{"even", 4}, {"even", 6}, {"odd", 3}} {
		data = append(data, engine.KV[any, any](kv.k, kv.v))
	}
	res, err := Lower(ps, testSession(), map[string][]any{"data": data}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range res.([]any) {
		kv := r.(engine.Pair[any, any])
		got[kv.Key.(string)] = kv.Val.(int64)
	}
	if got["even"] != 20 || got["odd"] != -3 {
		t.Errorf("got %v, want even=20 odd=-3", got)
	}
}

// TestLowerScalarClosure checks the closure case of Sec. 5: the UDF
// references a driver-side scalar, which the parsing phase records and the
// lowering phase replicates per invocation.
func TestLowerScalarClosure(t *testing.T) {
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"n", Count{In: Ref{"group"}}},
			LetS{"scaled", BinOp{A: Ref{"n"}, B: Ref{"factor"},
				F: func(n, f any) any { return n.(int64) * f.(int64) }}},
			Return{E: BinOp{A: Ref{"key"}, B: Ref{"scaled"},
				F: func(k, s any) any { return engine.KV[any, any](k, s) }}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"factor", Const{int64(100)}},
			{"data", Source{"data"}},
			{"groups", GroupByKey{In: Ref{"data"}}},
			{"res", Map{In: Ref{"groups"}, UDF: udf}},
		},
		Result: "res",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Fns[udf].Closures["factor"] != KScalar {
		t.Fatalf("closures = %v, want factor:Scalar", ps.Fns[udf].Closures)
	}
	var data []any
	for _, kv := range []struct {
		k string
		v int64
	}{{"a", 1}, {"a", 2}, {"b", 9}} {
		data = append(data, engine.KV[any, any](kv.k, kv.v))
	}
	res, err := Lower(ps, testSession(), map[string][]any{"data": data}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range res.([]any) {
		kv := r.(engine.Pair[any, any])
		got[kv.Key.(string)] = kv.Val.(int64)
	}
	if got["a"] != 200 || got["b"] != 100 {
		t.Errorf("got %v", got)
	}
}

// TestLowerHyperparamShape checks the flat-bag lifted map (Sec. 2.3): a
// bag of parameters whose UDF references the shared data bag as a closure.
func TestLowerHyperparamShape(t *testing.T) {
	udf := &Fn{
		Params: []string{"param"},
		Body: []Stmt{
			// Count data elements below the parameter.
			LetS{"below", Count{In: Filter{In: Ref{"data"},
				Pred: func(e any) bool { return true }}}},
			Return{E: BinOp{A: Ref{"param"}, B: Ref{"below"},
				F: func(p, n any) any { return engine.KV[any, any](p, n) }}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"data", Source{"data"}},
			{"params", Source{"params"}},
			{"res", Map{In: Ref{"params"}, UDF: udf}},
		},
		Result: "res",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	info := ps.Fns[udf]
	if !info.Lifted {
		t.Fatal("hyperparameter UDF must be lifted (it references an outer bag)")
	}
	if info.Closures["data"] != KBag {
		t.Fatalf("closures = %v", info.Closures)
	}
	data := []any{int64(1), int64(2), int64(3)}
	params := []any{int64(10), int64(20)}
	res, err := Lower(ps, testSession(), map[string][]any{"data": data, "params": params}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.([]any)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		kv := r.(engine.Pair[any, any])
		if kv.Val.(int64) != 3 {
			t.Errorf("param %v counted %v, want 3", kv.Key, kv.Val)
		}
	}
}

// --- parsing-phase error cases ---

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"unbound result", &Program{Result: "nope"}},
		{"duplicate binding", &Program{
			Lets:   []Let{{"x", Const{1}}, {"x", Const{2}}},
			Result: "x",
		}},
		{"groupByKey of scalar", &Program{
			Lets:   []Let{{"x", Const{1}}, {"g", GroupByKey{In: Ref{"x"}}}},
			Result: "g",
		}},
		{"map both F and UDF", &Program{
			Lets: []Let{
				{"d", Source{"d"}},
				{"m", Map{In: Ref{"d"}, F: func(a any) any { return a }, UDF: &Fn{}}},
			},
			Result: "m",
		}},
		{"plain-map UDF without bag ops", &Program{
			Lets: []Let{
				{"d", Source{"d"}},
				{"m", Map{In: Ref{"d"}, UDF: &Fn{Params: []string{"x"},
					Body: []Stmt{Return{E: Ref{"x"}}}}}},
			},
			Result: "m",
		}},
		{"nested map wrong arity", &Program{
			Lets: []Let{
				{"d", Source{"d"}},
				{"g", GroupByKey{In: Ref{"d"}}},
				{"m", Map{In: Ref{"g"}, UDF: &Fn{Params: []string{"only"},
					Body: []Stmt{Return{E: Ref{"only"}}}}}},
			},
			Result: "m",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.prog); err == nil {
				t.Error("expected a parse error")
			}
		})
	}
}

func TestLowerMissingSource(t *testing.T) {
	p := &Program{Lets: []Let{{"d", Source{"d"}}}, Result: "d"}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(ps, testSession(), nil, core.Options{}); err == nil {
		t.Error("expected missing-source error")
	}
}

// TestFlatOpsLowering covers the non-lifted top-level operators.
func TestFlatOpsLowering(t *testing.T) {
	p := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"doubled", Map{In: Ref{"d"}, F: func(v any) any { return v.(int) * 2 }}},
			{"kept", Filter{In: Ref{"doubled"}, Pred: func(v any) bool { return v.(int) > 2 }}},
			{"expanded", FlatMap{In: Ref{"kept"}, F: func(v any) []any { return []any{v, v} }}},
			{"uniq", Distinct{In: Ref{"expanded"}}},
			{"n", Count{In: Ref{"uniq"}}},
		},
		Result: "n",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.ResultKind != KScalar {
		t.Fatalf("result kind = %v", ps.ResultKind)
	}
	res, err := Lower(ps, testSession(), map[string][]any{"d": {1, 2, 3}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// doubled: 2,4,6; kept: 4,6; expanded: 4,4,6,6; uniq: 4,6 -> 2.
	if res.(int64) != 2 {
		t.Errorf("res = %v, want 2", res)
	}
}

// sortAny is a test helper keeping results deterministic.
func sortAny(vs []any, less func(a, b any) bool) {
	sort.Slice(vs, func(i, j int) bool { return less(vs[i], vs[j]) })
}

// TestRenderListing2 checks that the parsing phase's rendering of the
// bounce-rate program matches the structure of the paper's Listing 2: the
// groupByKeyIntoNestedBag, the mapWithLiftedUDF with InnerScalar/InnerBag
// parameters, and binaryScalarOp for the division.
func TestRenderListing2(t *testing.T) {
	ps, err := Parse(bounceRateProgram())
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Render()
	for _, want := range []string{
		"visitsPerDay: NestedBag = visits.groupByKeyIntoNestedBag()",
		"mapWithLiftedUDF { (day: InnerScalar, group: InnerBag) =>",
		"val countsPerIP: InnerBag = group.map(f).reduceByKey(f)",
		"val numBounces: InnerScalar",
		"binaryScalarOp(numBounces, numTotal)(f)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, out)
		}
	}
}

// TestRenderClosureAnnotation checks closures appear in the rendering.
func TestRenderClosureAnnotation(t *testing.T) {
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"n", Count{In: Ref{"group"}}},
			LetS{"s", BinOp{A: Ref{"n"}, B: Ref{"factor"},
				F: func(a, b any) any { return a.(int64) * b.(int64) }}},
			Return{E: Ref{"s"}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"factor", Const{int64(3)}},
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf}},
		},
		Result: "r",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Render()
	if !strings.Contains(out, "closures: factor: Scalar") {
		t.Errorf("closure annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "factor/*closure:Scalar*/") {
		t.Errorf("inline closure marker missing:\n%s", out)
	}
}

// TestLowerNestedEmptySource lowers the bounce-rate program over an empty
// source: zero groups, zero rows, no errors.
func TestLowerNestedEmptySource(t *testing.T) {
	ps, err := Parse(bounceRateProgram())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(ps, testSession(), map[string][]any{"visits": {}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.([]any); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestLowerSingleGroup exercises the degenerate one-group case.
func TestLowerSingleGroup(t *testing.T) {
	ps, err := Parse(bounceRateProgram())
	if err != nil {
		t.Fatal(err)
	}
	data := []any{
		engine.KV[any, any](int64(9), int64(1)),
		engine.KV[any, any](int64(9), int64(1)),
		engine.KV[any, any](int64(9), int64(2)),
	}
	res, err := Lower(ps, testSession(), map[string][]any{"visits": data}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	kv := rows[0].(engine.Pair[any, any])
	if kv.Val.(float64) != 0.5 {
		t.Fatalf("rate = %v, want 0.5", kv.Val)
	}
}

// TestLowerErrorPaths covers lowering-time failures surfaced to callers.
func TestLowerErrorPaths(t *testing.T) {
	// A nested result cannot be returned from a program.
	p := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
		},
		Result: "g",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(ps, testSession(), map[string][]any{"d": {}}, core.Options{}); err == nil {
		t.Error("returning a NestedBag should fail at lowering")
	}
}

func TestParseRejectsControlFlowErrors(t *testing.T) {
	// Loop over an unbound variable.
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			While{Vars: []string{"nope"}, Body: nil, Cond: Const{true}},
			Return{E: Count{In: Ref{"group"}}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf}},
		},
		Result: "r",
	}
	if _, err := Parse(p); err == nil {
		t.Error("loop over unbound variable must be a parse error")
	}

	// Loop condition of bag kind.
	udf2 := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"b", Filter{In: Ref{"group"}, Pred: func(any) bool { return true }}},
			While{Vars: []string{"b"}, Body: []LetS{{"b", Ref{"b"}}}, Cond: Ref{"b"}},
			Return{E: Count{In: Ref{"b"}}},
		},
	}
	p2 := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf2}},
		},
		Result: "r",
	}
	if _, err := Parse(p2); err == nil {
		t.Error("bag-kinded loop condition must be a parse error")
	}

	// Kind change across loop iterations.
	udf3 := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"x", Count{In: Ref{"group"}}},
			While{Vars: []string{"x"},
				Body: []LetS{{"x", Distinct{In: Ref{"group"}}}},
				Cond: UnOp{A: Ref{"x"}, F: func(v any) any { return false }}},
			Return{E: Ref{"x"}},
		},
	}
	p3 := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf3}},
		},
		Result: "r",
	}
	if _, err := Parse(p3); err == nil {
		t.Error("kind-changing loop variable must be a parse error")
	}
}

func TestParseRejectsDeeperNestingInIR(t *testing.T) {
	inner := &Fn{Params: []string{"x"}, Body: []Stmt{Return{E: Ref{"x"}}}}
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			Return{E: Count{In: Map{In: Ref{"group"}, UDF: inner}}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf}},
		},
		Result: "r",
	}
	if _, err := Parse(p); err == nil {
		t.Error("nested lifted UDFs inside the IR front end must be rejected with guidance")
	}
}

// TestMoreFlatOps covers the remaining top-level operators.
func TestMoreFlatOps(t *testing.T) {
	p := &Program{
		Lets: []Let{
			{"a", Source{"a"}},
			{"b", Source{"b"}},
			{"u", Union{A: Ref{"a"}, B: Ref{"b"}}},
			{"pairs", Map{In: Ref{"u"}, F: func(v any) any {
				return engine.KV[any, any](v.(int)%2, v)
			}}},
			{"red", ReduceByKey{In: Ref{"pairs"}, F: func(x, y any) any {
				return x.(int) + y.(int)
			}}},
			{"total", Reduce{In: Map{In: Ref{"red"}, F: func(e any) any {
				return e.(engine.Pair[any, any]).Val
			}}, F: func(x, y any) any { return x.(int) + y.(int) }}},
			{"scaled", UnOp{A: Ref{"total"}, F: func(v any) any { return v.(int) * 10 }}},
			{"offset", Const{5}},
			{"final", BinOp{A: Ref{"scaled"}, B: Ref{"offset"},
				F: func(a, b any) any { return a.(int) + b.(int) }}},
		},
		Result: "final",
	}
	ps, err := Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(ps, testSession(), map[string][]any{
		"a": {1, 2, 3},
		"b": {4, 5},
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// sum(1..5) = 15; *10 = 150; +5 = 155.
	if res.(int) != 155 {
		t.Fatalf("res = %v, want 155", res)
	}
}

// TestKindStrings pins the Kind printer used in diagnostics.
func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KScalar: "Scalar", KBag: "Bag", KNested: "NestedBag",
		KInnerScalar: "InnerScalar", KInnerBag: "InnerBag",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind should print ?")
	}
}

// TestLoopBodyLoweringErrorSurfaces converts loop-body lowering panics
// back into errors for the caller.
func TestLoopBodyLoweringErrorSurfaces(t *testing.T) {
	udf := &Fn{
		Params: []string{"key", "group"},
		Body: []Stmt{
			LetS{"x", Count{In: Ref{"group"}}},
			While{
				Vars: []string{"x"},
				Body: []LetS{{"x", UnOp{A: Ref{"missing"},
					F: func(v any) any { return v }}}},
				Cond: UnOp{A: Ref{"x"}, F: func(v any) any { return false }},
			},
			Return{E: Ref{"x"}},
		},
	}
	p := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupByKey{In: Ref{"d"}}},
			{"r", Map{In: Ref{"g"}, UDF: udf}},
		},
		Result: "r",
	}
	// The parse phase catches the unbound ref first; bypass it by
	// removing annotations check: Parse should reject this program.
	if _, err := Parse(p); err == nil {
		t.Fatal("unbound loop-body ref should fail parsing")
	}
}
