// Package ir is Matryoshka's nested-program front end: the analogue of the
// Emma embedding of Fig. 2. Go has no macros, so the user's nested-parallel
// program (the paper's Listing 1) is represented explicitly as an abstract
// syntax tree; the *parsing phase* (Parse, parse.go) rewrites it into an
// explicitly nested-parallel program over the nesting primitives (Listing
// 2): it infers the nesting kind of every variable, decides which UDFs must
// be lifted, extracts closures, and leaves control flow as higher-order
// constructs. The *lowering phase* (Lower, lower.go) then executes the
// rewritten program, resolving each primitive operation to flat engine
// operators through internal/core.
//
// Leaf functions (element-level arithmetic, predicates, key extractors)
// are ordinary Go funcs over `any` values — the paper's macros likewise
// treat scalar UDF bodies as opaque. Keyed data uses engine.Pair[any, any].
package ir

// Program is a top-level driver program: a sequence of let bindings and
// the name of the variable holding the result.
type Program struct {
	Lets   []Let
	Result string
}

// Let binds the value of an expression to a name.
type Let struct {
	Name string
	E    Expr
}

// Expr is a program expression. The concrete types below cover the
// standard bag operations of Sec. 4, scalar operations, and references.
type Expr interface{ isExpr() }

// Ref references a let-bound variable or UDF parameter.
type Ref struct{ Name string }

// Const is a literal driver-side scalar.
type Const struct{ V any }

// Source names an input bag bound at lowering time (readFile in the
// paper's listings).
type Source struct{ Name string }

// Map applies a UDF to every element. Exactly one of F (an opaque
// element-level function) or UDF (a nested program, possibly containing
// bag operations — the case the parsing phase lifts) must be set.
type Map struct {
	In  Expr
	F   func(any) any
	UDF *Fn
}

// Filter keeps elements satisfying Pred.
type Filter struct {
	In   Expr
	Pred func(any) bool
}

// FlatMap applies F and concatenates the results.
type FlatMap struct {
	In Expr
	F  func(any) []any
}

// GroupByKey groups a bag of engine.Pair[any, any] by key. Its result is a
// *nested* bag — the operation current dataflow engines cannot express
// (Sec. 2.1) and the parsing phase turns into groupByKeyIntoNestedBag.
type GroupByKey struct{ In Expr }

// ReduceByKey merges the values of each key with F.
type ReduceByKey struct {
	In Expr
	F  func(any, any) any
}

// Distinct removes duplicate elements.
type Distinct struct{ In Expr }

// Count yields the number of elements (a scalar).
type Count struct{ In Expr }

// Reduce folds all elements with F (a scalar; undefined on empty bags).
type Reduce struct {
	In Expr
	F  func(any, any) any
}

// Union concatenates two bags.
type Union struct{ A, B Expr }

// UnOp applies an opaque unary scalar function.
type UnOp struct {
	A Expr
	F func(any) any
}

// BinOp applies an opaque binary scalar function.
type BinOp struct {
	A, B Expr
	F    func(any, any) any
}

func (Ref) isExpr()         {}
func (Const) isExpr()       {}
func (Source) isExpr()      {}
func (Map) isExpr()         {}
func (Filter) isExpr()      {}
func (FlatMap) isExpr()     {}
func (GroupByKey) isExpr()  {}
func (ReduceByKey) isExpr() {}
func (Distinct) isExpr()    {}
func (Count) isExpr()       {}
func (Reduce) isExpr()      {}
func (Union) isExpr()       {}
func (UnOp) isExpr()        {}
func (BinOp) isExpr()       {}

// Fn is a UDF with named parameters and a statement body. A map over a
// nested bag receives two parameters (the outer component and the inner
// bag, cf. Listing 1 line 5); a map over a flat bag receives one.
type Fn struct {
	Params []string
	Body   []Stmt
}

// Stmt is a UDF body statement.
type Stmt interface{ isStmt() }

// LetS binds an expression inside a UDF.
type LetS struct {
	Name string
	E    Expr
}

// While is an imperative do-while loop inside a UDF (Sec. 6): Vars are the
// loop variables (already bound), Body recomputes them each iteration, and
// Cond (over the recomputed variables) decides whether to continue. The
// parsing phase keeps it as a higher-order construct; the lowering phase
// lifts it (Listing 4).
type While struct {
	Vars []string
	Body []LetS
	Cond Expr
}

// If is a conditional inside a UDF: both branches bind the same Vars, and
// the condition selects per invocation which binding takes effect.
type If struct {
	Vars []string
	Cond Expr
	Then []LetS
	Else []LetS
}

// Return ends the UDF with a value.
type Return struct{ E Expr }

func (LetS) isStmt()   {}
func (While) isStmt()  {}
func (If) isStmt()     {}
func (Return) isStmt() {}
