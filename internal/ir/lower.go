package ir

import (
	"fmt"

	"matryoshka/internal/core"
	"matryoshka/internal/engine"
)

// value is a lowered runtime value: exactly one representation is set,
// according to the kind the parsing phase assigned.
type value struct {
	kind Kind
	sc   any
	bag  engine.Dataset[any]
	isc  core.InnerScalar[any]
	ibg  core.InnerBag[any]
	nbO  core.InnerScalar[any] // nested bag, outer components
	nbI  core.InnerBag[any]    // nested bag, inner elements
}

// Lower runs the lowering phase (Sec. 4.1.2): it executes the parsed
// program on the engine session, resolving every nesting-primitive
// operation to flat physical operators through internal/core, with the
// runtime optimizations of Sec. 8 applied along the way. Sources maps
// Source names to their driver-side data. The result is []any for a bag
// result or a single any for a scalar result.
func Lower(ps *Parsed, sess *engine.Session, sources map[string][]any, opt core.Options) (any, error) {
	lw := &lowerer{ps: ps, sess: sess, sources: sources, opt: opt, env: map[string]value{}}
	for _, l := range ps.Prog.Lets {
		v, err := lw.evalTop(l.E)
		if err != nil {
			return nil, fmt.Errorf("ir: let %s: %w", l.Name, err)
		}
		lw.env[l.Name] = v
	}
	res := lw.env[ps.Prog.Result]
	switch res.kind {
	case KBag:
		return engine.Collect(res.bag)
	case KScalar:
		return res.sc, nil
	default:
		return nil, fmt.Errorf("ir: cannot return a %v result", res.kind)
	}
}

type lowerer struct {
	ps      *Parsed
	sess    *engine.Session
	sources map[string][]any
	opt     core.Options
	env     map[string]value
}

func (lw *lowerer) evalTop(e Expr) (value, error) {
	switch x := e.(type) {
	case Ref:
		return lw.env[x.Name], nil
	case Const:
		return value{kind: KScalar, sc: x.V}, nil
	case Source:
		data, ok := lw.sources[x.Name]
		if !ok {
			return value{}, fmt.Errorf("source %q not provided", x.Name)
		}
		return value{kind: KBag, bag: engine.Parallelize(lw.sess, data, 0)}, nil
	case GroupByKey:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		pairs := engine.Map(in.bag, func(e any) engine.Pair[any, any] { return e.(engine.Pair[any, any]) })
		nb, err := core.GroupByKeyIntoNestedBag(pairs, lw.opt)
		if err != nil {
			return value{}, err
		}
		return value{kind: KNested, nbO: nb.Outer, nbI: nb.Inner}, nil
	case Map:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		if x.F != nil {
			return value{kind: KBag, bag: engine.Map(in.bag, x.F)}, nil
		}
		return lw.lowerLiftedMap(in, x.UDF)
	case Filter:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		return value{kind: KBag, bag: engine.Filter(in.bag, x.Pred)}, nil
	case FlatMap:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		return value{kind: KBag, bag: engine.FlatMap(in.bag, x.F)}, nil
	case Distinct:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		return value{kind: KBag, bag: engine.Distinct(in.bag)}, nil
	case Union:
		a, err := lw.evalTop(x.A)
		if err != nil {
			return value{}, err
		}
		b, err := lw.evalTop(x.B)
		if err != nil {
			return value{}, err
		}
		return value{kind: KBag, bag: engine.Union(a.bag, b.bag)}, nil
	case ReduceByKey:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		pairs := engine.Map(in.bag, func(e any) engine.Pair[any, any] { return e.(engine.Pair[any, any]) })
		red := engine.ReduceByKey(pairs, x.F)
		return value{kind: KBag, bag: engine.Map(red, func(p engine.Pair[any, any]) any { return any(p) })}, nil
	case Count:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		n, err := engine.Count(in.bag)
		return value{kind: KScalar, sc: n}, err
	case Reduce:
		in, err := lw.evalTop(x.In)
		if err != nil {
			return value{}, err
		}
		r, err := engine.Reduce(in.bag, x.F)
		return value{kind: KScalar, sc: r}, err
	case UnOp:
		a, err := lw.evalTop(x.A)
		if err != nil {
			return value{}, err
		}
		return value{kind: KScalar, sc: x.F(a.sc)}, nil
	case BinOp:
		a, err := lw.evalTop(x.A)
		if err != nil {
			return value{}, err
		}
		b, err := lw.evalTop(x.B)
		if err != nil {
			return value{}, err
		}
		return value{kind: KScalar, sc: x.F(a.sc, b.sc)}, nil
	}
	return value{}, fmt.Errorf("unsupported top-level expression %T", e)
}

// lowerLiftedMap is mapWithLiftedUDF: the UDF runs exactly once, over the
// lifted representations of all invocations (Sec. 4.2).
func (lw *lowerer) lowerLiftedMap(in value, fn *Fn) (value, error) {
	info := lw.ps.Fns[fn]
	if info == nil || !info.Lifted {
		return value{}, fmt.Errorf("map UDF was not marked lifted by the parsing phase")
	}
	runBody := func(ctx *core.Ctx, params []value) (value, error) {
		env := map[string]value{}
		for i, p := range fn.Params {
			env[p] = params[i]
		}
		return lw.evalBody(ctx, fn.Body, env)
	}
	finishInner := func(res value, err error) (value, error) {
		if err != nil {
			return value{}, err
		}
		switch res.kind {
		case KInnerScalar:
			return value{kind: KBag, bag: engine.Values(res.isc.Repr())}, nil
		case KInnerBag:
			return value{kind: KBag, bag: core.FlattenBag(res.ibg)}, nil
		}
		return value{}, fmt.Errorf("lifted UDF returned %v", res.kind)
	}
	switch in.kind {
	case KNested:
		ctx := in.nbI.Ctx()
		res, err := runBody(ctx, []value{
			{kind: KInnerScalar, isc: in.nbO},
			{kind: KInnerBag, ibg: in.nbI},
		})
		return finishInner(res, err)
	case KBag:
		res, err := core.LiftFlat(in.bag, lw.opt, func(ctx *core.Ctx, elems core.InnerScalar[any]) (value, error) {
			return runBody(ctx, []value{{kind: KInnerScalar, isc: elems}})
		})
		return finishInner(res, err)
	}
	return value{}, fmt.Errorf("lifted map over %v", in.kind)
}

// evalBody executes the statements of a lifted UDF during lowering.
func (lw *lowerer) evalBody(ctx *core.Ctx, body []Stmt, env map[string]value) (value, error) {
	for _, st := range body {
		switch s := st.(type) {
		case LetS:
			v, err := lw.evalInner(ctx, s.E, env)
			if err != nil {
				return value{}, fmt.Errorf("let %s: %w", s.Name, err)
			}
			env[s.Name] = v
		case While:
			if err := lw.lowerWhile(ctx, s, env); err != nil {
				return value{}, fmt.Errorf("while: %w", err)
			}
		case If:
			if err := lw.lowerIf(ctx, s, env); err != nil {
				return value{}, fmt.Errorf("if: %w", err)
			}
		case Return:
			return lw.evalInner(ctx, s.E, env)
		}
	}
	return value{}, fmt.Errorf("UDF ended without return")
}

// evalInner lowers one expression inside a lifted UDF to core operations.
func (lw *lowerer) evalInner(ctx *core.Ctx, e Expr, env map[string]value) (value, error) {
	switch x := e.(type) {
	case Ref:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		// Closure over the driver scope (Sec. 5.2).
		outer, ok := lw.env[x.Name]
		if !ok {
			return value{}, fmt.Errorf("unbound variable %s", x.Name)
		}
		switch outer.kind {
		case KScalar:
			return value{kind: KInnerScalar, isc: core.LiftScalarClosure(ctx, outer.sc)}, nil
		case KBag:
			return value{kind: KInnerBag, ibg: core.LiftBagClosure(ctx, outer.bag)}, nil
		}
		return value{}, fmt.Errorf("closure over %v", outer.kind)
	case Const:
		return value{kind: KInnerScalar, isc: core.Pure(ctx, x.V)}, nil
	case Map:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerBag, ibg: core.MapBag(in, x.F)}, nil
	case Filter:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerBag, ibg: core.FilterBag(in, x.Pred)}, nil
	case FlatMap:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerBag, ibg: core.FlatMapBag(in, x.F)}, nil
	case Distinct:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerBag, ibg: core.DistinctBag(in)}, nil
	case Union:
		a, err := lw.innerBag(ctx, x.A, env)
		if err != nil {
			return value{}, err
		}
		b, err := lw.innerBag(ctx, x.B, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerBag, ibg: core.UnionBags(a, b)}, nil
	case ReduceByKey:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		keyed := core.MapBag(in, func(e any) engine.Pair[any, any] { return e.(engine.Pair[any, any]) })
		red := core.ReduceByKeyBag(keyed, x.F)
		return value{kind: KInnerBag, ibg: core.MapBag(red, func(p engine.Pair[any, any]) any { return any(p) })}, nil
	case Count:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		cnt := core.CountBag(in)
		return value{kind: KInnerScalar, isc: core.UnaryScalarOp(cnt, func(n int64) any { return n })}, nil
	case Reduce:
		in, err := lw.innerBag(ctx, x.In, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerScalar, isc: core.ReduceBag(in, x.F)}, nil
	case UnOp:
		a, err := lw.innerScalar(ctx, x.A, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerScalar, isc: core.UnaryScalarOp(a, x.F)}, nil
	case BinOp:
		a, err := lw.innerScalar(ctx, x.A, env)
		if err != nil {
			return value{}, err
		}
		b, err := lw.innerScalar(ctx, x.B, env)
		if err != nil {
			return value{}, err
		}
		return value{kind: KInnerScalar, isc: core.BinaryScalarOp(a, b, x.F)}, nil
	}
	return value{}, fmt.Errorf("unsupported inner expression %T", e)
}

func (lw *lowerer) innerBag(ctx *core.Ctx, e Expr, env map[string]value) (core.InnerBag[any], error) {
	v, err := lw.evalInner(ctx, e, env)
	if err != nil {
		return core.InnerBag[any]{}, err
	}
	if v.kind != KInnerBag {
		return core.InnerBag[any]{}, fmt.Errorf("expected an inner bag, got %v", v.kind)
	}
	return v.ibg, nil
}

func (lw *lowerer) innerScalar(ctx *core.Ctx, e Expr, env map[string]value) (core.InnerScalar[any], error) {
	v, err := lw.evalInner(ctx, e, env)
	if err != nil {
		return core.InnerScalar[any]{}, err
	}
	if v.kind != KInnerScalar {
		return core.InnerScalar[any]{}, fmt.Errorf("expected an inner scalar, got %v", v.kind)
	}
	return v.isc, nil
}

// dynState is the loop state of a lowered control-flow construct: the
// current values of the named loop variables.
type dynState struct {
	kinds []Kind
	vals  []value
}

// dynOps builds StateOps for a dynState shape from the per-kind instances.
func dynOps(kinds []Kind) core.StateOps[dynState] {
	so := core.ScalarState[any]()
	bo := core.BagState[any]()
	apply := func(s dynState, f func(i int, v value) value) dynState {
		out := dynState{kinds: s.kinds, vals: make([]value, len(s.vals))}
		for i, v := range s.vals {
			out.vals[i] = f(i, v)
		}
		return out
	}
	return core.StateOps[dynState]{
		Empty: func(ctx *core.Ctx) dynState {
			s := dynState{kinds: kinds, vals: make([]value, len(kinds))}
			for i, k := range kinds {
				if k == KInnerScalar {
					s.vals[i] = value{kind: k, isc: so.Empty(ctx)}
				} else {
					s.vals[i] = value{kind: k, ibg: bo.Empty(ctx)}
				}
			}
			return s
		},
		Filter: func(s dynState, keep engine.Dataset[core.Tag], sub *core.Ctx) dynState {
			return apply(s, func(i int, v value) value {
				if v.kind == KInnerScalar {
					return value{kind: v.kind, isc: so.Filter(v.isc, keep, sub)}
				}
				return value{kind: v.kind, ibg: bo.Filter(v.ibg, keep, sub)}
			})
		},
		Union: func(a, b dynState) dynState {
			out := dynState{kinds: a.kinds, vals: make([]value, len(a.vals))}
			for i := range a.vals {
				if a.vals[i].kind == KInnerScalar {
					out.vals[i] = value{kind: a.vals[i].kind, isc: so.Union(a.vals[i].isc, b.vals[i].isc)}
				} else {
					out.vals[i] = value{kind: a.vals[i].kind, ibg: bo.Union(a.vals[i].ibg, b.vals[i].ibg)}
				}
			}
			return out
		},
		Cache: func(s dynState) dynState {
			return apply(s, func(i int, v value) value {
				if v.kind == KInnerScalar {
					return value{kind: v.kind, isc: so.Cache(v.isc)}
				}
				return value{kind: v.kind, ibg: bo.Cache(v.ibg)}
			})
		},
	}
}

// loopState gathers the named loop variables from the environment.
func loopState(vars []string, env map[string]value) dynState {
	s := dynState{kinds: make([]Kind, len(vars)), vals: make([]value, len(vars))}
	for i, name := range vars {
		s.vals[i] = env[name]
		s.kinds[i] = env[name].kind
	}
	return s
}

// lowerWhile lifts a while loop (Sec. 6.2 / Listing 4) via core.While.
// Lowering errors inside the loop body flow out through the body closure's
// error return.
func (lw *lowerer) lowerWhile(ctx *core.Ctx, s While, env map[string]value) error {
	init := loopState(s.Vars, env)
	out, err := core.While(ctx, init, dynOps(init.kinds), func(c *core.Ctx, cur dynState) (dynState, core.InnerScalar[bool], error) {
		inner := cloneEnv(env)
		for i, name := range s.Vars {
			inner[name] = cur.vals[i]
		}
		for _, l := range s.Body {
			v, err := lw.evalInner(c, l.E, inner)
			if err != nil {
				return dynState{}, core.InnerScalar[bool]{}, fmt.Errorf("loop body let %s: %w", l.Name, err)
			}
			inner[l.Name] = v
		}
		condV, err := lw.innerScalar(c, s.Cond, inner)
		if err != nil {
			return dynState{}, core.InnerScalar[bool]{}, fmt.Errorf("loop condition: %w", err)
		}
		cond := core.UnaryScalarOp(condV, func(v any) bool { return v.(bool) })
		return loopState(s.Vars, inner), cond, nil
	})
	if err != nil {
		return err
	}
	for i, name := range s.Vars {
		env[name] = out.vals[i]
	}
	return nil
}

// lowerIf lifts an if statement (Sec. 6.2) via core.If. Branch-lowering
// errors flow out through the branch closures' error returns.
func (lw *lowerer) lowerIf(ctx *core.Ctx, s If, env map[string]value) error {
	condV, err := lw.innerScalar(ctx, s.Cond, env)
	if err != nil {
		return err
	}
	cond := core.UnaryScalarOp(condV, func(v any) bool { return v.(bool) })
	init := loopState(s.Vars, env)
	branch := func(body []LetS) func(*core.Ctx, dynState) (dynState, error) {
		return func(c *core.Ctx, cur dynState) (dynState, error) {
			inner := cloneEnv(env)
			for i, name := range s.Vars {
				inner[name] = cur.vals[i]
			}
			for _, l := range body {
				v, err := lw.evalInner(c, l.E, inner)
				if err != nil {
					return dynState{}, fmt.Errorf("branch let %s: %w", l.Name, err)
				}
				inner[l.Name] = v
			}
			return loopState(s.Vars, inner), nil
		}
	}
	out, err := core.If(ctx, cond, init, dynOps(init.kinds), branch(s.Then), branch(s.Else))
	if err != nil {
		return err
	}
	for i, name := range s.Vars {
		env[name] = out.vals[i]
	}
	return nil
}

func cloneEnv(env map[string]value) map[string]value {
	out := make(map[string]value, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}
