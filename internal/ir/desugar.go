package ir

import "matryoshka/internal/engine"

// This file is the preparation step of the parsing phase (Sec. 4.6,
// "Lifting non-Map UDFs"): operations whose UDFs could contain bag
// operations are split into a map (carrying the UDF) plus the UDF-less
// variant of the operation, so that only map UDFs ever need lifting.

// GroupBy groups a bag by a key-extraction UDF. The parsing phase desugars
// it to xs.map(x => (keyFunc(x), x)).groupByKey(), exactly the rewrite of
// Sec. 4.6.
type GroupBy struct {
	In   Expr
	KeyF func(any) any
}

func (GroupBy) isExpr() {}

// desugarExpr rewrites composite operations into their map+UDF-less form.
func desugarExpr(e Expr) Expr {
	switch x := e.(type) {
	case GroupBy:
		keyF := x.KeyF
		return GroupByKey{In: Map{
			In: desugarExpr(x.In),
			F: func(v any) any {
				return pairOf(keyF(v), v)
			},
		}}
	case Map:
		out := Map{In: desugarExpr(x.In), F: x.F}
		if x.UDF != nil {
			out.UDF = desugarFn(x.UDF)
		}
		return out
	case Filter:
		return Filter{In: desugarExpr(x.In), Pred: x.Pred}
	case FlatMap:
		return FlatMap{In: desugarExpr(x.In), F: x.F}
	case GroupByKey:
		return GroupByKey{In: desugarExpr(x.In)}
	case ReduceByKey:
		return ReduceByKey{In: desugarExpr(x.In), F: x.F}
	case Distinct:
		return Distinct{In: desugarExpr(x.In)}
	case Count:
		return Count{In: desugarExpr(x.In)}
	case Reduce:
		return Reduce{In: desugarExpr(x.In), F: x.F}
	case Union:
		return Union{A: desugarExpr(x.A), B: desugarExpr(x.B)}
	case UnOp:
		return UnOp{A: desugarExpr(x.A), F: x.F}
	case BinOp:
		return BinOp{A: desugarExpr(x.A), B: desugarExpr(x.B), F: x.F}
	default:
		return e
	}
}

// desugarFn rewrites a UDF body in place, preserving the *Fn identity that
// the Parsed annotations are keyed by.
func desugarFn(fn *Fn) *Fn {
	for i, st := range fn.Body {
		fn.Body[i] = desugarStmt(st)
	}
	return fn
}

func desugarStmt(st Stmt) Stmt {
	switch s := st.(type) {
	case LetS:
		return LetS{Name: s.Name, E: desugarExpr(s.E)}
	case Return:
		return Return{E: desugarExpr(s.E)}
	case While:
		return While{Vars: s.Vars, Body: desugarLets(s.Body), Cond: desugarExpr(s.Cond)}
	case If:
		return If{Vars: s.Vars, Cond: desugarExpr(s.Cond), Then: desugarLets(s.Then), Else: desugarLets(s.Else)}
	}
	return st
}

func desugarLets(ls []LetS) []LetS {
	out := make([]LetS, len(ls))
	for i, l := range ls {
		out[i] = LetS{Name: l.Name, E: desugarExpr(l.E)}
	}
	return out
}

// desugar rewrites a whole program.
func desugar(p *Program) *Program {
	out := &Program{Result: p.Result}
	for _, l := range p.Lets {
		out.Lets = append(out.Lets, Let{Name: l.Name, E: desugarExpr(l.E)})
	}
	return out
}

// pairOf builds the IR's keyed-pair representation.
func pairOf(k, v any) any {
	return engine.KV[any, any](k, v)
}
