package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"matryoshka/internal/core"
	"matryoshka/internal/engine"
)

// This file is an executable version of the paper's completeness and
// correctness arguments (Theorems 1 and 2) for the IR front end: randomly
// generated nested programs — groupBy followed by a lifted UDF built from
// a random sequence of bag and scalar operations, optionally ending with a
// random loop — must (a) always pass the parsing phase and (b) produce the
// same result when lowered to the flat engine as a driver-side reference
// evaluation of the nested semantics.

// refGroups evaluates the generated UDF sequentially per group.
type genOp struct {
	name  string
	apply func(g *genProgram)
}

// genProgram accumulates a random UDF body and, in parallel, a reference
// implementation over plain slices.
type genProgram struct {
	rng  *rand.Rand
	body []Stmt
	// curBag names the current bag variable; ref computes it per group.
	curBag string
	refBag func(group []int64) []int64
	nVars  int
}

func (g *genProgram) fresh(prefix string) string {
	g.nVars++
	return fmt.Sprintf("%s%d", prefix, g.nVars)
}

// ops is the pool of random bag transformations.
var ops = []genOp{
	{"mapAdd", func(g *genProgram) {
		k := int64(g.rng.Intn(7) + 1)
		name := g.fresh("m")
		g.body = append(g.body, LetS{name, Map{In: Ref{g.curBag},
			F: func(v any) any { return v.(int64) + k }}})
		prev := g.refBag
		g.refBag = func(group []int64) []int64 {
			in := prev(group)
			out := make([]int64, len(in))
			for i, v := range in {
				out[i] = v + k
			}
			return out
		}
		g.curBag = name
	}},
	{"filterMod", func(g *genProgram) {
		m := int64(g.rng.Intn(3) + 2)
		name := g.fresh("f")
		g.body = append(g.body, LetS{name, Filter{In: Ref{g.curBag},
			Pred: func(v any) bool { return v.(int64)%m != 0 }}})
		prev := g.refBag
		g.refBag = func(group []int64) []int64 {
			var out []int64
			for _, v := range prev(group) {
				if v%m != 0 {
					out = append(out, v)
				}
			}
			return out
		}
		g.curBag = name
	}},
	{"flatDup", func(g *genProgram) {
		name := g.fresh("d")
		g.body = append(g.body, LetS{name, FlatMap{In: Ref{g.curBag},
			F: func(v any) []any { return []any{v, v.(int64) * 2} }}})
		prev := g.refBag
		g.refBag = func(group []int64) []int64 {
			var out []int64
			for _, v := range prev(group) {
				out = append(out, v, v*2)
			}
			return out
		}
		g.curBag = name
	}},
	{"distinct", func(g *genProgram) {
		name := g.fresh("u")
		g.body = append(g.body, LetS{name, Distinct{In: Ref{g.curBag}}})
		prev := g.refBag
		g.refBag = func(group []int64) []int64 {
			seen := map[int64]bool{}
			var out []int64
			for _, v := range prev(group) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			return out
		}
		g.curBag = name
	}},
	{"union", func(g *genProgram) {
		name := g.fresh("un")
		g.body = append(g.body, LetS{name, Union{A: Ref{g.curBag}, B: Ref{g.curBag}}})
		prev := g.refBag
		g.refBag = func(group []int64) []int64 {
			in := prev(group)
			return append(append([]int64{}, in...), in...)
		}
		g.curBag = name
	}},
}

// generate builds a random program and a per-group reference function.
func generate(seed int64) (*Program, func(group []int64) int64, bool) {
	rng := rand.New(rand.NewSource(seed))
	g := &genProgram{rng: rng, curBag: "group", refBag: func(group []int64) []int64 { return group }}
	nOps := rng.Intn(4) + 1
	for i := 0; i < nOps; i++ {
		ops[rng.Intn(len(ops))].apply(g)
	}
	// Terminal aggregation: count of the transformed bag (well-defined
	// even when the transformations empty a group, Sec. 4.4).
	withLoop := rng.Intn(2) == 0
	g.body = append(g.body, LetS{"agg", Count{In: Ref{g.curBag}}})
	refAgg := func(group []int64) int64 { return int64(len(g.refBag(group))) }

	finalRef := refAgg
	if withLoop {
		// Loop: halve agg until < 3, counting iterations; return agg*100+iters.
		g.body = append(g.body, LetS{"iters", Const{int64(0)}})
		g.body = append(g.body, While{
			Vars: []string{"agg", "iters"},
			Body: []LetS{
				{"agg", UnOp{A: Ref{"agg"}, F: func(v any) any { return v.(int64) / 2 }}},
				{"iters", UnOp{A: Ref{"iters"}, F: func(v any) any { return v.(int64) + 1 }}},
			},
			Cond: UnOp{A: Ref{"agg"}, F: func(v any) any { return v.(int64) >= 3 }},
		})
		g.body = append(g.body, Return{E: BinOp{A: Ref{"agg"}, B: Ref{"iters"},
			F: func(a, b any) any { return a.(int64)*100 + b.(int64) }}})
		finalRef = func(group []int64) int64 {
			agg := refAgg(group)
			var iters int64
			for {
				agg /= 2
				iters++
				if agg < 3 {
					break
				}
			}
			return agg*100 + iters
		}
	} else {
		g.body = append(g.body, Return{E: Ref{"agg"}})
	}

	udf := &Fn{Params: []string{"key", "group"}, Body: g.body}
	prog := &Program{
		Lets: []Let{
			{"data", Source{"data"}},
			{"groups", GroupBy{In: Ref{"data"}, KeyF: func(v any) any { return v.(int64) % 5 }}},
			{"res", Map{In: Ref{"groups"}, UDF: udf}},
		},
		Result: "res",
	}
	// Wrap the return so the group key travels with the result.
	last := udf.Body[len(udf.Body)-1].(Return)
	udf.Body[len(udf.Body)-1] = Return{E: BinOp{A: Ref{"key"}, B: last.E,
		F: func(k, v any) any { return engine.KV[any, any](k, v) }}}
	return prog, finalRef, withLoop
}

func TestRandomNestedProgramsMatchReference(t *testing.T) {
	sess := testSession()
	for seed := int64(0); seed < 40; seed++ {
		prog, ref, withLoop := generate(seed)
		ps, err := Parse(prog)
		if err != nil {
			t.Fatalf("seed %d: parsing phase rejected a valid nested program: %v", seed, err)
		}
		// Random input, grouped by v%5 (the GroupBy key UDF).
		rng := rand.New(rand.NewSource(seed + 1000))
		var raw []int64
		for i := 0; i < 60; i++ {
			raw = append(raw, int64(rng.Intn(40)))
		}
		data := make([]any, len(raw))
		for i, v := range raw {
			data[i] = v
		}
		res, err := Lower(ps, sess, map[string][]any{"data": data}, core.Options{})
		if err != nil {
			t.Fatalf("seed %d (loop=%v): lowering failed: %v", seed, withLoop, err)
		}
		got := map[int64]int64{}
		for _, r := range res.([]any) {
			kv := r.(engine.Pair[any, any])
			got[kv.Key.(int64)] = kv.Val.(int64)
		}
		// Reference: group sequentially, run the reference per group.
		groups := map[int64][]int64{}
		for _, v := range raw {
			groups[v%5] = append(groups[v%5], v)
		}
		if len(got) != len(groups) {
			t.Fatalf("seed %d: %d groups, want %d", seed, len(got), len(groups))
		}
		var keys []int64
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			want := ref(groups[k])
			if got[k] != want {
				t.Errorf("seed %d (loop=%v) group %d: got %d, want %d", seed, withLoop, k, got[k], want)
			}
		}
	}
}

// TestRandomNestedProgramsShredLoweringsAgree lowers every randomized
// nested program twice — group materialization forced materialized and
// forced shredded — and requires the collected results to be DeepEqual,
// element order included: the shred rule must be a pure physical choice
// invisible to any program the parsing phase accepts.
func TestRandomNestedProgramsShredLoweringsAgree(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog, _, withLoop := generate(seed)
		ps, err := Parse(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed + 1000))
		var data []any
		for i := 0; i < 60; i++ {
			data = append(data, int64(rng.Intn(40)))
		}
		var results []any
		for _, choice := range []core.ShredChoice{core.ShredMaterialized, core.ShredShredded} {
			// Fresh session per lowering: node ids and caches must not leak
			// between the two plans.
			res, err := Lower(ps, testSession(), map[string][]any{"data": data},
				core.Options{ForceShred: core.ForceShredChoice(choice)})
			if err != nil {
				t.Fatalf("seed %d (loop=%v) %v: lowering failed: %v", seed, withLoop, choice, err)
			}
			results = append(results, res)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("seed %d (loop=%v): materialized and shredded lowerings diverged\nmaterialized: %v\nshredded:     %v",
				seed, withLoop, results[0], results[1])
		}
	}
}

func TestGroupByDesugarsToMapGroupByKey(t *testing.T) {
	prog := &Program{
		Lets: []Let{
			{"d", Source{"d"}},
			{"g", GroupBy{In: Ref{"d"}, KeyF: func(v any) any { return v.(int64) % 2 }}},
		},
		Result: "g",
	}
	ps, err := Parse(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TopKinds["g"] != KNested {
		t.Fatalf("g kind = %v, want NestedBag", ps.TopKinds["g"])
	}
	// The desugared program must contain groupByKey(map(...)), per Sec. 4.6.
	gbk, ok := ps.Prog.Lets[1].E.(GroupByKey)
	if !ok {
		t.Fatalf("desugared expr is %T, want GroupByKey", ps.Prog.Lets[1].E)
	}
	if _, ok := gbk.In.(Map); !ok {
		t.Fatalf("groupByKey input is %T, want Map", gbk.In)
	}
}
