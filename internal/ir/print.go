package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Render pretty-prints the parsing phase's output: the program with every
// binding annotated by its nesting primitive, lifted maps marked as
// mapWithLiftedUDF, groupBys as groupByKeyIntoNestedBag, and closures made
// explicit — a textual form of the paper's Listing 1 → Listing 2 rewrite.
func (ps *Parsed) Render() string {
	var b strings.Builder
	for _, l := range ps.Prog.Lets {
		fmt.Fprintf(&b, "val %s: %s = %s\n", l.Name, ps.TopKinds[l.Name], ps.renderTop(l.E, &b))
	}
	fmt.Fprintf(&b, "return %s\n", ps.Prog.Result)
	return b.String()
}

// renderTop returns the one-line form of a top-level expression, emitting
// lifted UDF bodies inline through b when needed.
func (ps *Parsed) renderTop(e Expr, b *strings.Builder) string {
	switch x := e.(type) {
	case Ref:
		return x.Name
	case Const:
		return fmt.Sprintf("%v", x.V)
	case Source:
		return fmt.Sprintf("read(%q)", x.Name)
	case GroupByKey:
		return fmt.Sprintf("%s.groupByKeyIntoNestedBag()", ps.renderTop(x.In, b))
	case Map:
		if x.UDF == nil {
			return fmt.Sprintf("%s.map(f)", ps.renderTop(x.In, b))
		}
		info := ps.Fns[x.UDF]
		in := ps.renderTop(x.In, b)
		if info == nil || !info.Lifted {
			return fmt.Sprintf("%s.map(udf)", in)
		}
		var params []string
		for i, p := range x.UDF.Params {
			params = append(params, fmt.Sprintf("%s: %s", p, info.ParamKinds[i]))
		}
		body := renderBody(x.UDF.Body, info, "  ")
		closures := ""
		if len(info.Closures) > 0 {
			var cs []string
			for name, k := range info.Closures {
				cs = append(cs, fmt.Sprintf("%s: %s", name, k))
			}
			sort.Strings(cs)
			closures = fmt.Sprintf("  // closures: %s\n", strings.Join(cs, ", "))
		}
		return fmt.Sprintf("%s.mapWithLiftedUDF { (%s) =>\n%s%s}",
			in, strings.Join(params, ", "), closures+body, "")
	case Filter:
		return fmt.Sprintf("%s.filter(p)", ps.renderTop(x.In, b))
	case FlatMap:
		return fmt.Sprintf("%s.flatMap(f)", ps.renderTop(x.In, b))
	case Distinct:
		return fmt.Sprintf("%s.distinct()", ps.renderTop(x.In, b))
	case ReduceByKey:
		return fmt.Sprintf("%s.reduceByKey(f)", ps.renderTop(x.In, b))
	case Count:
		return fmt.Sprintf("%s.count()", ps.renderTop(x.In, b))
	case Reduce:
		return fmt.Sprintf("%s.reduce(f)", ps.renderTop(x.In, b))
	case Union:
		return fmt.Sprintf("%s.union(%s)", ps.renderTop(x.A, b), ps.renderTop(x.B, b))
	case UnOp:
		return fmt.Sprintf("unaryScalarOp(%s)(f)", ps.renderTop(x.A, b))
	case BinOp:
		return fmt.Sprintf("binaryScalarOp(%s, %s)(f)", ps.renderTop(x.A, b), ps.renderTop(x.B, b))
	}
	return fmt.Sprintf("<%T>", e)
}

func renderBody(body []Stmt, info *FnInfo, indent string) string {
	var b strings.Builder
	for _, st := range body {
		switch s := st.(type) {
		case LetS:
			fmt.Fprintf(&b, "%sval %s: %s = %s\n", indent, s.Name, info.VarKinds[s.Name], renderInner(s.E, info))
		case While:
			fmt.Fprintf(&b, "%sliftedWhile(%s) {\n", indent, strings.Join(s.Vars, ", "))
			for _, l := range s.Body {
				fmt.Fprintf(&b, "%s  val %s = %s\n", indent, l.Name, renderInner(l.E, info))
			}
			fmt.Fprintf(&b, "%s} while (%s)\n", indent, renderInner(s.Cond, info))
		case If:
			fmt.Fprintf(&b, "%sliftedIf(%s) over (%s) { ... } else { ... }\n",
				indent, renderInner(s.Cond, info), strings.Join(s.Vars, ", "))
		case Return:
			fmt.Fprintf(&b, "%sreturn %s\n", indent, renderInner(s.E, info))
		}
	}
	return b.String()
}

func renderInner(e Expr, info *FnInfo) string {
	switch x := e.(type) {
	case Ref:
		if k, ok := info.Closures[x.Name]; ok {
			return fmt.Sprintf("%s/*closure:%s*/", x.Name, k)
		}
		return x.Name
	case Const:
		return fmt.Sprintf("%v", x.V)
	case Map:
		return fmt.Sprintf("%s.map(f)", renderInner(x.In, info))
	case Filter:
		return fmt.Sprintf("%s.filter(p)", renderInner(x.In, info))
	case FlatMap:
		return fmt.Sprintf("%s.flatMap(f)", renderInner(x.In, info))
	case Distinct:
		return fmt.Sprintf("%s.distinct()", renderInner(x.In, info))
	case ReduceByKey:
		return fmt.Sprintf("%s.reduceByKey(f)", renderInner(x.In, info))
	case Count:
		return fmt.Sprintf("%s.count()", renderInner(x.In, info))
	case Reduce:
		return fmt.Sprintf("%s.reduce(f)", renderInner(x.In, info))
	case Union:
		return fmt.Sprintf("%s.union(%s)", renderInner(x.A, info), renderInner(x.B, info))
	case UnOp:
		return fmt.Sprintf("unaryScalarOp(%s)(f)", renderInner(x.A, info))
	case BinOp:
		return fmt.Sprintf("binaryScalarOp(%s, %s)(f)", renderInner(x.A, info), renderInner(x.B, info))
	}
	return fmt.Sprintf("<%T>", e)
}
