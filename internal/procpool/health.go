package procpool

// Self-healing machinery: the monitor that turns silence into declared
// death, the respawn path that refills a dead worker's slot with a fresh
// process (exponential backoff per crash-looping slot, a pool-lifetime
// budget so a pathological loop degrades to quorum failure instead of
// forking forever), the quorum gate stage dispatch waits behind, and the
// fault-injecting data-plane send. Worker lifecycle:
//
//	spawn -> live -> suspect (stale heartbeat) -> dead -> respawned
//	                                  task kills it 3x -> task quarantined
//
// Death always flows through markDead (pool.go), which schedules the
// respawn; the handshake here installs the replacement.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync/atomic"
	"time"

	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
)

const (
	// respawnBackoffCap bounds the exponential respawn backoff.
	respawnBackoffCap = 2 * time.Second
	// respawnHandshakeTimeout bounds how long a respawned process may
	// take to dial back before it is written off (and retried).
	respawnHandshakeTimeout = 15 * time.Second
)

// monitor scans for workers whose heartbeat went stale. The scan interval
// (Config.HeartbeatCheck) is independent of HeartbeatEvery: beats set the
// staleness clock, the monitor only bounds detection latency.
func (p *Pool) monitor() {
	t := time.NewTicker(p.cfg.heartbeatCheck())
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
			for _, w := range p.snapshotWorkers() {
				w.mu.Lock()
				stale := !w.dead && time.Since(w.lastBeat) > p.cfg.HeartbeatTimeout
				w.mu.Unlock()
				if stale {
					p.markDead(w, fmt.Errorf("procpool: worker %d heartbeat timed out (> %v)", w.idx, p.cfg.HeartbeatTimeout))
				}
			}
		}
	}
}

// spawnInto starts a worker process destined for slot idx and registers
// it as pending; the handshake (triggered by the process dialing back)
// installs it.
func (p *Pool) spawnInto(idx int) (*pendingSpawn, error) {
	cmd := exec.Command(p.exe)
	cmd.Env = append(os.Environ(), socketEnv+"="+p.sock)
	cmd.Stderr = os.Stderr
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("procpool: pool is closed")
	}
	if err := cmd.Start(); err != nil {
		p.mu.Unlock()
		return nil, fmt.Errorf("procpool: spawn worker %d: %w", idx, err)
	}
	ps := &pendingSpawn{idx: idx, pid: cmd.Process.Pid, cmd: cmd, done: make(chan *workerProc, 1)}
	p.spawning[ps.pid] = ps
	p.mu.Unlock()
	return ps, nil
}

// handshake completes one accepted connection: read the hello, match the
// pid to a pending spawn, install the workerProc into its slot, and start
// its read/reap goroutines. The pending spawn's done channel resolves
// with the worker (or nil on failure) for respawnWorker.
func (p *Pool) handshake(conn net.Conn) (*workerProc, error) {
	fail := func(ps *pendingSpawn, err error) (*workerProc, error) {
		conn.Close()
		if ps != nil {
			if ps.cmd.Process != nil {
				ps.cmd.Process.Kill()
			}
			go ps.cmd.Wait()
			ps.done <- nil
		}
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := readFrame(conn)
	if err != nil || typ != msgHello {
		return fail(nil, fmt.Errorf("procpool: bad hello (type %d): %v", typ, err))
	}
	pid, err := parseHello(body)
	if err != nil {
		return fail(nil, fmt.Errorf("procpool: hello: %w", err))
	}
	conn.SetReadDeadline(time.Time{})
	p.mu.Lock()
	ps, ok := p.spawning[pid]
	delete(p.spawning, pid)
	closed := p.closed
	p.mu.Unlock()
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("procpool: connection from unknown pid %d", pid)
	}
	if closed {
		return fail(ps, fmt.Errorf("procpool: pool is closed"))
	}
	w := &workerProc{
		idx:      ps.idx,
		gen:      atomic.AddUint64(&p.genSeq, 1),
		pid:      pid,
		cmd:      ps.cmd,
		conn:     conn,
		exited:   make(chan struct{}),
		lastBeat: time.Now(),
		pending:  map[uint64]chan taskReply{},
	}
	if err := w.send(msgHelloAck, encodeHelloAck(w.idx, p.cfg.HeartbeatEvery)); err != nil {
		return fail(ps, fmt.Errorf("procpool: worker %d ack: %w", w.idx, err))
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fail(ps, fmt.Errorf("procpool: pool is closed"))
	}
	p.workerList[w.idx] = w
	p.slotBorn[w.idx] = time.Now()
	p.mu.Unlock()
	go p.readLoop(w)
	go p.waitWorker(w)
	ps.done <- w
	return w, nil
}

// acceptLoop serves handshakes for respawned workers (the initial fleet
// handshakes synchronously in Start). Exits when Close closes the
// listener.
func (p *Pool) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handshake(conn)
	}
}

// scheduleRespawnLocked (caller holds p.mu) books a replacement for a
// dead slot: spends budget, computes the consecutive-crash count for the
// backoff, and hands off to respawnWorker. Incrementing respawnsIn here,
// synchronously inside markDead, guarantees waitQuorum sees either a live
// worker or a respawn in flight — never a silent gap.
func (p *Pool) scheduleRespawnLocked(idx int) {
	if p.respawnsUse >= p.cfg.RespawnBudget {
		return // budget spent: the pool degrades to quorum failure
	}
	p.respawnsUse++
	p.respawnsIn++
	// An incarnation that survived a while was not crash-looping: reset
	// the consecutive-death count so its slot restarts at base backoff.
	stable := 4 * p.cfg.RespawnBackoff
	if stable < 100*time.Millisecond {
		stable = 100 * time.Millisecond
	}
	if born := p.slotBorn[idx]; !born.IsZero() && time.Since(born) >= stable {
		p.slotDeaths[idx] = 0
	}
	p.slotDeaths[idx]++
	go p.respawnWorker(idx, p.slotDeaths[idx])
}

// respawnWorker refills slot idx after the backoff, then waits for the
// replacement's handshake. Spawn and handshake failures retry within the
// budget; Close aborts the attempt.
func (p *Pool) respawnWorker(idx, deaths int) {
	backoff := p.cfg.RespawnBackoff
	for i := 1; i < deaths && backoff < respawnBackoffCap; i++ {
		backoff *= 2
	}
	if backoff > respawnBackoffCap {
		backoff = respawnBackoffCap
	}
	retry := func() {
		p.mu.Lock()
		p.respawnsIn--
		if !p.closed {
			p.scheduleRespawnLocked(idx)
		}
		p.mu.Unlock()
	}
	select {
	case <-p.stopCh:
		p.mu.Lock()
		p.respawnsIn--
		p.mu.Unlock()
		return
	case <-time.After(backoff):
	}
	ps, err := p.spawnInto(idx)
	if err != nil {
		retry()
		return
	}
	select {
	case w := <-ps.done:
		if w == nil {
			retry()
			return
		}
		p.mu.Lock()
		p.respawnsIn--
		p.respawns++
		p.stats.MachineRejoins++
		p.mu.Unlock()
		p.event("respawn", idx, fmt.Sprintf("worker %d respawned as pid %d after %v backoff", idx, w.pid, backoff))
	case <-time.After(respawnHandshakeTimeout):
		p.mu.Lock()
		delete(p.spawning, ps.pid)
		p.mu.Unlock()
		if ps.cmd.Process != nil {
			ps.cmd.Process.Kill()
		}
		go ps.cmd.Wait()
		retry()
	case <-p.stopCh:
		p.mu.Lock()
		p.respawnsIn--
		p.mu.Unlock()
	}
}

// waitQuorum blocks until at least MinLive workers are up, a bounded wait
// that rides out respawn backoff. It fails immediately — not after
// QuorumWait — once no respawn is in flight and none can be scheduled
// (respawn disabled or budget spent): the fleet can only stay short, and
// engine.QuorumLostError hands the decision to lineage recovery and the
// bounded job retry instead of deadlocking the stage.
func (p *Pool) waitQuorum(ctx context.Context, label string) ([]*workerProc, error) {
	deadline := time.Now().Add(p.cfg.QuorumWait)
	for {
		p.mu.Lock()
		live := p.liveLocked()
		inFlight := p.respawnsIn
		canRespawn := !p.cfg.DisableRespawn && p.respawnsUse < p.cfg.RespawnBudget
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return nil, fmt.Errorf("procpool: pool is closed")
		}
		if len(live) >= p.cfg.MinLive {
			return live, nil
		}
		if (inFlight == 0 && !canRespawn) || time.Now().After(deadline) {
			return nil, &engine.QuorumLostError{Stage: label, Live: len(live), Min: p.cfg.MinLive}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.stopCh:
			return nil, fmt.Errorf("procpool: pool closed while waiting for workers")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// sendData writes one data-plane frame (msgTask, msgBlockData), applying
// the fault plan's frame faults. Control-plane frames (acks, shutdown,
// cache clears) use w.send directly and stay clean: the chaos being
// modeled is a flaky transport under load, not a corrupted protocol.
func (p *Pool) sendData(w *workerProc, typ byte, body []byte) error {
	if p.cfg.Faults.Active() {
		n := atomic.AddUint64(&p.frameSeq, 1)
		switch p.cfg.Faults.frameFaultAt(n) {
		case frameDelay:
			time.Sleep(p.cfg.Faults.delay())
		case frameDrop:
			// Swallowed silently — exactly what a lost datagram looks
			// like. The task deadline (or heartbeat monitor) unwedges
			// whoever was waiting for this frame.
			return nil
		case frameReset:
			frame := appendFrame(nil, typ, body)
			cut := p.cfg.Faults.tearPoint(n, len(frame))
			w.wmu.Lock()
			w.conn.Write(frame[:cut])
			w.wmu.Unlock()
			w.conn.Close()
			return fmt.Errorf("procpool: injected connection reset to worker %d mid-frame (%d/%d bytes)", w.idx, cut, len(frame))
		}
	}
	return w.send(typ, body)
}

// spillDamage builds the block store's post-spill damage hook from the
// fault plan (nil when the plan injects no disk faults).
func (p *Pool) spillDamage() func(path string, seq int) {
	f := p.cfg.Faults
	if f.CorruptSpillEvery <= 0 && f.TruncateSpillEvery <= 0 {
		return nil
	}
	return func(path string, seq int) {
		if f.TruncateSpillEvery > 0 && seq%f.TruncateSpillEvery == 0 {
			if st, err := os.Stat(path); err == nil {
				os.Truncate(path, st.Size()/2)
			}
			return
		}
		if f.CorruptSpillEvery > 0 && seq%f.CorruptSpillEvery == 0 {
			data, err := os.ReadFile(path)
			if err != nil || len(data) == 0 {
				return
			}
			data[f.corruptByte(uint64(seq), len(data))] ^= 0x40
			os.WriteFile(path, data, 0o600)
		}
	}
}

// noteQuarantine records a poison-task quarantine (count + fault event).
func (p *Pool) noteQuarantine(pe *engine.PoisonTaskError) {
	p.mu.Lock()
	p.quarantines++
	p.mu.Unlock()
	p.event("quarantine", -1, pe.Error())
}

// event emits a fault event to the configured recorder (nil-safe). Never
// call it holding p.mu: Clock takes the pool lock.
func (p *Pool) event(kind string, machine int, detail string) {
	if p.cfg.Events == nil {
		return
	}
	p.cfg.Events.Fault(obs.FaultEvent{At: p.Clock(), Machine: machine, Kind: kind, Detail: detail})
}
