package procpool

// Seeded fault injection for the process pool, mirroring cluster.FaultPlan
// (PR 5) at the substrate level: where the simulator's plan crashes model
// machines at virtual times, this one damages the real transport — worker
// kills keyed to the dispatch counter, delayed/dropped/torn data-plane
// frames keyed to a frame counter, and spill-file corruption/truncation
// keyed to the spill counter. Every decision is a pure function of
// (Seed, counter) via splitmix64, so a fixed-seed chaos run injects the
// same faults at the same points on every execution — the property the
// proc-chaos soak's bit-identity assertion rests on.
//
// Injection points are data-plane only (msgTask, msgBlockData): the
// control plane (hello, heartbeat, shutdown) stays clean so a chaos run
// exercises task recovery, not pool bring-up.

import "time"

// FaultPlan describes deterministic faults to inject into a running pool.
// Counters are global across the pool (dispatches, data frames, spills),
// so "every Nth" is exact and seed-stable. The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every per-event choice (which byte to flip, where to
	// tear a frame). Two runs with the same seed and workload inject
	// identically.
	Seed uint64

	// KillEveryTasks SIGKILLs the worker a task was just dispatched to on
	// every Nth dispatch (0 disables) — the continuous-crash source for
	// the proc-chaos soak.
	KillEveryTasks int

	// DelayEveryFrames stalls every Nth data-plane frame by Delay before
	// writing it (0 disables; Delay defaults to 5ms).
	DelayEveryFrames int
	Delay            time.Duration

	// DropEveryFrames silently swallows every Nth data-plane frame: the
	// peer never sees it, so only a task deadline or heartbeat timeout
	// can unwedge the stage (0 disables).
	DropEveryFrames int

	// ResetEveryFrames tears every Nth data-plane frame mid-write and
	// resets the connection, killing the worker link (0 disables).
	ResetEveryFrames int

	// CorruptSpillEvery flips one seeded byte of every Nth spill file
	// after it is written; TruncateSpillEvery cuts every Nth spill file
	// to half length (0 disables). Both must surface as checksum
	// failures → lost blocks, never as data.
	CorruptSpillEvery  int
	TruncateSpillEvery int
}

// Active reports whether the plan injects anything.
func (p FaultPlan) Active() bool {
	return p.KillEveryTasks > 0 || p.DelayEveryFrames > 0 || p.DropEveryFrames > 0 ||
		p.ResetEveryFrames > 0 || p.CorruptSpillEvery > 0 || p.TruncateSpillEvery > 0
}

// frameFault classifies what happens to the n-th data-plane frame.
type frameFault int

const (
	frameClean frameFault = iota
	frameDelay
	frameDrop
	frameReset
)

// frameFaultAt returns the fate of the n-th (1-based) data-plane frame.
// Reset beats drop beats delay when cadences collide, so a plan that sets
// several is still a total function of n.
func (p FaultPlan) frameFaultAt(n uint64) frameFault {
	switch {
	case p.ResetEveryFrames > 0 && n%uint64(p.ResetEveryFrames) == 0:
		return frameReset
	case p.DropEveryFrames > 0 && n%uint64(p.DropEveryFrames) == 0:
		return frameDrop
	case p.DelayEveryFrames > 0 && n%uint64(p.DelayEveryFrames) == 0:
		return frameDelay
	}
	return frameClean
}

// killsAt reports whether the n-th (1-based) task dispatch kills its
// worker.
func (p FaultPlan) killsAt(n uint64) bool {
	return p.KillEveryTasks > 0 && n%uint64(p.KillEveryTasks) == 0
}

// delay returns the configured frame delay, defaulted.
func (p FaultPlan) delay() time.Duration {
	if p.Delay > 0 {
		return p.Delay
	}
	return 5 * time.Millisecond
}

// draw hashes (Seed, domain, counter) to a uniform uint64 — the same
// stateless splitmix64 derivation cluster.FaultPlan.CrashGap uses, so
// injected choices depend only on the seed and the event index, never on
// goroutine interleaving.
func (p FaultPlan) draw(domain, n uint64) uint64 {
	h := splitmix64(p.Seed ^ 0x6a09e667f3bcc908)
	h = splitmix64(h ^ domain*0x9e3779b97f4a7c15)
	return splitmix64(h ^ n)
}

// tearPoint picks where to cut the n-th torn frame: somewhere strictly
// inside the encoded frame so the peer sees a short read, not a clean
// boundary.
func (p FaultPlan) tearPoint(n uint64, frameLen int) int {
	if frameLen <= 1 {
		return 0
	}
	return 1 + int(p.draw(1, n)%uint64(frameLen-1))
}

// corruptByte picks which byte of the n-th damaged spill file to flip.
func (p FaultPlan) corruptByte(n uint64, size int) int {
	if size <= 0 {
		return 0
	}
	return int(p.draw(2, n) % uint64(size))
}

// splitmix64 is the finalizer from Vigna's splitmix64 generator: a cheap,
// well-mixed bijection on uint64 (same idiom as internal/cluster).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
