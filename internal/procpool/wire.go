// Package procpool is the process-pool backend: a driver-side Pool that
// spawns real worker processes (re-execs of the current binary), ships
// them portable stage tasks (engine.RemoteStageSpec), serves them input
// blocks from a spill-capable block store, and detects worker death by
// heartbeat — surfacing lost shuffle outputs through the same
// cluster.FetchFailedError the simulator's fault injection raises, so the
// engine's lineage-based recovery handles real crashes unchanged.
//
// The Pool implements engine.Backend (wall-clock stage reports),
// engine.Residency (which worker "holds" each registered shuffle output)
// and engine.RemoteRunner (block store + remote stage dispatch). Stages
// whose operators lack a portable registration simply run driver-local;
// the pool is an acceleration substrate, never a correctness requirement.
package procpool

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"matryoshka/internal/engine"
)

// The driver/worker wire protocol: framed messages over a unix socket.
// Every frame is a u32 big-endian payload length followed by the payload;
// the payload is a message-type byte, a u32 CRC-32C checksum of the body,
// then the body itself. Numbers inside bodies are big-endian. The framing
// is deliberately dumb — all structure lives in the per-type bodies, each
// parsed by a bounds-checked reader that fails loud on truncation (fuzzed
// in wire_test.go: arbitrary bytes must error, never panic). The checksum
// turns a flipped bit anywhere in a body — kernel buffer reuse, a torn
// write racing a crash, fault injection — into a loud framing error
// instead of a silently wrong batch.
const (
	msgHello      byte = iota + 1 // worker → driver: u64 pid
	msgHelloAck                   // driver → worker: u32 index | u64 heartbeat period (ns)
	msgTask                       // driver → worker: u64 task id | JSON engine.RemoteTask
	msgTaskResult                 // worker → driver: u64 task id | u8 ok | batch frame or error string
	msgFetchBlock                 // worker → driver: u64 block id
	msgBlockData                  // driver → worker: u64 block id | u8 ok | batch frame or error string
	msgHeartbeat                  // worker → driver: empty
	msgClearCache                 // driver → worker: empty (drop cached blocks, end of job)
	msgShutdown                   // driver → worker: empty (exit cleanly)
)

// maxWireFrame caps a declared frame length so a corrupt or hostile peer
// cannot make the reader allocate unboundedly (mirrors batchio's cap).
const maxWireFrame = 1 << 30

// frameOverhead is the payload's fixed prefix: type byte + body checksum.
const frameOverhead = 5

// wireCRC is the Castagnoli polynomial table shared by the wire framing
// and the spill files (hardware-accelerated on amd64/arm64).
var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one encoded frame (length, type, checksum, body) to
// dst — shared by writeFrame and the fault injector's torn-write path so
// both produce byte-identical frames.
func appendFrame(dst []byte, typ byte, body []byte) []byte {
	var head [9]byte
	binary.BigEndian.PutUint32(head[:], uint32(frameOverhead+len(body)))
	head[4] = typ
	binary.BigEndian.PutUint32(head[5:], crc32.Checksum(body, wireCRC))
	return append(append(dst, head[:]...), body...)
}

// writeFrame sends one frame as a single Write (callers still serialize
// concurrent writers per connection: large writes may be split by the
// kernel, and interleaved partial writes would corrupt the stream).
func writeFrame(w io.Writer, typ byte, body []byte) error {
	_, err := w.Write(appendFrame(make([]byte, 0, 9+len(body)), typ, body))
	return err
}

// readFrame reads one frame, verifying the body checksum. io.EOF at a
// frame boundary passes through clean (the peer hung up); a partial frame
// is a distinct error.
func readFrame(r io.Reader) (byte, []byte, error) {
	var head [9]byte
	if _, err := io.ReadFull(r, head[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("procpool: truncated frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(head[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("procpool: empty wire frame")
	}
	if n < frameOverhead {
		return 0, nil, fmt.Errorf("procpool: runt wire frame (%d bytes, need ≥%d for type+checksum)", n, frameOverhead)
	}
	if n > maxWireFrame {
		return 0, nil, fmt.Errorf("procpool: wire frame length %d exceeds cap %d", n, maxWireFrame)
	}
	if _, err := io.ReadFull(r, head[4:]); err != nil {
		return 0, nil, fmt.Errorf("procpool: truncated frame header: %w", err)
	}
	want := binary.BigEndian.Uint32(head[5:])
	// Grow the body buffer as bytes actually arrive (geometric, from
	// 1 MiB): a lying length prefix must not make the reader allocate
	// its full declared size — up to the cap above — before the stream
	// proves it has the payload.
	const grow = 1 << 20
	need := int(n - frameOverhead)
	body := make([]byte, 0, min(need, grow))
	for len(body) < need {
		if len(body) == cap(body) {
			next := make([]byte, len(body), min(need, 2*cap(body)))
			copy(next, body)
			body = next
		}
		m, err := io.ReadFull(r, body[len(body):cap(body)])
		body = body[:len(body)+m]
		if err != nil {
			return 0, nil, fmt.Errorf("procpool: truncated wire frame: %w", err)
		}
	}
	if got := crc32.Checksum(body, wireCRC); got != want {
		return 0, nil, fmt.Errorf("procpool: wire frame checksum mismatch (type %d, %d bytes: %08x != %08x)", head[4], need, got, want)
	}
	return head[4], body, nil
}

// wireReader is a bounds-checked cursor over a frame body.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("procpool: frame body truncated at byte %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *wireReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("procpool: frame body truncated at byte %d", r.off)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *wireReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("procpool: frame body truncated at byte %d", r.off)
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// rest returns everything after the cursor (may be empty, never nil).
func (r *wireReader) rest() []byte {
	if r.off >= len(r.b) {
		return []byte{}
	}
	return r.b[r.off:]
}

func encodeHello(pid int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(pid))
	return b
}

func parseHello(body []byte) (int, error) {
	r := &wireReader{b: body}
	pid, err := r.u64()
	return int(pid), err
}

func encodeHelloAck(idx int, beatEvery time.Duration) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b, uint32(idx))
	binary.BigEndian.PutUint64(b[4:], uint64(beatEvery.Nanoseconds()))
	return b
}

func parseHelloAck(body []byte) (int, time.Duration, error) {
	r := &wireReader{b: body}
	idx, err := r.u32()
	if err != nil {
		return 0, 0, err
	}
	ns, err := r.u64()
	if err != nil {
		return 0, 0, err
	}
	if ns == 0 || ns > uint64(time.Hour) {
		return 0, 0, fmt.Errorf("procpool: implausible heartbeat period %dns", ns)
	}
	return int(idx), time.Duration(ns), nil
}

func encodeTask(id uint64, t *engine.RemoteTask) ([]byte, error) {
	js, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("procpool: marshal task %d: %w", t.Part, err)
	}
	b := make([]byte, 8+len(js))
	binary.BigEndian.PutUint64(b, id)
	copy(b[8:], js)
	return b, nil
}

func parseTask(body []byte) (uint64, *engine.RemoteTask, error) {
	r := &wireReader{b: body}
	id, err := r.u64()
	if err != nil {
		return 0, nil, err
	}
	var t engine.RemoteTask
	if err := json.Unmarshal(r.rest(), &t); err != nil {
		return 0, nil, fmt.Errorf("procpool: unmarshal task %d: %w", id, err)
	}
	if t.Root == nil {
		return 0, nil, fmt.Errorf("procpool: task %d has no root operator", id)
	}
	return id, &t, nil
}

// encodeTagged frames the shared (id, ok, bytes) shape of msgTaskResult
// and msgBlockData: on ok the trailing bytes are an encoded batch frame,
// otherwise an error string.
func encodeTagged(id uint64, ok bool, rest []byte) []byte {
	b := make([]byte, 9+len(rest))
	binary.BigEndian.PutUint64(b, id)
	if ok {
		b[8] = 1
	}
	copy(b[9:], rest)
	return b
}

func parseTagged(body []byte) (id uint64, ok bool, rest []byte, err error) {
	r := &wireReader{b: body}
	if id, err = r.u64(); err != nil {
		return 0, false, nil, err
	}
	flag, err := r.u8()
	if err != nil {
		return 0, false, nil, err
	}
	if flag > 1 {
		return 0, false, nil, fmt.Errorf("procpool: bad ok flag %d", flag)
	}
	return id, flag == 1, r.rest(), nil
}

func encodeBlockReq(id uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, id)
	return b
}

func parseBlockReq(body []byte) (uint64, error) {
	r := &wireReader{b: body}
	return r.u64()
}
