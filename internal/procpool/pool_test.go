package procpool

import (
	"os"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// TestMain is the worker hook: pool workers are re-execs of this very
// test binary, so a worker launch must divert into the protocol loop
// before the test framework runs anything.
func TestMain(m *testing.M) {
	if IsWorker() {
		WorkerMain()
	}
	os.Exit(m.Run())
}

// withBackend routes every session the tasks package builds through the
// pool for the duration of f. Tests using it must not run in parallel.
func withBackend(t *testing.T, b engine.Backend, f func()) {
	t.Helper()
	old := tasks.Backend
	tasks.Backend = b
	defer func() { tasks.Backend = old }()
	f()
}

func startPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestChaosABBitIdentical runs the chaos diamond on a private simulator
// and again on the process pool: the values must be DeepEqual, and the
// proc run must actually have shipped tasks to worker processes.
func TestChaosABBitIdentical(t *testing.T) {
	pool := startPool(t, Config{Workers: 2})
	sp := tasks.ChaosSpec{Records: 3000, Keys: 64, Parts: 4, Rounds: 2}

	simOut := sp.Run(cluster.Config{})
	if simOut.Err != nil {
		t.Fatalf("sim run: %v", simOut.Err)
	}
	var procOut tasks.Outcome
	withBackend(t, pool, func() { procOut = sp.Run(cluster.Config{}) })
	if procOut.Err != nil {
		t.Fatalf("proc run: %v", procOut.Err)
	}
	if !reflect.DeepEqual(simOut.Value, procOut.Value) {
		t.Fatalf("values differ:\n sim: %+v\nproc: %+v", simOut.Value, procOut.Value)
	}
	if want := sp.Reference(); !reflect.DeepEqual(procOut.Value, want) {
		t.Fatalf("proc value %+v != reference %+v", procOut.Value, want)
	}
	if pool.RemoteTasks() == 0 {
		t.Fatal("no tasks ran in worker processes")
	}
	if pool.BytesShipped() == 0 {
		t.Fatal("no bytes crossed the process boundary")
	}
}

// TestKMeansInnerABBitIdentical is the Fig. 1 workload's inner-parallel
// plan: its assign map ships a JSON-parameterized UDF (the per-iteration
// centroids), so bit-identical results prove float64 parameters survive
// the driver→worker round trip exactly.
func TestKMeansInnerABBitIdentical(t *testing.T) {
	pool := startPool(t, Config{Workers: 2})
	sp := tasks.KMeansSpec{TotalPoints: 2000, K: 3, Configs: 3, Eps: 1e-6, MaxIters: 4, Seed: 1}

	simOut := sp.Run(tasks.InnerParallel, cluster.Config{})
	if simOut.Err != nil {
		t.Fatalf("sim run: %v", simOut.Err)
	}
	var procOut tasks.Outcome
	withBackend(t, pool, func() { procOut = sp.Run(tasks.InnerParallel, cluster.Config{}) })
	if procOut.Err != nil {
		t.Fatalf("proc run: %v", procOut.Err)
	}
	if !reflect.DeepEqual(simOut.Value, procOut.Value) {
		t.Fatalf("values differ:\n sim: %+v\nproc: %+v", simOut.Value, procOut.Value)
	}
	if pool.RemoteTasks() == 0 {
		t.Fatal("no tasks ran in worker processes")
	}
}

// TestWorkerCrashRecovery kills a worker mid-stage (the KillAfterTasks
// hook) and asserts the run still completes correctly: the dead worker's
// registered shuffle outputs surface as a cluster.FetchFailedError at the
// consuming stage, and the engine's existing lineage recovery rewinds and
// recomputes them — visible as a Recovery line in EXPLAIN ANALYZE.
func TestWorkerCrashRecovery(t *testing.T) {
	// Task 10 of the pool's lifetime lands in the chaos diamond's
	// group-count stage, after the reduce parent's outputs registered.
	// Respawn is off so the fleet stays shrunk and the LiveWorkers
	// assertion is deterministic (health_test.go covers respawn).
	pool := startPool(t, Config{Workers: 2, KillAfterTasks: 10, DisableRespawn: true})
	sp := tasks.ChaosSpec{Records: 2000, Keys: 50, Parts: 4, Rounds: 2}

	rec := obs.NewRecorder()
	oldObs := tasks.Obs
	tasks.Obs = rec
	defer func() { tasks.Obs = oldObs }()

	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run with mid-stage crash: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
	st := pool.Stats()
	if st.MachineCrashes == 0 {
		t.Fatal("kill hook never fired: no machine crash recorded")
	}
	if st.FetchFailures == 0 {
		t.Fatal("crash lost no shuffle outputs: no fetch failure recorded")
	}
	if pool.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", pool.LiveWorkers())
	}
	report := rec.Report()
	if !strings.Contains(report, "Recovery") {
		t.Fatalf("EXPLAIN ANALYZE shows no Recovery line:\n%s", report)
	}
}

// TestSpillToDisk shrinks the block-store budget to a single byte so
// every stored frame spills, and asserts results are still correct.
func TestSpillToDisk(t *testing.T) {
	pool := startPool(t, Config{Workers: 2, MemoryBudget: 1})
	sp := tasks.ChaosSpec{Records: 1500, Keys: 32, Parts: 3, Rounds: 1}

	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
	blocks, bytes := pool.Spills()
	if blocks == 0 || bytes == 0 {
		t.Fatalf("nothing spilled under a 1-byte budget (blocks=%d bytes=%d)", blocks, bytes)
	}
	if pool.RemoteTasks() == 0 {
		t.Fatal("no tasks ran in worker processes")
	}
}

// TestHeartbeatDetectsStoppedWorker SIGSTOPs a worker: it is not dead
// (the connection stays open, no process exit), so only the heartbeat
// timeout can catch it.
func TestHeartbeatDetectsStoppedWorker(t *testing.T) {
	pool := startPool(t, Config{Workers: 2, HeartbeatEvery: 20 * time.Millisecond, HeartbeatTimeout: 300 * time.Millisecond, DisableRespawn: true})
	w := pool.workerList[0]
	if err := syscall.Kill(w.pid, syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !w.isDead() {
		if time.Now().After(deadline) {
			t.Fatal("stopped worker was never declared dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := pool.Stats().MachineCrashes; got != 1 {
		t.Fatalf("MachineCrashes = %d, want 1", got)
	}
	if pool.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", pool.LiveWorkers())
	}

	// The pool still works on the survivor.
	sp := tasks.ChaosSpec{Records: 800, Keys: 16, Parts: 2, Rounds: 1}
	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run after worker loss: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
}

// TestBlockStoreSpillRoundTrip exercises the store directly: frames must
// come back bit-identical whether they stayed in memory or spilled.
func TestBlockStoreSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newBlockStore(dir, 32) // tiny: most frames spill
	var ids []uint64
	var want [][]byte
	for i := 0; i < 10; i++ {
		frame := make([]byte, 16+i)
		for j := range frame {
			frame[j] = byte(i*31 + j)
		}
		id, err := s.put(frame)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		ids = append(ids, id)
		want = append(want, frame)
	}
	blocks, _ := s.spillStats()
	if blocks == 0 {
		t.Fatal("nothing spilled under a 32-byte budget")
	}
	for i, id := range ids {
		got, err := s.get(id)
		if err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("block %d corrupted by spill", id)
		}
	}
	s.clear()
	if _, err := s.get(ids[0]); err == nil {
		t.Fatal("cleared block still readable")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range left {
		if strings.HasPrefix(e.Name(), "blk-") {
			t.Fatalf("spill file %s survived clear", e.Name())
		}
	}
}
