package procpool

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"matryoshka/internal/engine"
)

// socketEnv carries the pool's unix socket path into spawned workers. Its
// presence is what distinguishes a worker re-exec from a normal launch.
const socketEnv = "MATRYOSHKA_PROCPOOL_SOCKET"

// IsWorker reports whether this process was spawned as a pool worker.
// Binaries that may host a pool (matbench, test binaries via TestMain)
// must check it first thing in main and divert to WorkerMain — before
// flag parsing, before tests, before anything that prints.
func IsWorker() bool { return os.Getenv(socketEnv) != "" }

// WorkerMain runs the worker protocol loop and exits the process; it
// never returns. Operator and batch-shape registrations happened in init
// functions by the time main runs, so the worker resolves exactly the
// names the driver registered — they are the same binary.
func WorkerMain() {
	os.Exit(workerRun(os.Getenv(socketEnv)))
}

func workerRun(sock string) int {
	conn, err := net.Dial("unix", sock)
	if err != nil {
		fmt.Fprintf(os.Stderr, "procpool worker: dial: %v\n", err)
		return 1
	}
	defer conn.Close()

	// The heartbeat goroutine and the task loop share the connection;
	// writes must not interleave.
	var wmu sync.Mutex
	send := func(typ byte, body []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, typ, body)
	}

	if err := send(msgHello, encodeHello(os.Getpid())); err != nil {
		fmt.Fprintf(os.Stderr, "procpool worker: hello: %v\n", err)
		return 1
	}
	typ, body, err := readFrame(conn)
	if err != nil || typ != msgHelloAck {
		fmt.Fprintf(os.Stderr, "procpool worker: handshake: type %d err %v\n", typ, err)
		return 1
	}
	_, beatEvery, err := parseHelloAck(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "procpool worker: handshake: %v\n", err)
		return 1
	}

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if send(msgHeartbeat, nil) != nil {
					return
				}
			}
		}
	}()

	// Per-worker block cache: shared blocks (broadcasts, fan-in reads)
	// cross the wire once per worker. Ids are never reused by the driver,
	// so caching by id alone is safe; clearCache bounds its memory to a
	// job's working set.
	cache := map[uint64]engine.Batch{}

	// fetch resolves a block id over the socket. The worker runs one task
	// at a time with at most one outstanding fetch, so the next blockData
	// frame answers this request; housekeeping frames that race a late
	// fetch are handled inline.
	fetch := func(id uint64) (engine.Batch, error) {
		if b, ok := cache[id]; ok {
			return b, nil
		}
		if err := send(msgFetchBlock, encodeBlockReq(id)); err != nil {
			return nil, err
		}
		for {
			typ, body, err := readFrame(conn)
			if err != nil {
				return nil, err
			}
			switch typ {
			case msgBlockData:
				gotID, ok, rest, perr := parseTagged(body)
				if perr != nil {
					return nil, perr
				}
				if gotID != id {
					return nil, fmt.Errorf("procpool: block %d answered request for %d", gotID, id)
				}
				if !ok {
					return nil, fmt.Errorf("procpool: fetch block %d: %s", id, rest)
				}
				b, _, derr := engine.DecodeBatch(rest)
				if derr != nil {
					return nil, fmt.Errorf("procpool: decode block %d: %w", id, derr)
				}
				cache[id] = b
				return b, nil
			case msgClearCache:
				cache = map[uint64]engine.Batch{}
			case msgShutdown:
				return nil, fmt.Errorf("procpool: shutdown during fetch")
			default:
				return nil, fmt.Errorf("procpool: unexpected frame type %d during fetch", typ)
			}
		}
	}

	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			// Driver hung up (pool closed, driver exited): clean exit.
			if err == io.EOF {
				return 0
			}
			return 0
		}
		switch typ {
		case msgTask:
			id, task, perr := parseTask(body)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "procpool worker: %v\n", perr)
				return 1
			}
			var payload []byte
			b, rerr := engine.RunRemoteTask(task, fetch)
			if rerr == nil {
				if b == nil {
					b = &engine.Vec[any]{}
				}
				payload, rerr = engine.EncodeBatch(nil, b)
			}
			var out []byte
			if rerr != nil {
				out = encodeTagged(id, false, []byte(rerr.Error()))
			} else {
				out = encodeTagged(id, true, payload)
			}
			if send(msgTaskResult, out) != nil {
				return 0
			}
		case msgClearCache:
			cache = map[uint64]engine.Batch{}
		case msgShutdown:
			return 0
		default:
			fmt.Fprintf(os.Stderr, "procpool worker: unexpected frame type %d\n", typ)
			return 1
		}
	}
}
