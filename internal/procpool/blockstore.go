package procpool

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"matryoshka/internal/engine"
)

// blockStore holds the encoded batch frames workers fetch by id: shuffle
// blocks, broadcast pins, materialized frontier partitions. Frames live in
// memory up to a byte budget; past it the oldest frames spill to per-block
// temp files (oldest-first: a stage's own inputs were put most recently
// and are the ones about to be fetched). Ids are monotonic for the life of
// the store, so a worker-side cache can never alias two different blocks
// across jobs even though clear() empties the store between them.
//
// Spill files are integrity-checked: each is a u32 big-endian CRC-32C of
// the frame followed by the frame bytes. A read that fails the checksum —
// disk corruption, a truncated write, fault injection — comes back as
// engine.BlockLostError, which the driver surfaces as a lost shuffle
// output so lineage recomputation rebuilds the data; corrupt bytes are
// never served.
type blockStore struct {
	mu     sync.Mutex
	dir    string
	budget int64

	next     uint64
	mem      map[uint64][]byte
	order    []uint64 // in-memory ids, insertion order (spill candidates)
	memBytes int64
	disk     map[uint64]string // spilled id -> file path

	spilledBlocks int
	spilledBytes  int64

	// damage, when non-nil, is invoked after every spill write with the
	// file path and the 1-based spill sequence number — the FaultPlan's
	// hook for deterministic corruption/truncation (tests and -procchaos).
	damage func(path string, seq int)
}

func newBlockStore(dir string, budget int64) *blockStore {
	return &blockStore{
		dir:    dir,
		budget: budget,
		mem:    map[uint64][]byte{},
		disk:   map[uint64]string{},
	}
}

// put stores one encoded frame and returns its id, spilling oldest
// in-memory frames to disk while the budget is exceeded.
func (s *blockStore) put(frame []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.mem[id] = frame
	s.order = append(s.order, id)
	s.memBytes += int64(len(frame))
	for s.memBytes > s.budget && len(s.order) > 0 {
		old := s.order[0]
		s.order = s.order[1:]
		data, ok := s.mem[old]
		if !ok {
			continue
		}
		path := filepath.Join(s.dir, fmt.Sprintf("blk-%d", old))
		buf := make([]byte, 4+len(data))
		binary.BigEndian.PutUint32(buf, crc32.Checksum(data, wireCRC))
		copy(buf[4:], data)
		if err := os.WriteFile(path, buf, 0o600); err != nil {
			return 0, fmt.Errorf("procpool: spill block %d: %w", old, err)
		}
		delete(s.mem, old)
		s.memBytes -= int64(len(data))
		s.disk[old] = path
		s.spilledBlocks++
		s.spilledBytes += int64(len(data))
		if s.damage != nil {
			s.damage(path, s.spilledBlocks)
		}
	}
	return id, nil
}

// get returns the encoded frame for id, reading it back from its spill
// file if it left memory (without re-admitting it: a spilled block is
// usually fetched once per worker and cached there). A spill file that is
// missing, truncated, or fails its checksum is reported as
// engine.BlockLostError — a lost block for lineage to recompute — never
// as data.
func (s *blockStore) get(id uint64) ([]byte, error) {
	s.mu.Lock()
	if data, ok := s.mem[id]; ok {
		s.mu.Unlock()
		return data, nil
	}
	path, ok := s.disk[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("procpool: unknown block %d", id)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, &engine.BlockLostError{Block: id, Reason: fmt.Sprintf("spill file unreadable: %v", err)}
	}
	if len(buf) < 4 {
		return nil, &engine.BlockLostError{Block: id, Reason: fmt.Sprintf("spill file truncated to %d bytes", len(buf))}
	}
	want := binary.BigEndian.Uint32(buf)
	data := buf[4:]
	if got := crc32.Checksum(data, wireCRC); got != want {
		return nil, &engine.BlockLostError{Block: id, Reason: fmt.Sprintf("spill checksum mismatch over %d bytes (%08x != %08x)", len(data), got, want)}
	}
	return data, nil
}

// clear drops every block and deletes spill files. Ids keep counting up.
func (s *blockStore) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, path := range s.disk {
		os.Remove(path)
	}
	s.mem = map[uint64][]byte{}
	s.disk = map[uint64]string{}
	s.order = nil
	s.memBytes = 0
}

// spillStats reports how many blocks (and bytes) have ever spilled.
func (s *blockStore) spillStats() (int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBlocks, s.spilledBytes
}
