package procpool

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// TestFaultPlanDeterministic: every fault decision must be a pure
// function of (Seed, counter) — two plans with the same seed agree on
// every draw, and the derived choices stay in range.
func TestFaultPlanDeterministic(t *testing.T) {
	a := FaultPlan{Seed: 42, KillEveryTasks: 7, DelayEveryFrames: 3, DropEveryFrames: 5, ResetEveryFrames: 11}
	b := FaultPlan{Seed: 42, KillEveryTasks: 7, DelayEveryFrames: 3, DropEveryFrames: 5, ResetEveryFrames: 11}
	other := FaultPlan{Seed: 43}
	sawDiff := false
	for n := uint64(1); n <= 1000; n++ {
		if a.frameFaultAt(n) != b.frameFaultAt(n) {
			t.Fatalf("frame fault diverged at %d", n)
		}
		if a.killsAt(n) != b.killsAt(n) {
			t.Fatalf("kill decision diverged at %d", n)
		}
		if a.draw(1, n) != b.draw(1, n) {
			t.Fatalf("draw diverged at %d", n)
		}
		if a.draw(1, n) != other.draw(1, n) {
			sawDiff = true
		}
		if tp := a.tearPoint(n, 100); tp < 1 || tp > 99 {
			t.Fatalf("tear point %d of frame 100 out of range", tp)
		}
		if cb := a.corruptByte(n, 64); cb < 0 || cb > 63 {
			t.Fatalf("corrupt byte %d of size 64 out of range", cb)
		}
	}
	if !sawDiff {
		t.Fatal("different seeds never produced a different draw")
	}
	// Cadence arithmetic: reset beats drop beats delay on collisions.
	p := FaultPlan{DelayEveryFrames: 2, DropEveryFrames: 4, ResetEveryFrames: 8}
	if got := p.frameFaultAt(8); got != frameReset {
		t.Fatalf("frame 8: got %d, want reset", got)
	}
	if got := p.frameFaultAt(4); got != frameDrop {
		t.Fatalf("frame 4: got %d, want drop", got)
	}
	if got := p.frameFaultAt(2); got != frameDelay {
		t.Fatalf("frame 2: got %d, want delay", got)
	}
	if got := p.frameFaultAt(3); got != frameClean {
		t.Fatalf("frame 3: got %d, want clean", got)
	}
	if (FaultPlan{}).Active() {
		t.Fatal("zero plan claims to be active")
	}
}

// TestBlockStoreDetectsDamage spills a frame and vandalizes the file in
// each of the three ways: flipped byte, truncation, deletion. Every read
// must come back as engine.BlockLostError — the corrupt bytes never as
// data.
func TestBlockStoreDetectsDamage(t *testing.T) {
	frame := []byte("the quick brown fox jumps over the lazy dog")
	vandalize := func(f func(path string)) error {
		s := newBlockStore(t.TempDir(), 1) // everything spills
		id, err := s.put(append([]byte(nil), frame...))
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		s.mu.Lock()
		path := s.disk[id]
		s.mu.Unlock()
		if path == "" {
			t.Fatal("frame never spilled under a 1-byte budget")
		}
		f(path)
		_, err = s.get(id)
		return err
	}
	cases := []struct {
		name string
		f    func(path string)
		want string
	}{
		{"flipped byte", func(p string) {
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0x01
			os.WriteFile(p, data, 0o600)
		}, "checksum mismatch"},
		{"flipped stored crc", func(p string) {
			data, _ := os.ReadFile(p)
			data[0] ^= 0x80
			os.WriteFile(p, data, 0o600)
		}, "checksum mismatch"},
		{"truncated", func(p string) { os.Truncate(p, 2) }, "truncated"},
		{"deleted", func(p string) { os.Remove(p) }, "unreadable"},
	}
	for _, tc := range cases {
		err := vandalize(tc.f)
		if err == nil {
			t.Fatalf("%s: damaged spill read back as data", tc.name)
		}
		var bl *engine.BlockLostError
		if !errors.As(err, &bl) {
			t.Fatalf("%s: got %v, want BlockLostError", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Undamaged control: the spill round-trips.
	s := newBlockStore(t.TempDir(), 1)
	id, _ := s.put(append([]byte(nil), frame...))
	got, err := s.get(id)
	if err != nil {
		t.Fatalf("clean spill: %v", err)
	}
	if !reflect.DeepEqual(got, frame) {
		t.Fatal("clean spill corrupted the frame")
	}
}

// TestCorruptSpillRecovery is the integrity-checked-spill acceptance
// test: a 1-byte store budget spills every block, the fault plan flips a
// seeded byte in every 17th spill file, and the workload must STILL
// produce reference results — each corrupt read surfaces as a lost block,
// lineage recomputes the producing stage, and EXPLAIN ANALYZE shows the
// recovery. Fully deterministic: same seed, same spill sequence, same
// flipped bytes.
func TestCorruptSpillRecovery(t *testing.T) {
	rec := obs.NewRecorder()
	pool := startPool(t, Config{
		Workers:      2,
		MemoryBudget: 1,
		Faults:       FaultPlan{Seed: 7, CorruptSpillEvery: 17},
		Events:       rec,
	})
	sp := tasks.ChaosSpec{Records: 1500, Keys: 32, Parts: 3, Rounds: 1}

	oldObs := tasks.Obs
	tasks.Obs = rec
	defer func() { tasks.Obs = oldObs }()

	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run over corrupt spills: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
	if got := pool.Stats().FetchFailures; got == 0 {
		t.Fatal("no fetch failure recorded: corruption never bit or was served as data")
	}
	report := rec.Report()
	if !strings.Contains(report, "corrupt-block") {
		t.Fatalf("no corrupt-block fault event:\n%s", report)
	}
	if !strings.Contains(report, "Recovery") {
		t.Fatalf("EXPLAIN ANALYZE shows no Recovery line:\n%s", report)
	}
}

// TestFrameFaultsStillCorrect runs the chaos workload through a transport
// that delays, drops, and tears data-plane frames on seeded cadences. The
// task deadline unwedges dropped frames, torn frames kill connections and
// trigger respawn — and the results must still match the reference.
func TestFrameFaultsStillCorrect(t *testing.T) {
	pool := startPool(t, Config{
		Workers:        2,
		TaskDeadline:   2 * time.Second,
		RespawnBackoff: 10 * time.Millisecond,
		Faults: FaultPlan{
			Seed:             3,
			DelayEveryFrames: 7,
			Delay:            time.Millisecond,
			DropEveryFrames:  23,
			ResetEveryFrames: 41,
		},
	})
	sp := tasks.ChaosSpec{Records: 2000, Keys: 32, Parts: 4, Rounds: 2}

	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run under frame faults: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
}
