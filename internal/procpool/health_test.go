package procpool

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
	"matryoshka/internal/tasks"
)

// The adversarial test operators. They register in both the driver and
// the worker (same binary, same init), and none of them need real input
// data — their single input is Kind "empty".
func init() {
	engine.RegisterPortableOp("htest.ok", func([]byte) (engine.PortableCompute, error) {
		return func(_ *engine.Ctx, _ int, inputs []engine.Batch) engine.Batch {
			return inputs[0]
		}, nil
	})
	// htest.exit is a poison task: it takes the worker process down with
	// exit code 3, every time, on every worker.
	engine.RegisterPortableOp("htest.exit", func([]byte) (engine.PortableCompute, error) {
		return func(_ *engine.Ctx, _ int, _ []engine.Batch) engine.Batch {
			os.Exit(3)
			return nil
		}, nil
	})
	// htest.hang wedges forever — but only for whichever process first
	// wins the O_EXCL create of the flag file (the arg). Re-runs after
	// the deadline kill see the file and return promptly.
	engine.RegisterPortableOp("htest.hang", func(arg []byte) (engine.PortableCompute, error) {
		return func(_ *engine.Ctx, _ int, inputs []engine.Batch) engine.Batch {
			f, err := os.OpenFile(string(arg), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
			if err == nil {
				f.Close()
				select {} // wedge; only the task deadline can end this
			}
			return inputs[0]
		}, nil
	})
	// htest.sleep naps 300ms, for cancellation to interrupt.
	engine.RegisterPortableOp("htest.sleep", func([]byte) (engine.PortableCompute, error) {
		return func(_ *engine.Ctx, _ int, inputs []engine.Batch) engine.Batch {
			time.Sleep(300 * time.Millisecond)
			return inputs[0]
		}, nil
	})
}

// opSpec builds a minimal one-op stage: parts tasks, each running op on
// an empty input.
func opSpec(label, op string, arg []byte, parts int) *engine.RemoteStageSpec {
	spec := &engine.RemoteStageSpec{Label: label}
	for p := 0; p < parts; p++ {
		spec.Tasks = append(spec.Tasks, engine.RemoteTask{Part: p, Root: &engine.RemoteNode{
			Op: op, Arg: arg, Part: p,
			Inputs: []engine.RemoteInput{{Kind: "empty"}},
		}})
	}
	return spec
}

// waitLive polls until the pool reports at least n live workers.
func waitLive(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered to %d live workers (now %d)", n, p.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRespawnRestoresFleet kills a worker mid-run (KillAfterTasks) with
// respawn on: the run must still be correct, a replacement must join, and
// the fleet must return to full strength.
func TestRespawnRestoresFleet(t *testing.T) {
	rec := obs.NewRecorder()
	pool := startPool(t, Config{Workers: 2, KillAfterTasks: 10, RespawnBackoff: 10 * time.Millisecond, Events: rec})
	sp := tasks.ChaosSpec{Records: 2000, Keys: 50, Parts: 4, Rounds: 2}

	var out tasks.Outcome
	withBackend(t, pool, func() { out = sp.Run(cluster.Config{}) })
	if out.Err != nil {
		t.Fatalf("run with respawn: %v", out.Err)
	}
	if want := sp.Reference(); !reflect.DeepEqual(out.Value, want) {
		t.Fatalf("value %+v != reference %+v", out.Value, want)
	}
	if pool.Stats().MachineCrashes == 0 {
		t.Fatal("kill hook never fired")
	}
	waitLive(t, pool, 2)
	if pool.Respawns() == 0 {
		t.Fatal("no respawn recorded despite restored fleet")
	}
	report := rec.Report()
	if !strings.Contains(report, "crash") || !strings.Contains(report, "respawn") {
		t.Fatalf("fault events missing crash/respawn:\n%s", report)
	}
}

// TestQuorumLostFailsFast: with respawn disabled and the whole fleet
// dead, dispatch must fail immediately with engine.QuorumLostError — not
// burn the full QuorumWait, and never deadlock.
func TestQuorumLostFailsFast(t *testing.T) {
	pool := startPool(t, Config{Workers: 1, DisableRespawn: true, QuorumWait: 30 * time.Second})
	w := pool.snapshotWorkers()[0]
	p0 := time.Now()
	pool.markDead(w, fmt.Errorf("test: induced death"))
	spec := opSpec("quorum-stage", "htest.ok", nil, 2)
	_, err := pool.RunRemoteStage(context.Background(), spec)
	elapsed := time.Since(p0)
	var q *engine.QuorumLostError
	if !errors.As(err, &q) {
		t.Fatalf("got %v, want QuorumLostError", err)
	}
	if q.Stage != "quorum-stage" || q.Live != 0 || q.Min != 1 {
		t.Fatalf("bad quorum error: %+v", q)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("quorum failure took %v; should fail fast when no respawn can come", elapsed)
	}
}

// TestPoisonTaskQuarantine dispatches a task that exits the worker
// process, every time. After it has destroyed quarantineAfter distinct
// worker incarnations the stage must fail with engine.PoisonTaskError
// naming the operator — and the pool must stay live for the next job.
func TestPoisonTaskQuarantine(t *testing.T) {
	rec := obs.NewRecorder()
	pool := startPool(t, Config{Workers: 2, RespawnBackoff: 10 * time.Millisecond, Events: rec})
	_, err := pool.RunRemoteStage(context.Background(), opSpec("poison-stage", "htest.exit", nil, 1))
	var pe *engine.PoisonTaskError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PoisonTaskError", err)
	}
	if pe.Workers != quarantineAfter {
		t.Fatalf("quarantined after %d workers, want %d", pe.Workers, quarantineAfter)
	}
	if !strings.Contains(err.Error(), "htest.exit") {
		t.Fatalf("quarantine error does not name the operator chain: %v", err)
	}
	if pool.Quarantines() != 1 {
		t.Fatalf("Quarantines() = %d, want 1", pool.Quarantines())
	}

	// The pool is still a functioning pool: fleet recovers, healthy
	// stages run.
	waitLive(t, pool, 1)
	res, err := pool.RunRemoteStage(context.Background(), opSpec("after-poison", "htest.ok", nil, 3))
	if err != nil {
		t.Fatalf("healthy stage after quarantine: %v", err)
	}
	if len(res.Parts) != 3 {
		t.Fatalf("healthy stage returned %d parts, want 3", len(res.Parts))
	}
	if !strings.Contains(rec.Report(), "quarantine") {
		t.Fatalf("no quarantine fault event:\n%s", rec.Report())
	}
}

// TestTaskDeadlineRequeues wedges a task on its first execution (it
// ignores everything, forever). The deadline must kill the stuck worker,
// requeue the task, and the retry — which sees the flag file — must
// complete the stage. One incarnation died, no quarantine.
func TestTaskDeadlineRequeues(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "hung-once")
	pool := startPool(t, Config{Workers: 2, TaskDeadline: 500 * time.Millisecond, RespawnBackoff: 10 * time.Millisecond})
	res, err := pool.RunRemoteStage(context.Background(), opSpec("deadline-stage", "htest.hang", []byte(flag), 1))
	if err != nil {
		t.Fatalf("stage with one wedged attempt: %v", err)
	}
	if len(res.Parts) != 1 {
		t.Fatalf("got %d parts, want 1", len(res.Parts))
	}
	if got := pool.Stats().MachineCrashes; got == 0 {
		t.Fatal("deadline never killed the wedged worker")
	}
	if pool.Quarantines() != 0 {
		t.Fatalf("single deadline kill quarantined the task (%d quarantines)", pool.Quarantines())
	}
}

// TestCtxCancelStopsDispatch covers the SubmitJobCtx plumbing at the pool
// level: a pre-cancelled context dispatches nothing, and a mid-flight
// cancellation returns promptly, dropping the pending replies without
// killing any worker.
func TestCtxCancelStopsDispatch(t *testing.T) {
	pool := startPool(t, Config{Workers: 2})

	// Pre-cancelled: not a single task may reach a worker (the op would
	// kill it, which is the proof).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.RunRemoteStage(ctx, opSpec("cancelled-stage", "htest.exit", nil, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled dispatch: got %v, want context.Canceled", err)
	}
	if got := pool.Stats().MachineCrashes; got != 0 {
		t.Fatalf("pre-cancelled stage still dispatched (crashes=%d)", got)
	}

	// Mid-flight: tasks are sleeping on workers; cancellation must
	// return well before they finish, and the workers stay alive.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel2()
	}()
	p0 := time.Now()
	_, err := pool.RunRemoteStage(ctx2, opSpec("sleepy-stage", "htest.sleep", nil, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(p0); elapsed > 250*time.Millisecond {
		t.Fatalf("cancelled stage returned after %v; should not wait for the sleep", elapsed)
	}
	if pool.LiveWorkers() != 2 {
		t.Fatalf("cancel killed a worker (live=%d)", pool.LiveWorkers())
	}

	// The abandoned sleepers finish on their own; the pool still serves.
	res, err := pool.RunRemoteStage(context.Background(), opSpec("after-cancel", "htest.ok", nil, 2))
	if err != nil {
		t.Fatalf("stage after cancellation: %v", err)
	}
	if len(res.Parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(res.Parts))
	}
}

// TestCloseDrainsEverything: after Close, no worker process may survive
// (drained or killed, but always reaped) and the pool's temp directory —
// socket, spill files — must be gone.
func TestCloseDrainsEverything(t *testing.T) {
	pool, err := Start(Config{Workers: 3, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := pool.RunRemoteStage(context.Background(), opSpec("pre-close", "htest.ok", nil, 3)); err != nil {
		t.Fatalf("stage: %v", err)
	}
	var pids []int
	for _, w := range pool.snapshotWorkers() {
		pids = append(pids, w.pid)
	}
	dir := pool.dir
	pool.Close()
	for _, pid := range pids {
		// After the reap the pid must be gone entirely — ESRCH, not a
		// zombie that still answers signal 0.
		if err := syscall.Kill(pid, 0); !errors.Is(err, syscall.ESRCH) {
			t.Fatalf("worker pid %d survived Close (kill(0) = %v)", pid, err)
		}
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("pool dir %s survived Close (stat err %v)", dir, err)
	}
	// Close is idempotent.
	pool.Close()
}

// TestRaceMarkDeadVsDispatch hammers dispatch while concurrently
// declaring workers dead — the -race interleaving test for the pending
// map, the slot list, and the respawn bookkeeping. Any per-stage outcome
// (success or quorum loss) is fine; the invariant is no race, no panic,
// no deadlock.
func TestRaceMarkDeadVsDispatch(t *testing.T) {
	pool := startPool(t, Config{Workers: 2, RespawnBackoff: time.Millisecond, RespawnBudget: 1000, QuorumWait: 5 * time.Second})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if ws := pool.liveWorkers(); len(ws) > 0 {
				pool.markDead(ws[i%len(ws)], fmt.Errorf("test: race kill %d", i))
			}
			// Paced so respawned workers get long enough to serve a few
			// tasks: the point is the interleaving, not a dead pool.
			time.Sleep(25 * time.Millisecond)
		}
	}()
	for i := 0; i < 15; i++ {
		_, err := pool.RunRemoteStage(context.Background(), opSpec("race-stage", "htest.ok", nil, 4))
		if err != nil {
			// Under a sustained external kill storm both degradations are
			// legitimate: quorum loss, or quarantine of a task that
			// happened to be in flight on three murdered incarnations.
			var q *engine.QuorumLostError
			var pe *engine.PoisonTaskError
			if !errors.As(err, &q) && !errors.As(err, &pe) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestWorkerDiesBetweenPutAndLaunch registers a block, kills a worker in
// the gap before dispatch, and launches a stage reading the block: the
// driver-resident block must survive the death and the stage must
// complete on the remaining fleet.
func TestWorkerDiesBetweenPutAndLaunch(t *testing.T) {
	pool := startPool(t, Config{Workers: 2, RespawnBackoff: 5 * time.Millisecond})
	id, err := pool.PutBlock(&engine.Vec[any]{})
	if err != nil {
		t.Fatalf("PutBlock: %v", err)
	}
	pool.markDead(pool.snapshotWorkers()[0], fmt.Errorf("test: died after PutBlock"))
	spec := &engine.RemoteStageSpec{Label: "put-then-die", Tasks: []engine.RemoteTask{{
		Part: 0,
		Root: &engine.RemoteNode{Op: "identity", Part: 0,
			Inputs: []engine.RemoteInput{{Kind: "block", Block: id}}},
	}}}
	res, err := pool.RunRemoteStage(context.Background(), spec)
	if err != nil {
		t.Fatalf("stage after worker death: %v", err)
	}
	if len(res.Parts) != 1 {
		t.Fatalf("got %d parts, want 1", len(res.Parts))
	}
}
