package procpool

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
)

// Config sizes a Pool. The zero value means defaults.
type Config struct {
	// Workers is how many worker slots the pool maintains (default
	// min(4, NumCPU)). A slot whose process dies is refilled by respawn
	// (unless DisableRespawn), so the fleet does not monotonically shrink
	// under sustained faults.
	Workers int
	// MemoryBudget bounds the driver-side block store in bytes before
	// frames spill to per-block temp files (default 256 MiB).
	MemoryBudget int64
	// HeartbeatEvery is how often workers beat (default 100ms);
	// HeartbeatTimeout is how long a silent worker stays presumed-live
	// before it is declared crashed (default 3s).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// HeartbeatCheck is how often the driver-side monitor scans for stale
	// workers (default HeartbeatTimeout/4, clamped to [10ms, 1s]).
	// Staleness itself is governed by HeartbeatTimeout; this interval
	// only bounds detection latency, so it deliberately does not track
	// HeartbeatEvery — a short beat period must not make the driver poll
	// needlessly hot.
	HeartbeatCheck time.Duration
	// TaskDeadline bounds how long one dispatched task may run (0 = no
	// deadline). A task that exceeds it on a live, heartbeating worker is
	// cancelled — the worker is killed and respawned, the task requeued —
	// so a wedged compute cannot stall a stage forever.
	TaskDeadline time.Duration
	// DisableRespawn turns worker respawn off: a dead worker stays dead,
	// as in the pre-self-healing pool. The crash-recovery tests use it to
	// pin the fleet size.
	DisableRespawn bool
	// RespawnBudget caps replacement workers over the pool's lifetime
	// (default 32); past it the pool degrades to quorum failure instead
	// of respawning a crash loop forever.
	RespawnBudget int
	// RespawnBackoff is the delay before refilling a dead slot (default
	// 50ms). It doubles per consecutive fast death of that slot (capped
	// at 2s); an incarnation that survived a while resets the doubling.
	RespawnBackoff time.Duration
	// MinLive is the dispatch quorum (default 1): a stage waits up to
	// QuorumWait (default 2s) for respawn to restore at least MinLive
	// workers, then fails with engine.QuorumLostError — which the engine
	// turns into a fetch-style failure for the bounded job retry, never a
	// deadlock.
	MinLive    int
	QuorumWait time.Duration
	// DrainTimeout bounds Close's graceful drain: workers get msgShutdown
	// and this long to exit before SIGKILL (default 2s).
	DrainTimeout time.Duration
	// KillAfterTasks, when >0, SIGKILLs the assigned worker immediately
	// after the Nth task dispatch of the pool's lifetime (1-based) — the
	// deterministic mid-stage crash the recovery tests inject. For
	// repeating kills and transport faults, use Faults.
	KillAfterTasks int
	// Faults is the seeded fault-injection plan (chaos.go): repeating
	// worker kills, delayed/dropped/torn data-plane frames, spill-file
	// corruption. Zero value injects nothing.
	Faults FaultPlan
	// Events, when non-nil, receives the pool's fault events — kinds
	// "crash", "respawn", "quarantine", "corrupt-block" — timed on the
	// pool clock, so EXPLAIN ANALYZE renders real process churn next to
	// the simulator's crash/rejoin vocabulary.
	Events *obs.Recorder
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
		if n := runtime.NumCPU(); n < c.Workers {
			c.Workers = n
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.RespawnBudget <= 0 {
		c.RespawnBudget = 32
	}
	if c.RespawnBackoff <= 0 {
		c.RespawnBackoff = 50 * time.Millisecond
	}
	if c.MinLive <= 0 {
		c.MinLive = 1
	}
	if c.QuorumWait <= 0 {
		c.QuorumWait = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
}

// heartbeatCheck is the monitor's scan interval (see Config.HeartbeatCheck).
func (c *Config) heartbeatCheck() time.Duration {
	if c.HeartbeatCheck > 0 {
		return c.HeartbeatCheck
	}
	d := c.HeartbeatTimeout / 4
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// quarantineAfter is K in the poison-task rule: a task that kills (or
// deadline-times-out on) this many distinct worker incarnations is
// quarantined — the stage fails fast with the operator chain named instead
// of the task serially destroying the fleet.
const quarantineAfter = 3

// taskReply is what a dispatched task resolves to: a batch frame or an
// error message. died distinguishes a worker death while the task was in
// flight (synthesized by markDead; the task takes the blame) from an error
// the worker itself reported (deterministic compute failure).
type taskReply struct {
	payload []byte
	errMsg  string
	died    bool
}

// workerProc is the driver's handle on one worker incarnation. A respawn
// installs a fresh workerProc (new gen) into the same slot; the old one
// stays dead forever, so in-flight dispatch goroutines holding it observe
// a stable corpse.
type workerProc struct {
	idx    int    // slot index (stable across respawns)
	gen    uint64 // pool-unique incarnation id (quarantine blame tracking)
	pid    int
	cmd    *exec.Cmd
	conn   net.Conn
	wmu    sync.Mutex    // serializes frame writes to conn
	exited chan struct{} // closed once cmd.Wait returned (process reaped)

	mu       sync.Mutex
	dead     bool
	deadErr  error
	lastBeat time.Time
	pending  map[uint64]chan taskReply // in-flight task id -> reply
}

func (w *workerProc) send(typ byte, body []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, typ, body)
}

func (w *workerProc) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// pendingSpawn is a worker process that has been started but has not yet
// completed the socket handshake. handshake resolves done with the
// installed workerProc, or nil when the handshake failed.
type pendingSpawn struct {
	idx  int
	pid  int
	cmd  *exec.Cmd
	done chan *workerProc
}

// poolOutput mirrors the simulator's shuffle-residency bookkeeping: each
// partition records the worker index that "holds" it, or -(idx+1) once
// that worker crashed. The actual bytes stay on the driver's frontier —
// what this models is which results a real cluster would have lost, so
// the engine's lineage recovery is exercised by real process deaths.
type poolOutput struct {
	locs    []int
	counted bool // FetchFailures already incremented for this output
}

// Pool is a process-pool backend for engine sessions: real worker
// processes run portable stages, wall-clock replaces the simulated clock,
// and worker crashes surface as fetch failures the engine recovers from.
// Create with Start, stop with Close. A Pool may serve many sequential
// sessions (the engine runs one stage at a time per session; Pools are
// not meant to be shared by concurrent sessions).
//
// The pool self-heals: dead workers are re-exec'd with backoff (health.go)
// up to a budget, so sustained faults churn the fleet instead of shrinking
// it to zero.
type Pool struct {
	cfg   Config
	dir   string
	exe   string // re-exec path for respawns
	sock  string
	ln    net.Listener
	store *blockStore
	start time.Time

	stopOnce sync.Once
	stopCh   chan struct{}

	taskSeq   uint64 // atomic: wire task ids
	genSeq    uint64 // atomic: worker incarnation ids
	frameSeq  uint64 // atomic: data-plane frames sent (fault-plan cadence)
	nDispatch int64  // atomic: lifetime dispatch count (kill hooks)
	shipped   int64  // atomic: bytes served to + returned by workers
	remoteSt  int64  // atomic: remote stages completed
	remoteTk  int64  // atomic: remote tasks completed
	localPut  int64  // atomic: blocks stored via PutBlock

	mu          sync.Mutex
	closed      bool
	workerList  []*workerProc // fixed-size slots; entries replaced on respawn
	spawning    map[int]*pendingSpawn
	slotDeaths  []int // consecutive fast deaths per slot (backoff doubling)
	slotBorn    []time.Time
	respawnsIn  int // respawns in flight (quorum wait looks at this)
	respawnsUse int // respawns spent against the budget
	respawns    int // respawns completed
	quarantines int
	stats       cluster.Stats
	clockOffset float64
	lastClock   float64
	pinned      int64
	outputs     map[cluster.OutputID]*poolOutput
	nextOut     cluster.OutputID
	rrOut       int // round-robin cursor for RegisterOutput placement
}

// The three engine facets the pool provides.
var (
	_ engine.Backend      = (*Pool)(nil)
	_ engine.Residency    = (*Pool)(nil)
	_ engine.RemoteRunner = (*Pool)(nil)
)

// Start spawns the workers (re-execs of the current binary; see IsWorker)
// and waits for all of them to complete the socket handshake.
func Start(cfg Config) (*Pool, error) {
	cfg.defaults()
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	dir, err := os.MkdirTemp("", "matpool-")
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	sock := filepath.Join(dir, "pool.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("procpool: %w", err)
	}
	p := &Pool{
		cfg:        cfg,
		dir:        dir,
		exe:        exe,
		sock:       sock,
		ln:         ln,
		store:      newBlockStore(dir, cfg.MemoryBudget),
		start:      time.Now(),
		stopCh:     make(chan struct{}),
		workerList: make([]*workerProc, cfg.Workers),
		spawning:   map[int]*pendingSpawn{},
		slotDeaths: make([]int, cfg.Workers),
		slotBorn:   make([]time.Time, cfg.Workers),
		outputs:    map[cluster.OutputID]*poolOutput{},
	}
	p.store.damage = p.spillDamage()
	fail := func(err error) (*Pool, error) {
		p.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		if _, err := p.spawnInto(i); err != nil {
			return fail(err)
		}
	}
	ul := ln.(*net.UnixListener)
	for i := 0; i < cfg.Workers; i++ {
		ul.SetDeadline(time.Now().Add(10 * time.Second))
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("procpool: worker %d never connected: %w", i, err))
		}
		if _, err := p.handshake(conn); err != nil {
			return fail(err)
		}
	}
	ul.SetDeadline(time.Time{})
	go p.monitor()
	go p.acceptLoop()
	return p, nil
}

// Close shuts the pool down gracefully: every live worker gets a shutdown
// frame and DrainTimeout to exit on its own; stragglers are SIGKILLed.
// Every spawned process is reaped before Close returns (no orphans, no
// zombies), spilled block files and the socket directory are removed.
// Teardown deaths are not counted as crashes.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := make([]*workerProc, 0, len(p.workerList))
	for _, w := range p.workerList {
		if w != nil {
			workers = append(workers, w)
		}
	}
	spawning := p.spawning
	p.spawning = map[int]*pendingSpawn{}
	p.mu.Unlock()
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.ln.Close()
	// Processes that never completed the handshake just die (and are
	// reaped — they have no waitWorker goroutine).
	for _, ps := range spawning {
		if ps.cmd.Process != nil {
			ps.cmd.Process.Kill()
		}
		go ps.cmd.Wait()
	}
	// Graceful drain: ask, then wait bounded.
	for _, w := range workers {
		if !w.isDead() {
			w.send(msgShutdown, nil)
		}
	}
	deadline := time.Now().Add(p.cfg.DrainTimeout)
	for _, w := range workers {
		select {
		case <-w.exited:
		case <-time.After(time.Until(deadline)):
		}
	}
	// The hard way for stragglers; then wait for the reap so no zombie
	// outlives Close (SIGKILL cannot be ignored, so this terminates).
	for _, w := range workers {
		w.conn.Close()
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	}
	for _, w := range workers {
		<-w.exited
	}
	p.store.clear()
	os.RemoveAll(p.dir)
}

// readLoop demuxes one worker's incoming frames. Any frame proves the
// worker alive; a read error means it died (or the pool is closing).
func (p *Pool) readLoop(w *workerProc) {
	for {
		typ, body, err := readFrame(w.conn)
		if err != nil {
			p.markDead(w, fmt.Errorf("procpool: worker %d connection lost: %v", w.idx, err))
			return
		}
		w.mu.Lock()
		w.lastBeat = time.Now()
		w.mu.Unlock()
		switch typ {
		case msgHeartbeat:
			// lastBeat above is the whole message.
		case msgFetchBlock:
			id, perr := parseBlockReq(body)
			if perr != nil {
				p.markDead(w, fmt.Errorf("procpool: worker %d sent a bad fetch: %v", w.idx, perr))
				return
			}
			data, gerr := p.store.get(id)
			var out []byte
			if gerr != nil {
				var bl *engine.BlockLostError
				if errors.As(gerr, &bl) {
					// Integrity failure on a spilled block: count it like
					// a failed shuffle fetch and let the error string
					// cross the wire — the driver re-types it via
					// ParseBlockLost and lineage recomputes the block.
					p.mu.Lock()
					p.stats.FetchFailures++
					p.mu.Unlock()
					p.event("corrupt-block", w.idx, gerr.Error())
				}
				out = encodeTagged(id, false, []byte(gerr.Error()))
			} else {
				out = encodeTagged(id, true, data)
				atomic.AddInt64(&p.shipped, int64(len(data)))
			}
			if p.sendData(w, msgBlockData, out) != nil {
				return // the write error side will mark it dead via next read
			}
		case msgTaskResult:
			id, ok, rest, perr := parseTagged(body)
			if perr != nil {
				p.markDead(w, fmt.Errorf("procpool: worker %d sent a bad result: %v", w.idx, perr))
				return
			}
			w.mu.Lock()
			ch := w.pending[id]
			delete(w.pending, id)
			w.mu.Unlock()
			if ch != nil {
				if ok {
					ch <- taskReply{payload: rest}
				} else {
					ch <- taskReply{errMsg: string(rest)}
				}
			}
		}
	}
}

// waitWorker reaps the worker process; an exit before Close is a crash.
func (p *Pool) waitWorker(w *workerProc) {
	err := w.cmd.Wait()
	p.markDead(w, fmt.Errorf("procpool: worker %d exited: %v", w.idx, err))
	close(w.exited)
}

// markDead records a worker crash exactly once: fail its in-flight tasks,
// cut the connection, make sure the process is gone, mark every shuffle
// partition registered on it lost — the state CheckFetch turns into the
// FetchFailedError lineage recovery rewinds from — and schedule a
// replacement worker for the slot (health.go).
func (p *Pool) markDead(w *workerProc, reason error) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	w.deadErr = reason
	pend := w.pending
	w.pending = map[uint64]chan taskReply{}
	w.mu.Unlock()

	w.conn.Close()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	for _, ch := range pend {
		ch <- taskReply{errMsg: reason.Error(), died: true} // buffered, never blocks
	}

	p.mu.Lock()
	closed := p.closed
	if !closed {
		p.stats.MachineCrashes++
		for _, out := range p.outputs {
			for i, loc := range out.locs {
				if loc == w.idx {
					out.locs[i] = -(w.idx + 1)
				}
			}
		}
		if !p.cfg.DisableRespawn {
			p.scheduleRespawnLocked(w.idx)
		}
	}
	p.mu.Unlock()
	if !closed {
		p.event("crash", w.idx, reason.Error())
	}
}

// liveWorkers snapshots the currently live workers under the pool lock.
func (p *Pool) liveWorkers() []*workerProc {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveLocked()
}

func (p *Pool) liveLocked() []*workerProc {
	live := make([]*workerProc, 0, len(p.workerList))
	for _, w := range p.workerList {
		if w != nil && !w.isDead() {
			live = append(live, w)
		}
	}
	return live
}

// snapshotWorkers copies the current slot contents (dead or alive).
func (p *Pool) snapshotWorkers() []*workerProc {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := make([]*workerProc, 0, len(p.workerList))
	for _, w := range p.workerList {
		if w != nil {
			ws = append(ws, w)
		}
	}
	return ws
}

// LiveWorkers reports how many workers are currently up.
func (p *Pool) LiveWorkers() int { return len(p.liveWorkers()) }

// Workers reports the pool's slot count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workerList)
}

// RemoteStages and RemoteTasks count what actually ran in worker
// processes (the A/B tests assert they are nonzero: a silently
// driver-local run would still produce identical values).
func (p *Pool) RemoteStages() int { return int(atomic.LoadInt64(&p.remoteSt)) }

// RemoteTasks counts tasks completed by worker processes.
func (p *Pool) RemoteTasks() int { return int(atomic.LoadInt64(&p.remoteTk)) }

// BytesShipped totals the encoded frames that crossed process boundaries.
func (p *Pool) BytesShipped() int64 { return atomic.LoadInt64(&p.shipped) }

// Spills reports blocks (and bytes) the driver store spilled to disk.
func (p *Pool) Spills() (blocks int, bytes int64) { return p.store.spillStats() }

// Respawns reports how many replacement workers completed their handshake.
func (p *Pool) Respawns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.respawns
}

// Quarantines reports how many poison tasks were quarantined.
func (p *Pool) Quarantines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantines
}

// ---- engine.RemoteRunner ----

// PutBlock frames b with the batch codec and stores it for workers to
// fetch (spilling to disk over the store's budget).
func (p *Pool) PutBlock(b engine.Batch) (uint64, error) {
	frame, err := engine.EncodeBatch(nil, b)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&p.localPut, 1)
	return p.store.put(frame)
}

// taskVerdict classifies one runTaskOn outcome for the dispatch loop.
type taskVerdict int

const (
	taskOK            taskVerdict = iota
	taskFailed                    // worker-reported deterministic error: fails the stage
	taskDied                      // worker died mid-task (crash or deadline): blame + requeue
	taskNotDispatched             // worker was already dead: requeue blame-free
	taskCancelled                 // submission context cancelled
)

// RunRemoteStage distributes the spec's tasks round-robin over live
// workers and collects the decoded result partitions. A task whose worker
// dies mid-flight takes the blame and is re-dispatched on a survivor —
// until quarantineAfter distinct worker incarnations died under it, at
// which point it is quarantined (engine.PoisonTaskError; the pool stays
// live). A dead worker's untouched share requeues blame-free. When live
// workers fall below the quorum the stage waits bounded for respawn, then
// fails with engine.QuorumLostError. Ctx cancellation stops dispatching
// queued tasks and drops the pending replies.
func (p *Pool) RunRemoteStage(ctx context.Context, spec *engine.RemoteStageSpec) (*engine.RemoteStageResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(spec.Tasks) == 0 {
		return &engine.RemoteStageResult{}, nil
	}
	shippedBefore := atomic.LoadInt64(&p.shipped)
	parts := make([]engine.Batch, len(spec.Tasks))
	failedOn := make([]map[uint64]bool, len(spec.Tasks)) // task -> worker gens it died on
	queue := make([]int, len(spec.Tasks))
	for i := range queue {
		queue[i] = i
	}
	var resMu sync.Mutex
	ranOn := map[int]bool{}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		live, err := p.waitQuorum(ctx, spec.Label)
		if err != nil {
			return nil, err
		}
		assign := make([][]int, len(live))
		for k, ti := range queue {
			assign[k%len(live)] = append(assign[k%len(live)], ti)
		}
		var requeue []int
		var permErr error
		setPermErr := func(err error) {
			if permErr == nil {
				permErr = err
			}
		}
		var wg sync.WaitGroup
		for wi := range live {
			if len(assign[wi]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w *workerProc, list []int) {
				defer wg.Done()
				for li, ti := range list {
					payload, verdict, err := p.runTaskOn(ctx, w, &spec.Tasks[ti])
					switch verdict {
					case taskOK:
						b, _, derr := engine.DecodeBatch(payload)
						if derr != nil {
							resMu.Lock()
							setPermErr(fmt.Errorf("procpool: stage %q task %d result: %v", spec.Label, spec.Tasks[ti].Part, derr))
							resMu.Unlock()
							return
						}
						atomic.AddInt64(&p.shipped, int64(len(payload)))
						resMu.Lock()
						parts[ti] = b
						ranOn[w.idx] = true
						resMu.Unlock()
					case taskDied:
						// Blame exactly the in-flight task; this worker's
						// untouched share requeues without penalty.
						resMu.Lock()
						if failedOn[ti] == nil {
							failedOn[ti] = map[uint64]bool{}
						}
						failedOn[ti][w.gen] = true
						if len(failedOn[ti]) >= quarantineAfter {
							setPermErr(&engine.PoisonTaskError{
								Stage:   spec.Label,
								Part:    spec.Tasks[ti].Part,
								Ops:     spec.Tasks[ti].OpChain(),
								Workers: len(failedOn[ti]),
							})
						} else {
							requeue = append(requeue, ti)
						}
						requeue = append(requeue, list[li+1:]...)
						resMu.Unlock()
						return
					case taskNotDispatched:
						resMu.Lock()
						requeue = append(requeue, list[li:]...)
						resMu.Unlock()
						return
					case taskCancelled:
						resMu.Lock()
						setPermErr(err)
						resMu.Unlock()
						return
					default: // taskFailed
						resMu.Lock()
						if id, reason, ok := engine.ParseBlockLost(err.Error()); ok {
							setPermErr(&engine.BlockLostError{Block: id, Reason: reason})
						} else {
							setPermErr(fmt.Errorf("procpool: stage %q task %d: %v", spec.Label, spec.Tasks[ti].Part, err))
						}
						resMu.Unlock()
						return
					}
				}
			}(live[wi], assign[wi])
		}
		wg.Wait()
		if permErr != nil {
			var pe *engine.PoisonTaskError
			if errors.As(permErr, &pe) {
				p.noteQuarantine(pe)
			}
			return nil, permErr
		}
		queue = requeue
	}
	atomic.AddInt64(&p.remoteSt, 1)
	atomic.AddInt64(&p.remoteTk, int64(len(spec.Tasks)))
	return &engine.RemoteStageResult{
		Parts:        parts,
		BytesShipped: atomic.LoadInt64(&p.shipped) - shippedBefore,
		Workers:      len(ranOn),
	}, nil
}

// runTaskOn ships one task to w and waits for its reply, the worker's
// death (which resolves the reply with died=true), the task deadline, or
// ctx cancellation. The kill hooks (KillAfterTasks, FaultPlan) fire
// synchronously here so the crash — and the lost-output bookkeeping — is
// ordered before any later stage of the run, making recovery tests
// deterministic.
func (p *Pool) runTaskOn(ctx context.Context, w *workerProc, t *engine.RemoteTask) ([]byte, taskVerdict, error) {
	id := atomic.AddUint64(&p.taskSeq, 1)
	body, err := encodeTask(id, t)
	if err != nil {
		return nil, taskFailed, err
	}
	ch := make(chan taskReply, 1)
	w.mu.Lock()
	if w.dead {
		err := w.deadErr
		w.mu.Unlock()
		return nil, taskNotDispatched, err
	}
	w.pending[id] = ch
	w.mu.Unlock()
	if err := p.sendData(w, msgTask, body); err != nil {
		p.markDead(w, fmt.Errorf("procpool: worker %d send failed: %v", w.idx, err))
		return nil, taskNotDispatched, err
	}
	n := atomic.AddInt64(&p.nDispatch, 1)
	if k := p.cfg.KillAfterTasks; k > 0 && n == int64(k) {
		p.markDead(w, fmt.Errorf("procpool: worker %d killed by test hook after task %d", w.idx, k))
	}
	if p.cfg.Faults.killsAt(uint64(n)) {
		p.markDead(w, fmt.Errorf("procpool: worker %d killed by fault plan at dispatch %d", w.idx, n))
	}
	var deadlineC <-chan time.Time
	if p.cfg.TaskDeadline > 0 {
		tm := time.NewTimer(p.cfg.TaskDeadline)
		defer tm.Stop()
		deadlineC = tm.C
	}
	select {
	case r := <-ch:
		switch {
		case r.errMsg == "":
			return r.payload, taskOK, nil
		case r.died:
			return nil, taskDied, fmt.Errorf("%s", r.errMsg)
		default:
			return nil, taskFailed, fmt.Errorf("%s", r.errMsg)
		}
	case <-ctx.Done():
		// The job is cancelled: drop the pending reply — nobody wants it
		// — and leave the worker alone (it finishes or dies on its own).
		w.mu.Lock()
		delete(w.pending, id)
		w.mu.Unlock()
		return nil, taskCancelled, ctx.Err()
	case <-deadlineC:
		// The worker heartbeats but the task overran its deadline. A
		// single-threaded worker has no task-level cancel, so the only
		// reliable one is killing the process: respawn replaces it, the
		// task takes the blame (and is quarantined if it keeps doing
		// this), the worker's other queued tasks requeue blame-free.
		reason := fmt.Errorf("procpool: worker %d: task %d exceeded its %v deadline; cancelled and requeued", w.idx, t.Part, p.cfg.TaskDeadline)
		p.markDead(w, reason)
		return nil, taskDied, reason
	}
}

// ---- engine.Backend ----

// StartJob counts the job; a real pool has no launch overhead to charge.
func (p *Pool) StartJob() {
	p.mu.Lock()
	p.stats.Jobs++
	p.mu.Unlock()
}

// RunStageReport reports the wall-clock the stage actually took (the
// delta since the previous report) and counts its tasks. The simulated
// per-task costs are ignored: this backend measures instead of modeling.
func (p *Pool) RunStageReport(tasks []cluster.Task) (cluster.StageReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Stages++
	p.stats.Tasks += len(tasks)
	now := p.clockLocked()
	sec := now - p.lastClock
	p.lastClock = now
	p.stats.BusySeconds += sec
	return cluster.StageReport{
		Tasks:       len(tasks),
		Waves:       1,
		Makespan:    sec,
		Seconds:     sec,
		BusySeconds: sec,
	}, nil
}

// Broadcast pins bytes for the current job (bookkeeping only: actual
// broadcast batches ship as ordinary blocks, cached per worker).
func (p *Pool) Broadcast(bytes int64) error {
	p.mu.Lock()
	p.stats.Broadcasts++
	p.pinned += bytes
	p.mu.Unlock()
	return nil
}

// Unpin releases part of the pinned broadcast bytes early.
func (p *Pool) Unpin(bytes int64) {
	p.mu.Lock()
	p.pinned -= bytes
	p.mu.Unlock()
}

// ReleaseBroadcasts is the end-of-job hook: the job's blocks are dead, so
// the store empties and workers drop their caches.
func (p *Pool) ReleaseBroadcasts() {
	p.mu.Lock()
	p.pinned = 0
	p.mu.Unlock()
	p.store.clear()
	for _, w := range p.liveWorkers() {
		w.send(msgClearCache, nil)
	}
}

// Clock is wall time since the pool started, plus retry-backoff advances.
func (p *Pool) Clock() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clockLocked()
}

func (p *Pool) clockLocked() float64 {
	return time.Since(p.start).Seconds() + p.clockOffset
}

// Stats returns the pool's accumulated counters.
func (p *Pool) Stats() cluster.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ---- engine.Residency ----

// RegisterOutput places a completed stage's partitions round-robin over
// the currently live workers, mirroring the simulator's machine
// placement. If every worker is down the output is born lost; the next
// CheckFetch fails and recovery (or the job's error path) takes over.
// Liveness is sampled under the pool lock: markDead marks lost partitions
// under the same lock, so an output can never land on a worker whose
// death sweep already ran (it would be stranded "live" on a corpse).
func (p *Pool) RegisterOutput(parts int) cluster.OutputID {
	p.mu.Lock()
	defer p.mu.Unlock()
	liveIdx := []int{}
	for _, w := range p.workerList {
		if w != nil && !w.isDead() {
			liveIdx = append(liveIdx, w.idx)
		}
	}
	p.nextOut++
	id := p.nextOut
	locs := make([]int, parts)
	for i := range locs {
		if len(liveIdx) == 0 {
			locs[i] = -1
		} else {
			locs[i] = liveIdx[(p.rrOut+i)%len(liveIdx)]
		}
	}
	p.rrOut += parts
	p.outputs[id] = &poolOutput{locs: locs}
	return id
}

// CheckFetch reports a *cluster.FetchFailedError if any partition of the
// output was registered on a worker that has since died. Each output
// counts at most one fetch failure, like the simulator.
func (p *Pool) CheckFetch(id cluster.OutputID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out, ok := p.outputs[id]
	if !ok {
		return nil
	}
	var lost []int
	machine := 0
	for i, loc := range out.locs {
		if loc < 0 {
			lost = append(lost, i)
			machine = -loc - 1
		}
	}
	if len(lost) == 0 {
		return nil
	}
	if !out.counted {
		out.counted = true
		p.stats.FetchFailures++
	}
	return &cluster.FetchFailedError{Machine: machine, Parts: lost, Total: len(out.locs)}
}

// DropOutput forgets an output (its stage was rewound or recomputed).
func (p *Pool) DropOutput(id cluster.OutputID) {
	p.mu.Lock()
	delete(p.outputs, id)
	p.mu.Unlock()
}

// Advance adds recovery-backoff seconds to the pool clock.
func (p *Pool) Advance(dt float64) {
	p.mu.Lock()
	p.clockOffset += dt
	p.mu.Unlock()
}
