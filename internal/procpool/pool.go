package procpool

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine"
)

// Config sizes a Pool. The zero value means defaults.
type Config struct {
	// Workers is how many worker processes to spawn (default
	// min(4, NumCPU)).
	Workers int
	// MemoryBudget bounds the driver-side block store in bytes before
	// frames spill to per-block temp files (default 256 MiB).
	MemoryBudget int64
	// HeartbeatEvery is how often workers beat (default 100ms);
	// HeartbeatTimeout is how long a silent worker stays presumed-live
	// before it is declared crashed (default 3s).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// KillAfterTasks, when >0, SIGKILLs the assigned worker immediately
	// after the Nth task dispatch of the pool's lifetime (1-based) — the
	// deterministic mid-stage crash the recovery tests inject.
	KillAfterTasks int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
		if n := runtime.NumCPU(); n < c.Workers {
			c.Workers = n
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
}

// maxTaskAttempts bounds per-task re-dispatch after worker deaths; a task
// that outlives this many workers fails the stage (which then runs
// driver-local).
const maxTaskAttempts = 3

// taskReply is what a dispatched task resolves to: a batch frame or an
// error message (from the worker, or synthesized when it died).
type taskReply struct {
	payload []byte
	errMsg  string
}

// workerProc is the driver's handle on one worker process.
type workerProc struct {
	idx  int
	pid  int
	cmd  *exec.Cmd
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes to conn

	mu       sync.Mutex
	dead     bool
	deadErr  error
	lastBeat time.Time
	pending  map[uint64]chan taskReply // in-flight task id -> reply
}

func (w *workerProc) send(typ byte, body []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, typ, body)
}

func (w *workerProc) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// poolOutput mirrors the simulator's shuffle-residency bookkeeping: each
// partition records the worker index that "holds" it, or -(idx+1) once
// that worker crashed. The actual bytes stay on the driver's frontier —
// what this models is which results a real cluster would have lost, so
// the engine's lineage recovery is exercised by real process deaths.
type poolOutput struct {
	locs    []int
	counted bool // FetchFailures already incremented for this output
}

// Pool is a process-pool backend for engine sessions: real worker
// processes run portable stages, wall-clock replaces the simulated clock,
// and worker crashes surface as fetch failures the engine recovers from.
// Create with Start, stop with Close. A Pool may serve many sequential
// sessions (the engine runs one stage at a time per session; Pools are
// not meant to be shared by concurrent sessions).
type Pool struct {
	cfg   Config
	dir   string
	ln    net.Listener
	store *blockStore
	start time.Time

	stopOnce sync.Once
	stopCh   chan struct{}

	taskSeq    uint64 // atomic: wire task ids
	nDispatch  int64  // atomic: lifetime dispatch count (KillAfterTasks)
	shipped    int64  // atomic: bytes served to + returned by workers
	remoteSt   int64  // atomic: remote stages completed
	remoteTk   int64  // atomic: remote tasks completed
	localPut   int64  // atomic: blocks stored via PutBlock
	workerList []*workerProc

	mu          sync.Mutex
	closed      bool
	stats       cluster.Stats
	clockOffset float64
	lastClock   float64
	pinned      int64
	outputs     map[cluster.OutputID]*poolOutput
	nextOut     cluster.OutputID
	rrOut       int // round-robin cursor for RegisterOutput placement
}

// The three engine facets the pool provides.
var (
	_ engine.Backend      = (*Pool)(nil)
	_ engine.Residency    = (*Pool)(nil)
	_ engine.RemoteRunner = (*Pool)(nil)
)

// Start spawns the workers (re-execs of the current binary; see IsWorker)
// and waits for all of them to complete the socket handshake.
func Start(cfg Config) (*Pool, error) {
	cfg.defaults()
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	dir, err := os.MkdirTemp("", "matpool-")
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	sock := filepath.Join(dir, "pool.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("procpool: %w", err)
	}
	p := &Pool{
		cfg:     cfg,
		dir:     dir,
		ln:      ln,
		store:   newBlockStore(dir, cfg.MemoryBudget),
		start:   time.Now(),
		stopCh:  make(chan struct{}),
		outputs: map[cluster.OutputID]*poolOutput{},
	}
	cmds := make(map[int]*exec.Cmd, cfg.Workers)
	fail := func(err error) (*Pool, error) {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		ln.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), socketEnv+"="+sock)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("procpool: spawn worker %d: %w", i, err))
		}
		cmds[cmd.Process.Pid] = cmd
	}
	ul := ln.(*net.UnixListener)
	for i := 0; i < cfg.Workers; i++ {
		ul.SetDeadline(time.Now().Add(10 * time.Second))
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("procpool: worker %d never connected: %w", i, err))
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		typ, body, err := readFrame(conn)
		if err != nil || typ != msgHello {
			conn.Close()
			return fail(fmt.Errorf("procpool: worker %d bad hello (type %d): %v", i, typ, err))
		}
		pid, err := parseHello(body)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("procpool: worker %d hello: %w", i, err))
		}
		conn.SetReadDeadline(time.Time{})
		w := &workerProc{
			idx:      i,
			pid:      pid,
			cmd:      cmds[pid], // nil only if something else dialed our socket
			conn:     conn,
			lastBeat: time.Now(),
			pending:  map[uint64]chan taskReply{},
		}
		if w.cmd == nil {
			conn.Close()
			return fail(fmt.Errorf("procpool: connection from unknown pid %d", pid))
		}
		if err := w.send(msgHelloAck, encodeHelloAck(i, cfg.HeartbeatEvery)); err != nil {
			conn.Close()
			return fail(fmt.Errorf("procpool: worker %d ack: %w", i, err))
		}
		p.workerList = append(p.workerList, w)
	}
	ul.SetDeadline(time.Time{})
	for _, w := range p.workerList {
		go p.readLoop(w)
		go p.waitWorker(w)
	}
	go p.monitor()
	return p, nil
}

// Close shuts the pool down: workers get a shutdown frame, then SIGKILL.
// Teardown deaths are not counted as crashes.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.stopOnce.Do(func() { close(p.stopCh) })
	for _, w := range p.workerList {
		w.send(msgShutdown, nil)
	}
	p.ln.Close()
	for _, w := range p.workerList {
		w.conn.Close()
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	}
	p.store.clear()
	os.RemoveAll(p.dir)
}

// readLoop demuxes one worker's incoming frames. Any frame proves the
// worker alive; a read error means it died (or the pool is closing).
func (p *Pool) readLoop(w *workerProc) {
	for {
		typ, body, err := readFrame(w.conn)
		if err != nil {
			p.markDead(w, fmt.Errorf("procpool: worker %d connection lost: %v", w.idx, err))
			return
		}
		w.mu.Lock()
		w.lastBeat = time.Now()
		w.mu.Unlock()
		switch typ {
		case msgHeartbeat:
			// lastBeat above is the whole message.
		case msgFetchBlock:
			id, perr := parseBlockReq(body)
			if perr != nil {
				p.markDead(w, fmt.Errorf("procpool: worker %d sent a bad fetch: %v", w.idx, perr))
				return
			}
			data, gerr := p.store.get(id)
			var out []byte
			if gerr != nil {
				out = encodeTagged(id, false, []byte(gerr.Error()))
			} else {
				out = encodeTagged(id, true, data)
				atomic.AddInt64(&p.shipped, int64(len(data)))
			}
			if w.send(msgBlockData, out) != nil {
				return // the write error side will mark it dead via next read
			}
		case msgTaskResult:
			id, ok, rest, perr := parseTagged(body)
			if perr != nil {
				p.markDead(w, fmt.Errorf("procpool: worker %d sent a bad result: %v", w.idx, perr))
				return
			}
			w.mu.Lock()
			ch := w.pending[id]
			delete(w.pending, id)
			w.mu.Unlock()
			if ch != nil {
				if ok {
					ch <- taskReply{payload: rest}
				} else {
					ch <- taskReply{errMsg: string(rest)}
				}
			}
		}
	}
}

// waitWorker reaps the worker process; an exit before Close is a crash.
func (p *Pool) waitWorker(w *workerProc) {
	err := w.cmd.Wait()
	p.markDead(w, fmt.Errorf("procpool: worker %d exited: %v", w.idx, err))
}

// monitor declares workers dead when their heartbeats stop — the hung or
// stopped process case SIGKILL'd crashes don't exercise.
func (p *Pool) monitor() {
	t := time.NewTicker(p.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
			for _, w := range p.workerList {
				w.mu.Lock()
				stale := !w.dead && time.Since(w.lastBeat) > p.cfg.HeartbeatTimeout
				w.mu.Unlock()
				if stale {
					p.markDead(w, fmt.Errorf("procpool: worker %d heartbeat timed out", w.idx))
				}
			}
		}
	}
}

// markDead records a worker crash exactly once: fail its in-flight tasks,
// cut the connection, make sure the process is gone, and mark every
// shuffle partition registered on it lost — the state CheckFetch turns
// into the FetchFailedError lineage recovery rewinds from.
func (p *Pool) markDead(w *workerProc, reason error) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	w.deadErr = reason
	pend := w.pending
	w.pending = map[uint64]chan taskReply{}
	w.mu.Unlock()

	w.conn.Close()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	for _, ch := range pend {
		ch <- taskReply{errMsg: reason.Error()} // buffered, never blocks
	}

	p.mu.Lock()
	if !p.closed {
		p.stats.MachineCrashes++
		for _, out := range p.outputs {
			for i, loc := range out.locs {
				if loc == w.idx {
					out.locs[i] = -(w.idx + 1)
				}
			}
		}
	}
	p.mu.Unlock()
}

func (p *Pool) liveWorkers() []*workerProc {
	live := make([]*workerProc, 0, len(p.workerList))
	for _, w := range p.workerList {
		if !w.isDead() {
			live = append(live, w)
		}
	}
	return live
}

// LiveWorkers reports how many workers are still up.
func (p *Pool) LiveWorkers() int { return len(p.liveWorkers()) }

// Workers reports how many workers were spawned.
func (p *Pool) Workers() int { return len(p.workerList) }

// RemoteStages and RemoteTasks count what actually ran in worker
// processes (the A/B tests assert they are nonzero: a silently
// driver-local run would still produce identical values).
func (p *Pool) RemoteStages() int { return int(atomic.LoadInt64(&p.remoteSt)) }

// RemoteTasks counts tasks completed by worker processes.
func (p *Pool) RemoteTasks() int { return int(atomic.LoadInt64(&p.remoteTk)) }

// BytesShipped totals the encoded frames that crossed process boundaries.
func (p *Pool) BytesShipped() int64 { return atomic.LoadInt64(&p.shipped) }

// Spills reports blocks (and bytes) the driver store spilled to disk.
func (p *Pool) Spills() (blocks int, bytes int64) { return p.store.spillStats() }

// ---- engine.RemoteRunner ----

// PutBlock frames b with the batch codec and stores it for workers to
// fetch (spilling to disk over the store's budget).
func (p *Pool) PutBlock(b engine.Batch) (uint64, error) {
	frame, err := engine.EncodeBatch(nil, b)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&p.localPut, 1)
	return p.store.put(frame)
}

// RunRemoteStage distributes the spec's tasks round-robin over live
// workers and collects the decoded result partitions. Tasks whose worker
// dies mid-flight are re-dispatched on surviving workers (bounded by
// maxTaskAttempts); deterministic task errors and worker exhaustion fail
// the stage, which the engine then runs driver-local.
func (p *Pool) RunRemoteStage(spec *engine.RemoteStageSpec) (*engine.RemoteStageResult, error) {
	if len(spec.Tasks) == 0 {
		return &engine.RemoteStageResult{}, nil
	}
	shippedBefore := atomic.LoadInt64(&p.shipped)
	parts := make([]engine.Batch, len(spec.Tasks))
	attempts := make([]int, len(spec.Tasks))
	queue := make([]int, len(spec.Tasks))
	for i := range queue {
		queue[i] = i
	}
	var resMu sync.Mutex
	ranOn := map[int]bool{}
	for len(queue) > 0 {
		live := p.liveWorkers()
		if len(live) == 0 {
			return nil, fmt.Errorf("procpool: stage %q: no live workers", spec.Label)
		}
		assign := make([][]int, len(live))
		for k, ti := range queue {
			assign[k%len(live)] = append(assign[k%len(live)], ti)
		}
		var requeue []int
		var permErr error
		var wg sync.WaitGroup
		for wi := range live {
			if len(assign[wi]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w *workerProc, list []int) {
				defer wg.Done()
				for li, ti := range list {
					payload, err := p.runTaskOn(w, &spec.Tasks[ti])
					if err != nil {
						resMu.Lock()
						if w.isDead() {
							// Requeue this worker's remaining share on the
							// survivors, bounding how many crashes one task
							// may ride out.
							for _, rest := range list[li:] {
								attempts[rest]++
								if attempts[rest] >= maxTaskAttempts {
									permErr = fmt.Errorf("procpool: stage %q task %d died %d times: %v", spec.Label, spec.Tasks[rest].Part, attempts[rest], err)
								} else {
									requeue = append(requeue, rest)
								}
							}
						} else {
							permErr = fmt.Errorf("procpool: stage %q task %d: %v", spec.Label, spec.Tasks[ti].Part, err)
						}
						resMu.Unlock()
						return
					}
					b, _, derr := engine.DecodeBatch(payload)
					if derr != nil {
						resMu.Lock()
						permErr = fmt.Errorf("procpool: stage %q task %d result: %v", spec.Label, spec.Tasks[ti].Part, derr)
						resMu.Unlock()
						return
					}
					atomic.AddInt64(&p.shipped, int64(len(payload)))
					resMu.Lock()
					parts[ti] = b
					ranOn[w.idx] = true
					resMu.Unlock()
				}
			}(live[wi], assign[wi])
		}
		wg.Wait()
		if permErr != nil {
			return nil, permErr
		}
		queue = requeue
	}
	atomic.AddInt64(&p.remoteSt, 1)
	atomic.AddInt64(&p.remoteTk, int64(len(spec.Tasks)))
	return &engine.RemoteStageResult{
		Parts:        parts,
		BytesShipped: atomic.LoadInt64(&p.shipped) - shippedBefore,
		Workers:      len(ranOn),
	}, nil
}

// runTaskOn ships one task to w and waits for its reply (or w's death,
// which resolves the reply with an error). The KillAfterTasks hook fires
// synchronously here so the crash — and the lost-output bookkeeping — is
// ordered before any later stage of the run, making recovery tests
// deterministic.
func (p *Pool) runTaskOn(w *workerProc, t *engine.RemoteTask) ([]byte, error) {
	id := atomic.AddUint64(&p.taskSeq, 1)
	body, err := encodeTask(id, t)
	if err != nil {
		return nil, err
	}
	ch := make(chan taskReply, 1)
	w.mu.Lock()
	if w.dead {
		err := w.deadErr
		w.mu.Unlock()
		return nil, err
	}
	w.pending[id] = ch
	w.mu.Unlock()
	if err := w.send(msgTask, body); err != nil {
		p.markDead(w, fmt.Errorf("procpool: worker %d send failed: %v", w.idx, err))
		return nil, err
	}
	if k := p.cfg.KillAfterTasks; k > 0 && atomic.AddInt64(&p.nDispatch, 1) == int64(k) {
		p.markDead(w, fmt.Errorf("procpool: worker %d killed by test hook after task %d", w.idx, k))
	}
	r := <-ch
	if r.errMsg != "" {
		return nil, fmt.Errorf("%s", r.errMsg)
	}
	return r.payload, nil
}

// ---- engine.Backend ----

// StartJob counts the job; a real pool has no launch overhead to charge.
func (p *Pool) StartJob() {
	p.mu.Lock()
	p.stats.Jobs++
	p.mu.Unlock()
}

// RunStageReport reports the wall-clock the stage actually took (the
// delta since the previous report) and counts its tasks. The simulated
// per-task costs are ignored: this backend measures instead of modeling.
func (p *Pool) RunStageReport(tasks []cluster.Task) (cluster.StageReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Stages++
	p.stats.Tasks += len(tasks)
	now := p.clockLocked()
	sec := now - p.lastClock
	p.lastClock = now
	p.stats.BusySeconds += sec
	return cluster.StageReport{
		Tasks:       len(tasks),
		Waves:       1,
		Makespan:    sec,
		Seconds:     sec,
		BusySeconds: sec,
	}, nil
}

// Broadcast pins bytes for the current job (bookkeeping only: actual
// broadcast batches ship as ordinary blocks, cached per worker).
func (p *Pool) Broadcast(bytes int64) error {
	p.mu.Lock()
	p.stats.Broadcasts++
	p.pinned += bytes
	p.mu.Unlock()
	return nil
}

// Unpin releases part of the pinned broadcast bytes early.
func (p *Pool) Unpin(bytes int64) {
	p.mu.Lock()
	p.pinned -= bytes
	p.mu.Unlock()
}

// ReleaseBroadcasts is the end-of-job hook: the job's blocks are dead, so
// the store empties and workers drop their caches.
func (p *Pool) ReleaseBroadcasts() {
	p.mu.Lock()
	p.pinned = 0
	p.mu.Unlock()
	p.store.clear()
	for _, w := range p.liveWorkers() {
		w.send(msgClearCache, nil)
	}
}

// Clock is wall time since the pool started, plus retry-backoff advances.
func (p *Pool) Clock() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clockLocked()
}

func (p *Pool) clockLocked() float64 {
	return time.Since(p.start).Seconds() + p.clockOffset
}

// Stats returns the pool's accumulated counters.
func (p *Pool) Stats() cluster.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ---- engine.Residency ----

// RegisterOutput places a completed stage's partitions round-robin over
// the currently live workers, mirroring the simulator's machine
// placement. If every worker is down the output is born lost; the next
// CheckFetch fails and recovery (or the job's error path) takes over.
func (p *Pool) RegisterOutput(parts int) cluster.OutputID {
	liveIdx := []int{}
	for _, w := range p.workerList {
		if !w.isDead() {
			liveIdx = append(liveIdx, w.idx)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextOut++
	id := p.nextOut
	locs := make([]int, parts)
	for i := range locs {
		if len(liveIdx) == 0 {
			locs[i] = -1
		} else {
			locs[i] = liveIdx[(p.rrOut+i)%len(liveIdx)]
		}
	}
	p.rrOut += parts
	p.outputs[id] = &poolOutput{locs: locs}
	return id
}

// CheckFetch reports a *cluster.FetchFailedError if any partition of the
// output was registered on a worker that has since died. Each output
// counts at most one fetch failure, like the simulator.
func (p *Pool) CheckFetch(id cluster.OutputID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out, ok := p.outputs[id]
	if !ok {
		return nil
	}
	var lost []int
	machine := 0
	for i, loc := range out.locs {
		if loc < 0 {
			lost = append(lost, i)
			machine = -loc - 1
		}
	}
	if len(lost) == 0 {
		return nil
	}
	if !out.counted {
		out.counted = true
		p.stats.FetchFailures++
	}
	return &cluster.FetchFailedError{Machine: machine, Parts: lost, Total: len(out.locs)}
}

// DropOutput forgets an output (its stage was rewound or recomputed).
func (p *Pool) DropOutput(id cluster.OutputID) {
	p.mu.Lock()
	delete(p.outputs, id)
	p.mu.Unlock()
}

// Advance adds recovery-backoff seconds to the pool clock.
func (p *Pool) Advance(dt float64) {
	p.mu.Lock()
	p.clockOffset += dt
	p.mu.Unlock()
}
