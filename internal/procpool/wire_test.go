package procpool

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"matryoshka/internal/engine"
)

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := map[byte][]byte{
		msgHello:      encodeHello(4242),
		msgHelloAck:   encodeHelloAck(3, 250*time.Millisecond),
		msgFetchBlock: encodeBlockReq(77),
		msgBlockData:  encodeTagged(77, true, []byte("frame-bytes")),
		msgTaskResult: encodeTagged(9, false, []byte("boom")),
		msgHeartbeat:  nil,
		msgClearCache: nil,
		msgShutdown:   nil,
	}
	order := []byte{msgHello, msgHelloAck, msgFetchBlock, msgBlockData, msgTaskResult, msgHeartbeat, msgClearCache, msgShutdown}
	for _, typ := range order {
		if err := writeFrame(&buf, typ, bodies[typ]); err != nil {
			t.Fatalf("write type %d: %v", typ, err)
		}
	}
	for _, want := range order {
		typ, body, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read type %d: %v", want, err)
		}
		if typ != want {
			t.Fatalf("got type %d, want %d", typ, want)
		}
		if wb := bodies[want]; len(wb) > 0 && !bytes.Equal(body, wb) {
			t.Fatalf("type %d body mismatch", want)
		}
	}
	if _, _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: got %v, want io.EOF", err)
	}
}

func TestWireFieldRoundTrips(t *testing.T) {
	if pid, err := parseHello(encodeHello(911)); err != nil || pid != 911 {
		t.Fatalf("hello: pid %d err %v", pid, err)
	}
	idx, every, err := parseHelloAck(encodeHelloAck(2, 125*time.Millisecond))
	if err != nil || idx != 2 || every != 125*time.Millisecond {
		t.Fatalf("helloAck: idx %d every %v err %v", idx, every, err)
	}
	id, ok, rest, err := parseTagged(encodeTagged(31, true, []byte("payload")))
	if err != nil || id != 31 || !ok || string(rest) != "payload" {
		t.Fatalf("tagged: id %d ok %v rest %q err %v", id, ok, rest, err)
	}
	task := &engine.RemoteTask{Part: 3, Root: &engine.RemoteNode{
		Op: "identity", Part: 3,
		Inputs: []engine.RemoteInput{{Kind: "block", Block: 12}},
	}}
	body, err := encodeTask(55, task)
	if err != nil {
		t.Fatalf("encodeTask: %v", err)
	}
	gotID, gotTask, err := parseTask(body)
	if err != nil || gotID != 55 {
		t.Fatalf("parseTask: id %d err %v", gotID, err)
	}
	if gotTask.Part != 3 || gotTask.Root.Op != "identity" || gotTask.Root.Inputs[0].Block != 12 {
		t.Fatalf("parseTask: task mismatch: %+v", gotTask)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	// Truncated header.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0})); err == nil || err == io.EOF {
		t.Fatalf("truncated header: got %v", err)
	}
	// Declared length zero.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty frame: got %v", err)
	}
	// Declared length too short to hold the type byte and checksum.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 3, 0, 0, 0})); err == nil || !strings.Contains(err.Error(), "runt") {
		t.Fatalf("runt frame: got %v", err)
	}
	// Declared length over the cap.
	huge := []byte{0xff, 0xff, 0xff, 0xff, byte(msgTask), 0, 0, 0, 0}
	if _, _, err := readFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized frame: got %v", err)
	}
	// Body shorter than declared.
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgTaskResult, encodeTagged(1, true, []byte("abcdef"))); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(cut)); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated body: got %v", err)
	}
	// A flipped body bit must trip the checksum, not parse.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, _, err := readFrame(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt body: got %v", err)
	}
	// A flipped type byte is part of the frame but not the checksum: the
	// body still verifies, the bogus type is the receiver's problem (the
	// read loops ignore unknown types). Flipping the stored checksum
	// itself must fail loud though.
	badsum := append([]byte(nil), buf.Bytes()...)
	badsum[6] ^= 0x80 // inside the u32 checksum at bytes 5..8
	if _, _, err := readFrame(bytes.NewReader(badsum)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt checksum: got %v", err)
	}
	// Truncated message bodies.
	if _, err := parseHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello parsed")
	}
	if _, _, err := parseHelloAck([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("short helloAck parsed")
	}
	if _, _, _, err := parseTagged([]byte{9}); err == nil {
		t.Fatal("short tagged parsed")
	}
	if _, _, _, err := parseTagged(encodeTagged(1, true, nil)[:8]); err == nil {
		t.Fatal("tagged without flag parsed")
	}
	if _, _, err := parseTask([]byte{0, 0, 0, 0, 0, 0, 0, 1, '{'}); err == nil {
		t.Fatal("bad task json parsed")
	}
	if _, _, err := parseTask(append(make([]byte, 8), []byte(`{}`)...)); err == nil {
		t.Fatal("rootless task parsed")
	}
}

// FuzzWireFrame feeds arbitrary bytes through the frame reader and every
// body parser: the driver reads these off a socket from another process,
// so none of them may panic or over-allocate on garbage.
func FuzzWireFrame(f *testing.F) {
	var seed bytes.Buffer
	writeFrame(&seed, msgHello, encodeHello(123))
	writeFrame(&seed, msgHelloAck, encodeHelloAck(1, 100*time.Millisecond))
	writeFrame(&seed, msgTaskResult, encodeTagged(7, true, []byte("data")))
	writeFrame(&seed, msgFetchBlock, encodeBlockReq(9))
	writeFrame(&seed, msgHeartbeat, nil)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, byte(msgTask)}) // runt: length below frameOverhead
	// A bare heartbeat frame (empty body checksums to 0) and the same
	// frame with a corrupted checksum.
	f.Add([]byte{0, 0, 0, 5, byte(msgHeartbeat), 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, byte(msgHeartbeat), 0xde, 0xad, 0xbe, 0xef})
	// A valid frame with one body bit flipped: must die on the checksum.
	flip := append([]byte(nil), seed.Bytes()...)
	flip[len(flip)-2] ^= 0x10
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ { // bound the walk on pathological inputs
			typ, body, err := readFrame(r)
			if err != nil {
				return
			}
			switch typ {
			case msgHello:
				parseHello(body)
			case msgHelloAck:
				parseHelloAck(body)
			case msgTask:
				parseTask(body)
			case msgTaskResult, msgBlockData:
				parseTagged(body)
			case msgFetchBlock:
				parseBlockReq(body)
			}
		}
	})
}
