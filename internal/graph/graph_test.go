package graph

import (
	"math"
	"testing"

	"matryoshka/internal/datagen"
)

func line(n int) []datagen.Edge {
	// 0 <-> 1 <-> 2 ... path graph, bidirectional.
	var out []datagen.Edge
	for i := int64(0); i < int64(n-1); i++ {
		out = append(out, datagen.Edge{Src: i, Dst: i + 1}, datagen.Edge{Src: i + 1, Dst: i})
	}
	return out
}

func TestAdjacencyAndVertices(t *testing.T) {
	edges := []datagen.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}
	adj := Adjacency(edges)
	if len(adj[1]) != 2 || len(adj[2]) != 1 {
		t.Fatalf("adj = %v", adj)
	}
	if vs := Vertices(edges); len(vs) != 3 {
		t.Fatalf("vertices = %v", vs)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	edges := datagen.GroupedGraph(1, 50, 300, false, 1)
	var es []datagen.Edge
	for _, ge := range edges {
		es = append(es, ge.Edge)
	}
	res := PageRankSeq(es, 1e-9, 100)
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if res.Iterations == 0 || res.Ops == 0 {
		t.Fatalf("missing counters: %+v", res)
	}
}

func TestPageRankStarCenterWins(t *testing.T) {
	// Star: all point to 0.
	var edges []datagen.Edge
	for i := int64(1); i <= 10; i++ {
		edges = append(edges, datagen.Edge{Src: i, Dst: 0})
	}
	res := PageRankSeq(edges, 1e-12, 200)
	for i := int64(1); i <= 10; i++ {
		if res.Ranks[0] <= res.Ranks[i] {
			t.Fatalf("center rank %v not above leaf %v", res.Ranks[0], res.Ranks[i])
		}
	}
}

func TestPageRankEmpty(t *testing.T) {
	res := PageRankSeq(nil, 1e-6, 10)
	if len(res.Ranks) != 0 {
		t.Fatalf("ranks = %v", res.Ranks)
	}
}

func TestConnectedComponents(t *testing.T) {
	edges := datagen.ComponentsGraph(3, 10, 2, 4)
	res := ConnectedComponentsSeq(edges)
	if len(res.Comp) != 30 {
		t.Fatalf("labelled %d vertices", len(res.Comp))
	}
	for v, c := range res.Comp {
		want := (v / 10) * 10 // min vertex id of the block
		if c != want {
			t.Fatalf("vertex %d -> comp %d, want %d", v, c, want)
		}
	}
}

func TestAvgDistancesLine(t *testing.T) {
	// Path of 4 vertices: distances 1,2,3,1,1,2 (each direction) ->
	// ordered pairs sum = 2*(1+2+3+1+2+1) = 20, pairs = 12, avg = 5/3.
	res := AvgDistancesSeq(line(4))
	if res.Pairs != 12 {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	if math.Abs(res.Avg-5.0/3) > 1e-12 {
		t.Fatalf("avg = %v, want 5/3", res.Avg)
	}
}

func TestAvgDistancesCompleteGraph(t *testing.T) {
	var edges []datagen.Edge
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 5; j++ {
			if i != j {
				edges = append(edges, datagen.Edge{Src: i, Dst: j})
			}
		}
	}
	res := AvgDistancesSeq(edges)
	if res.Avg != 1 {
		t.Fatalf("avg = %v, want 1", res.Avg)
	}
	if res.Pairs != 20 {
		t.Fatalf("pairs = %d, want 20", res.Pairs)
	}
}
