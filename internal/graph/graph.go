// Package graph provides the sequential graph algorithms that (a) the
// outer-parallel workaround runs inside its UDFs, and (b) the tests use as
// the reference the parallel strategies must agree with: PageRank with
// convergence, connected components, and all-sources BFS average
// distances.
//
// Each function reports an operation count so the outer-parallel UDFs can
// charge their true sequential compute cost to the simulated cluster.
package graph

import "matryoshka/internal/datagen"

// Adjacency builds a directed adjacency list.
func Adjacency(edges []datagen.Edge) map[int64][]int64 {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	return adj
}

// Vertices returns the distinct endpoints of the edge list.
func Vertices(edges []datagen.Edge) []int64 {
	seen := make(map[int64]struct{}, len(edges))
	var out []int64
	add := func(v int64) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, e := range edges {
		add(e.Src)
		add(e.Dst)
	}
	return out
}

// PageRankResult is the output of PageRankSeq.
type PageRankResult struct {
	Ranks      map[int64]float64
	Iterations int
	Ops        int64 // per-edge/vertex work units performed
}

// Damping is the standard PageRank damping factor.
const Damping = 0.85

// PageRankSeq runs PageRank until the L1 rank change drops below eps or
// maxIters is reached. Dangling mass is redistributed uniformly.
func PageRankSeq(edges []datagen.Edge, eps float64, maxIters int) PageRankResult {
	adj := Adjacency(edges)
	verts := Vertices(edges)
	n := float64(len(verts))
	if n == 0 {
		return PageRankResult{Ranks: map[int64]float64{}}
	}
	ranks := make(map[int64]float64, len(verts))
	for _, v := range verts {
		ranks[v] = 1 / n
	}
	var ops int64
	iters := 0
	for ; iters < maxIters; iters++ {
		next := make(map[int64]float64, len(verts))
		var dangling float64
		for _, v := range verts {
			if len(adj[v]) == 0 {
				dangling += ranks[v]
			}
		}
		for _, v := range verts {
			share := ranks[v] / float64(len(adj[v]))
			for _, w := range adj[v] {
				next[w] += share
			}
			ops += int64(len(adj[v])) + 1
		}
		var delta float64
		for _, v := range verts {
			nv := (1-Damping)/n + Damping*(next[v]+dangling/n)
			d := nv - ranks[v]
			if d < 0 {
				d = -d
			}
			delta += d
			next[v] = nv
		}
		ranks = next
		if delta < eps {
			iters++
			break
		}
	}
	return PageRankResult{Ranks: ranks, Iterations: iters, Ops: ops}
}

// ComponentsResult is the output of ConnectedComponentsSeq.
type ComponentsResult struct {
	// Comp maps each vertex to its component id (the minimum vertex id
	// in the component, the same convention as GraphX/Gelly).
	Comp map[int64]int64
	Ops  int64
}

// ConnectedComponentsSeq labels vertices of an undirected graph (edges
// interpreted bidirectionally) with their component's minimum vertex id.
func ConnectedComponentsSeq(edges []datagen.Edge) ComponentsResult {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	comp := make(map[int64]int64)
	var ops int64
	for v := range adj {
		if _, ok := comp[v]; ok {
			continue
		}
		// BFS flood fill; the component id is the minimum id found.
		member := []int64{v}
		comp[v] = v
		for i := 0; i < len(member); i++ {
			for _, w := range adj[member[i]] {
				ops++
				if _, ok := comp[w]; !ok {
					comp[w] = v
					member = append(member, w)
				}
			}
		}
		minID := v
		for _, u := range member {
			if u < minID {
				minID = u
			}
		}
		for _, u := range member {
			comp[u] = minID
		}
	}
	return ComponentsResult{Comp: comp, Ops: ops}
}

// AvgDistancesResult is the output of AvgDistancesSeq.
type AvgDistancesResult struct {
	// Avg is the mean BFS distance over all ordered reachable pairs
	// (u, v), u != v.
	Avg   float64
	Pairs int64
	Ops   int64
}

// AvgDistancesSeq computes the average shortest-path distance between all
// pairs of vertices of a (connected) graph via one BFS per source.
func AvgDistancesSeq(edges []datagen.Edge) AvgDistancesResult {
	adj := Adjacency(edges)
	verts := Vertices(edges)
	var sum, ops int64
	var pairs int64
	for _, src := range verts {
		dist := map[int64]int64{src: 0}
		frontier := []int64{src}
		var depth int64
		for len(frontier) > 0 {
			depth++
			var next []int64
			for _, u := range frontier {
				for _, w := range adj[u] {
					ops++
					if _, ok := dist[w]; !ok {
						dist[w] = depth
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		for v, d := range dist {
			if v != src {
				sum += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return AvgDistancesResult{Ops: ops}
	}
	return AvgDistancesResult{Avg: float64(sum) / float64(pairs), Pairs: pairs, Ops: ops}
}
