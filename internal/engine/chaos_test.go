package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// chaosConfig is the recoverConfig cluster with ample memory and a fault
// plan attached: machine failures are the only failure mode in play.
func chaosConfig(fp cluster.FaultPlan) (Config, *obs.Recorder) {
	cfg, rec := recoverConfig(1 << 30)
	cfg.Cluster.Faults = fp
	return cfg, rec
}

// chaosWorkload is a diamond with two independently materialized shuffle
// parents: side a (reduce, 3 parts) and side b (group, 5 parts) join at 4
// parts, so both sides shuffle and the join stage fetches two boundary
// outputs that were registered at different virtual times. A crash between
// those times destroys the earlier side's resident partitions while the
// later side (registered post-crash) survives — exactly the window where a
// fetch failure with partial lineage loss is observable.
func chaosWorkload(s *Session) (map[int]int64, error) {
	left := Parallelize(s, makePairs(600), 3)
	right := Parallelize(s, makePairs(600), 5)
	a := ReduceByKeyN(left, func(x, y int64) int64 { return x + y }, 3)
	b := MapValues(GroupByKeyN(right, 5), func(vs []int64) int64 { return int64(len(vs)) })
	j := JoinWith(a, b, JoinRepartition, 4)
	return CollectMap(MapValues(j, func(t Tuple2[int64, int64]) int64 { return t.A + t.B }))
}

// chaosCrashTime runs the workload fault-free and returns a virtual time
// strictly inside the window of the last pre-join stage: after the earlier
// shuffle outputs are resident, before the final parent registers. The
// simulator is deterministic, so the same instant lands in the same window
// on every faulty run.
func chaosCrashTime(t *testing.T) float64 {
	t.Helper()
	cfg, rec := chaosConfig(cluster.FaultPlan{})
	s := mustSession(cfg)
	defer s.Close()
	if _, err := chaosWorkload(s); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	jobs := rec.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("clean run produced %d jobs, want 1", len(jobs))
	}
	stages := jobs[0].Stages
	if len(stages) < 3 {
		t.Fatalf("clean run produced %d stages, want >= 3", len(stages))
	}
	at := cfg.Cluster.JobLaunchOverhead
	for _, st := range stages[:len(stages)-2] {
		at += st.Seconds
	}
	return at + stages[len(stages)-2].Seconds/2
}

// TestFetchFailureRecomputesLineage is the tentpole's end-to-end check: a
// machine crash mid-job destroys resident shuffle outputs, the consuming
// stage raises a typed fetch failure, the engine rewinds the lost parents
// along lineage and recomputes only them, and the job completes with the
// same answer as a fault-free run — all deterministically.
func TestFetchFailureRecomputesLineage(t *testing.T) {
	crashAt := chaosCrashTime(t)
	fp := cluster.FaultPlan{Events: []cluster.FaultEvent{
		{At: crashAt, Machine: 0, Kind: cluster.FaultCrash},
	}}

	run := func() (map[int]int64, float64, cluster.Stats, string) {
		cfg, rec := chaosConfig(fp)
		s := mustSession(cfg)
		defer s.Close()
		got, err := chaosWorkload(s)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return got, s.Clock(), s.Stats(), rec.Report()
	}

	got, clock, stats, report := run()
	if len(got) != 600 {
		t.Fatalf("join produced %d keys, want 600", len(got))
	}
	for k := 0; k < 600; k++ {
		if got[k] != int64(k)+1 {
			t.Fatalf("key %d = %d, want %d", k, got[k], k+1)
		}
	}
	if stats.MachineCrashes != 1 {
		t.Errorf("MachineCrashes = %d, want 1", stats.MachineCrashes)
	}
	if stats.FetchFailures == 0 {
		t.Error("no fetch failures recorded despite mid-job crash")
	}
	for _, want := range []string{
		"fetch-failed(m0)",
		"recomputed parents {",
		"→ ok",
		"Fault events: 1 crashes, 0 rejoins",
		"machine 0 crash",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Fixed-seed fault injection is bit-identical across runs.
	got2, clock2, stats2, report2 := run()
	if !reflect.DeepEqual(got, got2) || clock != clock2 || stats != stats2 || report != report2 {
		t.Errorf("chaos runs diverged: clock %.6f vs %.6f", clock, clock2)
	}

	// And the crash costs time: recomputation plus the lost machine.
	cleanCfg, _ := chaosConfig(cluster.FaultPlan{})
	clean := mustSession(cleanCfg)
	defer clean.Close()
	if _, err := chaosWorkload(clean); err != nil {
		t.Fatal(err)
	}
	if clock <= clean.Clock() {
		t.Errorf("chaos clock %.3f not above clean clock %.3f", clock, clean.Clock())
	}
}

// TestFetchFailureWithoutRecoveryAborts: the same crash with the recovery
// loop disabled aborts the job with the typed fetch-failure error.
func TestFetchFailureWithoutRecoveryAborts(t *testing.T) {
	crashAt := chaosCrashTime(t)
	cfg, _ := chaosConfig(cluster.FaultPlan{Events: []cluster.FaultEvent{
		{At: crashAt, Machine: 0, Kind: cluster.FaultCrash},
	}})
	cfg.Recover = false
	s := mustSession(cfg)
	defer s.Close()
	if _, err := chaosWorkload(s); !errors.Is(err, cluster.ErrFetchFailed) {
		t.Fatalf("err = %v, want ErrFetchFailed", err)
	}
}

// TestWholeClusterOutageStallsAndResumes: every machine crashes mid-job;
// the job stalls until the rejoin, recomputes everything it lost, and
// still produces the right answer.
func TestWholeClusterOutageStallsAndResumes(t *testing.T) {
	crashAt := chaosCrashTime(t)
	rejoinAt := crashAt + 20
	cfg, rec := chaosConfig(cluster.FaultPlan{Events: []cluster.FaultEvent{
		{At: crashAt, Machine: 0, Kind: cluster.FaultCrash},
		{At: crashAt, Machine: 1, Kind: cluster.FaultCrash},
		{At: rejoinAt, Machine: 0, Kind: cluster.FaultRejoin},
		{At: rejoinAt, Machine: 1, Kind: cluster.FaultRejoin},
	}})
	s := mustSession(cfg)
	defer s.Close()
	got, err := chaosWorkload(s)
	if err != nil {
		t.Fatalf("outage run: %v", err)
	}
	if len(got) != 600 || got[599] != 600 {
		t.Fatalf("wrong result after outage: %d keys", len(got))
	}
	if c := s.Clock(); c < rejoinAt {
		t.Errorf("clock %.3f, want >= %.3f (stalled to the rejoin)", c, rejoinAt)
	}
	if st := s.Stats(); st.MachineCrashes != 2 || st.MachineRejoins != 2 {
		t.Errorf("stats = %+v, want 2 crashes and 2 rejoins", st)
	}
	if report := rec.Report(); !strings.Contains(report, "Fault events: 2 crashes, 2 rejoins") {
		t.Errorf("report missing fault summary:\n%s", report)
	}
}

// TestPermanentOutageAborts: when an explicit plan kills every machine
// with no rejoin scheduled, the job fails with the typed dead-cluster
// error rather than spinning.
func TestPermanentOutageAborts(t *testing.T) {
	crashAt := chaosCrashTime(t)
	cfg, _ := chaosConfig(cluster.FaultPlan{Events: []cluster.FaultEvent{
		{At: crashAt, Machine: 0, Kind: cluster.FaultCrash},
		{At: crashAt, Machine: 1, Kind: cluster.FaultCrash},
	}})
	s := mustSession(cfg)
	defer s.Close()
	if _, err := chaosWorkload(s); !errors.Is(err, cluster.ErrNoLiveMachines) {
		t.Fatalf("err = %v, want ErrNoLiveMachines", err)
	}
}

// TestFlappingHazardIsBoundedAndDeterministic: under a pathologically
// flaky hazard (MTBF on the order of a stage) the job either completes —
// having paid for recomputation — or aborts with the full failure report;
// either way the outcome is bit-identical across runs and the recompute
// caps keep it from spinning forever.
func TestFlappingHazardIsBoundedAndDeterministic(t *testing.T) {
	run := func() (map[int]int64, error, float64, string) {
		cfg, rec := chaosConfig(cluster.FaultPlan{MTBF: 0.05, Repair: 0.03, Seed: 11})
		s := mustSession(cfg)
		defer s.Close()
		got, err := chaosWorkload(s)
		return got, err, s.Clock(), rec.Report()
	}
	got1, err1, clock1, report1 := run()
	got2, err2, clock2, report2 := run()
	if (err1 == nil) != (err2 == nil) || clock1 != clock2 || report1 != report2 {
		t.Fatalf("flapping runs diverged: err %v vs %v, clock %.6f vs %.6f", err1, err2, clock1, clock2)
	}
	if err1 != nil {
		if !errors.Is(err1, cluster.ErrFetchFailed) {
			t.Fatalf("abort err = %v, want ErrFetchFailed in chain", err1)
		}
		if msg := err1.Error(); !strings.Contains(msg, "job aborted by machine failures") {
			t.Errorf("abort message = %q", msg)
		}
	} else {
		if !reflect.DeepEqual(got1, got2) {
			t.Error("flapping runs produced different results")
		}
		if len(got1) != 600 {
			t.Errorf("flapping run produced %d keys, want 600", len(got1))
		}
		if !strings.Contains(report1, "fetch-failed(m") {
			t.Errorf("flapping run recovered without any fetch failure:\n%s", report1)
		}
	}
}
