package engine

// Non-blocking job submission and the Backend abstraction. A Session
// normally charges virtual time to its private cluster.Simulator; with
// Config.Backend it charges a shared multi-tenant pool instead
// (internal/sched's Tenant implements Backend). SubmitJob layers
// admission control and futures on top: a submission is admitted (or
// rejected with the backend's backpressure error) synchronously, then
// runs on its own goroutine while the caller holds a JobHandle.

import (
	"context"
	"fmt"
	"runtime/debug"

	"matryoshka/internal/cluster"
)

// Backend is where a session charges virtual time and memory: either
// its private *cluster.Simulator or a shared multi-tenant scheduler's
// tenant handle. The method set is exactly the slice of the Simulator
// API the executor uses, so the Simulator satisfies it unchanged.
type Backend interface {
	// StartJob charges the per-job launch overhead and counts the job.
	StartJob()
	// RunStageReport charges one stage of tasks and reports what the
	// virtual cluster did.
	RunStageReport(tasks []cluster.Task) (cluster.StageReport, error)
	// Broadcast pins bytes cluster-wide until the job ends (or they are
	// unpinned), charging the distribution time.
	Broadcast(bytes int64) error
	// Unpin releases part of the pinned broadcast bytes early.
	Unpin(bytes int64)
	// ReleaseBroadcasts unpins everything — the end-of-job hook.
	ReleaseBroadcasts()
	// Clock returns the session's virtual time.
	Clock() float64
	// Stats returns the session's accumulated counters.
	Stats() cluster.Stats
}

var _ Backend = (*cluster.Simulator)(nil)

// Gate is the optional admission-control facet of a Backend. A backend
// that implements it (the scheduler's tenant handle does; the Simulator
// does not) can reject a submission up front — backpressure — instead
// of queueing unboundedly. Every admitted submission is paired with a
// Finish call when its job ends.
type Gate interface {
	Admit() error
	Finish()
}

// JobHandle is the future returned by SubmitJob.
type JobHandle struct {
	done chan struct{}
	val  any
	err  error
}

// Done returns a channel closed when the job has finished.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its result.
func (h *JobHandle) Wait() (any, error) {
	<-h.done
	return h.val, h.err
}

// Err blocks until the job finishes and returns its error, for
// submissions whose result is delivered out of band.
func (h *JobHandle) Err() error {
	<-h.done
	return h.err
}

// WaitCtx is Wait with a deadline: it returns the job's result, or
// ctx.Err() when the context expires first. The job itself keeps running —
// WaitCtx only abandons the future — and its result stays retrievable: a
// later Wait (or WaitCtx) on the same handle returns it, so nothing leaks
// when a caller gives up early. To actually stop the job when the context
// dies, submit it with SubmitJobCtx using the same context: cancellation
// then aborts the job between stages and a process-pool backend stops
// dispatching its queued tasks.
func (h *JobHandle) WaitCtx(ctx context.Context) (any, error) {
	select {
	case <-h.done:
		return h.val, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SubmitJob runs `run` — a closure invoking the session's actions
// (Collect, Count, ...) — asynchronously and returns a future for its
// result. If the session's backend applies admission control and the
// tenant is over budget, SubmitJob rejects synchronously with an error
// wrapping the backend's backpressure sentinel and the closure never
// runs.
//
// Jobs within one session still execute one at a time (the session
// serializes them); SubmitJob buys overlap across sessions on a shared
// backend, plus a non-blocking driver loop.
func (s *Session) SubmitJob(run func() (any, error)) (*JobHandle, error) {
	gate, _ := s.exec.(Gate)
	if gate != nil {
		if err := gate.Admit(); err != nil {
			return nil, err
		}
	}
	h := &JobHandle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		if gate != nil {
			defer gate.Finish()
		}
		defer func() {
			if r := recover(); r != nil {
				// The goroutine's stack is gone by the time the caller sees
				// the error; capture it here or the panic site is lost.
				h.err = fmt.Errorf("engine: submitted job panicked: %v\n%s", r, debug.Stack())
			}
		}()
		h.val, h.err = run()
	}()
	return h, nil
}

// SubmitJobCtx is SubmitJob with a cancellation scope: jobs the closure
// starts run under ctx. When ctx is cancelled the engine stops launching
// further stages and a process-pool backend stops dispatching the job's
// queued tasks and drops its pending task replies — the job returns the
// cancellation error instead of running to completion.
//
// The scope attaches to jobs started while the closure runs; since a
// session serializes jobs, interleaving several SubmitJobCtx submissions
// on one session can attribute a stage to the most recently submitted
// context. Submit sequentially (or use one context) when exact
// attribution matters.
func (s *Session) SubmitJobCtx(ctx context.Context, run func() (any, error)) (*JobHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.SubmitJob(func() (any, error) {
		s.ctxMu.Lock()
		s.submitCtx = ctx
		s.ctxMu.Unlock()
		defer func() {
			s.ctxMu.Lock()
			s.submitCtx = nil
			s.ctxMu.Unlock()
		}()
		return run()
	})
}
