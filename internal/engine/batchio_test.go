package engine

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

var regenFuzzCorpus = flag.Bool("regen-fuzz-corpus", false,
	"rewrite the checked-in FuzzBatchCodec seed corpus from codecBatches")

// randString returns a printable string of length up to maxLen.
func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	return string(b)
}

// codecBatches generates one randomized batch per supported shape —
// typed scalars, strings, pairs, nested slices, and the boxed fallback
// (including nil elements and mixed element types).
func codecBatches(rng *rand.Rand) []Batch {
	n := rng.Intn(40)
	ints := make([]int, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	pii := make([]Pair[int, int], n)
	psi := make([]Pair[string, int], n)
	groups := make([]Pair[int, []int], n)
	dict := make([]Pair[uint64, int64], n)
	dictGroups := make([]Pair[uint64, []int64], n)
	opts := make([]Pair[int, Tuple2[int, Opt[string]]], n)
	for i := 0; i < n; i++ {
		ints[i] = rng.Int() - rng.Int()
		floats[i] = rng.NormFloat64()
		strs[i] = randString(rng, 24)
		pii[i] = Pair[int, int]{rng.Intn(1000), rng.Intn(1000)}
		psi[i] = Pair[string, int]{randString(rng, 8), rng.Intn(100)}
		g := make([]int, rng.Intn(5))
		for k := range g {
			g[k] = rng.Intn(50)
		}
		groups[i] = Pair[int, []int]{rng.Intn(10), g}
		dict[i] = Pair[uint64, int64]{rng.Uint64(), int64(rng.Intn(1 << 20))}
		dg := make([]int64, rng.Intn(5))
		for k := range dg {
			dg[k] = int64(rng.Intn(1 << 16))
		}
		dictGroups[i] = Pair[uint64, []int64]{rng.Uint64(), dg}
		opts[i] = Pair[int, Tuple2[int, Opt[string]]]{
			Key: i, Val: Tuple2[int, Opt[string]]{A: rng.Intn(5), B: Opt[string]{Val: randString(rng, 6), OK: rng.Intn(2) == 0}},
		}
	}
	boxed := make([]any, n)
	for i := range boxed {
		switch rng.Intn(4) {
		case 0:
			boxed[i] = nil
		case 1:
			boxed[i] = rng.Intn(1 << 16)
		case 2:
			boxed[i] = randString(rng, 12)
		default:
			boxed[i] = Pair[int, int]{i, i * 2}
		}
	}
	bcap := n + rng.Intn(8) // bcap need not equal len; it must survive the trip
	return []Batch{
		batchOf(ints, bcap),
		batchOf(floats, bcap),
		batchOf(strs, bcap),
		batchOf(pii, bcap),
		batchOf(psi, bcap),
		batchOf(groups, bcap),
		batchOf(dict, bcap),
		batchOf(dictGroups, bcap),
		batchOf(opts, bcap),
		boxedBatch(boxed),
		zeroBatch,
		nil, // encodes as the empty boxed frame
	}
}

// batchEqual compares two batches semantically: same concrete
// representation, length, boxed capacity, and elements. (DeepEqual on the
// Vec values would distinguish nil from empty backing slices, which the
// wire format deliberately does not carry.)
func batchEqual(a, b Batch) bool {
	if reflect.TypeOf(a) != reflect.TypeOf(b) {
		return false
	}
	if a.Len() != b.Len() || a.BoxedCap() != b.BoxedCap() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.At(i), b.At(i)) {
			return false
		}
	}
	return true
}

// TestBatchCodecRoundTrip: EncodeBatch then DecodeBatch reproduces every
// batch shape exactly — elements, length, boxed capacity, and concrete
// representation — over randomized contents, and consumes whole frames
// even when concatenated.
func TestBatchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var stream []byte
		batches := codecBatches(rng)
		for _, b := range batches {
			enc, err := EncodeBatch(nil, b)
			if err != nil {
				t.Fatalf("trial %d: encode %T: %v", trial, b, err)
			}
			dec, consumed, err := DecodeBatch(enc)
			if err != nil {
				t.Fatalf("trial %d: decode %T: %v", trial, b, err)
			}
			if consumed != len(enc) {
				t.Fatalf("trial %d: consumed %d of %d frame bytes", trial, consumed, len(enc))
			}
			want := b
			if want == nil {
				want = zeroBatch
			}
			if !batchEqual(dec, want) {
				t.Fatalf("trial %d: round trip differs for %s:\n got %#v\nwant %#v", trial, want.Shape(), dec, want)
			}
			stream = append(stream, enc...)
		}
		// Frames are self-delimiting: the concatenated stream decodes back
		// into the same sequence.
		for _, b := range batches {
			dec, consumed, err := DecodeBatch(stream)
			if err != nil {
				t.Fatalf("trial %d: stream decode: %v", trial, err)
			}
			want := b
			if want == nil {
				want = zeroBatch
			}
			if !batchEqual(dec, want) {
				t.Fatalf("trial %d: stream round trip differs for %s", trial, want.Shape())
			}
			stream = stream[consumed:]
		}
		if len(stream) != 0 {
			t.Fatalf("trial %d: %d stream bytes left over", trial, len(stream))
		}
	}
}

// TestBatchCodecDeterministic: the same batch always encodes to the same
// bytes — the wire format has no map iteration or randomized content.
func TestBatchCodecDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range codecBatches(rng) {
		a1, err1 := EncodeBatch(nil, b)
		a2, err2 := EncodeBatch(nil, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("encode: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("nondeterministic encoding for %T", b)
		}
	}
}

// TestBatchCodecRejects: element shapes the wire format cannot carry fail
// on encode with errBatchCodec, and malformed input fails on decode
// without panicking.
func TestBatchCodecRejects(t *testing.T) {
	type hidden struct{ x int }
	encodeErr := func(b Batch) error {
		_, err := EncodeBatch(nil, b)
		return err
	}
	if err := encodeErr(batchOf([]map[int]int{{1: 2}}, 1)); !errors.Is(err, errBatchCodec) {
		t.Fatalf("map element: err = %v, want errBatchCodec", err)
	}
	if err := encodeErr(batchOf([]*int{new(int)}, 1)); !errors.Is(err, errBatchCodec) {
		t.Fatalf("pointer element: err = %v, want errBatchCodec", err)
	}
	if err := encodeErr(batchOf([]hidden{{x: 1}}, 1)); !errors.Is(err, errBatchCodec) {
		t.Fatalf("unexported field: err = %v, want errBatchCodec", err)
	}
	if err := encodeErr(boxedBatch([]any{func() {}})); !errors.Is(err, errBatchCodec) {
		t.Fatalf("boxed func element: err = %v, want errBatchCodec", err)
	}

	good, err := EncodeBatch(nil, batchOf([]int{1, 2, 3}, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		good[:3],                            // short header
		append([]byte("XXXX"), good[4:]...), // bad magic
		good[:len(good)-2],                  // truncated payload
	}
	for i, data := range bad {
		if _, _, err := DecodeBatch(data); err == nil {
			t.Fatalf("malformed input %d decoded without error", i)
		}
	}
	// Unknown shape name.
	unknown := append([]byte{}, good...)
	copy(unknown[13:], []byte("zzz")) // overwrite "int" shape bytes
	if _, _, err := DecodeBatch(unknown); !errors.Is(err, errBatchCodec) {
		t.Fatalf("unknown shape: err = %v, want errBatchCodec", err)
	}
}

// TestEncodedBatchBytes: the observability counter equals the real frame
// size for encodable batches, 0 for unencodable ones, and never errors.
func TestEncodedBatchBytes(t *testing.T) {
	var scratch []byte
	rng := rand.New(rand.NewSource(11))
	for _, b := range codecBatches(rng) {
		enc, err := EncodeBatch(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodedBatchBytes(&scratch, b); got != int64(len(enc)) {
			t.Fatalf("%T: encodedBatchBytes = %d, want %d", b, got, len(enc))
		}
	}
	if got := encodedBatchBytes(&scratch, batchOf([]map[int]int{{1: 2}}, 1)); got != 0 {
		t.Fatalf("unencodable batch: got %d, want 0", got)
	}
}

const fuzzCorpusDir = "testdata/fuzz/FuzzBatchCodec"

// TestFuzzCorpus keeps the checked-in FuzzBatchCodec seed corpus honest:
// every file must parse as a Go corpus entry whose frame either decodes
// cleanly or fails with errBatchCodec — never panics. Run with
// -regen-fuzz-corpus to rewrite the seeds from codecBatches.
func TestFuzzCorpus(t *testing.T) {
	if *regenFuzzCorpus {
		if err := os.MkdirAll(fuzzCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i, b := range codecBatches(rng) {
			enc, err := EncodeBatch(nil, b)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(enc)))
			name := filepath.Join(fuzzCorpusDir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	files, err := filepath.Glob(filepath.Join(fuzzCorpusDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no seed corpus in %s (run go test -run TestFuzzCorpus -regen-fuzz-corpus)", fuzzCorpusDir)
	}
	for _, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a v1 corpus entry", name)
		}
		lit := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		data, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad byte literal: %v", name, err)
		}
		if _, _, err := DecodeBatch([]byte(data)); err != nil && !errors.Is(err, errBatchCodec) {
			t.Fatalf("%s: decode failed outside the codec error space: %v", name, err)
		}
	}
}

// FuzzBatchCodec: DecodeBatch must never panic on arbitrary input, and
// whatever it accepts must re-encode and decode to the same batch.
func FuzzBatchCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range codecBatches(rng) {
		if enc, err := EncodeBatch(nil, b); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte("MBA1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, consumed, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		enc, err := EncodeBatch(nil, b)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		again, _, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		// The fixed point is the encoded frame, compared as bytes: the
		// codec is bit-preserving, and DeepEqual on decoded values would
		// reject NaN payloads the codec carries faithfully (NaN != NaN).
		enc2, err := EncodeBatch(nil, again)
		if err != nil {
			t.Fatalf("re-decoded batch does not encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode(decode(enc)) != enc")
		}
		if reflect.TypeOf(b) != reflect.TypeOf(again) {
			t.Fatalf("round trip changed batch type: %T vs %T", b, again)
		}
	})
}
