package engine

import "errors"

// ErrEmpty is returned by Reduce/First on an empty dataset.
var ErrEmpty = errors.New("engine: empty dataset")

// Collect launches a job and returns all elements (driver-side).
func Collect[T any](d Dataset[T]) ([]T, error) {
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return nil, err
	}
	var total int
	for _, p := range parts {
		total += batchLen(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, elems[T](p)...)
	}
	return out, nil
}

// Count launches a job and returns the number of elements.
func Count[T any](d Dataset[T]) (int64, error) {
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, p := range parts {
		n += int64(batchLen(p))
	}
	return n, nil
}

// IsEmpty launches a job and reports whether the dataset has no elements.
// The lifted while loop calls it once per superstep (Listing 4, line 9).
func IsEmpty[T any](d Dataset[T]) (bool, error) {
	n, err := Count(d)
	return n == 0, err
}

// Reduce launches a job and folds all elements with f.
func Reduce[T any](d Dataset[T], f func(T, T) T) (T, error) {
	var zero T
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return zero, err
	}
	acc := zero
	have := false
	for _, p := range parts {
		for _, e := range elems[T](p) {
			if !have {
				acc = e
				have = true
				continue
			}
			acc = f(acc, e)
		}
	}
	if !have {
		return zero, ErrEmpty
	}
	return acc, nil
}

// First launches a job and returns one element (the first of the first
// non-empty partition).
func First[T any](d Dataset[T]) (T, error) {
	var zero T
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return zero, err
	}
	for _, p := range parts {
		if batchLen(p) > 0 {
			return p.At(0).(T), nil
		}
	}
	return zero, ErrEmpty
}

// CollectMap collects a pair dataset into a map, assuming unique keys.
func CollectMap[K comparable, V any](d Dataset[Pair[K, V]]) (map[K]V, error) {
	kvs, err := Collect(d)
	if err != nil {
		return nil, err
	}
	m := make(map[K]V, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Val
	}
	return m, nil
}

// Take launches a job and returns up to n elements.
func Take[T any](d Dataset[T], n int) ([]T, error) {
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		for _, e := range elems[T](p) {
			if len(out) == n {
				return out, nil
			}
			out = append(out, e)
		}
	}
	return out, nil
}
