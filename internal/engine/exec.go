package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine/plan"
	"matryoshka/internal/obs"
)

// job executes one action against a physical plan built in a distinct
// planning step (see internal/engine/plan and physical.go). Stage roots
// (action target, shuffle/broadcast map sides, cached nodes) are
// materialized fully; everything else is pipelined into the tasks of its
// consuming stage. The executor makes no planning decision of its own —
// stage boundaries, operator chains and memo sites all come from the plan,
// in both the parallel and the retained serial (LegacyExec) paths.
//
// Execution is resumable: completed stage roots live on the job's frontier
// (see runner.go), and when a stage fails and Config.Recover is on, the
// recovery loop (recover.go) re-lowers the offending subplan, rebuilds the
// plan for the unfinished suffix, and re-enters the runner — the frontier,
// pinned caches, shuffle blocks and the virtual clock already charged are
// all preserved.
type job struct {
	s  *Session
	ep *execPlan // the bound physical plan (rebuilt on recovery replans)
	// ctx is the submission context (SubmitJobCtx): cancellation stops
	// launching stages and propagates into the RemoteRunner so a pool
	// stops dispatching the job's queued tasks. Background when the job
	// was submitted without one.
	ctx context.Context
	// front is the job's stage frontier: the checkpoint of every stage
	// root materialized so far, with the cost provenance of the attempt
	// that produced it.
	front map[*node]*checkpoint
	// blocks memoizes shuffle routing per dep: blocks[d][childPart].
	blocks map[*dep][]Batch
	// bcast memoizes flattened broadcast inputs per dep.
	bcast map[*dep]Batch
	// bcastBytes records the residency charged per pinned broadcast dep,
	// so recovery can unpin a broadcast it re-lowers away.
	bcastBytes map[*dep]int64

	// attempts counts launches per stage root (recovery bounds reruns);
	// raised tracks the cumulative partition-raise factor per stage root;
	// recoveries counts all applied recoveries (replan provenance) while
	// relowered counts only plan changes, which maxJobRecoveries caps.
	attempts   map[*node]int
	raised     map[*node]int
	recoveries int
	relowered  int

	// Machine-failure state (chaos.go): the residency handle of each
	// launched stage root's shuffle output, how often each root was
	// recomputed after a fetch failure, and the from-scratch job retries
	// spent escalating past the per-stage recompute cap.
	outputs    map[*node]cluster.OutputID
	recomputed map[*node]int
	jobRetries int

	// memo caches computed partitions of the plan's fan-in>1 narrow
	// nodes (diamond DAGs, overlapping narrowMaps, nodes read from
	// several stages): evalPart computes each exactly once instead of
	// once per consumer.
	memo sync.Map // memoKey -> *memoEntry
	// memoHits counts fan-in partitions served from the memo (an
	// event-spine counter; snapshot per stage).
	memoHits atomic.Int64

	// onceVals shards per-job Once entries by id, so concurrent builds of
	// unrelated structures (e.g. two broadcast joins' hash tables) never
	// serialize on a job-wide mutex; only callers of the same id wait for
	// its single build.
	onceVals sync.Map // int64 -> *onceEntry
}

type memoKey struct {
	n *node
	p int
}

// memoEntry caches one computed partition of a fan-in>1 narrow node plus
// the task-cost deltas incurred computing it. Every consumer — including
// the task that ran the computation — replays the deltas into its own Ctx,
// so simulated-cluster accounting is identical to recomputing the
// partition per consumer: the charges are sums of per-row terms, and each
// consumer receives exactly the same sum it would have accumulated inline.
type memoEntry struct {
	once         sync.Once
	data         Batch
	work         float64
	shuffleBytes float64
	mem          int64
}

type onceEntry struct {
	once sync.Once
	val  any
}

// runJob plans and launches a job whose result is the materialized target
// node: a planning step builds the physical plan, the event spine records
// it, and the stage-graph runner (runner.go) consumes it — recovering and
// replanning on failure when the session allows it.
func (s *Session) runJob(target *node) ([]Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &job{
		s:          s,
		ctx:        s.jobCtx(),
		front:      map[*node]*checkpoint{},
		blocks:     map[*dep][]Batch{},
		bcast:      map[*dep]Batch{},
		bcastBytes: map[*dep]int64{},
		attempts:   map[*node]int{},
		raised:     map[*node]int{},
		outputs:    map[*node]cluster.OutputID{},
		recomputed: map[*node]int{},
	}
	clockBefore := s.exec.Clock()
	s.exec.StartJob()
	out, err := j.run(target)
	s.exec.ReleaseBroadcasts()
	s.obs.EndJob(s.exec.Clock()-clockBefore, err)
	return out, err
}

// launchStage runs the tasks of stage st (rooted at n) for real on the
// host, submits their measured costs to the simulated cluster, and returns
// the structured outcome: the simulator's StageReport on success, a typed
// stageFailure otherwise. On success the result is checkpointed on the
// job's frontier (and in the node cache for cached roots).
func (j *job) launchStage(n *node, st *plan.Stage) stageResult {
	j.attempts[n]++
	// A process-pool backend runs portable stages in worker processes;
	// stages it cannot take (unregistered closures, infrastructure failure)
	// fall through to the driver-local path below.
	if j.s.remote != nil && !j.s.legacyExec {
		if res, ok := j.launchStageRemote(n, st); ok {
			return res
		}
	}
	// results cannot be pooled (it outlives the stage on the frontier and
	// possibly in the node cache) but the cost buffer is per-stage scratch
	// reused across the session.
	results := make([]Batch, n.parts)
	costs := j.s.stageCosts(n.parts)
	observing := j.s.obs.Enabled()
	var shufScratch []float64
	var boundScratch []int64
	var shapeScratch []string
	if observing {
		shufScratch = make([]float64, n.parts)
		boundScratch = make([]int64, n.parts)
		shapeScratch = make([]string, n.parts)
	}
	memoHitsBefore := j.memoHits.Load()
	var panicOnce sync.Once
	var panicked any
	runTask := func(p int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = fmt.Errorf("engine: task %d of %s panicked: %v", p, n.label, r) })
			}
		}()
		tc := &Ctx{job: j}
		out := j.evalPart(tc, n, p)
		results[p] = out
		// The stage root's output is materialized: charge the rows it
		// emits and hold it resident alongside operator-claimed memory.
		tc.work += float64(batchLen(out)) * n.weight
		tc.UseMemory(j.s.estResidentBytes(out, n.weight))
		cc := j.s.cfg.Cluster
		costs[p] = cluster.Task{
			Compute: tc.work*cc.PerElementCost + tc.shuffleBytes*cc.PerByteShuffle,
			Memory:  tc.mem,
		}
		if observing {
			shufScratch[p] = tc.shuffleBytes
			boundScratch[p] = tc.boundaryBytes
			shapeScratch[p] = tc.batchShape
		}
	}
	wallStart := time.Now()
	if j.s.legacyExec {
		// Reference mode: the pre-pool launch — one goroutine per
		// partition, bounded by a stage-local semaphore.
		var wg sync.WaitGroup
		sem := make(chan struct{}, j.s.workers)
		for p := 0; p < n.parts; p++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(p int) {
				defer wg.Done()
				defer func() { <-sem }()
				runTask(p)
			}(p)
		}
		wg.Wait()
	} else {
		j.s.pool.parallelFor(j.s.workers, n.parts, runTask)
	}
	wallSeconds := time.Since(wallStart).Seconds()
	if panicked != nil {
		panic(panicked)
	}

	rep, err := j.s.exec.RunStageReport(costs)
	if err != nil {
		var oom *cluster.OOMError
		errors.As(err, &oom)
		return stageResult{rep: rep, fail: &stageFailure{
			root:      n,
			st:        st,
			oom:       oom,
			transient: errors.Is(err, cluster.ErrTaskRetriesExhausted),
			seconds:   rep.Seconds,
			err:       fmt.Errorf("engine: stage %q (%s) failed: %w", n.label, j.chainOf(st), err),
		}}
	}
	if observing {
		var shuffleBytes float64
		for _, sb := range shufScratch {
			shuffleBytes += sb
		}
		var boundaryBytes int64
		batchShape := ""
		for p := range boundScratch {
			boundaryBytes += boundScratch[p]
			if batchShape == "" {
				batchShape = shapeScratch[p]
			}
		}
		j.s.obs.StageRan(obs.Stage{
			Stage:         st.ID,
			Label:         n.label,
			Chain:         st.ChainString(),
			Fused:         j.ep.fusedDesc(n),
			Parts:         n.parts,
			ShuffleBytes:  shuffleBytes,
			MemoHits:      j.memoHits.Load() - memoHitsBefore,
			Seconds:       rep.Seconds,
			BusySeconds:   rep.BusySeconds,
			Retries:       rep.Retries,
			MaxTaskSec:    rep.MaxTaskSec,
			MaxTaskMem:    rep.MaxTaskMem,
			QueueWait:     rep.QueueWait,
			SpecLaunched:  rep.SpecLaunched,
			SpecWon:       rep.SpecWon,
			SpecWastedSec: rep.SpecWastedSec,
			BoundaryBytes: boundaryBytes,
			BatchShape:    batchShape,
			WallSeconds:   wallSeconds,
		})
	}
	if j.s.cfg.DebugStages && rep.Seconds > 1 {
		var mxC float64
		for _, c := range costs {
			if c.Compute > mxC {
				mxC = c.Compute
			}
		}
		fmt.Printf("DBGSTAGE %-16s parts=%-5d dt=%.1f maxtask=%.1f w=%.0f chain=%s\n",
			n.label, len(costs), rep.Seconds, mxC, n.weight, st.ChainString())
	}
	j.front[n] = &checkpoint{data: results, rep: rep}
	j.registerOutput(n)
	if n.cached {
		n.cacheMu.Lock()
		n.cacheData = results
		n.cacheMu.Unlock()
	}
	return stageResult{rep: rep}
}

// launchStageRemote ships the stage rooted at n to the backend's process
// pool. ok=false means the stage did not run remotely — because an operator
// in its chain has no registered portable form, or because the pool failed
// before producing results — and the caller must run it driver-local. The
// reason lands in the optimizer decision log, so EXPLAIN ANALYZE shows
// exactly which stages stayed on the driver and why.
func (j *job) launchStageRemote(n *node, st *plan.Stage) (stageResult, bool) {
	driverLocal := func(why error) (stageResult, bool) {
		j.s.obs.Decide(obs.Decision{
			Rule:   "proc-backend",
			Choice: "driver-local",
			Why:    fmt.Sprintf("stage %q: %v", n.label, why),
		})
		return stageResult{}, false
	}
	if err := j.stagePortable(n); err != nil {
		return driverLocal(err)
	}
	spec, owners, err := j.buildRemoteSpec(n, j.s.remote.PutBlock)
	if err != nil {
		return driverLocal(err)
	}
	wallStart := time.Now()
	res, err := j.s.remote.RunRemoteStage(j.ctx, spec)
	if err != nil {
		if fail, hard := j.classifyRemoteErr(n, st, err, owners); hard {
			return stageResult{fail: fail}, true
		}
		return driverLocal(err)
	}
	if len(res.Parts) != n.parts {
		return driverLocal(fmt.Errorf("pool returned %d partitions, want %d", len(res.Parts), n.parts))
	}
	// Remote stages charge no simulated task costs — the backend's clock is
	// real wall time — but the stage still runs through RunStageReport so
	// job/stage/task counters and the per-stage report shape stay uniform.
	rep, err := j.s.exec.RunStageReport(j.s.stageCosts(n.parts))
	if err != nil {
		return stageResult{rep: rep, fail: &stageFailure{
			root:    n,
			st:      st,
			seconds: rep.Seconds,
			err:     fmt.Errorf("engine: stage %q (%s) failed: %w", n.label, j.chainOf(st), err),
		}}, true
	}
	if j.s.obs.Enabled() {
		j.s.obs.StageRan(obs.Stage{
			Stage:         st.ID,
			Label:         n.label,
			Chain:         st.ChainString(),
			Parts:         n.parts,
			Seconds:       rep.Seconds,
			BusySeconds:   rep.BusySeconds,
			Remote:        true,
			WallSeconds:   time.Since(wallStart).Seconds(),
			RemoteBytes:   res.BytesShipped,
			RemoteWorkers: res.Workers,
		})
	}
	j.front[n] = &checkpoint{data: res.Parts, rep: rep}
	j.registerOutput(n)
	if n.cached {
		n.cacheMu.Lock()
		n.cacheData = res.Parts
		n.cacheMu.Unlock()
	}
	return stageResult{rep: rep}, true
}

// classifyRemoteErr decides what a RunRemoteStage error means for the
// stage. hard=true returns a typed stageFailure instead of falling back
// driver-local:
//
//   - *BlockLostError: a stored block failed its integrity check. The
//     failure is pinned on the block's producing node (owners map) as a
//     fetch failure, so lineage recomputation rebuilds exactly that
//     output — corrupt bytes never reach results.
//   - *QuorumLostError: the pool is below its live-worker quorum. Also a
//     fetch-style failure (no specific lost parent), so the bounded job
//     retry — not an infinite driver wait — decides the job's fate.
//   - *PoisonTaskError: the task destroys workers deterministically;
//     running it driver-local would kill the driver. Hard abort, with
//     the operator chain in the message.
//   - ctx cancellation: the submitting caller gave up; hard abort.
//
// Anything else (codec trouble, unregistered ops reported late, pool
// shutdown) keeps the existing contract: run the stage driver-local.
func (j *job) classifyRemoteErr(n *node, st *plan.Stage, err error, owners map[uint64]*node) (*stageFailure, bool) {
	var blockLost *BlockLostError
	var quorum *QuorumLostError
	var poison *PoisonTaskError
	switch {
	case errors.As(err, &blockLost):
		owner := owners[blockLost.Block]
		ff := &cluster.FetchFailedError{Machine: -1, Parts: []int{0}, Total: 1}
		if owner != nil {
			ff.Total = owner.parts
		}
		return &stageFailure{
			root: n, st: st, fetch: ff, lost: owner,
			err: fmt.Errorf("engine: stage %q (%s): %w", n.label, j.chainOf(st), err),
		}, true
	case errors.As(err, &quorum):
		return &stageFailure{
			root: n, st: st,
			fetch: &cluster.FetchFailedError{Machine: -1, Total: n.parts},
			err:   fmt.Errorf("engine: stage %q (%s): %w", n.label, j.chainOf(st), err),
		}, true
	case errors.As(err, &poison):
		return &stageFailure{
			root: n, st: st,
			err: fmt.Errorf("engine: stage %q (%s): %w", n.label, j.chainOf(st), err),
		}, true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &stageFailure{
			root: n, st: st,
			err: fmt.Errorf("engine: stage %q cancelled: %w", n.label, err),
		}, true
	}
	return nil, false
}

// chainOf renders the stage's pipelined operator chain with record
// weights, for error messages.
func (j *job) chainOf(st *plan.Stage) string {
	var b []byte
	b = append(b, st.Root.Label...)
	for _, pn := range st.Chain[1:] {
		b = fmt.Appendf(b, "<-%s/w%.0f", pn.Label, pn.Weight)
	}
	last := st.Chain[len(st.Chain)-1]
	if len(last.Deps) > 0 {
		p := last.Deps[0].Parent
		b = fmt.Appendf(b, "<-[%s/w%.0f]", p.Label, p.Weight)
	}
	return string(b)
}

// buildBlocks routes the materialized parent of shuffle dep d into the
// child's partitions (see route.go for the parallel router).
func (j *job) buildBlocks(d *dep) {
	if _, ok := j.blocks[d]; ok {
		return
	}
	parent := j.front[d.parent].data
	if j.s.legacyExec {
		j.blocks[d] = routeSerial(d, parent)
	} else {
		j.blocks[d] = j.s.routeParallel(d, parent)
	}
}

// pinBroadcast flattens the parent of broadcast dep d and charges the
// simulated cluster for holding it on every machine. A failure is
// reported as a structured stage outcome carrying the consuming operator
// (owner), which is where recovery's broadcast demotion applies.
func (j *job) pinBroadcast(d *dep, root *node, st *plan.Stage, owner *node) *stageFailure {
	if _, ok := j.bcast[d]; ok {
		return nil
	}
	parent := j.front[d.parent].data
	var flat Batch
	if j.s.legacyExec {
		flat = flattenSerial(parent)
	} else {
		flat = j.s.flattenParallel(parent)
	}
	bytes := j.s.estResidentBytes(flat, d.parent.weight)
	clockBefore := j.s.exec.Clock()
	if err := j.s.exec.Broadcast(bytes); err != nil {
		var oom *cluster.OOMError
		errors.As(err, &oom)
		return &stageFailure{
			root:  root,
			st:    st,
			owner: owner,
			oom:   oom,
			err:   fmt.Errorf("engine: broadcast of %s failed: %w", d.parent.label, err),
		}
	}
	if j.s.obs.Enabled() {
		j.s.obs.BroadcastPinned(obs.Broadcast{
			Label:   d.parent.label,
			Bytes:   bytes,
			Seconds: j.s.exec.Clock() - clockBefore,
		})
	}
	j.bcast[d] = flat
	j.bcastBytes[d] = bytes
	return nil
}

// evalPart computes partition p of node n inside a task, pipelining narrow
// parents and reading materialized data at stage boundaries. Partitions of
// the plan's fan-in>1 narrow nodes are computed exactly once per job and
// their task costs replayed to every consumer (see memoEntry).
func (j *job) evalPart(tc *Ctx, n *node, p int) Batch {
	if cp, ok := j.front[n]; ok {
		return cp.data[p]
	}
	if j.ep.memo[n] {
		ei, _ := j.memo.LoadOrStore(memoKey{n, p}, &memoEntry{})
		e := ei.(*memoEntry)
		hit := true
		e.once.Do(func() {
			hit = false
			sub := &Ctx{job: j}
			e.data = j.evalPartDirect(sub, n, p)
			e.work, e.shuffleBytes, e.mem = sub.work, sub.shuffleBytes, sub.mem
		})
		if hit {
			j.memoHits.Add(1)
		}
		tc.work += e.work
		tc.shuffleBytes += e.shuffleBytes
		tc.UseMemory(e.mem)
		return e.data
	}
	return j.evalPartDirect(tc, n, p)
}

// evalPartDirect is evalPart without the fan-in memo check.
//
// Work is charged input-based: each node pays for the rows it consumes,
// weighted by the producing node's record weight, so a row that stands for
// many real records costs proportionally more and a cardinality-bounded
// row (weight 1) costs exactly one row — regardless of which operator
// produced it.
func (j *job) evalPartDirect(tc *Ctx, n *node, p int) Batch {
	if fi := j.ep.fused[n]; fi != nil {
		// The node tops a fused narrow chain legal under this plan: run
		// the whole chain as one typed loop (fuse.go). Charges replay the
		// unfused per-link sequence exactly.
		return j.evalFused(tc, fi, p)
	}
	inputs := make([]Batch, len(n.deps))
	for i := range n.deps {
		d := &n.deps[i]
		switch d.kind {
		case depNarrow:
			if d.narrowMap == nil {
				inputs[i] = j.evalPart(tc, d.parent, p)
			} else if pps := d.narrowMap(p); len(pps) == 1 {
				inputs[i] = j.evalPart(tc, d.parent, pps[0])
			} else if len(pps) == 0 {
				inputs[i] = zeroBatch
			} else {
				// Fan-in concat. The boxed representation grew this
				// slice by chunk-wise appends, whose capacity growth is
				// observable downstream — run the identical appends and
				// adopt the resulting capacity as the batch's BoxedCap.
				var in []any
				for _, pp := range pps {
					in = append(in, toBoxed(j.evalPart(tc, d.parent, pp))...)
				}
				inputs[i] = boxedBatch(in)
			}
			tc.work += float64(batchLen(inputs[i])) * d.parent.weight
		case depShuffle:
			// Shuffle reads are charged as network cost and consume
			// CPU; residency is claimed by the consuming operator
			// according to its own semantics (a reduce holds its
			// build map, a groupBy holds its whole input, a
			// pipelined map holds neither).
			b := j.blocks[d][p]
			tc.work += float64(batchLen(b)) * d.parent.weight
			tc.shuffleBytes += float64(estPartitionBytes(b)) * d.parent.weight
			if j.s.obs.Enabled() {
				tc.boundaryBytes += encodedBatchBytes(&tc.encScratch, b)
				if tc.batchShape == "" && batchLen(b) > 0 {
					tc.batchShape = b.Shape()
				}
			}
			if b == nil {
				b = zeroBatch
			}
			inputs[i] = b
		case depBroadcast:
			// The broadcast build cost is charged at pin time; probe
			// work is charged by the rows the consumer emits.
			inputs[i] = j.bcast[d]
		}
	}
	return n.compute(tc, p, inputs)
}

// once runs f exactly once per job for the given node id, caching the
// result. Typed operators use it to build per-job lookup structures (e.g.
// the hash table of a broadcast join) once instead of per task. Entries
// are sharded per id, so builds for different ids proceed concurrently.
func (j *job) once(id int64, f func() any) any {
	ei, _ := j.onceVals.LoadOrStore(id, &onceEntry{})
	e := ei.(*onceEntry)
	e.once.Do(func() { e.val = f() })
	return e.val
}
