package engine

import (
	"fmt"
	"sync"

	"matryoshka/internal/cluster"
)

// job executes one action. Stage roots (action target, shuffle/broadcast
// map sides, cached nodes) are materialized fully; everything else is
// pipelined into the tasks of its consuming stage.
type job struct {
	s     *Session
	roots map[*node]bool
	mat   map[*node][][]any // materialized partitions of stage roots
	// blocks memoizes shuffle routing per dep: blocks[d][childPart].
	blocks map[*dep][][]any
	// bcast memoizes flattened broadcast inputs per dep.
	bcast map[*dep][]any

	// memoNodes marks narrow, non-root nodes whose partitions are consumed
	// more than once in this job (diamond DAGs, overlapping narrowMaps,
	// nodes read from several stages). evalPart computes each of their
	// partitions exactly once instead of once per consumer.
	memoNodes map[*node]bool
	memo      sync.Map // memoKey -> *memoEntry

	// onceVals shards per-job Once entries by id, so concurrent builds of
	// unrelated structures (e.g. two broadcast joins' hash tables) never
	// serialize on a job-wide mutex; only callers of the same id wait for
	// its single build.
	onceVals sync.Map // int64 -> *onceEntry
}

type memoKey struct {
	n *node
	p int
}

// memoEntry caches one computed partition of a fan-in>1 narrow node plus
// the task-cost deltas incurred computing it. Every consumer — including
// the task that ran the computation — replays the deltas into its own Ctx,
// so simulated-cluster accounting is identical to recomputing the
// partition per consumer: the charges are sums of per-row terms, and each
// consumer receives exactly the same sum it would have accumulated inline.
type memoEntry struct {
	once         sync.Once
	data         []any
	work         float64
	shuffleBytes float64
	mem          int64
}

type onceEntry struct {
	once sync.Once
	val  any
}

// runJob launches a job whose result is the materialized target node.
func (s *Session) runJob(target *node) ([][]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sim.StartJob()
	j := &job{
		s:         s,
		roots:     map[*node]bool{},
		mat:       map[*node][][]any{},
		blocks:    map[*dep][][]any{},
		bcast:     map[*dep][]any{},
		memoNodes: map[*node]bool{},
	}
	j.planRoots(target)
	out, err := j.materialize(target)
	s.sim.ReleaseBroadcasts()
	return out, err
}

// planRoots marks stage boundaries reachable from target.
func (j *job) planRoots(target *node) {
	j.roots[target] = true
	seen := map[*node]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for i := range n.deps {
			d := &n.deps[i]
			if d.kind != depNarrow || d.parent.cached {
				j.roots[d.parent] = true
			}
			walk(d.parent)
		}
	}
	walk(target)
	j.planMemo(seen)
}

// planMemo marks the narrow, non-root nodes with partition fan-in > 1: a
// parent partition listed by several consuming child partitions (Concat/
// Coalesce-style narrowMaps) or consumed by several child nodes (diamond
// DAGs) would otherwise be recomputed once per consumer by evalPart. The
// count is a static over-approximation of demand — memoizing a partition
// that is consumed once is harmless (the replayed costs are exact).
func (j *job) planMemo(seen map[*node]bool) {
	if j.s.legacyExec {
		return // reference mode: recompute per consumer, as the old engine did
	}
	refs := map[*node][]int32{}
	for n := range seen {
		for i := range n.deps {
			d := &n.deps[i]
			if d.kind != depNarrow || j.roots[d.parent] {
				continue // roots are materialized in mat, never recomputed
			}
			rs := refs[d.parent]
			if rs == nil {
				rs = make([]int32, d.parent.parts)
				refs[d.parent] = rs
			}
			if d.narrowMap == nil {
				for p := 0; p < n.parts && p < len(rs); p++ {
					rs[p]++
				}
			} else {
				for p := 0; p < n.parts; p++ {
					for _, pp := range d.narrowMap(p) {
						if pp >= 0 && pp < len(rs) {
							rs[pp]++
						}
					}
				}
			}
		}
	}
	for n, rs := range refs {
		for _, c := range rs {
			if c > 1 {
				j.memoNodes[n] = true
				break
			}
		}
	}
}

// materialize computes all partitions of stage root n (memoized).
func (j *job) materialize(n *node) ([][]any, error) {
	if data, ok := j.mat[n]; ok {
		return data, nil
	}
	if n.cached {
		n.cacheMu.Lock()
		data := n.cacheData
		n.cacheMu.Unlock()
		if data != nil {
			j.mat[n] = data
			return data, nil
		}
	}

	// Find this stage's boundary deps and materialize their parents first.
	boundary := j.stageBoundary(n)
	for _, d := range boundary {
		if _, err := j.materialize(d.parent); err != nil {
			return nil, err
		}
	}
	// Route shuffle blocks and pin broadcasts for the boundary deps.
	for _, d := range boundary {
		switch d.kind {
		case depShuffle:
			if err := j.buildBlocks(d); err != nil {
				return nil, err
			}
		case depBroadcast:
			if err := j.pinBroadcast(d); err != nil {
				return nil, err
			}
		}
	}

	// Run the stage's tasks for real, in parallel on the session's
	// persistent worker pool, measuring costs. results cannot be pooled
	// (it outlives the stage in j.mat and possibly the node cache) but the
	// cost buffer is per-stage scratch reused across the session.
	results := make([][]any, n.parts)
	costs := j.s.stageCosts(n.parts)
	var panicOnce sync.Once
	var panicked any
	runTask := func(p int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = fmt.Errorf("engine: task %d of %s panicked: %v", p, n.label, r) })
			}
		}()
		tc := &Ctx{job: j}
		out := j.evalPart(tc, n, p)
		results[p] = out
		// The stage root's output is materialized: charge the rows it
		// emits and hold it resident alongside operator-claimed memory.
		tc.work += float64(len(out)) * n.weight
		tc.UseMemory(j.s.estResidentBytes(out, n.weight))
		cc := j.s.cfg.Cluster
		costs[p] = cluster.Task{
			Compute: tc.work*cc.PerElementCost + tc.shuffleBytes*cc.PerByteShuffle,
			Memory:  tc.mem,
		}
	}
	if j.s.legacyExec {
		// Reference mode: the pre-pool launch — one goroutine per
		// partition, bounded by a stage-local semaphore.
		var wg sync.WaitGroup
		sem := make(chan struct{}, j.s.workers)
		for p := 0; p < n.parts; p++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(p int) {
				defer wg.Done()
				defer func() { <-sem }()
				runTask(p)
			}(p)
		}
		wg.Wait()
	} else {
		j.s.pool.parallelFor(j.s.workers, n.parts, runTask)
	}
	if panicked != nil {
		panic(panicked)
	}

	dbg := j.s.cfg.DebugStages
	var before float64
	if dbg {
		before = j.s.sim.Clock()
	}
	if err := j.s.sim.RunStage(costs); err != nil {
		return nil, fmt.Errorf("engine: stage %q (%s) failed: %w", n.label, j.chainOf(n), err)
	}
	if dbg {
		if d := j.s.sim.Clock() - before; d > 1 {
			var mxC float64
			for _, c := range costs {
				if c.Compute > mxC {
					mxC = c.Compute
				}
			}
			chain := n.label
			cur := n
			for len(cur.deps) > 0 && cur.deps[0].kind == depNarrow && !j.roots[cur.deps[0].parent] {
				cur = cur.deps[0].parent
				chain += "<-" + cur.label
			}
			if len(cur.deps) > 0 {
				chain += "<-[" + cur.deps[0].parent.label + "]"
			}
			fmt.Printf("DBGSTAGE %-16s parts=%-5d dt=%.1f maxtask=%.1f w=%.0f chain=%s\n", n.label, len(costs), d, mxC, n.weight, chain)
		}
	}
	j.mat[n] = results
	if n.cached {
		n.cacheMu.Lock()
		n.cacheData = results
		n.cacheMu.Unlock()
	}
	return results, nil
}

// chainOf renders the stage's pipelined operator chain for error messages.
func (j *job) chainOf(n *node) string {
	chain := n.label
	cur := n
	for len(cur.deps) > 0 && cur.deps[0].kind == depNarrow && !j.roots[cur.deps[0].parent] {
		cur = cur.deps[0].parent
		chain += fmt.Sprintf("<-%s/w%.0f", cur.label, cur.weight)
	}
	if len(cur.deps) > 0 {
		p := cur.deps[0].parent
		chain += fmt.Sprintf("<-[%s/w%.0f]", p.label, p.weight)
	}
	return chain
}

// stageBoundary returns the deps at the edge of n's stage: every shuffle or
// broadcast dep, and every narrow dep whose parent is itself a stage root,
// reachable from n without crossing such a boundary.
func (j *job) stageBoundary(n *node) []*dep {
	var out []*dep
	seen := map[*node]bool{n: true}
	var walk func(m *node)
	walk = func(m *node) {
		for i := range m.deps {
			d := &m.deps[i]
			if d.kind != depNarrow || j.roots[d.parent] {
				out = append(out, d)
				continue
			}
			if !seen[d.parent] {
				seen[d.parent] = true
				walk(d.parent)
			}
		}
	}
	walk(n)
	return out
}

// buildBlocks routes the materialized parent of shuffle dep d into the
// child's partitions (see route.go for the parallel router).
func (j *job) buildBlocks(d *dep) error {
	if _, ok := j.blocks[d]; ok {
		return nil
	}
	parent := j.mat[d.parent]
	if j.s.legacyExec {
		j.blocks[d] = routeSerial(d, parent)
	} else {
		j.blocks[d] = j.s.routeParallel(d, parent)
	}
	return nil
}

// pinBroadcast flattens the parent of broadcast dep d and charges the
// simulated cluster for holding it on every machine.
func (j *job) pinBroadcast(d *dep) error {
	if _, ok := j.bcast[d]; ok {
		return nil
	}
	parent := j.mat[d.parent]
	var flat []any
	if j.s.legacyExec {
		flat = flattenSerial(parent)
	} else {
		flat = j.s.flattenParallel(parent)
	}
	if err := j.s.sim.Broadcast(j.s.estResidentBytes(flat, d.parent.weight)); err != nil {
		return fmt.Errorf("engine: broadcast of %s failed: %w", d.parent.label, err)
	}
	j.bcast[d] = flat
	return nil
}

// evalPart computes partition p of node n inside a task, pipelining narrow
// parents and reading materialized data at stage boundaries. Partitions of
// fan-in>1 narrow nodes are computed exactly once per job and their task
// costs replayed to every consumer (see memoEntry).
func (j *job) evalPart(tc *Ctx, n *node, p int) []any {
	if data, ok := j.mat[n]; ok {
		return data[p]
	}
	if j.memoNodes[n] {
		ei, _ := j.memo.LoadOrStore(memoKey{n, p}, &memoEntry{})
		e := ei.(*memoEntry)
		e.once.Do(func() {
			sub := &Ctx{job: j}
			e.data = j.evalPartDirect(sub, n, p)
			e.work, e.shuffleBytes, e.mem = sub.work, sub.shuffleBytes, sub.mem
		})
		tc.work += e.work
		tc.shuffleBytes += e.shuffleBytes
		tc.UseMemory(e.mem)
		return e.data
	}
	return j.evalPartDirect(tc, n, p)
}

// evalPartDirect is evalPart without the fan-in memo check.
//
// Work is charged input-based: each node pays for the rows it consumes,
// weighted by the producing node's record weight, so a row that stands for
// many real records costs proportionally more and a cardinality-bounded
// row (weight 1) costs exactly one row — regardless of which operator
// produced it.
func (j *job) evalPartDirect(tc *Ctx, n *node, p int) []any {
	inputs := make([][]any, len(n.deps))
	for i := range n.deps {
		d := &n.deps[i]
		switch d.kind {
		case depNarrow:
			if d.narrowMap == nil {
				inputs[i] = j.evalPart(tc, d.parent, p)
			} else if pps := d.narrowMap(p); len(pps) == 1 {
				inputs[i] = j.evalPart(tc, d.parent, pps[0])
			} else {
				var in []any
				for _, pp := range pps {
					in = append(in, j.evalPart(tc, d.parent, pp)...)
				}
				inputs[i] = in
			}
			tc.work += float64(len(inputs[i])) * d.parent.weight
		case depShuffle:
			// Shuffle reads are charged as network cost and consume
			// CPU; residency is claimed by the consuming operator
			// according to its own semantics (a reduce holds its
			// build map, a groupBy holds its whole input, a
			// pipelined map holds neither).
			b := j.blocks[d][p]
			tc.work += float64(len(b)) * d.parent.weight
			tc.shuffleBytes += float64(estPartitionBytes(b)) * d.parent.weight
			inputs[i] = b
		case depBroadcast:
			// The broadcast build cost is charged at pin time; probe
			// work is charged by the rows the consumer emits.
			inputs[i] = j.bcast[d]
		}
	}
	return n.compute(tc, p, inputs)
}

// once runs f exactly once per job for the given node id, caching the
// result. Typed operators use it to build per-job lookup structures (e.g.
// the hash table of a broadcast join) once instead of per task. Entries
// are sharded per id, so builds for different ids proceed concurrently.
func (j *job) once(id int64, f func() any) any {
	ei, _ := j.onceVals.LoadOrStore(id, &onceEntry{})
	e := ei.(*onceEntry)
	e.once.Do(func() { e.val = f() })
	return e.val
}
