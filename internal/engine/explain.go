package engine

import (
	"fmt"
	"strings"
)

// Explain renders the dataset's lineage DAG as an indented tree: one line
// per node with its operator label, partition count, record weight,
// partitioning (if any) and how each child consumes its parent (narrow /
// shuffle / broadcast). Shared sub-plans are printed once and referenced
// by id afterwards.
func Explain[T any](d Dataset[T]) string {
	var b strings.Builder
	seen := map[*node]bool{}
	var walk func(n *node, depth int, via string)
	walk = func(n *node, depth int, via string) {
		indent := strings.Repeat("  ", depth)
		attrs := []string{fmt.Sprintf("parts=%d", n.parts)}
		if n.weight > 1 {
			attrs = append(attrs, fmt.Sprintf("weight=%.0f", n.weight))
		}
		if n.pkey != nil {
			attrs = append(attrs, fmt.Sprintf("partitioned-by=%s/%d", n.pkey.keyType, n.pkey.parts))
		}
		if n.cached {
			attrs = append(attrs, "cached")
		}
		prefix := ""
		if via != "" {
			prefix = via + " "
		}
		if seen[n] {
			fmt.Fprintf(&b, "%s%s#%d %s (shared)\n", indent, prefix, n.id, n.label)
			return
		}
		seen[n] = true
		fmt.Fprintf(&b, "%s%s#%d %s [%s]\n", indent, prefix, n.id, n.label, strings.Join(attrs, " "))
		for i := range n.deps {
			dp := &n.deps[i]
			via := "<-narrow"
			switch dp.kind {
			case depShuffle:
				via = "<-shuffle"
			case depBroadcast:
				via = "<-broadcast"
			}
			walk(dp.parent, depth+1, via)
		}
	}
	walk(d.n, 0, "")
	return b.String()
}

// ExplainPhysical runs the planning step an action would run for this
// dataset and renders the resulting physical plan: the stages the job
// would launch, their shuffle/broadcast dependencies, the pipelined
// operator chains, and the fan-in memo sites. Unlike Explain (the logical
// lineage), this is exactly what the executor consumes.
func ExplainPhysical[T any](d Dataset[T]) string {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buildExecPlan(d.n).plan.String()
}
