package engine

// Lineage-based fault tolerance (the Spark contract the paper's substrate
// relies on, Sec. 9): when a machine crash destroys a completed stage's
// shuffle outputs, the consuming stage's fetch fails and the job rewinds
// its frontier along lineage — the lost parent stages are marked un-done
// and recomputed, everything still resident is kept, and the run resumes
// with the virtual clock preserved (failed attempts and recomputation both
// stay charged). Recomputation is bounded per stage; when a stage keeps
// losing its outputs the job backs off exponentially and retries from
// scratch, and when that budget is spent too it aborts with a full
// failure report.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine/plan"
)

const (
	// maxStageRecomputes caps lineage recomputations of one stage root
	// after fetch failures (Spark's spark.stage.maxConsecutiveAttempts).
	maxStageRecomputes = 8
	// maxFetchJobRetries caps from-scratch job retries after a stage
	// exhausts its recompute budget.
	maxFetchJobRetries = 3
	// fetchBackoffBase is the virtual-seconds backoff before the first
	// job retry; it doubles per retry.
	fetchBackoffBase = 5.0
)

// Residency is the optional machine-failure facet of a Backend: it tracks
// which machines hold which stage outputs, so fetches can fail when a
// machine crashes. The private cluster.Simulator implements it; shared
// scheduler tenants do not (the scheduler handles crashes at task
// granularity instead), and the engine no-ops without it.
type Residency interface {
	// RegisterOutput records a completed stage's shuffle output (one
	// partition per entry) on the currently live machines.
	RegisterOutput(parts int) cluster.OutputID
	// CheckFetch reports a *cluster.FetchFailedError if any partition of
	// the output was destroyed by a machine crash.
	CheckFetch(id cluster.OutputID) error
	// DropOutput forgets an output (its stage was rewound or recomputed).
	DropOutput(id cluster.OutputID)
	// Advance charges driver-side virtual seconds (retry backoff).
	Advance(dt float64)
}

var _ Residency = (*cluster.Simulator)(nil)

// checkFetch simulates the cluster-side read of boundary dep d by stage
// root n: if the parent's registered shuffle output lost partitions to a
// machine crash, the stage fails with a fetch failure instead of
// launching. Deps whose data this job already routed (blocks) or pinned
// (broadcast flatten) were fetched before the crash and stay usable;
// adopted cache entries never registered an output and fetch cleanly.
func (j *job) checkFetch(d *dep, n *node, st *plan.Stage) *stageFailure {
	if j.s.resid == nil {
		return nil
	}
	switch d.kind {
	case depShuffle:
		if _, routed := j.blocks[d]; routed {
			return nil
		}
	case depBroadcast:
		if _, pinned := j.bcast[d]; pinned {
			return nil
		}
	}
	id, ok := j.outputs[d.parent]
	if !ok {
		return nil
	}
	err := j.s.resid.CheckFetch(id)
	if err == nil {
		return nil
	}
	f := &stageFailure{
		root: n,
		st:   st,
		lost: d.parent,
		err: fmt.Errorf("engine: stage %q could not fetch %q: %w",
			n.label, d.parent.label, err),
	}
	if ff, ok := err.(*cluster.FetchFailedError); ok {
		f.fetch = ff
	}
	return f
}

// registerOutput records a freshly materialized stage root's shuffle
// output with the backend's residency tracker, replacing any stale handle
// from a previous attempt.
func (j *job) registerOutput(n *node) {
	if j.s.resid == nil {
		return
	}
	if old, ok := j.outputs[n]; ok {
		j.s.resid.DropOutput(old)
	}
	j.outputs[n] = j.s.resid.RegisterOutput(n.parts)
}

// rewindLost is the fetch-failure recovery: un-do every frontier stage
// whose registered outputs a crash destroyed (the crash took a whole
// machine, so sibling stages' outputs are typically gone too) and let the
// runner recompute exactly those stages from lineage. Returns the obs
// action string and whether the job should resume; on false the caller
// aborts with f.err, which this method upgrades to a full failure report.
func (j *job) rewindLost(f *stageFailure) (string, bool) {
	// Probe every registered output so one rewind covers the whole crash.
	var lost []*node
	if j.s.resid != nil {
		for n, id := range j.outputs {
			if j.s.resid.CheckFetch(id) != nil {
				lost = append(lost, n)
			}
		}
	}
	if len(lost) == 0 {
		if f.lost == nil {
			// A fleet-level failure (worker quorum lost) names no parent
			// and left no probe-able lost outputs: there is nothing to
			// rewind selectively, so escalate straight to the bounded
			// from-scratch job retry.
			return j.retryJob(f)
		}
		lost = []*node{f.lost}
	}
	sort.Slice(lost, func(a, b int) bool { return lost[a].id < lost[b].id })

	overCap := false
	for _, n := range lost {
		j.recomputed[n]++
		if j.recomputed[n] > maxStageRecomputes {
			overCap = true
		}
	}
	if overCap {
		return j.retryJob(f)
	}

	ids := make([]string, 0, len(lost))
	for _, n := range lost {
		j.rewindNode(n)
		if st := j.ep.stageOf(n); st != nil {
			ids = append(ids, fmt.Sprintf("%d", st.ID))
		} else {
			ids = append(ids, n.label)
		}
	}
	return fmt.Sprintf("recomputed parents {%s}", strings.Join(ids, ",")), true
}

// rewindNode marks one stage root un-done: its frontier checkpoint,
// registered output, and the shuffle blocks this job routed from it are
// dropped, so the replanned suffix recomputes it. Node caches are kept —
// they model driver-side persisted replicas — and pinned broadcasts stay
// pinned: the simulator re-pushes broadcast blocks to rejoining machines
// and charges for it.
func (j *job) rewindNode(n *node) {
	delete(j.front, n)
	if id, ok := j.outputs[n]; ok {
		j.s.resid.DropOutput(id)
		delete(j.outputs, n)
	}
	for d := range j.blocks {
		if d.parent == n {
			delete(j.blocks, d)
		}
	}
}

// retryJob is the escalation past per-stage recompute limits: charge an
// exponentially growing backoff, rewind every launched stage (adopted
// cache entries are driver-resident and stay), and restart the job's
// stage graph from scratch. After maxFetchJobRetries the job aborts and
// f.err becomes the full failure report.
func (j *job) retryJob(f *stageFailure) (string, bool) {
	if j.jobRetries >= maxFetchJobRetries {
		f.err = j.failureReport(f)
		return "", false
	}
	j.jobRetries++
	backoff := fetchBackoffBase * math.Pow(2, float64(j.jobRetries-1))
	if j.s.resid != nil {
		j.s.resid.Advance(backoff)
	}
	for n, cp := range j.front {
		if !cp.adopted {
			delete(j.front, n)
		}
	}
	for n, id := range j.outputs {
		if j.s.resid != nil {
			j.s.resid.DropOutput(id)
		}
		delete(j.outputs, n)
	}
	j.blocks = map[*dep][]Batch{}
	return fmt.Sprintf("job retry %d/%d (backoff %.0fs)", j.jobRetries, maxFetchJobRetries, backoff), true
}

// failureReport composes the abort error for a job that machine failures
// defeated: which stages were recomputed how often, how many retries were
// spent, and what the cluster went through.
func (j *job) failureReport(f *stageFailure) error {
	type rc struct {
		label string
		n     int
	}
	var rcs []rc
	for n, c := range j.recomputed {
		rcs = append(rcs, rc{n.label, c})
	}
	sort.Slice(rcs, func(a, b int) bool { return rcs[a].label < rcs[b].label })
	detail := make([]string, 0, len(rcs))
	for _, r := range rcs {
		detail = append(detail, fmt.Sprintf("%s×%d", r.label, r.n))
	}
	st := j.s.exec.Stats()
	return fmt.Errorf("engine: job aborted by machine failures after %d job retries "+
		"(stage recomputes: %s; cluster: %d crashes, %d rejoins, %d failed fetches): %w",
		j.jobRetries, strings.Join(detail, ", "), st.MachineCrashes, st.MachineRejoins, st.FetchFailures, f.err)
}
