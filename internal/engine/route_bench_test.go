package engine

// Benchmarks for the parallel execution hot path: shuffle routing,
// broadcast flattening, stage execution, and the narrow fan-in memo.
// Each has a serial/legacy baseline so `go test -bench` reports the
// pre/post comparison directly. Wall-clock gains from the worker pool
// scale with GOMAXPROCS; the fan-in memo is algorithmic and shows up
// even on a single core.

import (
	"runtime"
	"testing"
)

// benchParent builds nsrc source partitions of perSrc int elements as
// typed batches. skew=false: values are distinct, so a hash partitioner
// spreads them evenly. skew=true: 90% of the elements share one hot value
// (all bound for the same target block), the tail is uniform.
func benchParent(nsrc, perSrc int, skew bool) []Batch {
	parent := make([]Batch, nsrc)
	for src := range parent {
		part := make([]int, perSrc)
		for i := range part {
			v := src*perSrc + i
			if skew && i%10 != 0 {
				v = 42 // hot key
			}
			part[i] = v
		}
		parent[src] = batchOf(part, perSrc)
	}
	return parent
}

func benchDep(parts int) *dep {
	d := &dep{kind: depShuffle, childParts: parts, partitioner: func(e any, n int) int {
		return int(uint32(e.(int))*2654435761) % n
	}}
	// The typed counting-pass spelling, as the production shuffle-dep
	// constructors install it; boxed batches fall through to partitioner.
	d.batchTargets = func(b Batch, nParts int, tg, ct []int32) bool {
		v, ok := b.(*Vec[int])
		if !ok {
			return false
		}
		for i, e := range v.xs {
			t := int32(int(uint32(e)*2654435761) % nParts)
			tg[i] = t
			ct[t]++
		}
		return true
	}
	return d
}

// BenchmarkShuffleBoundary is the representation A/B across one whole
// shuffle stage boundary: the producing operator materializes its output
// partitions from typed host values, and the router scatters them into
// target blocks. The boxed side is the pre-batch data path — every element
// boxed into a []any seam, per-element partitioner calls, per-element
// block writes. The typed side is the batch data path — a typed output
// slice, one counting-pass dispatch per batch, typed scatter. The
// allocs/op gap is the per-element boxing the typed representation no
// longer performs; `make bench-check` gates it against the committed
// baseline.
func BenchmarkShuffleBoundary(b *testing.B) {
	const nsrc, perSrc, nt = 8, 8192, 16
	src := make([][]int, nsrc) // the typed values a compute UDF produced
	for s := range src {
		vals := make([]int, perSrc)
		for i := range vals {
			vals[i] = s*perSrc + i
		}
		src[s] = vals
	}
	d := benchDep(nt)
	b.Run("boxed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parent := make([]Batch, nsrc)
			for s, vals := range src {
				out := make([]any, len(vals))
				for k, v := range vals {
					out[k] = v
				}
				parent[s] = boxedBatch(out)
			}
			routeSerial(d, parent)
		}
	})
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parent := make([]Batch, nsrc)
			for s, vals := range src {
				out := make([]int, len(vals))
				copy(out, vals)
				parent[s] = batchOf(out, len(out))
			}
			routeSerial(d, parent)
		}
	})
}

// BenchmarkShuffleRoute compares the retained serial router against the
// counting-pass parallel router on uniform and skewed key distributions.
func BenchmarkShuffleRoute(b *testing.B) {
	const nsrc, perSrc, nt = 8, 8192, 16
	for _, dist := range []struct {
		name string
		skew bool
	}{{"uniform", false}, {"skewed", true}} {
		parent := benchParent(nsrc, perSrc, dist.skew)
		d := benchDep(nt)
		b.Run(dist.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				routeSerial(d, parent)
			}
		})
		b.Run(dist.name+"/parallel", func(b *testing.B) {
			s := poolSession(runtime.GOMAXPROCS(0))
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.routeParallel(d, parent)
			}
		})
	}
}

// BenchmarkBroadcastFlatten compares the serial and parallel broadcast
// flatten used by pinBroadcast. The small shape sits below flattenCutoff
// — there the pool dispatch used to cost as much as the copy itself, so
// flattenParallel now routes it to the serial sweep — and the large shape
// is where the parallel copy actually engages. Each sub runs one untimed
// warm-up flatten first: the output is a single multi-MB allocation, and
// without the warm-up a short -benchtime run (like the bench-check smoke
// gate's 3x) measures mostly first-touch page faults instead of the copy.
func BenchmarkBroadcastFlatten(b *testing.B) {
	for _, size := range []struct {
		name         string
		nsrc, perSrc int
	}{{"small", 16, 8192}, {"large", 16, 65536}} {
		parent := benchParent(size.nsrc, size.perSrc, false)
		b.Run(size.name+"/serial", func(b *testing.B) {
			flattenSerial(parent)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flattenSerial(parent)
			}
		})
		b.Run(size.name+"/parallel", func(b *testing.B) {
			s := poolSession(runtime.GOMAXPROCS(0))
			defer s.Close()
			s.flattenParallel(parent)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.flattenParallel(parent)
			}
		})
	}
}

// spin burns deterministic CPU so per-element UDF cost dominates stage
// benchmarks the way real compute does.
func spin(v, rounds int) int {
	h := uint32(v)
	for i := 0; i < rounds; i++ {
		h = h*2654435761 + 1
	}
	return int(h)
}

// expandTab backs the stage benchmark's flatMap with preallocated static
// slices: the UDF itself allocates nothing, so the benchmark measures the
// engine's per-element machinery (boxing, closure seams, routing) rather
// than UDF garbage. Values stay below 256 so boxing them is allocation-free
// (Go interns small-integer boxes) in the unfused path too — the alloc
// delta between modes is then purely the engine's own boxing of
// intermediate rows.
var expandTab = func() [16][]int {
	var tab [16][]int
	for i := range tab {
		tab[i] = []int{i * 3, i*3 + 1}
	}
	return tab
}()

// BenchmarkStageExec runs a five-op narrow chain (flatMap, keying map,
// filter, mapValues, rekeying map — the shape of a parse→project→filter→
// normalize→rekey ETL prefix) into a map-side combine and shuffle reduce,
// end to end, across the three
// executors: legacy (serial routing, goroutine-per-partition launch),
// pooled with fusion off, and pooled with the fused narrow chain. A fresh
// DAG is built per iteration so nothing is served from the job cache; the
// source is parallelized once outside the loop so its one-time boxing is
// not measured.
func BenchmarkStageExec(b *testing.B) {
	data := make([]int, 1<<14)
	for i := range data {
		data[i] = i
	}
	run := func(b *testing.B, legacy, fuse bool) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		s.legacyExec = legacy
		s.noFuse = !fuse
		src := Parallelize(s, data, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			expanded := FlatMap(src, func(v int) []int { return expandTab[v&15] })
			keyed := Map(expanded, func(v int) Pair[int, int] {
				return Pair[int, int]{Key: spin(v, 16) % 64, Val: v}
			})
			hot := Filter(keyed, func(kv Pair[int, int]) bool { return kv.Val%16 != 0 })
			scaled := MapValues(hot, func(v int) int { return v + 1 })
			rekeyed := Map(scaled, func(kv Pair[int, int]) Pair[int, int] {
				return Pair[int, int]{Key: kv.Key & 63, Val: kv.Val}
			})
			red := ReduceByKey(rekeyed, func(a, c int) int { return a + c })
			if _, err := Count(red); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy", func(b *testing.B) { run(b, true, false) })
	b.Run("pooled", func(b *testing.B) { run(b, false, false) })
	b.Run("fused", func(b *testing.B) { run(b, false, true) })
}

// BenchmarkNarrowChain isolates the fused path's target shape: a pure
// narrow map∘filter∘map pipeline materialized at its root, no shuffle.
// Unfused, every operator boxes its whole output into a fresh []any seam;
// fused, rows flow typed through one loop and only the root materializes.
func BenchmarkNarrowChain(b *testing.B) {
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = i
	}
	run := func(b *testing.B, fuse bool) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		s.noFuse = !fuse
		src := Parallelize(s, data, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mapped := Map(src, func(v int) int { return spin(v, 16) })
			kept := Filter(mapped, func(v int) bool { return v%8 != 0 })
			small := Map(kept, func(v int) int { return v & 255 })
			if _, err := Count(small); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unfused", func(b *testing.B) { run(b, false) })
	b.Run("fused", func(b *testing.B) { run(b, true) })
}

// BenchmarkFanInMemo runs a fan-in-heavy DAG: one expensive base dataset
// consumed by four narrow branches that are unioned and concatenated. The
// legacy executor recomputes the base once per consumer; the fan-in memo
// computes it once per (node, partition). The speedup is algorithmic —
// it holds at any GOMAXPROCS.
func BenchmarkFanInMemo(b *testing.B) {
	data := make([]int, 1<<12)
	for i := range data {
		data[i] = i
	}
	run := func(b *testing.B, legacy bool) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		s.legacyExec = legacy
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := Map(Parallelize(s, data, 8), func(v int) int { return spin(v, 2000) })
			u := Union(
				Union(Map(base, func(v int) int { return v + 1 }), Filter(base, func(v int) bool { return v%2 == 0 })),
				Union(Map(base, func(v int) int { return v - 1 }), Filter(base, func(v int) bool { return v%3 == 0 })),
			)
			if _, err := Count(Concat(u)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy", func(b *testing.B) { run(b, true) })
	b.Run("pooled", func(b *testing.B) { run(b, false) })
}

// BenchmarkWorkerPool measures raw parallelFor dispatch overhead against
// the per-stage goroutine+semaphore launch it replaced.
func BenchmarkWorkerPool(b *testing.B) {
	const n = 64
	work := func(int) { spin(1, 5000) }
	b.Run("spawn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			done := make(chan struct{}, n)
			for p := 0; p < n; p++ {
				sem <- struct{}{}
				go func(p int) {
					defer func() { <-sem; done <- struct{}{} }()
					work(p)
				}(p)
			}
			for p := 0; p < n; p++ {
				<-done
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		pool := newWorkerPool(runtime.GOMAXPROCS(0))
		defer pool.close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.parallelFor(runtime.GOMAXPROCS(0), n, work)
		}
	})
}
