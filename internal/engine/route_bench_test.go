package engine

// Benchmarks for the parallel execution hot path: shuffle routing,
// broadcast flattening, stage execution, and the narrow fan-in memo.
// Each has a serial/legacy baseline so `go test -bench` reports the
// pre/post comparison directly. Wall-clock gains from the worker pool
// scale with GOMAXPROCS; the fan-in memo is algorithmic and shows up
// even on a single core.

import (
	"runtime"
	"testing"
)

// benchParent builds nsrc source partitions of perSrc int elements.
// skew=false: values are distinct, so a hash partitioner spreads them
// evenly. skew=true: 90% of the elements share one hot value (all bound
// for the same target block), the tail is uniform.
func benchParent(nsrc, perSrc int, skew bool) [][]any {
	parent := make([][]any, nsrc)
	for src := range parent {
		part := make([]any, perSrc)
		for i := range part {
			v := src*perSrc + i
			if skew && i%10 != 0 {
				v = 42 // hot key
			}
			part[i] = v
		}
		parent[src] = part
	}
	return parent
}

func benchDep(parts int) *dep {
	return &dep{kind: depShuffle, childParts: parts, partitioner: func(e any, n int) int {
		return int(uint32(e.(int))*2654435761) % n
	}}
}

// BenchmarkShuffleRoute compares the retained serial router against the
// counting-pass parallel router on uniform and skewed key distributions.
func BenchmarkShuffleRoute(b *testing.B) {
	const nsrc, perSrc, nt = 8, 8192, 16
	for _, dist := range []struct {
		name string
		skew bool
	}{{"uniform", false}, {"skewed", true}} {
		parent := benchParent(nsrc, perSrc, dist.skew)
		d := benchDep(nt)
		b.Run(dist.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				routeSerial(d, parent)
			}
		})
		b.Run(dist.name+"/parallel", func(b *testing.B) {
			s := poolSession(runtime.GOMAXPROCS(0))
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.routeParallel(d, parent)
			}
		})
	}
}

// BenchmarkBroadcastFlatten compares the serial and parallel broadcast
// flatten used by pinBroadcast.
func BenchmarkBroadcastFlatten(b *testing.B) {
	parent := benchParent(16, 8192, false)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flattenSerial(parent)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.flattenParallel(parent)
		}
	})
}

// spin burns deterministic CPU so per-element UDF cost dominates stage
// benchmarks the way real compute does.
func spin(v, rounds int) int {
	h := uint32(v)
	for i := 0; i < rounds; i++ {
		h = h*2654435761 + 1
	}
	return int(h)
}

// BenchmarkStageExec runs a shuffle-heavy map+reduce pipeline end to end,
// comparing the legacy executor (serial routing, goroutine-per-partition
// with a fresh semaphore per stage) against the pooled executor. A fresh
// DAG is built per iteration so nothing is served from the job cache.
func BenchmarkStageExec(b *testing.B) {
	data := make([]int, 1<<14)
	for i := range data {
		data[i] = i
	}
	run := func(b *testing.B, legacy bool) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		s.legacyExec = legacy
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := Parallelize(s, data, 8)
			keyed := Map(src, func(v int) Pair[int, int] {
				return Pair[int, int]{Key: spin(v, 200) % 512, Val: v}
			})
			red := ReduceByKey(keyed, func(a, c int) int { return a + c })
			if _, err := Count(red); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy", func(b *testing.B) { run(b, true) })
	b.Run("pooled", func(b *testing.B) { run(b, false) })
}

// BenchmarkFanInMemo runs a fan-in-heavy DAG: one expensive base dataset
// consumed by four narrow branches that are unioned and concatenated. The
// legacy executor recomputes the base once per consumer; the fan-in memo
// computes it once per (node, partition). The speedup is algorithmic —
// it holds at any GOMAXPROCS.
func BenchmarkFanInMemo(b *testing.B) {
	data := make([]int, 1<<12)
	for i := range data {
		data[i] = i
	}
	run := func(b *testing.B, legacy bool) {
		s := poolSession(runtime.GOMAXPROCS(0))
		defer s.Close()
		s.legacyExec = legacy
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := Map(Parallelize(s, data, 8), func(v int) int { return spin(v, 2000) })
			u := Union(
				Union(Map(base, func(v int) int { return v + 1 }), Filter(base, func(v int) bool { return v%2 == 0 })),
				Union(Map(base, func(v int) int { return v - 1 }), Filter(base, func(v int) bool { return v%3 == 0 })),
			)
			if _, err := Count(Concat(u)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy", func(b *testing.B) { run(b, true) })
	b.Run("pooled", func(b *testing.B) { run(b, false) })
}

// BenchmarkWorkerPool measures raw parallelFor dispatch overhead against
// the per-stage goroutine+semaphore launch it replaced.
func BenchmarkWorkerPool(b *testing.B) {
	const n = 64
	work := func(int) { spin(1, 5000) }
	b.Run("spawn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			done := make(chan struct{}, n)
			for p := 0; p < n; p++ {
				sem <- struct{}{}
				go func(p int) {
					defer func() { <-sem; done <- struct{}{} }()
					work(p)
				}(p)
			}
			for p := 0; p < n; p++ {
				<-done
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		pool := newWorkerPool(runtime.GOMAXPROCS(0))
		defer pool.close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.parallelFor(runtime.GOMAXPROCS(0), n, work)
		}
	})
}
