package engine

// Portable task runtime: the self-contained, shippable representation of a
// stage, so a Backend that owns real worker processes (internal/procpool)
// can run stage tasks outside the driver.
//
// A stage ships as a RemoteStageSpec: one RemoteTask per output partition,
// each a tree of RemoteNodes (operators named in the portable-op registry,
// plus their serialized construction arguments) whose leaves are block ids
// — shuffle blocks, broadcast pins, materialized frontier partitions and
// driver-evaluated source partitions, all framed with the batchio codec.
// The worker resolves operator names through the same registry (populated
// by init-time registrations linked into both processes — see
// internal/taskreg), fetches the leaf blocks, and replays the exact
// unfused per-operator evaluation the driver's evalPartDirect would run.
// Results are bit-identical by construction: both sides run the same
// registered kernels over the same blocks in the same order.
//
// Stages containing operators with no registered portable form (ad-hoc
// closures, Ctx-charging UDFs, broadcast-join Once builds) are not
// shippable; the executor falls back to driver-local execution for exactly
// those stages and records the reason in the optimizer decision log.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ErrNotPortable marks a stage that cannot be shipped to a remote worker:
// some operator in its task chain has no registered portable form. The
// executor treats it as "run this stage driver-local", never as a failure.
var ErrNotPortable = errors.New("engine: stage is not portable")

// QuorumLostError reports that a RemoteRunner fell below its minimum live
// worker quorum and could not restore it within its bounded wait. The
// executor converts it into a fetch-style stage failure so the lineage
// recovery loop and the bounded job retry decide the job's fate — a stage
// never deadlocks waiting for workers that will not come back.
type QuorumLostError struct {
	Stage string // stage label, for diagnostics
	Live  int    // live workers observed
	Min   int    // configured quorum
}

func (e *QuorumLostError) Error() string {
	return fmt.Sprintf("engine: stage %q: worker quorum lost (%d live < %d required)", e.Stage, e.Live, e.Min)
}

// PoisonTaskError reports a task that was quarantined: it killed (or
// deadline-timed-out) K distinct workers, so dispatching it again would
// serially destroy the fleet. The stage fails fast with the operator
// chain named; the pool itself stays live for subsequent jobs. The
// executor treats it as a hard job failure — never as a driver-local
// fallback, since a worker-killing compute would take the driver down
// with it.
type PoisonTaskError struct {
	Stage   string // stage label
	Part    int    // output partition of the quarantined task
	Ops     string // operator chain of the task's RemoteNode tree
	Workers int    // distinct workers it destroyed
}

func (e *PoisonTaskError) Error() string {
	return fmt.Sprintf("engine: stage %q task %d quarantined: operator chain [%s] killed %d distinct workers",
		e.Stage, e.Part, e.Ops, e.Workers)
}

// blockLostMark prefixes every BlockLostError message. A worker that hits
// a corrupt block reports the failure as a plain error string over the
// wire; ParseBlockLost recovers the typed identity on the driver side by
// scanning for this marker.
const blockLostMark = "lost block "

// BlockLostError reports that a stored block could not be served intact —
// its spill file failed the integrity checksum, was truncated, or
// vanished. The executor surfaces it as a lost shuffle output of the
// block's producing stage, so lineage recomputation rebuilds the data;
// the corrupt bytes are never returned.
type BlockLostError struct {
	Block  uint64
	Reason string
}

func (e *BlockLostError) Error() string {
	return fmt.Sprintf("%s%d: %s", blockLostMark, e.Block, e.Reason)
}

// ParseBlockLost scans an error message (possibly wrapped by worker-side
// prefixes and a wire crossing) for a BlockLostError marker and returns
// the lost block id plus the trailing reason text.
func ParseBlockLost(msg string) (id uint64, reason string, ok bool) {
	i := strings.LastIndex(msg, blockLostMark)
	if i < 0 {
		return 0, "", false
	}
	rest := msg[i+len(blockLostMark):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return 0, "", false
	}
	id, err := strconv.ParseUint(rest[:j], 10, 64)
	if err != nil {
		return 0, "", false
	}
	reason = strings.TrimPrefix(rest[j:], ": ")
	return id, reason, true
}

// OpChain renders the operator names of a task tree, root-last, for
// quarantine diagnostics ("which compute is killing my workers").
func (t *RemoteTask) OpChain() string {
	var ops []string
	var walk func(rn *RemoteNode)
	walk = func(rn *RemoteNode) {
		if rn == nil {
			return
		}
		var desc func(in *RemoteInput)
		desc = func(in *RemoteInput) {
			if in.Node != nil {
				walk(in.Node)
			}
			for i := range in.Concat {
				desc(&in.Concat[i])
			}
		}
		for i := range rn.Inputs {
			desc(&rn.Inputs[i])
		}
		ops = append(ops, rn.Op)
	}
	walk(t.Root)
	return strings.Join(ops, " → ")
}

// portableMark names a node's entry in the portable-op registry plus the
// serialized argument its factory rebuilds the UDF from.
type portableMark struct {
	op  string
	arg []byte
}

// PortableCompute is an operator kernel as a worker runs it: one output
// partition from one input batch per dep. It is the same signature as
// node.compute — the driver-side constructors in ops.go/shuffle.go/join.go
// build their nodes from these very kernels (plus driver-only simulated
// memory charges), which is what makes remote and local results
// bit-identical.
type PortableCompute = func(tc *Ctx, p int, inputs []Batch) Batch

// PortableFactory builds a kernel from a node's serialized argument
// (nil for ops whose UDF is fixed at registration time).
type PortableFactory = func(arg []byte) (PortableCompute, error)

// portableOps is the process-wide by-name operator registry. Both the
// driver and the re-exec'd worker populate it through the same package
// init functions, so a name registered on one side resolves on the other.
var portableOps sync.Map // string -> PortableFactory

// RegisterPortableOp registers a named operator kernel factory. Call from
// an init function of a package linked into both the driver and the worker
// binary (they are the same binary re-exec'd, so one registration site
// covers both). Registering a name twice panics: silent replacement would
// let driver and worker disagree on what a name computes.
func RegisterPortableOp(name string, mk PortableFactory) {
	if name == "" || mk == nil {
		panic("engine: RegisterPortableOp needs a name and a factory")
	}
	if _, dup := portableOps.LoadOrStore(name, mk); dup {
		panic(fmt.Sprintf("engine: portable op %q registered twice", name))
	}
}

func init() {
	// The shuffle-only operators (Repartition, PartitionByKey) compute
	// nothing: routing happened when the driver built the blocks.
	RegisterPortableOp("identity", func([]byte) (PortableCompute, error) {
		return identityCompute, nil
	})
}

// RegisterBatchShape makes element type T decodable by name in this
// process. The driver and the worker must both register every element
// shape that crosses the wire; the taskreg registration helpers do it for
// their operators' input and output types.
func RegisterBatchShape[T any]() { registerBatchCodec[T]() }

// MarkPortable records that d's node computes the registered portable op
// `op` (with the given serialized argument), making stages that pipeline
// it shippable to a process-pool backend. The mark is inert on simulator
// sessions. The op must already be registered — a typo'd name would
// otherwise surface only as a remote failure at run time.
func MarkPortable[T any](d Dataset[T], op string, arg []byte) Dataset[T] {
	if _, ok := portableOps.Load(op); !ok {
		panic(fmt.Sprintf("engine: MarkPortable: op %q is not registered", op))
	}
	d.n.port = &portableMark{op: op, arg: arg}
	return d
}

// MarkCombinePortable marks the map-side node feeding d's shuffle dep
// (e.g. the hidden combine of ReduceByKey) as the registered portable op.
// It must be called on the shuffle consumer returned by the operator
// constructor, whose first dep is the shuffle edge.
func MarkCombinePortable[T any](d Dataset[T], op string, arg []byte) Dataset[T] {
	if _, ok := portableOps.Load(op); !ok {
		panic(fmt.Sprintf("engine: MarkCombinePortable: op %q is not registered", op))
	}
	d.n.deps[0].parent.port = &portableMark{op: op, arg: arg}
	return d
}

// RemoteStageSpec is one stage as shipped to the process pool: a task per
// output partition. All fields are exported value data so the spec
// marshals with encoding/json.
type RemoteStageSpec struct {
	Label string       `json:"label"`
	Tasks []RemoteTask `json:"tasks"`
}

// RemoteTask computes one output partition of the stage root.
type RemoteTask struct {
	Part int         `json:"part"`
	Root *RemoteNode `json:"root"`
}

// RemoteNode is one operator application in a task's chain.
type RemoteNode struct {
	Op     string        `json:"op"`
	Arg    []byte        `json:"arg,omitempty"`
	Part   int           `json:"part"`
	Inputs []RemoteInput `json:"inputs,omitempty"`
}

// RemoteInput is one dep's input batch: a block to fetch from the driver,
// a nested in-chain operator, a fan-in concatenation, or nothing.
type RemoteInput struct {
	Kind   string        `json:"kind"` // "block" | "node" | "concat" | "empty"
	Block  uint64        `json:"block,omitempty"`
	Node   *RemoteNode   `json:"node,omitempty"`
	Concat []RemoteInput `json:"concat,omitempty"`
}

// RemoteStageResult is what a RemoteRunner reports back for one stage.
type RemoteStageResult struct {
	// Parts holds the stage root's materialized partitions, decoded.
	Parts []Batch
	// BytesShipped counts the encoded frames that crossed process
	// boundaries for this stage (input blocks fetched plus results).
	BytesShipped int64
	// Workers is how many live worker processes ran the stage's tasks.
	Workers int
}

// RemoteRunner is the optional process-pool facet of a Backend: a backend
// that implements it receives portable stages instead of having the driver
// execute their tasks locally. PutBlock stores one encoded batch in the
// backend's block store (spilling to disk over its budget) and returns the
// id workers fetch it by. RunRemoteStage distributes the spec's tasks over
// live workers, retrying tasks whose worker died mid-stage; ctx
// cancellation must stop dispatching promptly. Error semantics the
// executor relies on: *QuorumLostError and *BlockLostError become
// fetch-style stage failures (lineage recovery / bounded job retry),
// *PoisonTaskError and ctx errors fail the stage hard, and any other
// error means "run this stage driver-local".
type RemoteRunner interface {
	PutBlock(b Batch) (uint64, error)
	RunRemoteStage(ctx context.Context, spec *RemoteStageSpec) (*RemoteStageResult, error)
}

// stagePortable reports whether the stage rooted at n can ship: every
// in-chain operator down to materialized/shipped leaves must carry a
// portable mark. The walk mirrors buildRemoteSpec's recursion without
// moving any data, so a non-portable stage is rejected before any block
// is stored.
func (j *job) stagePortable(n *node) error {
	if len(n.deps) == 0 {
		return fmt.Errorf("%w: stage root %q is a source (its partitions are driver-resident)", ErrNotPortable, n.label)
	}
	var walk func(nd *node) error
	walk = func(nd *node) error {
		if nd.port == nil {
			return fmt.Errorf("%w: operator %q has no registered portable form (see internal/taskreg)", ErrNotPortable, nd.label)
		}
		for i := range nd.deps {
			d := &nd.deps[i]
			if d.kind != depNarrow {
				continue // shuffle blocks and broadcasts ship as blocks
			}
			p := d.parent
			if _, ok := j.front[p]; ok {
				continue // materialized: ships as a block
			}
			if len(p.deps) == 0 {
				continue // in-chain source: driver-evaluated, ships as a block
			}
			if err := walk(p); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(n)
}

// buildRemoteSpec assembles the shippable spec for the stage rooted at n,
// storing every leaf batch through put exactly once (batches shared across
// tasks — broadcasts, fan-in reads — dedupe on identity). It mirrors
// evalPartDirect's unfused input assembly exactly; fusion never applies
// remotely, which the NoFuse bit-identity suite proves is invisible to
// results. The returned owners map records which plan node produced each
// stored block, so a BlockLostError from the runner can be pinned on its
// producing stage for lineage recomputation.
func (j *job) buildRemoteSpec(n *node, put func(Batch) (uint64, error)) (*RemoteStageSpec, map[uint64]*node, error) {
	ids := map[Batch]uint64{}
	owners := map[uint64]*node{}
	blockInput := func(owner *node, b Batch) (RemoteInput, error) {
		if b == nil || b == zeroBatch {
			return RemoteInput{Kind: "empty"}, nil
		}
		if id, ok := ids[b]; ok {
			return RemoteInput{Kind: "block", Block: id}, nil
		}
		id, err := put(b)
		if err != nil {
			return RemoteInput{}, err
		}
		ids[b] = id
		owners[id] = owner
		return RemoteInput{Kind: "block", Block: id}, nil
	}

	var buildNode func(nd *node, p int) (*RemoteNode, error)
	var inputFor func(nd *node, pp int) (RemoteInput, error)
	inputFor = func(nd *node, pp int) (RemoteInput, error) {
		if cp, ok := j.front[nd]; ok {
			return blockInput(nd, cp.data[pp])
		}
		if len(nd.deps) == 0 {
			// In-chain source (Parallelize, readers): its partitions are
			// built from driver-captured state, so evaluate here and ship
			// the batch rather than the closure.
			return blockInput(nd, nd.compute(&Ctx{}, pp, nil))
		}
		rn, err := buildNode(nd, pp)
		if err != nil {
			return RemoteInput{}, err
		}
		return RemoteInput{Kind: "node", Node: rn}, nil
	}
	buildNode = func(nd *node, p int) (*RemoteNode, error) {
		if nd.port == nil {
			return nil, fmt.Errorf("%w: operator %q has no registered portable form (see internal/taskreg)", ErrNotPortable, nd.label)
		}
		rn := &RemoteNode{Op: nd.port.op, Arg: nd.port.arg, Part: p, Inputs: make([]RemoteInput, len(nd.deps))}
		for i := range nd.deps {
			d := &nd.deps[i]
			var in RemoteInput
			var err error
			switch d.kind {
			case depNarrow:
				if d.narrowMap == nil {
					in, err = inputFor(d.parent, p)
				} else if pps := d.narrowMap(p); len(pps) == 1 {
					in, err = inputFor(d.parent, pps[0])
				} else if len(pps) == 0 {
					in = RemoteInput{Kind: "empty"}
				} else {
					sub := make([]RemoteInput, len(pps))
					for k, pp := range pps {
						if sub[k], err = inputFor(d.parent, pp); err != nil {
							break
						}
					}
					in = RemoteInput{Kind: "concat", Concat: sub}
				}
			case depShuffle:
				in, err = blockInput(d.parent, j.blocks[d][p])
			case depBroadcast:
				in, err = blockInput(d.parent, j.bcast[d])
			}
			if err != nil {
				return nil, err
			}
			rn.Inputs[i] = in
		}
		return rn, nil
	}

	spec := &RemoteStageSpec{Label: n.label, Tasks: make([]RemoteTask, 0, n.parts)}
	for p := 0; p < n.parts; p++ {
		root, err := buildNode(n, p)
		if err != nil {
			return nil, nil, err
		}
		spec.Tasks = append(spec.Tasks, RemoteTask{Part: p, Root: root})
	}
	return spec, owners, nil
}

// FetchFunc resolves a block id to its batch. The worker's implementation
// fetches the encoded frame from the driver over the pool socket, with a
// per-worker cache so shared blocks (broadcasts) cross the wire once.
type FetchFunc func(id uint64) (Batch, error)

// RunRemoteTask evaluates one shipped task in the current process: resolve
// each operator through the portable-op registry, fetch leaf blocks, and
// run the chain bottom-up — exactly the unfused evaluation the driver
// would perform. A panicking kernel is reported as an error, not a worker
// death.
func RunRemoteTask(t *RemoteTask, fetch FetchFunc) (b Batch, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: remote task %d panicked: %v", t.Part, r)
		}
	}()
	return evalRemoteNode(t.Root, fetch)
}

func evalRemoteNode(rn *RemoteNode, fetch FetchFunc) (Batch, error) {
	mkAny, ok := portableOps.Load(rn.Op)
	if !ok {
		return nil, fmt.Errorf("engine: portable op %q is not registered in this process", rn.Op)
	}
	compute, err := mkAny.(PortableFactory)(rn.Arg)
	if err != nil {
		return nil, fmt.Errorf("engine: portable op %q: %w", rn.Op, err)
	}
	inputs := make([]Batch, len(rn.Inputs))
	for i := range rn.Inputs {
		b, err := evalRemoteInput(&rn.Inputs[i], fetch)
		if err != nil {
			return nil, err
		}
		inputs[i] = b
	}
	return compute(&Ctx{}, rn.Part, inputs), nil
}

func evalRemoteInput(in *RemoteInput, fetch FetchFunc) (Batch, error) {
	switch in.Kind {
	case "empty":
		return zeroBatch, nil
	case "block":
		b, err := fetch(in.Block)
		if err != nil {
			return nil, err
		}
		if b == nil {
			b = zeroBatch
		}
		return b, nil
	case "node":
		return evalRemoteNode(in.Node, fetch)
	case "concat":
		// Fan-in concat replays the driver's boxed chunk-wise appends
		// (see evalPartDirect), adopting the grown capacity as BoxedCap.
		var xs []any
		for i := range in.Concat {
			b, err := evalRemoteInput(&in.Concat[i], fetch)
			if err != nil {
				return nil, err
			}
			xs = append(xs, toBoxed(b)...)
		}
		return boxedBatch(xs), nil
	default:
		return nil, fmt.Errorf("engine: unknown remote input kind %q", in.Kind)
	}
}

// ---- Operator kernels ----
//
// These are the pure-data halves of the operator constructors: ops.go,
// shuffle.go and join.go build their node computes from them (wrapping
// driver-only simulated memory charges where the operator claims
// residency), and the taskreg registration helpers hand them to
// RegisterPortableOp so workers run literally the same loops.

func identityCompute(tc *Ctx, p int, in []Batch) Batch { return in[0] }

// MapCompute is Map's kernel.
func MapCompute[A, B any](f func(A) B) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[A](in[0])
		out := make([]B, len(src))
		for i, e := range src {
			out[i] = f(e)
		}
		return batchOf(out, len(out))
	}
}

// FilterCompute is Filter's kernel.
func FilterCompute[A any](pred func(A) bool) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[A](in[0])
		out := make([]A, 0, len(src))
		for _, e := range src {
			if pred(e) {
				out = append(out, e)
			}
		}
		// The boxed loop kept the input-length capacity it pre-sized.
		return batchOf(out, len(src))
	}
}

// FlatMapCompute is FlatMap's kernel.
func FlatMapCompute[A, B any](f func(A) []B) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		var out []B
		for _, e := range elems[A](in[0]) {
			out = append(out, f(e)...)
		}
		// The boxed loop grew from nil through power-of-two capacities.
		return batchOf(out, blockCap(len(out)))
	}
}

// MapPartitionsCompute is MapPartitions' kernel.
func MapPartitionsCompute[A, B any](f func([]A) []B) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		// The UDF gets a fresh slice: elems may alias the input batch, and
		// partition-level UDFs are allowed to mutate what they receive.
		typed := make([]A, in[0].Len())
		copy(typed, elems[A](in[0]))
		res := f(typed)
		return batchOf(res, len(res))
	}
}

// MapValuesCompute is MapValues' kernel.
func MapValuesCompute[K comparable, V, W any](f func(V) W) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[Pair[K, V]](in[0])
		out := make([]Pair[K, W], len(src))
		for i, kv := range src {
			out[i] = Pair[K, W]{Key: kv.Key, Val: f(kv.Val)}
		}
		return batchOf(out, len(out))
	}
}

// mergePairs is the shared reduce loop: fold equal keys with f, emitting
// in first-seen key order (partition contents must be deterministic; see
// reduceByKey).
func mergePairs[K comparable, V any](f func(V, V) V, in []Pair[K, V]) []Pair[K, V] {
	m := make(map[K]V, combineHint(len(in)))
	order := make([]K, 0, combineHint(len(in)))
	for _, kv := range in {
		if old, ok := m[kv.Key]; ok {
			m[kv.Key] = f(old, kv.Val)
		} else {
			m[kv.Key] = kv.Val
			order = append(order, kv.Key)
		}
	}
	out := make([]Pair[K, V], 0, len(order))
	for _, k := range order {
		out = append(out, Pair[K, V]{k, m[k]})
	}
	return out
}

// CombineCompute is the kernel of ReduceByKey's hidden map-side combine
// (a MapPartitions over mergePairs).
func CombineCompute[K comparable, V any](f func(V, V) V) PortableCompute {
	return MapPartitionsCompute(func(in []Pair[K, V]) []Pair[K, V] {
		return mergePairs(f, in)
	})
}

// ReduceByKeyCompute is the reduce-side kernel of ReduceByKey.
func ReduceByKeyCompute[K comparable, V any](f func(V, V) V) PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		out := mergePairs(f, elems[Pair[K, V]](in[0]))
		return batchOf(out, len(out))
	}
}

// GroupByKeyCompute is GroupByKey's kernel.
func GroupByKeyCompute[K comparable, V any]() PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[Pair[K, V]](in[0])
		m := make(map[K][]V)
		order := make([]K, 0, len(src))
		for _, kv := range src {
			if _, ok := m[kv.Key]; !ok {
				order = append(order, kv.Key)
			}
			m[kv.Key] = append(m[kv.Key], kv.Val)
		}
		out := make([]Pair[K, []V], 0, len(order))
		for _, k := range order {
			out = append(out, Pair[K, []V]{k, m[k]})
		}
		return batchOf(out, len(order))
	}
}

// RepartitionJoinCompute is the probe kernel of the repartition join.
func RepartitionJoinCompute[K comparable, A, B any]() PortableCompute {
	return func(tc *Ctx, p int, in []Batch) Batch {
		lhs := elems[Pair[K, A]](in[0])
		build := make(map[K][]A, len(lhs))
		for _, kv := range lhs {
			build[kv.Key] = append(build[kv.Key], kv.Val)
		}
		var out []Pair[K, Tuple2[A, B]]
		for _, kv := range elems[Pair[K, B]](in[1]) {
			for _, a := range build[kv.Key] {
				out = append(out, Pair[K, Tuple2[A, B]]{kv.Key, Tuple2[A, B]{a, kv.Val}})
			}
		}
		return batchOf(out, blockCap(len(out)))
	}
}
