package engine

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SaveText is the engine's output operation (the paper's "writing a bag to
// a distributed filesystem", Theorem 2): it launches a job and writes one
// part-NNNNN file per partition under dir, formatting each element with
// format. The directory is created if needed.
func SaveText[T any](d Dataset[T], dir string, format func(T) string) error {
	parts, err := d.s.runJob(d.n)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	for p, part := range parts {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%05d", p)))
		if err != nil {
			return fmt.Errorf("engine: save: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, e := range elems[T](part) {
			if _, err := w.WriteString(format(e) + "\n"); err != nil {
				f.Close()
				return fmt.Errorf("engine: save: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("engine: save: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("engine: save: %w", err)
		}
	}
	return nil
}

// ReadText reads every part-* (or arbitrary) file under dir, parsing each
// line with parse, and returns a dataset with one partition per file — the
// input side of the engine's filesystem story.
func ReadText[T any](s *Session, dir string, parse func(string) (T, error)) (Dataset[T], error) {
	var zero Dataset[T]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return zero, fmt.Errorf("engine: read: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var all []T
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return zero, fmt.Errorf("engine: read: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			v, err := parse(line)
			if err != nil {
				return zero, fmt.Errorf("engine: read %s: %w", name, err)
			}
			all = append(all, v)
		}
	}
	parts := len(names)
	if parts == 0 {
		parts = 1
	}
	return Parallelize(s, all, parts), nil
}
