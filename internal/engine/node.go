package engine

import (
	"reflect"
	"runtime"
	"sync"

	"matryoshka/internal/sizeest"
)

// depKind distinguishes how a node consumes its parent.
type depKind int

const (
	// depNarrow: child partition p reads specific parent partitions
	// (default: the same index p). Narrow chains are pipelined into a
	// single task, as in Spark stages.
	depNarrow depKind = iota
	// depShuffle: child partition p reads the elements of every parent
	// partition routed to p by the dep's partitioner (a stage boundary).
	depShuffle
	// depBroadcast: every child partition reads the parent in full; the
	// parent is materialized and charged as a cluster-wide broadcast.
	depBroadcast
)

// dep is an edge of the dataset DAG.
type dep struct {
	parent      *node
	kind        depKind
	childParts  int                   // partition count of the owning node
	partitioner func(any, int) int    // shuffle only: elem, nParts -> part
	narrowMap   func(child int) []int // narrow only; nil means identity
	// posPartitioner, when set, routes by (source partition, element index)
	// instead of element value. Shuffle routing runs concurrently, so
	// partitioners must be pure; position-dependent routing (Repartition's
	// round-robin) uses this form rather than a shared counter, keeping it
	// deterministic across visit orders and worker counts.
	posPartitioner func(srcPart, idx, nParts int) int
}

// node is an untyped dataset DAG vertex. Elements are boxed as any; the
// typed operator constructors (ops.go etc.) wrap and unwrap them.
type node struct {
	id    int64
	label string
	parts int
	deps  []dep
	// compute produces output partition p given one input slice per dep.
	compute func(tc *Ctx, p int, inputs [][]any) []any
	// weight is how many real records one element of this node stands
	// for (cluster.Config.RecordWeight). Sources inherit the session's
	// configured scale; derived nodes take the maximum of their parents;
	// cardinality-bounded outputs (lifting tags, per-key aggregates over
	// bounded key sets) are reset to 1 via Unscaled/...Bound operators.
	weight float64
	// pkey records that this node's output is hash-partitioned by a key
	// (set by PartitionByKey and key-preserving descendants). Joins use
	// it to skip re-shuffling co-partitioned inputs — the optimization
	// that lets iterative programs keep static data in place.
	pkey *partInfo

	// children indexes the consumers of this node (every node holding a
	// dep on it), maintained by newNode. Adaptive recovery uses it to
	// splice a re-lowered replacement into the DAG and to bound which
	// nodes a partition-count change may touch.
	children []*node
	// fixedParts marks nodes whose compute is partition-count-sensitive
	// (MapPartitions UDFs, ZipWithUniqueID's captured stride): recovery
	// must not change their partitioning.
	fixedParts bool
	// fallback, when set, describes the optimizer's alternative physical
	// lowering for this operator (e.g. broadcast join -> repartition
	// join). Recovery builds it when the chosen lowering OOMs at run time.
	fallback *refallback
	// fuse is the constructor-built typed push-pipeline for the maximal
	// fusible narrow chain ending at this node (fuse.go); nil for
	// non-fusible operators. Whether it runs is decided per plan
	// (compileFusion): the stored chain is only legal when every
	// intermediate op is invisible to the plan.
	fuse *fuseInfo

	cached    bool
	cacheMu   sync.Mutex
	cacheData [][]any
}

// Ctx carries per-task cost accounting. Operator UDFs that do significant
// work beyond per-element processing (e.g. the sequential inner algorithms
// of the outer-parallel workaround) report it through Charge and UseMemory
// so the simulated cluster sees realistic task costs.
type Ctx struct {
	job          *job    // owning job, for per-job memoization
	work         float64 // real element-equivalents processed by this task
	shuffleBytes float64 // real shuffle bytes read by this task
	mem          int64   // peak real bytes held by this task
}

// Once runs f exactly once per job for the given key, returning the cached
// value on subsequent calls from any task. Operators use it to build
// job-wide lookup structures (e.g. a broadcast join's hash table) once.
func (c *Ctx) Once(key int64, f func() any) any {
	return c.job.once(key, f)
}

// Charge adds n real element-equivalents of compute work to the task.
// UDFs doing heavy work over scaled data multiply their operation counts
// by the session's RecordWeight first.
func (c *Ctx) Charge(n int64) {
	if n > 0 {
		c.work += float64(n)
	}
}

// UseMemory records that the task holds at least b bytes at some point.
func (c *Ctx) UseMemory(b int64) {
	if b > c.mem {
		c.mem = b
	}
}

// estResidentBytes is estPartitionBytes scaled to real bytes by the
// dataset weight and inflated by the cluster's memory overhead factor: the
// resident footprint of engine-managed (deserialized, boxed, buffered)
// data.
func (s *Session) estResidentBytes(part []any, weight float64) int64 {
	f := s.cfg.Cluster.MemoryOverheadFactor
	if f <= 0 {
		f = 1
	}
	if weight < 1 {
		weight = 1
	}
	return int64(float64(estPartitionBytes(part)) * f * weight)
}

// estPartitionBytes estimates the in-memory size of a partition by sampling
// up to sampleN elements and scaling. Estimation must stay cheap because it
// runs once per node per partition.
const sampleN = 32

func estPartitionBytes(part []any) int64 {
	n := len(part)
	if n == 0 {
		return 0
	}
	if n <= sampleN {
		return sizeest.OfSlice(part)
	}
	// Evenly spaced sample: catches a giant element in small-cardinality
	// partitions (e.g. groupByKey outputs), scales for uniform ones.
	step := n / sampleN
	var sampled int64
	sample := make([]any, 0, sampleN)
	for i := 0; i < n; i += step {
		sample = append(sample, part[i])
	}
	sampled = sizeest.OfSlice(sample)
	return sampled * int64(n) / int64(len(sample))
}

func defaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// newNode registers a DAG vertex. Dep childParts and the node weight are
// filled in here.
func (s *Session) newNode(label string, parts int, deps []dep, compute func(tc *Ctx, p int, inputs [][]any) []any) *node {
	if parts < 1 {
		parts = 1
	}
	weight := s.cfg.Cluster.RecordWeight
	if weight < 1 {
		weight = 1
	}
	if len(deps) > 0 {
		weight = 1
		for i := range deps {
			deps[i].childParts = parts
			if w := deps[i].parent.weight; w > weight {
				weight = w
			}
		}
	}
	n := &node{id: s.newID(), label: label, parts: parts, deps: deps, compute: compute, weight: weight}
	for i := range deps {
		p := deps[i].parent
		p.cacheMu.Lock()
		p.children = append(p.children, n)
		p.cacheMu.Unlock()
	}
	return n
}

func narrowDep(parent *node) dep { return dep{parent: parent, kind: depNarrow} }

// partInfo identifies a hash partitioning: the key type and partition
// count fully determine the routing (keyPartitioner hashes only the key,
// with the session's seed).
type partInfo struct {
	keyType reflect.Type
	parts   int
}

func partInfoFor[K comparable](parts int) *partInfo {
	return &partInfo{keyType: reflect.TypeOf((*K)(nil)).Elem(), parts: parts}
}

func (pi *partInfo) matches(other *partInfo) bool {
	return pi != nil && other != nil && pi.keyType == other.keyType && pi.parts == other.parts
}
