package engine

import (
	"reflect"
	"runtime"
	"sync"

	"matryoshka/internal/sizeest"
)

// depKind distinguishes how a node consumes its parent.
type depKind int

const (
	// depNarrow: child partition p reads specific parent partitions
	// (default: the same index p). Narrow chains are pipelined into a
	// single task, as in Spark stages.
	depNarrow depKind = iota
	// depShuffle: child partition p reads the elements of every parent
	// partition routed to p by the dep's partitioner (a stage boundary).
	depShuffle
	// depBroadcast: every child partition reads the parent in full; the
	// parent is materialized and charged as a cluster-wide broadcast.
	depBroadcast
)

// dep is an edge of the dataset DAG.
type dep struct {
	parent      *node
	kind        depKind
	childParts  int                   // partition count of the owning node
	partitioner func(any, int) int    // shuffle only: elem, nParts -> part
	narrowMap   func(child int) []int // narrow only; nil means identity
	// posPartitioner, when set, routes by (source partition, element index)
	// instead of element value. Shuffle routing runs concurrently, so
	// partitioners must be pure; position-dependent routing (Repartition's
	// round-robin) uses this form rather than a shared counter, keeping it
	// deterministic across visit orders and worker counts.
	posPartitioner func(srcPart, idx, nParts int) int
	// batchTargets, when set, is the batch-at-a-time spelling of
	// partitioner: it fills tg[i] with each element's target and bumps the
	// per-target counts, dispatching on the batch's concrete type once
	// instead of boxing every element through partitioner. Installed by
	// the typed shuffle-dep constructors (shuffle.go) for hashable key
	// shapes; must agree with partitioner exactly. Returns false when the
	// batch's shape is not the one it was compiled for, sending the router
	// to the boxed per-element path.
	batchTargets func(b Batch, nParts int, tg, ct []int32) bool
}

// node is an untyped dataset DAG vertex. Partitions flow as Batch values
// (typed vectors with a boxed fallback, batch.go); the typed operator
// constructors (ops.go etc.) wrap and unwrap them.
type node struct {
	id    int64
	label string
	parts int
	deps  []dep
	// compute produces output partition p given one input batch per dep.
	compute func(tc *Ctx, p int, inputs []Batch) Batch
	// weight is how many real records one element of this node stands
	// for (cluster.Config.RecordWeight). Sources inherit the session's
	// configured scale; derived nodes take the maximum of their parents;
	// cardinality-bounded outputs (lifting tags, per-key aggregates over
	// bounded key sets) are reset to 1 via Unscaled/...Bound operators.
	weight float64
	// pkey records that this node's output is hash-partitioned by a key
	// (set by PartitionByKey and key-preserving descendants). Joins use
	// it to skip re-shuffling co-partitioned inputs — the optimization
	// that lets iterative programs keep static data in place.
	pkey *partInfo

	// children indexes the consumers of this node (every node holding a
	// dep on it), maintained by newNode. Adaptive recovery uses it to
	// splice a re-lowered replacement into the DAG and to bound which
	// nodes a partition-count change may touch.
	children []*node
	// fixedParts marks nodes whose compute is partition-count-sensitive
	// (MapPartitions UDFs, ZipWithUniqueID's captured stride): recovery
	// must not change their partitioning.
	fixedParts bool
	// fallback, when set, describes the optimizer's alternative physical
	// lowering for this operator (e.g. broadcast join -> repartition
	// join). Recovery builds it when the chosen lowering OOMs at run time.
	fallback *refallback
	// fuse is the constructor-built typed push-pipeline for the maximal
	// fusible narrow chain ending at this node (fuse.go); nil for
	// non-fusible operators. Whether it runs is decided per plan
	// (compileFusion): the stored chain is only legal when every
	// intermediate op is invisible to the plan.
	fuse *fuseInfo
	// port, when set, names this operator in the portable-op registry
	// (portable.go), letting a process-pool backend reconstruct and run it
	// in a worker process. Set by MarkPortable via the taskreg helpers;
	// nil operators pin their stage to driver-local execution.
	port *portableMark

	cached    bool
	cacheMu   sync.Mutex
	cacheData []Batch
}

// Ctx carries per-task cost accounting. Operator UDFs that do significant
// work beyond per-element processing (e.g. the sequential inner algorithms
// of the outer-parallel workaround) report it through Charge and UseMemory
// so the simulated cluster sees realistic task costs.
type Ctx struct {
	job          *job    // owning job, for per-job memoization
	work         float64 // real element-equivalents processed by this task
	shuffleBytes float64 // real shuffle bytes read by this task
	mem          int64   // peak real bytes held by this task

	// Boundary observability (populated only when the session records
	// events): the encoded wire size of the shuffle blocks this task read
	// (batchio frames), the element shape of the first non-empty one, and
	// the encoder's reusable scratch buffer.
	boundaryBytes int64
	batchShape    string
	encScratch    []byte
}

// Once runs f exactly once per job for the given key, returning the cached
// value on subsequent calls from any task. Operators use it to build
// job-wide lookup structures (e.g. a broadcast join's hash table) once.
func (c *Ctx) Once(key int64, f func() any) any {
	return c.job.once(key, f)
}

// Charge adds n real element-equivalents of compute work to the task.
// UDFs doing heavy work over scaled data multiply their operation counts
// by the session's RecordWeight first.
func (c *Ctx) Charge(n int64) {
	if n > 0 {
		c.work += float64(n)
	}
}

// UseMemory records that the task holds at least b bytes at some point.
func (c *Ctx) UseMemory(b int64) {
	if b > c.mem {
		c.mem = b
	}
}

// estResidentBytes is estPartitionBytes scaled to real bytes by the
// dataset weight and inflated by the cluster's memory overhead factor: the
// resident footprint of engine-managed (deserialized, boxed, buffered)
// data.
func (s *Session) estResidentBytes(part Batch, weight float64) int64 {
	f := s.cfg.Cluster.MemoryOverheadFactor
	if f <= 0 {
		f = 1
	}
	if weight < 1 {
		weight = 1
	}
	return int64(float64(estPartitionBytes(part)) * f * weight)
}

// estResidentBoxed is estResidentBytes for a transient boxed slice that
// never becomes a Batch (coGroup's combined-input footprint). The boxed
// estimate observes the slice's real capacity, exactly as the boxed
// representation did.
func (s *Session) estResidentBoxed(part []any, weight float64) int64 {
	return s.estResidentBytes(boxedBatch(part), weight)
}

// estPartitionBytes estimates the in-memory size of a partition by sampling
// up to sampleN elements and scaling. Estimation must stay cheap because it
// runs once per node per partition.
const sampleN = 32

// sampleGrowCap is the capacity Go's append gives a full cap-sampleN []any
// that overflows by one element. The boxed estimator built its sample by
// appending into make([]any, 0, sampleN), so when the evenly-spaced walk
// yields more than sampleN positions (n not a multiple of step) the grown
// capacity — a malloc size-class artifact, not a clean doubling — was
// observable in simulated accounting. Reproduce it by performing the same
// append, whatever the running toolchain makes of it. The walk yields at
// most 2*sampleN-1 positions, so one growth always suffices.
var sampleGrowCap = cap(append(make([]any, sampleN, sampleN), nil))

func estPartitionBytes(part Batch) int64 {
	n := batchLen(part)
	if n == 0 {
		return 0
	}
	if n <= sampleN {
		return sizeest.OfBatch(part)
	}
	// Evenly spaced sample: catches a giant element in small-cardinality
	// partitions (e.g. groupByKey outputs), scales for uniform ones. The
	// sample batch's boxed capacity reproduces the boxed loop's appends
	// into a cap-sampleN []any: up to sampleN sampled elements fit as
	// allocated, beyond that the overflow append's growth was observable.
	step := n / sampleN
	count := (n + step - 1) / step
	bcap := sampleN
	if count > sampleN {
		bcap = sampleGrowCap
	}
	sampled := sizeest.OfBatch(part.sampleEvery(step, bcap))
	return sampled * int64(n) / int64(count)
}

func defaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// newNode registers a DAG vertex. Dep childParts and the node weight are
// filled in here.
func (s *Session) newNode(label string, parts int, deps []dep, compute func(tc *Ctx, p int, inputs []Batch) Batch) *node {
	if parts < 1 {
		parts = 1
	}
	weight := s.cfg.Cluster.RecordWeight
	if weight < 1 {
		weight = 1
	}
	if len(deps) > 0 {
		weight = 1
		for i := range deps {
			deps[i].childParts = parts
			if w := deps[i].parent.weight; w > weight {
				weight = w
			}
		}
	}
	n := &node{id: s.newID(), label: label, parts: parts, deps: deps, compute: compute, weight: weight}
	for i := range deps {
		p := deps[i].parent
		p.cacheMu.Lock()
		p.children = append(p.children, n)
		p.cacheMu.Unlock()
	}
	return n
}

func narrowDep(parent *node) dep { return dep{parent: parent, kind: depNarrow} }

// partInfo identifies a hash partitioning: the key type and partition
// count fully determine the routing (keyPartitioner hashes only the key,
// with the session's seed).
type partInfo struct {
	keyType reflect.Type
	parts   int
}

func partInfoFor[K comparable](parts int) *partInfo {
	return &partInfo{keyType: reflect.TypeOf((*K)(nil)).Elem(), parts: parts}
}

func (pi *partInfo) matches(other *partInfo) bool {
	return pi != nil && other != nil && pi.keyType == other.keyType && pi.parts == other.parts
}
