//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: instrumentation
// allocates shadow state the production build never sees.
const raceEnabled = false
