// Package engine is a flat-parallel dataflow engine in the mould of Spark.
//
// It is the substrate the paper assumes (Sec. 3: "standard dataflow
// engines"): datasets are immutable, partitioned collections transformed by
// a lazy DAG of operators. Transformations (Map, Filter, ReduceByKey, Join,
// ...) only extend the DAG; actions (Collect, Count, Reduce, IsEmpty)
// launch a job that executes the necessary stages. Stages are split at
// shuffle boundaries and narrow chains are pipelined into single tasks,
// exactly the structure whose overheads the paper's experiments measure:
// per-job launch cost, per-task scheduling cost, shuffle volume, broadcast
// memory.
//
// Execution is real — every operator computes its actual result, in
// parallel on the host's cores — while time and memory are accounted on a
// simulated cluster (internal/cluster), so experiments are deterministic
// and reproduce the paper's cluster-scale effects on a single machine.
package engine

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"matryoshka/internal/cluster"
)

// Config configures a Session.
type Config struct {
	Cluster cluster.Config
	// DefaultParallelism is the default number of partitions for sources
	// and shuffles. The paper sets Spark parallelism to 3x the total core
	// count (Sec. 9.1); NewSession applies the same rule when this is 0.
	DefaultParallelism int
	// DebugStages prints per-stage makespans above 1s (development aid).
	DebugStages bool
}

// DefaultConfig returns a Config for the paper's 25-machine cluster.
func DefaultConfig() Config {
	return Config{Cluster: cluster.DefaultConfig()}
}

// Session is the driver context: it owns the DAG node namespace, the
// simulated cluster, and the worker pool that executes tasks for real.
type Session struct {
	cfg    Config
	sim    *cluster.Simulator
	seed   maphash.Seed
	nextID atomic.Int64

	// workers bounds real (host) parallelism for task execution.
	workers int

	mu sync.Mutex
}

// NewSession creates a session with its own simulated cluster.
func NewSession(cfg Config) *Session {
	if cfg.Cluster.Machines == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.DefaultParallelism <= 0 {
		cfg.DefaultParallelism = 3 * cfg.Cluster.Slots()
	}
	return &Session{
		cfg:     cfg,
		sim:     cluster.New(cfg.Cluster),
		seed:    maphash.MakeSeed(),
		workers: defaultWorkers(),
	}
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// DefaultParallelism returns the session's default partition count.
func (s *Session) DefaultParallelism() int { return s.cfg.DefaultParallelism }

// Simulator exposes the simulated cluster (for harnesses and tests).
func (s *Session) Simulator() *cluster.Simulator { return s.sim }

// Clock returns the current virtual time in seconds.
func (s *Session) Clock() float64 { return s.sim.Clock() }

// Stats returns cluster statistics (jobs, stages, tasks, broadcasts).
func (s *Session) Stats() cluster.Stats { return s.sim.Stats() }

// ResetClock rewinds the virtual clock and stats; the DAG and caches are
// kept. Useful to time a phase in isolation.
func (s *Session) ResetClock() { s.sim.Reset() }

func (s *Session) newID() int64 { return s.nextID.Add(1) }

// hashOf hashes a comparable key for partitioning.
func hashOf[K comparable](s *Session, k K) uint64 {
	return maphash.Comparable(s.seed, k)
}

// HashKey hashes a comparable key with the session's seed (stable for the
// session's lifetime). The lowering phase derives group tags from it, so
// tagging inner elements is a narrow map rather than a shuffle partitioned
// by the (possibly skewed) grouping key.
func HashKey[K comparable](s *Session, k K) uint64 { return hashOf(s, k) }
