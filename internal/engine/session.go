// Package engine is a flat-parallel dataflow engine in the mould of Spark.
//
// It is the substrate the paper assumes (Sec. 3: "standard dataflow
// engines"): datasets are immutable, partitioned collections transformed by
// a lazy DAG of operators. Transformations (Map, Filter, ReduceByKey, Join,
// ...) only extend the DAG; actions (Collect, Count, Reduce, IsEmpty)
// launch a job that executes the necessary stages. Stages are split at
// shuffle boundaries and narrow chains are pipelined into single tasks,
// exactly the structure whose overheads the paper's experiments measure:
// per-job launch cost, per-task scheduling cost, shuffle volume, broadcast
// memory.
//
// Execution is real — every operator computes its actual result, in
// parallel on the host's cores — while time and memory are accounted on a
// simulated cluster (internal/cluster), so experiments are deterministic
// and reproduce the paper's cluster-scale effects on a single machine.
package engine

import (
	"context"
	"hash/maphash"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// Config configures a Session.
type Config struct {
	Cluster cluster.Config
	// DefaultParallelism is the default number of partitions for sources
	// and shuffles. The paper sets Spark parallelism to 3x the total core
	// count (Sec. 9.1); NewSession applies the same rule when this is 0.
	DefaultParallelism int
	// DebugStages prints per-stage makespans above 1s (development aid).
	DebugStages bool
	// HostParallelism bounds the real host-side worker pool that executes
	// tasks and shuffle routing (<= 0: GOMAXPROCS). It affects wall-clock
	// speed only, never the simulated cluster's accounting.
	HostParallelism int
	// LegacyExec selects the retained serial reference executor (serial
	// shuffle routing and broadcast flatten, goroutine-per-partition stage
	// launch, no fan-in memo). Results and simulated accounting are
	// identical to the parallel executor — tests assert it — so this
	// exists only for A/B verification and as a benchmark baseline.
	LegacyExec bool
	// NoFuse disables the fused narrow-chain execution path (fuse.go):
	// every operator then runs its own compute over boxed []any rows, as
	// the legacy executor always does. Results and simulated accounting
	// are identical with fusion on — the A/B bit-identity suite asserts
	// it — so this exists for verification and as a benchmark baseline.
	NoFuse bool
	// Obs, when non-nil, receives the structured job/stage/broadcast
	// events and optimizer decisions of every job the session runs (the
	// event spine behind EXPLAIN ANALYZE; see internal/obs).
	Obs *obs.Recorder
	// Backend, when non-nil, replaces the session's private simulator as
	// the target the session charges virtual time and memory to — the
	// multi-tenant scheduler's Tenant handles (internal/sched) implement
	// it, so many sessions can share one slot pool. Cluster must describe
	// the same pool the backend schedules onto (it still sizes
	// DefaultParallelism and the optimizer's memory estimates). When nil,
	// NewSession builds a private cluster.Simulator as before.
	Backend Backend
	// Recover enables the adaptive recovery loop: when a stage or
	// broadcast fails with cluster.ErrOutOfMemory (or exhausts its
	// injected-failure retries), the job re-lowers the offending subplan
	// — raising partition counts, demoting broadcasts — and resumes from
	// its completed-stage frontier instead of aborting. Off by default:
	// the paper's workaround baselines must die exactly where the real
	// systems die.
	Recover bool
}

// DefaultConfig returns a Config for the paper's 25-machine cluster.
func DefaultConfig() Config {
	return Config{Cluster: cluster.DefaultConfig()}
}

// Session is the driver context: it owns the DAG node namespace, the
// simulated cluster, and the worker pool that executes tasks for real.
type Session struct {
	cfg Config
	// sim is the session-private simulator; nil when the session runs on
	// a shared Backend. exec is what jobs actually charge: sim, or
	// Config.Backend. All execution paths go through exec.
	sim    *cluster.Simulator
	exec   Backend
	seed   maphash.Seed
	nextID atomic.Int64

	// resid is exec's machine-failure facet (chaos.go), nil when the
	// backend does not track per-machine output residency.
	resid Residency

	// remote is exec's process-pool facet (portable.go), nil when the
	// backend has no real workers: when set, stages whose operators all
	// carry portable marks are shipped to worker processes instead of
	// executing on the driver's host pool.
	remote RemoteRunner

	// workers bounds real (host) parallelism for task execution; pool is
	// the persistent worker pool they run on, created once per session and
	// reused across all stages and jobs.
	workers int
	pool    *workerPool

	// costsScratch is the per-stage task-cost buffer, reused across stages
	// (guarded by mu: one job runs at a time, and cluster.RunStage copies
	// the slice it is handed).
	costsScratch []cluster.Task

	// legacyExec reverts to the retained serial reference execution path —
	// single-goroutine shuffle routing and flatten, goroutine-per-partition
	// stage launch, no fan-in memo. Equivalence tests and A/B benchmarks
	// flip it; production sessions never do.
	legacyExec bool

	// noFuse disables fused narrow-chain execution (Config.NoFuse); the
	// legacy executor never fuses regardless.
	noFuse bool

	// obs is the session's event sink; nil when observation is off (all
	// Recorder methods are nil-safe).
	obs *obs.Recorder

	// feedback carries runtime failures back to the lowering phase:
	// denylisted physical choices and partition-count boosts. Always
	// non-nil; it only receives entries when Config.Recover is on.
	feedback *Feedback

	// submitCtx is the context of the SubmitJobCtx submission currently
	// running its closure (guarded by ctxMu, not mu: runJob reads it
	// while already holding mu). Jobs started while it is set inherit it;
	// nil means Background.
	ctxMu     sync.Mutex
	submitCtx context.Context

	mu sync.Mutex
}

// jobCtx returns the context jobs started right now should run under.
func (s *Session) jobCtx() context.Context {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if s.submitCtx != nil {
		return s.submitCtx
	}
	return context.Background()
}

// Feedback is the session-level channel from the executor's adaptive
// recovery loop back to the lowering phase (Sec. 8): physical choices that
// failed at run time are denylisted by (rule, choice), and partition
// counts carry a boost factor. The optimizer consults it on every later
// lowering in the session, so a choice that OOMed once is never re-picked
// — neither by the resumed job nor by subsequent jobs.
type Feedback struct {
	mu         sync.Mutex
	denied     map[[2]string]string // (rule, choice) -> why
	partsBoost int
}

func newFeedback() *Feedback {
	return &Feedback{denied: map[[2]string]string{}, partsBoost: 1}
}

// Deny denylists a (rule, choice) pair, keeping the first reason.
func (f *Feedback) Deny(rule, choice, why string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.denied[[2]string{rule, choice}]; !ok {
		f.denied[[2]string{rule, choice}] = why
	}
}

// Denied reports whether a (rule, choice) pair is denylisted, and why.
func (f *Feedback) Denied(rule, choice string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	why, ok := f.denied[[2]string{rule, choice}]
	return why, ok
}

// BoostParts multiplies the partition-count boost the optimizer applies to
// future shuffle lowerings (saturating at maxPartsRaise).
func (f *Feedback) BoostParts(factor int) {
	if factor < 1 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partsBoost *= factor
	if f.partsBoost > maxPartsRaise {
		f.partsBoost = maxPartsRaise
	}
}

// PartsBoost returns the accumulated partition-count boost (1 = none).
func (f *Feedback) PartsBoost() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partsBoost
}

// Feedback returns the session's optimizer feedback registry.
func (s *Session) Feedback() *Feedback { return s.feedback }

// processSeed backs the maphash fallback for key types the stable hasher
// cannot walk (see stablehash.go). For every key type this repository
// actually shuffles on, partitioning hashes are fully deterministic —
// across sessions AND across processes — so experiment tables regenerate
// bit-identically and A/B tests (legacy vs parallel executor, abort vs
// recover) compare runs of the same workload exactly.
var processSeed = maphash.MakeSeed()

// NewSession creates a session with its own simulated cluster. An invalid
// cluster configuration is reported as an error rather than a panic, so
// harnesses sweeping configurations can surface it as a failed run.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Cluster.Machines == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.DefaultParallelism <= 0 {
		cfg.DefaultParallelism = 3 * cfg.Cluster.Slots()
	}
	var sim *cluster.Simulator
	exec := cfg.Backend
	if exec == nil {
		var err error
		sim, err = cluster.New(cfg.Cluster)
		if err != nil {
			return nil, err
		}
		exec = sim
	} else if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.HostParallelism
	if workers <= 0 {
		workers = defaultWorkers()
	}
	s := &Session{
		cfg:        cfg,
		sim:        sim,
		exec:       exec,
		seed:       processSeed,
		workers:    workers,
		pool:       newWorkerPool(workers),
		legacyExec: cfg.LegacyExec,
		noFuse:     cfg.NoFuse,
		obs:        cfg.Obs,
		feedback:   newFeedback(),
	}
	s.resid, _ = exec.(Residency)
	s.remote, _ = exec.(RemoteRunner)
	if sim != nil && cfg.Cluster.Faults.Active() && cfg.Obs.Enabled() {
		rec := cfg.Obs
		sim.SetFaultObserver(func(at float64, machine int, kind, detail string) {
			rec.Fault(obs.FaultEvent{At: at, Machine: machine, Kind: kind, Detail: detail})
		})
	}
	// The pool's workers reference only the pool, so a dropped Session is
	// still collectable; this cleanup then shuts its workers down. Close
	// does the same deterministically.
	runtime.AddCleanup(s, func(p *workerPool) { p.close() }, s.pool)
	return s, nil
}

// Close releases the session's host worker pool. The session must not be
// used afterwards. Closing is optional — abandoned sessions are cleaned up
// by the garbage collector — but makes the release deterministic.
func (s *Session) Close() { s.pool.close() }

// stageCosts returns a zeroed []cluster.Task of length n backed by the
// session's reusable scratch buffer.
func (s *Session) stageCosts(n int) []cluster.Task {
	if cap(s.costsScratch) < n {
		s.costsScratch = make([]cluster.Task, n)
	}
	c := s.costsScratch[:n]
	for i := range c {
		c[i] = cluster.Task{}
	}
	return c
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// DefaultParallelism returns the session's default partition count.
func (s *Session) DefaultParallelism() int { return s.cfg.DefaultParallelism }

// Simulator exposes the simulated cluster (for harnesses and tests).
// It is nil when the session runs on a shared Backend.
func (s *Session) Simulator() *cluster.Simulator { return s.sim }

// Obs returns the session's event recorder; nil (a valid no-op sink) when
// observation is off. The lowering phase logs optimizer decisions here.
func (s *Session) Obs() *obs.Recorder { return s.obs }

// Clock returns the current virtual time in seconds. On a shared
// Backend this is the session's own timeline, not the global clock.
func (s *Session) Clock() float64 { return s.exec.Clock() }

// Stats returns cluster statistics (jobs, stages, tasks, broadcasts).
func (s *Session) Stats() cluster.Stats { return s.exec.Stats() }

// ResetClock rewinds the virtual clock and stats; the DAG and caches are
// kept. Useful to time a phase in isolation. No-op on a shared Backend —
// a tenant cannot rewind the pool's clock.
func (s *Session) ResetClock() {
	if s.sim != nil {
		s.sim.Reset()
	}
}

func (s *Session) newID() int64 { return s.nextID.Add(1) }

// hashOf hashes a comparable key for partitioning: deterministic (fixed
// seed, representation-walking) for every supported key type, with a
// process-seeded maphash fallback for identity-based keys (pointers,
// interfaces) that cannot be hashed reproducibly anyway. The common key
// shapes take a monomorphic fast path (stablehash.go) that produces the
// same bits as the compiled reflection hasher without the per-call type
// lookup and indirect calls.
func hashOf[K comparable](s *Session, k K) uint64 {
	if h, ok := stableHashFast(k); ok {
		return h
	}
	if fn := stableHasherFor(reflect.TypeFor[K]()); fn != nil {
		// The copy keeps k itself off the heap: &kk escapes into the
		// indirect hasher call, but only on this (slow) path, so the
		// fast path above stays allocation-free.
		kk := k
		return fn(unsafe.Pointer(&kk), stableSeed)
	}
	return maphash.Comparable(s.seed, k)
}

// HashKey hashes a comparable key with the session's seed (stable for the
// session's lifetime). The lowering phase derives group tags from it, so
// tagging inner elements is a narrow map rather than a shuffle partitioned
// by the (possibly skewed) grouping key.
func HashKey[K comparable](s *Session, k K) uint64 { return hashOf(s, k) }
