package engine

// Integration of sessions with the multi-tenant scheduler
// (internal/sched): sessions sharing one slot pool via Config.Backend,
// non-blocking SubmitJob with admission control, and — the tenancy
// property the recovery loop must preserve — per-session isolation of
// optimizer feedback: one tenant's adaptive re-lowering must never
// perturb another tenant's plans.

import (
	"errors"
	"sync"
	"testing"

	"matryoshka/internal/obs"
	"matryoshka/internal/sched"
)

// sharedPool builds a scheduler over the same tight 2x2 cluster the
// recovery tests use, plus a session Config template describing it.
func sharedPool(t *testing.T, mem int64) (*sched.Scheduler, Config) {
	t.Helper()
	cfg, _ := recoverConfig(mem)
	cfg.Obs = nil
	cfg.Recover = false
	sc, err := sched.New(sched.Config{Cluster: cfg.Cluster, Policy: sched.PolicyFair})
	if err != nil {
		t.Fatal(err)
	}
	return sc, cfg
}

// TestSessionsShareSchedulerPool runs two sessions as tenants of one
// scheduler, each submitting jobs through SubmitJob from its own
// goroutine, and requires correct results plus bit-identical per-tenant
// clocks across repeated runs.
func TestSessionsShareSchedulerPool(t *testing.T) {
	run := func() [2]float64 {
		sc, cfg := sharedPool(t, 64<<20)
		var clocks [2]float64
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			tn, err := sc.Register([]string{"alice", "bob"}[i], 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.Backend = tn
			s := mustSession(c)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer tn.Done()
				for j := 0; j < 2; j++ {
					h, err := s.SubmitJob(func() (any, error) {
						d := Map(Parallelize(s, ints(4000), 8), func(x int) int { return 2 * x })
						return Count(Filter(d, func(x int) bool { return x%4 == 0 }))
					})
					if err != nil {
						t.Error(err)
						return
					}
					v, err := h.Wait()
					if err != nil {
						t.Error(err)
						return
					}
					if v.(int64) != 2000 {
						t.Errorf("tenant %d job %d: count = %v, want 2000", i, j, v)
						return
					}
				}
				clocks[i] = s.Clock()
			}(i)
		}
		wg.Wait()
		if m := sc.Metrics(); m.Clock <= 0 {
			t.Fatal("shared pool did no work")
		}
		return clocks
	}
	base := run()
	if base[0] <= 0 || base[1] <= 0 {
		t.Fatalf("clocks not recorded: %v", base)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != base {
			t.Fatalf("run %d clocks diverged: %v vs %v", i, got, base)
		}
	}
}

// TestSubmitJobBackpressure: a tenant with a one-job budget rejects a
// second concurrent submission with ErrBackpressure, and the slot frees
// when the admitted job finishes.
func TestSubmitJobBackpressure(t *testing.T) {
	sc, cfg := sharedPool(t, 64<<20)
	tn, err := sc.Register("a", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = tn
	s := mustSession(cfg)
	defer tn.Done()

	release := make(chan struct{})
	h, err := s.SubmitJob(func() (any, error) {
		<-release
		return Count(Parallelize(s, ints(100), 4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitJob(func() (any, error) { return nil, nil }); !errors.Is(err, sched.ErrBackpressure) {
		t.Fatalf("second submission: err = %v, want ErrBackpressure", err)
	}
	close(release)
	if v, err := h.Wait(); err != nil || v.(int64) != 100 {
		t.Fatalf("admitted job: %v, %v", v, err)
	}
	// The finished job released its admission slot.
	h2, err := s.SubmitJob(func() (any, error) {
		return Count(Parallelize(s, ints(50), 2))
	})
	if err != nil {
		t.Fatalf("post-finish submission rejected: %v", err)
	}
	if v, err := h2.Wait(); err != nil || v.(int64) != 50 {
		t.Fatalf("post-finish job: %v, %v", v, err)
	}
}

// TestSubmitJobOnPrivateSimulator: SubmitJob works without a Gate — a
// plain single-tenant session just gets the future.
func TestSubmitJobOnPrivateSimulator(t *testing.T) {
	s := testSession()
	h, err := s.SubmitJob(func() (any, error) {
		return Count(Parallelize(s, ints(64), 4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.Wait(); err != nil || v.(int64) != 64 {
		t.Fatalf("got %v, %v", v, err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

// TestSubmitJobPanicBecomesError: a panicking submission resolves the
// future with an error instead of crashing the process.
func TestSubmitJobPanicBecomesError(t *testing.T) {
	s := testSession()
	h, err := s.SubmitJob(func() (any, error) { panic("boom") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("panicked job reported no error")
	}
}

// TestRecoveryFeedbackIsolatedAcrossTenants: tenant A's broadcast join
// OOMs and is adaptively re-lowered to a repartition join; tenant B runs
// its own broadcast join on the same pool at the same time. A's failure
// must denylist the choice in A's session only — B's feedback stays
// clean, B's plans keep broadcasting, and both get correct results.
func TestRecoveryFeedbackIsolatedAcrossTenants(t *testing.T) {
	// 1 MB machines: A broadcasts ~1.4 MB (OOMs, recovers); B broadcasts
	// ~7 KB (fits).
	sc, cfg := sharedPool(t, 1<<20)
	cfg.Recover = true
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	tnA, err := sc.Register("alice", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tnB, err := sc.Register("bob", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := cfg, cfg
	ca.Backend, ca.Obs = tnA, recA
	cb.Backend, cb.Obs = tnB, recB
	sa, sb := mustSession(ca), mustSession(cb)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer tnA.Done()
		small := Parallelize(sa, makePairs(2000), 4)
		big := Parallelize(sa, makePairs(10), 2)
		got, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
		if err != nil {
			t.Errorf("tenant A join with recovery: %v", err)
			return
		}
		if len(got) != 10 {
			t.Errorf("tenant A joined %d keys, want 10", len(got))
		}
	}()
	go func() {
		defer wg.Done()
		defer tnB.Done()
		small := Parallelize(sb, makePairs(10), 2)
		big := Parallelize(sb, makePairs(2000), 4)
		got, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
		if err != nil {
			t.Errorf("tenant B join: %v", err)
			return
		}
		if len(got) != 10 {
			t.Errorf("tenant B joined %d keys, want 10", len(got))
		}
	}()
	wg.Wait()

	if _, denied := sa.Feedback().Denied("join", "broadcast"); !denied {
		t.Error("tenant A's failed broadcast choice not denylisted in A's session")
	}
	if why, denied := sb.Feedback().Denied("join", "broadcast"); denied {
		t.Errorf("tenant A's denylist leaked into tenant B's session: %q", why)
	}
	if boost := sb.Feedback().PartsBoost(); boost != 1 {
		t.Errorf("tenant B's partition boost perturbed: %d, want 1", boost)
	}
	if n := len(recoveries(recA)); n != 1 {
		t.Errorf("tenant A recorded %d recoveries, want 1", n)
	}
	if n := len(recoveries(recB)); n != 0 {
		t.Errorf("tenant B recorded %d recoveries, want 0", n)
	}
}
