package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"matryoshka/internal/cluster"
)

// mustSession unwraps NewSession for tests using known-valid configs.
func mustSession(cfg Config) *Session {
	s, err := NewSession(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func testSession() *Session {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 4
	cfg.DefaultParallelism = 8
	return mustSession(cfg)
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortedCollect[T any](t *testing.T, d Dataset[T], less func(a, b T) bool) []T {
	t.Helper()
	got, err := Collect(d)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	sort.Slice(got, func(i, j int) bool { return less(got[i], got[j]) })
	return got
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	s := testSession()
	data := ints(100)
	got := sortedCollect(t, Parallelize(s, data, 7), func(a, b int) bool { return a < b })
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	s := testSession()
	d := Empty[string](s)
	n, err := Count(d)
	if err != nil || n != 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if _, err := Reduce(d, func(a, b string) string { return a + b }); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Reduce on empty: %v, want ErrEmpty", err)
	}
	if _, err := First(d); !errors.Is(err, ErrEmpty) {
		t.Fatalf("First on empty: %v, want ErrEmpty", err)
	}
}

func TestMapFilterFlatMapChain(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(50), 0)
	doubled := Map(d, func(x int) int { return 2 * x })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) []int { return []int{x, x + 1} })
	n, err := Count(expanded)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 { // 25 multiples of 4 in 0..98, each expands to 2
		t.Fatalf("count = %d, want 50", n)
	}
}

func TestMapPartitionsPreservesAll(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(40), 5)
	rev := MapPartitions(d, func(in []int) []int {
		out := make([]int, len(in))
		for i, v := range in {
			out[len(in)-1-i] = v
		}
		return out
	})
	got := sortedCollect(t, rev, func(a, b int) bool { return a < b })
	if len(got) != 40 || got[0] != 0 || got[39] != 39 {
		t.Fatalf("got %v", got)
	}
}

func TestUnion(t *testing.T) {
	s := testSession()
	a := Parallelize(s, []int{1, 2, 3}, 2)
	b := Parallelize(s, []int{4, 5}, 3)
	got := sortedCollect(t, Union(a, b), func(x, y int) bool { return x < y })
	want := []int{1, 2, 3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUnionKeepsDuplicates(t *testing.T) {
	s := testSession()
	a := Parallelize(s, []int{1, 1}, 1)
	b := Parallelize(s, []int{1}, 1)
	n, err := Count(Union(a, b))
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v; want 3", n, err)
	}
}

func TestReduceByKey(t *testing.T) {
	s := testSession()
	var pairs []Pair[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, KV(fmt.Sprintf("k%d", i%3), 1))
	}
	d := ReduceByKey(Parallelize(s, pairs, 9), func(a, b int) int { return a + b })
	m, err := CollectMap(d)
	if err != nil {
		t.Fatal(err)
	}
	if m["k0"] != 34 || m["k1"] != 33 || m["k2"] != 33 {
		t.Fatalf("m = %v", m)
	}
}

func TestReduceByKeyExplicitParts(t *testing.T) {
	s := testSession()
	pairs := []Pair[int, int]{{1, 10}, {2, 20}, {1, 1}}
	d := ReduceByKeyN(Parallelize(s, pairs, 2), func(a, b int) int { return a + b }, 3)
	if d.NumPartitions() != 3 {
		t.Fatalf("parts = %d", d.NumPartitions())
	}
	m, err := CollectMap(d)
	if err != nil || m[1] != 11 || m[2] != 20 {
		t.Fatalf("m = %v, err %v", m, err)
	}
}

func TestGroupByKey(t *testing.T) {
	s := testSession()
	pairs := []Pair[string, int]{{"a", 1}, {"b", 2}, {"a", 3}, {"a", 5}}
	groups, err := CollectMap(GroupByKey(Parallelize(s, pairs, 3)))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(groups["a"])
	if fmt.Sprint(groups["a"]) != "[1 3 5]" || fmt.Sprint(groups["b"]) != "[2]" {
		t.Fatalf("groups = %v", groups)
	}
}

func TestGroupVsReduceAgree(t *testing.T) {
	// Property: sum over groupByKey groups == reduceByKey with +.
	s := testSession()
	f := func(keys []uint8) bool {
		pairs := make([]Pair[uint8, int], len(keys))
		for i, k := range keys {
			pairs[i] = KV(k%5, 1)
		}
		d := Parallelize(s, pairs, 4)
		viaReduce, err1 := CollectMap(ReduceByKey(d, func(a, b int) int { return a + b }))
		viaGroup, err2 := CollectMap(GroupByKey(d))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(viaReduce) != len(viaGroup) {
			return false
		}
		for k, vs := range viaGroup {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			if viaReduce[k] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistinct(t *testing.T) {
	s := testSession()
	d := Parallelize(s, []int{1, 2, 2, 3, 3, 3}, 4)
	got := sortedCollect(t, Distinct(d), func(a, b int) bool { return a < b })
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got %v", got)
	}
}

func TestZipWithUniqueIDUniqueAndComplete(t *testing.T) {
	s := testSession()
	d := ZipWithUniqueID(Parallelize(s, ints(200), 7))
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	vals := map[int]bool{}
	for _, p := range got {
		if ids[p.Key] {
			t.Fatalf("duplicate id %d", p.Key)
		}
		ids[p.Key] = true
		vals[p.Val] = true
	}
	if len(vals) != 200 {
		t.Fatalf("lost values: %d", len(vals))
	}
}

func joinReference[K comparable](l, r []Pair[K, int]) map[string]int {
	out := map[string]int{}
	for _, a := range l {
		for _, b := range r {
			if a.Key == b.Key {
				out[fmt.Sprint(a.Key, ":", a.Val, ":", b.Val)]++
			}
		}
	}
	return out
}

func joinResultSet[K comparable](t *testing.T, d Dataset[Pair[K, Tuple2[int, int]]]) map[string]int {
	t.Helper()
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, p := range got {
		out[fmt.Sprint(p.Key, ":", p.Val.A, ":", p.Val.B)]++
	}
	return out
}

func TestJoinStrategiesAgreeWithNestedLoopReference(t *testing.T) {
	s := testSession()
	l := []Pair[int, int]{{1, 10}, {2, 20}, {2, 21}, {3, 30}}
	r := []Pair[int, int]{{2, 200}, {2, 201}, {3, 300}, {4, 400}}
	want := joinReference(l, r)
	ld := Parallelize(s, l, 3)
	rd := Parallelize(s, r, 2)
	for _, strat := range []JoinStrategy{JoinRepartition, JoinBroadcastLeft, JoinBroadcastRight} {
		t.Run(strat.String(), func(t *testing.T) {
			got := joinResultSet(t, JoinWith(ld, rd, strat, 0))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s: got %v, want %v", strat, got, want)
			}
		})
	}
}

func TestJoinProperty(t *testing.T) {
	s := testSession()
	f := func(lk, rk []uint8) bool {
		l := make([]Pair[uint8, int], len(lk))
		for i, k := range lk {
			l[i] = KV(k%8, i)
		}
		r := make([]Pair[uint8, int], len(rk))
		for i, k := range rk {
			r[i] = KV(k%8, i+1000)
		}
		want := joinReference(l, r)
		got, err := Collect(Join(Parallelize(s, l, 3), Parallelize(s, r, 4)))
		if err != nil {
			return false
		}
		gm := map[string]int{}
		for _, p := range got {
			gm[fmt.Sprint(p.Key, ":", p.Val.A, ":", p.Val.B)]++
		}
		return fmt.Sprint(gm) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCrossWithBroadcast(t *testing.T) {
	s := testSession()
	small := Parallelize(s, []int{1, 2}, 1)
	big := Parallelize(s, []int{10, 20, 30}, 2)
	sum := func(a, b int) int { return a + b }
	for name, d := range map[string]Dataset[int]{
		"broadcastSmall": CrossWithBroadcast(small, big, sum),
		"broadcastBig":   CrossBroadcastBig(small, big, sum),
	} {
		got := sortedCollect(t, d, func(a, b int) bool { return a < b })
		if fmt.Sprint(got) != "[11 12 21 22 31 32]" {
			t.Errorf("%s: got %v", name, got)
		}
	}
}

func TestJobsCountedPerAction(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(10), 2)
	before := s.Stats().Jobs
	for i := 0; i < 3; i++ {
		if _, err := Count(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Jobs - before; got != 3 {
		t.Fatalf("jobs = %d, want 3 (one per action)", got)
	}
}

func TestClockAdvancesWithJobs(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(1000), 4)
	c0 := s.Clock()
	if _, err := Count(Map(d, func(x int) int { return x * x })); err != nil {
		t.Fatal(err)
	}
	if s.Clock() <= c0 {
		t.Fatal("clock did not advance")
	}
}

func TestNarrowChainIsOneStage(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(100), 4)
	chain := Map(Map(Map(d, inc), inc), inc)
	before := s.Stats().Stages
	if _, err := Count(chain); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Stages - before; got != 1 {
		t.Fatalf("stages = %d, want 1 (pipelined narrow chain)", got)
	}
}

func inc(x int) int { return x + 1 }

func TestShuffleAddsStage(t *testing.T) {
	s := testSession()
	d := Parallelize(s, []Pair[int, int]{{1, 1}, {2, 2}}, 2)
	red := ReduceByKey(d, func(a, b int) int { return a + b })
	before := s.Stats().Stages
	if _, err := Count(red); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Stages - before; got != 2 {
		t.Fatalf("stages = %d, want 2 (map side + reduce side)", got)
	}
}

func TestCacheAvoidsRecompute(t *testing.T) {
	s := testSession()
	calls := 0
	d := Map(Parallelize(s, ints(10), 1), func(x int) int { calls++; return x })
	d = d.Cache()
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("map called %d times, want 10 (cached second job)", calls)
	}
	d.Unpersist()
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Fatalf("map called %d times after unpersist, want 20", calls)
	}
}

func TestDiamondReusesWithinJobViaRoots(t *testing.T) {
	// A cached diamond base computes once even when two branches read it.
	s := testSession()
	calls := 0
	base := Map(Parallelize(s, ints(10), 1), func(x int) int { calls++; return x }).Cache()
	left := Map(base, inc)
	right := Map(base, func(x int) int { return x * 2 })
	if _, err := Count(Union(left, right)); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("base computed %d element-calls, want 10", calls)
	}
}

func TestBroadcastOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 2
	cfg.Cluster.CoresPerMachine = 2
	cfg.Cluster.MemoryPerMachine = 4 << 10 // 4 KB machines
	cfg.DefaultParallelism = 4
	s := mustSession(cfg)
	small := Parallelize(s, makePairs(2000), 4) // far beyond 4 KB when broadcast
	big := Parallelize(s, makePairs(10), 2)
	_, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
}

func TestHugeTaskOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 2
	cfg.Cluster.CoresPerMachine = 2
	cfg.Cluster.MemoryPerMachine = 8 << 10
	cfg.DefaultParallelism = 4
	s := mustSession(cfg)
	// One giant group: groupByKey puts it in a single task.
	pairs := make([]Pair[int, int64], 5000)
	for i := range pairs {
		pairs[i] = KV(7, int64(i))
	}
	_, err := Collect(GroupByKey(Parallelize(s, pairs, 8)))
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
}

func makePairs(n int) []Pair[int, int64] {
	out := make([]Pair[int, int64], n)
	for i := range out {
		out[i] = KV(i, int64(i))
	}
	return out
}

func TestRepartitionPreservesElements(t *testing.T) {
	s := testSession()
	d := Repartition(Parallelize(s, ints(100), 2), 16)
	if d.NumPartitions() != 16 {
		t.Fatalf("parts = %d", d.NumPartitions())
	}
	got := sortedCollect(t, d, func(a, b int) bool { return a < b })
	if len(got) != 100 || got[99] != 99 {
		t.Fatalf("len=%d", len(got))
	}
}

func TestKeyByKeysValuesMapValues(t *testing.T) {
	s := testSession()
	d := KeyBy(Parallelize(s, []string{"aa", "b", "ccc"}, 2), func(s string) int { return len(s) })
	ks := sortedCollect(t, Keys(d), func(a, b int) bool { return a < b })
	if fmt.Sprint(ks) != "[1 2 3]" {
		t.Fatalf("keys %v", ks)
	}
	vs := sortedCollect(t, Values(d), func(a, b string) bool { return a < b })
	if fmt.Sprint(vs) != "[aa b ccc]" {
		t.Fatalf("values %v", vs)
	}
	ud := MapValues(d, func(v string) string { return v + "!" })
	m, err := CollectMap(ud)
	if err != nil || m[2] != "aa!" {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestMapCtxChargesWork(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(4), 1)
	plain := Map(d, inc)
	if _, err := Count(plain); err != nil {
		t.Fatal(err)
	}
	t1 := s.Clock()
	heavy := MapCtx(d, func(tc *Ctx, x int) int {
		tc.Charge(1_000_000)
		return x
	})
	if _, err := Count(heavy); err != nil {
		t.Fatal(err)
	}
	t2 := s.Clock()
	if t2-t1 <= t1 {
		t.Fatalf("charged job (%.3fs) should be much slower than plain (%.3fs)", t2-t1, t1)
	}
}

func TestMoreMachinesFasterForParallelWork(t *testing.T) {
	run := func(machines int) float64 {
		cfg := DefaultConfig()
		cfg.Cluster.Machines = machines
		cfg.Cluster.CoresPerMachine = 4
		cfg.DefaultParallelism = machines * 12
		s := mustSession(cfg)
		d := Parallelize(s, ints(200_000), machines*12)
		if _, err := Count(Map(d, inc)); err != nil {
			panic(err)
		}
		return s.Clock()
	}
	if t1, t8 := run(1), run(8); t8 >= t1 {
		t.Fatalf("8 machines (%.4f) not faster than 1 (%.4f)", t8, t1)
	}
}

func TestTaskPanicPropagatesWithContext(t *testing.T) {
	s := testSession()
	d := Map(Parallelize(s, ints(10), 2), func(x int) int {
		if x == 5 {
			panic("boom")
		}
		return x
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if msg := fmt.Sprint(r); msg == "boom" {
			t.Fatal("panic should be wrapped with task context")
		}
	}()
	_, _ = Collect(d)
}

func TestPartitionByKeyCoPartitionedJoinSkipsShuffle(t *testing.T) {
	s := testSession()
	l := PartitionByKey(Parallelize(s, []Pair[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}, 2), 4).Cache()
	if _, err := Count(l); err != nil { // materialize the partitioned side
		t.Fatal(err)
	}
	r := Parallelize(s, []Pair[int, string]{{2, "x"}, {3, "y"}, {4, "z"}}, 3)

	before := s.Stats()
	joined, err := Collect(Join(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 2 {
		t.Fatalf("join results: %v", joined)
	}
	// Stages in the join job: the right side's shuffle map stage plus the
	// join stage. The pre-partitioned left side must NOT add a stage.
	if got := s.Stats().Stages - before.Stages; got != 2 {
		t.Errorf("stages = %d, want 2 (left side read narrowly)", got)
	}
}

func TestPartitionByKeyIdempotent(t *testing.T) {
	s := testSession()
	d := PartitionByKey(Parallelize(s, []Pair[int, int]{{1, 1}}, 1), 4)
	d2 := PartitionByKey(d, 4)
	if d2.n != d.n {
		t.Error("re-partitioning with the same layout should be a no-op")
	}
	d3 := PartitionByKey(d, 8)
	if d3.n == d.n {
		t.Error("different partition count must create a new shuffle")
	}
}

func TestFilterAndMapValuesPreservePartitioning(t *testing.T) {
	s := testSession()
	d := PartitionByKey(Parallelize(s, makePairs(100), 4), 8)
	f := Filter(d, func(p Pair[int, int64]) bool { return p.Key%2 == 0 })
	mv := MapValues(f, func(v int64) int64 { return v * 2 })
	if mv.n.pkey == nil || mv.n.pkey.parts != 8 {
		t.Fatal("filter/mapValues lost the partitioning")
	}
	plain := Map(mv, func(p Pair[int, int64]) Pair[int, int64] { return p })
	if plain.n.pkey != nil {
		t.Fatal("map may change keys and must drop the partitioning")
	}
}

func TestCoPartitionedJoinCorrectness(t *testing.T) {
	// Property: joining with one side pre-partitioned gives the same
	// result as the plain repartition join.
	s := testSession()
	f := func(lk, rk []uint8) bool {
		l := make([]Pair[uint8, int], len(lk))
		for i, k := range lk {
			l[i] = KV(k%6, i)
		}
		r := make([]Pair[uint8, int], len(rk))
		for i, k := range rk {
			r[i] = KV(k%6, i+100)
		}
		want := joinReference(l, r)
		lp := PartitionByKey(Parallelize(s, l, 3), 5)
		got, err := Collect(Join(lp, Parallelize(s, r, 4)))
		if err != nil {
			return false
		}
		gm := map[string]int{}
		for _, p := range got {
			gm[fmt.Sprint(p.Key, ":", p.Val.A, ":", p.Val.B)]++
		}
		return fmt.Sprint(gm) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	s := testSession()
	l := Parallelize(s, []Pair[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}, 2)
	r := Parallelize(s, []Pair[int, int]{{2, 20}, {2, 21}}, 2)
	got, err := Collect(LeftOuterJoin(l, r))
	if err != nil {
		t.Fatal(err)
	}
	matched, unmatched := 0, 0
	for _, p := range got {
		if p.Val.B.OK {
			matched++
			if p.Key != 2 {
				t.Errorf("unexpected match for key %d", p.Key)
			}
		} else {
			unmatched++
		}
	}
	if matched != 2 || unmatched != 2 {
		t.Fatalf("matched=%d unmatched=%d, want 2/2", matched, unmatched)
	}
}

func TestCoGroup(t *testing.T) {
	s := testSession()
	l := Parallelize(s, []Pair[int, string]{{1, "a"}, {1, "b"}, {2, "c"}}, 2)
	r := Parallelize(s, []Pair[int, int]{{2, 20}, {3, 30}}, 2)
	m, err := CollectMap(CoGroup(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("keys = %d, want 3", len(m))
	}
	if len(m[1].A) != 2 || len(m[1].B) != 0 {
		t.Errorf("key 1: %+v", m[1])
	}
	if len(m[2].A) != 1 || len(m[2].B) != 1 {
		t.Errorf("key 2: %+v", m[2])
	}
	if len(m[3].A) != 0 || len(m[3].B) != 1 {
		t.Errorf("key 3: %+v", m[3])
	}
}

func TestTake(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(100), 5)
	got, err := Take(d, 7)
	if err != nil || len(got) != 7 {
		t.Fatalf("take: %v %v", got, err)
	}
	all, err := Take(d, 1000)
	if err != nil || len(all) != 100 {
		t.Fatalf("take beyond size: %d %v", len(all), err)
	}
}

func TestRecordWeightScalesCosts(t *testing.T) {
	run := func(weight float64) float64 {
		cfg := DefaultConfig()
		cfg.Cluster.Machines = 2
		cfg.Cluster.CoresPerMachine = 2
		cfg.Cluster.MemoryPerMachine = 1 << 42 // cost scaling only; no OOM
		cfg.Cluster.RecordWeight = weight
		s := mustSession(cfg)
		d := Parallelize(s, ints(50_000), 8)
		if _, err := Count(Map(d, inc)); err != nil {
			t.Fatal(err)
		}
		return s.Clock()
	}
	t1, t100 := run(1), run(10_000)
	if t100 < 10*t1 {
		t.Errorf("weight 10k run (%.3fs) should be much slower than weight 1 (%.3fs)", t100, t1)
	}
}

func TestUnscaledDataIsCheapUnderWeight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 2
	cfg.Cluster.CoresPerMachine = 2
	cfg.Cluster.MemoryPerMachine = 1 << 44
	cfg.Cluster.RecordWeight = 100_000
	s := mustSession(cfg)
	scaled := Parallelize(s, ints(20_000), 8)
	unscaled := Parallelize(s, ints(20_000), 8).Unscaled()
	c0 := s.Clock()
	if _, err := Count(Map(unscaled, inc)); err != nil {
		t.Fatal(err)
	}
	cheap := s.Clock() - c0
	c1 := s.Clock()
	if _, err := Count(Map(scaled, inc)); err != nil {
		t.Fatal(err)
	}
	costly := s.Clock() - c1
	if costly < 10*cheap {
		t.Errorf("scaled job (%.3fs) should dwarf unscaled job (%.3fs)", costly, cheap)
	}
}

func TestWeightPropagatesMaxOfParents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.RecordWeight = 7
	s := mustSession(cfg)
	scaled := Parallelize(s, ints(10), 2)
	unscaled := Parallelize(s, ints(10), 2).Unscaled()
	u := Union(scaled, unscaled)
	if u.Weight() != 7 {
		t.Errorf("union weight = %v, want 7 (max of parents)", u.Weight())
	}
	if Map(unscaled, inc).Weight() != 1 {
		t.Error("map of unscaled data must stay unscaled")
	}
}

func TestReduceByKeyBoundOutputUnscaled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.RecordWeight = 50
	s := mustSession(cfg)
	pairs := make([]Pair[int, int64], 10_000)
	for i := range pairs {
		pairs[i] = KV(i%4, int64(1))
	}
	d := Parallelize(s, pairs, 8)
	bound := ReduceByKeyBound(d, func(a, b int64) int64 { return a + b }, 0)
	if bound.Weight() != 1 {
		t.Errorf("bound reduce weight = %v, want 1", bound.Weight())
	}
	normal := ReduceByKey(d, func(a, b int64) int64 { return a + b })
	if normal.Weight() != 50 {
		t.Errorf("normal reduce weight = %v, want 50", normal.Weight())
	}
	// Results agree regardless of cost accounting.
	mb, err1 := CollectMap(bound)
	mn, err2 := CollectMap(normal)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for k, v := range mn {
		if mb[k] != v {
			t.Errorf("key %d: bound %d != normal %d", k, mb[k], v)
		}
	}
}

func TestExplainShowsPlanStructure(t *testing.T) {
	s := testSession()
	pairs := Parallelize(s, makePairs(100), 4)
	part := PartitionByKey(pairs, 8).Cache()
	red := ReduceByKey(MapValues(part, func(v int64) int64 { return v + 1 }),
		func(a, b int64) int64 { return a + b })
	out := Explain(red)
	for _, want := range []string{
		"reduceByKey",
		"<-shuffle",
		"mapPartitions", // the map-side combine
		"partitionByKey",
		"cached",
		"partitioned-by=",
		"parallelize",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainMarksSharedSubplans(t *testing.T) {
	s := testSession()
	base := Map(Parallelize(s, ints(10), 2), inc)
	u := Union(Map(base, inc), Filter(base, func(int) bool { return true }))
	out := Explain(u)
	if !strings.Contains(out, "(shared)") {
		t.Errorf("diamond base should print as shared:\n%s", out)
	}
}

func TestStageErrorIncludesChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 2
	cfg.Cluster.CoresPerMachine = 2
	cfg.Cluster.MemoryPerMachine = 1 << 10
	cfg.DefaultParallelism = 2
	s := mustSession(cfg)
	d := Map(Parallelize(s, ints(50_000), 2), inc)
	_, err := Collect(d)
	if err == nil {
		t.Fatal("expected OOM")
	}
	msg := err.Error()
	if !strings.Contains(msg, "map") || !strings.Contains(msg, "<-") {
		t.Errorf("error should describe the stage chain: %q", msg)
	}
}

func TestBroadcastCountedInStats(t *testing.T) {
	s := testSession()
	small := Parallelize(s, makePairs(3), 1)
	big := Parallelize(s, makePairs(10), 2)
	before := s.Stats().Broadcasts
	if _, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Broadcasts != before+1 {
		t.Errorf("broadcasts = %d, want %d", s.Stats().Broadcasts, before+1)
	}
}

func TestCollectMapAndFirst(t *testing.T) {
	s := testSession()
	d := Parallelize(s, []Pair[string, int]{{"x", 1}, {"y", 2}}, 2)
	m, err := CollectMap(d)
	if err != nil || m["x"] != 1 || m["y"] != 2 {
		t.Fatalf("m = %v, err %v", m, err)
	}
	v, err := First(Parallelize(s, []int{42}, 1))
	if err != nil || v != 42 {
		t.Fatalf("first = %v, %v", v, err)
	}
}

func TestCoalesce(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(100), 10)
	c := Coalesce(d, 3)
	if c.NumPartitions() != 3 {
		t.Fatalf("parts = %d", c.NumPartitions())
	}
	got := sortedCollect(t, c, func(a, b int) bool { return a < b })
	if len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("coalesce lost data: %d", len(got))
	}
	// No shuffle: coalescing adds no extra stage.
	before := s.Stats().Stages
	if _, err := Count(c); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Stages-before != 1 {
		t.Errorf("coalesce must stay narrow")
	}
	// Degenerate arguments are no-ops.
	if Coalesce(d, 0).n != d.n || Coalesce(d, 100).n != d.n {
		t.Error("invalid/larger parts should return the receiver")
	}
}
