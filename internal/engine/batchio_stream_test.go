package engine

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

// TestWriteReadBatchOverPipe streams frames across a real byte pipe with
// deliberately torn writes (1–3 bytes per Write), as a unix socket under
// load delivers them: ReadBatch must reassemble every frame exactly and
// report clean io.EOF at the stream's end.
func TestWriteReadBatchOverPipe(t *testing.T) {
	batches := []Batch{
		batchOf([]int{1, 2, 3}, 3),
		batchOf([]Pair[int, int64]{{1, 10}, {2, 20}, {1, 30}}, 8),
		batchOf([]string{"", "torn", "writes"}, 3),
		zeroBatch,
	}
	client, server := net.Pipe()
	go func() {
		defer client.Close()
		var stream []byte
		for _, b := range batches {
			enc, err := EncodeBatch(nil, b)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			stream = append(stream, enc...)
		}
		// Tear the stream into tiny writes that never align with frames.
		for len(stream) > 0 {
			n := 1 + len(stream)%3
			if n > len(stream) {
				n = len(stream)
			}
			if _, err := client.Write(stream[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			stream = stream[n:]
		}
	}()
	for i, want := range batches {
		got, err := ReadBatch(server)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !batchEqual(got, want) {
			t.Fatalf("frame %d differs: got %#v want %#v", i, got, want)
		}
	}
	if _, err := ReadBatch(server); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

// TestReadBatchTruncated: a stream cut inside a frame is a loud codec
// error, distinct from the clean EOF between frames.
func TestReadBatchTruncated(t *testing.T) {
	enc, err := EncodeBatch(nil, batchOf([]int{9, 8, 7, 6, 5}, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the body, and inside the 8-byte header.
	for _, cut := range []int{len(enc) - 4, len(enc) / 2, 9, 5} {
		r := bytes.NewReader(enc[:cut])
		if _, err := ReadBatch(r); err == nil || !errors.Is(err, errBatchCodec) {
			t.Fatalf("cut at %d: got %v, want a codec error", cut, err)
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut at %d: error %q does not say truncated", cut, err)
		}
	}
	// A valid frame followed by a truncated one: first reads clean.
	r := bytes.NewReader(append(append([]byte{}, enc...), enc[:10]...))
	if _, err := ReadBatch(r); err != nil {
		t.Fatalf("leading intact frame: %v", err)
	}
	if _, err := ReadBatch(r); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("trailing cut frame: got %v", err)
	}
}

// TestWriteBatchSingleWrite: WriteBatch must emit the frame in one Write
// call — concurrent writers on a shared socket serialize per frame, and
// a multi-write frame would interleave.
func TestWriteBatchSingleWrite(t *testing.T) {
	var w countingWriter
	n, err := WriteBatch(&w, batchOf([]int{1, 2, 3}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("frame took %d writes, want 1", w.calls)
	}
	if n != w.bytes {
		t.Fatalf("reported %d bytes, wrote %d", n, w.bytes)
	}
}

type countingWriter struct {
	calls int
	bytes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.calls++
	w.bytes += len(p)
	return len(p), nil
}
