package plan

import (
	"strings"
	"testing"
)

// mk builds a node and wires deps in order. NarrowMap nil means identity.
func mk(id int64, label string, parts int, deps ...*Dep) *Node {
	n := &Node{ID: id, Label: label, Parts: parts}
	for i, d := range deps {
		d.Owner = n
		d.Index = i
		n.Deps = append(n.Deps, d)
	}
	return n
}

func TestBuildSingleStagePipelinesNarrowChain(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	f := mk(3, "filter", 4, &Dep{Parent: m, Kind: Narrow})
	p := Build(f, Options{Memo: true})

	if len(p.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(p.Stages))
	}
	st := p.Stages[0]
	if st.Root != f || len(st.Boundary) != 0 {
		t.Fatalf("stage root=%v boundary=%d", st.Root.Label, len(st.Boundary))
	}
	if got := st.ChainString(); got != "filter<-map<-parallelize" {
		t.Fatalf("chain = %q", got)
	}
	if len(p.Memo) != 0 {
		t.Fatalf("memo sites = %v, want none in a linear chain", p.Memo)
	}
}

func TestBuildShuffleSplitsStagesInTopoOrder(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "mapPartitions", 4, &Dep{Parent: src, Kind: Narrow})
	red := mk(3, "reduceByKey", 8, &Dep{Parent: m, Kind: Shuffle})
	out := mk(4, "map", 8, &Dep{Parent: red, Kind: Narrow})
	p := Build(out, Options{Memo: true})

	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(p.Stages))
	}
	// Upstream stage must come first (the executor materializes in order).
	if p.Stages[0].Root != m || p.Stages[1].Root != out {
		t.Fatalf("stage order: %s, %s", p.Stages[0].Root.Label, p.Stages[1].Root.Label)
	}
	if p.Stages[0].ID != 1 || p.Stages[1].ID != 2 {
		t.Fatalf("stage ids: %d, %d", p.Stages[0].ID, p.Stages[1].ID)
	}
	if !p.IsRoot(m) || p.IsRoot(red) || p.IsRoot(src) {
		t.Fatalf("roots: src=%v m=%v red=%v", p.IsRoot(src), p.IsRoot(m), p.IsRoot(red))
	}
	st := p.StageOf(out)
	if len(st.Boundary) != 1 || st.Boundary[0].Kind != Shuffle || st.Boundary[0].Parent != m {
		t.Fatalf("boundary = %+v", st.Boundary)
	}
	// The shuffle edge must resolve back to the engine's dep record.
	if st.Boundary[0].Owner != red || st.Boundary[0].Index != 0 {
		t.Fatalf("edge identity: owner=%s index=%d", st.Boundary[0].Owner.Label, st.Boundary[0].Index)
	}
}

func TestBuildCachedParentBecomesRoot(t *testing.T) {
	src := mk(1, "parallelize", 4)
	cached := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	cached.Cached = true
	out := mk(3, "filter", 4, &Dep{Parent: cached, Kind: Narrow})
	p := Build(out, Options{Memo: true})

	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (cached parent materialized)", len(p.Stages))
	}
	if !p.IsRoot(cached) {
		t.Fatal("cached parent should be a stage root")
	}
	st := p.StageOf(out)
	if len(st.Boundary) != 1 || st.Boundary[0].Kind != Narrow || st.Boundary[0].Parent != cached {
		t.Fatalf("boundary = %+v", st.Boundary)
	}
}

func TestPlanMemoDiamondFanIn(t *testing.T) {
	// Diamond: two narrow consumers of the same non-root node.
	src := mk(1, "parallelize", 4)
	a := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	b := mk(3, "filter", 4, &Dep{Parent: src, Kind: Narrow})
	aParts := a.Parts
	u := mk(4, "union", 8,
		&Dep{Parent: a, Kind: Narrow, NarrowMap: func(p int) []int {
			if p < aParts {
				return []int{p}
			}
			return nil
		}},
		&Dep{Parent: b, Kind: Narrow, NarrowMap: func(p int) []int {
			if p >= aParts {
				return []int{p - aParts}
			}
			return nil
		}})
	p := Build(u, Options{Memo: true})

	if !p.Memo[src] {
		t.Error("diamond base should be a memo site (fan-in 2)")
	}
	if p.Memo[a] || p.Memo[b] {
		t.Errorf("single-consumer nodes memoized: a=%v b=%v", p.Memo[a], p.Memo[b])
	}
	if off := Build(u, Options{Memo: false}); len(off.Memo) != 0 {
		t.Errorf("Memo=false still planned %d sites", len(off.Memo))
	}
}

func TestPlanMemoConcatFanInIsSingleUse(t *testing.T) {
	// Concat/Coalesce: one child partition reads every parent partition —
	// each parent partition still has exactly one consumer, so no memo.
	src := mk(1, "parallelize", 6)
	c := mk(2, "concat", 1, &Dep{Parent: src, Kind: Narrow, NarrowMap: func(int) []int {
		return []int{0, 1, 2, 3, 4, 5}
	}})
	p := Build(c, Options{Memo: true})
	if len(p.Memo) != 0 {
		t.Fatalf("memo sites = %d, want 0 (each partition read once)", len(p.Memo))
	}
	if len(p.Stages) != 1 {
		t.Fatalf("stages = %d, want 1 (fan-in is still narrow)", len(p.Stages))
	}
}

func TestStringRendersStagesBoundariesAndMemo(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	small := mk(3, "parallelize", 1)
	j := mk(4, "broadcastJoin", 4,
		&Dep{Parent: small, Kind: Broadcast},
		&Dep{Parent: m, Kind: Shuffle})
	p := Build(j, Options{Memo: true})

	got := p.String()
	want := strings.Join([]string{
		"Stage 1 root=#3 parallelize parts=1",
		"Stage 2 root=#2 map parts=4 chain=map<-parallelize",
		"Stage 3 root=#4 broadcastJoin parts=4 chain=broadcastJoin<-[parallelize]",
		"  <-broadcast Stage 1 (#3 parallelize)",
		"  <-shuffle Stage 2 (#2 map)",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("String():\n%s\nwant:\n%s", got, want)
	}
}

// TestReplanPrunesBelowDoneFrontier: on a recovery replan, a Done node is
// a leaf stage served from the checkpoint — no boundary, no planning below
// it — and the rendering carries the replan provenance.
func TestReplanPrunesBelowDoneFrontier(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "mapPartitions", 4, &Dep{Parent: src, Kind: Narrow})
	red := mk(3, "reduceByKey", 8, &Dep{Parent: m, Kind: Shuffle})
	out := mk(4, "map", 8, &Dep{Parent: red, Kind: Narrow})
	m.Done = true
	p := Build(out, Options{Memo: true, Replan: 2})

	if p.Replan != 2 {
		t.Fatalf("Replan = %d", p.Replan)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (frontier leaf + suffix)", len(p.Stages))
	}
	leaf := p.StageOf(m)
	if leaf == nil || len(leaf.Boundary) != 0 || len(leaf.Chain) != 1 {
		t.Fatalf("frontier leaf stage = %+v", leaf)
	}
	if p.IsRoot(src) || p.StageOf(src) != nil {
		t.Error("planner looked below the Done frontier")
	}
	s := p.String()
	if !strings.HasPrefix(s, "Replan 2 (resumed from stage frontier)\n") {
		t.Errorf("missing replan header:\n%s", s)
	}
	if !strings.Contains(s, "parts=4 done") {
		t.Errorf("done mark not rendered:\n%s", s)
	}
}

// TestDoneNarrowParentBecomesRoot: a Done parent consumed narrowly is a
// stage boundary (read from the frontier), not pipelined into its child.
func TestDoneNarrowParentBecomesRoot(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	f := mk(3, "filter", 4, &Dep{Parent: m, Kind: Narrow})
	m.Done = true
	p := Build(f, Options{Memo: true, Replan: 1})

	if !p.IsRoot(m) {
		t.Fatal("Done narrow parent must be a stage root")
	}
	st := p.StageOf(f)
	if len(st.Boundary) != 1 || st.Boundary[0].Parent != m || st.Boundary[0].Kind != Narrow {
		t.Fatalf("boundary = %+v", st.Boundary)
	}
	if len(st.Chain) != 1 {
		t.Fatalf("chain = %d nodes, want the root alone", len(st.Chain))
	}
}

// TestFirstPlanRendersWithoutReplanArtifacts: plans built before any
// recovery look exactly as they always did.
func TestFirstPlanRendersWithoutReplanArtifacts(t *testing.T) {
	src := mk(1, "parallelize", 4)
	m := mk(2, "map", 4, &Dep{Parent: src, Kind: Narrow})
	s := Build(m, Options{Memo: true}).String()
	if strings.Contains(s, "Replan") || strings.Contains(s, "done") {
		t.Errorf("first plan carries replan artifacts:\n%s", s)
	}
}
