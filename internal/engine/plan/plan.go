// Package plan builds the physical execution plan of one engine job.
//
// The engine's executor used to make every physical decision implicitly
// while running — which nodes form stage boundaries, which narrow chains
// pipeline into one task, which fan-in partitions deserve memoization.
// This package extracts that planning into a distinct step that produces a
// first-class, printable data structure: the executor (both the parallel
// path and the retained serial reference) is a pure consumer of the Plan,
// and tests, EXPLAIN output, and future optimization rules all inspect the
// same artifact instead of re-deriving it.
//
// The planner sees the operator DAG through its own Node/Dep types, built
// by the engine from its internal graph. It needs only structure: dep
// kinds, narrow partition maps, partition counts, and cache marks. It
// never touches data.
package plan

import (
	"fmt"
	"strings"
)

// DepKind distinguishes how a node consumes its parent.
type DepKind int

const (
	// Narrow: child partition p reads specific parent partitions
	// (default: the same index p); pipelined within a stage.
	Narrow DepKind = iota
	// Shuffle: child partition p reads the elements of every parent
	// partition routed to p — a stage boundary.
	Shuffle
	// Broadcast: every child partition reads the parent in full — a
	// stage boundary with cluster-wide residency.
	Broadcast
)

func (k DepKind) String() string {
	switch k {
	case Narrow:
		return "narrow"
	case Shuffle:
		return "shuffle"
	case Broadcast:
		return "broadcast"
	}
	return "unknown"
}

// Dep is one edge of the operator DAG as the planner sees it. Owner and
// Index identify the edge in the engine's graph, so the executor can map a
// planned boundary back to its own dependency record.
type Dep struct {
	Owner  *Node // consuming node
	Index  int   // position in Owner's dependency list
	Parent *Node
	Kind   DepKind
	// NarrowMap lists the parent partitions child partition p reads
	// (narrow deps only; nil means identity). It must be pure — the
	// planner calls it to compute partition fan-in.
	NarrowMap func(child int) []int
}

// Node is the planner's view of one operator DAG vertex.
type Node struct {
	ID     int64
	Label  string
	Parts  int
	Weight float64 // real records per element (rendering only)
	Cached bool
	// Done marks a node already materialized on the job's stage frontier
	// when the plan is a recovery replan: it becomes a leaf stage with no
	// boundary, and the planner never looks below it — the rebuilt plan
	// covers only the unfinished suffix of the DAG.
	Done bool
	Deps []*Dep
}

// Options configure planning.
type Options struct {
	// Memo enables narrow fan-in memo sites. The retained serial
	// reference executor disables it and recomputes per consumer, as the
	// pre-parallelism engine did.
	Memo bool
	// Replan, when > 0, records that this plan is the Nth rebuild of the
	// job after an adaptive recovery. Rendering notes it, and Done marks
	// become meaningful.
	Replan int
}

// Stage is one unit of execution: its root node is materialized in full,
// and the narrow ancestors inside the stage are pipelined into the root's
// tasks. Boundary lists the edges that leave the stage — every shuffle or
// broadcast dep, and every narrow dep whose parent is itself a stage root
// — in the executor's traversal order.
type Stage struct {
	ID       int
	Root     *Node
	Boundary []*Dep
	// Chain is the primary pipelined operator chain, root first,
	// following each node's first dependency while it stays narrow and
	// inside the stage. It is what error messages and EXPLAIN print.
	Chain []*Node
}

// ChainString renders the stage's pipelined chain as
// "root<-op<-op<-[input]", where the bracketed tail is the stage's first
// upstream input (if any).
func (st *Stage) ChainString() string {
	var b strings.Builder
	b.WriteString(st.Root.Label)
	for _, n := range st.Chain[1:] {
		b.WriteString("<-")
		b.WriteString(n.Label)
	}
	last := st.Chain[len(st.Chain)-1]
	if len(last.Deps) > 0 {
		fmt.Fprintf(&b, "<-[%s]", last.Deps[0].Parent.Label)
	}
	return b.String()
}

// Plan is the physical plan of one job: which nodes are stage roots, how
// stages read each other, and which narrow fan-in nodes are memoized.
type Plan struct {
	Target *Node
	// Stages in topological order: every stage appears after the stages
	// it reads through its boundary.
	Stages []*Stage
	// Memo marks narrow, non-root nodes with partition fan-in > 1 whose
	// partitions the executor computes once per job, replaying the
	// recorded task costs to every consumer.
	Memo map[*Node]bool
	// Replan is the recovery generation this plan was built for (0 for a
	// job's first plan); see Options.Replan.
	Replan int

	roots   map[*Node]bool
	stageOf map[*Node]*Stage
}

// IsRoot reports whether n is a stage root (materialized in full).
func (p *Plan) IsRoot(n *Node) bool { return p.roots[n] }

// StageOf returns the stage rooted at n, or nil if n is not a root.
func (p *Plan) StageOf(n *Node) *Stage { return p.stageOf[n] }

// Build plans the job that materializes target.
//
// Roots are the nodes that must be materialized in full: the target, every
// shuffle or broadcast parent, and every cached parent (so its partitions
// can be stored). Everything else is pipelined into the tasks of its
// consuming stage. Memo sites are the narrow, non-root nodes with
// partition fan-in > 1: a parent partition listed by several consuming
// child partitions (Concat/Coalesce-style narrow maps) or consumed by
// several child nodes (diamond DAGs) would otherwise be recomputed once
// per consumer. The fan-in count is a static over-approximation of demand
// — memoizing a partition that is consumed once is harmless, because the
// executor replays exact costs.
func Build(target *Node, opt Options) *Plan {
	p := &Plan{
		Target:  target,
		Memo:    map[*Node]bool{},
		Replan:  opt.Replan,
		roots:   map[*Node]bool{target: true},
		stageOf: map[*Node]*Stage{},
	}
	// Pass 1: mark stage roots reachable from target. Done nodes (the
	// recovery frontier) are leaves: their parents stay unplanned.
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Done {
			return
		}
		for _, d := range n.Deps {
			if d.Kind != Narrow || d.Parent.Cached || d.Parent.Done {
				p.roots[d.Parent] = true
			}
			walk(d.Parent)
		}
	}
	walk(target)

	// Pass 2: memo sites (partition fan-in > 1 among narrow non-roots).
	if opt.Memo {
		p.planMemo(seen)
	}

	// Pass 3: one stage per root, emitted in topological order by a
	// post-order walk over boundary edges from the target's stage.
	var stage func(root *Node) *Stage
	stage = func(root *Node) *Stage {
		if st := p.stageOf[root]; st != nil {
			return st
		}
		st := &Stage{Root: root, Boundary: p.boundary(root), Chain: p.chain(root)}
		p.stageOf[root] = st
		for _, d := range st.Boundary {
			stage(d.Parent)
		}
		st.ID = len(p.Stages) + 1
		p.Stages = append(p.Stages, st)
		return st
	}
	stage(target)
	return p
}

// planMemo counts, per narrow non-root parent, how many consumer
// partitions list each of its partitions.
func (p *Plan) planMemo(seen map[*Node]bool) {
	refs := map[*Node][]int32{}
	for n := range seen {
		if n.Done {
			continue // frontier leaf: nothing below it is demanded
		}
		for _, d := range n.Deps {
			if d.Kind != Narrow || p.roots[d.Parent] {
				continue // roots are materialized, never recomputed
			}
			rs := refs[d.Parent]
			if rs == nil {
				rs = make([]int32, d.Parent.Parts)
				refs[d.Parent] = rs
			}
			if d.NarrowMap == nil {
				for i := 0; i < n.Parts && i < len(rs); i++ {
					rs[i]++
				}
			} else {
				for i := 0; i < n.Parts; i++ {
					for _, pp := range d.NarrowMap(i) {
						if pp >= 0 && pp < len(rs) {
							rs[pp]++
						}
					}
				}
			}
		}
	}
	for n, rs := range refs {
		for _, c := range rs {
			if c > 1 {
				p.Memo[n] = true
				break
			}
		}
	}
}

// boundary returns the edges at the rim of root's stage, in the
// executor's traversal order (dependency order, depth first).
func (p *Plan) boundary(root *Node) []*Dep {
	if root.Done {
		return nil // frontier leaf: served from the checkpoint, no inputs
	}
	var out []*Dep
	seen := map[*Node]bool{root: true}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, d := range n.Deps {
			if d.Kind != Narrow || p.roots[d.Parent] {
				out = append(out, d)
				continue
			}
			if !seen[d.Parent] {
				seen[d.Parent] = true
				walk(d.Parent)
			}
		}
	}
	walk(root)
	return out
}

// chain follows the primary (first-dependency) narrow path from root while
// it stays inside the stage.
func (p *Plan) chain(root *Node) []*Node {
	chain := []*Node{root}
	if root.Done {
		return chain
	}
	cur := root
	for len(cur.Deps) > 0 && cur.Deps[0].Kind == Narrow && !p.roots[cur.Deps[0].Parent] {
		cur = cur.Deps[0].Parent
		chain = append(chain, cur)
	}
	return chain
}

// String renders the plan stage by stage, upstream first:
//
//	Stage 1 root=#3 parallelize parts=8
//	Stage 2 root=#7 reduceByKey parts=8 chain=reduceByKey<-[parallelize]
//	  <-shuffle Stage 1 (#3 parallelize)
//
// Memo sites are listed at the end. The output is deterministic for a
// fixed DAG construction order (node IDs are allocated sequentially).
func (p *Plan) String() string {
	var b strings.Builder
	if p.Replan > 0 {
		fmt.Fprintf(&b, "Replan %d (resumed from stage frontier)\n", p.Replan)
	}
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "Stage %d root=#%d %s parts=%d", st.ID, st.Root.ID, st.Root.Label, st.Root.Parts)
		if st.Root.Weight > 1 {
			fmt.Fprintf(&b, " weight=%.0f", st.Root.Weight)
		}
		if st.Root.Cached {
			b.WriteString(" cached")
		}
		if st.Root.Done {
			b.WriteString(" done")
		}
		if len(st.Chain) > 1 || len(st.Chain[len(st.Chain)-1].Deps) > 0 {
			fmt.Fprintf(&b, " chain=%s", st.ChainString())
		}
		b.WriteString("\n")
		for _, d := range st.Boundary {
			up := p.stageOf[d.Parent]
			fmt.Fprintf(&b, "  <-%s Stage %d (#%d %s)\n", d.Kind, up.ID, d.Parent.ID, d.Parent.Label)
		}
	}
	if len(p.Memo) > 0 {
		var memos []*Node
		for n := range p.Memo {
			memos = append(memos, n)
		}
		sortNodes(memos)
		b.WriteString("Memo sites:")
		for _, n := range memos {
			fmt.Fprintf(&b, " #%d %s", n.ID, n.Label)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sortNodes(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID < ns[j-1].ID; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
