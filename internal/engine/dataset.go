package engine

// Dataset is an immutable, partitioned, lazily-evaluated distributed
// collection — the engine's Bag abstraction (an RDD in Spark terms).
// Transformations build a DAG; actions launch jobs.
//
// Methods cannot introduce new type parameters in Go, so transformations
// that change the element type are package-level functions (Map, Filter,
// ReduceByKey, Join, ...) taking the Dataset as their first argument.
type Dataset[T any] struct {
	s *Session
	n *node
}

// Session returns the owning session.
func (d Dataset[T]) Session() *Session { return d.s }

// NumPartitions returns the dataset's partition count.
func (d Dataset[T]) NumPartitions() int { return d.n.parts }

// Cache marks the dataset for materialization: the first job that computes
// it stores the partitions, and later jobs reuse them without recomputation
// (essential for iterative programs, cf. Sec. 6). Returns the receiver.
func (d Dataset[T]) Cache() Dataset[T] {
	d.n.cached = true
	return d
}

// Unscaled marks the dataset's rows as standing for exactly one real
// record each, regardless of the session's RecordWeight. Use it for
// collections whose cardinality does not grow with the input data:
// parameter lists, group keys, lifting tags. Returns the receiver.
func (d Dataset[T]) Unscaled() Dataset[T] {
	d.n.weight = 1
	return d
}

// Weight reports how many real records one element stands for.
func (d Dataset[T]) Weight() float64 { return d.n.weight }

// CachedBytes returns an estimate of the dataset's materialized size in
// real bytes, or
// -1 if it is not currently cached. The half-lifted mapWithClosure
// optimizer (paper Sec. 8.3) uses it as its SizeEstimator input.
func (d Dataset[T]) CachedBytes() int64 {
	d.n.cacheMu.Lock()
	data := d.n.cacheData
	d.n.cacheMu.Unlock()
	if data == nil {
		return -1
	}
	var total int64
	for _, p := range data {
		total += estPartitionBytes(p)
	}
	return int64(float64(total) * d.n.weight)
}

// Unpersist drops cached partitions (e.g. the previous iteration's state in
// a loop) so the host's memory is not retained indefinitely.
func (d Dataset[T]) Unpersist() {
	d.n.cacheMu.Lock()
	d.n.cacheData = nil
	d.n.cacheMu.Unlock()
}

// Parallelize distributes data across parts partitions (parts <= 0 uses the
// session default). It is the engine's source operator; the per-element
// read cost is charged when a job first scans it.
func Parallelize[T any](s *Session, data []T, parts int) Dataset[T] {
	if parts <= 0 {
		parts = s.cfg.DefaultParallelism
	}
	if parts > len(data) && len(data) > 0 {
		parts = len(data)
	}
	if len(data) == 0 {
		parts = 1
	}
	// Slice the data contiguously into typed batches; the source copy
	// happens once here. Each batch's boxed-equivalent capacity is its
	// exact length, as the boxed slices were.
	batches := make([]Batch, parts)
	for i := range batches {
		lo, hi := i*len(data)/parts, (i+1)*len(data)/parts
		part := make([]T, hi-lo)
		copy(part, data[lo:hi])
		batches[i] = batchOf(part, hi-lo)
	}
	n := s.newNode("parallelize", parts, nil, func(tc *Ctx, p int, _ []Batch) Batch {
		return batches[p]
	})
	return Dataset[T]{s, n}
}

// Empty returns a dataset with no elements. It is unscaled: an empty
// collection stands for nothing, so it must not impose the session's
// record weight on datasets derived from it (e.g. a lifted loop's result
// accumulator, which starts empty and unions in finished per-group
// scalars).
func Empty[T any](s *Session) Dataset[T] { return Parallelize[T](s, nil, 1).Unscaled() }

// fromNode wraps a node (internal constructor for operators).
func fromNode[T any](s *Session, n *node) Dataset[T] { return Dataset[T]{s, n} }
