//go:build race

package engine

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
