package engine

// JoinStrategy selects the physical implementation of an equi-join. The
// paper's lowering-phase optimizer picks between these at run time based on
// InnerScalar cardinalities (Sec. 8.2).
type JoinStrategy int

const (
	// JoinRepartition shuffles both sides by key (Spark's sort-merge /
	// shuffled-hash equivalent). Best when both sides are large.
	JoinRepartition JoinStrategy = iota
	// JoinBroadcastLeft replicates the left side to every task and streams
	// the right side with no shuffle. Best when the left side is small;
	// fails with OOM when it does not fit in a machine's memory.
	JoinBroadcastLeft
	// JoinBroadcastRight mirrors JoinBroadcastLeft.
	JoinBroadcastRight
)

func (s JoinStrategy) String() string {
	switch s {
	case JoinRepartition:
		return "repartition"
	case JoinBroadcastLeft:
		return "broadcast-left"
	case JoinBroadcastRight:
		return "broadcast-right"
	}
	return "unknown"
}

// Join is an inner equi-join with the repartition strategy and default
// parallelism.
func Join[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, B]]] {
	return JoinWith(l, r, JoinRepartition, 0)
}

// JoinWith is an inner equi-join with an explicit strategy and output
// partition count (<= 0: default for repartition, right/left side's count
// for broadcast joins).
func JoinWith[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]], strat JoinStrategy, parts int) Dataset[Pair[K, Tuple2[A, B]]] {
	switch strat {
	case JoinBroadcastLeft:
		return broadcastJoin(l, r)
	case JoinBroadcastRight:
		swapped := broadcastJoin(r, l)
		return Map(swapped, func(p Pair[K, Tuple2[B, A]]) Pair[K, Tuple2[A, B]] {
			return Pair[K, Tuple2[A, B]]{p.Key, Tuple2[A, B]{p.Val.B, p.Val.A}}
		})
	default:
		return repartitionJoin(l, r, parts)
	}
}

func repartitionJoin[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]], parts int) Dataset[Pair[K, Tuple2[A, B]]] {
	s := l.s
	// Adopt a pre-partitioned side's layout so it can be read narrowly.
	if parts <= 0 {
		switch {
		case l.n.pkey != nil:
			parts = l.n.pkey.parts
		case r.n.pkey != nil:
			parts = r.n.pkey.parts
		default:
			parts = s.cfg.DefaultParallelism
		}
	}
	target := partInfoFor[K](parts)
	sideDep := func(n *node, shuffled dep) dep {
		if n.pkey.matches(target) {
			return narrowDep(n) // co-partitioned: no shuffle
		}
		return shuffled
	}
	deps := []dep{
		sideDep(l.n, pairShuffleDep[K, A](s, l.n)),
		sideDep(r.n, pairShuffleDep[K, B](s, r.n)),
	}
	buildWeight := l.n.weight
	kernel := RepartitionJoinCompute[K, A, B]()
	n := s.newNode("join", parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		tc.UseMemory(s.estResidentBytes(in[0], buildWeight)) // resident build side
		return kernel(tc, p, in)
	})
	n.pkey = target // the join output stays partitioned by K
	return fromNode[Pair[K, Tuple2[A, B]]](s, n)
}

// broadcastJoin replicates `small` (the left side of the emitted tuple)
// and probes it with each partition of `big`, with no shuffle.
func broadcastJoin[K comparable, A, B any](small Dataset[Pair[K, A]], big Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, B]]] {
	s := small.s
	deps := []dep{
		{parent: small.n, kind: depBroadcast},
		{parent: big.n, kind: depNarrow},
	}
	var n *node
	n = s.newNode("broadcastJoin", big.n.parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		build := tc.Once(n.id, func() any {
			bc := elems[Pair[K, A]](in[0])
			m := make(map[K][]A, len(bc))
			for _, kv := range bc {
				m[kv.Key] = append(m[kv.Key], kv.Val)
			}
			return m
		}).(map[K][]A)
		var out []Pair[K, Tuple2[A, B]]
		for _, kv := range elems[Pair[K, B]](in[1]) {
			for _, a := range build[kv.Key] {
				out = append(out, Pair[K, Tuple2[A, B]]{kv.Key, Tuple2[A, B]{a, kv.Val}})
			}
		}
		return batchOf(out, blockCap(len(out)))
	})
	// Adaptive recovery's demotion target: the repartition join over the
	// same inputs, at the same partition count (evaluated at demote time,
	// after any partition raises).
	n.fallback = &refallback{
		rule: "join", choice: "broadcast", alt: "repartition",
		build: func() *node { return repartitionJoin(small, big, big.n.parts).n },
	}
	return fromNode[Pair[K, Tuple2[A, B]]](s, n)
}

// CrossWithBroadcast forms the cross product of every element of small with
// every element of big, broadcasting small. It implements the half-lifted
// mapWithClosure (Sec. 8.3), where e.g. each current K-means centroid set
// (an InnerScalar) must meet every point of the shared input bag.
func CrossWithBroadcast[A, B, C any](small Dataset[A], big Dataset[B], f func(A, B) C) Dataset[C] {
	s := small.s
	deps := []dep{
		{parent: small.n, kind: depBroadcast},
		{parent: big.n, kind: depNarrow},
	}
	n := s.newNode("crossBroadcastSmall", big.n.parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		as := elems[A](in[0])
		out := make([]C, 0, len(as)*in[1].Len())
		for _, b := range elems[B](in[1]) {
			for _, a := range as {
				out = append(out, f(a, b))
			}
		}
		return batchOf(out, cap(out))
	})
	// Demotion target: the mirrored half-lifted choice, repartitioned back
	// to this operator's layout. introRule/introChoice stop recovery from
	// bouncing between the two mirrors.
	n.fallback = &refallback{
		rule: "half-lifted", choice: "broadcast-scalar", alt: "broadcast-primary",
		introRule: "half-lifted", introChoice: "broadcast-primary",
		build: func() *node {
			return Repartition(CrossBroadcastBig(small, big, f), big.n.parts).n
		},
	}
	return fromNode[C](s, n)
}

// CrossBroadcastBig is the mirrored physical choice: broadcast big and keep
// small partitioned. The optimizer picks between the two using size
// estimates (Sec. 8.3); benchmarks exercise both to show the gap.
func CrossBroadcastBig[A, B, C any](small Dataset[A], big Dataset[B], f func(A, B) C) Dataset[C] {
	s := small.s
	deps := []dep{
		{parent: big.n, kind: depBroadcast},
		{parent: small.n, kind: depNarrow},
	}
	n := s.newNode("crossBroadcastBig", small.n.parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		bs := elems[B](in[0])
		out := make([]C, 0, len(bs)*in[1].Len())
		for _, a := range elems[A](in[1]) {
			for _, b := range bs {
				out = append(out, f(a, b))
			}
		}
		return batchOf(out, cap(out))
	})
	n.fallback = &refallback{
		rule: "half-lifted", choice: "broadcast-primary", alt: "broadcast-scalar",
		introRule: "half-lifted", introChoice: "broadcast-scalar",
		build: func() *node {
			return Repartition(CrossWithBroadcast(small, big, f), small.n.parts).n
		},
	}
	return fromNode[C](s, n)
}

// LeftOuterJoin joins every left element with its matching right values,
// or with `missing: true` when the key has no right match. Implemented as
// a repartition join whose probe side is the left input.
func LeftOuterJoin[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, Opt[B]]]] {
	s := l.s
	parts := s.cfg.DefaultParallelism
	deps := []dep{
		pairShuffleDep[K, B](s, r.n),
		pairShuffleDep[K, A](s, l.n),
	}
	buildWeight := r.n.weight
	n := s.newNode("leftOuterJoin", parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		tc.UseMemory(s.estResidentBytes(in[0], buildWeight))
		rhs := elems[Pair[K, B]](in[0])
		build := make(map[K][]B, len(rhs))
		for _, kv := range rhs {
			build[kv.Key] = append(build[kv.Key], kv.Val)
		}
		var out []Pair[K, Tuple2[A, Opt[B]]]
		for _, kv := range elems[Pair[K, A]](in[1]) {
			bs := build[kv.Key]
			if len(bs) == 0 {
				out = append(out, Pair[K, Tuple2[A, Opt[B]]]{kv.Key, Tuple2[A, Opt[B]]{A: kv.Val}})
				continue
			}
			for _, b := range bs {
				out = append(out, Pair[K, Tuple2[A, Opt[B]]]{kv.Key, Tuple2[A, Opt[B]]{A: kv.Val, B: Opt[B]{Val: b, OK: true}}})
			}
		}
		return batchOf(out, blockCap(len(out)))
	})
	return fromNode[Pair[K, Tuple2[A, Opt[B]]]](s, n)
}

// Opt is an optional value (outer-join results).
type Opt[T any] struct {
	Val T
	OK  bool
}

// CoGroup gathers, per key, all left values and all right values.
func CoGroup[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[[]A, []B]]] {
	s := l.s
	parts := s.cfg.DefaultParallelism
	deps := []dep{
		pairShuffleDep[K, A](s, l.n),
		pairShuffleDep[K, B](s, r.n),
	}
	inWeight := max(l.n.weight, r.n.weight)
	n := s.newNode("coGroup", parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		// The combined-input footprint is charged over a literally rebuilt
		// boxed concat: the chunk-wise append growth of the second append is
		// part of the observed capacity and is not reproduced by formula.
		tc.UseMemory(s.estResidentBoxed(append(append([]any{}, toBoxed(in[0])...), toBoxed(in[1])...), inWeight))
		lhs := elems[Pair[K, A]](in[0])
		rhs := elems[Pair[K, B]](in[1])
		la := map[K][]A{}
		for _, kv := range lhs {
			la[kv.Key] = append(la[kv.Key], kv.Val)
		}
		rb := map[K][]B{}
		for _, kv := range rhs {
			rb[kv.Key] = append(rb[kv.Key], kv.Val)
		}
		// Emit in first-seen input order, not map iteration order, so
		// partition contents (and the size estimator's positional samples)
		// are deterministic across processes.
		seen := map[K]bool{}
		var out []Pair[K, Tuple2[[]A, []B]]
		emit := func(k K) {
			if !seen[k] {
				seen[k] = true
				out = append(out, Pair[K, Tuple2[[]A, []B]]{k, Tuple2[[]A, []B]{A: la[k], B: rb[k]}})
			}
		}
		for _, kv := range lhs {
			emit(kv.Key)
		}
		for _, kv := range rhs {
			emit(kv.Key)
		}
		return batchOf(out, blockCap(len(out)))
	})
	return fromNode[Pair[K, Tuple2[[]A, []B]]](s, n)
}
