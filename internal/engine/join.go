package engine

// JoinStrategy selects the physical implementation of an equi-join. The
// paper's lowering-phase optimizer picks between these at run time based on
// InnerScalar cardinalities (Sec. 8.2).
type JoinStrategy int

const (
	// JoinRepartition shuffles both sides by key (Spark's sort-merge /
	// shuffled-hash equivalent). Best when both sides are large.
	JoinRepartition JoinStrategy = iota
	// JoinBroadcastLeft replicates the left side to every task and streams
	// the right side with no shuffle. Best when the left side is small;
	// fails with OOM when it does not fit in a machine's memory.
	JoinBroadcastLeft
	// JoinBroadcastRight mirrors JoinBroadcastLeft.
	JoinBroadcastRight
)

func (s JoinStrategy) String() string {
	switch s {
	case JoinRepartition:
		return "repartition"
	case JoinBroadcastLeft:
		return "broadcast-left"
	case JoinBroadcastRight:
		return "broadcast-right"
	}
	return "unknown"
}

// Join is an inner equi-join with the repartition strategy and default
// parallelism.
func Join[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, B]]] {
	return JoinWith(l, r, JoinRepartition, 0)
}

// JoinWith is an inner equi-join with an explicit strategy and output
// partition count (<= 0: default for repartition, right/left side's count
// for broadcast joins).
func JoinWith[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]], strat JoinStrategy, parts int) Dataset[Pair[K, Tuple2[A, B]]] {
	switch strat {
	case JoinBroadcastLeft:
		return broadcastJoin(l, r)
	case JoinBroadcastRight:
		swapped := broadcastJoin(r, l)
		return Map(swapped, func(p Pair[K, Tuple2[B, A]]) Pair[K, Tuple2[A, B]] {
			return Pair[K, Tuple2[A, B]]{p.Key, Tuple2[A, B]{p.Val.B, p.Val.A}}
		})
	default:
		return repartitionJoin(l, r, parts)
	}
}

func repartitionJoin[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]], parts int) Dataset[Pair[K, Tuple2[A, B]]] {
	s := l.s
	// Adopt a pre-partitioned side's layout so it can be read narrowly.
	if parts <= 0 {
		switch {
		case l.n.pkey != nil:
			parts = l.n.pkey.parts
		case r.n.pkey != nil:
			parts = r.n.pkey.parts
		default:
			parts = s.cfg.DefaultParallelism
		}
	}
	target := partInfoFor[K](parts)
	sideDep := func(n *node, part func(any, int) int) dep {
		if n.pkey.matches(target) {
			return narrowDep(n) // co-partitioned: no shuffle
		}
		return dep{parent: n, kind: depShuffle, partitioner: part}
	}
	deps := []dep{
		sideDep(l.n, keyPartitioner[K, A](s)),
		sideDep(r.n, keyPartitioner[K, B](s)),
	}
	buildWeight := l.n.weight
	n := s.newNode("join", parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		tc.UseMemory(s.estResidentBytes(in[0], buildWeight)) // resident build side
		build := make(map[K][]A, len(in[0]))
		for _, e := range in[0] {
			kv := e.(Pair[K, A])
			build[kv.Key] = append(build[kv.Key], kv.Val)
		}
		var out []any
		for _, e := range in[1] {
			kv := e.(Pair[K, B])
			for _, a := range build[kv.Key] {
				out = append(out, Pair[K, Tuple2[A, B]]{kv.Key, Tuple2[A, B]{a, kv.Val}})
			}
		}
		return out
	})
	n.pkey = target // the join output stays partitioned by K
	return fromNode[Pair[K, Tuple2[A, B]]](s, n)
}

// broadcastJoin replicates `small` (the left side of the emitted tuple)
// and probes it with each partition of `big`, with no shuffle.
func broadcastJoin[K comparable, A, B any](small Dataset[Pair[K, A]], big Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, B]]] {
	s := small.s
	deps := []dep{
		{parent: small.n, kind: depBroadcast},
		{parent: big.n, kind: depNarrow},
	}
	var n *node
	n = s.newNode("broadcastJoin", big.n.parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		build := tc.Once(n.id, func() any {
			m := make(map[K][]A, len(in[0]))
			for _, e := range in[0] {
				kv := e.(Pair[K, A])
				m[kv.Key] = append(m[kv.Key], kv.Val)
			}
			return m
		}).(map[K][]A)
		var out []any
		for _, e := range in[1] {
			kv := e.(Pair[K, B])
			for _, a := range build[kv.Key] {
				out = append(out, Pair[K, Tuple2[A, B]]{kv.Key, Tuple2[A, B]{a, kv.Val}})
			}
		}
		return out
	})
	// Adaptive recovery's demotion target: the repartition join over the
	// same inputs, at the same partition count (evaluated at demote time,
	// after any partition raises).
	n.fallback = &refallback{
		rule: "join", choice: "broadcast", alt: "repartition",
		build: func() *node { return repartitionJoin(small, big, big.n.parts).n },
	}
	return fromNode[Pair[K, Tuple2[A, B]]](s, n)
}

// CrossWithBroadcast forms the cross product of every element of small with
// every element of big, broadcasting small. It implements the half-lifted
// mapWithClosure (Sec. 8.3), where e.g. each current K-means centroid set
// (an InnerScalar) must meet every point of the shared input bag.
func CrossWithBroadcast[A, B, C any](small Dataset[A], big Dataset[B], f func(A, B) C) Dataset[C] {
	s := small.s
	deps := []dep{
		{parent: small.n, kind: depBroadcast},
		{parent: big.n, kind: depNarrow},
	}
	n := s.newNode("crossBroadcastSmall", big.n.parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		out := make([]any, 0, len(in[0])*len(in[1]))
		for _, be := range in[1] {
			b := be.(B)
			for _, ae := range in[0] {
				out = append(out, f(ae.(A), b))
			}
		}
		return out
	})
	// Demotion target: the mirrored half-lifted choice, repartitioned back
	// to this operator's layout. introRule/introChoice stop recovery from
	// bouncing between the two mirrors.
	n.fallback = &refallback{
		rule: "half-lifted", choice: "broadcast-scalar", alt: "broadcast-primary",
		introRule: "half-lifted", introChoice: "broadcast-primary",
		build: func() *node {
			return Repartition(CrossBroadcastBig(small, big, f), big.n.parts).n
		},
	}
	return fromNode[C](s, n)
}

// CrossBroadcastBig is the mirrored physical choice: broadcast big and keep
// small partitioned. The optimizer picks between the two using size
// estimates (Sec. 8.3); benchmarks exercise both to show the gap.
func CrossBroadcastBig[A, B, C any](small Dataset[A], big Dataset[B], f func(A, B) C) Dataset[C] {
	s := small.s
	deps := []dep{
		{parent: big.n, kind: depBroadcast},
		{parent: small.n, kind: depNarrow},
	}
	n := s.newNode("crossBroadcastBig", small.n.parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		out := make([]any, 0, len(in[0])*len(in[1]))
		for _, ae := range in[1] {
			a := ae.(A)
			for _, be := range in[0] {
				out = append(out, f(a, be.(B)))
			}
		}
		return out
	})
	n.fallback = &refallback{
		rule: "half-lifted", choice: "broadcast-primary", alt: "broadcast-scalar",
		introRule: "half-lifted", introChoice: "broadcast-scalar",
		build: func() *node {
			return Repartition(CrossWithBroadcast(small, big, f), small.n.parts).n
		},
	}
	return fromNode[C](s, n)
}

// LeftOuterJoin joins every left element with its matching right values,
// or with `missing: true` when the key has no right match. Implemented as
// a repartition join whose probe side is the left input.
func LeftOuterJoin[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[A, Opt[B]]]] {
	s := l.s
	parts := s.cfg.DefaultParallelism
	deps := []dep{
		{parent: r.n, kind: depShuffle, partitioner: keyPartitioner[K, B](s)},
		{parent: l.n, kind: depShuffle, partitioner: keyPartitioner[K, A](s)},
	}
	buildWeight := r.n.weight
	n := s.newNode("leftOuterJoin", parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		tc.UseMemory(s.estResidentBytes(in[0], buildWeight))
		build := make(map[K][]B, len(in[0]))
		for _, e := range in[0] {
			kv := e.(Pair[K, B])
			build[kv.Key] = append(build[kv.Key], kv.Val)
		}
		var out []any
		for _, e := range in[1] {
			kv := e.(Pair[K, A])
			bs := build[kv.Key]
			if len(bs) == 0 {
				out = append(out, Pair[K, Tuple2[A, Opt[B]]]{kv.Key, Tuple2[A, Opt[B]]{A: kv.Val}})
				continue
			}
			for _, b := range bs {
				out = append(out, Pair[K, Tuple2[A, Opt[B]]]{kv.Key, Tuple2[A, Opt[B]]{A: kv.Val, B: Opt[B]{Val: b, OK: true}}})
			}
		}
		return out
	})
	return fromNode[Pair[K, Tuple2[A, Opt[B]]]](s, n)
}

// Opt is an optional value (outer-join results).
type Opt[T any] struct {
	Val T
	OK  bool
}

// CoGroup gathers, per key, all left values and all right values.
func CoGroup[K comparable, A, B any](l Dataset[Pair[K, A]], r Dataset[Pair[K, B]]) Dataset[Pair[K, Tuple2[[]A, []B]]] {
	s := l.s
	parts := s.cfg.DefaultParallelism
	deps := []dep{
		{parent: l.n, kind: depShuffle, partitioner: keyPartitioner[K, A](s)},
		{parent: r.n, kind: depShuffle, partitioner: keyPartitioner[K, B](s)},
	}
	inWeight := max(l.n.weight, r.n.weight)
	n := s.newNode("coGroup", parts, deps, func(tc *Ctx, p int, in [][]any) []any {
		tc.UseMemory(s.estResidentBytes(append(append([]any{}, in[0]...), in[1]...), inWeight))
		la := map[K][]A{}
		for _, e := range in[0] {
			kv := e.(Pair[K, A])
			la[kv.Key] = append(la[kv.Key], kv.Val)
		}
		rb := map[K][]B{}
		for _, e := range in[1] {
			kv := e.(Pair[K, B])
			rb[kv.Key] = append(rb[kv.Key], kv.Val)
		}
		// Emit in first-seen input order, not map iteration order, so
		// partition contents (and the size estimator's positional samples)
		// are deterministic across processes.
		seen := map[K]bool{}
		var out []any
		emit := func(k K) {
			if !seen[k] {
				seen[k] = true
				out = append(out, Pair[K, Tuple2[[]A, []B]]{k, Tuple2[[]A, []B]{A: la[k], B: rb[k]}})
			}
		}
		for _, e := range in[0] {
			emit(e.(Pair[K, A]).Key)
		}
		for _, e := range in[1] {
			emit(e.(Pair[K, B]).Key)
		}
		return out
	})
	return fromNode[Pair[K, Tuple2[[]A, []B]]](s, n)
}
