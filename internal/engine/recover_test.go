package engine

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// recoverConfig is a small, memory-tight cluster with the adaptive
// recovery loop enabled and an event recorder attached.
func recoverConfig(mem int64) (Config, *obs.Recorder) {
	rec := obs.NewRecorder()
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 2
	cfg.Cluster.CoresPerMachine = 2
	cfg.Cluster.MemoryPerMachine = mem
	cfg.DefaultParallelism = 4
	cfg.Recover = true
	cfg.Obs = rec
	return cfg, rec
}

// recoveries flattens the recovery events of every job in the recorder.
func recoveries(rec *obs.Recorder) []obs.Recovery {
	var out []obs.Recovery
	for _, j := range rec.Jobs() {
		out = append(out, j.Recoveries...)
	}
	return out
}

// TestRecoverBroadcastOOMDemotesToRepartition: the same workload that
// TestBroadcastOOM proves aborts now completes when recovery is on — the
// broadcast join is demoted to its repartition fallback, the failed choice
// is denylisted, and the virtual clock is deterministic across sessions.
func TestRecoverBroadcastOOMDemotesToRepartition(t *testing.T) {
	run := func() (map[int]int64, float64, *Session, *obs.Recorder) {
		// 1 MB machines: ingesting small fits (~350 KB per task), but
		// broadcasting all of it (~1.4 MB resident) does not.
		cfg, rec := recoverConfig(1 << 20)
		s := mustSession(cfg)
		small := Parallelize(s, makePairs(2000), 4)
		big := Parallelize(s, makePairs(10), 2)
		got, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
		if err != nil {
			t.Fatalf("Collect with recovery: %v", err)
		}
		vals := make(map[int]int64, len(got))
		for _, p := range got {
			vals[p.Key] = p.Val.B
		}
		return vals, s.Clock(), s, rec
	}

	vals, clock1, s, rec := run()
	if len(vals) != 10 {
		t.Fatalf("join produced %d keys, want 10", len(vals))
	}
	for k := 0; k < 10; k++ {
		if vals[k] != int64(k) {
			t.Errorf("key %d joined to %d", k, vals[k])
		}
	}
	if why, denied := s.Feedback().Denied("join", "broadcast"); !denied {
		t.Error("failed broadcast choice not denylisted")
	} else if !strings.Contains(why, "OOMed") {
		t.Errorf("denylist reason = %q", why)
	}
	recs := recoveries(rec)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1: %+v", len(recs), recs)
	}
	if !strings.Contains(recs[0].What, "broadcast OOM") {
		t.Errorf("What = %q", recs[0].What)
	}
	if recs[0].Action != "re-lowered(join=repartition)" {
		t.Errorf("Action = %q", recs[0].Action)
	}
	if report := rec.Report(); !strings.Contains(report, "re-lowered(join=repartition)") {
		t.Errorf("EXPLAIN ANALYZE does not render the recovery:\n%s", report)
	}

	_, clock2, _, _ := run()
	if clock1 != clock2 {
		t.Errorf("recovered clock not deterministic: %.6f vs %.6f", clock1, clock2)
	}
}

// TestRecoverTaskOOMRaisesPartitions: a groupByKey whose per-task
// residency overflows a machine is re-lowered to more, smaller partitions
// and completes with the right groups.
func TestRecoverTaskOOMRaisesPartitions(t *testing.T) {
	// 512 KB machines: ingest at 8 partitions fits (~340 KB per machine
	// per wave), grouping into 4 partitions does not (~700 KB).
	cfg, rec := recoverConfig(512 << 10)
	s := mustSession(cfg)
	// 2000 single-element groups: splittable pressure, the opposite of the
	// giant-group case below.
	grouped, err := Collect(GroupByKey(Parallelize(s, makePairs(2000), 8)))
	if err != nil {
		t.Fatalf("Collect with recovery: %v", err)
	}
	if len(grouped) != 2000 {
		t.Fatalf("got %d groups, want 2000", len(grouped))
	}
	sort.Slice(grouped, func(i, j int) bool { return grouped[i].Key < grouped[j].Key })
	for i, g := range grouped {
		if g.Key != i || len(g.Val) != 1 || g.Val[0] != int64(i) {
			t.Fatalf("group[%d] = %+v", i, g)
		}
	}
	recs := recoveries(rec)
	if len(recs) == 0 {
		t.Fatal("no recovery recorded")
	}
	if !strings.Contains(recs[0].What, "task OOM") || !strings.Contains(recs[0].Action, "re-lowered(parts ") {
		t.Errorf("recovery = %+v", recs[0])
	}
	if s.Feedback().PartsBoost() <= 1 {
		t.Errorf("parts boost = %d, want > 1", s.Feedback().PartsBoost())
	}
}

// TestRecoverGiantGroupDemotesToShredded: a single unsplittable group
// defeats the partition raise (it always lands in one task), which used
// to abort with OOM exactly as the paper observes for the outer-parallel
// workaround. With the shredded lowering registered as the group build's
// fallback, recovery now demotes groupByKey to the spill variant after
// the raises are exhausted, denylists shred=materialized for the
// session, and the job completes — deterministically.
func TestRecoverGiantGroupDemotesToShredded(t *testing.T) {
	run := func() ([]Pair[int, []int64], float64, *Session, *obs.Recorder) {
		// 1 MB machines: ingest fits, but the single ~3.5 MB group cannot
		// be split by raising partitions; the spill build's bounded
		// working set (~220 KB) fits.
		cfg, rec := recoverConfig(1 << 20)
		s := mustSession(cfg)
		pairs := make([]Pair[int, int64], 5000)
		for i := range pairs {
			pairs[i] = KV(7, int64(i))
		}
		got, err := Collect(GroupByKey(Parallelize(s, pairs, 8)))
		if err != nil {
			t.Fatalf("Collect with recovery: %v", err)
		}
		return got, s.Clock(), s, rec
	}

	got, clock1, s, rec := run()
	if len(got) != 1 || got[0].Key != 7 || len(got[0].Val) != 5000 {
		t.Fatalf("got %d groups (first key %d, %d values), want the one 5000-value group",
			len(got), got[0].Key, len(got[0].Val))
	}
	if why, denied := s.Feedback().Denied("shred", "materialized"); !denied {
		t.Error("failed materialized group build not denylisted")
	} else if !strings.Contains(why, "OOMed") {
		t.Errorf("denylist reason = %q", why)
	}
	recs := recoveries(rec)
	var demoted bool
	for _, r := range recs {
		if r.Action == "re-lowered(shred=shredded)" {
			demoted = true
			if !strings.Contains(r.What, "task OOM") {
				t.Errorf("demotion What = %q", r.What)
			}
		}
	}
	if !demoted {
		t.Fatalf("no shred demotion among recoveries: %+v", recs)
	}
	if report := rec.Report(); !strings.Contains(report, "re-lowered(shred=shredded)") {
		t.Errorf("EXPLAIN ANALYZE does not render the demotion:\n%s", report)
	}

	_, clock2, _, _ := run()
	if clock1 != clock2 {
		t.Errorf("recovered clock not deterministic: %.6f vs %.6f", clock1, clock2)
	}
}

// TestRecoverHalfLiftedDemotesBroadcastSide: when the broadcast-scalar
// side of a half-lifted cross OOMs, recovery flips to the mirrored
// broadcast-primary lowering and denylists the failed side.
func TestRecoverHalfLiftedDemotesBroadcastSide(t *testing.T) {
	// 1 MB machines: ingesting the scalar side fits (~300 KB per task),
	// broadcasting it (~1.2 MB resident) does not; the mirrored lowering
	// broadcasts the one-element primary instead.
	cfg, rec := recoverConfig(1 << 20)
	s := mustSession(cfg)
	scalar := Parallelize(s, ints(2000), 4)
	primary := Parallelize(s, []int{1000}, 2)
	got, err := Collect(CrossWithBroadcast(scalar, primary, func(a, b int) int { return a + b }))
	if err != nil {
		t.Fatalf("Collect with recovery: %v", err)
	}
	if len(got) != 2000 {
		t.Fatalf("cross produced %d elements, want 2000", len(got))
	}
	sort.Ints(got)
	if got[0] != 1000 || got[len(got)-1] != 1000+1999 {
		t.Fatalf("cross range [%d, %d]", got[0], got[len(got)-1])
	}
	if _, denied := s.Feedback().Denied("half-lifted", "broadcast-scalar"); !denied {
		t.Error("failed half-lifted side not denylisted")
	}
	// The demote cascades: the mirrored lowering's repartition tail first
	// holds the whole output in one task, which a parts raise then splits.
	recs := recoveries(rec)
	if len(recs) == 0 || recs[0].Action != "re-lowered(half-lifted=broadcast-primary)" {
		t.Fatalf("recoveries = %+v", recs)
	}
}

// TestRecoverTransientExhaustionRerunsDeterministically: exhausted task
// retries rerun the stage (no plan change) and the virtual clock stays
// deterministic — and strictly above the failure-free clock.
func TestRecoverTransientExhaustionRerunsDeterministically(t *testing.T) {
	run := func(rate float64) (int, float64, *obs.Recorder) {
		cfg, rec := recoverConfig(1 << 30)
		cfg.Cluster.TaskFailureRate = rate
		s := mustSession(cfg)
		got, err := Collect(Map(Parallelize(s, ints(500), 16), func(x int) int { return x + 1 }))
		if err != nil {
			t.Fatalf("Collect at rate %.2f: %v", rate, err)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		return sum, s.Clock(), rec
	}
	want := 500 * 501 / 2
	sumClean, clean, _ := run(0)
	sumFlaky, flaky1, rec := run(0.3)
	_, flaky2, _ := run(0.3)
	if sumClean != want || sumFlaky != want {
		t.Fatalf("sums = %d, %d, want %d", sumClean, sumFlaky, want)
	}
	if flaky1 != flaky2 {
		t.Errorf("flaky clock not deterministic: %.6f vs %.6f", flaky1, flaky2)
	}
	if flaky1 <= clean {
		t.Errorf("failures should cost time: %.3f <= %.3f", flaky1, clean)
	}
	for _, r := range recoveries(rec) {
		if r.Action != "rerun" {
			t.Errorf("transient recovery action = %q, want rerun", r.Action)
		}
	}
}

// TestRecoveryOffStillAborts: the recovery loop is opt-in; without it the
// broadcast OOM aborts exactly as before.
func TestRecoveryOffStillAborts(t *testing.T) {
	cfg, _ := recoverConfig(4 << 10)
	cfg.Recover = false
	s := mustSession(cfg)
	small := Parallelize(s, makePairs(2000), 4)
	big := Parallelize(s, makePairs(10), 2)
	_, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
}

// TestRecoverDemotionUnfusesStaleChains: a fused map chain compiled over a
// broadcast-side lowering must stop fusing when recovery demotes that
// lowering — the constructor-built pipeline still heads at the abandoned
// node, which the replanned stage graph never routes or pins for, so
// running it would read a nil broadcast. The replan has to notice the
// chain no longer mirrors the rewired DAG and fall back to unfused
// evaluation of the replacement.
func TestRecoverDemotionUnfusesStaleChains(t *testing.T) {
	// 1 MB machines: broadcasting the 2000-element primary (~1.2 MB
	// resident) OOMs; the mirrored lowering broadcasts the one-element
	// scalar side instead.
	cfg, rec := recoverConfig(1 << 20)
	s := mustSession(cfg)
	scalar := Parallelize(s, []int{1000}, 2)
	primary := Parallelize(s, ints(2000), 4)
	crossed := CrossBroadcastBig(scalar, primary, func(a, b int) int { return a + b })
	// Two fusible links on top: enough for a compiled chain whose head is
	// the crossed node the demotion abandons.
	mapped := Map(Map(crossed, func(v int) int { return v * 2 }), func(v int) int { return v + 1 })
	got, err := Collect(mapped)
	if err != nil {
		t.Fatalf("Collect with recovery: %v", err)
	}
	if len(got) != 2000 {
		t.Fatalf("cross produced %d elements, want 2000", len(got))
	}
	sort.Ints(got)
	if want := (1000+0)*2 + 1; got[0] != want {
		t.Fatalf("got[0] = %d, want %d", got[0], want)
	}
	if want := (1000+1999)*2 + 1; got[len(got)-1] != want {
		t.Fatalf("got[last] = %d, want %d", got[len(got)-1], want)
	}
	if _, denied := s.Feedback().Denied("half-lifted", "broadcast-primary"); !denied {
		t.Error("failed half-lifted side not denylisted")
	}
	recs := recoveries(rec)
	if len(recs) == 0 || recs[0].Action != "re-lowered(half-lifted=broadcast-scalar)" {
		t.Fatalf("recoveries = %+v", recs)
	}
}
