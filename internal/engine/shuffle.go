package engine

import "matryoshka/internal/obs"

// keyPartitioner hashes Pair keys for shuffle routing. It is the boxed
// per-element form every shuffle dep carries; pairShuffleDep installs the
// batch-at-a-time spelling next to it for hashable key shapes.
func keyPartitioner[K comparable, V any](s *Session) func(any, int) int {
	return func(e any, n int) int {
		return int(hashOf(s, e.(Pair[K, V]).Key) % uint64(n))
	}
}

// pairShuffleDep builds a shuffle dep over Pair[K, V] partitions routed by
// key hash. When K has a construction-time stable hasher, the dep also
// gets batchTargets: the router's counting pass then dispatches once per
// batch and hashes the typed pairs directly, no boxing. Both spellings
// compute hashOf(s, key) bit-identically, so which one runs is invisible
// to routing results.
func pairShuffleDep[K comparable, V any](s *Session, parent *node) dep {
	d := dep{parent: parent, kind: depShuffle, partitioner: keyPartitioner[K, V](s)}
	if h, ok := stableBatchHasher[K](); ok {
		d.batchTargets = func(b Batch, nParts int, tg, ct []int32) bool {
			v, ok := b.(*Vec[Pair[K, V]])
			if !ok {
				return false
			}
			for i, kv := range v.xs {
				t := int32(h(kv.Key) % uint64(nParts))
				tg[i] = t
				ct[t]++
			}
			return true
		}
	}
	return d
}

// elemShuffleDep is pairShuffleDep for element-hashed shuffles (Distinct).
func elemShuffleDep[T comparable](s *Session, parent *node) dep {
	d := dep{parent: parent, kind: depShuffle, partitioner: func(e any, n int) int {
		return int(hashOf(s, e.(T)) % uint64(n))
	}}
	if h, ok := stableBatchHasher[T](); ok {
		d.batchTargets = func(b Batch, nParts int, tg, ct []int32) bool {
			v, ok := b.(*Vec[T])
			if !ok {
				return false
			}
			for i, e := range v.xs {
				t := int32(h(e) % uint64(nParts))
				tg[i] = t
				ct[t]++
			}
			return true
		}
	}
	return d
}

// ReduceByKey merges all values sharing a key with f, using the session's
// default parallelism for the result.
func ReduceByKey[K comparable, V any](d Dataset[Pair[K, V]], f func(V, V) V) Dataset[Pair[K, V]] {
	return ReduceByKeyN(d, f, 0)
}

// ReduceByKeyN is ReduceByKey with an explicit output partition count
// (<= 0 means the session default). The lowering phase's optimizer uses the
// explicit form to right-size small InnerScalar bags (Sec. 8.1).
//
// A map-side combine runs before the shuffle, as in Spark, so shuffle
// volume is proportional to distinct keys per partition, not input size.
func ReduceByKeyN[K comparable, V any](d Dataset[Pair[K, V]], f func(V, V) V, parts int) Dataset[Pair[K, V]] {
	return reduceByKey(d, f, parts, false)
}

// ReduceByKeyBound is ReduceByKeyN for key sets whose cardinality does not
// scale with the input (e.g. lifting tags): the combine and reduce outputs
// are marked unscaled so simulated costs reflect their true row counts.
func ReduceByKeyBound[K comparable, V any](d Dataset[Pair[K, V]], f func(V, V) V, parts int) Dataset[Pair[K, V]] {
	return reduceByKey(d, f, parts, true)
}

// combineHint caps the initial size of a combine's key map and key-order
// slice: growing a map a few times costs far less than holding a bucket
// per input row when the distinct-key count is small (the common case for
// a map-side combine).
func combineHint(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

func reduceByKey[K comparable, V any](d Dataset[Pair[K, V]], f func(V, V) V, parts int, bound bool) Dataset[Pair[K, V]] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	// Outputs are emitted in first-seen key order, not map iteration
	// order: partition contents must be deterministic because the size
	// estimator samples by position, and a per-process sample would leak
	// wall randomness into simulated durations. The merge loop itself
	// (mergePairs, portable.go) is shared with the process-pool kernels.
	combined := MapPartitions(d, func(in []Pair[K, V]) []Pair[K, V] {
		return mergePairs(f, in)
	})
	if bound {
		combined = combined.Unscaled()
	}
	outWeight := combined.n.weight
	sd := pairShuffleDep[K, V](d.s, combined.n)
	kernel := ReduceByKeyCompute[K](f)
	n := d.s.newNode("reduceByKey", parts, []dep{sd}, func(tc *Ctx, p int, in []Batch) Batch {
		b := kernel(tc, p, in)
		tc.UseMemory(d.s.estResidentBytes(b, outWeight)) // resident build map ~ distinct keys
		return b
	})
	return fromNode[Pair[K, V]](d.s, n)
}

// GroupByKey collects all values per key into a slice. Unlike ReduceByKey
// there is no map-side combine: the full group materializes in one task,
// which is exactly why the outer-parallel workaround OOMs on large or
// skewed groups (Sec. 9.4, 9.5).
func GroupByKey[K comparable, V any](d Dataset[Pair[K, V]]) Dataset[Pair[K, []V]] {
	return GroupByKeyN(d, 0)
}

// GroupByKeyN is GroupByKey with an explicit partition count.
//
// The group build is registered as a re-lowerable choice under the
// "shred" rule: if a task OOMs building its groups, the recovery loop
// can demote the node to the spill variant (GroupByKeySpillN) instead
// of only raising partition counts — raising partitions cannot split a
// single giant group, spilling can stream it. A session whose feedback
// already denies shred=materialized (a previous run OOMed here) gets
// the spill lowering up front.
func GroupByKeyN[K comparable, V any](d Dataset[Pair[K, V]], parts int) Dataset[Pair[K, []V]] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	if why, denied := d.s.feedback.Denied("shred", "materialized"); denied {
		d.s.obs.Decide(obs.Decision{Rule: "shred", Choice: "shredded", Forced: true,
			Why: "retried-after-OOM: " + why})
		return GroupByKeySpillN(d, parts)
	}
	inWeight := d.n.weight
	sd := pairShuffleDep[K, V](d.s, d.n)
	kernel := GroupByKeyCompute[K, V]()
	var n *node
	n = d.s.newNode("groupByKey", parts, []dep{sd}, func(tc *Ctx, p int, in []Batch) Batch {
		// Grouping buffers the whole input of the partition: that full
		// residency is exactly what OOMs the outer-parallel workaround
		// on large or skewed groups (Sec. 9.4, 9.5).
		tc.UseMemory(d.s.estResidentBytes(in[0], inWeight))
		return kernel(tc, p, in)
	})
	n.fallback = &refallback{
		rule: "shred", choice: "materialized", alt: "shredded",
		build: func() *node {
			return GroupByKeySpillN(d, n.parts).n
		},
	}
	return fromNode[Pair[K, []V]](d.s, n)
}

// Spill group-by cost model. A spilling build keeps only a bounded
// working set resident (run buffers plus a merge fan-in) instead of the
// whole partition: model it as 1/spillResidencyFraction of the full
// footprint. In exchange every row is written to and re-read from local
// disk across the run/merge passes, charged as spillIOFactor extra
// element-ops on top of the grouping work itself.
const (
	spillResidencyFraction = 16
	spillIOFactor          = 3
)

// GroupByKeySpill is the spill-friendly group build: identical output
// (same routing, same per-group element order — source-partition-major
// input order) to GroupByKey, but the task streams its partition
// through bounded run buffers instead of holding it resident, so a
// giant group costs I/O time rather than memory. This is the group
// build the shredded nested-bag lowering uses at un-shred boundaries.
func GroupByKeySpill[K comparable, V any](d Dataset[Pair[K, V]]) Dataset[Pair[K, []V]] {
	return GroupByKeySpillN(d, 0)
}

// GroupByKeySpillN is GroupByKeySpill with an explicit partition count.
func GroupByKeySpillN[K comparable, V any](d Dataset[Pair[K, V]], parts int) Dataset[Pair[K, []V]] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	inWeight := d.n.weight
	sd := pairShuffleDep[K, V](d.s, d.n)
	kernel := GroupByKeyCompute[K, V]()
	n := d.s.newNode("groupByKeySpill", parts, []dep{sd}, func(tc *Ctx, p int, in []Batch) Batch {
		tc.UseMemory(d.s.estResidentBytes(in[0], inWeight) / spillResidencyFraction)
		tc.Charge(int64(float64(in[0].Len()) * inWeight * spillIOFactor))
		return kernel(tc, p, in)
	})
	return fromNode[Pair[K, []V]](d.s, n)
}

// Distinct removes duplicates (requires comparable elements).
func Distinct[T comparable](d Dataset[T]) Dataset[T] {
	return DistinctN(d, 0)
}

// DistinctN is Distinct with an explicit partition count. Duplicates are
// dropped map-side first, then routed by element hash and dropped again.
func DistinctN[T comparable](d Dataset[T], parts int) Dataset[T] {
	return distinct(d, parts, false)
}

// DistinctBound is DistinctN for value sets whose cardinality does not
// scale with the input (e.g. grouping keys): the result is unscaled.
func DistinctBound[T comparable](d Dataset[T], parts int) Dataset[T] {
	return distinct(d, parts, true)
}

func distinct[T comparable](d Dataset[T], parts int, bound bool) Dataset[T] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	local := MapPartitions(d, func(in []T) []T {
		seen := make(map[T]struct{}, len(in))
		out := in[:0:0]
		for _, e := range in {
			if _, ok := seen[e]; !ok {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
		return out
	})
	if bound {
		local = local.Unscaled()
	}
	outWeight := local.n.weight
	s := d.s
	sd := elemShuffleDep[T](s, local.n)
	n := s.newNode("distinct", parts, []dep{sd}, func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[T](in[0])
		seen := make(map[T]struct{}, len(src))
		out := make([]T, 0, len(src))
		for _, e := range src {
			if _, ok := seen[e]; !ok {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
		// The boxed loop kept the input-length capacity it pre-sized.
		b := batchOf(out, len(src))
		tc.UseMemory(s.estResidentBytes(b, outWeight)) // resident dedup set
		return b
	})
	return fromNode[T](s, n)
}

// PartitionByKey hash-partitions a pair dataset by its key into parts
// partitions (<= 0: session default) and records the partitioning on the
// result. A subsequent JoinWith whose key type and partition count match
// reads this side narrowly, with no re-shuffle — cache the result and
// iterative programs (PageRank's static edges, BFS adjacency) pay the
// shuffle once instead of every superstep.
func PartitionByKey[K comparable, V any](d Dataset[Pair[K, V]], parts int) Dataset[Pair[K, V]] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	if d.n.pkey.matches(partInfoFor[K](parts)) {
		return d
	}
	sd := pairShuffleDep[K, V](d.s, d.n)
	n := d.s.newNode("partitionByKey", parts, []dep{sd}, identityCompute)
	// Pure routing (the shuffle blocks already are the output): portable.
	n.port = &portableMark{op: "identity"}
	n.pkey = partInfoFor[K](parts)
	return fromNode[Pair[K, V]](d.s, n)
}

// Repartition redistributes elements round-robin into parts partitions.
// The target is derived from (source partition, element index) — each
// source partition deals its elements out starting at its own offset — so
// routing is pure and deterministic regardless of element-visit order or
// host worker count, where a shared counter would not be.
func Repartition[T any](d Dataset[T], parts int) Dataset[T] {
	if parts <= 0 {
		parts = d.s.cfg.DefaultParallelism
	}
	sd := dep{parent: d.n, kind: depShuffle, posPartitioner: func(src, idx, n int) int {
		return (src + idx) % n
	}}
	n := d.s.newNode("repartition", parts, []dep{sd}, identityCompute)
	// Pure routing (the shuffle blocks already are the output): portable.
	n.port = &portableMark{op: "identity"}
	return fromNode[T](d.s, n)
}
