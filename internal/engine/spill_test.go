package engine

import (
	"reflect"
	"sort"
	"testing"
)

// TestGroupByKeySpillMatchesGroupByKey: the spill build is a pure
// re-lowering — identical groups, identical per-group element order
// (source-partition-major input order) — so recovery may swap one for
// the other without changing any result bit.
func TestGroupByKeySpillMatchesGroupByKey(t *testing.T) {
	build := func(spill bool) []Pair[int, []int64] {
		s := testSession()
		pairs := make([]Pair[int, int64], 3000)
		for i := range pairs {
			pairs[i] = KV(i%37, int64(i))
		}
		d := Parallelize(s, pairs, 8)
		var got []Pair[int, []int64]
		var err error
		if spill {
			got, err = Collect(GroupByKeySpill(d))
		} else {
			got, err = Collect(GroupByKey(d))
		}
		if err != nil {
			t.Fatalf("Collect(spill=%v): %v", spill, err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
		return got
	}
	mat, spl := build(false), build(true)
	if !reflect.DeepEqual(mat, spl) {
		t.Fatalf("spill group build diverged from materialized:\n%v\nvs\n%v", mat, spl)
	}
	if len(mat) != 37 {
		t.Fatalf("got %d groups, want 37", len(mat))
	}
}

// TestGroupByKeyHonorsShredDenylist: a session whose feedback already
// denies shred=materialized (a previous run OOMed the group build) gets
// the spill lowering up front — the giant group that would OOM the
// materialized build completes first-try, with recovery OFF, and the
// forced choice lands in the decision log.
func TestGroupByKeyHonorsShredDenylist(t *testing.T) {
	cfg, rec := recoverConfig(1 << 20)
	cfg.Recover = false
	s := mustSession(cfg)
	s.Feedback().Deny("shred", "materialized", "shred=materialized OOMed at run time (test seed)")
	pairs := make([]Pair[int, int64], 5000)
	for i := range pairs {
		pairs[i] = KV(7, int64(i))
	}
	got, err := Collect(GroupByKey(Parallelize(s, pairs, 8)))
	if err != nil {
		t.Fatalf("Collect with denylisted materialized build: %v", err)
	}
	if len(got) != 1 || len(got[0].Val) != 5000 {
		t.Fatalf("got %d groups (%d values), want 1 group of 5000", len(got), len(got[0].Val))
	}
	var forced bool
	for _, d := range rec.Decisions() {
		if d.Rule == "shred" && d.Choice == "shredded" && d.Forced {
			forced = true
		}
	}
	if !forced {
		t.Errorf("forced shredded decision missing from log: %+v", rec.Decisions())
	}
}
