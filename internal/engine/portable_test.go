package engine

import (
	"context"
	"reflect"
	"testing"

	"matryoshka/internal/cluster"
	"matryoshka/internal/obs"
)

// The test pipeline's operators, registered once for the whole process
// (the registry is global and rejects duplicates).
func ptestTag(x int) Pair[int, int] { return KV(x%7, x) }
func ptestSum(a, b int) int         { return a + b }

func init() {
	RegisterBatchShape[int]()
	RegisterBatchShape[Pair[int, int]]()
	RegisterPortableOp("ptest.tag", func([]byte) (PortableCompute, error) {
		return MapCompute(ptestTag), nil
	})
	RegisterPortableOp("ptest.sum", func([]byte) (PortableCompute, error) {
		return ReduceByKeyCompute[int](ptestSum), nil
	})
	RegisterPortableOp("ptest.sum.combine", func([]byte) (PortableCompute, error) {
		return CombineCompute[int](ptestSum), nil
	})
}

// fakeRemoteRunner is an in-process RemoteRunner: it stores blocks in a
// map and evaluates shipped tasks with RunRemoteTask right here — the
// whole portable spec/serialization path without process management, so
// failures point at the spec builder rather than the pool.
type fakeRemoteRunner struct {
	*cluster.Simulator // Backend + Residency facets
	blocks             map[uint64]Batch
	next               uint64
	stages             int
	tasks              int
}

func newFakeRemoteRunner(t *testing.T) *fakeRemoteRunner {
	t.Helper()
	sim, err := cluster.New(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &fakeRemoteRunner{Simulator: sim, blocks: map[uint64]Batch{}}
}

func (f *fakeRemoteRunner) PutBlock(b Batch) (uint64, error) {
	// Round-trip through the codec like the real pool, so shapes that
	// cannot cross a process boundary fail here too.
	enc, err := EncodeBatch(nil, b)
	if err != nil {
		return 0, err
	}
	dec, _, err := DecodeBatch(enc)
	if err != nil {
		return 0, err
	}
	f.next++
	f.blocks[f.next] = dec
	return f.next, nil
}

func (f *fakeRemoteRunner) RunRemoteStage(_ context.Context, spec *RemoteStageSpec) (*RemoteStageResult, error) {
	parts := make([]Batch, len(spec.Tasks))
	for i := range spec.Tasks {
		b, err := RunRemoteTask(&spec.Tasks[i], func(id uint64) (Batch, error) {
			blk, ok := f.blocks[id]
			if !ok {
				return nil, codecErr("fake runner: unknown block %d", id)
			}
			return blk, nil
		})
		if err != nil {
			return nil, err
		}
		parts[i] = b
		f.tasks++
	}
	f.stages++
	return &RemoteStageResult{Parts: parts, Workers: 1}, nil
}

func ptestPipeline(t *testing.T, cfg Config) map[int]int {
	t.Helper()
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int, 500)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(sess, data, 4)
	tagged := MarkPortable(Map(d, ptestTag), "ptest.tag", nil)
	summed := MarkCombinePortable(
		MarkPortable(ReduceByKeyN(tagged, ptestSum, 3), "ptest.sum", nil),
		"ptest.sum.combine", nil)
	out, err := CollectMap(summed)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRemoteRunnerBitIdentical: the same marked pipeline on a plain
// simulator and on a RemoteRunner backend must produce identical values,
// and the remote path must actually have run the shippable stages.
func TestRemoteRunnerBitIdentical(t *testing.T) {
	simOut := ptestPipeline(t, Config{})
	fr := newFakeRemoteRunner(t)
	remoteOut := ptestPipeline(t, Config{Backend: fr})
	if !reflect.DeepEqual(simOut, remoteOut) {
		t.Fatalf("values differ:\n sim:    %v\n remote: %v", simOut, remoteOut)
	}
	if fr.stages == 0 || fr.tasks == 0 {
		t.Fatalf("nothing ran remotely (stages=%d tasks=%d)", fr.stages, fr.tasks)
	}
}

// TestUnportableStageFallsBackDriverLocal: a pipeline with an unmarked
// closure must still produce correct results on a RemoteRunner backend —
// its stages run driver-local — and the decision log must say why.
func TestUnportableStageFallsBackDriverLocal(t *testing.T) {
	fr := newFakeRemoteRunner(t)
	rec := obs.NewRecorder()
	sess, err := NewSession(Config{Backend: fr, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	data := []int{5, 6, 7, 8}
	doubled, err := Collect(Map(Parallelize(sess, data, 2), func(x int) int { return 2 * x }))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{10, 12, 14, 16}; !reflect.DeepEqual(doubled, want) {
		t.Fatalf("got %v, want %v", doubled, want)
	}
	if fr.stages != 0 {
		t.Fatalf("unmarked stage ran remotely (%d stages)", fr.stages)
	}
	found := false
	for _, d := range rec.Decisions() {
		if d.Rule == "proc-backend" && d.Choice == "driver-local" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no driver-local fallback decision logged; decisions: %+v", rec.Decisions())
	}
}
