package engine

import (
	"matryoshka/internal/engine/plan"
)

// execPlan binds a physical plan to the engine's internal node graph: the
// planner works on its own Node/Dep representation, and the executor maps
// planned stages and memo sites back to *node/*dep via these tables.
type execPlan struct {
	plan   *plan.Plan
	pnodes map[*node]*plan.Node
	enodes map[*plan.Node]*node
	// memo is plan.Memo translated to engine nodes for the evaluator's
	// hot path.
	memo map[*node]bool
	// fused maps each node whose constructor-built chain (node.fuse) is
	// legal under this plan to that chain: every intermediate op is
	// invisible to the plan, so the evaluator may collapse the chain into
	// one typed loop (fuse.go). Nil when fusion is off (legacy executor,
	// Config.NoFuse).
	fused map[*node]*fuseInfo
}

func kindOf(k depKind) plan.DepKind {
	switch k {
	case depShuffle:
		return plan.Shuffle
	case depBroadcast:
		return plan.Broadcast
	}
	return plan.Narrow
}

// buildExecPlan converts the DAG reachable from target into the planner's
// representation, runs the planner, and returns the bound plan. It is the
// distinct planning step of every job: the executor below only consumes
// its output.
func (s *Session) buildExecPlan(target *node) *execPlan {
	return s.buildExecPlanFrom(target, nil, 0)
}

// buildExecPlanFrom is buildExecPlan for a recovery replan: nodes for
// which done reports true are already materialized on the job's stage
// frontier, so the planner treats them as leaves and plans only the
// unfinished suffix of the DAG. replan is the job's recovery generation
// (0 for the first plan).
func (s *Session) buildExecPlanFrom(target *node, done func(*node) bool, replan int) *execPlan {
	ep := &execPlan{
		pnodes: map[*node]*plan.Node{},
		enodes: map[*plan.Node]*node{},
	}
	var conv func(n *node) *plan.Node
	conv = func(n *node) *plan.Node {
		if pn, ok := ep.pnodes[n]; ok {
			return pn
		}
		pn := &plan.Node{ID: n.id, Label: n.label, Parts: n.parts, Weight: n.weight, Cached: n.cached}
		ep.pnodes[n] = pn
		ep.enodes[pn] = n
		if done != nil && done(n) {
			pn.Done = true
			return pn // frontier leaf: the planner never looks below it
		}
		for i := range n.deps {
			d := &n.deps[i]
			pn.Deps = append(pn.Deps, &plan.Dep{
				Owner:     pn,
				Index:     i,
				Parent:    conv(d.parent),
				Kind:      kindOf(d.kind),
				NarrowMap: d.narrowMap,
			})
		}
		return pn
	}
	root := conv(target)
	ep.plan = plan.Build(root, plan.Options{Memo: !s.legacyExec, Replan: replan})
	ep.memo = make(map[*node]bool, len(ep.plan.Memo))
	for pn := range ep.plan.Memo {
		ep.memo[ep.enodes[pn]] = true
	}
	if !s.legacyExec && !s.noFuse {
		ep.compileFusion()
	}
	return ep
}

// compileFusion decides, per planned node, whether its constructor-built
// fused chain may run under this plan. The chain collapses its
// intermediate ops into one loop, so each of them must be invisible to
// the plan: not a stage root (its partitions would never materialize),
// not a fan-in memo site (multi-consumer intermediates must still be
// computed exactly once), and not on the recovery frontier (its
// checkpointed data would be ignored). Recovery replans rebuild the
// execPlan, so fusion decisions always reflect the current plan — a node
// that becomes a memo site or frontier leaf after re-lowering simply
// stops fusing.
func (ep *execPlan) compileFusion() {
	ep.fused = make(map[*node]*fuseInfo)
	for n, pn := range ep.pnodes {
		fi := n.fuse
		if fi == nil || len(fi.via) < 2 || pn.Done {
			continue
		}
		// The chain must still mirror the live DAG: recovery's rewire
		// splices a replacement parent into consumer deps, and a
		// construction-time pipeline built over the abandoned lowering
		// would silently evaluate it — a node the current plan never
		// routes shuffle blocks or pins broadcasts for. Every fusible
		// operator chains through its first dep, so the links and head
		// must agree with deps[0] edges end to end.
		legal := true
		prev := fi.head
		for _, m := range fi.via {
			if len(m.deps) == 0 || m.deps[0].parent != prev {
				legal = false
				break
			}
			prev = m
		}
		if legal {
			for _, m := range fi.via[:len(fi.via)-1] {
				pm := ep.pnodes[m]
				if pm == nil || pm.Done || ep.plan.IsRoot(pm) || ep.plan.Memo[pm] {
					legal = false
					break
				}
			}
		}
		if legal {
			ep.fused[n] = fi
		}
	}
}

// stageOf returns the planned stage rooted at n.
func (ep *execPlan) stageOf(n *node) *plan.Stage { return ep.plan.StageOf(ep.pnodes[n]) }

// edep resolves a planned boundary edge back to the engine's dependency
// record.
func (ep *execPlan) edep(d *plan.Dep) *dep {
	owner := ep.enodes[d.Owner]
	return &owner.deps[d.Index]
}

// enode resolves a planned node back to the engine node.
func (ep *execPlan) enode(n *plan.Node) *node { return ep.enodes[n] }
