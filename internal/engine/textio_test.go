package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
)

func TestSaveAndReadTextRoundTrip(t *testing.T) {
	s := testSession()
	dir := t.TempDir()
	d := Parallelize(s, ints(57), 4)
	if err := SaveText(d, dir, strconv.Itoa); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("part files = %d, want 4", len(entries))
	}
	back, err := ReadText(s, dir, strconv.Atoi)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedCollect(t, back, func(a, b int) bool { return a < b })
	if len(got) != 57 || got[0] != 0 || got[56] != 56 {
		t.Fatalf("round trip lost data: len=%d", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestSaveTextIsAJob(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(10), 2)
	before := s.Stats().Jobs
	if err := SaveText(d, t.TempDir(), strconv.Itoa); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Jobs != before+1 {
		t.Errorf("SaveText should launch exactly one job")
	}
}

func TestReadTextParseError(t *testing.T) {
	s := testSession()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "part-00000"), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadText(s, dir, strconv.Atoi); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadTextMissingDir(t *testing.T) {
	s := testSession()
	if _, err := ReadText(s, filepath.Join(t.TempDir(), "nope"), strconv.Atoi); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestSaveTextFormats(t *testing.T) {
	s := testSession()
	dir := t.TempDir()
	d := Parallelize(s, []Pair[string, int]{{"a", 1}, {"b", 2}}, 1)
	err := SaveText(d, dir, func(p Pair[string, int]) string {
		return fmt.Sprintf("%s,%d", p.Key, p.Val)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "part-00000"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,1\nb,2\n" && string(data) != "b,2\na,1\n" {
		t.Fatalf("content = %q", data)
	}
}
