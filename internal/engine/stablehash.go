package engine

// Deterministic key hashing for shuffle partitioning. Go's runtime hash
// (hash/maphash, map internals) is randomized per process on purpose; if
// partitioners used it, the records each partition receives — and with
// them task durations, shuffle volumes, and OOM boundaries — would
// change from one invocation of the same program to the next. The
// simulation's contract is stronger: identical inputs produce
// bit-identical virtual results across processes, so experiment tables
// are exactly regenerable and a fixed-seed chaos run fails in exactly
// the same place every time.
//
// stableHasher compiles, once per key type, a hash function that walks
// the value's concrete representation (integers, floats, strings,
// arrays, struct fields at their offsets — skipping padding) and mixes
// it with splitmix64. Types it cannot walk deterministically (pointers,
// interfaces) fall back to the process-seeded maphash; such keys are
// not used by anything in this repository.

import (
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// hashFn folds the value at p into h.
type hashFn func(p unsafe.Pointer, h uint64) uint64

// stableSeed is the fixed initial state. One constant for every session
// keeps the A/B property of the old process-wide seed (two sessions in
// one process — or now in any process — place elements identically).
const stableSeed uint64 = 0x9e3779b97f4a7c15

var stableHashers sync.Map // reflect.Type -> hashFn (nil when unsupported)

// stableHasherFor returns the compiled hasher for t, or nil if t (or a
// nested field) cannot be hashed deterministically.
func stableHasherFor(t reflect.Type) hashFn {
	if fn, ok := stableHashers.Load(t); ok {
		if fn == nil {
			return nil
		}
		return fn.(hashFn)
	}
	fn := compileStableHasher(t)
	if fn == nil {
		stableHashers.Store(t, nil)
		return nil
	}
	stableHashers.Store(t, fn)
	return fn
}

// Monomorphic fast-path hashing: hashOf dispatches on the key type once
// (a dictionary-resolved reflect.TypeFor compare, no interface boxing —
// converting the key to any would allocate) and folds the value inline.
// Each case replays exactly the fold the compiled reflection hasher
// performs for that type — a struct hasher visits fields in order, so
// Pair[K, V] hashes as key then value — and a test asserts bit-equality
// against the compiled hashers. Keys outside the set report !ok and take
// the compiled path.
var (
	typInt            = reflect.TypeFor[int]()
	typInt64          = reflect.TypeFor[int64]()
	typInt32          = reflect.TypeFor[int32]()
	typUint64         = reflect.TypeFor[uint64]()
	typUint32         = reflect.TypeFor[uint32]()
	typUint           = reflect.TypeFor[uint]()
	typString         = reflect.TypeFor[string]()
	typPairIntInt     = reflect.TypeFor[Pair[int, int]]()
	typPairIntInt64   = reflect.TypeFor[Pair[int, int64]]()
	typPairInt64Int   = reflect.TypeFor[Pair[int64, int]]()
	typPairInt64Int64 = reflect.TypeFor[Pair[int64, int64]]()
	typPairU64U64     = reflect.TypeFor[Pair[uint64, uint64]]()
	typPairStrStr     = reflect.TypeFor[Pair[string, string]]()
	typPairStrInt     = reflect.TypeFor[Pair[string, int]]()
	typPairIntStr     = reflect.TypeFor[Pair[int, string]]()
)

func stableHashFast[K comparable](k K) (uint64, bool) {
	switch reflect.TypeFor[K]() {
	case typInt:
		return mix64(stableSeed, uint64(*(*int)(unsafe.Pointer(&k)))), true
	case typInt64:
		return mix64(stableSeed, uint64(*(*int64)(unsafe.Pointer(&k)))), true
	case typInt32:
		return mix64(stableSeed, uint64(*(*int32)(unsafe.Pointer(&k)))), true
	case typUint64:
		return mix64(stableSeed, *(*uint64)(unsafe.Pointer(&k))), true
	case typUint32:
		return mix64(stableSeed, uint64(*(*uint32)(unsafe.Pointer(&k)))), true
	case typUint:
		return mix64(stableSeed, uint64(*(*uint)(unsafe.Pointer(&k)))), true
	case typString:
		return hashString(*(*string)(unsafe.Pointer(&k)), stableSeed), true
	case typPairIntInt:
		v := *(*Pair[int, int])(unsafe.Pointer(&k))
		return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val)), true
	case typPairIntInt64:
		v := *(*Pair[int, int64])(unsafe.Pointer(&k))
		return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val)), true
	case typPairInt64Int:
		v := *(*Pair[int64, int])(unsafe.Pointer(&k))
		return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val)), true
	case typPairInt64Int64:
		v := *(*Pair[int64, int64])(unsafe.Pointer(&k))
		return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val)), true
	case typPairU64U64:
		v := *(*Pair[uint64, uint64])(unsafe.Pointer(&k))
		return mix64(mix64(stableSeed, v.Key), v.Val), true
	case typPairStrStr:
		v := *(*Pair[string, string])(unsafe.Pointer(&k))
		return hashString(v.Val, hashString(v.Key, stableSeed)), true
	case typPairStrInt:
		v := *(*Pair[string, int])(unsafe.Pointer(&k))
		return mix64(hashString(v.Key, stableSeed), uint64(v.Val)), true
	case typPairIntStr:
		v := *(*Pair[int, string])(unsafe.Pointer(&k))
		return hashString(v.Val, mix64(stableSeed, uint64(v.Key))), true
	}
	return 0, false
}

func mix64(h, v uint64) uint64 {
	h ^= v
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func compileStableHasher(t reflect.Type) hashFn {
	switch t.Kind() {
	case reflect.Bool:
		return func(p unsafe.Pointer, h uint64) uint64 {
			var v uint64
			if *(*bool)(p) {
				v = 1
			}
			return mix64(h, v)
		}
	case reflect.Int8:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*int8)(p))) }
	case reflect.Int16:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*int16)(p))) }
	case reflect.Int32:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*int32)(p))) }
	case reflect.Int64:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*int64)(p))) }
	case reflect.Int:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*int)(p))) }
	case reflect.Uint8:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*uint8)(p))) }
	case reflect.Uint16:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*uint16)(p))) }
	case reflect.Uint32:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*uint32)(p))) }
	case reflect.Uint64:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, *(*uint64)(p)) }
	case reflect.Uint:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*uint)(p))) }
	case reflect.Uintptr:
		return func(p unsafe.Pointer, h uint64) uint64 { return mix64(h, uint64(*(*uintptr)(p))) }
	case reflect.Float32:
		return func(p unsafe.Pointer, h uint64) uint64 {
			return mix64(h, uint64(math.Float32bits(*(*float32)(p))))
		}
	case reflect.Float64:
		return func(p unsafe.Pointer, h uint64) uint64 {
			return mix64(h, math.Float64bits(*(*float64)(p)))
		}
	case reflect.Complex64:
		return func(p unsafe.Pointer, h uint64) uint64 {
			c := *(*complex64)(p)
			return mix64(mix64(h, uint64(math.Float32bits(real(c)))), uint64(math.Float32bits(imag(c))))
		}
	case reflect.Complex128:
		return func(p unsafe.Pointer, h uint64) uint64 {
			c := *(*complex128)(p)
			return mix64(mix64(h, math.Float64bits(real(c))), math.Float64bits(imag(c)))
		}
	case reflect.String:
		return func(p unsafe.Pointer, h uint64) uint64 { return hashString(*(*string)(p), h) }
	case reflect.Array:
		elem := compileStableHasher(t.Elem())
		if elem == nil {
			return nil
		}
		n, sz := t.Len(), t.Elem().Size()
		return func(p unsafe.Pointer, h uint64) uint64 {
			for i := 0; i < n; i++ {
				h = elem(unsafe.Add(p, uintptr(i)*sz), h)
			}
			return h
		}
	case reflect.Struct:
		type field struct {
			off uintptr
			fn  hashFn
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn := compileStableHasher(f.Type)
			if fn == nil {
				return nil
			}
			fields = append(fields, field{off: f.Offset, fn: fn})
		}
		return func(p unsafe.Pointer, h uint64) uint64 {
			for _, f := range fields {
				h = f.fn(unsafe.Add(p, f.off), h)
			}
			return h
		}
	default:
		// Pointers, interfaces, channels: identity-based, cannot be
		// walked deterministically.
		return nil
	}
}

// hashString folds a string 8 bytes at a time (length first, so "a"+"b"
// and "ab"+"" in adjacent struct fields do not collide trivially).
func hashString(s string, h uint64) uint64 {
	h = mix64(h, uint64(len(s)))
	for len(s) >= 8 {
		h = mix64(h, uint64(s[0])|uint64(s[1])<<8|uint64(s[2])<<16|uint64(s[3])<<24|
			uint64(s[4])<<32|uint64(s[5])<<40|uint64(s[6])<<48|uint64(s[7])<<56)
		s = s[8:]
	}
	if len(s) > 0 {
		var v uint64
		for i := 0; i < len(s); i++ {
			v |= uint64(s[i]) << (8 * i)
		}
		h = mix64(h, v)
	}
	return h
}

// stableBatchHasher returns a monomorphic closure producing the same bits
// as hashOf(s, k) for every value of K, resolved once at dep-construction
// time so the shuffle router's counting pass hashes whole batches without
// boxing or per-element type dispatch. Keys whose hash is process-seeded
// (pointers, interfaces — the maphash fallback) report ok=false; their
// deps route through the boxed per-element partitioner as before.
func stableBatchHasher[K comparable]() (func(K) uint64, bool) {
	switch reflect.TypeFor[K]() {
	case typInt:
		return func(k K) uint64 { return mix64(stableSeed, uint64(*(*int)(unsafe.Pointer(&k)))) }, true
	case typInt64:
		return func(k K) uint64 { return mix64(stableSeed, uint64(*(*int64)(unsafe.Pointer(&k)))) }, true
	case typInt32:
		return func(k K) uint64 { return mix64(stableSeed, uint64(*(*int32)(unsafe.Pointer(&k)))) }, true
	case typUint64:
		return func(k K) uint64 { return mix64(stableSeed, *(*uint64)(unsafe.Pointer(&k))) }, true
	case typUint32:
		return func(k K) uint64 { return mix64(stableSeed, uint64(*(*uint32)(unsafe.Pointer(&k)))) }, true
	case typUint:
		return func(k K) uint64 { return mix64(stableSeed, uint64(*(*uint)(unsafe.Pointer(&k)))) }, true
	case typString:
		return func(k K) uint64 { return hashString(*(*string)(unsafe.Pointer(&k)), stableSeed) }, true
	case typPairIntInt:
		return func(k K) uint64 {
			v := *(*Pair[int, int])(unsafe.Pointer(&k))
			return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val))
		}, true
	case typPairIntInt64:
		return func(k K) uint64 {
			v := *(*Pair[int, int64])(unsafe.Pointer(&k))
			return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val))
		}, true
	case typPairInt64Int:
		return func(k K) uint64 {
			v := *(*Pair[int64, int])(unsafe.Pointer(&k))
			return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val))
		}, true
	case typPairInt64Int64:
		return func(k K) uint64 {
			v := *(*Pair[int64, int64])(unsafe.Pointer(&k))
			return mix64(mix64(stableSeed, uint64(v.Key)), uint64(v.Val))
		}, true
	case typPairU64U64:
		return func(k K) uint64 {
			v := *(*Pair[uint64, uint64])(unsafe.Pointer(&k))
			return mix64(mix64(stableSeed, v.Key), v.Val)
		}, true
	case typPairStrStr:
		return func(k K) uint64 {
			v := *(*Pair[string, string])(unsafe.Pointer(&k))
			return hashString(v.Val, hashString(v.Key, stableSeed))
		}, true
	case typPairStrInt:
		return func(k K) uint64 {
			v := *(*Pair[string, int])(unsafe.Pointer(&k))
			return mix64(hashString(v.Key, stableSeed), uint64(v.Val))
		}, true
	case typPairIntStr:
		return func(k K) uint64 {
			v := *(*Pair[int, string])(unsafe.Pointer(&k))
			return hashString(v.Val, mix64(stableSeed, uint64(v.Key)))
		}, true
	}
	if fn := stableHasherFor(reflect.TypeFor[K]()); fn != nil {
		return func(k K) uint64 {
			kk := k
			return fn(unsafe.Pointer(&kk), stableSeed)
		}, true
	}
	return nil, false
}
