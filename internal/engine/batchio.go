package engine

// batchio is the length-prefixed binary codec for Batch values — the wire
// format stage boundaries will use when a real distributed Backend ships
// partitions between worker processes, and the byte counter behind the
// EXPLAIN ANALYZE boundary-bytes column today.
//
// Frame layout (all integers little-endian):
//
//	magic   "MBA1" (4 bytes)
//	length  u32 — byte length of the rest of the frame
//	kind    u8  — 0 boxed (*Vec[any]), 1 typed (*Vec[T])
//	shape   u32-length-prefixed element type name ("" for boxed)
//	n       u32 — element count
//	bcap    u32 — boxed-equivalent capacity (BoxedCap)
//	payload n encoded elements
//
// Elements encode deterministically by structure: fixed-width scalars by
// kind, strings and slices u32-length-prefixed, arrays and structs in
// declaration order. Boxed payloads carry a type name per element ("" for
// nil). Maps, channels, funcs, pointers and non-empty interfaces are
// rejected — the wire format is for value data, not object graphs.
//
// Decoding is registry-driven: a type name resolves to a prototype batch
// registered by batchOf (every element shape that ever formed a batch in
// this process) or by an element type seen while encoding a boxed batch.
// Every read is bounds-checked and implausible counts are rejected, so the
// decoder is safe on adversarial input (FuzzBatchCodec).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
)

var batchMagic = [4]byte{'M', 'B', 'A', '1'}

const (
	batchKindBoxed = 0
	batchKindTyped = 1
)

// errBatchCodec wraps every decode failure so callers can errors.Is it.
var errBatchCodec = errors.New("engine: batch codec")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBatchCodec, fmt.Sprintf(format, args...))
}

// batchProtos maps element reflect.Type -> prototype Batch (a *Vec[T] to
// newLike from) and batchProtoNames maps wire type name -> same prototype.
var (
	batchProtos     sync.Map // reflect.Type -> Batch
	batchProtoNames sync.Map // string -> Batch
	batchElemTypes  sync.Map // string -> reflect.Type (boxed element decode)
)

// registerBatchCodec makes element type T decodable by name. batchOf calls
// it on every batch construction; hot shapes are pre-registered in init so
// a decoding process that never built such a batch still resolves them.
func registerBatchCodec[T any]() {
	t := reflect.TypeFor[T]()
	if _, ok := batchProtos.Load(t); ok {
		return
	}
	proto := Batch(&Vec[T]{})
	batchProtos.Store(t, proto)
	batchProtoNames.Store(batchTypeName(t), proto)
	batchElemTypes.Store(batchTypeName(t), t)
}

func init() {
	registerBatchCodec[int]()
	registerBatchCodec[int64]()
	registerBatchCodec[uint64]()
	registerBatchCodec[float64]()
	registerBatchCodec[string]()
	registerBatchCodec[Pair[int, int]]()
	registerBatchCodec[Pair[int, int64]]()
	registerBatchCodec[Pair[int64, int64]]()
	registerBatchCodec[Pair[string, int]]()
	registerBatchCodec[Pair[string, string]]()
	// Shredded nested-bag dictionary shapes (internal/shred): inner-bag
	// contents keyed by the 64-bit group id, and the gid-keyed group
	// build those dictionaries shuffle through.
	registerBatchCodec[Pair[uint64, int64]]()
	registerBatchCodec[Pair[uint64, uint64]]()
	registerBatchCodec[Pair[uint64, []int64]]()
}

// registerElemType records a boxed element's concrete type so the same
// process (or one that made the same registrations) can decode it.
func registerElemType(t reflect.Type) {
	batchElemTypes.LoadOrStore(batchTypeName(t), t)
}

// batchTypeName is the wire name of an element type. reflect's rendering
// is deterministic and unique enough within one module.
func batchTypeName(t reflect.Type) string { return t.String() }

// EncodeBatch appends b's frame to dst and returns the extended slice.
// Element types whose values contain maps, channels, funcs, pointers or
// non-empty interfaces are rejected with an error.
func EncodeBatch(dst []byte, b Batch) ([]byte, error) {
	if b == nil {
		b = zeroBatch
	}
	dst = append(dst, batchMagic[:]...)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // frame length backpatched below

	data := reflect.ValueOf(b.Data())
	elem := data.Type().Elem()
	boxed := elem.Kind() == reflect.Interface
	if boxed {
		dst = append(dst, batchKindBoxed)
		dst = appendU32String(dst, "")
	} else {
		if err := checkEncodable(elem); err != nil {
			return nil, err
		}
		dst = append(dst, batchKindTyped)
		dst = appendU32String(dst, batchTypeName(elem))
	}
	n := b.Len()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.BoxedCap()))

	var err error
	for i := 0; i < n; i++ {
		if boxed {
			dst, err = appendBoxedElem(dst, b.At(i))
		} else {
			dst, err = appendValue(dst, data.Index(i))
		}
		if err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, nil
}

func appendBoxedElem(dst []byte, e any) ([]byte, error) {
	if e == nil {
		return appendU32String(dst, ""), nil
	}
	rv := reflect.ValueOf(e)
	if err := checkEncodable(rv.Type()); err != nil {
		return nil, err
	}
	registerElemType(rv.Type())
	dst = appendU32String(dst, batchTypeName(rv.Type()))
	return appendValue(dst, rv)
}

// DecodeBatch decodes one frame from data, returning the batch and the
// total frame size consumed.
func DecodeBatch(data []byte) (Batch, int, error) {
	if len(data) < 8 {
		return nil, 0, codecErr("short frame: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != batchMagic {
		return nil, 0, codecErr("bad magic %q", data[:4])
	}
	frameLen := int(binary.LittleEndian.Uint32(data[4:8]))
	if frameLen < 0 || frameLen > len(data)-8 {
		return nil, 0, codecErr("frame length %d exceeds input %d", frameLen, len(data)-8)
	}
	r := &batchReader{data: data[8 : 8+frameLen]}
	kind, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	shape, err := r.str()
	if err != nil {
		return nil, 0, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	bcap, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if n > uint32(len(r.data)) && n > 1<<16 {
		// More elements than payload bytes: only possible for zero-size
		// element types, and no real workload ships 64k of those.
		return nil, 0, codecErr("implausible element count %d for %d payload bytes", n, len(r.data))
	}

	var out Batch
	switch kind {
	case batchKindBoxed:
		if shape != "" {
			return nil, 0, codecErr("boxed frame with element shape %q", shape)
		}
		xs := make([]any, 0, min(int(n), 1<<12))
		for i := 0; i < int(n); i++ {
			e, err := r.boxedElem()
			if err != nil {
				return nil, 0, err
			}
			xs = append(xs, e)
		}
		out = &Vec[any]{xs: xs, bcap: int(bcap)}
	case batchKindTyped:
		protoAny, ok := batchProtoNames.Load(shape)
		if !ok {
			return nil, 0, codecErr("unknown batch shape %q", shape)
		}
		b := protoAny.(Batch).newLike(int(n), int(bcap))
		data := reflect.ValueOf(b.Data())
		for i := 0; i < int(n); i++ {
			if err := r.value(data.Index(i)); err != nil {
				return nil, 0, err
			}
		}
		out = b
	default:
		return nil, 0, codecErr("unknown frame kind %d", kind)
	}
	if r.pos != len(r.data) {
		return nil, 0, codecErr("%d trailing bytes in frame", len(r.data)-r.pos)
	}
	return out, 8 + frameLen, nil
}

// maxFrameBytes caps the declared length of a streamed frame: a corrupt or
// adversarial header must not make ReadBatch allocate unbounded memory
// before the bounds-checked decoder ever sees the payload.
const maxFrameBytes = 1 << 30

// WriteBatch encodes b and writes its complete frame to w. It returns the
// frame's byte size. Torn writes are w's concern — the frame is handed to
// a single Write call, and net-style writers either deliver it all or
// return an error.
func WriteBatch(w io.Writer, b Batch) (int, error) {
	frame, err := EncodeBatch(nil, b)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// ReadBatch reads exactly one frame from r and decodes it. A clean end of
// stream — zero bytes before the next frame — returns io.EOF untouched so
// callers can range over a stream; a stream that dies mid-frame (torn
// write, truncated file, dead peer) is a codec error wrapping the
// position, matching the rest of the decoder's error discipline.
func ReadBatch(r io.Reader) (Batch, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, codecErr("truncated frame header: %v", err)
	}
	if [4]byte(head[:4]) != batchMagic {
		return nil, codecErr("bad magic %q", head[:4])
	}
	frameLen := binary.LittleEndian.Uint32(head[4:8])
	if frameLen > maxFrameBytes {
		return nil, codecErr("frame length %d exceeds cap %d", frameLen, maxFrameBytes)
	}
	buf := make([]byte, 8+int(frameLen))
	copy(buf, head[:])
	if n, err := io.ReadFull(r, buf[8:]); err != nil {
		return nil, codecErr("truncated frame body after %d of %d bytes: %v", n, frameLen, err)
	}
	b, _, err := DecodeBatch(buf)
	return b, err
}

// encodedBatchBytes returns the frame size EncodeBatch would produce for
// b, reusing a scratch buffer; 0 when b's element type is not encodable
// (boundary-bytes observability must not fail a job).
func encodedBatchBytes(scratch *[]byte, b Batch) int64 {
	if batchLen(b) == 0 && (b == nil || b.BoxedCap() == 0) {
		// Fast path: the empty frame is header-only and shape-independent.
		return emptyBatchFrameBytes(b)
	}
	out, err := EncodeBatch((*scratch)[:0], b)
	if err != nil {
		return 0
	}
	*scratch = out
	return int64(len(out))
}

func emptyBatchFrameBytes(b Batch) int64 {
	name := ""
	if b != nil {
		if elem := reflect.TypeOf(b.Data()).Elem(); elem.Kind() != reflect.Interface {
			name = batchTypeName(elem)
		}
	}
	return int64(4 + 4 + 1 + 4 + len(name) + 4 + 4)
}

// checkEncodable walks an element type once per batch and rejects the
// kinds the wire format cannot carry.
func checkEncodable(t reflect.Type) error {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return nil
	case reflect.Slice, reflect.Array:
		return checkEncodable(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return codecErr("unexported field %s.%s", t, f.Name)
			}
			if err := checkEncodable(f.Type); err != nil {
				return err
			}
		}
		return nil
	default:
		return codecErr("unsupported element kind %s (%s)", t.Kind(), t)
	}
}

func appendU32String(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendValue encodes one value by structure. rv's type has passed
// checkEncodable.
func appendValue(dst []byte, rv reflect.Value) ([]byte, error) {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case reflect.Int8:
		return append(dst, byte(rv.Int())), nil
	case reflect.Int16:
		return binary.LittleEndian.AppendUint16(dst, uint16(rv.Int())), nil
	case reflect.Int32:
		return binary.LittleEndian.AppendUint32(dst, uint32(rv.Int())), nil
	case reflect.Int, reflect.Int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(rv.Int())), nil
	case reflect.Uint8:
		return append(dst, byte(rv.Uint())), nil
	case reflect.Uint16:
		return binary.LittleEndian.AppendUint16(dst, uint16(rv.Uint())), nil
	case reflect.Uint32:
		return binary.LittleEndian.AppendUint32(dst, uint32(rv.Uint())), nil
	case reflect.Uint, reflect.Uint64:
		return binary.LittleEndian.AppendUint64(dst, rv.Uint()), nil
	case reflect.Float32:
		return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(rv.Float()))), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(rv.Float())), nil
	case reflect.Complex64:
		c := rv.Complex()
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(real(c))))
		return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(imag(c)))), nil
	case reflect.Complex128:
		c := rv.Complex()
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(c)))
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(c))), nil
	case reflect.String:
		return appendU32String(dst, rv.String()), nil
	case reflect.Slice:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(rv.Len()))
		var err error
		for i := 0; i < rv.Len(); i++ {
			if dst, err = appendValue(dst, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case reflect.Array:
		var err error
		for i := 0; i < rv.Len(); i++ {
			if dst, err = appendValue(dst, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case reflect.Struct:
		var err error
		for i := 0; i < rv.NumField(); i++ {
			if dst, err = appendValue(dst, rv.Field(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, codecErr("unsupported value kind %s", rv.Kind())
	}
}

// batchReader is the bounds-checked frame reader.
type batchReader struct {
	data []byte
	pos  int
}

func (r *batchReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, codecErr("truncated frame: need %d bytes at offset %d of %d", n, r.pos, len(r.data))
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *batchReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *batchReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *batchReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *batchReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *batchReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *batchReader) boxedElem() (any, error) {
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, nil
	}
	tAny, ok := batchElemTypes.Load(name)
	if !ok {
		return nil, codecErr("unknown element type %q", name)
	}
	rv := reflect.New(tAny.(reflect.Type)).Elem()
	if err := r.value(rv); err != nil {
		return nil, err
	}
	return rv.Interface(), nil
}

// value decodes one value into the settable rv.
func (r *batchReader) value(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Bool:
		b, err := r.u8()
		if err != nil {
			return err
		}
		rv.SetBool(b != 0)
	case reflect.Int8:
		b, err := r.u8()
		if err != nil {
			return err
		}
		rv.SetInt(int64(int8(b)))
	case reflect.Int16:
		v, err := r.u16()
		if err != nil {
			return err
		}
		rv.SetInt(int64(int16(v)))
	case reflect.Int32:
		v, err := r.u32()
		if err != nil {
			return err
		}
		rv.SetInt(int64(int32(v)))
	case reflect.Int, reflect.Int64:
		v, err := r.u64()
		if err != nil {
			return err
		}
		rv.SetInt(int64(v))
	case reflect.Uint8:
		b, err := r.u8()
		if err != nil {
			return err
		}
		rv.SetUint(uint64(b))
	case reflect.Uint16:
		v, err := r.u16()
		if err != nil {
			return err
		}
		rv.SetUint(uint64(v))
	case reflect.Uint32:
		v, err := r.u32()
		if err != nil {
			return err
		}
		rv.SetUint(uint64(v))
	case reflect.Uint, reflect.Uint64:
		v, err := r.u64()
		if err != nil {
			return err
		}
		rv.SetUint(v)
	case reflect.Float32:
		v, err := r.u32()
		if err != nil {
			return err
		}
		rv.SetFloat(float64(math.Float32frombits(v)))
	case reflect.Float64:
		v, err := r.u64()
		if err != nil {
			return err
		}
		rv.SetFloat(math.Float64frombits(v))
	case reflect.Complex64:
		re, err := r.u32()
		if err != nil {
			return err
		}
		im, err := r.u32()
		if err != nil {
			return err
		}
		rv.SetComplex(complex(float64(math.Float32frombits(re)), float64(math.Float32frombits(im))))
	case reflect.Complex128:
		re, err := r.u64()
		if err != nil {
			return err
		}
		im, err := r.u64()
		if err != nil {
			return err
		}
		rv.SetComplex(complex(math.Float64frombits(re), math.Float64frombits(im)))
	case reflect.String:
		s, err := r.str()
		if err != nil {
			return err
		}
		rv.SetString(s)
	case reflect.Slice:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if int(n) > len(r.data)-r.pos && n > 1<<16 {
			return codecErr("implausible slice length %d", n)
		}
		sl := reflect.MakeSlice(rv.Type(), 0, min(int(n), 1<<12))
		elem := reflect.New(rv.Type().Elem()).Elem()
		for i := 0; i < int(n); i++ {
			elem.SetZero()
			if err := r.value(elem); err != nil {
				return err
			}
			sl = reflect.Append(sl, elem)
		}
		rv.Set(sl)
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			if err := r.value(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			if err := r.value(rv.Field(i)); err != nil {
				return err
			}
		}
	default:
		return codecErr("unsupported element kind %s", rv.Kind())
	}
	return nil
}
