package engine

// Map-side shuffle routing. The partitioned parent of a shuffle dep is
// routed into the child's partitions here; this is the hottest structural
// loop in the engine (every shuffled element passes through it once per
// stage boundary). One counting-pass core serves both executors — the
// serial reference and the pooled parallel router run the identical
// algorithm with different loop dispatch, so their blocks are equal by
// construction. Typed batches route without boxing: the dep's
// batchTargets hashes a whole batch monomorphically in the counting pass,
// and scatter moves elements between typed blocks in the write pass.

// partTarget returns the target partition for element idx of source
// partition src under dep d. Partitioners must be pure: routing runs
// concurrently and may evaluate sources in any order.
func partTarget(d *dep, src, idx int, e any) int {
	if d.posPartitioner != nil {
		return d.posPartitioner(src, idx, d.childParts)
	}
	return d.partitioner(e, d.childParts)
}

// routeCore routes every element of every parent partition into its
// target block. A counting pass records each element's target (the
// partitioner hash runs exactly once per element — targets are cached for
// the write pass), the per-(source, target) counts are prefix-summed into
// exact offsets, and a second pass writes every element directly into its
// final slot. Output block order is deterministic regardless of worker
// count: sources in order, elements in source order.
//
// When every non-empty source shares one batch shape, blocks are
// allocated in that shape and filled by typed scatter; mixed shapes fall
// back to boxed blocks. Either way a block's boxed capacity is
// blockCap(len), reproducing the append-grown []any blocks the simulator
// observed before batches existed.
func routeCore(d *dep, parent []Batch, pool *workerPool, workers int) []Batch {
	nsrc := len(parent)
	nt := d.childParts
	blocks := make([]Batch, nt)
	if nsrc == 0 {
		return blocks
	}
	// Counting pass: counts[src*nt+t] = elements of source src bound for
	// target t; targets[src][idx] caches each element's target.
	targets := make([][]int32, nsrc)
	counts := make([]int32, nsrc*nt)
	countSrc := func(src int) {
		part := parent[src]
		n := batchLen(part)
		tg := make([]int32, n)
		ct := counts[src*nt : (src+1)*nt]
		switch {
		case n == 0:
		case d.posPartitioner != nil:
			for idx := 0; idx < n; idx++ {
				t := d.posPartitioner(src, idx, nt)
				tg[idx] = int32(t)
				ct[t]++
			}
		case d.batchTargets != nil && d.batchTargets(part, nt, tg, ct):
			// Typed fast path: one dispatch per batch, no boxing.
		default:
			for idx := 0; idx < n; idx++ {
				t := d.partitioner(part.At(idx), nt)
				tg[idx] = int32(t)
				ct[t]++
			}
		}
		targets[src] = tg
	}
	if workers <= 1 {
		for src := 0; src < nsrc; src++ {
			countSrc(src)
		}
	} else {
		pool.parallelForSafe(workers, nsrc, countSrc)
	}

	// Block representation: typed when every non-empty source agrees.
	proto, homogeneous := routeProto(parent)

	// Prefix-sum counts into write offsets (per target, sources in order)
	// and allocate each block exactly once at its final size.
	for t := 0; t < nt; t++ {
		var run int32
		for src := 0; src < nsrc; src++ {
			c := counts[src*nt+t]
			counts[src*nt+t] = run
			run += c
		}
		if run > 0 { // keep empty blocks nil, as the boxed reference did
			if homogeneous {
				blocks[t] = proto.newLike(int(run), blockCap(int(run)))
			} else {
				blocks[t] = &Vec[any]{xs: make([]any, run), bcap: blockCap(int(run))}
			}
		}
	}

	// Write pass: each source owns its offset row, so writes to a shared
	// block land in disjoint slots.
	writeSrc := func(src int) {
		part := parent[src]
		n := batchLen(part)
		if n == 0 {
			return
		}
		off := counts[src*nt : (src+1)*nt]
		tg := targets[src]
		if homogeneous {
			part.scatter(tg, off, blocks)
			return
		}
		for idx := 0; idx < n; idx++ {
			t := tg[idx]
			blocks[t].setAny(int(off[t]), part.At(idx))
			off[t]++
		}
	}
	if workers <= 1 {
		for src := 0; src < nsrc; src++ {
			writeSrc(src)
		}
	} else {
		pool.parallelForSafe(workers, nsrc, writeSrc)
	}
	return blocks
}

// routeProto scans the non-empty sources for a shared batch shape. It
// returns the first non-empty batch as the prototype and whether every
// other non-empty source matches it.
func routeProto(parent []Batch) (Batch, bool) {
	var proto Batch
	for _, part := range parent {
		if batchLen(part) == 0 {
			continue
		}
		if proto == nil {
			proto = part
		} else if !sameBatchShape(proto, part) {
			return proto, false
		}
	}
	if proto == nil {
		return zeroBatch, true
	}
	return proto, true
}

// routeSerial is the single-goroutine router the legacy executor runs:
// routeCore with inline loops.
func routeSerial(d *dep, parent []Batch) []Batch {
	return routeCore(d, parent, nil, 1)
}

// routeParallel routes source partitions concurrently on the session's
// worker pool. A single-worker pool takes the serial path outright — the
// dispatch would be pure overhead with no one to overlap it with (the
// same 1-core audit flattenParallel got).
func (s *Session) routeParallel(d *dep, parent []Batch) []Batch {
	if s.workers == 1 {
		return routeCore(d, parent, nil, 1)
	}
	return routeCore(d, parent, s.pool, s.workers)
}

// blockCap returns the boxed-equivalent capacity of a block of n elements.
// Capacity is observable in simulated accounting: sizeest charges
// BoxedCap, and estPartitionBytes hands whole blocks of up to sampleN
// elements to it directly. The original append-based router grew such
// small blocks through the power-of-two capacities of one-at-a-time
// appends, so blocks keep reporting that capacity to keep simulated
// numbers bit-identical. Larger blocks go through position sampling,
// where capacity is never observed, and get exactly n.
func blockCap(n int) int {
	if n > sampleN {
		return n
	}
	if n == 0 {
		return 0 // never-appended nil slice
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// flattenCore copies every parent partition into its pre-computed region
// of one exactly-sized batch. Same-shaped sources flatten typed; mixed
// shapes fall back to a boxed batch. Both report boxed capacity == total,
// matching the boxed flatten's exact pre-size.
func flattenCore(parent []Batch, pool *workerPool, workers int) Batch {
	offsets := make([]int, len(parent)+1)
	for i, part := range parent {
		offsets[i+1] = offsets[i] + batchLen(part)
	}
	total := offsets[len(parent)]
	proto, homogeneous := routeProto(parent)
	var flat Batch
	if homogeneous {
		flat = proto.newLike(total, total)
	} else {
		flat = &Vec[any]{xs: make([]any, total), bcap: total}
	}
	copySrc := func(src int) {
		part := parent[src]
		n := batchLen(part)
		if n == 0 {
			return
		}
		off := offsets[src]
		if flat.copyFrom(off, part) {
			return
		}
		for idx := 0; idx < n; idx++ {
			flat.setAny(off+idx, part.At(idx))
		}
	}
	if workers <= 1 {
		for src := range parent {
			copySrc(src)
		}
	} else {
		pool.parallelForSafe(workers, len(parent), copySrc)
	}
	return flat
}

// flattenSerial is the retained reference flatten for broadcast pinning.
func flattenSerial(parent []Batch) Batch {
	return flattenCore(parent, nil, 1)
}

// flattenCutoff is the total element count below which flattenParallel
// routes to the serial copy: a broadcast flatten is a pure memcpy sweep,
// and for small inputs the pool dispatch and per-partition goroutine
// handoff cost as much as the copy itself (BenchmarkBroadcastFlatten
// measured ~131k elements finishing in identical time either way). Both
// paths produce a batch of identical length, order, and boxed capacity,
// so the routing choice is invisible to simulated accounting.
const flattenCutoff = 1 << 18

// flattenParallel copies partitions concurrently; inputs below
// flattenCutoff, and single-worker pools, take the serial copy instead.
func (s *Session) flattenParallel(parent []Batch) Batch {
	var total int
	for _, part := range parent {
		total += batchLen(part)
	}
	// A single-worker pool can never win a memcpy sweep: the dispatch is
	// pure overhead with no one to overlap it with.
	if total < flattenCutoff || s.workers == 1 {
		return flattenCore(parent, nil, 1)
	}
	return flattenCore(parent, s.pool, s.workers)
}
