package engine

// Map-side shuffle routing. The partitioned parent of a shuffle dep is
// routed into the child's partitions here; this is the hottest structural
// loop in the engine (every shuffled element passes through it once per
// stage boundary), so it has a parallel implementation with exact
// pre-sizing alongside the single-goroutine reference it replaced.

// partTarget returns the target partition for element idx of source
// partition src under dep d. Partitioners must be pure: routing runs
// concurrently and may evaluate sources in any order.
func partTarget(d *dep, src, idx int, e any) int {
	if d.posPartitioner != nil {
		return d.posPartitioner(src, idx, d.childParts)
	}
	return d.partitioner(e, d.childParts)
}

// routeSerial is the retained single-goroutine reference router: it visits
// every element of every parent partition in order and appends it to its
// target block, growing blocks as it goes. Tests assert the parallel
// router produces identical blocks; benchmarks use it as the
// pre-parallelism baseline; legacy-mode sessions still execute it.
func routeSerial(d *dep, parent [][]any) [][]any {
	blocks := make([][]any, d.childParts)
	for src, part := range parent {
		for idx, e := range part {
			t := partTarget(d, src, idx, e)
			blocks[t] = append(blocks[t], e)
		}
	}
	return blocks
}

// routeParallel is the map-side shuffle router: source partitions are
// routed concurrently on the session's worker pool. A counting pass
// records each element's target (the partitioner hash runs exactly once
// per element — targets are cached for the write pass), the per-(source,
// target) counts are prefix-summed into exact offsets, and a second
// parallel pass writes every element directly into its final slot. There
// is no append growth in the hot loop, and the output block order is
// identical to routeSerial's: sources in order, elements in source order,
// so downstream size estimation and task costs are unchanged.
func (s *Session) routeParallel(d *dep, parent [][]any) [][]any {
	nsrc := len(parent)
	nt := d.childParts
	blocks := make([][]any, nt)
	if nsrc == 0 {
		return blocks
	}
	// Counting pass: counts[src*nt+t] = elements of source src bound for
	// target t; targets[src][idx] caches each element's target.
	targets := make([][]int32, nsrc)
	counts := make([]int32, nsrc*nt)
	s.pool.parallelForSafe(s.workers, nsrc, func(src int) {
		part := parent[src]
		tg := make([]int32, len(part))
		ct := counts[src*nt : (src+1)*nt]
		for idx, e := range part {
			t := partTarget(d, src, idx, e)
			tg[idx] = int32(t)
			ct[t]++
		}
		targets[src] = tg
	})
	// Prefix-sum counts into write offsets (per target, sources in order)
	// and allocate each block exactly once at its final size.
	for t := 0; t < nt; t++ {
		var run int32
		for src := 0; src < nsrc; src++ {
			c := counts[src*nt+t]
			counts[src*nt+t] = run
			run += c
		}
		if run > 0 { // keep empty blocks nil, as the append-based reference does
			blocks[t] = make([]any, run, blockCap(int(run)))
		}
	}
	// Write pass: each source owns its offset row, so writes to a shared
	// block land in disjoint slots.
	s.pool.parallelForSafe(s.workers, nsrc, func(src int) {
		off := counts[src*nt : (src+1)*nt]
		tg := targets[src]
		for idx, e := range parent[src] {
			t := tg[idx]
			blocks[t][off[t]] = e
			off[t]++
		}
	})
	return blocks
}

// blockCap returns the capacity to allocate for a block of n elements.
// Slice capacity is observable in simulated accounting: sizeest.OfSlice
// charges cap, and estPartitionBytes hands whole blocks of up to sampleN
// elements to it directly. The append-based reference grows such small
// blocks through the power-of-two capacities of one-at-a-time appends, so
// the pre-sized router allocates the same capacity to keep simulated
// numbers bit-identical. Larger blocks go through position sampling, where
// capacity is never observed, and get exactly n.
func blockCap(n int) int {
	if n > sampleN {
		return n
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// flattenSerial is the retained reference flatten for broadcast pinning.
func flattenSerial(parent [][]any) []any {
	var total int
	for _, part := range parent {
		total += len(part)
	}
	flat := make([]any, 0, total)
	for _, part := range parent {
		flat = append(flat, part...)
	}
	return flat
}

// flattenCutoff is the total element count below which flattenParallel
// routes to the serial copy: a broadcast flatten is a pure memcpy sweep,
// and for small inputs the pool dispatch and per-partition goroutine
// handoff cost as much as the copy itself (BenchmarkBroadcastFlatten
// measured ~131k elements finishing in identical time either way). Both
// paths produce a slice of identical length, capacity, and order, so the
// routing choice is invisible to simulated accounting.
const flattenCutoff = 1 << 18

// flattenParallel copies every parent partition into its pre-computed
// region of one exactly-sized slice, partitions concurrently; inputs
// below flattenCutoff take the serial copy instead.
func (s *Session) flattenParallel(parent [][]any) []any {
	offsets := make([]int, len(parent)+1)
	for i, part := range parent {
		offsets[i+1] = offsets[i] + len(part)
	}
	total := offsets[len(parent)]
	// A single-worker pool can never win a memcpy sweep: the dispatch is
	// pure overhead with no one to overlap it with.
	if total < flattenCutoff || s.workers == 1 {
		flat := make([]any, 0, total)
		for _, part := range parent {
			flat = append(flat, part...)
		}
		return flat
	}
	flat := make([]any, total)
	s.pool.parallelForSafe(s.workers, len(parent), func(src int) {
		copy(flat[offsets[src]:offsets[src+1]], parent[src])
	})
	return flat
}
