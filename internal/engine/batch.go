package engine

// Batch is the partition representation carried across the data path: a
// typed, monomorphic vector for the hot element shapes (ints, strings,
// floats, pairs — whatever the operator constructors instantiate) with a
// boxed *Vec[any] fallback for everything else. Operators build batches
// with batchOf and read them with elems; between operators the engine
// moves them opaquely (routing, flattening, caching, memoization,
// serialization) without re-boxing every element into []any.
//
// Simulated-cluster accounting must stay bit-identical to the boxed
// representation it replaced, so a batch carries BoxedCap — the capacity
// the equivalent []any partition would have had — and every size estimate
// charges that instead of the host slice's real capacity. Host-side
// layout is free to change; the observable numbers are not.

import (
	"reflect"
	"regexp"
	"sync"
)

// Batch is one partition of elements. Implementations are *Vec[T] for
// some element type T; *Vec[any] is the boxed fallback and the shape every
// batch can be converted to.
type Batch interface {
	// Len returns the number of elements.
	Len() int
	// BoxedCap returns the capacity of the equivalent boxed []any
	// partition — the number simulated size estimation charges.
	BoxedCap() int
	// At returns element i, boxed.
	At(i int) any
	// Data returns the underlying typed slice ([]T for *Vec[T]). Callers
	// must not mutate it.
	Data() any
	// Shape names the element type for observability ("int",
	// "Pair[int,int64]", "any").
	Shape() string

	// newLike allocates a same-shaped batch of n zero elements with the
	// given boxed capacity (the shuffle router's pre-sized blocks).
	newLike(n, bcap int) Batch
	// setAny stores a boxed element at i; the dynamic type must match.
	setAny(i int, v any)
	// copyFrom copies src into this batch starting at off, returning
	// false if src has a different shape (broadcast flatten).
	copyFrom(off int, src Batch) bool
	// scatter distributes this batch's elements into same-shaped blocks:
	// element i goes to blocks[tg[i]] at off[tg[i]], which is then
	// incremented. Returns false if any non-empty target block has a
	// different shape (the router falls back to boxed blocks).
	scatter(tg, off []int32, blocks []Batch) bool
	// sampleEvery returns every step-th element as a batch with the given
	// boxed capacity (size-estimator sampling).
	sampleEvery(step, bcap int) Batch
}

// Vec is the monomorphic Batch implementation: a plain typed slice plus
// the boxed-equivalent capacity the simulator observes.
type Vec[T any] struct {
	xs   []T
	bcap int
}

func (v *Vec[T]) Len() int      { return len(v.xs) }
func (v *Vec[T]) BoxedCap() int { return v.bcap }
func (v *Vec[T]) At(i int) any  { return v.xs[i] }
func (v *Vec[T]) Data() any     { return v.xs }

func (v *Vec[T]) Shape() string { return shapeName(reflect.TypeFor[T]()) }

func (v *Vec[T]) newLike(n, bcap int) Batch {
	return &Vec[T]{xs: make([]T, n), bcap: bcap}
}

func (v *Vec[T]) setAny(i int, e any) { v.xs[i] = e.(T) }

func (v *Vec[T]) copyFrom(off int, src Batch) bool {
	s, ok := src.(*Vec[T])
	if !ok {
		return false
	}
	copy(v.xs[off:], s.xs)
	return true
}

func (v *Vec[T]) scatter(tg, off []int32, blocks []Batch) bool {
	// The write loop caches the last target's slice: shuffle targets are
	// bursty (runs of equal keys), so most iterations skip the type
	// assertion entirely.
	last := int32(-1)
	var dst []T
	for i, t := range tg {
		if t != last {
			b, ok := blocks[t].(*Vec[T])
			if !ok {
				return false
			}
			dst = b.xs
			last = t
		}
		dst[off[t]] = v.xs[i]
		off[t]++
	}
	return true
}

func (v *Vec[T]) sampleEvery(step, bcap int) Batch {
	n := len(v.xs)
	out := make([]T, 0, (n+step-1)/step)
	for i := 0; i < n; i += step {
		out = append(out, v.xs[i])
	}
	return &Vec[T]{xs: out, bcap: bcap}
}

// zeroBatch is the shared empty partition: narrow reads of absent parents
// and nil shuffle blocks substitute it before compute runs.
var zeroBatch Batch = &Vec[any]{}

// batchOf wraps a typed slice as a Batch with the given boxed-equivalent
// capacity, registering the element type with the codec on first use.
func batchOf[T any](xs []T, bcap int) Batch {
	registerBatchCodec[T]()
	return &Vec[T]{xs: xs, bcap: bcap}
}

// boxedBatch wraps an already-boxed partition; bcap is taken from the
// slice itself, so appends that grew it through Go's size classes are
// charged exactly as the boxed representation was.
func boxedBatch(xs []any) Batch { return &Vec[any]{xs: xs, bcap: cap(xs)} }

// batchLen is Len on a possibly-nil batch (empty shuffle blocks stay nil).
func batchLen(b Batch) int {
	if b == nil {
		return 0
	}
	return b.Len()
}

// elems returns b's elements as []T. For a *Vec[T] it returns the backing
// slice without copying — callers must not mutate it; any other shape is
// converted element-wise.
func elems[T any](b Batch) []T {
	if v, ok := b.(*Vec[T]); ok {
		return v.xs
	}
	n := b.Len()
	out := make([]T, n)
	for i := range out {
		out[i] = b.At(i).(T)
	}
	return out
}

// toBoxed returns b's elements as []any, aliasing the backing slice when b
// is already boxed.
func toBoxed(b Batch) []any {
	if v, ok := b.(*Vec[any]); ok {
		return v.xs
	}
	n := b.Len()
	out := make([]any, n)
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}

// sameBatchShape reports whether two batches have the same dynamic
// representation (so typed block routing and flattening apply).
func sameBatchShape(a, b Batch) bool {
	return reflect.TypeOf(a) == reflect.TypeOf(b)
}

var shapeNames sync.Map // reflect.Type -> string

// pkgQualifier matches package qualifiers in reflect type strings
// ("engine.", "matryoshka/internal/core.") so shape names read as bare
// type expressions.
var pkgQualifier = regexp.MustCompile(`[\w./\-]+\.`)

// shapeName renders an element type for EXPLAIN ANALYZE, stripping package
// qualifiers ("engine.Pair[int,int]" -> "Pair[int,int]").
func shapeName(t reflect.Type) string {
	if s, ok := shapeNames.Load(t); ok {
		return s.(string)
	}
	s := pkgQualifier.ReplaceAllString(t.String(), "")
	if t.Kind() == reflect.Interface && t.NumMethod() == 0 {
		s = "any"
	}
	shapeNames.Store(t, s)
	return s
}
