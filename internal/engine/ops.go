package engine

// Map applies f to every element.
func Map[A, B any](d Dataset[A], f func(A) B) Dataset[B] {
	n := d.s.newNode("map", d.n.parts, []dep{narrowDep(d.n)}, MapCompute(f))
	fuseMap(n, d.n, f)
	return fromNode[B](d.s, n)
}

// MapCtx is Map with access to the task context, so UDFs that do heavy
// per-element work (e.g. the outer-parallel workaround running a whole
// inner algorithm sequentially inside one UDF call) can report their true
// compute and memory costs to the simulated cluster.
func MapCtx[A, B any](d Dataset[A], f func(*Ctx, A) B) Dataset[B] {
	n := d.s.newNode("mapCtx", d.n.parts, []dep{narrowDep(d.n)}, func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[A](in[0])
		out := make([]B, len(src))
		for i, e := range src {
			out[i] = f(tc, e)
		}
		return batchOf(out, len(out))
	})
	// Deliberately not fused: the UDF's Ctx charges interleave with the
	// loop, and replaying them in the unfused order from inside a fused
	// chain is impossible (see fuse.go). MapCtx nodes break chains.
	return fromNode[B](d.s, n)
}

// Filter keeps the elements for which pred is true.
func Filter[A any](d Dataset[A], pred func(A) bool) Dataset[A] {
	n := d.s.newNode("filter", d.n.parts, []dep{narrowDep(d.n)}, FilterCompute(pred))
	n.pkey = d.n.pkey // filtering preserves the partitioning
	fuseFilter(n, d.n, pred)
	return fromNode[A](d.s, n)
}

// FlatMap applies f and concatenates the results.
func FlatMap[A, B any](d Dataset[A], f func(A) []B) Dataset[B] {
	n := d.s.newNode("flatMap", d.n.parts, []dep{narrowDep(d.n)}, FlatMapCompute(f))
	fuseFlatMap(n, d.n, f)
	return fromNode[B](d.s, n)
}

// MapPartitions applies f to each whole partition.
func MapPartitions[A, B any](d Dataset[A], f func([]A) []B) Dataset[B] {
	n := d.s.newNode("mapPartitions", d.n.parts, []dep{narrowDep(d.n)}, MapPartitionsCompute(f))
	// Partition-level UDFs see whole partitions; recovery must not change
	// how the data is split under them.
	n.fixedParts = true
	fuseMapPartitions(n, d.n, f)
	return fromNode[B](d.s, n)
}

// Union concatenates two datasets (bag union, duplicates preserved). It is
// a narrow operation: output partitions are the partitions of both inputs.
func Union[A any](a, b Dataset[A]) Dataset[A] {
	aParts := a.n.parts
	parts := aParts + b.n.parts
	deps := []dep{
		{parent: a.n, kind: depNarrow, narrowMap: func(p int) []int {
			if p < aParts {
				return []int{p}
			}
			return nil
		}},
		{parent: b.n, kind: depNarrow, narrowMap: func(p int) []int {
			if p >= aParts {
				return []int{p - aParts}
			}
			return nil
		}},
	}
	n := a.s.newNode("union", parts, deps, func(tc *Ctx, p int, in []Batch) Batch {
		if p < aParts {
			return in[0]
		}
		return in[1]
	})
	return fromNode[A](a.s, n)
}

// ZipWithUniqueID pairs every element with a cluster-wide unique uint64,
// without launching a job: element k of partition p receives id p + k*parts
// (the same scheme as Spark's zipWithUniqueId). The paper uses it to mint
// lifting tags for UDF invocations (Sec. 4.3).
func ZipWithUniqueID[A any](d Dataset[A]) Dataset[Pair[uint64, A]] {
	parts := d.n.parts
	n := d.s.newNode("zipWithUniqueID", parts, []dep{narrowDep(d.n)}, func(tc *Ctx, p int, in []Batch) Batch {
		src := elems[A](in[0])
		out := make([]Pair[uint64, A], len(src))
		for k, e := range src {
			out[k] = Pair[uint64, A]{Key: uint64(p) + uint64(k)*uint64(parts), Val: e}
		}
		return batchOf(out, len(out))
	})
	// The ID stride captures the partition count at construction time.
	n.fixedParts = true
	fuseZip[A](n, d.n, parts)
	return fromNode[Pair[uint64, A]](d.s, n)
}

// KeyBy maps every element to a Pair keyed by f(elem).
func KeyBy[A any, K comparable](d Dataset[A], f func(A) K) Dataset[Pair[K, A]] {
	return Map(d, func(a A) Pair[K, A] { return Pair[K, A]{Key: f(a), Val: a} })
}

// Keys projects the keys of a pair dataset.
func Keys[K comparable, V any](d Dataset[Pair[K, V]]) Dataset[K] {
	return Map(d, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair dataset.
func Values[K comparable, V any](d Dataset[Pair[K, V]]) Dataset[V] {
	return Map(d, func(p Pair[K, V]) V { return p.Val })
}

// MapValues transforms only the value component; keys are untouched, so
// any existing hash partitioning is preserved on the result.
func MapValues[K comparable, V, W any](d Dataset[Pair[K, V]], f func(V) W) Dataset[Pair[K, W]] {
	n := d.s.newNode("mapValues", d.n.parts, []dep{narrowDep(d.n)}, MapValuesCompute[K](f))
	n.pkey = d.n.pkey
	fuseMap(n, d.n, func(kv Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: kv.Key, Val: f(kv.Val)}
	})
	return fromNode[Pair[K, W]](d.s, n)
}

// Coalesce merges the dataset into parts partitions *without* a shuffle:
// each output partition concatenates a contiguous range of input
// partitions (Spark's coalesce). Useful after heavy filtering, when many
// near-empty partitions would otherwise pay per-task overhead.
func Coalesce[A any](d Dataset[A], parts int) Dataset[A] {
	in := d.n.parts
	if parts <= 0 || parts >= in {
		return d
	}
	merge := dep{parent: d.n, kind: depNarrow, narrowMap: func(p int) []int {
		lo, hi := p*in/parts, (p+1)*in/parts
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}}
	n := d.s.newNode("coalesce", parts, []dep{merge}, identityCompute)
	// Pure routing: trivially portable to a process-pool backend.
	n.port = &portableMark{op: "identity"}
	return fromNode[A](d.s, n)
}

// Concat merges every partition into a single partition without a shuffle,
// preserving partition order (Coalesce to one partition). The single task
// reads every input partition — when those inputs are also consumed
// elsewhere in the same job, the engine's fan-in memo ensures they are
// still computed only once.
func Concat[A any](d Dataset[A]) Dataset[A] { return Coalesce(d, 1) }
