package engine

// Fused execution of narrow operator chains (ROADMAP item 2, after Flare):
// consecutive map/filter/flatMap/mapValues/mapPartitions/zip nodes collapse
// into one typed loop body executed per input batch, so intermediate rows
// flow through composed closures as unboxed values instead of being
// materialized into a fresh batch seam after every operator.
//
// The chain is built at construction time: each fusible operator checks
// whether its parent node carries a typed push-pipeline whose emit type
// matches the operator's input type, and if so extends it by wrapping. The
// composed pipeline is stored type-erased on the node; the final emit of
// the whole chain lands in a typed output batch. Whether a stored chain may
// actually run is a per-plan decision (physical.go): every intermediate op
// must be invisible to the plan — not a stage root, not a fan-in memo site,
// not on the recovery frontier — so fusion never changes which partitions
// are materialized, memoized, or checkpointed. The A/B bit-identity suite
// runs the same DAGs fused and unfused and asserts identical partitions,
// virtual clocks, and cluster stats.
//
// Bit-identity imposes two disciplines on the fused loop:
//
//   - Cost replay. The unfused evaluator charges, per link, the rows each
//     operator consumes times the producer's record weight, bottom-up. The
//     fused loop counts per-link emits in a fuseCounts array and replays
//     exactly those charges in exactly that order after the loop (UDFs of
//     fusible operators never touch the task Ctx — mapCtx deliberately
//     breaks chains — so the replayed sequence of float additions is
//     identical to the unfused one).
//
//   - Capacity fidelity. sizeest.OfBatch charges the boxed-equivalent
//     capacity, and partitions of up to sampleN elements are handed to it
//     whole, so the fused output batch must report the capacity the unfused
//     operator's boxed allocation would have had: map-like tops cap==len, a
//     filter top its input count, a flatMap top the power-of-two growth of
//     one-at-a-time appends. The host slice itself grows however it likes —
//     real capacity is invisible to accounting — which is why the record
//     blocks the boxed implementation pooled are gone.

import (
	"fmt"
	"strings"
	"sync"
)

// maxFuseOps caps chain length so per-link emit counts fit a fixed array;
// longer chains split into segments at the cap, each fused on its own.
const maxFuseOps = 15

// fuseCounts records, per chain link, how many rows the link's operator
// emitted during one fused partition run. Entry i counts the output of
// via[i]; the top operator's own emits are never counted (its consumer
// charges for them, or launchStage does at the stage root).
type fuseCounts [maxFuseOps]int64

var fuseCountsPool = sync.Pool{New: func() any { return new(fuseCounts) }}

// fuseTop describes the materialization shape of the chain's top operator,
// i.e. which allocation pattern the unfused compute would have produced.
type fuseTop int

const (
	fuseTopExact   fuseTop = iota // out has cap == len (map, mapValues, mapPartitions, zip)
	fuseTopFilter                 // out pre-sized to the filter's input count
	fuseTopFlatMap                // out grown by one-at-a-time appends from nil
)

// fuseInfo is the constructor-built maximal fusible chain ending at its
// owner node. run is the type-erased typed pipeline
// (func(*Ctx, *fuseCounts, int, Batch, func(T))); exec wraps it with the
// materializer matching the owner's unfused allocation shape.
type fuseInfo struct {
	head *node   // evaluated normally; its partition batch feeds the chain
	via  []*node // chain operators bottom-up; the last entry is the owner
	run  any
	exec func(tc *Ctx, fc *fuseCounts, p int, in Batch) Batch
	// allMap marks chains of only 1:1 operators: output size is known up
	// front, so rows go straight into the exact-size result.
	allMap bool
}

// chainBase is the typed pipeline an operator constructor extends: the
// parent's stored chain when its emit type matches (wrapped to count the
// parent's emits), or a fresh unboxing loop over the parent's partition.
type chainBase[A any] struct {
	run    func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(A))
	via    []*node
	head   *node
	allMap bool
}

func chainTo[A any](parent *node) chainBase[A] {
	if fi := parent.fuse; fi != nil && len(fi.via) < maxFuseOps {
		if run, ok := fi.run.(func(*Ctx, *fuseCounts, int, Batch, func(A))); ok {
			idx := len(fi.via) - 1
			return chainBase[A]{
				run: func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(A)) {
					run(tc, fc, p, in, func(a A) { fc[idx]++; emit(a) })
				},
				via:    fi.via,
				head:   fi.head,
				allMap: fi.allMap,
			}
		}
	}
	return chainBase[A]{
		run: func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(A)) {
			// Typed head batches feed the pipeline monomorphically; any
			// other shape unboxes element-wise, as the boxed loop did.
			if v, ok := in.(*Vec[A]); ok {
				for _, a := range v.xs {
					emit(a)
				}
				return
			}
			n := in.Len()
			for i := 0; i < n; i++ {
				emit(in.At(i).(A))
			}
		},
		head:   parent,
		allMap: true,
	}
}

// newFuseInfo finishes a chain for owner: appends it to via and builds the
// materializer for its top shape.
func newFuseInfo[T any](owner *node, base []*node, head *node,
	run func(*Ctx, *fuseCounts, int, Batch, func(T)), top fuseTop, allMap bool) *fuseInfo {
	via := make([]*node, 0, len(base)+1)
	via = append(append(via, base...), owner)
	k := len(via)
	var exec func(tc *Ctx, fc *fuseCounts, p int, in Batch) Batch
	if allMap {
		exec = func(tc *Ctx, fc *fuseCounts, p int, in Batch) Batch {
			out := make([]T, in.Len())
			i := 0
			run(tc, fc, p, in, func(t T) { out[i] = t; i++ })
			return batchOf(out, len(out))
		}
	} else {
		exec = func(tc *Ctx, fc *fuseCounts, p int, in Batch) Batch {
			// Output size is unknown up front; the host slice grows freely
			// (real capacity is invisible to accounting) and the batch
			// reports the boxed-equivalent capacity afterwards.
			var out []T
			run(tc, fc, p, in, func(t T) { out = append(out, t) })
			bcap := len(out)
			switch top {
			case fuseTopFilter:
				// The unfused filter pre-sizes to its input, which is the
				// emit count of the link below the top.
				bcap = int(fc[k-2])
			case fuseTopFlatMap:
				bcap = blockCap(len(out))
			}
			return batchOf(out, bcap)
		}
	}
	return &fuseInfo{head: head, via: via, run: run, exec: exec, allMap: allMap}
}

// fuseMap attaches a 1:1 chain link to n (Map, MapCtx-free variants only:
// mapCtx UDFs charge the task Ctx mid-loop, and replaying those charges in
// the unfused order is impossible, so mapCtx always breaks chains).
func fuseMap[A, B any](n, parent *node, f func(A) B) {
	base := chainTo[A](parent)
	run := func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(B)) {
		base.run(tc, fc, p, in, func(a A) { emit(f(a)) })
	}
	n.fuse = newFuseInfo(n, base.via, base.head, run, fuseTopExact, base.allMap)
}

// fuseFilter attaches a filtering chain link to n.
func fuseFilter[A any](n, parent *node, pred func(A) bool) {
	base := chainTo[A](parent)
	run := func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(A)) {
		base.run(tc, fc, p, in, func(a A) {
			if pred(a) {
				emit(a)
			}
		})
	}
	n.fuse = newFuseInfo(n, base.via, base.head, run, fuseTopFilter, false)
}

// fuseFlatMap attaches an expanding chain link to n.
func fuseFlatMap[A, B any](n, parent *node, f func(A) []B) {
	base := chainTo[A](parent)
	run := func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(B)) {
		base.run(tc, fc, p, in, func(a A) {
			for _, b := range f(a) {
				emit(b)
			}
		})
	}
	n.fuse = newFuseInfo(n, base.via, base.head, run, fuseTopFlatMap, false)
}

// fuseMapPartitions attaches a whole-partition chain link to n: upstream
// rows are buffered typed (host-side scratch, invisible to accounting),
// the UDF runs once, and its results stream on.
func fuseMapPartitions[A, B any](n, parent *node, f func([]A) []B) {
	base := chainTo[A](parent)
	run := func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(B)) {
		// Host-side scratch (capacity invisible to accounting): start at
		// the head partition's length, the exact row count for all-map
		// chains below and a close lower bound otherwise, so the buffer
		// skips the small-capacity doublings of growth from nil.
		buf := make([]A, 0, in.Len())
		base.run(tc, fc, p, in, func(a A) { buf = append(buf, a) })
		for _, b := range f(buf) {
			emit(b)
		}
	}
	n.fuse = newFuseInfo(n, base.via, base.head, run, fuseTopExact, false)
}

// fuseZip attaches ZipWithUniqueID's id-minting link to n. The stride is
// the construction-time partition count, as in the unfused compute.
func fuseZip[A any](n, parent *node, parts int) {
	base := chainTo[A](parent)
	run := func(tc *Ctx, fc *fuseCounts, p int, in Batch, emit func(Pair[uint64, A])) {
		k := 0
		base.run(tc, fc, p, in, func(a A) {
			emit(Pair[uint64, A]{Key: uint64(p) + uint64(k)*uint64(parts), Val: a})
			k++
		})
	}
	n.fuse = newFuseInfo(n, base.via, base.head, run, fuseTopExact, base.allMap)
}

// evalFused runs partition p of a compiled fused chain: one pass over the
// head's partition batch through the composed typed pipeline, then a
// replay of exactly the per-link input charges the unfused evaluator would
// have accumulated, in its order (head first, then each link bottom-up).
func (j *job) evalFused(tc *Ctx, fi *fuseInfo, p int) Batch {
	in := j.evalPart(tc, fi.head, p)
	fc := fuseCountsPool.Get().(*fuseCounts)
	*fc = fuseCounts{}
	out := fi.exec(tc, fc, p, in)
	tc.work += float64(in.Len()) * fi.head.weight
	for i := 0; i+1 < len(fi.via); i++ {
		tc.work += float64(fc[i]) * fi.via[i].weight
	}
	fuseCountsPool.Put(fc)
	return out
}

// fusedDesc renders the active fused chains inside the stage rooted at
// root for EXPLAIN ANALYZE, e.g. "fused(map∘filter∘flatMap) ×3 ops".
// Traversal is over the stage interior only: it stops at stage roots and
// recovery-frontier leaves, and each fused chain is reported once.
func (ep *execPlan) fusedDesc(root *node) string {
	if len(ep.fused) == 0 {
		return ""
	}
	var parts []string
	seen := map[*node]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if fi := ep.fused[n]; fi != nil {
			var b strings.Builder
			b.WriteString("fused(")
			for i, m := range fi.via {
				if i > 0 {
					b.WriteString("∘")
				}
				b.WriteString(m.label)
			}
			fmt.Fprintf(&b, ") ×%d ops", len(fi.via))
			parts = append(parts, b.String())
			// Continue below the chain, but not across a stage boundary:
			// a head that is itself a stage root reports in its own stage.
			if hpn := ep.pnodes[fi.head]; hpn != nil && !hpn.Done && !ep.plan.IsRoot(hpn) {
				walk(fi.head)
			}
			return
		}
		pn := ep.pnodes[n]
		if pn == nil || pn.Done {
			return
		}
		for i := range n.deps {
			d := &n.deps[i]
			if d.kind == depNarrow && !ep.plan.IsRoot(ep.pnodes[d.parent]) {
				walk(d.parent)
			}
		}
	}
	walk(root)
	return strings.Join(parts, " ")
}
