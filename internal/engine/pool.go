package engine

import (
	"sync"
	"sync/atomic"
)

// workerPool is a persistent set of goroutines executing submitted
// functions. One pool is created per Session and reused for every stage of
// every job, replacing the goroutine-per-partition + fresh-semaphore
// launch that paid spawn and scheduling cost on every stage.
//
// Workers reference only the pool, never the Session, so an abandoned
// Session stays collectable: a runtime cleanup registered in NewSession
// closes the task channel and the workers exit.
type workerPool struct {
	tasks     chan func()
	closeOnce sync.Once
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for f := range p.tasks {
		f()
	}
}

// submit schedules f on an idle worker, blocking while all workers are
// busy. Submitted functions must not panic (a panic kills the worker and
// the process) and must not submit to the pool themselves (deadlock);
// parallelFor callers recover inside their bodies.
func (p *workerPool) submit(f func()) { p.tasks <- f }

// close stops the workers after in-flight tasks drain. The pool must not
// be used afterwards. Idempotent.
func (p *workerPool) close() { p.closeOnce.Do(func() { close(p.tasks) }) }

// parallelFor runs body(i) for every i in [0, n) and returns when all are
// done, fanning out to at most width concurrent runners. Runners claim
// indices from a shared atomic counter, so submission cost is O(width),
// not O(n) — a stage with 1200 partitions hands the pool a handful of
// loop runners instead of 1200 channel sends. With width <= 1 the loop
// runs inline on the caller, bypassing the pool entirely.
func (p *workerPool) parallelFor(width, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		p.submit(func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				body(i)
			}
		})
	}
	wg.Wait()
}

// parallelForSafe is parallelFor with panic capture: a panicking body
// records the first panic, the remaining indices still run, and the panic
// is re-raised on the caller's goroutine — matching what inline serial
// execution would do without killing pool workers.
func (p *workerPool) parallelForSafe(width, n int, body func(i int)) {
	var once sync.Once
	var panicked any
	p.parallelFor(width, n, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				once.Do(func() { panicked = r })
			}
		}()
		body(i)
	})
	if panicked != nil {
		panic(panicked)
	}
}
