package engine

import (
	"fmt"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine/plan"
	"matryoshka/internal/obs"
)

// Adaptive recovery (the runtime half of the paper's Sec. 8 lowering
// phase): when a stage or broadcast fails, re-lower just the offending
// subplan — raise the shuffle partition count for task OOMs, demote a
// broadcast to its registered repartition/mirrored fallback for broadcast
// OOMs — denylist the failed choice in the session's optimizer feedback,
// and let the runner resume from the stage frontier. Bounded by the caps
// below so a workload that genuinely cannot fit still fails.
const (
	// maxJobRecoveries caps re-lowerings (plan changes) per job.
	maxJobRecoveries = 8
	// maxStageAttempts caps launches of one stage root. Transient
	// (injected-failure) reruns redraw the failure dice each attempt, so
	// with the default single task retry a wide stage fails most attempts
	// at high failure rates; the cap is a backstop against a rate so high
	// the workload genuinely cannot finish, not a realistic retry budget.
	maxStageAttempts = 64
	// maxPartsRaise caps the cumulative partition-raise factor per stage
	// root (and the session-wide optimizer boost).
	maxPartsRaise = 256
)

// refallback is an operator's registered alternative physical lowering,
// installed by the constructor that makes the primary choice (e.g.
// broadcastJoin registers the repartition join). The replacement must have
// identical output type, element semantics and partition count.
type refallback struct {
	rule, choice, alt string // Sec. 8 decision-log vocabulary
	// introRule/introChoice name the physical choice the alternative
	// itself introduces (empty when nothing denylistable): recovery
	// refuses a fallback that would reintroduce a denylisted choice,
	// which bounds demote ping-pong between mirrored lowerings.
	introRule, introChoice string
	build                  func() *node
}

// recover decides how to continue after a stage failure. It returns the
// (possibly re-lowered) job target and whether the runner should resume;
// (nil, false) means the job aborts with the failure's error. Each applied
// recovery is recorded on the event spine and — for re-lowerings — in the
// Sec. 8 decision log with a retried-after-OOM cause.
func (j *job) recover(f *stageFailure, target *node) (*node, bool) {
	if !j.s.cfg.Recover {
		return nil, false
	}
	rec := obs.Recovery{Label: f.root.label, Seconds: f.seconds}
	if f.st != nil {
		rec.Stage = f.st.ID
	}
	ok := false
	relowered := false
	switch {
	case f.transient:
		// A rerun changes nothing about the plan, so it is capped only per
		// stage root, not against the job's re-lowering budget.
		rec.What = "task retries exhausted"
		if j.attempts[f.root] < maxStageAttempts {
			rec.Action = "rerun"
			ok = true
		}
	case f.fetch != nil:
		// A machine crash destroyed a completed parent's shuffle outputs:
		// rewind the frontier along lineage and recompute the lost stages
		// (chaos.go). Not a plan change, so it does not spend the
		// re-lowering budget; it is bounded by its own recompute caps.
		// f.lost is nil for fleet-level failures (worker quorum lost) that
		// name no specific parent; those rewind via the full job retry.
		lostLabel := "(no specific stage)"
		if f.lost != nil {
			lostLabel = fmt.Sprintf("%q", f.lost.label)
		}
		rec.What = fmt.Sprintf("fetch-failed(m%d): lost %d/%d partitions of %s",
			f.fetch.Machine, len(f.fetch.Parts), f.fetch.Total, lostLabel)
		rec.Action, ok = j.rewindLost(f)
	case f.oom == nil || j.relowered >= maxJobRecoveries:
		// Not a memory failure, or the job already spent its re-lowering
		// budget: abort.
	case f.oom.What == "broadcast":
		rec.What = fmt.Sprintf("broadcast OOM (%d bytes over a %d-byte budget)", f.oom.Bytes, f.oom.Limit)
		target, rec.Action, ok = j.demoteBroadcast(f.owner, f.oom, target)
		relowered = ok
	default:
		rec.What = fmt.Sprintf("task OOM (wave %d, machine %d: %d bytes over a %d-byte budget)",
			f.oom.Wave, f.oom.Machine, f.oom.Bytes, f.oom.Limit)
		// A wave starved mostly by pinned broadcasts is better fixed by
		// demoting the broadcast than by splitting its own tasks.
		if f.oom.Resident > f.oom.Limit {
			target, rec.Action, ok = j.demoteBroadcastIn(f, target)
		}
		if !ok {
			rec.Action, ok = j.raiseParts(f)
		}
		if !ok {
			target, rec.Action, ok = j.demoteBroadcastIn(f, target)
		}
		if !ok {
			// Last resort: re-lower the failed stage root itself to its
			// registered fallback. This is how a giant-group OOM demotes a
			// materialized group build to the shredded spill lowering —
			// raising partitions cannot split one group, so raiseParts has
			// already refused by the time this fires. demoteBroadcast is
			// the generic fallback demotion despite its name: it works on
			// any node with a registered refallback.
			target, rec.Action, ok = j.demoteBroadcast(f.root, f.oom, target)
		}
		relowered = ok
	}
	if !ok {
		return nil, false
	}
	if relowered {
		j.relowered++
	}
	j.recoveries++
	j.s.obs.StageRecovered(rec)
	return target, true
}

// demoteBroadcast replaces the broadcast-consuming operator `owner` with
// its registered fallback lowering, denylisting the failed choice so the
// optimizer never re-picks it in this session.
func (j *job) demoteBroadcast(owner *node, oom *cluster.OOMError, target *node) (*node, string, bool) {
	if owner == nil || owner.fallback == nil {
		return target, "", false
	}
	fb := owner.fallback
	if fb.introRule != "" {
		if _, denied := j.s.feedback.Denied(fb.introRule, fb.introChoice); denied {
			return target, "", false // would reintroduce a denylisted choice
		}
	}
	why := fmt.Sprintf("%s=%s OOMed at run time (%d bytes over a %d-byte budget)",
		fb.rule, fb.choice, oom.Bytes, oom.Limit)
	j.s.feedback.Deny(fb.rule, fb.choice, why)
	j.s.obs.Decide(obs.Decision{Rule: fb.rule, Choice: fb.alt, Forced: true,
		Why: "retried-after-OOM: " + why})
	repl := fb.build()
	repl.cached = owner.cached
	// Drop state attached to the abandoned operator: its pinned
	// broadcasts stop pressuring later waves, its routed blocks and memo
	// entries are garbage.
	for i := range owner.deps {
		j.unpin(&owner.deps[i])
	}
	j.purgeNode(owner)
	rewire(owner, repl)
	if owner == target {
		target = repl
	}
	return target, fmt.Sprintf("re-lowered(%s=%s)", fb.rule, fb.alt), true
}

// demoteBroadcastIn demotes the first demotable broadcast consumed by the
// failed stage — the task-OOM variant, where the broadcast pinned fine but
// starves the stage's waves.
func (j *job) demoteBroadcastIn(f *stageFailure, target *node) (*node, string, bool) {
	if f.st == nil {
		return target, "", false
	}
	for _, pd := range f.st.Boundary {
		if pd.Kind != plan.Broadcast {
			continue
		}
		owner := j.ep.enode(pd.Owner)
		if t2, action, ok := j.demoteBroadcast(owner, f.oom, target); ok {
			return t2, action, true
		}
	}
	return target, "", false
}

// raiseParts re-lowers a task OOM by raising the partition count of the
// failed stage's narrow component: the same data in more, smaller
// partitions fits the per-machine wave budget (Sec. 8.1's partition rule,
// applied reactively). It refuses when the component's layout is
// load-bearing (fixed-partition operators, partition-mapped fan-ins,
// sources, already-materialized members) — a single giant group stays an
// OOM, exactly as the paper observes.
func (j *job) raiseParts(f *stageFailure) (string, bool) {
	oom := f.oom
	if oom == nil || oom.Limit <= 0 {
		return "", false
	}
	members, ok := j.narrowComponent(f.root)
	if !ok {
		return "", false
	}
	factor := oomRaiseFactor(oom)
	already := j.raised[f.root]
	if already == 0 {
		already = 1
	}
	if already*factor > maxPartsRaise {
		return "", false
	}
	j.raised[f.root] = already * factor
	old := f.root.parts
	newParts := old * factor
	for _, m := range members {
		m.parts = newParts
		for i := range m.deps {
			m.deps[i].childParts = newParts
		}
		if m.pkey != nil {
			// Fresh copy: nodes outside the component sharing the old
			// partInfo pointer keep their (still true) old layout claim.
			m.pkey = &partInfo{keyType: m.pkey.keyType, parts: newParts}
		}
		j.purgeNode(m)
	}
	j.s.feedback.BoostParts(factor)
	j.s.obs.Decide(obs.Decision{
		Rule:   "partitions",
		Choice: fmt.Sprintf("%d", newParts),
		Forced: true,
		Why: fmt.Sprintf("retried-after-OOM: %q overflowed a machine at %d parts (%d bytes over a %d-byte budget)",
			f.root.label, old, oom.Bytes, oom.Limit),
	})
	return fmt.Sprintf("re-lowered(parts %d→%d)", old, newParts), true
}

// narrowComponent collects the closure of identity-narrow edges around
// root — the set of nodes that must change partition count together for
// the DAG to stay consistent — or reports that raising partitions is not
// applicable.
func (j *job) narrowComponent(root *node) ([]*node, bool) {
	comp := map[*node]bool{root: true}
	queue := []*node{root}
	var members []*node
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		members = append(members, m)
		if m.fixedParts || m.parts != root.parts || len(m.deps) == 0 {
			return nil, false
		}
		if _, onFrontier := j.front[m]; onFrontier {
			return nil, false // already materialized at the old layout
		}
		m.cacheMu.Lock()
		hasCache := m.cacheData != nil
		children := append([]*node(nil), m.children...)
		m.cacheMu.Unlock()
		if hasCache {
			return nil, false
		}
		for i := range m.deps {
			d := &m.deps[i]
			if d.kind != depNarrow {
				continue
			}
			if d.narrowMap != nil {
				return nil, false // partition-mapped fan-in owns its layout
			}
			if !comp[d.parent] {
				comp[d.parent] = true
				queue = append(queue, d.parent)
			}
		}
		for _, c := range children {
			for i := range c.deps {
				d := &c.deps[i]
				if d.parent != m || d.kind != depNarrow {
					continue
				}
				if d.narrowMap != nil {
					return nil, false
				}
				if !comp[c] {
					comp[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	return members, true
}

// oomRaiseFactor picks the power-of-two partition multiplier that brings
// the overflowing machine's wave pressure under budget with 2x headroom.
func oomRaiseFactor(oom *cluster.OOMError) int {
	f := 2
	need := 2 * float64(oom.Bytes) / float64(oom.Limit)
	for float64(f) < need && f < maxPartsRaise {
		f *= 2
	}
	return f
}

// rewire splices repl into the DAG in place of old: every consumer dep
// pointing at old is repointed at repl in place, so dataset handles held
// by user code and later jobs see the re-lowered operator.
func rewire(old, repl *node) {
	old.cacheMu.Lock()
	children := old.children
	old.children = nil
	old.cacheMu.Unlock()
	for _, c := range children {
		for i := range c.deps {
			if c.deps[i].parent == old {
				c.deps[i].parent = repl
			}
		}
	}
	repl.cacheMu.Lock()
	repl.children = append(repl.children, children...)
	repl.cacheMu.Unlock()
}

// purgeNode drops the job-level state derived from n under its old
// lowering: routed shuffle blocks, fan-in memo entries and once values.
// Pinned broadcasts are NOT dropped here — broadcast content is partition
// independent; demotion unpins explicitly via unpin.
func (j *job) purgeNode(n *node) {
	j.onceVals.Delete(n.id)
	j.memo.Range(func(k, _ any) bool {
		if k.(memoKey).n == n {
			j.memo.Delete(k)
		}
		return true
	})
	for i := range n.deps {
		delete(j.blocks, &n.deps[i])
	}
}

// unpin releases the broadcast pinned for dep d, if any.
func (j *job) unpin(d *dep) {
	if b, ok := j.bcastBytes[d]; ok {
		j.s.exec.Unpin(b)
		delete(j.bcastBytes, d)
	}
	delete(j.bcast, d)
}
