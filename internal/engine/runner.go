package engine

import (
	"fmt"

	"matryoshka/internal/cluster"
	"matryoshka/internal/engine/plan"
)

// This file is the stage-graph runner: the resumable half of job
// execution. The job's state between stage launches is its frontier — the
// set of stage roots already materialized, each held as a checkpoint with
// the cost provenance of the attempt that produced it. Launching a stage
// yields a structured stageResult instead of an error bubbling up a
// recursion, so a failure (OOM, exhausted retries) carries everything the
// adaptive recovery loop (recover.go) needs to re-lower the offending
// subplan and resume from the frontier.

// checkpoint is one completed entry of the job's stage frontier: the
// materialized partitions of a stage root plus the provenance of how they
// were produced.
type checkpoint struct {
	data []Batch
	// rep is the simulator's account of the successful attempt (zero for
	// adopted entries).
	rep cluster.StageReport
	// adopted marks entries served from a pinned node cache rather than
	// launched in this job.
	adopted bool
}

// stageResult is the structured outcome of launching one stage: the
// simulator's report on success, a typed failure otherwise.
type stageResult struct {
	rep  cluster.StageReport
	fail *stageFailure
}

// stageFailure describes one failed stage or broadcast launch in terms the
// recovery loop can act on.
type stageFailure struct {
	root *node       // stage root whose materialization failed
	st   *plan.Stage // the planned stage
	// owner is, for broadcast failures, the consuming operator whose
	// lowering chose the broadcast — the site recovery demotes.
	owner *node
	// oom is the cluster's memory failure detail, nil for transient
	// failures.
	oom *cluster.OOMError
	// fetch is the machine-crash fetch failure detail, with lost the
	// boundary parent whose outputs were destroyed (chaos.go); recovery
	// rewinds the frontier along lineage instead of re-lowering.
	fetch *cluster.FetchFailedError
	lost  *node
	// transient marks injected-failure retry exhaustion: rerunning the
	// same stage may succeed, no re-lowering needed.
	transient bool
	// seconds is the virtual time charged to the failed attempt (it stays
	// charged across recovery, as on a real cluster).
	seconds float64
	// err is the wrapped error reported when the job does not (or cannot)
	// recover.
	err error
}

// run drives the job to completion: plan, run stages, and — when the
// session enables recovery — re-lower and replan on failure, resuming from
// the frontier. The first plan is recorded by the event spine; replans are
// recorded with the recovery event that caused them.
func (j *job) run(target *node) ([]Batch, error) {
	j.ep = j.s.buildExecPlan(target)
	if j.s.obs.Enabled() {
		j.s.obs.StartJob(fmt.Sprintf("#%d %s", target.id, target.label), j.ep.plan.String())
	}
	for {
		fail := j.runStages(target)
		if fail == nil {
			return j.front[target].data, nil
		}
		newTarget, ok := j.recover(fail, target)
		if !ok {
			return nil, fail.err
		}
		target = newTarget
		j.ep = j.s.buildExecPlanFrom(target, func(n *node) bool {
			_, done := j.front[n]
			return done
		}, j.recoveries)
	}
}

// runStages walks the demanded stage graph depth-first in the planner's
// boundary order — the same traversal the one-shot executor used, so
// non-failing runs charge the simulator identically — materializing every
// stage root that is not yet on the frontier. It returns the first
// failure, leaving the frontier at exactly the stages completed before it.
func (j *job) runStages(target *node) *stageFailure {
	var visit func(n *node) *stageFailure
	visit = func(n *node) *stageFailure {
		// A cancelled submission context (SubmitJobCtx) aborts the job at
		// the next stage boundary: no new stage launches, and the failure
		// carries the context error so recovery never retries it.
		if j.ctx != nil {
			if err := j.ctx.Err(); err != nil {
				return &stageFailure{root: n, err: fmt.Errorf("engine: job cancelled before stage %q: %w", n.label, err)}
			}
		}
		if _, ok := j.front[n]; ok {
			return nil
		}
		if n.cached {
			n.cacheMu.Lock()
			data := n.cacheData
			n.cacheMu.Unlock()
			if data != nil {
				j.front[n] = &checkpoint{data: data, adopted: true}
				return nil
			}
		}

		// The plan lists this stage's boundary deps; materialize their
		// parents first.
		st := j.ep.stageOf(n)
		for _, pd := range st.Boundary {
			if f := visit(j.ep.enode(pd.Parent)); f != nil {
				return f
			}
		}
		// Route shuffle blocks and pin broadcasts for the boundary deps.
		// Each is a cluster-side fetch of the parent's outputs first: if a
		// machine crash destroyed them, the stage fails with a fetch
		// failure and recovery rewinds the lost parents along lineage.
		for _, pd := range st.Boundary {
			d := j.ep.edep(pd)
			if f := j.checkFetch(d, n, st); f != nil {
				return f
			}
			switch d.kind {
			case depShuffle:
				j.buildBlocks(d)
			case depBroadcast:
				if f := j.pinBroadcast(d, n, st, j.ep.enode(pd.Owner)); f != nil {
					return f
				}
			}
		}
		return j.launchStage(n, st).fail
	}
	return visit(target)
}
