package engine

// Allocation-regression tests for the perf-critical paths this engine
// depends on: the monomorphic stable hashers must stay allocation-free,
// the fused narrow chain must not allocate per element, and the parallel
// shuffle router must allocate only its per-call bookkeeping. These run
// as part of `go test` so a regression (an interface conversion sneaking
// into a hasher, a closure capture boxing rows) fails CI, not a later
// profiling session. Skipped under -race: instrumentation allocates.

import (
	"runtime"
	"testing"
)

func skipIfInstrumented(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
}

// TestHashOfAllocFree: every monomorphic fast-path key type hashes with
// zero allocations. These hashes run once per element per shuffle — an
// allocation here multiplies across every shuffled record.
func TestHashOfAllocFree(t *testing.T) {
	skipIfInstrumented(t)
	s := poolSession(1)
	defer s.Close()
	var sink uint64
	cases := []struct {
		name string
		f    func()
	}{
		{"int", func() { sink += hashOf(s, 12345) }},
		{"int64", func() { sink += hashOf(s, int64(-7)) }},
		{"uint64", func() { sink += hashOf(s, uint64(99)) }},
		{"string", func() { sink += hashOf(s, "a moderately sized key string") }},
		{"pair-int-int", func() { sink += hashOf(s, Pair[int, int]{1, 2}) }},
		{"pair-int-int64", func() { sink += hashOf(s, Pair[int, int64]{1, 2}) }},
		{"pair-string-string", func() { sink += hashOf(s, Pair[string, string]{"ab", "cd"}) }},
		{"pair-string-int", func() { sink += hashOf(s, Pair[string, int]{"ab", 3}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(100, c.f); avg != 0 {
				t.Errorf("hashOf(%s) allocates %.1f per call, want 0", c.name, avg)
			}
		})
	}
	runtime.KeepAlive(sink)
}

// TestFusedNarrowPathAllocBound: a whole fused map∘filter∘map job over n
// elements stays within a fixed allocation budget that does not scale with
// n — the per-element cost of the narrow path is zero allocations. The
// unfused path allocates ~3 boxes per element (tens of thousands here);
// the bound below is two orders of magnitude under that, so any per-element
// allocation sneaking into the fused loop trips it immediately.
func TestFusedNarrowPathAllocBound(t *testing.T) {
	skipIfInstrumented(t)
	const n = 1 << 14
	data := seq(n)
	s := poolSession(1)
	defer s.Close()
	src := Parallelize(s, data, 8)
	job := func() {
		mapped := Map(src, func(v int) int { return v * 3 })
		kept := Filter(mapped, func(v int) bool { return v%8 != 0 })
		small := Map(kept, func(v int) int { return v & 255 })
		if _, err := Count(small); err != nil {
			t.Fatal(err)
		}
	}
	job()              // warm the session's pools and caches
	const budget = 600 // job/plan/stage machinery + 8 output partitions
	if avg := testing.AllocsPerRun(10, job); avg > budget {
		t.Errorf("fused narrow job allocates %.0f per run over %d elements, want <= %d", avg, n, budget)
	}
}

// TestRouteParallelAllocBound: the counting-pass router allocates exactly
// its bookkeeping (target cache and counts per source, one slice per
// non-empty block) and nothing per element.
func TestRouteParallelAllocBound(t *testing.T) {
	skipIfInstrumented(t)
	const nsrc, perSrc, nt = 8, 4096, 16
	parent := benchParent(nsrc, perSrc, false)
	d := benchDep(nt)
	s := poolSession(runtime.GOMAXPROCS(0))
	defer s.Close()
	s.routeParallel(d, parent) // warm the worker pool
	// targets outer + nsrc caches + counts + blocks outer + nt blocks,
	// plus pool-dispatch slack.
	const budget = 2*nsrc + nt + 16
	if avg := testing.AllocsPerRun(10, func() { s.routeParallel(d, parent) }); avg > budget {
		t.Errorf("routeParallel allocates %.0f per call, want <= %d", avg, budget)
	}
}
