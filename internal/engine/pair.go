package engine

// Pair is a key-value record, the unit of keyed operations (reduceByKey,
// groupByKey, join). It corresponds to Spark's 2-tuples in PairRDDs.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// KV constructs a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Val: v} }

// Tuple2 is an unkeyed 2-tuple (join payloads, unconstrained components).
type Tuple2[A, B any] struct {
	A A
	B B
}
