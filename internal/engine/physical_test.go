package engine

import "testing"

// Golden tests for plan formation as seen through ExplainPhysical. Node IDs
// are sequential per fresh session and the default test cluster has
// RecordWeight 1 (weights omitted), so the rendered plans are deterministic.

func explainGolden(t *testing.T, got, want string) {
	t.Helper()
	if got != want {
		t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExplainPhysicalUnionDiamond(t *testing.T) {
	s := testSession()
	base := Parallelize(s, ints(8), 4)
	a := Map(base, func(x int) int { return x * 2 })
	b := Filter(base, func(x int) bool { return x%2 == 0 })
	u := Union(a, b)

	// The chain threads through the union's first narrow input down to the
	// shared base; that base is the diamond's memo site.
	explainGolden(t, ExplainPhysical(u),
		"Stage 1 root=#4 union parts=8 chain=union<-map<-parallelize\n"+
			"Memo sites: #1 parallelize\n")
}

func TestExplainPhysicalConcatFanIn(t *testing.T) {
	s := testSession()
	d := Parallelize(s, ints(12), 6)
	c := Concat(Map(d, func(x int) int { return x + 1 }))

	// The all-partitions fan-in stays narrow: one stage, no memo (each
	// parent partition has exactly one consumer).
	explainGolden(t, ExplainPhysical(c),
		"Stage 1 root=#3 coalesce parts=1 chain=coalesce<-map<-parallelize\n")
}

func TestExplainPhysicalBroadcastJoin(t *testing.T) {
	s := testSession()
	small := Parallelize(s, []Pair[int, string]{{1, "a"}}, 1)
	big := Parallelize(s, []Pair[int, int]{{1, 10}, {2, 20}}, 4)
	j := JoinWith(small, big, JoinBroadcastLeft, 0)

	explainGolden(t, ExplainPhysical(j),
		"Stage 1 root=#1 parallelize parts=1\n"+
			"Stage 2 root=#3 broadcastJoin parts=2 chain=broadcastJoin<-[parallelize]\n"+
			"  <-broadcast Stage 1 (#1 parallelize)\n")
}

func TestExplainPhysicalShuffleBoundary(t *testing.T) {
	s := testSession()
	d := Parallelize(s, []Pair[string, int]{{"a", 1}, {"b", 2}, {"a", 3}}, 4)
	r := ReduceByKey(d, func(a, b int) int { return a + b })
	m := Map(r, func(p Pair[string, int]) int { return p.Val })

	// ReduceByKey plants a map-side combine (mapPartitions) before the
	// shuffle; Parallelize caps parts at len(data)=3.
	explainGolden(t, ExplainPhysical(m),
		"Stage 1 root=#2 mapPartitions parts=3 chain=mapPartitions<-parallelize\n"+
			"Stage 2 root=#4 map parts=8 chain=map<-reduceByKey<-[mapPartitions]\n"+
			"  <-shuffle Stage 1 (#2 mapPartitions)\n")
}

func TestExplainPhysicalLegacyModeDisablesMemo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 4
	cfg.DefaultParallelism = 8
	cfg.LegacyExec = true
	s := mustSession(cfg)

	base := Parallelize(s, ints(8), 4)
	u := Union(Map(base, func(x int) int { return x }), base)

	// Same diamond as above, but the serial reference executor re-evaluates
	// shared parents, so the plan must carry no memo sites.
	explainGolden(t, ExplainPhysical(u),
		"Stage 1 root=#3 union parts=8 chain=union<-map<-parallelize\n")
}
