package engine

import (
	"hash/maphash"
	"reflect"
	"strings"
	"testing"

	"matryoshka/internal/obs"
)

// fusePair runs the same dataset build on two sessions sharing one hash
// seed — fusion disabled and enabled — and asserts the collected output,
// virtual clock, and simulated cluster stats are bit-identical. This is
// the fused path's contract: it may change wall-clock and host
// allocations, never results or simulated accounting.
func fusePair[T any](t *testing.T, build func(s *Session) Dataset[T]) {
	t.Helper()
	unf := poolSession(4)
	unf.noFuse = true
	defer unf.Close()
	fus := poolSession(4)
	fus.seed = unf.seed
	defer fus.Close()

	a, err1 := Collect(build(unf))
	b, err2 := Collect(build(fus))
	if err1 != nil || err2 != nil {
		t.Fatalf("collect errs: unfused %v, fused %v", err1, err2)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("outputs differ\nunfused: %v\nfused:   %v", a, b)
	}
	if uc, fc := unf.Clock(), fus.Clock(); uc != fc {
		t.Fatalf("clocks differ: unfused %v, fused %v", uc, fc)
	}
	if us, fs := unf.Stats(), fus.Stats(); us != fs {
		t.Fatalf("stats differ: unfused %+v, fused %+v", us, fs)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestFusedMatchesUnfusedChains covers every fusible operator in chains of
// varying shape, including expansion, whole-partition UDFs, id minting,
// shuffle consumers of fused output, and empty/degenerate partitions.
func TestFusedMatchesUnfusedChains(t *testing.T) {
	t.Run("map-filter-map", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[int] {
			d := Map(Parallelize(s, seq(500), 4), func(v int) int { return v * 3 })
			return Map(Filter(d, func(v int) bool { return v%2 == 0 }), func(v int) int { return v - 1 })
		})
	})
	t.Run("flatmap-expansion", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[int] {
			d := FlatMap(Parallelize(s, seq(200), 4), func(v int) []int { return []int{v, v + 1000} })
			return Filter(Map(d, func(v int) int { return v + 1 }), func(v int) bool { return v%3 != 0 })
		})
	})
	t.Run("mapPartitions", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[int] {
			d := Map(Parallelize(s, seq(300), 4), func(v int) int { return v ^ 5 })
			rev := MapPartitions(d, func(xs []int) []int {
				out := make([]int, 0, len(xs))
				for i := len(xs) - 1; i >= 0; i-- {
					out = append(out, xs[i])
				}
				return out
			})
			return Map(rev, func(v int) int { return v + 7 })
		})
	})
	t.Run("mapValues", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[Pair[int, int]] {
			kv := Map(Parallelize(s, seq(400), 4), func(v int) Pair[int, int] {
				return Pair[int, int]{Key: v % 16, Val: v}
			})
			return Filter(MapValues(kv, func(v int) int { return v * v }),
				func(p Pair[int, int]) bool { return p.Val%5 != 0 })
		})
	})
	t.Run("zip", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[Pair[uint64, int]] {
			d := Map(Parallelize(s, seq(250), 4), func(v int) int { return v * 2 })
			return Filter(ZipWithUniqueID(d), func(p Pair[uint64, int]) bool { return p.Key%2 == 0 })
		})
	})
	t.Run("into-shuffle", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[Pair[int, int]] {
			kv := Map(Parallelize(s, seq(600), 4), func(v int) Pair[int, int] {
				return Pair[int, int]{Key: v % 10, Val: v}
			})
			hot := Filter(kv, func(p Pair[int, int]) bool { return p.Val%4 != 0 })
			return ReduceByKey(hot, func(a, c int) int { return a + c })
		})
	})
	t.Run("filter-drops-everything", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[int] {
			d := Filter(Parallelize(s, seq(100), 4), func(int) bool { return false })
			return Map(d, func(v int) int { return v })
		})
	})
	t.Run("mostly-empty-partitions", func(t *testing.T) {
		fusePair(t, func(s *Session) Dataset[int] {
			d := Map(Parallelize(s, seq(3), 8), func(v int) int { return v + 1 })
			return Filter(d, func(v int) bool { return v > 0 })
		})
	})
}

// TestFusionSegmentsAtCap: a chain longer than maxFuseOps splits into
// segments at the cap, each fused on its own, with identical results.
func TestFusionSegmentsAtCap(t *testing.T) {
	fusePair(t, func(s *Session) Dataset[int] {
		d := Parallelize(s, seq(200), 4)
		for i := 0; i < maxFuseOps+5; i++ {
			d = Map(d, func(v int) int { return v + 1 })
		}
		return d
	})
}

// TestFusionBreaksAtCachedIntermediate: a .Cache() mark in mid-chain makes
// the cached node a materialization site — fusion must not run through it
// (the cached partitions have to exist for reuse), and a second job served
// from the cache must agree bit-for-bit with the unfused run.
func TestFusionBreaksAtCachedIntermediate(t *testing.T) {
	run := func(noFuse bool, seed *maphash.Seed) ([]int, []int, float64, maphash.Seed) {
		s := poolSession(4)
		s.noFuse = noFuse
		if seed != nil {
			s.seed = *seed
		}
		defer s.Close()
		mid := Map(Parallelize(s, seq(300), 4), func(v int) int { return v * 2 }).Cache()
		top1 := Filter(mid, func(v int) bool { return v%3 == 0 })
		top2 := Map(mid, func(v int) int { return v + 1 })
		a, err1 := Collect(top1)
		b, err2 := Collect(top2) // served from mid's cache
		if err1 != nil || err2 != nil {
			t.Fatalf("collect errs %v %v", err1, err2)
		}
		return a, b, s.Clock(), s.seed
	}
	ua, ub, uclock, seed := run(true, nil)
	fa, fb, fclock, _ := run(false, &seed)
	if !reflect.DeepEqual(ua, fa) || !reflect.DeepEqual(ub, fb) {
		t.Fatal("cached-intermediate outputs differ between fused and unfused")
	}
	if uclock != fclock {
		t.Fatalf("clocks differ: unfused %v, fused %v", uclock, fclock)
	}
}

// TestFusionDiamondBreaksChain: an intermediate with two consumers is a
// fan-in memo site; each branch may fuse above it, but not through it.
func TestFusionDiamondBreaksChain(t *testing.T) {
	fusePair(t, func(s *Session) Dataset[int] {
		base := Map(Parallelize(s, seq(300), 4), func(v int) int { return v + 10 })
		left := Map(base, func(v int) int { return v * 2 })
		right := Filter(base, func(v int) bool { return v%2 == 1 })
		return Union(left, right)
	})
}

// TestFusedExplainMarker: EXPLAIN ANALYZE renders active chains as
// "fused(a∘b∘c) ×k ops" on the stage that runs them, and renders nothing
// when fusion is off.
func TestFusedExplainMarker(t *testing.T) {
	report := func(noFuse bool) string {
		rec := obs.NewRecorder()
		cfg := DefaultConfig()
		cfg.Cluster.Machines = 4
		cfg.Cluster.CoresPerMachine = 4
		cfg.DefaultParallelism = 4
		cfg.Obs = rec
		cfg.NoFuse = noFuse
		s := mustSession(cfg)
		defer s.Close()
		d := Map(Parallelize(s, seq(100), 4), func(v int) int { return v + 1 })
		top := Map(Filter(d, func(v int) bool { return v%2 == 0 }), func(v int) int { return v * 2 })
		if _, err := Count(top); err != nil {
			t.Fatal(err)
		}
		return rec.Report()
	}
	fused := report(false)
	if !strings.Contains(fused, "fused(map∘filter∘map) ×3 ops") {
		t.Errorf("EXPLAIN ANALYZE missing fused chain marker:\n%s", fused)
	}
	unfused := report(true)
	if strings.Contains(unfused, "fused(") {
		t.Errorf("NoFuse session still reports fused chains:\n%s", unfused)
	}
}

// TestRecoveryReplanKeepsFusionIdentity: the OOM-recovery replan rebuilds
// the exec plan and recompiles fusion against the new frontier; the
// re-lowered run must stay bit-identical to its unfused twin.
func TestRecoveryReplanKeepsFusionIdentity(t *testing.T) {
	run := func(noFuse bool) (map[int]int64, float64) {
		cfg, _ := recoverConfig(1 << 20)
		cfg.NoFuse = noFuse
		s := mustSession(cfg)
		defer s.Close()
		small := Parallelize(s, makePairs(2000), 4)
		big := Parallelize(s, makePairs(10), 2)
		got, err := Collect(JoinWith(small, big, JoinBroadcastLeft, 0))
		if err != nil {
			t.Fatalf("Collect with recovery: %v", err)
		}
		vals := make(map[int]int64, len(got))
		for _, p := range got {
			vals[p.Key] = p.Val.B
		}
		return vals, s.Clock()
	}
	uvals, uclock := run(true)
	fvals, fclock := run(false)
	if !reflect.DeepEqual(uvals, fvals) {
		t.Fatalf("recovered join results differ: unfused %v, fused %v", uvals, fvals)
	}
	if uclock != fclock {
		t.Fatalf("recovered clocks differ: unfused %v, fused %v", uclock, fclock)
	}
}
