package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"matryoshka/internal/sizeest"
)

// poolSession returns a session with an explicit host worker count.
func poolSession(workers int) *Session {
	cfg := DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 4
	cfg.DefaultParallelism = 8
	cfg.HostParallelism = workers
	return mustSession(cfg)
}

// randomParent builds a random materialized partition structure of ints.
// Partitions are typed int batches except an occasional boxed fallback, so
// routing tests cover the homogeneous typed path, the mixed-shape path,
// and the all-boxed path.
func randomParent(rng *rand.Rand, maxSrc, maxLen int) []Batch {
	parent := make([]Batch, rng.Intn(maxSrc+1))
	for i := range parent {
		part := make([]int, rng.Intn(maxLen+1))
		for k := range part {
			part[k] = rng.Intn(1 << 20)
		}
		if rng.Intn(4) == 0 {
			boxed := make([]any, len(part))
			for k, v := range part {
				boxed[k] = v
			}
			parent[i] = boxedBatch(boxed)
		} else {
			parent[i] = batchOf(part, len(part))
		}
	}
	return parent
}

// TestRouteParallelMatchesSerial asserts that the parallel router produces
// blocks identical (content and order) to the retained serial reference,
// over randomized partition structures, partition counts, and both
// value-hash and positional partitioners.
func TestRouteParallelMatchesSerial(t *testing.T) {
	s := poolSession(8)
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		parent := randomParent(rng, 9, 60)
		d := &dep{kind: depShuffle, childParts: 1 + rng.Intn(17)}
		if trial%2 == 0 {
			d.partitioner = func(e any, n int) int {
				return int(uint32(e.(int))*2654435761) % n
			}
		} else {
			d.posPartitioner = func(src, idx, n int) int { return (src + idx) % n }
		}
		want := routeSerial(d, parent)
		got := s.routeParallel(d, parent)
		if len(got) != len(want) {
			t.Fatalf("trial %d: block count %d, want %d", trial, len(got), len(want))
		}
		for p := range want {
			if batchLen(want[p]) == 0 && batchLen(got[p]) == 0 {
				continue // the router leaves empty blocks nil
			}
			if !reflect.DeepEqual(got[p], want[p]) {
				t.Fatalf("trial %d: block %d differs: got %v want %v", trial, p, got[p], want[p])
			}
		}
	}
}

// TestFlattenParallelMatchesSerial covers the broadcast flatten path.
func TestFlattenParallelMatchesSerial(t *testing.T) {
	s := poolSession(8)
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		parent := randomParent(rng, 9, 60)
		want := flattenSerial(parent)
		got := s.flattenParallel(parent)
		if batchLen(want) == 0 && batchLen(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: flatten differs", trial)
		}
	}
}

// TestSingleWorkerRoutesSerial is the 1-core pessimization audit: on a
// single-worker session, routeParallel and flattenParallel must take the
// serial path outright — pool dispatch would be pure overhead with nothing
// to overlap it with. The session's pool is closed up front, so any
// dispatch attempt panics instead of silently passing.
func TestSingleWorkerRoutesSerial(t *testing.T) {
	s := poolSession(1)
	s.Close()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		parent := randomParent(rng, 6, 50)
		d := &dep{kind: depShuffle, childParts: 1 + rng.Intn(9)}
		d.partitioner = func(e any, n int) int {
			return int(uint32(e.(int))*2654435761) % n
		}
		want := routeSerial(d, parent)
		got := s.routeParallel(d, parent)
		for p := range want {
			if batchLen(want[p]) == 0 && batchLen(got[p]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got[p], want[p]) {
				t.Fatalf("trial %d: block %d differs on 1-worker session", trial, p)
			}
		}
		if want, got := flattenSerial(parent), s.flattenParallel(parent); batchLen(want) != 0 || batchLen(got) != 0 {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: flatten differs on 1-worker session", trial)
			}
		}
	}
	// Above flattenCutoff the size heuristic alone no longer routes to the
	// serial sweep; only the single-worker guard keeps the pool out of it.
	big := make([]int, flattenCutoff)
	parent := []Batch{batchOf(big, len(big)), batchOf([]int{1, 2, 3}, 3)}
	if got := s.flattenParallel(parent); got.Len() != flattenCutoff+3 {
		t.Fatalf("big flatten length %d, want %d", got.Len(), flattenCutoff+3)
	}
}

// TestEstPartitionBytesMatchesBoxedReference pins estPartitionBytes — for
// typed and boxed batches alike — to what the boxed estimator computed:
// a sample built by appending every step-th element into a
// make([]any, 0, sampleN), sized with sizeest.OfSlice, scaled by n/count.
// The subtle case is n not a multiple of step: the walk then yields up to
// 2*sampleN-1 positions and the boxed append grew its sample past
// sampleN, to whatever capacity the runtime's size classes dictate (not a
// clean doubling) — that capacity was observable in every simulated
// shuffle-bytes and residency number, so the batch path must reproduce it
// exactly. A one-off regression here shifted the sec9-chaos sweep by ~6%.
func TestEstPartitionBytesMatchesBoxedReference(t *testing.T) {
	boxedRef := func(part []any) int64 {
		n := len(part)
		if n == 0 {
			return 0
		}
		if n <= sampleN {
			return sizeest.OfSlice(part)
		}
		step := n / sampleN
		sample := make([]any, 0, sampleN)
		for i := 0; i < n; i += step {
			sample = append(sample, part[i])
		}
		return sizeest.OfSlice(sample) * int64(n) / int64(len(sample))
	}
	ns := []int{0, 1, 5, 31, 32, 33, 63, 64, 65, 100, 127, 1000, 4095, 4096, 10000}
	for _, n := range ns {
		vals := make([]Pair[int, int64], n)
		// The reference slice is grown one append at a time from nil, the
		// way routeSerial built shuffle blocks: for n <= sampleN the whole
		// slice (capacity included) is what the boxed estimator measured.
		var boxed []any
		for i := range vals {
			vals[i] = Pair[int, int64]{i, int64(3 * i)}
			boxed = append(boxed, vals[i])
		}
		if n <= sampleN && cap(boxed) != blockCap(n) {
			t.Fatalf("n=%d: append-grown cap %d, blockCap says %d", n, cap(boxed), blockCap(n))
		}
		want := boxedRef(boxed)
		// Typed batches report the boxed append-grown capacity for small
		// blocks (blockCap); above sampleN the block capacity is never
		// observed, only the sample's.
		if got := estPartitionBytes(batchOf(vals, blockCap(n))); got != want {
			t.Errorf("n=%d: typed estPartitionBytes=%d, boxed reference=%d", n, got, want)
		}
		if got := estPartitionBytes(boxedBatch(append(make([]any, 0, blockCap(n)), boxed...))); got != want {
			t.Errorf("n=%d: boxed-batch estPartitionBytes=%d, boxed reference=%d", n, got, want)
		}
	}
}

// materializedParts runs a job for d and returns the raw partitions.
func materializedParts[T any](t *testing.T, d Dataset[T]) []Batch {
	t.Helper()
	parts, err := d.s.runJob(d.n)
	if err != nil {
		t.Fatalf("runJob: %v", err)
	}
	return parts
}

// TestRepartitionDeterministic asserts that Repartition routes every
// element to the same target partition across runs and across host worker
// counts, now that the target is a pure function of (source partition,
// element index).
func TestRepartitionDeterministic(t *testing.T) {
	var layouts [][]Batch
	for _, workers := range []int{1, 2, 8} {
		s := poolSession(workers)
		d := Repartition(Parallelize(s, ints(500), 7), 16)
		first := materializedParts(t, d)
		again := materializedParts(t, Repartition(Parallelize(s, ints(500), 7), 16))
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("workers=%d: two runs in one session differ", workers)
		}
		layouts = append(layouts, first)
		s.Close()
	}
	for i := 1; i < len(layouts); i++ {
		if !reflect.DeepEqual(layouts[i], layouts[0]) {
			t.Fatalf("partition layout differs between worker counts")
		}
	}
	// Round-robin should stay balanced: 500 elements into 16 partitions.
	for p, part := range layouts[0] {
		if batchLen(part) < 500/16-4 || batchLen(part) > 500/16+4 {
			t.Fatalf("partition %d badly balanced: %d elements", p, batchLen(part))
		}
	}
}

// TestNarrowFanInMemo asserts that a narrow parent consumed by several
// children (a diamond) or by several partitions of one child (Concat) is
// computed exactly once per partition, and that results stay correct.
func TestNarrowFanInMemo(t *testing.T) {
	t.Run("diamond", func(t *testing.T) {
		s := poolSession(4)
		defer s.Close()
		var calls atomic.Int64
		base := Map(Parallelize(s, ints(100), 8), func(x int) int {
			calls.Add(1)
			return x + 1
		})
		left := Filter(base, func(x int) bool { return x%2 == 0 })
		right := Map(base, func(x int) int { return -x })
		got := sortedCollect(t, Union(left, right), func(a, b int) bool { return a < b })
		if len(got) != 150 {
			t.Fatalf("len = %d, want 150", len(got))
		}
		if n := calls.Load(); n != 100 {
			t.Fatalf("base UDF ran %d times, want 100 (fan-in memo)", n)
		}
	})
	t.Run("concat-coalesce-chain", func(t *testing.T) {
		s := poolSession(4)
		defer s.Close()
		var calls atomic.Int64
		base := Map(Parallelize(s, ints(64), 8), func(x int) int {
			calls.Add(1)
			return x * 2
		})
		// base feeds both a Concat (one task reading all 8 partitions) and
		// a Coalesce chain — every base partition has fan-in 2.
		a := Concat(base)
		b := Coalesce(base, 3)
		got := sortedCollect(t, Union(a, b), func(x, y int) bool { return x < y })
		if len(got) != 128 {
			t.Fatalf("len = %d, want 128", len(got))
		}
		if n := calls.Load(); n != 64 {
			t.Fatalf("base UDF ran %d times, want 64 (fan-in memo)", n)
		}
	})
	t.Run("no-memo-single-consumer", func(t *testing.T) {
		s := poolSession(4)
		defer s.Close()
		var calls atomic.Int64
		base := Map(Parallelize(s, ints(50), 5), func(x int) int {
			calls.Add(1)
			return x
		})
		if _, err := Collect(Map(base, func(x int) int { return x + 1 })); err != nil {
			t.Fatal(err)
		}
		if n := calls.Load(); n != 50 {
			t.Fatalf("base UDF ran %d times, want 50", n)
		}
	})
}

// TestConcat checks order preservation and partition count.
func TestConcat(t *testing.T) {
	s := testSession()
	c := Concat(Parallelize(s, ints(40), 6))
	if c.NumPartitions() != 1 {
		t.Fatalf("parts = %d, want 1", c.NumPartitions())
	}
	got, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ints(40)) {
		t.Fatalf("concat reordered elements: %v", got)
	}
}

// TestOnceSharded asserts that job.once entries for different ids do not
// serialize on one lock: a build for id 1 blocks until a build for id 2
// has started, which deadlocks under the old job-wide mutex.
func TestOnceSharded(t *testing.T) {
	j := &job{}
	started1 := make(chan struct{})
	release1 := make(chan struct{})
	done := make(chan struct{})
	go func() {
		j.once(1, func() any {
			close(started1)
			<-release1
			return 1
		})
		close(done)
	}()
	<-started1
	finished2 := make(chan struct{})
	go func() {
		j.once(2, func() any { return 2 })
		close(finished2)
	}()
	select {
	case <-finished2:
		// id 2 built while id 1's build was still in flight: sharded.
	case <-time.After(5 * time.Second):
		t.Fatal("once(2) blocked behind once(1): job-wide serialization")
	}
	close(release1)
	<-done
	if v := j.once(1, func() any { return 99 }).(int); v != 1 {
		t.Fatalf("once(1) rebuilt: got %d", v)
	}
}

// randomDAG builds a reproducible random DAG over s (same rng sequence =>
// same structure) and returns its final dataset. It mixes narrow ops,
// diamonds, Coalesce/Concat/Union fan-in, Repartition, and hash shuffles.
func randomDAG(s *Session, seed int64) Dataset[int] {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int, 200+rng.Intn(200))
	for i := range data {
		data[i] = rng.Intn(10_000)
	}
	pool := []Dataset[int]{Parallelize(s, data, 2+rng.Intn(8))}
	pick := func() Dataset[int] { return pool[rng.Intn(len(pool))] }
	for step := 0; step < 12; step++ {
		var next Dataset[int]
		switch rng.Intn(7) {
		case 0:
			c := rng.Intn(100)
			next = Map(pick(), func(x int) int { return x + c })
		case 1:
			m := 2 + rng.Intn(5)
			next = Filter(pick(), func(x int) bool { return x%m != 0 })
		case 2:
			next = Union(pick(), pick())
		case 3:
			next = Coalesce(pick(), 1+rng.Intn(4))
		case 4:
			next = Concat(pick())
		case 5:
			next = Repartition(pick(), 1+rng.Intn(10))
		case 6:
			k := 1 + rng.Intn(50)
			red := ReduceByKey(KeyBy(pick(), func(x int) int { return x % k }),
				func(a, b int) int { return a + b })
			// Sort within each partition: reduceByKey emits in random map
			// order, and order-dependent downstream routing (Repartition)
			// would otherwise make partition CONTENTS — and so simulated
			// per-partition costs — nondeterministic run to run, a
			// pre-existing property of the engine unrelated to host
			// parallelism. Sorting restores full determinism so the test
			// can assert bit-identical accounting.
			next = MapPartitions(Values(red), func(in []int) []int {
				out := append([]int(nil), in...)
				sort.Ints(out)
				return out
			})
		}
		if rng.Intn(4) == 0 {
			next = next.Cache()
		}
		pool = append(pool, next)
	}
	// Union everything at the end so every branch is demanded, maximizing
	// shared narrow parents.
	out := pool[len(pool)-1]
	out = Union(out, pool[rng.Intn(len(pool))])
	return out
}

// TestRandomDAGLegacyEquivalence runs identical randomized DAGs on a
// legacy-mode session (serial routing, per-stage goroutines, no memo, no
// fusion), a parallel session with fusion disabled, and a parallel fused
// session, all sharing the same hash seed, asserting bit-identical
// materialized partitions, virtual clocks, and cluster stats. This is the
// "host-side only" guarantee: the parallel pipeline and the fused narrow
// chain change wall-clock, never simulated accounting.
func TestRandomDAGLegacyEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		ref := poolSession(1)
		ref.legacyExec = true
		unf := poolSession(8)
		unf.noFuse = true
		unf.seed = ref.seed // same hash routing on all sessions
		fus := poolSession(8)
		fus.seed = ref.seed

		refOut := randomDAG(ref, seed)
		refParts := materializedParts(t, refOut)
		refN, err := Count(refOut) // second action reuses caches, crosses job boundaries
		if err != nil {
			t.Fatalf("seed %d: legacy count err %v", seed, err)
		}
		for _, mode := range []struct {
			name string
			s    *Session
		}{{"parallel-unfused", unf}, {"parallel-fused", fus}} {
			out := randomDAG(mode.s, seed)
			if parts := materializedParts(t, out); !reflect.DeepEqual(refParts, parts) {
				t.Fatalf("seed %d: %s materialized partitions differ from legacy", seed, mode.name)
			}
			n, err := Count(out)
			if err != nil {
				t.Fatalf("seed %d: %s count err %v", seed, mode.name, err)
			}
			if n != refN {
				t.Fatalf("seed %d: %s count %d, legacy %d", seed, mode.name, n, refN)
			}
			if rc, mc := ref.Clock(), mode.s.Clock(); rc != mc {
				t.Fatalf("seed %d: virtual clocks differ: legacy %v %s %v", seed, rc, mode.name, mc)
			}
			if rs, ms := ref.Stats(), mode.s.Stats(); rs != ms {
				t.Fatalf("seed %d: cluster stats differ: legacy %+v %s %+v", seed, rs, mode.name, ms)
			}
			mode.s.Close()
		}
		ref.Close()
	}
}

// TestWorkerPoolParallelFor exercises the counter-based fan-out directly.
func TestWorkerPoolParallelFor(t *testing.T) {
	p := newWorkerPool(4)
	defer p.close()
	for _, n := range []int{0, 1, 3, 100} {
		var hits atomic.Int64
		seen := make([]int32, n)
		p.parallelFor(4, n, func(i int) {
			atomic.AddInt32(&seen[i], 1)
			hits.Add(1)
		})
		if hits.Load() != int64(n) {
			t.Fatalf("n=%d: %d calls", n, hits.Load())
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

// TestStagePanicPropagates keeps the old contract: a panicking task UDF
// surfaces as a job panic naming the task, and the pool survives for
// subsequent jobs.
func TestStagePanicPropagates(t *testing.T) {
	s := poolSession(4)
	defer s.Close()
	d := Map(Parallelize(s, ints(10), 4), func(x int) int {
		if x == 7 {
			panic("boom")
		}
		return x
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic from task UDF")
			}
		}()
		_, _ = Collect(d)
	}()
	// The session pool must still work after a task panic.
	got := sortedCollect(t, Map(Parallelize(s, ints(5), 2), func(x int) int { return x }), func(a, b int) bool { return a < b })
	if len(got) != 5 {
		t.Fatalf("pool unusable after panic: %v", got)
	}
}
