package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSubmitPanicIncludesStack: a panicking submitted job must surface as
// an error carrying the goroutine stack — the panic site is otherwise
// unrecoverable, since the job goroutine is gone when the caller looks.
func TestSubmitPanicIncludesStack(t *testing.T) {
	sess, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.SubmitJob(func() (any, error) {
		panic("kaboom in UDF")
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	_, err = h.Wait()
	if err == nil {
		t.Fatal("panicking job reported no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "kaboom in UDF") {
		t.Fatalf("error loses the panic value: %q", msg)
	}
	if !strings.Contains(msg, "goroutine") || !strings.Contains(msg, "submit_test.go") {
		t.Fatalf("error loses the stack (no goroutine header / panic site): %q", msg)
	}
}

// TestWaitCtx: an expired context returns ctx.Err() promptly without
// consuming the result — the job keeps running and a later Wait still
// sees its value.
func TestWaitCtx(t *testing.T) {
	sess, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	h, err := sess.SubmitJob(func() (any, error) {
		<-release
		return 42, nil
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, werr := h.WaitCtx(ctx); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("expired WaitCtx: got %v, want DeadlineExceeded", werr)
	}

	close(release)
	v, werr := h.Wait()
	if werr != nil || v != 42 {
		t.Fatalf("result lost after abandoned WaitCtx: v=%v err=%v", v, werr)
	}
	// A live context returns the result too.
	v, werr = h.WaitCtx(context.Background())
	if werr != nil || v != 42 {
		t.Fatalf("WaitCtx after completion: v=%v err=%v", v, werr)
	}
}
