package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// mustNew unwraps New for tests using known-valid configs.
func mustNew(c Config) *Simulator {
	s, err := New(c)
	if err != nil {
		panic(err)
	}
	return s
}

func testConfig() Config {
	c := DefaultConfig()
	c.Machines = 2
	c.CoresPerMachine = 2
	c.MemoryPerMachine = 1000
	c.JobLaunchOverhead = 1
	c.StageOverhead = 0.1
	c.TaskOverhead = 0.01
	c.MemoryOverheadFactor = 1
	return c
}

func TestMemorySharedWithinWave(t *testing.T) {
	s := mustNew(testConfig()) // 2 machines x 2 cores, 1000 bytes each
	// Four concurrent 600-byte tasks: two land on each machine -> 1200 > 1000.
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Compute: 1, Memory: 600}
	}
	if err := s.RunStage(tasks); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM from co-resident tasks", err)
	}
}

func TestFewTasksGetWholeMachine(t *testing.T) {
	s := mustNew(testConfig())
	// Two 900-byte tasks spread to the two machines: each fits alone.
	if err := s.RunStage([]Task{{Compute: 1, Memory: 900}, {Compute: 1, Memory: 900}}); err != nil {
		t.Fatalf("err = %v, want nil (one heavy task per machine)", err)
	}
}

func TestJobOverheadAccumulates(t *testing.T) {
	s := mustNew(testConfig())
	for i := 0; i < 5; i++ {
		s.StartJob()
	}
	if got := s.Clock(); math.Abs(got-5) > 1e-9 {
		t.Errorf("clock = %v, want 5", got)
	}
	if s.Stats().Jobs != 5 {
		t.Errorf("jobs = %d, want 5", s.Stats().Jobs)
	}
}

func TestStageMakespanPerfectlyParallel(t *testing.T) {
	s := mustNew(testConfig()) // 4 slots
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Compute: 1}
	}
	if err := s.RunStage(tasks); err != nil {
		t.Fatal(err)
	}
	// 4 tasks on 4 slots: makespan = 1 + taskOverhead, plus stage overhead.
	want := 0.1 + 1 + 0.01
	if got := s.Clock(); math.Abs(got-want) > 1e-9 {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestStageMakespanSerializesBeyondSlots(t *testing.T) {
	s := mustNew(testConfig()) // 4 slots
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Compute: 1}
	}
	if err := s.RunStage(tasks); err != nil {
		t.Fatal(err)
	}
	want := 0.1 + 2*(1+0.01) // two waves
	if got := s.Clock(); math.Abs(got-want) > 1e-9 {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestStragglerDominatesMakespan(t *testing.T) {
	s := mustNew(testConfig())
	tasks := []Task{{Compute: 10}, {Compute: 0.1}, {Compute: 0.1}, {Compute: 0.1}}
	if err := s.RunStage(tasks); err != nil {
		t.Fatal(err)
	}
	if got := s.Clock(); got < 10 {
		t.Errorf("clock = %v, want >= 10 (straggler)", got)
	}
	if got := s.Clock(); got > 10.5 {
		t.Errorf("clock = %v, want ~10.11", got)
	}
}

func TestTaskOOM(t *testing.T) {
	s := mustNew(testConfig()) // 1000 bytes per machine
	err := s.RunStage([]Task{{Compute: 1, Memory: 2000}})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	var oom *OOMError
	if !errors.As(err, &oom) || oom.Bytes != 2000 {
		t.Errorf("OOMError details wrong: %+v", oom)
	}
}

func TestBroadcastOOMAndResidency(t *testing.T) {
	s := mustNew(testConfig())
	if err := s.Broadcast(600); err != nil {
		t.Fatal(err)
	}
	// Broadcast shrinks the task budget.
	if err := s.RunStage([]Task{{Memory: 500}}); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("task over reduced budget: err = %v, want OOM", err)
	}
	// A second broadcast beyond the limit fails too.
	if err := s.Broadcast(600); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("second broadcast: err = %v, want OOM", err)
	}
	s.ReleaseBroadcasts()
	if err := s.RunStage([]Task{{Memory: 900}}); err != nil {
		t.Errorf("after release: err = %v, want nil", err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := mustNew(testConfig())
	s.StartJob()
	if err := s.Broadcast(500); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Clock() != 0 {
		t.Errorf("clock after reset = %v", s.Clock())
	}
	if st := s.Stats(); st.Jobs != 0 || st.Broadcasts != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	if err := s.RunStage([]Task{{Memory: 900}}); err != nil {
		t.Errorf("broadcast residency should be cleared: %v", err)
	}
}

func TestMakespanProperties(t *testing.T) {
	// Property: makespan >= max duration, makespan >= sum/slots,
	// makespan <= sum (never worse than fully serial).
	f := func(raw []uint16, slots8 uint8) bool {
		slots := int(slots8%16) + 1
		durations := make([]float64, len(raw))
		var sum, maxD float64
		for i, r := range raw {
			durations[i] = float64(r) / 100
			sum += durations[i]
			if durations[i] > maxD {
				maxD = durations[i]
			}
		}
		m := makespan(durations, slots)
		lower := math.Max(maxD, sum/float64(slots))
		return m >= lower-1e-9 && m <= sum+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreMachinesNeverSlower(t *testing.T) {
	durations := make([]float64, 100)
	for i := range durations {
		durations[i] = float64(i%7) + 0.5
	}
	prev := math.Inf(1)
	for slots := 1; slots <= 64; slots *= 2 {
		m := makespan(durations, slots)
		if m > prev+1e-9 {
			t.Errorf("makespan with %d slots = %v > previous %v", slots, m, prev)
		}
		prev = m
	}
}

func TestInvalidConfigReturnsError(t *testing.T) {
	if _, err := New(Config{Machines: 0, CoresPerMachine: 1, MemoryPerMachine: 1}); err == nil {
		t.Error("New with zero machines should return an error")
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), LargeConfig()} {
		if err := cfg.validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
		if cfg.Slots() <= 0 {
			t.Errorf("slots = %d", cfg.Slots())
		}
	}
	if LargeConfig().Slots() <= DefaultConfig().Slots() {
		t.Error("large cluster should have more slots")
	}
}

func TestFailureInjectionRetriesAndDeterminism(t *testing.T) {
	// A stage whose task exhausts its retries fails with a typed error;
	// callers (the engine's recovery loop) rerun it. Either way the rng
	// stream — and hence the clock — is deterministic across simulator
	// instances.
	run := func() (Stats, float64, int) {
		cfg := testConfig()
		cfg.TaskFailureRate = 0.3
		s := mustNew(cfg)
		stageFailures := 0
		for i := 0; i < 20; i++ {
			tasks := make([]Task, 10)
			for j := range tasks {
				tasks[j] = Task{Compute: 1}
			}
			for {
				err := s.RunStage(tasks)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrTaskRetriesExhausted) {
					t.Fatal(err)
				}
				stageFailures++
				if stageFailures > 1000 {
					t.Fatal("stage never completes")
				}
			}
		}
		return s.Stats(), s.Clock(), stageFailures
	}
	st1, c1, f1 := run()
	st2, c2, f2 := run()
	if st1.TaskRetries == 0 {
		t.Fatal("expected injected retries")
	}
	if st1.TaskRetries != st2.TaskRetries || c1 != c2 || f1 != f2 {
		t.Fatalf("failure injection must be deterministic: %v/%v/%v vs %v/%v/%v",
			st1.TaskRetries, c1, f1, st2.TaskRetries, c2, f2)
	}
	// Retries (and failed stage attempts) make the run slower than a
	// failure-free one.
	cfg := testConfig()
	s := mustNew(cfg)
	for i := 0; i < 20; i++ {
		tasks := make([]Task, 10)
		for j := range tasks {
			tasks[j] = Task{Compute: 1}
		}
		if err := s.RunStage(tasks); err != nil {
			t.Fatal(err)
		}
	}
	if c1 <= s.Clock() {
		t.Errorf("with failures %.2fs should exceed clean %.2fs", c1, s.Clock())
	}
}

func TestTaskOOMCarriesWaveMachineResident(t *testing.T) {
	s := mustNew(testConfig()) // 2x2, 1000 bytes per machine
	if err := s.Broadcast(200); err != nil {
		t.Fatal(err)
	}
	// Wave 1 (4 long, light tasks) fits; wave 2 has two 900-byte tasks
	// landing on machine 0 and 1 — each over the 800-byte reduced budget.
	tasks := []Task{
		{Compute: 2, Memory: 10}, {Compute: 2, Memory: 10},
		{Compute: 2, Memory: 10}, {Compute: 2, Memory: 10},
		{Compute: 1, Memory: 900}, {Compute: 1, Memory: 10},
	}
	err := s.RunStage(tasks)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want *OOMError", err)
	}
	if oom.Wave != 2 || oom.Machine != 0 || oom.Resident != 200 || oom.Limit != 800 {
		t.Errorf("OOM detail = %+v, want wave 2, machine 0, resident 200, limit 800", oom)
	}
	if oom.Bytes != 900 {
		t.Errorf("oom.Bytes = %d, want 900", oom.Bytes)
	}
}

func TestFailedStageChargesPartialMakespan(t *testing.T) {
	s := mustNew(testConfig()) // 4 slots
	// Wave 1: four 1s tasks, fits. Wave 2: a 2000-byte task OOMs.
	tasks := []Task{
		{Compute: 1}, {Compute: 1}, {Compute: 1}, {Compute: 1},
		{Compute: 0.5, Memory: 2000},
	}
	before := s.Clock()
	err := s.RunStage(tasks)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
	// The failed attempt still burned stage overhead + wave 1's makespan.
	want := 0.1 + (1 + 0.01)
	if got := s.Clock() - before; math.Abs(got-want) > 1e-9 {
		t.Errorf("failed-stage charge = %v, want %v", got, want)
	}
}

func TestRetriesExhaustedFailsStageWithCharge(t *testing.T) {
	cfg := testConfig()
	cfg.TaskFailureRate = 1 // every attempt fails
	s := mustNew(cfg)
	before := s.Clock()
	err := s.RunStage([]Task{{Compute: 1}})
	if !errors.Is(err, ErrTaskRetriesExhausted) {
		t.Fatalf("err = %v, want ErrTaskRetriesExhausted", err)
	}
	if errors.Is(err, ErrOutOfMemory) {
		t.Error("a transient task failure must not look like an OOM")
	}
	var tf *TaskFailureError
	if !errors.As(err, &tf) || tf.Wave != 1 || tf.Attempts != 2 {
		t.Errorf("TaskFailureError = %+v, want wave 1, 2 attempts (default MaxTaskRetries 1)", tf)
	}
	// Two failed attempts of a 1.01s task, plus stage overhead.
	want := 0.1 + 2*(1+0.01)
	if got := s.Clock() - before; math.Abs(got-want) > 1e-9 {
		t.Errorf("exhausted-retry charge = %v, want %v", got, want)
	}
	if st := s.Stats(); st.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1 (one retry launched before the cap)", st.TaskRetries)
	}
}

func TestMaxTaskRetriesZeroFailsOnFirstFailure(t *testing.T) {
	cfg := testConfig()
	cfg.TaskFailureRate = 1
	cfg.MaxTaskRetries = 0
	s := mustNew(cfg)
	err := s.RunStage([]Task{{Compute: 1}})
	var tf *TaskFailureError
	if !errors.As(err, &tf) || tf.Attempts != 1 {
		t.Fatalf("err = %v, want TaskFailureError after 1 attempt", err)
	}
}

func TestUnpinRestoresTaskBudget(t *testing.T) {
	s := mustNew(testConfig())
	if err := s.Broadcast(600); err != nil {
		t.Fatal(err)
	}
	if err := s.RunStage([]Task{{Memory: 500}}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("task over reduced budget: err = %v, want OOM", err)
	}
	s.Unpin(600)
	if err := s.RunStage([]Task{{Memory: 500}}); err != nil {
		t.Errorf("after Unpin: err = %v, want nil", err)
	}
}
