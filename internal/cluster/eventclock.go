package cluster

// This file holds the mechanisms the multi-tenant scheduler
// (internal/sched) builds on: a deterministic event-queue virtual clock
// that can interleave tasks from different jobs, hash-derived per-task
// duration skew (straggler injection), and the quantile trigger for
// speculative task re-execution. They live here — next to the cost model —
// because they are cluster-simulation primitives, not scheduling policy:
// the scheduler decides *what* to place and when to launch a backup copy;
// these types decide *when events happen* and *how long a task takes*,
// identically for every caller with the same seed.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Event is one scheduled occurrence on an EventClock. Key is an opaque
// payload handle chosen by the caller; Seq is the schedule order, which
// breaks ties between events at the same virtual time, so pop order is a
// total order that depends only on the sequence of Schedule calls — never
// on goroutine interleaving or map iteration.
type Event struct {
	Time float64
	Seq  uint64
	Key  uint64
}

// EventClock is a discrete-event virtual clock: a priority queue of
// events ordered by (time, schedule order). Unlike Simulator's
// wave-at-a-time clock, it can interleave individually timed tasks from
// many concurrent jobs. It is not safe for concurrent use; the scheduler
// serializes access under its own quiescence protocol.
type EventClock struct {
	now float64
	seq uint64
	h   eventHeap
}

// Now returns the current virtual time.
func (c *EventClock) Now() float64 { return c.now }

// Len returns the number of pending events.
func (c *EventClock) Len() int { return len(c.h) }

// Schedule enqueues an event at virtual time `at`. Scheduling in the past
// is a logic error in the caller's bookkeeping and panics rather than
// silently breaking monotonicity.
func (c *EventClock) Schedule(at float64, key uint64) {
	if at < c.now {
		panic(fmt.Sprintf("cluster: event scheduled at %.6f before clock %.6f", at, c.now))
	}
	c.seq++
	heap.Push(&c.h, Event{Time: at, Seq: c.seq, Key: key})
}

// Peek returns the earliest pending event without advancing the clock.
func (c *EventClock) Peek() (Event, bool) {
	if len(c.h) == 0 {
		return Event{}, false
	}
	return c.h[0], true
}

// Next pops the earliest pending event and advances the clock to its
// time.
func (c *EventClock) Next() (Event, bool) {
	if len(c.h) == 0 {
		return Event{}, false
	}
	ev := heap.Pop(&c.h).(Event)
	c.now = ev.Time
	return ev, true
}

// Drop removes the earliest pending event WITHOUT advancing the clock.
// This is the other half of lazy cancellation: a scheduler that
// invalidates scheduled events after the fact (the losing copy of a
// speculated task) peeks, recognizes the corpse, and drops it — if it
// used Next, a cancelled 8-second straggler would still drag the clock
// to its never-happening completion time.
func (c *EventClock) Drop() (Event, bool) {
	if len(c.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&c.h).(Event), true
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

var _ heap.Interface = (*eventHeap)(nil)

// Skew injects per-task duration skew: each task is independently a
// straggler with probability Rate, running Factor times its nominal
// duration. The draw is a pure hash of (Seed, the task's identity), so it
// is identical regardless of when — or on which goroutine — the task is
// placed. This models the machine-local causes of stragglers the paper's
// clusters exhibit (contended disks, background daemons), which is also
// why a speculative backup copy runs at the nominal duration: it lands on
// a different machine.
type Skew struct {
	Rate   float64 // probability a task straggles (0 disables)
	Factor float64 // duration multiplier for stragglers (> 1)
	Seed   uint64
}

// Stretch returns the duration multiplier for the task identified by ids:
// Factor with probability Rate, else 1. Deterministic in (Seed, ids).
func (k Skew) Stretch(ids ...uint64) float64 {
	if k.Rate <= 0 || k.Factor <= 1 {
		return 1
	}
	h := k.Seed ^ 0x9e3779b97f4a7c15
	for _, id := range ids {
		h = splitmix64(h ^ id)
	}
	// Top 53 bits → uniform [0, 1).
	u := float64(h>>11) / (1 << 53)
	if u < k.Rate {
		return k.Factor
	}
	return 1
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation used to derive per-task randomness from structured ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpecPolicy is the trigger for speculative task re-execution, modelled
// on Spark's spark.speculation.{quantile,multiplier}: once at least
// Quantile of a stage's tasks have finished, any still-running task whose
// elapsed time exceeds Multiplier times the Quantile-th completed
// duration gets a backup copy.
type SpecPolicy struct {
	Quantile     float64 // fraction of the stage that must have completed (default 0.75)
	Multiplier   float64 // elapsed-vs-quantile threshold (default 1.5)
	MinCompleted int     // floor on completed tasks before speculating (default 2)
}

// DefaultSpecPolicy mirrors Spark's defaults.
func DefaultSpecPolicy() SpecPolicy {
	return SpecPolicy{Quantile: 0.75, Multiplier: 1.5, MinCompleted: 2}
}

// withDefaults fills zero fields.
func (p SpecPolicy) withDefaults() SpecPolicy {
	d := DefaultSpecPolicy()
	if p.Quantile <= 0 || p.Quantile > 1 {
		p.Quantile = d.Quantile
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.MinCompleted <= 0 {
		p.MinCompleted = d.MinCompleted
	}
	return p
}

// Threshold reports the elapsed-time bar above which a running task of a
// stage with `total` tasks and the given completed durations should be
// speculated, and whether enough of the stage has finished to speculate
// at all.
func (p SpecPolicy) Threshold(completed []float64, total int) (float64, bool) {
	p = p.withDefaults()
	need := int(math.Ceil(p.Quantile * float64(total)))
	if need < p.MinCompleted {
		need = p.MinCompleted
	}
	if len(completed) < need || len(completed) == 0 {
		return 0, false
	}
	sorted := make([]float64, len(completed))
	copy(sorted, completed)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p.Quantile*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return p.Multiplier * sorted[idx], true
}
