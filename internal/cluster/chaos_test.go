package cluster

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// chaosConfig is a small cluster with an attached fault plan.
func chaosConfig(fp FaultPlan) Config {
	c := DefaultConfig()
	c.Machines = 2
	c.CoresPerMachine = 2
	c.MemoryPerMachine = 1 << 30
	c.Faults = fp
	return c
}

func TestFaultPlanHazardDeterministic(t *testing.T) {
	p := FaultPlan{MTBF: 50, Seed: 7}
	for m := 0; m < 3; m++ {
		for k := 0; k < 5; k++ {
			g1 := p.CrashGap(m, k)
			g2 := p.CrashGap(m, k)
			if g1 != g2 {
				t.Fatalf("gap(%d,%d) not deterministic: %g vs %g", m, k, g1, g2)
			}
			if g1 <= 0 || math.IsInf(g1, 0) || math.IsNaN(g1) {
				t.Fatalf("gap(%d,%d) = %g out of range", m, k, g1)
			}
		}
	}
	if p.CrashGap(0, 0) == p.CrashGap(1, 0) {
		t.Error("different machines drew identical first gaps")
	}
	other := FaultPlan{MTBF: 50, Seed: 8}
	if p.CrashGap(0, 0) == other.CrashGap(0, 0) {
		t.Error("different seeds drew identical gaps")
	}
	// The exponential mean should be in the right ballpark.
	var sum float64
	const draws = 2000
	for k := 0; k < draws; k++ {
		sum += p.CrashGap(0, k)
	}
	if mean := sum / draws; mean < 40 || mean > 60 {
		t.Errorf("hazard mean %g, want ~50", mean)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		fp   FaultPlan
		ok   bool
	}{
		{"zero", FaultPlan{}, true},
		{"hazard", FaultPlan{MTBF: 30}, true},
		{"explicit", FaultPlan{Events: []FaultEvent{{At: 1, Machine: 1, Kind: FaultCrash}}}, true},
		{"negative mtbf", FaultPlan{MTBF: -1}, false},
		{"negative repair", FaultPlan{MTBF: 5, Repair: -1}, false},
		{"machine out of range", FaultPlan{Events: []FaultEvent{{At: 1, Machine: 9, Kind: FaultCrash}}}, false},
		{"negative time", FaultPlan{Events: []FaultEvent{{At: -1, Machine: 0, Kind: FaultCrash}}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(chaosConfig(c.fp))
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid plan accepted")
			}
		})
	}
}

// TestCrashDestroysRegisteredOutputs: an output registered before a crash
// loses exactly the crashed machine's partitions, reported as a typed
// FetchFailedError; dropping and re-registering heals it.
func TestCrashDestroysRegisteredOutputs(t *testing.T) {
	sim, err := New(chaosConfig(FaultPlan{Events: []FaultEvent{
		{At: 5, Machine: 0, Kind: FaultCrash},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	id := sim.RegisterOutput(4) // machines 0,1,0,1
	if err := sim.CheckFetch(id); err != nil {
		t.Fatalf("fetch before crash: %v", err)
	}
	sim.Advance(10)
	err = sim.CheckFetch(id)
	var ff *FetchFailedError
	if !errors.As(err, &ff) {
		t.Fatalf("err = %v, want FetchFailedError", err)
	}
	if !errors.Is(err, ErrFetchFailed) {
		t.Error("FetchFailedError does not unwrap to ErrFetchFailed")
	}
	if ff.Machine != 0 || ff.Total != 4 || !reflect.DeepEqual(ff.Parts, []int{0, 2}) {
		t.Errorf("FetchFailedError = %+v", ff)
	}
	if st := sim.Stats(); st.MachineCrashes != 1 || st.FetchFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Repeated probes of the same lost output count one failure.
	_ = sim.CheckFetch(id)
	if st := sim.Stats(); st.FetchFailures != 1 {
		t.Errorf("FetchFailures = %d after re-probe, want 1", st.FetchFailures)
	}
	if sim.LiveMachines() != 1 {
		t.Errorf("live machines = %d, want 1", sim.LiveMachines())
	}
	// Recomputation registers a fresh output on the survivors.
	sim.DropOutput(id)
	id2 := sim.RegisterOutput(4)
	if err := sim.CheckFetch(id2); err != nil {
		t.Fatalf("fetch of recomputed output: %v", err)
	}
}

// TestStageRunsOnSurvivors: with one of two machines down, the same stage
// has half the slots and takes about twice as long; a rejoin restores it.
func TestStageRunsOnSurvivors(t *testing.T) {
	run := func(fp FaultPlan, advance float64) float64 {
		sim, err := New(chaosConfig(fp))
		if err != nil {
			t.Fatal(err)
		}
		sim.Advance(advance)
		before := sim.Clock()
		tasks := make([]Task, 8)
		for i := range tasks {
			tasks[i] = Task{Compute: 1}
		}
		if err := sim.RunStage(tasks); err != nil {
			t.Fatalf("RunStage: %v", err)
		}
		return sim.Clock() - before
	}
	full := run(FaultPlan{}, 1)
	degraded := run(FaultPlan{Events: []FaultEvent{{At: 0.5, Machine: 1, Kind: FaultCrash}}}, 1)
	if degraded <= 1.5*full {
		t.Errorf("degraded stage %.3fs vs full %.3fs, want ~2x", degraded, full)
	}
	rejoined := run(FaultPlan{Events: []FaultEvent{
		{At: 0.1, Machine: 1, Kind: FaultCrash},
		{At: 0.5, Machine: 1, Kind: FaultRejoin},
	}}, 1)
	if rejoined != full {
		t.Errorf("rejoined stage %.3fs vs full %.3fs, want equal", rejoined, full)
	}
}

// TestStageStallsUntilRejoin: with every machine down the stage waits for
// the first rejoin instead of failing; with none scheduled it fails with
// the typed dead-cluster error.
func TestStageStallsUntilRejoin(t *testing.T) {
	sim, err := New(chaosConfig(FaultPlan{Events: []FaultEvent{
		{At: 1, Machine: 0, Kind: FaultCrash},
		{At: 1, Machine: 1, Kind: FaultCrash},
		{At: 9, Machine: 0, Kind: FaultRejoin},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	sim.Advance(2)
	if err := sim.RunStage([]Task{{Compute: 1}}); err != nil {
		t.Fatalf("RunStage: %v", err)
	}
	if c := sim.Clock(); c < 10 {
		t.Errorf("clock %.3f, want >= 10 (stalled to the rejoin)", c)
	}

	dead, err := New(chaosConfig(FaultPlan{Events: []FaultEvent{
		{At: 1, Machine: 0, Kind: FaultCrash},
		{At: 1, Machine: 1, Kind: FaultCrash},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	dead.Advance(2)
	if err := dead.RunStage([]Task{{Compute: 1}}); !errors.Is(err, ErrNoLiveMachines) {
		t.Fatalf("err = %v, want ErrNoLiveMachines", err)
	}
}

// TestHazardFlapsDeterministically: a fixed-seed MTBF hazard produces the
// same crash/rejoin history — and the same clock — on two simulators.
func TestHazardFlapsDeterministically(t *testing.T) {
	run := func() ([]string, float64, Stats) {
		sim, err := New(chaosConfig(FaultPlan{MTBF: 3, Repair: 1, Seed: 42}))
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		sim.SetFaultObserver(func(at float64, machine int, kind, detail string) {
			events = append(events, kind)
		})
		for i := 0; i < 20; i++ {
			tasks := make([]Task, 4)
			for j := range tasks {
				tasks[j] = Task{Compute: 0.5}
			}
			if err := sim.RunStage(tasks); err != nil {
				t.Fatalf("stage %d: %v", i, err)
			}
		}
		return events, sim.Clock(), sim.Stats()
	}
	ev1, clock1, st1 := run()
	ev2, clock2, st2 := run()
	if !reflect.DeepEqual(ev1, ev2) || clock1 != clock2 || !reflect.DeepEqual(st1, st2) {
		t.Errorf("hazard runs differ: %v vs %v, clock %.6f vs %.6f", ev1, ev2, clock1, clock2)
	}
	if st1.MachineCrashes == 0 {
		t.Error("hazard injected no crashes over 20 stages")
	}
	if st1.MachineRejoins == 0 {
		t.Error("hazard crashes never rejoined")
	}
}

// TestResetRestoresFaultState: Reset rewinds the fault schedule along with
// the clock, so a reset simulator replays the same failures.
func TestResetRestoresFaultState(t *testing.T) {
	sim, err := New(chaosConfig(FaultPlan{Events: []FaultEvent{
		{At: 1, Machine: 0, Kind: FaultCrash},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	id := sim.RegisterOutput(2)
	sim.Advance(2)
	if sim.CheckFetch(id) == nil {
		t.Fatal("fetch after crash should fail")
	}
	sim.Reset()
	if sim.LiveMachines() != 2 {
		t.Errorf("live machines after reset = %d, want 2", sim.LiveMachines())
	}
	if err := sim.CheckFetch(id); err != nil {
		t.Errorf("reset did not clear outputs: %v", err)
	}
	sim.Advance(2)
	if sim.LiveMachines() != 1 {
		t.Error("reset simulator does not replay the crash")
	}
}
