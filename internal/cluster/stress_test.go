package cluster

import (
	"math"
	"sync"
	"testing"
)

// TestSimulatorConcurrentStageStress backs the package's "safe for
// concurrent use" claim with a -race witness: many goroutines hammer
// RunStageReport (plus broadcasts and clock reads) on one simulator, and
// every observation the mutex is supposed to guarantee is asserted —
// the clock never goes backwards from any goroutine's point of view, each
// stage's charge is visible in the clock delta around it, and the final
// clock equals the sum of all per-stage charges.
func TestSimulatorConcurrentStageStress(t *testing.T) {
	const (
		goroutines = 16
		stages     = 50
	)
	cfg := DefaultConfig()
	cfg.TaskFailureRate = 0.05 // exercise the rng under contention too
	cfg.MaxTaskRetries = 1000  // retries, not aborts
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		charged float64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tasks := make([]Task, 8+g)
			for i := range tasks {
				tasks[i] = Task{Compute: 0.01 * float64(i+1), Memory: 1 << 10}
			}
			last := sim.Clock()
			for i := 0; i < stages; i++ {
				before := sim.Clock()
				if before < last {
					t.Errorf("goroutine %d: clock went backwards: %.6f < %.6f", g, before, last)
					return
				}
				rep, err := sim.RunStageReport(tasks)
				if err != nil {
					t.Errorf("goroutine %d: stage %d: %v", g, i, err)
					return
				}
				after := sim.Clock()
				// The stage's own charge is at least visible; other
				// goroutines may have added more in between.
				if after < before+rep.Seconds-1e-9 {
					t.Errorf("goroutine %d: clock advanced %.6f for a %.6f-second stage", g, after-before, rep.Seconds)
					return
				}
				if err := sim.Broadcast(1 << 8); err != nil {
					t.Errorf("goroutine %d: broadcast: %v", g, err)
					return
				}
				last = after
				mu.Lock()
				charged += rep.Seconds
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	st := sim.Stats()
	if st.Stages != goroutines*stages {
		t.Errorf("stats.Stages = %d, want %d", st.Stages, goroutines*stages)
	}
	wantBroadcasts := goroutines * stages
	if st.Broadcasts != wantBroadcasts {
		t.Errorf("stats.Broadcasts = %d, want %d", st.Broadcasts, wantBroadcasts)
	}
	// All stage charges plus the broadcast charges account for the whole
	// clock (float tolerance: the summation orders differ).
	bcast := float64(wantBroadcasts) * float64(1<<8) * cfg.PerByteBroadcast
	if got := sim.Clock(); math.Abs(got-(charged+bcast)) > 1e-6*got {
		t.Errorf("clock = %.6f, want sum of charges %.6f", got, charged+bcast)
	}
}
