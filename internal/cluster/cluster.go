// Package cluster simulates a parallel compute cluster.
//
// The paper evaluates on physical clusters (25 machines in Sec. 9.1, 36 in
// Sec. 9.7). This package substitutes a deterministic simulator: the engine
// executes every operator for real (so results can be checked), while the
// simulator separately advances a virtual clock by the makespan that the
// job's tasks would take on a cluster of Machines×CoresPerMachine slots.
//
// The cost model captures exactly the effects the paper measures:
//
//   - per-job launch overhead (what sinks the inner-parallel workaround),
//   - per-task scheduling overhead (what amplifies inner-parallel on larger
//     clusters, Sec. 9.3),
//   - limited slots (what caps the outer-parallel workaround when there are
//     fewer groups than cores),
//   - per-machine memory (what OOMs outer-parallel/DIQL on big groups and
//     broadcast joins on big broadcasts).
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// ErrOutOfMemory reports that a task or broadcast exceeded a machine's
// memory budget. It is the simulator analogue of a Spark executor OOM.
var ErrOutOfMemory = errors.New("cluster: out of memory")

// OOMError wraps ErrOutOfMemory with enough detail to say *why* the wave
// did not fit — which wave, which machine, and how much of the budget was
// already pinned by broadcasts. The engine's recovery loop reads these
// fields to pick a re-lowering (raise partitions vs demote a broadcast).
type OOMError struct {
	What     string // "task" or "broadcast"
	Bytes    int64  // requested
	Limit    int64  // per-machine budget available (after pinned broadcasts)
	Wave     int    // 1-based scheduling wave that overflowed (task OOMs)
	Machine  int    // machine index holding the excess pressure (task OOMs)
	Resident int64  // broadcast bytes pinned on every machine at failure time
}

func (e *OOMError) Error() string {
	msg := fmt.Sprintf("cluster: out of memory: %s needs %d bytes, machine budget %d", e.What, e.Bytes, e.Limit)
	if e.What == "task" && e.Wave > 0 {
		msg += fmt.Sprintf(" (wave %d, machine %d)", e.Wave, e.Machine)
	}
	if e.Resident > 0 {
		msg += fmt.Sprintf(" (%d bytes broadcast-resident)", e.Resident)
	}
	return msg
}

func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// ErrTaskRetriesExhausted reports that an injected transient task failure
// repeated beyond Config.MaxTaskRetries, failing the whole stage — the
// Spark `spark.task.maxFailures` abort. It is distinct from ErrOutOfMemory:
// rerunning the same stage may succeed, so the engine's recovery loop
// retries the stage as-is instead of re-lowering it.
var ErrTaskRetriesExhausted = errors.New("cluster: task failed after exhausting retries")

// TaskFailureError wraps ErrTaskRetriesExhausted with the failing wave and
// attempt count.
type TaskFailureError struct {
	Wave     int // 1-based scheduling wave of the failing task
	Attempts int // failed attempts (first run + retries)
}

func (e *TaskFailureError) Error() string {
	return fmt.Sprintf("cluster: task failed %d times (wave %d), retries exhausted", e.Attempts, e.Wave)
}

func (e *TaskFailureError) Unwrap() error { return ErrTaskRetriesExhausted }

// Config describes the simulated cluster and its cost model. All durations
// are virtual seconds.
type Config struct {
	Machines         int   // number of worker machines
	CoresPerMachine  int   // task slots per machine
	MemoryPerMachine int64 // bytes available to tasks on one machine

	JobLaunchOverhead float64 // driver-side cost to launch one job
	StageOverhead     float64 // per-stage scheduling cost
	TaskOverhead      float64 // per-task launch/teardown cost
	PerElementCost    float64 // CPU cost to process one element in an operator
	// PerByteShuffle is the per-task cost of reading one shuffled byte.
	// It models each machine's NIC being shared by its task slots, so
	// shuffle time does NOT shrink with more partitions on the same
	// machines: cost ~= CoresPerMachine / per-machine bandwidth.
	PerByteShuffle   float64
	PerByteBroadcast float64 // driver-side cost per byte to broadcast to the cluster

	// RecordWeight is the simulation scale: how many real-world records
	// one simulated element stands for (>= 1). The engine multiplies
	// per-element work, shuffle bytes and memory estimates of scaled
	// datasets by it, so a laptop-sized simulation reports the costs of
	// the paper-sized workload. Datasets whose cardinality does not grow
	// with the input (lifting tags, per-group scalars) are marked
	// unscaled and keep weight 1.
	RecordWeight float64

	// TaskFailureRate injects transient task failures: each task attempt
	// fails with this probability and is retried, paying its cost again
	// (the speculative/retry behaviour of real clusters). Deterministic
	// per simulator instance. 0 disables injection.
	TaskFailureRate float64

	// MaxTaskRetries caps how often one task may be retried after an
	// injected failure before the whole stage fails with an
	// *TaskFailureError (Spark's spark.task.maxFailures). 0 means the
	// first failure aborts the stage.
	MaxTaskRetries int

	// MemoryOverheadFactor inflates the engine's raw data-size
	// estimates to resident in-memory size (deserialized object
	// headers, group buffers — the JVM blow-up that makes Spark
	// groupBys OOM long before raw bytes reach the heap limit). The
	// engine applies it to its own estimates before submitting task
	// memory; explicit working-set claims (compact arrays held by
	// sequential UDFs) are not inflated.
	MemoryOverheadFactor float64

	// Faults injects machine crashes and rejoins (chaos.go). The zero
	// value injects nothing, leaving every machine immortal.
	Faults FaultPlan
}

// DefaultConfig mirrors the paper's small cluster (Sec. 9.1): 25 machines,
// 16 cores and 32 GB each. The unit costs were calibrated so that the
// workloads in internal/tasks reproduce the relative shapes of the paper's
// figures (who wins, by what factor, where the crossovers are).
func DefaultConfig() Config {
	return Config{
		Machines:        25,
		CoresPerMachine: 16,
		// The paper dedicates 22 GB of each 32 GB machine to Spark.
		MemoryPerMachine:  22 << 30,
		JobLaunchOverhead: 0.7,
		StageOverhead:     0.05,
		TaskOverhead:      0.004,
		PerElementCost:    2e-7,
		// 16 task slots sharing the paper's 1 Gb NIC (Sec. 9.1):
		// 16 / 125 MB/s per shuffled byte per task.
		PerByteShuffle:       1.28e-7,
		PerByteBroadcast:     8e-9, // one pass out of a 1 Gb source
		RecordWeight:         1,
		MaxTaskRetries:       1,
		MemoryOverheadFactor: 14,
	}
}

// LargeConfig mirrors the larger cluster of Sec. 9.7: 36 machines with 40
// hardware threads and 100 GB Spark worker memory each.
func LargeConfig() Config {
	c := DefaultConfig()
	c.Machines = 36
	c.CoresPerMachine = 40
	c.MemoryPerMachine = 100 << 30
	// Xeon E5-2630V4-era machines: 10 Gb network, 40 slots sharing it.
	c.PerByteShuffle = 3.2e-8
	c.PerByteBroadcast = 8e-10
	return c
}

// Validate checks the configuration; the scheduler (internal/sched) and
// New both reject invalid configs through it.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	if c.Machines <= 0 || c.CoresPerMachine <= 0 {
		return fmt.Errorf("cluster: need positive machines (%d) and cores (%d)", c.Machines, c.CoresPerMachine)
	}
	if c.MemoryPerMachine <= 0 {
		return fmt.Errorf("cluster: need positive memory, got %d", c.MemoryPerMachine)
	}
	if err := c.Faults.Validate(c.Machines); err != nil {
		return err
	}
	return nil
}

// Slots returns the total number of parallel task slots.
func (c Config) Slots() int { return c.Machines * c.CoresPerMachine }

// Task is the cost of one simulated task.
type Task struct {
	Compute float64 // virtual seconds of CPU + shuffle work (excl. TaskOverhead)
	Memory  int64   // peak bytes held by the task
}

// Stats aggregates what ran on the simulated cluster.
type Stats struct {
	Jobs       int
	Stages     int
	Tasks      int
	Broadcasts int
	// TaskRetries counts injected transient failures that were retried.
	TaskRetries int
	// BusySeconds is the summed task time; Clock is the virtual makespan.
	BusySeconds float64
	// Fault-injection counters (chaos.go): machine transitions applied
	// and distinct shuffle outputs whose fetch failed after a crash.
	MachineCrashes int
	MachineRejoins int
	FetchFailures  int
}

// Simulator owns the virtual clock. It is safe for concurrent use; the
// engine submits whole stages at a time, which keeps accounting
// deterministic regardless of real execution interleaving.
type Simulator struct {
	mu       sync.Mutex
	cfg      Config
	clock    float64
	resident int64 // broadcast bytes currently pinned on every machine
	stats    Stats
	rng      *rand.Rand // failure injection; fixed seed for determinism

	// Machine-failure state (chaos.go).
	faults  faultState
	outputs map[OutputID]*output
	nextOut OutputID
	onFault func(at float64, machine int, kind, detail string)
}

// New creates a simulator, rejecting invalid configurations with an error
// that callers (the engine session constructor, harnesses) propagate
// instead of panicking.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(42)),
		faults: newFaultState(cfg.Faults, cfg.Machines),
	}, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Clock returns the current virtual time in seconds.
func (s *Simulator) Clock() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Stats returns a snapshot of the accumulated statistics.
func (s *Simulator) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset rewinds the clock and statistics, releasing pinned broadcasts.
func (s *Simulator) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = 0
	s.resident = 0
	s.stats = Stats{}
	s.rng = rand.New(rand.NewSource(42))
	s.faults = newFaultState(s.cfg.Faults, s.cfg.Machines)
	s.outputs = nil
	s.nextOut = 0
}

// Advance adds dt virtual seconds of driver-side time.
func (s *Simulator) Advance(dt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock += dt
}

// StartJob charges the per-job launch overhead and counts the job.
func (s *Simulator) StartJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Jobs++
	s.clock += s.cfg.JobLaunchOverhead
}

// StageReport is the simulator's structured account of one executed
// stage: what the list scheduler saw and how long the stage took. The
// engine feeds it into the observation spine (internal/obs).
type StageReport struct {
	Tasks       int
	Waves       int     // ceil(tasks / slots): scheduling waves
	Makespan    float64 // stage time excluding StageOverhead
	Seconds     float64 // clock delta: StageOverhead + Makespan
	BusySeconds float64 // summed task durations
	Retries     int     // injected transient failures in this stage
	MaxTaskSec  float64 // slowest task duration (incl. TaskOverhead)
	MaxTaskMem  int64   // largest task memory claim

	// The multi-tenant scheduler (internal/sched) fills the fields below;
	// the single-job Simulator leaves them zero. QueueWait is the virtual
	// time between stage submission and its first task starting (slot
	// contention from other tenants). The Spec* fields account speculative
	// straggler mitigation: backup copies launched, backups that finished
	// before the original, and the core·seconds burned by losing copies
	// (charged, as on a real cluster). PrefViolations counts tasks placed
	// off their locality-preferred machine.
	QueueWait      float64
	SpecLaunched   int
	SpecWon        int
	SpecWastedSec  float64
	PrefViolations int
}

// RunStage schedules tasks onto the cluster's slots; see RunStageReport.
func (s *Simulator) RunStage(tasks []Task) error {
	_, err := s.RunStageReport(tasks)
	return err
}

// RunStageReport schedules tasks onto the cluster's slots
// (longest-processing-time list scheduling), advances the clock by the
// resulting makespan plus the stage overhead, and reports what happened.
//
// Memory is modelled as shared per machine, as in Spark executors: tasks
// run in waves of up to Slots() at a time, heavy (long) tasks first and
// spread round-robin across machines; within a wave, the sum of a
// machine's resident task memory plus pinned broadcasts must fit the
// machine budget, or the stage fails with an *OOMError. This reproduces
// the Spark behaviours the paper reports: a few huge groups OOM even on
// an otherwise idle cluster, while the same total data in many small
// partitions runs fine.
//
// A failing stage is not free: the clock is charged the partial makespan
// of the waves that ran before the failure (plus the failing wave's work
// so far), matching a real cluster where an abort after N waves has
// already burned N waves of time. The report returned alongside the error
// carries that partial charge so callers can attribute it.
func (s *Simulator) RunStageReport(tasks []Task) (StageReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Stages++
	s.stats.Tasks += len(tasks)
	budget := s.cfg.MemoryPerMachine - s.resident
	rep := StageReport{Tasks: len(tasks)}

	// Faults take effect at stage boundaries: apply everything scheduled
	// up to now, then run the whole stage on the surviving machines (a
	// crash *during* the window destroys outputs when the next operation
	// advances past it — the in-flight stage itself already fetched its
	// inputs). If nothing is up, stall the clock until a rejoin.
	s.advanceFaults(s.clock)
	live, err := s.awaitLiveMachine()
	if err != nil {
		return rep, err
	}

	order := make([]Task, len(tasks))
	copy(order, tasks)
	sort.Slice(order, func(i, j int) bool { return order[i].Compute > order[j].Compute })

	slots := len(live) * s.cfg.CoresPerMachine
	if len(order) > 0 {
		rep.Waves = (len(order) + slots - 1) / slots
	}

	// partial accumulates the gang makespan of completed waves; on
	// failure the stage charges it (plus the failing wave's longest task
	// so far) instead of completing.
	var partial float64
	fail := func(err error) (StageReport, error) {
		rep.Makespan = partial
		rep.Seconds = s.cfg.StageOverhead + partial
		s.clock += rep.Seconds
		return rep, err
	}

	durations := make([]float64, 0, len(order))
	perMachine := make([]int64, len(live))
	for w := 0; w < len(order); w += slots {
		wave := order[w:min(w+slots, len(order))]
		waveIdx := w/slots + 1
		for i := range perMachine {
			perMachine[i] = 0
		}
		for i, t := range wave {
			perMachine[i%len(live)] += t.Memory
		}
		for i, m := range perMachine {
			if m > budget {
				return fail(&OOMError{What: "task", Bytes: m, Limit: budget,
					Wave: waveIdx, Machine: live[i], Resident: s.resident})
			}
		}
		var waveMax float64
		for _, t := range wave {
			d := t.Compute + s.cfg.TaskOverhead
			total := d
			if s.cfg.TaskFailureRate > 0 {
				failures := 0
				for s.rng.Float64() < s.cfg.TaskFailureRate {
					// Transient failure: the failed attempt's cost is
					// already in total. Retry from scratch — unless the
					// retry cap is hit, which fails the whole stage
					// (spark.task.maxFailures).
					failures++
					if failures > s.cfg.MaxTaskRetries {
						s.stats.BusySeconds += total
						rep.BusySeconds += total
						if total > waveMax {
							waveMax = total
						}
						partial += waveMax
						return fail(&TaskFailureError{Wave: waveIdx, Attempts: failures})
					}
					s.stats.TaskRetries++
					rep.Retries++
					total += d
				}
			}
			durations = append(durations, total)
			s.stats.BusySeconds += total
			rep.BusySeconds += total
			if total > waveMax {
				waveMax = total
			}
			if total > rep.MaxTaskSec {
				rep.MaxTaskSec = total
			}
			if t.Memory > rep.MaxTaskMem {
				rep.MaxTaskMem = t.Memory
			}
		}
		partial += waveMax
	}
	rep.Makespan = makespan(durations, slots)
	rep.Seconds = s.cfg.StageOverhead + rep.Makespan
	s.clock += rep.Seconds
	return rep, nil
}

// Broadcast pins bytes of data on every machine for the remainder of the
// job (until ReleaseBroadcasts) and charges the broadcast cost. It fails
// if the data does not fit next to what is already resident.
func (s *Simulator) Broadcast(bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceFaults(s.clock)
	s.stats.Broadcasts++
	if s.resident+bytes > s.cfg.MemoryPerMachine {
		return &OOMError{What: "broadcast", Bytes: bytes,
			Limit: s.cfg.MemoryPerMachine - s.resident, Resident: s.resident}
	}
	s.resident += bytes
	s.clock += float64(bytes) * s.cfg.PerByteBroadcast
	return nil
}

// Unpin releases bytes of pinned broadcast data before the job ends. The
// engine calls it when adaptive recovery re-lowers a broadcast consumer
// away, so the dropped broadcast stops pressuring later waves.
func (s *Simulator) Unpin(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resident -= bytes
	if s.resident < 0 {
		s.resident = 0
	}
}

// ReleaseBroadcasts unpins all broadcast data (end of job).
func (s *Simulator) ReleaseBroadcasts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resident = 0
}

// makespan computes the completion time of scheduling durations greedily
// (longest first) onto `slots` parallel slots.
func makespan(durations []float64, slots int) float64 {
	if len(durations) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	sorted := make([]float64, len(durations))
	copy(sorted, durations)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if len(sorted) <= slots {
		return sorted[0]
	}
	// Greedy assignment to the least-loaded slot via a small heap-free scan
	// would be O(n·slots); use a binary heap for larger inputs.
	h := newFloatHeap(slots)
	for _, d := range sorted {
		h.addToMin(d)
	}
	return h.max()
}

// floatHeap is a fixed-size min-heap of slot finish times.
type floatHeap struct{ a []float64 }

func newFloatHeap(n int) *floatHeap { return &floatHeap{a: make([]float64, n)} }

func (h *floatHeap) addToMin(d float64) {
	h.a[0] += d
	// Sift down.
	i := 0
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.a[l] < h.a[small] {
			small = l
		}
		if r < n && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			return
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
}

func (h *floatHeap) max() float64 {
	m := h.a[0]
	for _, v := range h.a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
