package cluster

import (
	"math"
	"testing"
)

func TestEventClockOrdersByTimeThenSeq(t *testing.T) {
	var c EventClock
	c.Schedule(3.0, 30)
	c.Schedule(1.0, 10)
	c.Schedule(2.0, 20)
	c.Schedule(1.0, 11) // same time as key 10, scheduled later
	var keys []uint64
	for {
		ev, ok := c.Next()
		if !ok {
			break
		}
		keys = append(keys, ev.Key)
	}
	want := []uint64{10, 11, 20, 30}
	if len(keys) != len(want) {
		t.Fatalf("popped %d events, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("pop[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
	if c.Now() != 3.0 {
		t.Errorf("clock = %f, want 3.0", c.Now())
	}
}

func TestEventClockDropDoesNotAdvance(t *testing.T) {
	var c EventClock
	c.Schedule(5.0, 1)
	c.Schedule(9.0, 2)
	if ev, ok := c.Drop(); !ok || ev.Key != 1 {
		t.Fatalf("Drop = %+v, %v; want key 1", ev, ok)
	}
	if c.Now() != 0 {
		t.Errorf("Drop advanced the clock to %f", c.Now())
	}
	if ev, ok := c.Next(); !ok || ev.Key != 2 || c.Now() != 9.0 {
		t.Errorf("Next after Drop = %+v, %v, clock %f; want key 2 at 9.0", ev, ok, c.Now())
	}
}

func TestEventClockRejectsPastEvents(t *testing.T) {
	var c EventClock
	c.Schedule(2.0, 1)
	c.Next()
	defer func() {
		if recover() == nil {
			t.Error("scheduling before the clock did not panic")
		}
	}()
	c.Schedule(1.0, 2)
}

func TestSkewDeterministicAndCalibrated(t *testing.T) {
	k := Skew{Rate: 0.25, Factor: 8, Seed: 7}
	stragglers := 0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		a := k.Stretch(1, 2, i)
		if a != k.Stretch(1, 2, i) {
			t.Fatalf("Stretch not deterministic for id %d", i)
		}
		switch a {
		case 8:
			stragglers++
		case 1:
		default:
			t.Fatalf("Stretch = %f, want 1 or 8", a)
		}
	}
	got := float64(stragglers) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("straggler rate = %.4f, want ~0.25", got)
	}
	if (Skew{}).Stretch(1) != 1 {
		t.Error("zero Skew should be the identity")
	}
	if (Skew{Rate: 1, Factor: 8}).Stretch(42) != 8 {
		t.Error("Rate 1 should always straggle")
	}
}

func TestSkewSeedChangesDraws(t *testing.T) {
	a := Skew{Rate: 0.5, Factor: 4, Seed: 1}
	b := Skew{Rate: 0.5, Factor: 4, Seed: 2}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Stretch(i) == b.Stretch(i) {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical straggler sets")
	}
}

func TestSpecPolicyThreshold(t *testing.T) {
	p := SpecPolicy{Quantile: 0.75, Multiplier: 1.5, MinCompleted: 2}

	if _, ok := p.Threshold([]float64{1, 1}, 8); ok {
		t.Error("2 of 8 completed should not trigger speculation at q=0.75")
	}
	// 6 of 8 = ceil(0.75*8): eligible; quantile of completed durations
	// [1..6] at 0.75 → index ceil(0.75*6)-1 = 4 → 5.0; threshold 7.5.
	thr, ok := p.Threshold([]float64{1, 2, 3, 4, 5, 6}, 8)
	if !ok {
		t.Fatal("6 of 8 completed should trigger speculation")
	}
	if thr != 7.5 {
		t.Errorf("threshold = %f, want 7.5", thr)
	}
	// MinCompleted floors tiny stages: 1 of 1 completed is below the
	// 2-task minimum.
	if _, ok := p.Threshold([]float64{1}, 1); ok {
		t.Error("a 1-task stage should never speculate with MinCompleted 2")
	}
	// Zero value falls back to the Spark-like defaults.
	if thr, ok := (SpecPolicy{}).Threshold([]float64{2, 2, 2}, 4); !ok || thr != 3 {
		t.Errorf("zero policy threshold = %f, %v; want 3, true", thr, ok)
	}
}

// TestEventClockDropEdgeCases covers the lazy-cancellation corners the
// scheduler leans on: dropping when everything already fired, draining
// the heap by Drop alone, and interleaving Drop with Schedule mid-
// dispatch without disturbing clock monotonicity.
func TestEventClockDropEdgeCases(t *testing.T) {
	var c EventClock

	// Drop on an empty clock reports absence, twice in a row.
	if _, ok := c.Drop(); ok {
		t.Error("Drop on an empty clock reported an event")
	}
	if _, ok := c.Drop(); ok {
		t.Error("second empty Drop reported an event")
	}

	// Drop after the last event fired: the heap is empty again.
	c.Schedule(1.0, 1)
	if ev, ok := c.Next(); !ok || ev.Key != 1 {
		t.Fatalf("Next = %+v, %v", ev, ok)
	}
	if _, ok := c.Drop(); ok {
		t.Error("Drop found an event after all fired")
	}
	if c.Now() != 1.0 {
		t.Errorf("clock = %f, want 1.0", c.Now())
	}

	// Double-drop drains a two-event heap without moving the clock.
	c.Schedule(2.0, 2)
	c.Schedule(3.0, 3)
	if ev, _ := c.Drop(); ev.Key != 2 {
		t.Errorf("first drop popped key %d, want 2", ev.Key)
	}
	if ev, _ := c.Drop(); ev.Key != 3 {
		t.Errorf("second drop popped key %d, want 3", ev.Key)
	}
	if c.Len() != 0 || c.Now() != 1.0 {
		t.Errorf("after double-drop: len=%d clock=%f, want 0 and 1.0", c.Len(), c.Now())
	}

	// Drop during dispatch: scheduling between Peek and Drop may change
	// the head, and Drop must remove the *current* head, not the peeked
	// one. The clock may then legally schedule at the dropped horizon.
	c.Schedule(5.0, 5)
	if ev, _ := c.Peek(); ev.Key != 5 {
		t.Fatalf("peek = key %d, want 5", ev.Key)
	}
	c.Schedule(4.0, 4) // new earlier head after the peek
	if ev, _ := c.Drop(); ev.Key != 4 {
		t.Errorf("Drop removed key %d, want the new head 4", ev.Key)
	}
	if ev, ok := c.Next(); !ok || ev.Key != 5 || c.Now() != 5.0 {
		t.Errorf("Next = %+v, %v, clock %f; want key 5 at 5.0", ev, ok, c.Now())
	}

	// Monotonicity survived every mixture above: time never went back,
	// and re-scheduling at exactly Now is allowed.
	c.Schedule(5.0, 6)
	if ev, _ := c.Next(); ev.Key != 6 || c.Now() != 5.0 {
		t.Errorf("same-time reschedule misfired: key %d at %f", ev.Key, c.Now())
	}
}
