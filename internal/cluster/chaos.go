package cluster

// This file adds machine failures to the simulator. The paper's substrate
// (Spark, Sec. 9) survives worker loss by recomputing lost partitions from
// lineage; to reproduce that behaviour the simulator must first be able to
// *lose* things. A FaultPlan crashes machines at explicit virtual times or
// via a seeded MTBF hazard; a crash destroys the shuffle outputs resident
// on that machine, so a later stage's fetch raises a typed
// *FetchFailedError that the engine's recovery loop turns into a lineage
// rewind (internal/engine/recover.go). Everything here is a pure function
// of (seed, ids): fixed-seed chaos runs are bit-identical.

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrFetchFailed reports that a stage tried to read shuffle outputs that
// were resident on a machine that has since crashed — the simulator
// analogue of Spark's FetchFailedException. The engine reacts by rewinding
// the lost parent stages along lineage, not by re-lowering the plan.
var ErrFetchFailed = errors.New("cluster: shuffle fetch failed")

// ErrNoLiveMachines reports that every machine is down and no rejoin is
// scheduled, so the cluster can never run another task. With an MTBF
// hazard machines always rejoin; only an explicit FaultPlan can strand the
// cluster like this.
var ErrNoLiveMachines = errors.New("cluster: all machines are down with no rejoin scheduled")

// FetchFailedError wraps ErrFetchFailed with the crashed machine and the
// partitions it took down. The engine names the lost parent stage when it
// renders the failure (the simulator only knows output handles).
type FetchFailedError struct {
	Machine int   // crashed machine that held the lost partitions
	Parts   []int // lost partition indices, sorted
	Total   int   // partitions in the output
}

func (e *FetchFailedError) Error() string {
	return fmt.Sprintf("cluster: fetch failed: machine %d crashed holding %d/%d shuffle partitions %v",
		e.Machine, len(e.Parts), e.Total, e.Parts)
}

func (e *FetchFailedError) Unwrap() error { return ErrFetchFailed }

// FaultKind distinguishes the two machine transitions of a FaultPlan.
type FaultKind int

const (
	// FaultCrash takes a machine down, destroying its resident shuffle
	// outputs. A crashed machine stays down until a FaultRejoin (explicit
	// plans) or for FaultPlan.Repair seconds (MTBF hazard).
	FaultCrash FaultKind = iota
	// FaultRejoin brings a machine back, empty: it holds no shuffle
	// outputs and must re-fetch pinned broadcast blocks (charged).
	FaultRejoin
)

func (k FaultKind) String() string {
	if k == FaultCrash {
		return "crash"
	}
	return "rejoin"
}

// FaultEvent is one explicit machine transition at a virtual time.
type FaultEvent struct {
	At      float64
	Machine int
	Kind    FaultKind
}

// FaultPlan describes when machines fail. Two sources compose:
//
//   - Events: explicit crash/rejoin transitions at fixed virtual times
//     (deterministic by construction; crashed machines stay down until an
//     explicit rejoin).
//   - MTBF: a seeded hazard — each machine crashes with the given mean
//     virtual time between failures and rejoins Repair seconds later. The
//     k-th gap of machine m is an exponential draw derived by hashing
//     (Seed, m, k), so the whole schedule is a pure function of the seed:
//     no RNG state, no dependence on call order.
//
// The zero value injects nothing.
type FaultPlan struct {
	Events []FaultEvent
	MTBF   float64 // mean virtual seconds between crashes per machine (0 disables)
	Repair float64 // downtime before a hazard-crashed machine rejoins (default 10)
	Seed   uint64
}

// Active reports whether the plan injects any faults.
func (p FaultPlan) Active() bool { return p.MTBF > 0 || len(p.Events) > 0 }

// WithDefaults returns the plan with zero fields defaulted (Repair 10).
// Exported for the multi-tenant scheduler, which runs a plan against its
// own pool with the same semantics.
func (p FaultPlan) WithDefaults() FaultPlan {
	if p.Repair <= 0 {
		p.Repair = 10
	}
	return p
}

// Validate rejects out-of-domain plans; machines is the cluster size.
func (p FaultPlan) Validate(machines int) error {
	if p.MTBF < 0 {
		return fmt.Errorf("cluster: FaultPlan.MTBF must be >= 0, got %g", p.MTBF)
	}
	if p.Repair < 0 {
		return fmt.Errorf("cluster: FaultPlan.Repair must be >= 0, got %g", p.Repair)
	}
	for _, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("cluster: fault event at negative time %g", ev.At)
		}
		if ev.Machine < 0 || ev.Machine >= machines {
			return fmt.Errorf("cluster: fault event targets machine %d of %d", ev.Machine, machines)
		}
		if ev.Kind != FaultCrash && ev.Kind != FaultRejoin {
			return fmt.Errorf("cluster: unknown fault kind %d", ev.Kind)
		}
	}
	return nil
}

// CrashGap returns machine m's draw-th up-time gap: an exponential with
// mean MTBF, derived purely from (Seed, m, draw).
func (p FaultPlan) CrashGap(machine, draw int) float64 {
	h := splitmix64(p.Seed ^ 0x51b9d1e4c2a7f36d)
	h = splitmix64(h ^ uint64(machine)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(draw))
	// Top 53 bits, offset to (0,1) so log never sees zero.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -p.MTBF * math.Log(u)
}

// OutputID is a handle to one stage's registered shuffle output. The
// engine registers an output after each completed stage and checks it
// before each consuming fetch; the handle stays valid until DropOutput.
type OutputID int64

// output tracks where each partition of a registered shuffle output
// lives. A live partition stores its machine index; a lost partition
// stores -(machine+1), remembering which crash destroyed it.
type output struct {
	machines []int
	counted  bool // FetchFailures already incremented for this output
}

// faultState is the simulator's view of the fault plan: per-machine
// liveness plus the merged cursor over explicit events and the hazard.
type faultState struct {
	plan    FaultPlan
	active  bool
	down    []bool
	crashes []int

	events []FaultEvent // explicit, sorted by (At, Machine)
	evIdx  int

	hazAt   []float64 // next hazard transition per machine (+Inf when idle)
	hazUp   []bool    // true: next hazard transition is a rejoin
	hazDraw []int     // next gap index per machine
}

func newFaultState(p FaultPlan, machines int) faultState {
	f := faultState{plan: p.WithDefaults(), active: p.Active()}
	if !f.active {
		return f
	}
	f.down = make([]bool, machines)
	f.crashes = make([]int, machines)
	f.events = make([]FaultEvent, len(p.Events))
	copy(f.events, p.Events)
	sort.SliceStable(f.events, func(i, j int) bool {
		if f.events[i].At != f.events[j].At {
			return f.events[i].At < f.events[j].At
		}
		return f.events[i].Machine < f.events[j].Machine
	})
	f.hazAt = make([]float64, machines)
	f.hazUp = make([]bool, machines)
	f.hazDraw = make([]int, machines)
	for m := range f.hazAt {
		if f.plan.MTBF > 0 {
			f.hazAt[m] = f.plan.CrashGap(m, 0)
			f.hazDraw[m] = 1
		} else {
			f.hazAt[m] = math.Inf(1)
		}
	}
	return f
}

// next returns the earliest pending transition: its time, machine, kind,
// and whether it came from the explicit list (explicit wins ties, then
// lower machine index — a total order independent of map iteration).
func (f *faultState) next() (at float64, machine int, kind FaultKind, explicit, ok bool) {
	at = math.Inf(1)
	if f.evIdx < len(f.events) {
		ev := f.events[f.evIdx]
		at, machine, kind, explicit, ok = ev.At, ev.Machine, ev.Kind, true, true
	}
	for m, t := range f.hazAt {
		if t < at {
			k := FaultCrash
			if f.hazUp[m] {
				k = FaultRejoin
			}
			at, machine, kind, explicit, ok = t, m, k, false, true
		}
	}
	return at, machine, kind, explicit, ok
}

// advanceFaults applies every fault transition scheduled at or before
// `now`. Called with s.mu held; the fault observer (if any) runs under the
// lock and must not call back into the simulator.
func (s *Simulator) advanceFaults(now float64) {
	f := &s.faults
	if !f.active {
		return
	}
	for {
		at, m, kind, explicit, ok := f.next()
		if !ok || at > now {
			return
		}
		if explicit {
			f.evIdx++
		} else if kind == FaultCrash {
			f.hazUp[m] = true
			f.hazAt[m] = at + f.plan.Repair
		} else {
			f.hazUp[m] = false
			f.hazAt[m] = at + f.plan.CrashGap(m, f.hazDraw[m])
			f.hazDraw[m]++
		}
		switch kind {
		case FaultCrash:
			s.applyCrash(at, m)
		case FaultRejoin:
			s.applyRejoin(at, m)
		}
	}
}

func (s *Simulator) applyCrash(at float64, m int) {
	f := &s.faults
	if f.down[m] {
		return
	}
	f.down[m] = true
	f.crashes[m]++
	s.stats.MachineCrashes++
	lost := 0
	for _, o := range s.outputs {
		for p, loc := range o.machines {
			if loc == m {
				o.machines[p] = -(m + 1)
				lost++
			}
		}
	}
	if s.onFault != nil {
		s.onFault(at, m, "crash", fmt.Sprintf("lost %d shuffle partitions", lost))
	}
}

func (s *Simulator) applyRejoin(at float64, m int) {
	f := &s.faults
	if !f.down[m] {
		return
	}
	f.down[m] = false
	s.stats.MachineRejoins++
	// The rejoined machine comes back empty and must re-fetch the pinned
	// broadcast blocks; charge the driver's per-byte push for them.
	if s.resident > 0 {
		s.clock += float64(s.resident) * s.cfg.PerByteBroadcast
	}
	if s.onFault != nil {
		s.onFault(at, m, "rejoin", fmt.Sprintf("%d broadcast bytes re-pushed", s.resident))
	}
}

// liveMachines returns the indices of machines currently up. With no
// active fault plan that is every machine.
func (s *Simulator) liveMachines() []int {
	live := make([]int, 0, s.cfg.Machines)
	for m := 0; m < s.cfg.Machines; m++ {
		if !s.faults.active || !s.faults.down[m] {
			live = append(live, m)
		}
	}
	return live
}

// LiveMachines reports how many machines are currently up (fault
// transitions scheduled before the current clock applied first).
func (s *Simulator) LiveMachines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceFaults(s.clock)
	return len(s.liveMachines())
}

// SetFaultObserver installs a callback invoked for every applied fault
// transition (kind "crash" or "rejoin"). The callback runs under the
// simulator lock and must not call back into the simulator; the engine
// uses it to feed fault events into the observation spine.
func (s *Simulator) SetFaultObserver(fn func(at float64, machine int, kind, detail string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onFault = fn
}

// RegisterOutput records where a completed stage's shuffle output lives:
// partition p on the p-th live machine, round-robin — mirroring the wave
// scheduler's spread. The engine calls it after each successful stage and
// checks the handle with CheckFetch before each consuming stage.
func (s *Simulator) RegisterOutput(parts int) OutputID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceFaults(s.clock)
	id := s.nextOut
	s.nextOut++
	o := &output{machines: make([]int, parts)}
	live := s.liveMachines()
	for p := 0; p < parts; p++ {
		if len(live) > 0 {
			o.machines[p] = live[p%len(live)]
		} else {
			// Nothing is up to hold the output: place it on the machine
			// that would have held it and mark it lost immediately. The
			// consuming fetch fails and recomputation waits for a rejoin.
			o.machines[p] = -(p%s.cfg.Machines + 1)
		}
	}
	if s.outputs == nil {
		s.outputs = make(map[OutputID]*output)
	}
	s.outputs[id] = o
	return id
}

// CheckFetch reports whether the output's partitions are all still
// resident on live machines. If a crash destroyed any, it returns a
// *FetchFailedError naming the crashed machine and the lost partitions.
// An unknown (already dropped) handle fetches cleanly.
func (s *Simulator) CheckFetch(id OutputID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceFaults(s.clock)
	o := s.outputs[id]
	if o == nil {
		return nil
	}
	var parts []int
	machine := -1
	for p, loc := range o.machines {
		if loc < 0 {
			parts = append(parts, p)
			if machine < 0 {
				machine = -loc - 1
			}
		}
	}
	if parts == nil {
		return nil
	}
	if !o.counted {
		o.counted = true
		s.stats.FetchFailures++
	}
	return &FetchFailedError{Machine: machine, Parts: parts, Total: len(o.machines)}
}

// DropOutput forgets a registered output (its stage was rewound or its
// job finished); subsequent crashes no longer affect it.
func (s *Simulator) DropOutput(id OutputID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.outputs, id)
}

// awaitLiveMachine stalls the clock until at least one machine is up,
// applying fault transitions along the way. Returns the live set, or an
// error if the cluster is permanently dead. Called with s.mu held.
func (s *Simulator) awaitLiveMachine() ([]int, error) {
	for {
		live := s.liveMachines()
		if len(live) > 0 {
			return live, nil
		}
		at, _, _, _, ok := s.faults.next()
		if !ok {
			return nil, ErrNoLiveMachines
		}
		if at > s.clock {
			s.clock = at
		}
		s.advanceFaults(s.clock)
	}
}
