package shred

import (
	"reflect"
	"sort"
	"testing"

	"matryoshka/internal/engine"
)

func testSession() *engine.Session {
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 2
	cfg.DefaultParallelism = 6
	s, err := engine.NewSession(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func skewedPairs(n, keys int) []engine.Pair[int, int64] {
	out := make([]engine.Pair[int, int64], n)
	for i := range out {
		// Key 0 takes half the rows; the rest spread evenly.
		k := 0
		if i%2 == 1 {
			k = 1 + (i/2)%(keys-1)
		}
		out[i] = engine.KV(k, int64(i))
	}
	return out
}

func TestObserveExactStats(t *testing.T) {
	s := testSession()
	data := skewedPairs(4000, 41)
	b := Shred(engine.Parallelize(s, data, 8))
	st, err := Observe(b)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if st.Groups != 41 || st.Total != 4000 || st.Max != 2000 {
		t.Fatalf("stats = %+v, want {41 2000 4000}", st)
	}
}

// TestUnshredMatchesGroupByKey: un-shredding is bit-identical (keys,
// values, and per-group element order) to a materialized group build of
// the same source — the contract the A/B DeepEqual suites rely on.
func TestUnshredMatchesGroupByKey(t *testing.T) {
	s := testSession()
	data := skewedPairs(3000, 37)
	src := engine.Parallelize(s, data, 8)
	viaShred, err := UnshredCollect(Shred(src))
	if err != nil {
		t.Fatalf("UnshredCollect: %v", err)
	}
	viaGroup, err := engine.CollectMap(engine.GroupByKey(src))
	if err != nil {
		t.Fatalf("GroupByKey: %v", err)
	}
	if !reflect.DeepEqual(viaShred, viaGroup) {
		t.Fatalf("unshred diverged from materialized group build")
	}
	if len(viaShred) != 37 {
		t.Fatalf("got %d groups, want 37", len(viaShred))
	}
}

// TestLiftedOpsMatchReference: lifted map/filter/reduce/count over the
// dictionary agree with the per-group sequential reference.
func TestLiftedOpsMatchReference(t *testing.T) {
	s := testSession()
	data := skewedPairs(2000, 23)
	b := Shred(engine.Parallelize(s, data, 8))

	doubledThenOdd := FilterValues(MapValues(b, func(v int64) int64 { return v + 1 }),
		func(v int64) bool { return v%2 == 1 })
	sums, err := engine.CollectMap(ReduceValues(doubledThenOdd, func(a, b int64) int64 { return a + b }))
	if err != nil {
		t.Fatalf("ReduceValues: %v", err)
	}
	counts, err := engine.CollectMap(CountValues(doubledThenOdd))
	if err != nil {
		t.Fatalf("CountValues: %v", err)
	}

	wantSum := map[int]int64{}
	wantCount := map[int]int64{}
	for _, p := range data {
		v := p.Val + 1
		if v%2 == 1 {
			wantSum[p.Key] += v
			wantCount[p.Key]++
		}
	}
	if !reflect.DeepEqual(sums, wantSum) {
		t.Fatalf("lifted reduce = %v, want %v", sums, wantSum)
	}
	if !reflect.DeepEqual(counts, wantCount) {
		t.Fatalf("lifted count = %v, want %v", counts, wantCount)
	}
}

// TestTopRecordsEnumerateGroupsOnce: Top holds exactly one record per
// key with the observed size, and Group is the session's stable key
// hash (the same identity the tag lowering mints).
func TestTopRecordsEnumerateGroupsOnce(t *testing.T) {
	s := testSession()
	data := skewedPairs(1000, 11)
	b := Shred(engine.Parallelize(s, data, 4))
	recs, err := engine.Collect(b.Top)
	if err != nil {
		t.Fatalf("Collect(Top): %v", err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	if len(recs) != 11 {
		t.Fatalf("%d top records, want 11", len(recs))
	}
	var total int64
	for _, r := range recs {
		if r.Group != engine.HashKey(s, r.Key) {
			t.Errorf("key %d: group id %d != HashKey %d", r.Key, r.Group, engine.HashKey(s, r.Key))
		}
		total += r.Size
	}
	if total != 1000 {
		t.Fatalf("sizes sum to %d, want 1000", total)
	}
}
