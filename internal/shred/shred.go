// Package shred implements the shredded representation of nested bags:
// instead of materializing each group's inner bag on one machine (the
// paper's NestedBag lowering, where a Zipf head group can blow a single
// task's memory), a shredded bag keeps the top-level bag as flat
// (key, groupID, size) records and the inner-bag contents as a keyed
// dictionary bag of (groupID, value) pairs spread across ordinary
// partitions. Lifted operations run directly on the dictionary as flat
// dataflow; only at a consumption boundary (CollectNested/SaveNested)
// is the dictionary un-shredded back into per-group slices, and even
// that un-shredding is a spill-friendly group-by plus a dictionary join
// rather than a single-task group build. The design follows "Scalable
// Querying of Nested Data" (shredded compilation: top-level bag +
// dictionaries) with the Sec. 8 feedback loop choosing per group-by
// whether shredding pays.
//
// Group identity contract: groupID is engine.HashKey of the top-level
// key, the same 64-bit identity the tag-based nested lowering already
// mints per group (core.RootTag). Two distinct keys colliding on all 64
// bits would merge their groups — the identical exposure the existing
// tag minting accepts, so shredding introduces no new identity risk.
package shred

import "matryoshka/internal/engine"

// Record is one top-level row of a shredded bag: the group key, its
// 64-bit dictionary identity, and the observed inner-bag size (in
// simulated rows, at the weight of the dataset that was shredded).
//
// Size is the size observed when the bag was shredded. Lifted
// filter/map do not rewrite it — it documents the grouping the
// optimizer reasoned about, not the current dictionary cardinality.
type Record[K comparable] struct {
	Key   K
	Group uint64
	Size  int64
}

// Bag is a shredded nested bag: Top is the flat top-level bag (one
// Record per group, cached — it is both the optimizer's size oracle and
// the dictionary's key directory), Dict is the inner dictionary, a lazy
// flat bag of (groupID, value) pairs partitioned like any other dataset
// (a narrow map of the source, so per-group element order is the source
// partition order — the same order every other lowering observes).
type Bag[K comparable, V any] struct {
	Top  engine.Dataset[Record[K]]
	Dict engine.Dataset[engine.Pair[uint64, V]]
}

// Shred builds the shredded form of a keyed dataset. One bounded-size
// shuffle (a per-key count, first-seen key order — the same
// deterministic order a distinct over the keys would produce) yields
// Top; Dict is a narrow rekeying of the source and costs nothing until
// a downstream consumer evaluates it.
func Shred[K comparable, V any](d engine.Dataset[engine.Pair[K, V]]) Bag[K, V] {
	sess := d.Session()
	sizes := engine.ReduceByKeyBound(
		engine.Map(d, func(p engine.Pair[K, V]) engine.Pair[K, int64] {
			return engine.KV(p.Key, int64(1))
		}),
		func(a, b int64) int64 { return a + b }, 0)
	top := engine.Map(sizes, func(p engine.Pair[K, int64]) Record[K] {
		return Record[K]{Key: p.Key, Group: engine.HashKey(sess, p.Key), Size: p.Val}
	}).Cache()
	dict := engine.Map(d, func(p engine.Pair[K, V]) engine.Pair[uint64, V] {
		return engine.KV(engine.HashKey(sess, p.Key), p.Val)
	})
	return Bag[K, V]{Top: top, Dict: dict}
}

// Stats summarizes the observed group structure of a shredded bag — the
// numbers the shred optimizer rule feeds on.
type Stats struct {
	Groups int64 // distinct top-level keys
	Max    int64 // largest inner-bag size (simulated rows)
	Total  int64 // total inner rows (simulated)
}

// Observe evaluates Top (one narrow job over its cache) and folds it
// into exact integer Stats; deterministic regardless of partition
// order because count-sum and max are commutative.
func Observe[K comparable, V any](b Bag[K, V]) (Stats, error) {
	parts, err := engine.Collect(engine.MapPartitions(b.Top, func(in []Record[K]) []Stats {
		var st Stats
		for _, r := range in {
			st.Groups++
			st.Total += r.Size
			if r.Size > st.Max {
				st.Max = r.Size
			}
		}
		return []Stats{st}
	}))
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for _, p := range parts {
		st.Groups += p.Groups
		st.Total += p.Total
		if p.Max > st.Max {
			st.Max = p.Max
		}
	}
	return st, nil
}

// MapValues is the lifted map: apply f to every inner element of every
// group. Flat narrow dataflow over the dictionary; Top is unchanged.
func MapValues[K comparable, V, W any](b Bag[K, V], f func(V) W) Bag[K, W] {
	return Bag[K, W]{
		Top: b.Top,
		Dict: engine.Map(b.Dict, func(p engine.Pair[uint64, V]) engine.Pair[uint64, W] {
			return engine.KV(p.Key, f(p.Val))
		}),
	}
}

// FilterValues is the lifted filter: keep the inner elements satisfying
// pred. Top keeps its shred-time Sizes (see Record); groups whose
// dictionary entries all drop simply become empty in the dictionary,
// exactly like an inner bag filtered to nothing.
func FilterValues[K comparable, V any](b Bag[K, V], pred func(V) bool) Bag[K, V] {
	return Bag[K, V]{
		Top: b.Top,
		Dict: engine.MapPartitions(b.Dict, func(in []engine.Pair[uint64, V]) []engine.Pair[uint64, V] {
			out := make([]engine.Pair[uint64, V], 0, len(in))
			for _, p := range in {
				if pred(p.Val) {
					out = append(out, p)
				}
			}
			return out
		}),
	}
}

// ReduceValues is the lifted reduce (InnerScalar extraction): fold each
// group's inner bag with f and re-key the per-group scalar by the
// original top-level key via a dictionary join with Top. Groups left
// empty by a lifted filter produce no row, matching the nested
// semantics of reducing an empty bag.
func ReduceValues[K comparable, V any](b Bag[K, V], f func(V, V) V) engine.Dataset[engine.Pair[K, V]] {
	reduced := engine.ReduceByKey(b.Dict, f)
	return rekey(b, reduced)
}

// CountValues is the lifted count over the current dictionary (after
// any lifted filters), as a per-key scalar dataset.
func CountValues[K comparable, V any](b Bag[K, V]) engine.Dataset[engine.Pair[K, int64]] {
	counts := engine.ReduceByKey(
		engine.Map(b.Dict, func(p engine.Pair[uint64, V]) engine.Pair[uint64, int64] {
			return engine.KV(p.Key, int64(1))
		}),
		func(a, b int64) int64 { return a + b })
	return rekey(b, counts)
}

// rekey joins a per-group scalar dataset back to the original keys
// through Top's (groupID -> key) directory.
func rekey[K comparable, V, W any](b Bag[K, V], scalars engine.Dataset[engine.Pair[uint64, W]]) engine.Dataset[engine.Pair[K, W]] {
	keys := engine.Map(b.Top, func(r Record[K]) engine.Pair[uint64, K] {
		return engine.KV(r.Group, r.Key)
	})
	return engine.Map(engine.Join(keys, scalars), func(p engine.Pair[uint64, engine.Tuple2[K, W]]) engine.Pair[K, W] {
		return engine.KV(p.Val.A, p.Val.B)
	})
}

// Unshred converts the shredded bag back to materialized per-group
// slices — the consumption-boundary lowering. The group build runs as a
// spill group-by (engine.GroupByKeySpill: a fraction of the resident
// footprint plus streaming I/O cost, so a head group no longer has to
// fit in one task's memory), then a dictionary join with Top restores
// the original keys. Per-group element order is source-partition-major
// input order — bit-identical to the materialized lowering's
// engine.GroupByKey and to the driver-side tag collection, which is
// what lets the A/B suites require DeepEqual across modes.
func Unshred[K comparable, V any](b Bag[K, V]) engine.Dataset[engine.Pair[K, []V]] {
	grouped := engine.GroupByKeySpill(b.Dict)
	keys := engine.Map(b.Top, func(r Record[K]) engine.Pair[uint64, K] {
		return engine.KV(r.Group, r.Key)
	})
	return engine.Map(engine.Join(keys, grouped), func(p engine.Pair[uint64, engine.Tuple2[K, []V]]) engine.Pair[K, []V] {
		return engine.KV(p.Val.A, p.Val.B)
	})
}

// UnshredCollect materializes the whole nested value on the driver:
// Unshred plus a CollectMap. This is what core.CollectNested calls when
// the shred rule picked the shredded lowering.
func UnshredCollect[K comparable, V any](b Bag[K, V]) (map[K][]V, error) {
	return engine.CollectMap(Unshred(b))
}
