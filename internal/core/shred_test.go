package core

import (
	"reflect"
	"strings"
	"testing"

	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
)

func obsSession() (*engine.Session, *obs.Recorder) {
	rec := obs.NewRecorder()
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 2
	cfg.DefaultParallelism = 6
	cfg.Obs = rec
	s, err := engine.NewSession(cfg)
	if err != nil {
		panic(err)
	}
	return s, rec
}

func groupedInput(n, keys int) []engine.Pair[int64, int64] {
	out := make([]engine.Pair[int64, int64], n)
	for i := range out {
		out[i] = engine.KV(int64(i%keys), int64(i*3))
	}
	return out
}

// TestShredStrategyFeedbackDenial: once session feedback denies
// shred=materialized (the recovery loop does this after a giant-group
// OOM), ShredStrategy must pick shredded — forced, with the denial
// reason in the logged decision.
func TestShredStrategyFeedbackDenial(t *testing.T) {
	s, rec := obsSession()
	d := engine.Parallelize(s, groupedInput(100, 5), 4)
	s.Feedback().Deny("shred", "materialized", "shred=materialized OOMed at run time (test seed)")
	nb, err := GroupByKeyIntoNestedBag(d, Options{})
	if err != nil {
		t.Fatalf("GroupByKeyIntoNestedBag: %v", err)
	}
	var found *obs.Decision
	for i, dec := range rec.Decisions() {
		if dec.Rule == "shred" {
			found = &rec.Decisions()[i]
		}
	}
	if found == nil {
		t.Fatal("no shred decision logged")
	}
	if found.Choice != "shredded" || !found.Forced {
		t.Fatalf("decision = %+v, want forced shredded", found)
	}
	if !strings.Contains(found.Why, "retried-after-OOM") {
		t.Errorf("Why = %q, want a retried-after-OOM cause", found.Why)
	}
	// The denied lowering must not run: the collect still succeeds and
	// matches the reference grouping.
	got, err := CollectNested(nb)
	if err != nil {
		t.Fatalf("CollectNested: %v", err)
	}
	if len(got) != 5 || len(got[0]) != 20 {
		t.Fatalf("got %d groups (group 0 has %d), want 5 groups of 20", len(got), len(got[0]))
	}
}

// TestShredForcedModesBitIdentical: ForceShred on vs off produce
// DeepEqual-identical nested values, and each forced choice is logged.
func TestShredForcedModesBitIdentical(t *testing.T) {
	run := func(c ShredChoice) (map[int64][]int64, *obs.Recorder) {
		s, rec := obsSession()
		d := engine.Parallelize(s, groupedInput(3000, 17), 8)
		nb, err := GroupByKeyIntoNestedBag(d, Options{ForceShred: ForceShredChoice(c)})
		if err != nil {
			t.Fatalf("GroupByKeyIntoNestedBag(%v): %v", c, err)
		}
		got, err := CollectNested(nb)
		if err != nil {
			t.Fatalf("CollectNested(%v): %v", c, err)
		}
		return got, rec
	}
	mat, matRec := run(ShredMaterialized)
	shr, shrRec := run(ShredShredded)
	if !reflect.DeepEqual(mat, shr) {
		t.Fatal("materialized and shredded nested values diverged")
	}
	if len(mat) != 17 {
		t.Fatalf("got %d groups, want 17", len(mat))
	}
	check := func(rec *obs.Recorder, want string) {
		t.Helper()
		for _, dec := range rec.Decisions() {
			if dec.Rule == "shred" && dec.Choice == want && dec.Forced {
				return
			}
		}
		t.Errorf("no forced shred=%s decision logged", want)
	}
	check(matRec, "materialized")
	check(shrRec, "shredded")
}

// TestShredStrategySizeRule: with no override and no feedback, the rule
// flips on the estimated resident bytes of the largest group against
// the half-machine budget.
func TestShredStrategySizeRule(t *testing.T) {
	s, rec := obsSession()
	ctx := &Ctx{Sess: s, Size: 10, Parts: 1}
	weight := 1.0
	budget := s.Config().Cluster.MemoryPerMachine / 2
	overhead := s.Config().Cluster.MemoryOverheadFactor
	// A max group just under the budget stays materialized; far over it
	// goes shredded.
	smallMax := int64(float64(budget)/(overhead*shredBytesPerRow)) / 2
	hugeMax := smallMax * 8
	if got := ctx.ShredStrategy(10, smallMax, smallMax*10, weight); got != ShredMaterialized {
		t.Errorf("small max group: got %v, want materialized", got)
	}
	if got := ctx.ShredStrategy(10, hugeMax, hugeMax*2, weight); got != ShredShredded {
		t.Errorf("huge max group: got %v, want shredded", got)
	}
	var whys []string
	for _, dec := range rec.Decisions() {
		if dec.Rule == "shred" {
			whys = append(whys, dec.Why)
		}
	}
	if len(whys) != 2 {
		t.Fatalf("logged %d shred decisions, want 2", len(whys))
	}
	for _, why := range whys {
		if !strings.Contains(why, "largest of 10 groups") {
			t.Errorf("Why %q does not report observed sizes", why)
		}
	}
}
