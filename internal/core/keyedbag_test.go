package core

import (
	"testing"

	"matryoshka/internal/engine"
)

func TestJoinBagsPartitionedMatchesJoinBags(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2, 2}, "b": {2, 3}})
	l := MapBag(nb.Inner, func(v int) engine.Pair[int, string] { return engine.KV(v, "L") })
	r := MapBag(nb.Inner, func(v int) engine.Pair[int, string] { return engine.KV(v, "R") })

	plain := scalarByOuter(t, nb, CountBag(JoinBags(l, r)))
	keyed := PartitionBagByKey(r)
	pre := scalarByOuter(t, nb, CountBag(JoinBagsPartitioned(l, keyed)))
	for k, want := range plain {
		if pre[k] != want {
			t.Errorf("group %v: partitioned join %d, plain join %d", k, pre[k], want)
		}
	}
	// a: {1,2,2}x{1,2,2} on value keys -> 1 + 2*2 = 5 matches.
	if plain["a"] != 5 || plain["b"] != 2 {
		t.Fatalf("plain = %v", plain)
	}
}

func TestJoinBagsPartitionedSkipsStaticShuffle(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {3}})
	static := PartitionBagByKey(MapBag(nb.Inner, func(v int) engine.Pair[int, int] {
		return engine.KV(v, v*10)
	}))
	// Materialize the static side once.
	if _, err := engine.Count(static.repr); err != nil {
		t.Fatal(err)
	}
	probe := MapBag(nb.Inner, func(v int) engine.Pair[int, string] { return engine.KV(v, "p") })

	before := s.Stats()
	if _, err := engine.Count(JoinBagsPartitioned(probe, static).Repr()); err != nil {
		t.Fatal(err)
	}
	delta := s.Stats().Stages - before.Stages
	// Probe map side + join stage; the static side adds no stage.
	if delta != 2 {
		t.Errorf("stages = %d, want 2 (static side read in place)", delta)
	}
}

func TestJoinWithEnclosingKeyedMatchesUnkeyed(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {1}})
	enclosing := MapBag(nb.Inner, func(v int) engine.Pair[int64, int64] {
		return engine.KV(int64(v), int64(v*100))
	})
	// One deeper invocation per element.
	got, err := MapBagLifted(nb.Inner, func(ctx2 *Ctx, elems InnerScalar[int]) (InnerScalar[int64], error) {
		deepKeyed := MapBag(BagOfScalar(elems), func(v int) engine.Pair[int64, struct{}] {
			return engine.KV(int64(v), struct{}{})
		})
		viaPlain := CountBag(JoinWithEnclosingBag(deepKeyed, enclosing))
		viaKeyed := CountBag(JoinWithEnclosingKeyed(deepKeyed, PartitionEnclosingBagByKey(enclosing)))
		return BinaryScalarOp(viaPlain, viaKeyed, func(a, b int64) int64 {
			if a != b {
				return -1
			}
			return a
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("vals = %v", vals)
	}
	for tag, v := range vals {
		if v < 0 {
			t.Errorf("tag %v: keyed and plain enclosing joins disagree", tag)
		}
	}
}
