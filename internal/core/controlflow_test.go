package core

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"matryoshka/internal/engine"
)

// TestLiftedWhileCollatzSteps lifts a loop whose per-invocation iteration
// counts differ wildly (Collatz step counting), the exact challenge of
// Sec. 6.2: "the original loops might finish at different iterations".
func TestLiftedWhileCollatzSteps(t *testing.T) {
	s := testSession()
	starts := []int64{1, 2, 3, 6, 7, 27}
	want := map[int64]int64{}
	for _, n := range starts {
		want[n] = collatzSteps(n)
	}

	res, err := LiftFlat(engine.Parallelize(s, starts, 3), Options{},
		func(ctx *Ctx, elems InnerScalar[int64]) (InnerScalar[engine.Tuple2[int64, int64]], error) {
			// State per invocation: (start, current, steps) packed in a tuple.
			type state struct {
				Start, Cur, Steps int64
			}
			init := UnaryScalarOp(elems, func(n int64) state { return state{n, n, 0} })
			ops := ScalarState[state]()
			out, err := While(ctx, init, ops, func(c *Ctx, cur InnerScalar[state]) (InnerScalar[state], InnerScalar[bool], error) {
				next := UnaryScalarOp(cur, func(v state) state {
					if v.Cur == 1 {
						return v // do-while body runs once even for n=1
					}
					if v.Cur%2 == 0 {
						return state{v.Start, v.Cur / 2, v.Steps + 1}
					}
					return state{v.Start, 3*v.Cur + 1, v.Steps + 1}
				})
				cond := UnaryScalarOp(next, func(v state) bool { return v.Cur != 1 })
				return next, cond, nil
			})
			if err != nil {
				return InnerScalar[engine.Tuple2[int64, int64]]{}, err
			}
			return UnaryScalarOp(out, func(v state) engine.Tuple2[int64, int64] {
				return engine.Tuple2[int64, int64]{A: v.Start, B: v.Steps}
			}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(starts) {
		t.Fatalf("got %d results, want %d", len(vals), len(starts))
	}
	for _, v := range vals {
		if want[v.A] != v.B {
			t.Errorf("collatz(%d) = %d steps, want %d", v.A, v.B, want[v.A])
		}
	}
}

func collatzSteps(n int64) int64 {
	var steps int64
	for n != 1 {
		if n%2 == 0 {
			n /= 2
		} else {
			n = 3*n + 1
		}
		steps++
	}
	return steps
}

// TestLiftedWhileMatchesSequentialLoops is the property-based counterpart:
// for random per-tag iteration budgets, the lifted loop must produce the
// same values as running each loop sequentially.
func TestLiftedWhileMatchesSequentialLoops(t *testing.T) {
	s := testSession()
	f := func(budgets []uint8) bool {
		if len(budgets) == 0 {
			return true
		}
		if len(budgets) > 12 {
			budgets = budgets[:12]
		}
		lims := make([]int64, len(budgets))
		for i, b := range budgets {
			lims[i] = int64(b%17) + 1
		}
		type state struct{ Lim, I int64 }
		res, err := LiftFlat(engine.Parallelize(s, lims, 3), Options{},
			func(ctx *Ctx, elems InnerScalar[int64]) (InnerScalar[state], error) {
				init := UnaryScalarOp(elems, func(l int64) state { return state{l, 0} })
				return While(ctx, init, ScalarState[state](), func(c *Ctx, cur InnerScalar[state]) (InnerScalar[state], InnerScalar[bool], error) {
					next := UnaryScalarOp(cur, func(v state) state { return state{v.Lim, v.I + 1} })
					cond := UnaryScalarOp(next, func(v state) bool { return v.I < v.Lim })
					return next, cond, nil
				})
			})
		if err != nil {
			return false
		}
		vals, err := res.Collect()
		if err != nil || len(vals) != len(lims) {
			return false
		}
		for _, v := range vals {
			if v.I != v.Lim { // do-while: i increments until i >= lim
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestLiftedWhileWithBagState exercises loop state containing an InnerBag
// (the PageRank shape): each group's bag grows until the group's budget.
func TestLiftedWhileWithBagState(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"small": {0}, "big": {0, 0, 0}})
	// Loop: each iteration doubles the bag; groups stop when their bag
	// reaches >= 4 elements, so "small" runs 2 iterations, "big" 1.
	type loopState = State2[InnerBag[int], InnerScalar[int64]]
	ops := State2Ops(BagState[int](), ScalarState[int64]())
	init := loopState{A: nb.Inner, B: Pure(nb.Ctx(), int64(0))}
	out, err := While(nb.Ctx(), init, ops, func(c *Ctx, st loopState) (loopState, InnerScalar[bool], error) {
		grown := UnionBags(st.A, st.A)
		iters := UnaryScalarOp(st.B, func(i int64) int64 { return i + 1 })
		sizes := CountBag(grown)
		cond := UnaryScalarOp(sizes, func(n int64) bool { return n < 4 })
		return loopState{A: grown, B: iters}, cond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := scalarByOuter(t, nb, CountBag(out.A))
	if sizes["small"] != 4 || sizes["big"] != 6 {
		t.Fatalf("sizes = %v", sizes)
	}
	iters := scalarByOuter(t, nb, out.B)
	if iters["small"] != 2 || iters["big"] != 1 {
		t.Fatalf("iters = %v", iters)
	}
}

func TestLiftedIfBothBranches(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1}, "b": {1, 2}, "c": {1, 2, 3}})
	counts := CountBag(nb.Inner)
	cond := UnaryScalarOp(counts, func(n int64) bool { return n >= 2 })
	res, err := If(nb.Ctx(), cond, counts, ScalarState[int64](),
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], error) {
			return UnaryScalarOp(v, func(n int64) int64 { return n * 100 }), nil
		},
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], error) {
			return UnaryScalarOp(v, func(n int64) int64 { return -n }), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	m := scalarByOuter(t, nb, res)
	if m["a"] != -1 || m["b"] != 200 || m["c"] != 300 {
		t.Fatalf("m = %v", m)
	}
}

func TestLiftedIfAllOneSide(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1}, "b": {2}})
	cond := Pure(nb.Ctx(), true)
	res, err := If(nb.Ctx(), cond, CountBag(nb.Inner), ScalarState[int64](),
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], error) { return v, nil },
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], error) {
			return UnaryScalarOp(v, func(int64) int64 { return -999 }), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	m := scalarByOuter(t, nb, res)
	if m["a"] != 1 || m["b"] != 1 {
		t.Fatalf("m = %v", m)
	}
}

func TestWhileTerminationGuard(t *testing.T) {
	s := testSession()
	var pairs []engine.Pair[string, int]
	pairs = append(pairs, engine.KV("a", 1))
	nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 1), Options{MaxLoopIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = While(nb.Ctx(), CountBag(nb.Inner), ScalarState[int64](),
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], InnerScalar[bool], error) {
			return v, Pure(c, true), nil // never finishes
		})
	if err == nil {
		t.Fatal("expected iteration-guard error")
	}
}

// --- Theorem 2 isomorphism properties: m(f(x)) == f'(m(x)) for lifted ops.
// m maps per-group bags to the tagged flat representation; we verify that
// applying the sequential op per group then flattening equals applying the
// lifted op to the flattened representation.

func TestTheorem2MapPreservation(t *testing.T) {
	f := func(groupsRaw [][]int16) bool {
		s := testSession()
		groups := toGroups(groupsRaw)
		if len(groups) == 0 {
			return true
		}
		nb := mustNested(s, groups)
		// f'(m(x)): lifted op on flat representation.
		lifted := MapBag(nb.Inner, func(v int) int { return v*3 + 1 })
		got := groupsOf(nb, lifted)
		// m(f(x)): sequential per group, then compare multisets.
		want := map[string][]int{}
		for k, vs := range groups {
			for _, v := range vs {
				want[k] = append(want[k], v*3+1)
			}
		}
		return sameGroups(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2FilterPreservation(t *testing.T) {
	f := func(groupsRaw [][]int16) bool {
		s := testSession()
		groups := toGroups(groupsRaw)
		if len(groups) == 0 {
			return true
		}
		nb := mustNested(s, groups)
		lifted := FilterBag(nb.Inner, func(v int) bool { return v%2 == 0 })
		got := groupsOf(nb, lifted)
		want := map[string][]int{}
		for k, vs := range groups {
			want[k] = []int{}
			for _, v := range vs {
				if v%2 == 0 {
					want[k] = append(want[k], v)
				}
			}
		}
		return sameGroups(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2CountPreservation(t *testing.T) {
	f := func(groupsRaw [][]int16) bool {
		s := testSession()
		groups := toGroups(groupsRaw)
		if len(groups) == 0 {
			return true
		}
		nb := mustNested(s, groups)
		counts, err := CountBag(nb.Inner).Collect()
		if err != nil {
			return false
		}
		outer, err := nb.Outer.Collect()
		if err != nil {
			return false
		}
		for tag, k := range outer {
			if counts[tag] != int64(len(groups[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2ReduceByKeyPreservation(t *testing.T) {
	f := func(groupsRaw [][]int16) bool {
		s := testSession()
		groups := toGroups(groupsRaw)
		if len(groups) == 0 {
			return true
		}
		nb := mustNested(s, groups)
		keyed := MapBag(nb.Inner, func(v int) engine.Pair[int, int] { return engine.KV(v%3, v) })
		red := ReduceByKeyBag(keyed, func(a, b int) int { return a + b })
		flat, err := red.CollectGroups()
		if err != nil {
			return false
		}
		outer, err := nb.Outer.Collect()
		if err != nil {
			return false
		}
		for tag, k := range outer {
			want := map[int]int{}
			for _, v := range groups[k] {
				want[v%3] += v
			}
			gotM := map[int]int{}
			for _, kv := range flat[tag] {
				gotM[kv.Key] = kv.Val
			}
			if fmt.Sprint(gotM) != fmt.Sprint(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// --- helpers ---

func toGroups(raw [][]int16) map[string][]int {
	groups := map[string][]int{}
	for i, g := range raw {
		if i >= 6 {
			break
		}
		k := fmt.Sprintf("g%d", i)
		groups[k] = []int{}
		for j, v := range g {
			if j >= 20 {
				break
			}
			groups[k] = append(groups[k], int(v))
		}
	}
	// Bags created by groupByKey never contain empty groups; drop them.
	for k, vs := range groups {
		if len(vs) == 0 {
			delete(groups, k)
		}
	}
	return groups
}

func mustNested(s *engine.Session, groups map[string][]int) NestedBag[string, int] {
	var pairs []engine.Pair[string, int]
	for k, vs := range groups {
		for _, v := range vs {
			pairs = append(pairs, engine.KV(k, v))
		}
	}
	nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 4), Options{})
	if err != nil {
		panic(err)
	}
	return nb
}

func groupsOf[S any](nb NestedBag[string, int], b InnerBag[S]) map[string][]S {
	flat, err := b.CollectGroups()
	if err != nil {
		panic(err)
	}
	outer, err := nb.Outer.Collect()
	if err != nil {
		panic(err)
	}
	out := map[string][]S{}
	for tag, k := range outer {
		out[k] = flat[tag]
		if out[k] == nil {
			out[k] = []S{}
		}
	}
	return out
}

func sameGroups(a, b map[string][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		as, bs := append([]int{}, av...), append([]int{}, bv...)
		sort.Ints(as)
		sort.Ints(bs)
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

// TestState3LoopAllComponents runs a loop whose state has three
// components: an InnerBag, and two InnerScalars with different roles.
func TestState3LoopAllComponents(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"x": {1, 2}, "y": {1, 2, 3, 4}})
	type st = State3[InnerBag[int], InnerScalar[int64], InnerScalar[int64]]
	ops := State3Ops(BagState[int](), ScalarState[int64](), ScalarState[int64]())
	init := st{A: nb.Inner, B: Pure(nb.Ctx(), int64(0)), C: CountBag(nb.Inner)}
	out, err := While(nb.Ctx(), init, ops, func(c *Ctx, cur st) (st, InnerScalar[bool], error) {
		grown := UnionBags(cur.A, cur.A)
		iters := UnaryScalarOp(cur.B, func(i int64) int64 { return i + 1 })
		sizes := CountBag(grown)
		cond := UnaryScalarOp(sizes, func(n int64) bool { return n < 8 })
		return st{A: grown, B: iters, C: sizes}, cond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	iters := scalarByOuter(t, nb, out.B)
	sizes := scalarByOuter(t, nb, out.C)
	// x: 2 -> 4 -> 8 (2 iterations); y: 4 -> 8 (1 iteration).
	if iters["x"] != 2 || iters["y"] != 1 {
		t.Fatalf("iters = %v", iters)
	}
	if sizes["x"] != 8 || sizes["y"] != 8 {
		t.Fatalf("sizes = %v", sizes)
	}
}
