package core

import (
	"os"
	"path/filepath"
	"sort"
	"strings"

	"matryoshka/internal/engine"
	"matryoshka/internal/shred"
)

// NestedBag represents a nested bag outside any UDF (Sec. 4.5): the
// original Bag[(O, Bag[I])] is represented flat as an InnerScalar[O] (the
// per-group scalar components) plus an InnerBag[I] (all inner elements,
// tagged by group).
type NestedBag[O, I any] struct {
	Outer InnerScalar[O]
	Inner InnerBag[I]

	// materialize, when non-nil, is the physical lowering of the
	// consumption boundary (CollectNested), chosen by the shred rule in
	// GroupByKeyIntoNestedBag: either a cluster-side group build
	// (materialized — each group in one task) or an un-shred of the
	// dictionary form (shredded — spill group-by + dictionary join).
	// Type-erased because NestedBag's O is unconstrained; it returns a
	// map[O][]I and CollectNested asserts it back. Lazy: bags that are
	// never collected never pay for it. Struct-literal NestedBags leave
	// it nil and use the generic driver-side tag collection.
	materialize func() (any, error)
}

// Ctx returns the nested bag's LiftingContext (shared by Outer and Inner).
func (nb NestedBag[O, I]) Ctx() *Ctx { return nb.Inner.ctx }

// Cache materializes both component representations.
func (nb NestedBag[O, I]) Cache() NestedBag[O, I] {
	nb.Outer = nb.Outer.Cache()
	nb.Inner = nb.Inner.Cache()
	return nb
}

// Collect gathers the nested bag back into driver memory as (outer, group)
// pairs — the inverse of the flattening isomorphism m of Theorem 2, used
// by output operations and tests.
func (nb NestedBag[O, I]) Collect() (map[Tag]engine.Pair[Tag, O], map[Tag][]I, error) {
	outer, err := nb.Outer.Collect()
	if err != nil {
		return nil, nil, err
	}
	inner, err := nb.Inner.CollectGroups()
	if err != nil {
		return nil, nil, err
	}
	om := make(map[Tag]engine.Pair[Tag, O], len(outer))
	for t, o := range outer {
		om[t] = engine.KV(t, o)
	}
	return om, inner, nil
}

// CollectNested gathers the nested bag as outer-value -> inner elements,
// for outer types that are comparable. Nested bags built by
// GroupByKeyIntoNestedBag carry the shred rule's chosen materialization
// lowering and run that; per-group element order is identical either
// way (source-partition-major input order), so the choice is invisible
// to the result.
func CollectNested[O comparable, I any](nb NestedBag[O, I]) (map[O][]I, error) {
	if nb.materialize != nil {
		m, err := nb.materialize()
		if err != nil {
			return nil, err
		}
		return m.(map[O][]I), nil
	}
	outer, err := nb.Outer.Collect()
	if err != nil {
		return nil, err
	}
	inner, err := nb.Inner.CollectGroups()
	if err != nil {
		return nil, err
	}
	out := make(map[O][]I, len(outer))
	for t, o := range outer {
		out[o] = inner[t] // nil slice for empty groups is correct bag semantics
	}
	return out, nil
}

// GroupByKeyIntoNestedBag is the parsing phase's replacement for a
// groupByKey whose result would be nested (Listing 2, line 3). The
// lowering mints one tag per distinct key (a 64-bit seeded hash of the
// key, so tagging the inner elements is a *narrow* map — no shuffle
// partitioned by the possibly skewed grouping key, which is what makes
// Matryoshka robust to skew, Sec. 9.5), builds the InnerScalar of keys,
// and counts the groups — which is how every InnerScalar size becomes
// known up front (Sec. 8.1).
// The tag/dictionary duality: a mined tag RootTag(hash(key)) and a
// shredded dictionary groupID hash(key) are the same 64-bit identity, so
// the shredded Top bag doubles as the source of the key tags, and the
// shred rule's choice only governs the consumption-boundary lowering —
// the lifted dataflow over InnerBag/InnerScalar is shared verbatim.
func GroupByKeyIntoNestedBag[K comparable, V any](d engine.Dataset[engine.Pair[K, V]], opt Options) (NestedBag[K, V], error) {
	sess := d.Session()
	// Shred first: one bounded shuffle yields the (key, groupID, size)
	// top-level records — the per-key sizes are the observed statistics
	// the shred rule feeds on, and the records enumerate each group
	// exactly once in the same deterministic first-seen order a distinct
	// over the keys would (group keys are cardinality-bounded: unscaled).
	sb := shred.Shred(d)
	st, err := shred.Observe(sb)
	if err != nil {
		return NestedBag[K, V]{}, err
	}
	keyTags := engine.Map(sb.Top, func(r shred.Record[K]) engine.Pair[Tag, K] {
		return engine.KV(RootTag(r.Group), r.Key)
	}).Cache()
	tags := engine.Keys(keyTags)
	ctx := NewContext(sess, tags, st.Groups, opt)
	choice := ctx.ShredStrategy(st.Groups, st.Max, st.Total, d.Weight())

	outer := InnerScalar[K]{repr: keyTags, ctx: ctx}
	inner := InnerBag[V]{
		repr: engine.Map(d, func(p engine.Pair[K, V]) engine.Pair[Tag, V] {
			return engine.KV(RootTag(engine.HashKey(sess, p.Key)), p.Val)
		}),
		ctx: ctx,
	}
	nb := NestedBag[K, V]{Outer: outer, Inner: inner}
	if choice == ShredShredded {
		nb.materialize = func() (any, error) { return shred.UnshredCollect(sb) }
	} else {
		// The paper's lowering: each group's inner bag built in one task.
		// GroupByKey registers the spill lowering as its OOM fallback, so
		// a giant-group failure demotes to shredded at run time.
		nb.materialize = func() (any, error) { return engine.CollectMap(engine.GroupByKey(d)) }
	}
	return nb, nil
}

// MapNestedBag is mapWithLiftedUDF on a NestedBag (Listing 2, line 4): the
// UDF is called exactly once, during lowering, and operates on the lifted
// representations of all groups at the same time. R is whatever the UDF
// produces (typically an InnerScalar or InnerBag).
func MapNestedBag[O, I, R any](nb NestedBag[O, I], udf func(ctx *Ctx, outer InnerScalar[O], inner InnerBag[I]) R) R {
	return udf(nb.Inner.ctx, nb.Outer, nb.Inner)
}

// LiftFlat is mapWithLiftedUDF on a *flat* bag (the hyperparameter
// optimization pattern of Sec. 2.3: a bag of parameter values whose map UDF
// contains parallel operations). Tags are minted with zipWithUniqueId
// (Sec. 4.3) and the UDF is called once with the InnerScalar of elements.
func LiftFlat[A, R any](d engine.Dataset[A], opt Options, udf func(ctx *Ctx, elems InnerScalar[A]) (R, error)) (R, error) {
	var zero R
	sess := d.Session()
	tagged := engine.Map(engine.ZipWithUniqueID(d), func(p engine.Pair[uint64, A]) engine.Pair[Tag, A] {
		return engine.KV(RootTag(p.Key), p.Val)
	}).Unscaled().Cache()
	size, err := engine.Count(tagged)
	if err != nil {
		return zero, err
	}
	tags := engine.Keys(tagged)
	ctx := NewContext(sess, tags, size, opt)
	return udf(ctx, InnerScalar[A]{repr: tagged, ctx: ctx})
}

// MapBagLifted lifts a map-with-parallel-UDF *inside an already lifted
// UDF*: each element of the InnerBag becomes one invocation of the deeper
// UDF, with a composite tag (outer tag pushed with a fresh id, Sec. 7).
// This is the mechanism behind three-level programs such as Average
// Distances.
func MapBagLifted[A, R any](b InnerBag[A], udf func(ctx *Ctx, elems InnerScalar[A]) (R, error)) (R, error) {
	var zero R
	tagged := engine.Map(engine.ZipWithUniqueID(b.repr), func(p engine.Pair[uint64, engine.Pair[Tag, A]]) engine.Pair[Tag, A] {
		return engine.KV(p.Val.Key.Push(p.Key), p.Val.Val)
	}).Cache()
	size, err := engine.Count(tagged)
	if err != nil {
		return zero, err
	}
	tags := engine.Keys(tagged)
	ctx := NewContext(b.ctx.Sess, tags, size, b.ctx.Opt)
	return udf(ctx, InnerScalar[A]{repr: tagged, ctx: ctx})
}

// GroupByKeyIntoNestedBagInner is groupByKeyIntoNestedBag *inside a lifted
// UDF*: grouping an InnerBag of pairs by key creates one deeper nesting
// level per (invocation, key) — composite tags per Sec. 7. It returns the
// deeper LiftingContext, the per-subgroup keys (an InnerScalar at the
// deeper level) and the subgroup elements (an InnerBag at the deeper
// level). This is case (2) of Theorem 1's proof for statements inside
// UDFs: a groupByKey whose output would be nested two levels deep.
func GroupByKeyIntoNestedBagInner[K comparable, V any](b InnerBag[engine.Pair[K, V]]) (InnerScalar[K], InnerBag[V], error) {
	sess := b.ctx.Sess
	// One deeper tag per (outer tag, key): push the key's hash.
	subTags := engine.Map(engine.Distinct(
		engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[Tag, K] {
			return engine.KV(p.Key, p.Val.Key)
		})),
		func(p engine.Pair[Tag, K]) engine.Pair[Tag, K] {
			return engine.KV(p.Key.Push(engine.HashKey(sess, p.Val)), p.Val)
		}).Cache()
	size, err := engine.Count(subTags)
	if err != nil {
		return InnerScalar[K]{}, InnerBag[V]{}, err
	}
	ctx2 := NewContext(sess, engine.Keys(subTags), size, b.ctx.Opt)
	outer := InnerScalar[K]{repr: subTags, ctx: ctx2}
	inner := InnerBag[V]{
		repr: engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[Tag, V] {
			return engine.KV(p.Key.Push(engine.HashKey(sess, p.Val.Key)), p.Val.Val)
		}),
		ctx: ctx2,
	}
	return outer, inner, nil
}

// SaveNested is the flattened output operation o' of Theorem 2's proof:
// it writes the nested bag to dir producing the same file content as the
// original output operation o would have produced from the nested
// representation — one line per group, "outer: e1,e2,...", with elements
// in a canonical order.
func SaveNested[O comparable, I any](nb NestedBag[O, I], dir string,
	formatOuter func(O) string, formatInner func(I) string) error {
	groups, err := CollectNested(nb)
	if err != nil {
		return err
	}
	var lines []string
	for o, elems := range groups {
		parts := make([]string, len(elems))
		for i, e := range elems {
			parts[i] = formatInner(e)
		}
		sort.Strings(parts)
		lines = append(lines, formatOuter(o)+": "+strings.Join(parts, ","))
	}
	sort.Strings(lines)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "part-00000"),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// BagOfScalar views an InnerScalar as an InnerBag whose inner bags are
// singletons (e.g. a BFS source vertex becoming the initial frontier bag).
func BagOfScalar[S any](s InnerScalar[S]) InnerBag[S] {
	return InnerBag[S]{repr: s.repr, ctx: s.ctx}
}

// JoinWithEnclosingBag joins an InnerBag of a *deeper* nesting level with
// an InnerBag of its enclosing level on a plain key: element (t.inner, k)
// of the deep bag matches element (t, k) of the enclosing bag. It is the
// multi-level generalization of the half-lifted join (Sec. 5.2 + Sec. 7's
// composite tags): e.g. every per-(component, source) BFS frontier joins
// the per-component edge bag of the level above.
func JoinWithEnclosingBag[K comparable, V, W any](deep InnerBag[engine.Pair[K, V]], enclosing InnerBag[engine.Pair[K, W]]) InnerBag[engine.Pair[K, engine.Tuple2[V, W]]] {
	dk := engine.Map(deep.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], engine.Tuple2[Tag, V]] {
		return engine.KV(tagKey[K]{p.Key.Pop(), p.Val.Key}, engine.Tuple2[Tag, V]{A: p.Key, B: p.Val.Val})
	})
	ek := engine.Map(enclosing.repr, func(p engine.Pair[Tag, engine.Pair[K, W]]) engine.Pair[tagKey[K], W] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	joined := engine.Join(dk, ek)
	repr := engine.Map(joined, func(p engine.Pair[tagKey[K], engine.Tuple2[engine.Tuple2[Tag, V], W]]) engine.Pair[Tag, engine.Pair[K, engine.Tuple2[V, W]]] {
		return engine.KV(p.Val.A.A, engine.KV(p.Key.K, engine.Tuple2[V, W]{A: p.Val.A.B, B: p.Val.B}))
	})
	return InnerBag[engine.Pair[K, engine.Tuple2[V, W]]]{repr: repr, ctx: deep.ctx}
}

// UnliftScalarToOuter folds a deeper level's InnerScalar back into the
// enclosing level's InnerBag: values tagged (outer.inner) become elements
// of the outer invocation's bag. It is the inverse boundary crossing of
// MapBagLifted.
func UnliftScalarToOuter[S any](inner InnerScalar[S], outerCtx *Ctx) InnerBag[S] {
	repr := engine.Map(inner.repr, func(p engine.Pair[Tag, S]) engine.Pair[Tag, S] {
		return engine.KV(p.Key.Pop(), p.Val)
	})
	return InnerBag[S]{repr: repr, ctx: outerCtx}
}
