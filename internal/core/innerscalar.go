package core

import "matryoshka/internal/engine"

// InnerScalar represents a scalar variable inside a lifted UDF (Sec. 4.3).
// Where the original UDF held one value of type S per invocation, the
// lifted program holds a flat Bag[(Tag, S)] with one element per original
// invocation. The tag set is shared across all InnerScalars of a lifted
// UDF and its size is known up front (Sec. 8.1).
type InnerScalar[S any] struct {
	repr engine.Dataset[engine.Pair[Tag, S]]
	ctx  *Ctx
}

// ScalarFromRepr wraps an existing flat representation. The representation
// must contain exactly one element per tag of ctx.
func ScalarFromRepr[S any](ctx *Ctx, repr engine.Dataset[engine.Pair[Tag, S]]) InnerScalar[S] {
	return InnerScalar[S]{repr: repr, ctx: ctx}
}

// Repr exposes the flat bag representing the InnerScalar (the paper's
// `.repr`, Sec. 5.2).
func (s InnerScalar[S]) Repr() engine.Dataset[engine.Pair[Tag, S]] { return s.repr }

// Ctx returns the LiftingContext this scalar belongs to.
func (s InnerScalar[S]) Ctx() *Ctx { return s.ctx }

// Cache materializes the representation on first use (loop state hygiene).
func (s InnerScalar[S]) Cache() InnerScalar[S] {
	s.repr = s.repr.Cache()
	return s
}

// Collect gathers the per-invocation values keyed by tag (an output
// operation in the sense of Theorem 2's proof).
func (s InnerScalar[S]) Collect() (map[Tag]S, error) {
	return engine.CollectMap(s.repr)
}

// Pure lifts a constant: the original UDF's `val x = v` becomes an
// InnerScalar holding v for every invocation.
func Pure[S any](ctx *Ctx, v S) InnerScalar[S] {
	repr := engine.Map(ctx.Tags, func(t Tag) engine.Pair[Tag, S] {
		return engine.KV(t, v)
	})
	return InnerScalar[S]{repr: repr, ctx: ctx}
}

// UnaryScalarOp lifts b = f(a) (Sec. 4.3): a map over the representation,
// tags forwarded unchanged.
func UnaryScalarOp[A, B any](a InnerScalar[A], f func(A) B) InnerScalar[B] {
	repr := engine.Map(a.repr, func(p engine.Pair[Tag, A]) engine.Pair[Tag, B] {
		return engine.KV(p.Key, f(p.Val))
	})
	return InnerScalar[B]{repr: repr, ctx: a.ctx}
}

// BinaryScalarOp lifts c = f(a, b) (Sec. 4.3): an equi-join of the two
// representations on the tag, followed by a map. The join algorithm and
// output partition count come from the optimizer — both sides have exactly
// ctx.Size elements and the tag is a unique key (Sec. 8.2).
func BinaryScalarOp[A, B, C any](a InnerScalar[A], b InnerScalar[B], f func(A, B) C) InnerScalar[C] {
	ctx := a.ctx
	joined := engine.JoinWith(a.repr, b.repr, ctx.ScalarJoinStrategy(), ctx.Parts)
	repr := engine.Map(joined, func(p engine.Pair[Tag, engine.Tuple2[A, B]]) engine.Pair[Tag, C] {
		return engine.KV(p.Key, f(p.Val.A, p.Val.B))
	})
	return InnerScalar[C]{repr: repr, ctx: ctx}
}
