package core

import "matryoshka/internal/engine"

// This file handles closures — UDFs referring to variables defined outside
// (Sec. 5) — and the half-lifted operations of Sec. 5.2/8.3.

// MapWithClosure is the unlifted-UDF case (Sec. 5.1): a map over an
// InnerBag whose UDF refers to an InnerScalar from the enclosing lifted
// UDF. Each bag element must meet the closure value of its own invocation,
// so the implementation is a tag join between the two representations,
// with the algorithm chosen by the optimizer (Sec. 8.2).
func MapWithClosure[A, C, B any](b InnerBag[A], clos InnerScalar[C], f func(A, C) B) InnerBag[B] {
	ctx := b.ctx
	joined := engine.JoinWith(clos.repr, b.repr, ctx.BagScalarJoinStrategy(), 0)
	repr := engine.Map(joined, func(p engine.Pair[Tag, engine.Tuple2[C, A]]) engine.Pair[Tag, B] {
		return engine.KV(p.Key, f(p.Val.B, p.Val.A))
	})
	return InnerBag[B]{repr: repr, ctx: ctx}
}

// FilterWithClosure filters an InnerBag with a predicate over the element
// and the invocation's closure value (same tag join as MapWithClosure).
func FilterWithClosure[A, C any](b InnerBag[A], clos InnerScalar[C], pred func(A, C) bool) InnerBag[A] {
	ctx := b.ctx
	joined := engine.JoinWith(clos.repr, b.repr, ctx.BagScalarJoinStrategy(), 0)
	filtered := engine.Filter(joined, func(p engine.Pair[Tag, engine.Tuple2[C, A]]) bool {
		return pred(p.Val.B, p.Val.A)
	})
	repr := engine.Map(filtered, func(p engine.Pair[Tag, engine.Tuple2[C, A]]) engine.Pair[Tag, A] {
		return engine.KV(p.Key, p.Val.B)
	})
	return InnerBag[A]{repr: repr, ctx: ctx}
}

// LiftScalarClosure is the lifted-UDF closure case (Sec. 5.2) for scalars:
// a driver-side value referenced inside a lifted UDF is replicated for
// every tag.
func LiftScalarClosure[S any](ctx *Ctx, v S) InnerScalar[S] { return Pure(ctx, v) }

// LiftBagClosure fully lifts an outside bag into an InnerBag by
// replicating it for every tag (Sec. 5.2). The paper warns this "can make
// it very large"; prefer the half-lifted operations below when the
// operation allows it.
func LiftBagClosure[E any](ctx *Ctx, d engine.Dataset[E]) InnerBag[E] {
	repr := engine.CrossWithBroadcast(ctx.Tags, d, func(t Tag, e E) engine.Pair[Tag, E] {
		return engine.KV(t, e)
	})
	return InnerBag[E]{repr: repr, ctx: ctx}
}

// HalfLiftedJoin is the half-lifted equi-join of Sec. 5.2: left is an
// InnerBag (lifted), right is a plain outside bag (not lifted). The
// implementation is the paper's 3-line re-keying: move the tag into the
// value, join on the plain key, move the tag back out.
func HalfLiftedJoin[K comparable, V, W any](left InnerBag[engine.Pair[K, V]], right engine.Dataset[engine.Pair[K, W]]) InnerBag[engine.Pair[K, engine.Tuple2[V, W]]] {
	rekeyed := engine.Map(left.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[K, engine.Tuple2[Tag, V]] {
		return engine.KV(p.Val.Key, engine.Tuple2[Tag, V]{A: p.Key, B: p.Val.Val})
	})
	joined := engine.Join(rekeyed, right)
	repr := engine.Map(joined, func(p engine.Pair[K, engine.Tuple2[engine.Tuple2[Tag, V], W]]) engine.Pair[Tag, engine.Pair[K, engine.Tuple2[V, W]]] {
		return engine.KV(p.Val.A.A, engine.KV(p.Key, engine.Tuple2[V, W]{A: p.Val.A.B, B: p.Val.B}))
	})
	return InnerBag[engine.Pair[K, engine.Tuple2[V, W]]]{repr: repr, ctx: left.ctx}
}

// HalfLiftedMapWithClosure is the half-lifted mapWithClosure of Sec. 8.3:
// the closure is an InnerScalar from inside the lifted UDF and the primary
// input is a bag from outside it (e.g. K-means' unchanging points bag met
// by each run's current means). Semantically a cross product — every
// (tag, closure value) meets every primary element — physically realized
// by broadcasting one side, chosen by the optimizer (or forced via
// Options.ForceHalfLifted for the Fig. 8 ablation).
func HalfLiftedMapWithClosure[C, A, B any](clos InnerScalar[C], primary engine.Dataset[A], f func(A, C) B) InnerBag[B] {
	ctx := clos.ctx
	choice := ctx.HalfLiftedStrategy(clos.repr.CachedBytes(), primary.CachedBytes())
	var repr engine.Dataset[engine.Pair[Tag, B]]
	apply := func(tc engine.Pair[Tag, C], a A) engine.Pair[Tag, B] {
		return engine.KV(tc.Key, f(a, tc.Val))
	}
	if choice == BroadcastScalar {
		repr = engine.CrossWithBroadcast(clos.repr, primary, apply)
	} else {
		repr = engine.CrossBroadcastBig(clos.repr, primary, apply)
	}
	return InnerBag[B]{repr: repr, ctx: ctx}
}
