// Package core implements Matryoshka's primary contribution: the nesting
// primitives and runtime lowering machinery of the paper's two-phase
// flattening process.
//
// The parsing phase (internal/ir, or a user writing against this package
// directly, which corresponds to the explicitly nested-parallel program of
// the paper's Listing 2) produces programs over three nesting primitives:
//
//   - InnerScalar[S] — a scalar inside a lifted UDF (Sec. 4.3), represented
//     at run time by a flat Bag[(Tag, S)];
//   - InnerBag[E] — a bag inside a lifted UDF (Sec. 4.4), represented by a
//     flat Bag[(Tag, E)];
//   - NestedBag[O, I] — a nested bag outside any UDF (Sec. 4.5), represented
//     by an InnerScalar[O] plus an InnerBag[I].
//
// The lowering phase is this package's operation set: each call resolves to
// flat engine operators, choosing physical implementations (join algorithm,
// partition counts, broadcast side) at run time from the cardinalities
// tracked in the LiftingContext (Sec. 8). Control flow inside lifted UDFs is
// handled by While and If (Sec. 6, Listing 4).
package core

import "fmt"

// MaxNestingLevels is the number of parallelism levels supported: an
// outermost level plus up to three lifted levels, which covers the paper's
// deepest workload (Average Distances, three levels of parallel operations).
const MaxNestingLevels = 3

// Tag identifies one invocation of an original (unlifted) UDF. Every
// element of the flat bag representing an InnerScalar or InnerBag carries
// the tag of the invocation it belonged to. For nesting deeper than two
// levels, tags compose: the tag of an inner invocation is the outer tag
// with one more level pushed (the composite keys of Sec. 7).
type Tag struct {
	depth uint8
	lv    [MaxNestingLevels]uint64
}

// RootTag creates a level-1 tag.
func RootTag(id uint64) Tag {
	return Tag{depth: 1, lv: [MaxNestingLevels]uint64{id}}
}

// Push derives the tag of a nested invocation inside t.
// It panics if the maximum nesting depth is exceeded (programmer error:
// the parsing phase never emits deeper programs).
func (t Tag) Push(id uint64) Tag {
	if int(t.depth) >= MaxNestingLevels {
		panic(fmt.Sprintf("core: tag depth %d exceeds MaxNestingLevels", t.depth+1))
	}
	t.lv[t.depth] = id
	t.depth++
	return t
}

// Pop removes the innermost level, returning the enclosing invocation's
// tag. It panics on a zero-depth tag.
func (t Tag) Pop() Tag {
	if t.depth == 0 {
		panic("core: Pop on empty tag")
	}
	t.depth--
	t.lv[t.depth] = 0
	return t
}

// Depth returns the number of composed levels.
func (t Tag) Depth() int { return int(t.depth) }

// Leaf returns the innermost level's id.
func (t Tag) Leaf() uint64 {
	if t.depth == 0 {
		return 0
	}
	return t.lv[t.depth-1]
}

func (t Tag) String() string {
	if t.depth == 0 {
		return "τ()"
	}
	s := "τ("
	for i := 0; i < int(t.depth); i++ {
		if i > 0 {
			s += "."
		}
		s += fmt.Sprint(t.lv[i])
	}
	return s + ")"
}
