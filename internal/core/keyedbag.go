package core

import "matryoshka/internal/engine"

// KeyedBag is an InnerBag that has been re-keyed by (tag, key), hash-
// partitioned and cached. Joining an InnerBag against a KeyedBag shuffles
// only the left side — the co-partitioning optimization that lets
// iterative lifted programs (PageRank's edges, BFS adjacency) pay the
// shuffle of their static data once instead of at every superstep.
type KeyedBag[K comparable, V any] struct {
	repr engine.Dataset[engine.Pair[tagKey[K], V]]
	ctx  *Ctx
}

// PartitionBagByKey builds a KeyedBag from an InnerBag of pairs: re-keys
// by the composite (tag, key), hash-partitions at the engine's default
// parallelism, and caches the result.
func PartitionBagByKey[K comparable, V any](b InnerBag[engine.Pair[K, V]]) KeyedBag[K, V] {
	rekeyed := engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], V] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	return KeyedBag[K, V]{repr: engine.PartitionByKey(rekeyed, 0).Cache(), ctx: b.ctx}
}

// JoinBagsPartitioned is JoinBags with a pre-partitioned right side: the
// left InnerBag is shuffled to the right side's layout; the right side is
// read in place.
func JoinBagsPartitioned[K comparable, A, B any](l InnerBag[engine.Pair[K, A]], r KeyedBag[K, B]) InnerBag[engine.Pair[K, engine.Tuple2[A, B]]] {
	lk := engine.Map(l.repr, func(p engine.Pair[Tag, engine.Pair[K, A]]) engine.Pair[tagKey[K], A] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	joined := engine.Join(lk, r.repr)
	repr := engine.Map(joined, func(p engine.Pair[tagKey[K], engine.Tuple2[A, B]]) engine.Pair[Tag, engine.Pair[K, engine.Tuple2[A, B]]] {
		return engine.KV(p.Key.T, engine.KV(p.Key.K, p.Val))
	})
	return InnerBag[engine.Pair[K, engine.Tuple2[A, B]]]{repr: repr, ctx: l.ctx}
}

// PartitionEnclosingBagByKey prepares an *enclosing-level* InnerBag for
// repeated joins from a deeper nesting level (JoinWithEnclosingKeyed):
// keys are the enclosing level's own (tag, key) pairs.
func PartitionEnclosingBagByKey[K comparable, V any](b InnerBag[engine.Pair[K, V]]) KeyedBag[K, V] {
	return PartitionBagByKey(b)
}

// JoinWithEnclosingKeyed is JoinWithEnclosingBag with the enclosing side
// pre-partitioned: only the deeper level's (usually small, per-superstep)
// bag is shuffled.
func JoinWithEnclosingKeyed[K comparable, V, W any](deep InnerBag[engine.Pair[K, V]], enclosing KeyedBag[K, W]) InnerBag[engine.Pair[K, engine.Tuple2[V, W]]] {
	dk := engine.Map(deep.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], engine.Tuple2[Tag, V]] {
		return engine.KV(tagKey[K]{p.Key.Pop(), p.Val.Key}, engine.Tuple2[Tag, V]{A: p.Key, B: p.Val.Val})
	})
	joined := engine.Join(dk, enclosing.repr)
	repr := engine.Map(joined, func(p engine.Pair[tagKey[K], engine.Tuple2[engine.Tuple2[Tag, V], W]]) engine.Pair[Tag, engine.Pair[K, engine.Tuple2[V, W]]] {
		return engine.KV(p.Val.A.A, engine.KV(p.Key.K, engine.Tuple2[V, W]{A: p.Val.A.B, B: p.Val.B}))
	})
	return InnerBag[engine.Pair[K, engine.Tuple2[V, W]]]{repr: repr, ctx: deep.ctx}
}
