package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"matryoshka/internal/engine"
)

func testSession() *engine.Session {
	cfg := engine.DefaultConfig()
	cfg.Cluster.Machines = 4
	cfg.Cluster.CoresPerMachine = 2
	cfg.DefaultParallelism = 6
	s, err := engine.NewSession(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func TestTagPushPopDepth(t *testing.T) {
	r := RootTag(7)
	if r.Depth() != 1 || r.Leaf() != 7 {
		t.Fatalf("root: %v", r)
	}
	c := r.Push(3)
	if c.Depth() != 2 || c.Leaf() != 3 {
		t.Fatalf("child: %v", c)
	}
	if c.Pop() != r {
		t.Fatalf("pop: %v != %v", c.Pop(), r)
	}
	if c.String() != "τ(7.3)" {
		t.Fatalf("string: %s", c)
	}
}

func TestTagCompositeUnique(t *testing.T) {
	// Property: distinct (outer, inner) pairs give distinct composite tags.
	f := func(o1, i1, o2, i2 uint16) bool {
		t1 := RootTag(uint64(o1)).Push(uint64(i1))
		t2 := RootTag(uint64(o2)).Push(uint64(i2))
		return (t1 == t2) == (o1 == o2 && i1 == i2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagDepthLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic past MaxNestingLevels")
		}
	}()
	RootTag(1).Push(2).Push(3).Push(4)
}

// buildNested creates a NestedBag from explicit groups for tests.
func buildNested[K comparable, V any](t *testing.T, s *engine.Session, groups map[K][]V) NestedBag[K, V] {
	t.Helper()
	var pairs []engine.Pair[K, V]
	for k, vs := range groups {
		for _, v := range vs {
			pairs = append(pairs, engine.KV(k, v))
		}
	}
	nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 4), Options{})
	if err != nil {
		t.Fatalf("GroupByKeyIntoNestedBag: %v", err)
	}
	return nb
}

func TestGroupByKeyIntoNestedBagRoundTrip(t *testing.T) {
	s := testSession()
	groups := map[string][]int{"a": {1, 2, 3}, "b": {4}, "c": {5, 6}}
	nb := buildNested(t, s, groups)
	if nb.Ctx().Size != 3 {
		t.Fatalf("Size = %d, want 3", nb.Ctx().Size)
	}
	got, err := CollectNested(nb)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range groups {
		sort.Ints(got[k])
		if fmt.Sprint(got[k]) != fmt.Sprint(vs) {
			t.Errorf("group %v: got %v, want %v", k, got[k], vs)
		}
	}
}

func TestUnaryScalarOp(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {10}})
	counts := CountBag(nb.Inner)
	doubled := UnaryScalarOp(counts, func(n int64) int64 { return 2 * n })
	m := scalarByOuter(t, nb, doubled)
	if m["a"] != 4 || m["b"] != 2 {
		t.Fatalf("m = %v", m)
	}
}

// scalarByOuter resolves an InnerScalar's values to the group keys.
func scalarByOuter[K comparable, V, S any](t *testing.T, nb NestedBag[K, V], is InnerScalar[S]) map[K]S {
	t.Helper()
	outer, err := nb.Outer.Collect()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := is.Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[K]S, len(outer))
	for tag, k := range outer {
		if v, ok := vals[tag]; ok {
			out[k] = v
		}
	}
	return out
}

func TestBinaryScalarOpBothStrategies(t *testing.T) {
	for _, strat := range []engine.JoinStrategy{engine.JoinRepartition, engine.JoinBroadcastLeft} {
		t.Run(strat.String(), func(t *testing.T) {
			s := testSession()
			var pairs []engine.Pair[int, int]
			for g := 0; g < 10; g++ {
				for i := 0; i <= g; i++ {
					pairs = append(pairs, engine.KV(g, i))
				}
			}
			nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 4), Options{ForceScalarJoin: ForceJoin(strat)})
			if err != nil {
				t.Fatal(err)
			}
			counts := CountBag(nb.Inner)
			sums := AggregateBag(nb.Inner, 0, func(a int64, v int) int64 { return a + int64(v) },
				func(x, y int64) int64 { return x + y })
			// avg*count relation: sum == count*(count-1)/2 per group g.
			rel := BinaryScalarOp(sums, counts, func(sum, cnt int64) bool {
				return sum == cnt*(cnt-1)/2
			})
			m := scalarByOuter(t, nb, rel)
			if len(m) != 10 {
				t.Fatalf("got %d groups", len(m))
			}
			for g, ok := range m {
				if !ok {
					t.Errorf("group %v: relation failed", g)
				}
			}
		})
	}
}

func TestPureReplicatesPerTag(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1}, "b": {2}, "c": {3}})
	c := Pure(nb.Ctx(), 42)
	vals, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("len = %d", len(vals))
	}
	for _, v := range vals {
		if v != 42 {
			t.Fatalf("v = %d", v)
		}
	}
}

func TestCountBagCountsEmptyGroupsAsZero(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2, 3}, "b": {4}})
	// Filter out everything in group b: its inner bag becomes empty, but
	// count must still produce 0 for it (Sec. 4.4).
	filtered := FilterBag(nb.Inner, func(v int) bool { return v < 4 })
	counts := scalarByOuter(t, nb, CountBag(filtered))
	if counts["a"] != 3 || counts["b"] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReduceBagSkipsEmptyGroups(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {9}})
	filtered := FilterBag(nb.Inner, func(v int) bool { return v < 9 })
	sums, err := ReduceBag(filtered, func(a, b int) int { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("reduce of empty group should yield nothing: %v", sums)
	}
}

func TestDistinctBagPerInvocation(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 1, 2}, "b": {1, 1}})
	counts := scalarByOuter(t, nb, CountBag(DistinctBag(nb.Inner)))
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReduceByKeyBagKeepsTagsSeparate(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]string{
		"g1": {"x", "x", "y"},
		"g2": {"x"},
	})
	keyed := MapBag(nb.Inner, func(v string) engine.Pair[string, int] { return engine.KV(v, 1) })
	red := ReduceByKeyBag(keyed, func(a, b int) int { return a + b })
	groups, err := red.CollectGroups()
	if err != nil {
		t.Fatal(err)
	}
	outer, _ := nb.Outer.Collect()
	byName := map[string]map[string]int{}
	for tag, name := range outer {
		m := map[string]int{}
		for _, kv := range groups[tag] {
			m[kv.Key] = kv.Val
		}
		byName[name] = m
	}
	if byName["g1"]["x"] != 2 || byName["g1"]["y"] != 1 || byName["g2"]["x"] != 1 {
		t.Fatalf("byName = %v", byName)
	}
}

func TestJoinBagsWithinInvocationOnly(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {1}})
	l := MapBag(nb.Inner, func(v int) engine.Pair[int, string] { return engine.KV(v, "L") })
	r := MapBag(nb.Inner, func(v int) engine.Pair[int, string] { return engine.KV(v, "R") })
	counts := scalarByOuter(t, nb, CountBag(JoinBags(l, r)))
	// Within a: {1,2}⋈{1,2} on identity keys = 2 matches; within b: 1.
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFlattenBag(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {3}})
	got, err := engine.Collect(FlattenBag(nb.Inner))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got %v", got)
	}
}

func TestMapWithClosure(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {10}})
	// Closure: each group's own count, added to each element.
	counts := CountBag(nb.Inner)
	shifted := MapWithClosure(nb.Inner, counts, func(v int, c int64) int { return v + int(c) })
	groups, err := shifted.CollectGroups()
	if err != nil {
		t.Fatal(err)
	}
	outer, _ := nb.Outer.Collect()
	for tag, name := range outer {
		vs := groups[tag]
		sort.Ints(vs)
		switch name {
		case "a":
			if fmt.Sprint(vs) != "[3 4]" {
				t.Errorf("a: %v", vs)
			}
		case "b":
			if fmt.Sprint(vs) != "[11]" {
				t.Errorf("b: %v", vs)
			}
		}
	}
}

func TestFilterWithClosure(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2, 3}, "b": {1, 2, 3}})
	// Keep elements below the group's mean-ish threshold: use count as
	// stand-in closure (3 for both groups, keep v < count).
	counts := CountBag(nb.Inner)
	kept := FilterWithClosure(nb.Inner, counts, func(v int, c int64) bool { return int64(v) < c })
	m := scalarByOuter(t, nb, CountBag(kept))
	if m["a"] != 2 || m["b"] != 2 {
		t.Fatalf("m = %v", m)
	}
}

func TestLiftScalarAndBagClosure(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1}, "b": {2}})
	lifted := LiftScalarClosure(nb.Ctx(), 100)
	vals, err := lifted.Collect()
	if err != nil || len(vals) != 2 {
		t.Fatalf("vals = %v err = %v", vals, err)
	}
	outside := engine.Parallelize(s, []int{7, 8}, 2)
	ib := LiftBagClosure(nb.Ctx(), outside)
	m := scalarByOuter(t, nb, CountBag(ib))
	if m["a"] != 2 || m["b"] != 2 {
		t.Fatalf("replicated counts = %v", m)
	}
}

func TestHalfLiftedJoin(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {2}})
	keyed := MapBag(nb.Inner, func(v int) engine.Pair[int, string] {
		return engine.KV(v, "inner")
	})
	outside := engine.Parallelize(s, []engine.Pair[int, string]{{Key: 1, Val: "one"}, {Key: 2, Val: "two"}}, 2)
	joined := HalfLiftedJoin(keyed, outside)
	m := scalarByOuter(t, nb, CountBag(joined))
	if m["a"] != 2 || m["b"] != 1 {
		t.Fatalf("m = %v", m)
	}
}

func TestHalfLiftedMapWithClosureBothChoices(t *testing.T) {
	for _, choice := range []HalfLiftedChoice{BroadcastScalar, BroadcastPrimary} {
		t.Run(choice.String(), func(t *testing.T) {
			s := testSession()
			var pairs []engine.Pair[string, int]
			pairs = append(pairs, engine.KV("a", 10), engine.KV("b", 20))
			nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 2),
				Options{ForceHalfLifted: ForceHalf(choice)})
			if err != nil {
				t.Fatal(err)
			}
			// Closure = the group's sole value; primary = outside points.
			clos := ReduceBag(nb.Inner, func(a, b int) int { return a + b })
			primary := engine.Parallelize(s, []int{1, 2, 3}, 2)
			crossed := HalfLiftedMapWithClosure(clos, primary, func(p, c int) int { return p + c })
			groups, err := crossed.CollectGroups()
			if err != nil {
				t.Fatal(err)
			}
			outer, _ := nb.Outer.Collect()
			for tag, name := range outer {
				vs := groups[tag]
				sort.Ints(vs)
				want := "[11 12 13]"
				if name == "b" {
					want = "[21 22 23]"
				}
				if fmt.Sprint(vs) != want {
					t.Errorf("%s: got %v, want %v", name, vs, want)
				}
			}
		})
	}
}

func TestHalfLiftedOptimizerChoosesScalarWhenOnePartition(t *testing.T) {
	s := testSession()
	ctx := &Ctx{Sess: s, Size: 10, Parts: 1}
	if got := ctx.HalfLiftedStrategy(-1, -1); got != BroadcastScalar {
		t.Fatalf("got %v", got)
	}
	ctx.Parts = 4
	if got := ctx.HalfLiftedStrategy(1000, 10); got != BroadcastPrimary {
		t.Fatalf("sizes known, primary smaller: got %v", got)
	}
	if got := ctx.HalfLiftedStrategy(10, 1000); got != BroadcastScalar {
		t.Fatalf("sizes known, scalar smaller: got %v", got)
	}
}

func TestScalarJoinStrategyThreshold(t *testing.T) {
	s := testSession() // 8 slots
	small := &Ctx{Sess: s, Size: 3}
	big := &Ctx{Sess: s, Size: 1000}
	if small.ScalarJoinStrategy() != engine.JoinBroadcastLeft {
		t.Error("small InnerScalar should broadcast")
	}
	if big.ScalarJoinStrategy() != engine.JoinRepartition {
		t.Error("big InnerScalar should repartition")
	}
}

// TestOptimizerHonorsRecoveryFeedback: once adaptive recovery denylists a
// physical choice or raises partition counts, the optimizer never re-picks
// the denylisted choice and starts at the raised parallelism.
func TestOptimizerHonorsRecoveryFeedback(t *testing.T) {
	s := testSession()
	s.Feedback().Deny("join", "broadcast", "broadcast OOMed in an earlier job")
	small := &Ctx{Sess: s, Size: 3} // small enough to normally broadcast
	if got := small.ScalarJoinStrategy(); got != engine.JoinRepartition {
		t.Errorf("ScalarJoinStrategy after denylist = %v, want repartition", got)
	}
	if got := small.BagScalarJoinStrategy(); got != engine.JoinRepartition {
		t.Errorf("BagScalarJoinStrategy after denylist = %v, want repartition", got)
	}

	s2 := testSession()
	s2.Feedback().Deny("half-lifted", "broadcast-scalar", "scalar side OOMed")
	one := &Ctx{Sess: s2, Size: 10, Parts: 1} // normally broadcasts the scalar
	if got := one.HalfLiftedStrategy(-1, -1); got != BroadcastPrimary {
		t.Errorf("HalfLiftedStrategy after scalar denylist = %v, want primary", got)
	}
	s2.Feedback().Deny("half-lifted", "broadcast-primary", "primary side OOMed too")
	if got := one.HalfLiftedStrategy(-1, -1); got != BroadcastScalar {
		t.Errorf("HalfLiftedStrategy with both denied = %v, want Sec. 8.3 default", got)
	}

	s3 := testSession()
	s3.Feedback().BoostParts(4)
	c := &Ctx{Sess: s3}
	if p := c.partsFor(10); p != 4 {
		t.Errorf("partsFor(10) with 4x boost = %d, want 4", p)
	}
}

func TestPartsForScalesAndClamps(t *testing.T) {
	s := testSession()
	c := &Ctx{Sess: s}
	if p := c.partsFor(10); p != 1 {
		t.Errorf("partsFor(10) = %d", p)
	}
	if p := c.partsFor(100_000); p != s.DefaultParallelism() {
		t.Errorf("partsFor(1e5) = %d, want clamp to %d", p, s.DefaultParallelism())
	}
	c.Opt.TargetScalarsPerPartition = 10
	if p := c.partsFor(35); p != 4 {
		t.Errorf("partsFor(35, target 10) = %d, want 4", p)
	}
}

func TestCrossBagsWithinInvocation(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {5}})
	crossed := CrossBags(nb.Inner, MapBag(nb.Inner, func(v int) int { return v * 10 }))
	counts := scalarByOuter(t, nb, CountBag(crossed))
	// a: 2x2 = 4 pairs; b: 1x1 = 1. No cross-group pairs.
	if counts["a"] != 4 || counts["b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	groups, err := crossed.CollectGroups()
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range groups {
		for _, pair := range vs {
			if pair.B != pair.A*10 && pair.B != (3-pair.A)*10 && pair.B != 50 {
				t.Errorf("cross leaked across groups: %+v", pair)
			}
		}
	}
}

// TestSaveNestedMatchesSequentialOutput is Theorem 2's final step as a
// test: the flattened output operation writes the same file the original
// nested program would have written.
func TestSaveNestedMatchesSequentialOutput(t *testing.T) {
	s := testSession()
	groups := map[string][]int{"b": {3, 1}, "a": {2}}
	nb := buildNested(t, s, groups)
	dir := t.TempDir()
	err := SaveNested(nb, dir,
		func(k string) string { return k },
		func(v int) string { return fmt.Sprint(v) })
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "part-00000"))
	if err != nil {
		t.Fatal(err)
	}
	want := "a: 2\nb: 1,3\n"
	if string(data) != want {
		t.Fatalf("file = %q, want %q", data, want)
	}
}

// TestGroupByKeyIntoNestedBagInner groups inside a lifted UDF: per outer
// group, sub-group the values by parity and count each subgroup — a
// three-level nested program written with inner grouping.
func TestGroupByKeyIntoNestedBagInner(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{
		"g1": {1, 2, 3, 4, 5}, // odd: 3, even: 2
		"g2": {2, 4},          // even: 2
	})
	keyed := MapBag(nb.Inner, func(v int) engine.Pair[string, int] {
		if v%2 == 0 {
			return engine.KV("even", v)
		}
		return engine.KV("odd", v)
	})
	subKeys, subVals, err := GroupByKeyIntoNestedBagInner(keyed)
	if err != nil {
		t.Fatal(err)
	}
	if subKeys.Ctx().Size != 3 { // g1/odd, g1/even, g2/even
		t.Fatalf("subgroups = %d, want 3", subKeys.Ctx().Size)
	}
	counts := CountBag(subVals)
	// Resolve (outerGroup, parity) -> count.
	outer, err := nb.Outer.Collect()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := subKeys.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cnts, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for tag, parity := range keys {
		g := outer[tag.Pop()]
		got[g+"/"+parity] = cnts[tag]
	}
	want := map[string]int64{"g1/odd": 3, "g1/even": 2, "g2/even": 2}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d (got %v)", k, got[k], w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %v", got)
	}
}

func TestGroupByKeyIntoNestedBagEmptyInput(t *testing.T) {
	s := testSession()
	nb, err := GroupByKeyIntoNestedBag(engine.Empty[engine.Pair[string, int]](s), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Ctx().Size != 0 {
		t.Fatalf("Size = %d, want 0", nb.Ctx().Size)
	}
	got, err := CollectNested(nb)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, err %v", got, err)
	}
	// Lifted ops over the empty nested bag stay well-defined.
	counts, err := CountBag(nb.Inner).Collect()
	if err != nil || len(counts) != 0 {
		t.Fatalf("counts = %v, err %v", counts, err)
	}
}

func TestWhileOverEmptyTagUniverse(t *testing.T) {
	s := testSession()
	nb, err := GroupByKeyIntoNestedBag(engine.Empty[engine.Pair[string, int]](s), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := While(nb.Ctx(), CountBag(nb.Inner), ScalarState[int64](),
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], InnerScalar[bool], error) {
			return v, Pure(c, true), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := out.Collect()
	if err != nil || len(vals) != 0 {
		t.Fatalf("vals = %v, err %v", vals, err)
	}
}

func TestLiftFlatEmptyInput(t *testing.T) {
	s := testSession()
	res, err := LiftFlat(engine.Empty[int](s), Options{},
		func(ctx *Ctx, elems InnerScalar[int]) (InnerScalar[int], error) {
			if ctx.Size != 0 {
				t.Errorf("Size = %d", ctx.Size)
			}
			return UnaryScalarOp(elems, func(v int) int { return v * 2 }), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := res.Collect()
	if err != nil || len(vals) != 0 {
		t.Fatalf("vals = %v, err %v", vals, err)
	}
}

// TestOptionsPropagateThroughContexts verifies forced choices survive
// withTags derivation inside loops.
func TestOptionsPropagateThroughContexts(t *testing.T) {
	s := testSession()
	var pairs []engine.Pair[string, int]
	pairs = append(pairs, engine.KV("a", 1), engine.KV("b", 2))
	opt := Options{ForceScalarJoin: ForceJoin(engine.JoinRepartition), MaxLoopIterations: 7}
	nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	_, err = While(nb.Ctx(), CountBag(nb.Inner), ScalarState[int64](),
		func(c *Ctx, v InnerScalar[int64]) (InnerScalar[int64], InnerScalar[bool], error) {
			if c.Opt.ForceScalarJoin == nil || *c.Opt.ForceScalarJoin != engine.JoinRepartition {
				t.Error("forced join lost inside loop context")
			}
			return v, Pure(c, true), nil // runs until the guard
		})
	if err == nil {
		t.Fatal("expected the MaxLoopIterations guard to fire")
	}
}

// TestMapWithClosureBothJoinStrategiesAgree forces each tag-join algorithm
// and compares results (the Fig. 8a ablation at the unit level).
func TestMapWithClosureBothJoinStrategiesAgree(t *testing.T) {
	results := map[string]map[string][]int{}
	for _, strat := range []engine.JoinStrategy{engine.JoinBroadcastLeft, engine.JoinRepartition} {
		s := testSession()
		var pairs []engine.Pair[string, int]
		for g := 0; g < 6; g++ {
			for v := 0; v <= g; v++ {
				pairs = append(pairs, engine.KV(fmt.Sprintf("g%d", g), v))
			}
		}
		nb, err := GroupByKeyIntoNestedBag(engine.Parallelize(s, pairs, 4),
			Options{ForceScalarJoin: ForceJoin(strat)})
		if err != nil {
			t.Fatal(err)
		}
		counts := CountBag(nb.Inner)
		shifted := MapWithClosure(nb.Inner, counts, func(v int, c int64) int { return v + int(c) })
		byName := groupsOf(nb, shifted)
		for _, vs := range byName {
			sort.Ints(vs)
		}
		results[strat.String()] = byName
	}
	a := fmt.Sprint(results[engine.JoinBroadcastLeft.String()])
	b := fmt.Sprint(results[engine.JoinRepartition.String()])
	if a != b {
		t.Fatalf("strategies disagree:\n%s\n%s", a, b)
	}
}

// TestTagStringForms covers the Tag pretty-printer.
func TestTagStringForms(t *testing.T) {
	if got := (Tag{}).String(); got != "τ()" {
		t.Errorf("empty tag = %q", got)
	}
	if got := RootTag(5).String(); got != "τ(5)" {
		t.Errorf("root = %q", got)
	}
	if got := RootTag(5).Push(2).Push(9).String(); got != "τ(5.2.9)" {
		t.Errorf("deep = %q", got)
	}
}

// TestPopOnEmptyTagPanics pins the programmer-error contract.
func TestPopOnEmptyTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty tag should panic")
		}
	}()
	_ = (Tag{}).Pop()
}

// TestConstructorsAndAccessors covers the wrapper/accessor surface.
func TestConstructorsAndAccessors(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}}).Cache()
	ctx := nb.Ctx()
	if nb.Inner.Ctx() != ctx || nb.Outer.Ctx() != ctx {
		t.Fatal("components must share the LiftingContext")
	}
	ib := BagFromRepr(ctx, nb.Inner.Repr())
	if n, err := engine.Count(ib.Repr()); err != nil || n != 2 {
		t.Fatalf("BagFromRepr count = %d, %v", n, err)
	}
	is := ScalarFromRepr(ctx, nb.Outer.Repr())
	if vals, err := is.Collect(); err != nil || len(vals) != 1 {
		t.Fatalf("ScalarFromRepr = %v, %v", vals, err)
	}
	om, im, err := nb.Collect()
	if err != nil || len(om) != 1 || len(im) != 1 {
		t.Fatalf("nb.Collect: %v %v %v", om, im, err)
	}
	if RootTag(7).Push(2).Leaf() != 2 || (Tag{}).Leaf() != 0 {
		t.Error("Leaf accessor wrong")
	}
}

// TestFlatMapBagExpandsPerInvocation covers the lifted flatMap.
func TestFlatMapBagExpandsPerInvocation(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1}, "b": {2, 3}})
	fm := FlatMapBag(nb.Inner, func(v int) []int { return []int{v, -v} })
	counts := scalarByOuter(t, nb, CountBag(fm))
	if counts["a"] != 2 || counts["b"] != 4 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestGroupByKeyBagGroupsWithinInvocation covers the lifted groupByKey.
func TestGroupByKeyBagGroupsWithinInvocation(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"g1": {1, 2, 3, 4}, "g2": {5}})
	keyed := MapBag(nb.Inner, func(v int) engine.Pair[int, int] { return engine.KV(v%2, v) })
	grouped := GroupByKeyBag(keyed)
	byName := groupsOf(nb, grouped)
	g1 := map[int]int{}
	for _, kv := range byName["g1"] {
		g1[kv.Key] = len(kv.Val)
	}
	if g1[0] != 2 || g1[1] != 2 {
		t.Fatalf("g1 parity groups = %v", g1)
	}
	if len(byName["g2"]) != 1 || len(byName["g2"][0].Val) != 1 {
		t.Fatalf("g2 = %v", byName["g2"])
	}
}

// TestMapNestedBagCallsUDFOnce covers the mapWithLiftedUDF entry point.
func TestMapNestedBagCallsUDFOnce(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {1, 2}, "b": {3}})
	calls := 0
	res := MapNestedBag(nb, func(ctx *Ctx, outer InnerScalar[string], inner InnerBag[int]) InnerScalar[int64] {
		calls++
		return CountBag(inner)
	})
	if calls != 1 {
		t.Fatalf("UDF called %d times, want exactly once (lowering-phase semantics)", calls)
	}
	m := scalarByOuter(t, nb, res)
	if m["a"] != 2 || m["b"] != 1 {
		t.Fatalf("m = %v", m)
	}
}

// TestUnliftScalarToOuter folds deeper-level results back up one level.
func TestUnliftScalarToOuter(t *testing.T) {
	s := testSession()
	nb := buildNested(t, s, map[string][]int{"a": {10, 20}, "b": {30}})
	sums, err := MapBagLifted(nb.Inner, func(ctx2 *Ctx, elems InnerScalar[int]) (InnerScalar[int], error) {
		return UnaryScalarOp(elems, func(v int) int { return v + 1 }), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	backUp := UnliftScalarToOuter(sums, nb.Ctx())
	totals := scalarByOuter(t, nb, AggregateBag(backUp, 0,
		func(a, v int) int { return a + v },
		func(x, y int) int { return x + y }))
	if totals["a"] != 32 || totals["b"] != 31 {
		t.Fatalf("totals = %v", totals)
	}
}
